package dlrmperf

import (
	"context"
	"errors"
	"testing"
)

// fastEngineConfig keeps multi-device engine tests quick via the
// shared low-fidelity calibration preset.
func fastEngineConfig(devices ...string) EngineConfig {
	cfg := FastCalibConfig(17, 4)
	cfg.Devices = devices
	return cfg
}

// batchRequests builds the acceptance matrix: 3 workloads x 2 batch
// sizes x 2 devices = 12 requests.
func batchRequests() []PredictRequest {
	var reqs []PredictRequest
	for _, d := range []string{V100, P100} {
		for _, w := range []string{DLRMDefault, DLRMDDP, DLRMMLPerf} {
			for _, b := range []int64{512, 1024} {
				reqs = append(reqs, PredictRequest{Workload: w, Batch: b, Device: d})
			}
		}
	}
	return reqs
}

// TestPredictBatchAcceptance is the PR's facade-level contract:
// PredictBatch over >= 12 (workload x device) requests returns exactly
// the same results as sequential Predict calls, with calibration
// performed at most once per device.
func TestPredictBatchAcceptance(t *testing.T) {
	reqs := batchRequests()
	if len(reqs) < 12 {
		t.Fatalf("acceptance matrix too small: %d requests", len(reqs))
	}

	eng, err := NewEngineWith(fastEngineConfig(V100, P100))
	if err != nil {
		t.Fatal(err)
	}
	batch := eng.PredictBatch(reqs)

	seq, err := NewEngineWith(fastEngineConfig(V100, P100))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		got := batch[i]
		if got.Err != nil {
			t.Fatalf("request %+v failed: %v", r, got.Err)
		}
		want := seq.Predict(r)
		if want.Err != nil {
			t.Fatalf("sequential %+v failed: %v", r, want.Err)
		}
		if got.Prediction != want.Prediction {
			t.Errorf("request %+v: batch %+v != sequential %+v", r, got.Prediction, want.Prediction)
		}
		if got.Prediction.E2EUs <= 0 || got.Prediction.ActiveUs <= 0 {
			t.Errorf("request %+v: implausible prediction %+v", r, got.Prediction)
		}
	}

	for _, d := range []string{V100, P100} {
		if runs := eng.CalibrationRuns(d); runs != 1 {
			t.Errorf("%s calibrated %d times under PredictBatch, want 1", d, runs)
		}
	}
	// Larger batches on the same device and workload never predict
	// faster (equal is legitimate when the host critical path dominates,
	// as for DLRM_MLPerf at these sizes).
	for i := 0; i+1 < len(batch); i += 2 {
		if batch[i+1].Prediction.E2EUs < batch[i].Prediction.E2EUs {
			t.Errorf("%+v: 2x batch predicts faster (%v < %v)", batch[i+1].Request,
				batch[i+1].Prediction.E2EUs, batch[i].Prediction.E2EUs)
		}
	}
}

// TestScenarioRequestFacade: a named multi-GPU scenario serves through
// the facade with the sharding/scaling/cache surface filled in, and a
// repeat is a cache hit with an identical prediction.
func TestScenarioRequestFacade(t *testing.T) {
	eng, err := NewEngineWith(fastEngineConfig(V100))
	if err != nil {
		t.Fatal(err)
	}
	req := ScenarioRequest(V100, "dlrm-uniform-2gpu", 512, 0)
	r1 := eng.Predict(req)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	if r1.GPUs != 2 {
		t.Errorf("GPUs = %d, want 2", r1.GPUs)
	}
	if se := r1.ScalingEfficiency; se <= 0 || se >= 1 {
		t.Errorf("scaling efficiency = %v, want in (0,1)", se)
	}
	if r1.AllReduceUs <= 0 || r1.AllToAllUs <= 0 {
		t.Errorf("collectives not priced: %+v", r1)
	}
	if r1.CacheHit {
		t.Error("first request reported a cache hit")
	}

	r2 := eng.Predict(req)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !r2.CacheHit {
		t.Error("repeat request missed the cache")
	}
	if r1.Prediction != r2.Prediction || r1.ScalingEfficiency != r2.ScalingEfficiency {
		t.Errorf("cached result differs: %+v vs %+v", r1, r2)
	}
	if hits, misses := eng.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d/%d hit/miss, want 1/1", hits, misses)
	}

	// A single-GPU request of the same family shares assets but not the
	// cache entry.
	single := eng.Predict(PredictRequest{Workload: DLRMDefault, Batch: 512, Device: V100})
	if single.Err != nil {
		t.Fatal(single.Err)
	}
	if single.GPUs != 1 || single.ScalingEfficiency != 1 {
		t.Errorf("single-GPU surface = %+v", single)
	}
	if single.Prediction.E2EUs <= 0 {
		t.Errorf("implausible single-GPU E2E %v", single.Prediction.E2EUs)
	}
	if got := eng.CalibrationRuns(V100); got != 1 {
		t.Errorf("scenario mix calibrated %d times, want 1", got)
	}

	if r := eng.Predict(ScenarioRequest(V100, "no-such-scenario", 0, 0)); r.Err == nil {
		t.Error("unknown scenario accepted")
	}

	// Validation failures are tallied as rejects, outside the hit/miss
	// counters — the unknown scenario above (facade resolution) and the
	// engine-side structural failure below both count.
	before, _ := eng.CacheStats()
	_, beforeMiss := eng.CacheStats()
	if r := eng.Predict(PredictRequest{Workload: DLRMDefault, Batch: 512, Device: V100, Comm: "pcie"}); r.Err == nil {
		t.Error("comm on a single-device request accepted")
	}
	if got := eng.RejectedRequests(); got != 2 {
		t.Errorf("RejectedRequests = %d, want 2 (unknown scenario + comm on width 1)", got)
	}
	if h, m := eng.CacheStats(); h != before || m != beforeMiss {
		t.Errorf("rejected request leaked into cache counters: %d/%d -> %d/%d", before, beforeMiss, h, m)
	}
}

// TestBoundedAssetStoreFacade is the PR's acceptance criterion at the
// facade: with asset-store capacities smaller than the 12-request
// acceptance matrix's working set, the batch completes with bounded
// resident entries (evictions observed, residency at or under cap) and
// predictions bit-identical to an unbounded engine.
func TestBoundedAssetStoreFacade(t *testing.T) {
	reqs := batchRequests()

	cfg := fastEngineConfig(V100, P100)
	cfg.AssetCaps = AssetCaps{Runs: -1, Overheads: -1, Graphs: -1}
	unbounded, err := NewEngineWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := unbounded.PredictBatch(reqs)

	cfg = fastEngineConfig(V100, P100)
	cfg.AssetCaps = AssetCaps{Runs: 3, Overheads: 2, Graphs: 3}
	cfg.ResultCacheSize = 4
	bounded, err := NewEngineWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := bounded.PredictBatch(reqs)

	for i := range reqs {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("request %d errored: unbounded=%v bounded=%v", i, want[i].Err, got[i].Err)
		}
		if want[i].Prediction != got[i].Prediction {
			t.Errorf("request %+v: bounded %+v != unbounded %+v",
				reqs[i], got[i].Prediction, want[i].Prediction)
		}
	}

	s := bounded.AssetStats()
	var evictions uint64
	for _, name := range []string{"runs", "overheads", "graphs", "results"} {
		c := s.Class(name)
		if c.Capacity > 0 && c.Resident > c.Capacity {
			t.Errorf("%s resident %d above cap %d", name, c.Resident, c.Capacity)
		}
		evictions += c.Evictions
	}
	if evictions == 0 {
		t.Error("bounded engine saw no evictions under a 12-request working set")
	}
	if n := bounded.CachedResults(); n > 4 {
		t.Errorf("CachedResults = %d above result cap 4", n)
	}
	if hits, misses := bounded.CacheStats(); hits+misses != uint64(len(reqs)) {
		t.Errorf("cache invariant broken: %d+%d != %d requests", hits, misses, len(reqs))
	}
	// Both devices still calibrated exactly once: the pinned class
	// shields calibrations from the thrash.
	for _, d := range []string{V100, P100} {
		if runs := bounded.CalibrationRuns(d); runs != 1 {
			t.Errorf("%s calibrated %d times under bounded store, want 1", d, runs)
		}
	}
}

// TestEngineDeviceSetEnforced: requests for devices outside the
// engine's set fail in their slot; the engine never calibrates them.
func TestEngineDeviceSetEnforced(t *testing.T) {
	eng, err := NewEngineWith(fastEngineConfig(V100))
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Predict(PredictRequest{Workload: DLRMDefault, Batch: 512, Device: P100})
	if res.Err == nil {
		t.Fatal("out-of-set device accepted")
	}
	if _, err := NewEngine("A100"); err == nil {
		t.Fatal("unknown device accepted at construction")
	}
}

// TestEngineWarmStartFacade: assets exported from one engine eliminate
// calibration in another and preserve every prediction bit.
func TestEngineWarmStartFacade(t *testing.T) {
	a, err := NewEngineWith(fastEngineConfig(V100))
	if err != nil {
		t.Fatal(err)
	}
	req := PredictRequest{Workload: DLRMDefault, Batch: 1024, Device: V100}
	ra := a.Predict(req)
	if ra.Err != nil {
		t.Fatal(ra.Err)
	}
	assets, err := a.SaveAssets(V100)
	if err != nil {
		t.Fatal(err)
	}

	b, err := NewEngineWith(fastEngineConfig(V100))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadAssets(assets); err != nil {
		t.Fatal(err)
	}
	rb := b.Predict(req)
	if rb.Err != nil {
		t.Fatal(rb.Err)
	}
	if ra.Prediction != rb.Prediction {
		t.Fatalf("warm-started prediction differs: %+v vs %+v", ra.Prediction, rb.Prediction)
	}
	if runs := b.CalibrationRuns(V100); runs != 0 {
		t.Fatalf("warm-started engine calibrated %d times", runs)
	}
}

// TestEngineEagerCalibrate: Calibrate() front-loads every device once.
func TestEngineEagerCalibrate(t *testing.T) {
	eng, err := NewEngineWith(fastEngineConfig(V100, P100))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Calibrate(); err != nil {
		t.Fatal(err)
	}
	for _, d := range eng.Devices() {
		if runs := eng.CalibrationRuns(d); runs != 1 {
			t.Errorf("%s calibrated %d times, want 1", d, runs)
		}
	}
	// Predictions after the eager pass are pure cache hits.
	res := eng.Predict(PredictRequest{Workload: DLRMDefault, Batch: 512, Device: V100})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if runs := eng.CalibrationRuns(V100); runs != 1 {
		t.Errorf("prediction re-calibrated: runs = %d", runs)
	}
}

// TestPredictContextFacade: the context-accepting facade variants
// thread cancellation into the engine — an expired context fails fast
// with ctx.Err() before any calibration — and the StreamStats surface
// accounts for every request the engine served.
func TestPredictContextFacade(t *testing.T) {
	eng, err := NewEngineWith(fastEngineConfig(V100))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := eng.PredictContext(ctx, PredictRequest{Workload: DLRMDefault, Batch: 512, Device: V100})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("expired context error = %v, want context.Canceled", res.Err)
	}
	if got := eng.CalibrationRuns(V100); got != 0 {
		t.Fatalf("expired request calibrated the device (%d runs)", got)
	}

	batch := eng.PredictBatchContext(context.Background(), []PredictRequest{
		{Workload: DLRMDefault, Batch: 512, Device: V100},
		{Workload: DLRMDefault, Batch: 512, Device: V100},
	})
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("request %d failed: %v", i, r.Err)
		}
	}
	if !batch[1].CacheHit && !batch[0].CacheHit {
		t.Error("duplicate in batch missed the result cache")
	}

	ss := eng.StreamStats()
	hits, misses := eng.CacheStats()
	if hits+misses != ss.Served {
		t.Errorf("hits+misses = %d+%d, served = %d; invariant broken", hits, misses, ss.Served)
	}
	if ss.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", ss.Canceled)
	}
	if ss.InFlight != 0 || ss.Served != 3 {
		t.Errorf("stream stats = %+v, want in-flight 0, served 3", ss)
	}
}
