package dlrmperf

import (
	"math"
	"sync"
	"testing"

	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/perfmodel"
)

var (
	pipeOnce sync.Once
	pipeV100 *Pipeline
	pipeErr  error
)

// pipeline builds a fast shared V100 pipeline for the facade tests.
func pipeline(t *testing.T) *Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		sizes := map[kernels.Kind]int{}
		for k, n := range microbench.DefaultSweepSizes() {
			sizes[k] = n / 4
			// The tril surface needs denser sampling after the backward
			// scatter penalty steepened it; the kernels are cheap.
			if k == kernels.KindTrilFwd || k == kernels.KindTrilBwd {
				sizes[k] = n
			}
		}
		pipeV100, pipeErr = NewPipeline(V100, WithSeed(5), WithCalibration(perfmodel.CalibOptions{
			Seed: 5, SweepSizes: sizes, Ensemble: 2,
			MLPConfig: mlp.Config{HiddenLayers: 2, Width: 48, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 45, BatchSize: 64},
		}))
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipeV100
}

func TestNewPipelineUnknownDevice(t *testing.T) {
	if _, err := NewPipeline("A100"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestDevicesAndWorkloads(t *testing.T) {
	if len(Devices()) != 3 {
		t.Errorf("Devices = %v", Devices())
	}
	if len(Workloads()) != 6 {
		t.Errorf("Workloads = %v", Workloads())
	}
}

func TestQuickstartFlow(t *testing.T) {
	pipe := pipeline(t)
	w, err := NewModel(DLRMDefault, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if w.BatchSize() != 2048 || w.Ops() == 0 || w.Kernels() == 0 {
		t.Fatalf("workload identity: B=%d ops=%d kernels=%d", w.BatchSize(), w.Ops(), w.Kernels())
	}
	meas := pipe.Measure(w, 1)
	if meas.IterTimeUs <= 0 || meas.Utilization <= 0 || meas.Utilization > 1 {
		t.Fatalf("measurement: %+v", meas)
	}
	db, err := pipe.CollectOverheads(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := pipe.Predict(w, db)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(pred.E2EUs-meas.IterTimeUs) / meas.IterTimeUs; e > 0.25 {
		t.Errorf("E2E prediction error %.1f%%", 100*e)
	}
	ko, err := pipe.KernelOnly(w)
	if err != nil {
		t.Fatal(err)
	}
	if ko >= pred.E2EUs {
		t.Error("kernel-only must be below the full E2E prediction")
	}
}

func TestCustomDLRM(t *testing.T) {
	w, err := NewDLRM(DLRMConfig{
		Batch:          256,
		BottomMLP:      []int64{256, 128, 32},
		TopMLP:         []int64{256, 1},
		TableRows:      []int64{10000, 10000, 50000},
		EmbeddingDim:   32,
		LookupsPerItem: 4,
		Loss:           "mse",
		FuseEmbedding:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "DLRM_custom" {
		t.Errorf("name = %s", w.Name())
	}
	// Invalid config propagates the validation error.
	if _, err := NewDLRM(DLRMConfig{Batch: 0}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestResizeWhatIf(t *testing.T) {
	pipe := pipeline(t)
	w, err := NewModel(DLRMDDP, 512)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pipe.CollectOverheads(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	small, err := pipe.Predict(w, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ResizeBatch(4096); err != nil {
		t.Fatal(err)
	}
	big, err := pipe.Predict(w, db)
	if err != nil {
		t.Fatal(err)
	}
	if big.E2EUs <= small.E2EUs {
		t.Errorf("8x batch should predict slower: %v <= %v", big.E2EUs, small.E2EUs)
	}
}

func TestFuseEmbeddingBagsWhatIf(t *testing.T) {
	pipe := pipeline(t)
	w, err := NewDLRM(DLRMConfig{
		Batch:          512,
		BottomMLP:      []int64{512, 512, 64},
		TopMLP:         []int64{1024, 1024, 1024, 1},
		TableRows:      []int64{1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6},
		EmbeddingDim:   64,
		LookupsPerItem: 10,
		Loss:           "mse",
		FuseEmbedding:  false,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := pipe.CollectOverheads(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	before, err := pipe.Predict(w, db)
	if err != nil {
		t.Fatal(err)
	}
	fused := w.Clone()
	if err := fused.FuseEmbeddingBags(); err != nil {
		t.Fatal(err)
	}
	after, err := pipe.Predict(fused, db)
	if err != nil {
		t.Fatal(err)
	}
	if after.E2EUs >= before.E2EUs {
		t.Errorf("fusion predicted no gain: %v >= %v", after.E2EUs, before.E2EUs)
	}
	// The original is untouched; fusing an already-fused model errors.
	if err := fused.FuseEmbeddingBags(); err == nil {
		t.Error("double fusion should error")
	}
	if w.Ops() <= fused.Ops() {
		t.Error("fusion should reduce op count")
	}
}

func TestOverheadDBRoundTrip(t *testing.T) {
	pipe := pipeline(t)
	w, err := NewModel(DLRMDefault, 512)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pipe.CollectOverheads(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	data, err := db.JSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadOverheads(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pipe.Predict(w, db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipe.Predict(w, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if a.E2EUs != b.E2EUs {
		t.Errorf("serialized DB changed prediction: %v vs %v", a.E2EUs, b.E2EUs)
	}
}

func TestSharedOverheads(t *testing.T) {
	pipe := pipeline(t)
	var ws []*Workload
	for _, name := range []string{DLRMDefault, DLRMDDP} {
		w, err := NewModel(name, 1024)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	shared, err := pipe.SharedOverheads(ws, 6)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := pipe.Predict(ws[0], shared)
	if err != nil {
		t.Fatal(err)
	}
	if pred.E2EUs <= 0 {
		t.Error("shared-overhead prediction not positive")
	}
}

func TestExportGraph(t *testing.T) {
	w, err := NewModel(DLRMMLPerf, 256)
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.ExportGraph()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 1000 {
		t.Errorf("export suspiciously small: %d bytes", len(data))
	}
}

func TestKernelModelErrorsExposed(t *testing.T) {
	pipe := pipeline(t)
	errs := pipe.KernelModelErrors()
	if _, ok := errs["GEMM"]; !ok {
		t.Fatal("missing GEMM row")
	}
	if errs["GEMM"][0] <= 0 || errs["GEMM"][0] > 0.2 {
		t.Errorf("GEMM GMAE = %v", errs["GEMM"][0])
	}
	if pipe.Device() != V100 {
		t.Errorf("device = %s", pipe.Device())
	}
}

func TestPredictKernelUs(t *testing.T) {
	pipe := pipeline(t)
	small, err := pipe.PredictKernelUs(2048, 10_000, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	big, err := pipe.PredictKernelUs(2048, 10_000_000, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if small <= 0 || big <= small {
		t.Errorf("kernel predictions implausible: small=%v big=%v", small, big)
	}
}

func TestSaveLoadModels(t *testing.T) {
	pipe := pipeline(t)
	data, err := pipe.SaveModels()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadPipeline(V100, data)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewModel(DLRMDefault, 1024)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pipe.CollectOverheads(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pipe.Predict(w, db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Predict(w, db)
	if err != nil {
		t.Fatal(err)
	}
	if a.E2EUs != b.E2EUs {
		t.Errorf("restored pipeline predicts differently: %v vs %v", a.E2EUs, b.E2EUs)
	}
}

func TestEstimateMemoryFacade(t *testing.T) {
	w, err := NewModel(DLRMMLPerf, 2048)
	if err != nil {
		t.Fatal(err)
	}
	est := w.EstimateMemory("sgd")
	// The 26 Criteo tables at D=128 hold ~62M rows -> ~32 GB of weights.
	if est.EmbeddingTables < 20<<30 {
		t.Errorf("MLPerf embedding bytes = %d, expected tens of GB", est.EmbeddingTables)
	}
	if est.FitsInMemory(16<<30, 0.1) {
		t.Error("MLPerf at D=128 must not fit a 16 GB device (why the paper shrinks D to 32)")
	}
}

func TestPredictMultiGPUFacade(t *testing.T) {
	pipe := pipeline(t)
	w, err := NewModel(DLRMDefault, 2048)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pipe.CollectOverheads(w, 9)
	if err != nil {
		t.Fatal(err)
	}
	single, err := pipe.PredictMultiGPU(w, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := pipe.PredictMultiGPU(w, db, 8)
	if err != nil {
		t.Fatal(err)
	}
	if multi.E2E <= single.E2E {
		t.Error("8-GPU step should pay communication")
	}
	if multi.ScalingEfficiency >= 1 {
		t.Error("scaling efficiency must be below 1 with communication")
	}
}
