// Package dlrmperf is the public API of the DLRM GPU-training performance
// model — a Go reproduction of "Building a Performance Model for Deep
// Learning Recommendation Model Training on GPUs" (ISPASS 2022).
//
// The package wires together the reproduction's components behind a small
// surface:
//
//	pipe, _ := dlrmperf.NewPipeline(dlrmperf.V100)
//	w, _ := dlrmperf.NewModel(dlrmperf.DLRMDefault, 2048)
//	meas := pipe.Measure(w, 1)                   // simulated "hardware" run
//	db, _ := pipe.CollectOverheads(w, 2)         // trace -> overhead stats
//	pred, _ := pipe.Predict(w, db)               // Algorithm 1
//	fmt.Printf("measured %.2fms predicted %.2fms\n",
//	    meas.IterTimeUs/1000, pred.E2EUs/1000)
//
// Everything is deterministic in the seeds, runs offline, and uses only
// the standard library.
package dlrmperf

import (
	"fmt"

	"dlrmperf/internal/kernels"

	"dlrmperf/internal/engine"
	"dlrmperf/internal/graph"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/sim"
)

// Supported device names.
const (
	V100    = hw.V100
	TITANXp = hw.TITANXp
	P100    = hw.P100
)

// Built-in workload names.
const (
	DLRMDefault = models.NameDLRMDefault
	DLRMMLPerf  = models.NameDLRMMLPerf
	DLRMDDP     = models.NameDLRMDDP
	ResNet50    = models.NameResNet50
	InceptionV3 = models.NameInceptionV3
	Transformer = models.NameTransformer
)

// Devices lists the supported device names.
func Devices() []string { return hw.Names() }

// Workloads lists the built-in workload names.
func Workloads() []string {
	return []string{DLRMDefault, DLRMMLPerf, DLRMDDP, ResNet50, InceptionV3, Transformer}
}

// config holds pipeline construction options.
type config struct {
	seed       uint64
	gridSearch bool
	workers    int
	calib      perfmodel.CalibOptions
}

// Option customizes NewPipeline.
type Option func(*config)

// WithSeed sets the calibration seed (default 2022).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithGridSearch enables the Table II hyperparameter search when training
// the ML-based kernel models (slower, slightly more accurate).
func WithGridSearch() Option {
	return func(c *config) { c.gridSearch = true }
}

// WithCalibration overrides the full calibration options for advanced
// use (sweep sizes, ensemble counts, custom grids).
func WithCalibration(opts perfmodel.CalibOptions) Option {
	return func(c *config) { c.calib = opts }
}

// WithWorkers bounds the calibration worker pool (default:
// runtime.GOMAXPROCS). Any worker count yields bit-identical models.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// Pipeline owns the calibrated kernel performance models for one device —
// the reusable "assets" of the paper's prediction track. Calibration
// goes through the concurrent engine; the pipeline itself only keeps
// the resulting assets.
type Pipeline struct {
	platform hw.Platform
	cal      *perfmodel.Calibration
}

// NewPipeline calibrates kernel performance models for the named device
// by sweeping microbenchmarks on the simulated hardware and fitting the
// paper's heuristic and ML-based models. The per-kernel-family
// calibration jobs run concurrently on the engine's worker pool; the
// fitted models are bit-identical to a serial calibration of the same
// seed.
func NewPipeline(device string, opts ...Option) (*Pipeline, error) {
	p, err := hw.ByName(device)
	if err != nil {
		return nil, err
	}
	cfg := config{seed: 2022}
	for _, o := range opts {
		o(&cfg)
	}
	calOpts := cfg.calib
	if calOpts.Seed == 0 {
		calOpts.Seed = cfg.seed
	}
	calOpts.UseGridSearch = calOpts.UseGridSearch || cfg.gridSearch
	calOpts.IncludeCNN = true
	eng := engine.New(engine.Options{Seed: calOpts.Seed, Calib: calOpts, Workers: cfg.workers})
	cal, err := eng.Calibration(device)
	if err != nil {
		return nil, err
	}
	return &Pipeline{platform: p, cal: cal}, nil
}

// Device returns the pipeline's device name.
func (p *Pipeline) Device() string { return p.platform.GPU.Name }

// KernelModelErrors returns the held-out Table IV evaluation of every
// calibrated kernel model: row name -> (GMAE, mean, std).
func (p *Pipeline) KernelModelErrors() map[string][3]float64 {
	out := map[string][3]float64{}
	for _, e := range p.cal.Evals {
		out[e.Row] = [3]float64{e.Summary.GMAE, e.Summary.Mean, e.Summary.Std}
	}
	return out
}

// Workload wraps a model execution graph.
type Workload struct {
	model *models.Model
}

// NewModel builds a named workload at the given batch size.
func NewModel(name string, batch int64) (*Workload, error) {
	m, err := models.Build(name, batch)
	if err != nil {
		return nil, err
	}
	return &Workload{model: m}, nil
}

// DLRMConfig mirrors the Table III configuration surface for custom DLRM
// instances.
type DLRMConfig struct {
	Batch          int64
	BottomMLP      []int64 // BottomMLP[0] is the dense-feature width
	TopMLP         []int64 // must end in 1
	TableRows      []int64
	EmbeddingDim   int64
	LookupsPerItem int64
	Loss           string // "mse" or "bce"
	FuseEmbedding  bool
}

// NewDLRM builds a custom DLRM workload.
func NewDLRM(cfg DLRMConfig) (*Workload, error) {
	m, err := models.BuildDLRM(models.DLRMConfig{
		Name:           "DLRM_custom",
		Batch:          cfg.Batch,
		BotMLP:         cfg.BottomMLP,
		TopMLP:         cfg.TopMLP,
		EmbRows:        cfg.TableRows,
		EmbDim:         cfg.EmbeddingDim,
		Lookups:        cfg.LookupsPerItem,
		Loss:           cfg.Loss,
		FusedEmbedding: cfg.FuseEmbedding,
	})
	if err != nil {
		return nil, err
	}
	return &Workload{model: m}, nil
}

// Name returns the workload name.
func (w *Workload) Name() string { return w.model.Name }

// BatchSize returns the current batch size.
func (w *Workload) BatchSize() int64 { return w.model.Graph.BatchSize() }

// Ops returns the operator count of one training iteration.
func (w *Workload) Ops() int { return len(w.model.Graph.Nodes) }

// Kernels returns the kernel-launch count of one training iteration.
func (w *Workload) Kernels() int { return w.model.Graph.TotalKernels() }

// Clone deep-copies the workload so transforms don't alias.
func (w *Workload) Clone() *Workload { return &Workload{model: w.model.Clone()} }

// ResizeBatch re-propagates the graph for a new batch size — the
// "change batch size and re-predict" what-if, no re-capture needed.
func (w *Workload) ResizeBatch(b int64) error { return w.model.ResizeBatch(b) }

// FuseEmbeddingBags replaces per-table embedding_bag ops (and their
// concat, and the per-table backward ops) with batched lookups — the
// Fig. 11 co-design transform. It is a no-op error if the workload has no
// unfused embedding ops.
func (w *Workload) FuseEmbeddingBags() error {
	ids := models.EmbeddingBagNodes(w.model)
	if ids == nil {
		return fmt.Errorf("dlrmperf: workload has no unfused embedding_bag ops")
	}
	var rows []int64
	var l, d int64
	var skew float64
	for _, n := range w.model.Graph.Nodes {
		if bag, ok := n.Op.(ops.EmbeddingBag); ok && !bag.Backward {
			rows = append(rows, bag.Rows)
			l, d, skew = bag.L, bag.D, bag.ZipfSkew
		}
	}
	fwd := fusedLookup(rows, l, d, skew, false)
	if _, err := w.model.Graph.ReplaceNodes(ids, fwd); err != nil {
		return err
	}
	var bwdIDs []graph.NodeID
	for _, n := range w.model.Graph.Nodes {
		if n.Op.Name() == "EmbeddingBagBackward0" {
			bwdIDs = append(bwdIDs, n.ID)
		}
	}
	if len(bwdIDs) > 0 {
		if _, err := w.model.Graph.ReplaceNodes(bwdIDs, fusedLookup(rows, l, d, skew, true)); err != nil {
			return err
		}
	}
	return nil
}

// ExportGraph serializes the execution graph (ops, kernels, data
// dependencies) as JSON — the observer artifact of the paper's pipeline.
func (w *Workload) ExportGraph() ([]byte, error) {
	return w.model.Graph.MarshalJSON()
}

// Measurement is what a (simulated) hardware run reports.
type Measurement struct {
	// IterTimeUs is the measured per-batch training time in µs.
	IterTimeUs float64
	// ActiveTimeUs is the measured GPU active time per batch in µs.
	ActiveTimeUs float64
	// Utilization is ActiveTimeUs / IterTimeUs.
	Utilization float64
}

// Measure runs the workload on the pipeline's simulated device (5 warmup
// + 30 measured iterations) and reports the measured metrics.
func (p *Pipeline) Measure(w *Workload, seed uint64) Measurement {
	r := sim.Run(w.model.Graph, sim.Config{
		Platform: p.platform, Seed: seed, Warmup: 5, Iters: 30, Workload: w.model.Name,
	})
	return Measurement{
		IterTimeUs:   r.MeanIterTime,
		ActiveTimeUs: r.MeanActiveTime,
		Utilization:  r.Trace.Utilization(),
	}
}

// OverheadDB wraps the per-op host-overhead statistics extracted from
// profiled traces.
type OverheadDB struct {
	db *overhead.DB
}

// CollectOverheads runs the workload with profiling enabled and extracts
// the T1..T5 overhead statistics (IQR-trimmed means), the second asset of
// the prediction track.
func (p *Pipeline) CollectOverheads(w *Workload, seed uint64) (*OverheadDB, error) {
	r := sim.Run(w.model.Graph, sim.Config{
		Platform: p.platform, Seed: seed, Warmup: 5, Iters: 30,
		Profile: true, Workload: w.model.Name,
	})
	return &OverheadDB{db: overhead.FromTrace(r.Trace)}, nil
}

// SharedOverheads pools the overhead samples of several workloads — the
// shared database the paper proposes for large-scale prediction.
func (p *Pipeline) SharedOverheads(ws []*Workload, seed uint64) (*OverheadDB, error) {
	c := overhead.NewCollector()
	for i, w := range ws {
		r := sim.Run(w.model.Graph, sim.Config{
			Platform: p.platform, Seed: seed + uint64(i)*13, Warmup: 5, Iters: 30,
			Profile: true, Workload: w.model.Name,
		})
		c.Add(r.Trace)
	}
	return &OverheadDB{db: c.Finish()}, nil
}

// JSON serializes the overhead database.
func (o *OverheadDB) JSON() ([]byte, error) { return o.db.Marshal() }

// LoadOverheads parses a previously serialized overhead database.
func LoadOverheads(data []byte) (*OverheadDB, error) {
	db, err := overhead.Load(data)
	if err != nil {
		return nil, err
	}
	return &OverheadDB{db: db}, nil
}

// Prediction is the output of the E2E performance model.
type Prediction struct {
	// E2EUs is Algorithm 1's per-batch training time prediction in µs.
	E2EUs float64
	// ActiveUs is the predicted GPU active time in µs.
	ActiveUs float64
	// CPUUs is the predicted host critical-path time in µs.
	CPUUs float64
}

// Predict runs the critical-path E2E performance model (Algorithm 1) over
// the workload's execution graph without running the workload.
func (p *Pipeline) Predict(w *Workload, db *OverheadDB) (Prediction, error) {
	pr, err := predict.New(p.cal.Registry, db.db).Predict(w.model.Graph)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{E2EUs: pr.E2E, ActiveUs: pr.Active, CPUUs: pr.CPUTime}, nil
}

// KernelOnly returns the sum-of-kernel-times baseline prediction in µs.
func (p *Pipeline) KernelOnly(w *Workload) (float64, error) {
	return predict.New(p.cal.Registry, &overhead.DB{}).KernelOnly(w.model.Graph)
}

// PredictKernelUs predicts one embedding-lookup kernel's time in µs — the
// primitive behind sharding load-balance studies. rows/lookups/dim follow
// the paper's (E, L, D) parameterization.
func (p *Pipeline) PredictKernelUs(batch, rows, lookups, dim int64) (float64, error) {
	return p.cal.Registry.Predict(embeddingKernel(batch, rows, lookups, dim))
}

// SaveModels serializes the pipeline's calibrated kernel models. Together
// with an overhead database this is the complete, portable asset set for
// large-scale prediction: calibrate once per device, predict anywhere.
func (p *Pipeline) SaveModels() ([]byte, error) {
	return perfmodel.SaveRegistry(p.cal.Registry)
}

// LoadPipeline restores a pipeline from models serialized by SaveModels,
// skipping calibration entirely.
func LoadPipeline(device string, modelData []byte) (*Pipeline, error) {
	plat, err := hw.ByName(device)
	if err != nil {
		return nil, err
	}
	reg, err := perfmodel.LoadRegistry(modelData)
	if err != nil {
		return nil, err
	}
	return &Pipeline{platform: plat, cal: &perfmodel.Calibration{Registry: reg}}, nil
}

// MemoryEstimate re-exports the training memory footprint breakdown.
type MemoryEstimate = predict.MemoryEstimate

// EstimateMemory sizes the workload's training memory footprint for the
// given optimizer ("sgd", "momentum", or "adam") — the paper's
// batch-size-vs-memory-constraint what-if.
func (w *Workload) EstimateMemory(optimizer string) MemoryEstimate {
	return predict.EstimateMemory(w.model.Graph, w.model.Params, optimizer)
}

// MultiGPUPrediction re-exports the hybrid-parallel prediction result.
type MultiGPUPrediction = predict.MultiGPUPrediction

// PredictMultiGPU predicts hybrid-parallel DLRM training across n
// identical devices connected by NVLink-class links (the paper's §VI
// future-work extension): per-device Algorithm 1 plus ring all-reduce of
// the dense gradients and all-to-all embedding exchanges. The workload's
// graph must be built at the per-device batch size.
func (p *Pipeline) PredictMultiGPU(w *Workload, db *OverheadDB, n int) (MultiGPUPrediction, error) {
	embActBytes := int64(0)
	for _, node := range w.model.Graph.Nodes {
		for _, k := range w.model.Graph.NodeKernels(node) {
			if e, ok := k.(kernels.Embedding); ok && !e.Backward {
				embActBytes += e.B * e.T * e.D * 4
			}
		}
	}
	pred := predict.New(p.cal.Registry, db.db)
	return pred.PredictDataParallel(w.model.Graph, n, w.model.Params, embActBytes, predict.NVLinkCommModel())
}
