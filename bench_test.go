package dlrmperf

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section IV) plus the co-design studies of Section V:
//
//	go test -bench=. -benchmem
//
// Each benchmark drives the corresponding experiment and prints the
// rendered artifact once. Expensive assets (kernel-model calibrations,
// measured runs, overhead databases) are memoized in a shared Suite, so
// the first benchmark to need a device pays for its calibration and the
// rest reuse it. All results are deterministic in the suite seed.

import (
	"fmt"
	"sync"
	"testing"

	"dlrmperf/internal/experiments"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/perfmodel"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	printed    sync.Map
)

func suite() *experiments.Suite {
	benchOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.Options{Seed: 2022})
	})
	return benchSuite
}

// emit prints an artifact once per process, keeping -bench output tidy
// across b.N iterations.
func emit(key, artifact string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", artifact)
	}
}

func BenchmarkFig01Utilization(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig01()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig01", experiments.RenderFig01(rows))
	}
}

func BenchmarkFig05Breakdown(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		res, err := s.Fig05()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig05", experiments.RenderFig05(res))
	}
}

func BenchmarkTable04KernelModels(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		cells, err := s.Table04()
		if err != nil {
			b.Fatal(err)
		}
		emit("table04", experiments.RenderTable04(cells, hw.Names()))
	}
}

func BenchmarkFig07T1Overhead(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig07()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig07", experiments.RenderFig07(rows))
	}
}

func BenchmarkFig08OpOverheads(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig08()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig08", experiments.RenderFig08(rows))
	}
}

func BenchmarkFig09E2E(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig09()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig09", experiments.RenderFig09(rows))
	}
}

func BenchmarkTable05ErrorStats(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig09()
		if err != nil {
			b.Fatal(err)
		}
		emit("table05", experiments.RenderTable05(experiments.Table05(rows)))
	}
}

func BenchmarkFig10CNNComparison(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig10", experiments.RenderFig10(rows))
	}
}

func BenchmarkFig11OpFusion(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		emit("fig11", experiments.RenderFig11(rows))
	}
}

func BenchmarkShardingLoadBalance(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		schemes, err := s.Sharding(4)
		if err != nil {
			b.Fatal(err)
		}
		emit("sharding", experiments.RenderSharding(schemes))
	}
}

func BenchmarkAblationOverheadPolicy(b *testing.B) {
	s := suite()
	for i := 0; i < b.N; i++ {
		rows, err := s.AblationOverheadPolicy()
		if err != nil {
			b.Fatal(err)
		}
		emit("ablation", experiments.RenderAblation(rows))
	}
}

// benchCalibOptions sizes calibration for benchmarking: quarter sweeps
// and a small ensemble, so serial-vs-parallel wall-clock is measurable
// without dominating the suite.
func benchCalibOptions() perfmodel.CalibOptions {
	sizes := map[kernels.Kind]int{}
	for k, n := range microbench.DefaultSweepSizes() {
		sizes[k] = n / 4
	}
	return perfmodel.CalibOptions{
		Seed: 2022, SweepSizes: sizes, Ensemble: 2, IncludeCNN: true,
		MLPConfig: mlp.Config{HiddenLayers: 2, Width: 48, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 45, BatchSize: 64},
	}
}

// BenchmarkCalibrateSerial and BenchmarkCalibrateParallel track the
// perf trajectory of the concurrent calibration engine: the parallel
// path fans the per-kernel-family jobs (and ensemble members) out over
// GOMAXPROCS workers and must produce bit-identical models, so the
// ratio of these two numbers is the engine's wall-clock speedup.
func BenchmarkCalibrateSerial(b *testing.B) {
	p, err := hw.ByName(hw.V100)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchCalibOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perfmodel.Calibrate(p.GPU, opt)
	}
}

func BenchmarkCalibrateParallel(b *testing.B) {
	p, err := hw.ByName(hw.V100)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchCalibOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perfmodel.CalibrateParallel(p.GPU, opt, 0)
	}
}

// BenchmarkPredictBatch measures steady-state batched prediction
// throughput over a warm engine — the serve loop of
// cmd/dlrmperf-serve after calibration has been paid once.
func BenchmarkPredictBatch(b *testing.B) {
	eng, err := NewEngineWith(fastEngineConfig(V100, P100))
	if err != nil {
		b.Fatal(err)
	}
	reqs := batchRequests()
	if res := eng.PredictBatch(reqs); res[0].Err != nil { // warm the caches
		b.Fatal(res[0].Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range eng.PredictBatch(reqs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkPredictBatchCached and BenchmarkPredictBatchCold isolate the
// prediction result cache: both run the same 12-request batch on an
// engine whose assets are already warm, but the cold variant disables
// the result cache so every request re-walks its execution graph. The
// ratio of the two numbers is the cache's speedup on repeat traffic
// (identical requests inside a batch, or repeated PredictBatch calls).
func benchmarkPredictBatch(b *testing.B, cacheSize int) {
	cfg := fastEngineConfig(V100, P100)
	cfg.ResultCacheSize = cacheSize
	eng, err := NewEngineWith(cfg)
	if err != nil {
		b.Fatal(err)
	}
	reqs := batchRequests()
	if res := eng.PredictBatch(reqs); res[0].Err != nil { // warm assets (and cache, if any)
		b.Fatal(res[0].Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range eng.PredictBatch(reqs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkPredictBatchCached(b *testing.B) { benchmarkPredictBatch(b, 0) }

func BenchmarkPredictBatchCold(b *testing.B) { benchmarkPredictBatch(b, -1) }

// BenchmarkPredictSingleCached is the per-request floor of the warm
// serve path: one facade Predict whose result is already resident, so
// an iteration is a pooled key build, one store lookup, and an in-place
// result fill — no graph reconstruction, no sharding plan re-run.
func BenchmarkPredictSingleCached(b *testing.B) {
	eng, err := NewEngineWith(fastEngineConfig(V100))
	if err != nil {
		b.Fatal(err)
	}
	req := PredictRequest{Workload: DLRMDefault, Batch: 512, Device: V100}
	if res := eng.Predict(req); res.Err != nil { // warm assets and the result cache
		b.Fatal(res.Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := eng.Predict(req); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkPredictOnce measures the cost of a single Algorithm 1
// prediction over DLRM_default's graph — the paper notes a full E2E
// prediction completes in seconds; here it is microseconds because the
// graph is already captured and the models calibrated.
func BenchmarkPredictOnce(b *testing.B) {
	s := suite()
	db, err := s.OverheadDB(hw.V100, "DLRM_default")
	if err != nil {
		b.Fatal(err)
	}
	pred, err := s.Predictor(hw.V100, db)
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewModel(DLRMDefault, 2048)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Predict(w.model.Graph); err != nil {
			b.Fatal(err)
		}
	}
}
