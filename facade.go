package dlrmperf

import (
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/ops"
)

// fusedLookup builds the batched lookup op used by FuseEmbeddingBags.
func fusedLookup(rows []int64, l, d int64, skew float64, backward bool) ops.EmbeddingLookup {
	return ops.EmbeddingLookup{Rows: rows, L: l, D: d, ZipfSkew: skew, Backward: backward}
}

// embeddingKernel builds a single-table lookup kernel for PredictKernelUs.
func embeddingKernel(batch, rows, lookups, dim int64) kernels.Kernel {
	return kernels.Embedding{B: batch, E: rows, T: 1, L: lookups, D: dim}
}
