package dlrmperf

import (
	"dlrmperf/internal/engine"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/ops"
)

// StreamStats is the engine's async-stream observability block:
// in-flight request count and high-water mark, served/canceled totals,
// and wall-clock latency aggregates. Served equals CacheStats'
// hits+misses — every validated request is accounted exactly once,
// with caller-abandoned requests (Canceled) a subset of the misses.
type StreamStats = engine.StreamStats

// StreamStats returns the engine's async-stream counters: requests
// currently inside the predict path, the concurrency high-water mark,
// completed and canceled totals, and latency aggregates. The serving
// layer (internal/serve) exposes them on GET /stats.
func (e *Engine) StreamStats() StreamStats { return e.eng.StreamStats() }

// fusedLookup builds the batched lookup op used by FuseEmbeddingBags.
func fusedLookup(rows []int64, l, d int64, skew float64, backward bool) ops.EmbeddingLookup {
	return ops.EmbeddingLookup{Rows: rows, L: l, D: d, ZipfSkew: skew, Backward: backward}
}

// embeddingKernel builds a single-table lookup kernel for PredictKernelUs.
func embeddingKernel(batch, rows, lookups, dim int64) kernels.Kernel {
	return kernels.Embedding{B: batch, E: rows, T: 1, L: lookups, D: dim}
}
