package dlrmperf

import (
	"context"

	"dlrmperf/internal/engine"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/ops"
)

// StreamStats is the engine's async-stream observability block:
// in-flight request count and high-water mark, served/canceled totals,
// and wall-clock latency aggregates. Served equals CacheStats'
// hits+misses — every validated request is accounted exactly once,
// with caller-abandoned requests (Canceled) a subset of the misses.
type StreamStats = engine.StreamStats

// StreamStats returns the engine's async-stream counters: requests
// currently inside the predict path, the concurrency high-water mark,
// completed and canceled totals, and latency aggregates. The serving
// layer (internal/serve) exposes them on GET /stats.
func (e *Engine) StreamStats() StreamStats { return e.eng.StreamStats() }

// RemoteResult serves req through the engine's scenario-fingerprint
// result cache with an externally supplied computation — the cluster
// coordinator's pass-through. A resident entry returns hit=true
// without invoking fetch; otherwise fetch runs exactly once among
// identical concurrent requests (the engine's singleflight) and its
// value — opaque to the engine, e.g. a worker's wire result row — is
// stored under the request's fingerprint. A request that cannot be
// resolved to a cache identity (unknown scenario name, malformed
// width) falls through: fetch runs uncached so the remote worker still
// owns the validation verdict and its rejection accounting.
func (e *Engine) RemoteResult(ctx context.Context, req PredictRequest, fetch func() (any, error)) (v any, hit bool, err error) {
	ereq, err := toEngine(req)
	if err != nil {
		v, err = fetch()
		return v, false, err
	}
	return e.eng.RemoteResult(ctx, ereq, fetch)
}

// InstallRemoteResult seeds the fingerprint result cache with an
// externally computed value under the request's remote key — the
// coordinator replication path, the write half of RemoteResult: a peer
// coordinator that fetched a row from a worker shares it here so a
// repeat hitting this coordinator is a cache hit. A request with no
// cache identity is dropped (nothing to key it by), and no request
// counters move — a replicated entry is an install, not a served
// request.
func (e *Engine) InstallRemoteResult(req PredictRequest, v any) {
	ereq, err := toEngine(req)
	if err != nil {
		return
	}
	e.eng.InstallRemoteResult(ereq, v)
}

// fusedLookup builds the batched lookup op used by FuseEmbeddingBags.
func fusedLookup(rows []int64, l, d int64, skew float64, backward bool) ops.EmbeddingLookup {
	return ops.EmbeddingLookup{Rows: rows, L: l, D: d, ZipfSkew: skew, Backward: backward}
}

// embeddingKernel builds a single-table lookup kernel for PredictKernelUs.
func embeddingKernel(batch, rows, lookups, dim int64) kernels.Kernel {
	return kernels.Embedding{B: batch, E: rows, T: 1, L: lookups, D: dim}
}
