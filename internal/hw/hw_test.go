package hw

import "testing"

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.GPU.Name != name {
			t.Errorf("ByName(%q) returned GPU %q", name, p.GPU.Name)
		}
	}
	if _, err := ByName("A100"); err == nil {
		t.Error("ByName of unknown platform should error")
	}
}

func TestAllCount(t *testing.T) {
	if got := len(All()); got != 3 {
		t.Fatalf("All() has %d platforms, want 3", got)
	}
}

func TestSpecSanity(t *testing.T) {
	for _, p := range All() {
		g := p.GPU
		if g.NumSMs <= 0 {
			t.Errorf("%s: NumSMs = %d", g.Name, g.NumSMs)
		}
		if g.PeakFP32 <= 0 || g.DRAMBandwidth <= 0 || g.L2Bandwidth <= 0 {
			t.Errorf("%s: non-positive throughput spec", g.Name)
		}
		if g.L2Bandwidth <= g.DRAMBandwidth {
			t.Errorf("%s: L2 bandwidth %v should exceed DRAM bandwidth %v",
				g.Name, g.L2Bandwidth, g.DRAMBandwidth)
		}
		if g.PCIeBandwidth >= g.DRAMBandwidth {
			t.Errorf("%s: PCIe bandwidth should be far below DRAM", g.Name)
		}
		if g.L2Size <= 0 || g.MinKernelTime <= 0 || g.KernelLaunchLatency <= 0 {
			t.Errorf("%s: non-positive latency/size spec", g.Name)
		}
		if p.Host.OverheadScale <= 0 || p.Host.OverheadCV <= 0 {
			t.Errorf("%s: invalid host profile %+v", g.Name, p.Host)
		}
		if p.Host.TailWeight < 0 || p.Host.TailWeight >= 1 {
			t.Errorf("%s: TailWeight %v out of [0,1)", g.Name, p.Host.TailWeight)
		}
	}
}

func TestV100IsFastest(t *testing.T) {
	v, x, p := V100Platform().GPU, TITANXpPlatform().GPU, P100Platform().GPU
	if !(v.PeakFP32 > x.PeakFP32 && x.PeakFP32 > p.PeakFP32) {
		t.Error("expected FLOPS ordering V100 > TITAN Xp > P100")
	}
	if !(v.DRAMBandwidth > p.DRAMBandwidth && p.DRAMBandwidth > x.DRAMBandwidth) {
		t.Error("expected DRAM BW ordering V100 > P100 > TITAN Xp")
	}
}
