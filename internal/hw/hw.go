// Package hw describes the hardware platforms the paper evaluates on:
// NVIDIA Tesla V100, GeForce TITAN Xp, and Tesla P100 GPUs, each paired
// with a host CPU profile. The GPU numbers are the public datasheet /
// micro-benchmarked figures the paper's heuristic models consume (peak
// FLOPS, DRAM bandwidth, L2 size and bandwidth, SM count), in the units
// used throughout this repository: microseconds, bytes, and
// operations-or-bytes per microsecond.
package hw

import "fmt"

// GPU describes one GPU device. All bandwidth figures are in bytes per
// microsecond (1 GB/s == 1000 B/µs) and compute in FLOP per microsecond
// (1 GFLOP/s == 1000 FLOP/µs) so that kernel cost math yields
// microseconds directly.
type GPU struct {
	Name string

	// NumSMs is the number of streaming multiprocessors.
	NumSMs int

	// PeakFP32 is the peak single-precision throughput in FLOP/µs.
	PeakFP32 float64

	// DRAMBandwidth is the peak device-memory bandwidth in B/µs.
	DRAMBandwidth float64

	// L2Size is the last-level cache capacity in bytes.
	L2Size int64

	// L2Bandwidth is the L2 cache bandwidth in B/µs.
	L2Bandwidth float64

	// PCIeBandwidth is the host<->device copy bandwidth in B/µs.
	PCIeBandwidth float64

	// KernelLaunchLatency is the device-side latency in µs between a
	// kernel launch reaching the device and the kernel starting when the
	// stream is empty.
	KernelLaunchLatency float64

	// MinKernelTime is the floor duration in µs of any kernel (dispatch,
	// blocks ramp-up, tail effects); even an empty kernel costs this.
	MinKernelTime float64

	// MaxThreadsPerSM bounds resident threads used by occupancy-style
	// corrections in the ground-truth cost models.
	MaxThreadsPerSM int
}

// Host describes the CPU side of a platform. Host speed shapes the
// magnitude of the five overhead types (T1..T5): a slower host launches
// kernels with larger gaps, which is what makes low-utilization models
// CPU-bound (Fig. 4 left case).
type Host struct {
	Name string

	// OverheadScale multiplies every sampled overhead mean. 1.0 is the
	// reference host (the paper's V100 node).
	OverheadScale float64

	// OverheadCV is the default coefficient of variation for overhead
	// distributions on this host.
	OverheadCV float64

	// TailWeight in [0,1) is the probability that an overhead sample is
	// drawn from the long tail (3-8x the mean). The paper observes
	// long-tail overheads (esp. T1 and cudaMemcpyAsync T4) that cause
	// E2E underestimation when means of trimmed samples are used.
	TailWeight float64
}

// Platform pairs a GPU with its host.
type Platform struct {
	GPU  GPU
	Host Host
}

// Platform names used across experiments.
const (
	V100    = "V100"
	TITANXp = "TITAN Xp"
	P100    = "P100"
)

// V100Platform returns the Tesla V100 platform (the paper's primary
// machine): 80 SMs, 15.7 TFLOPS fp32, 900 GB/s HBM2, 6 MB L2.
func V100Platform() Platform {
	return Platform{
		GPU: GPU{
			Name:                V100,
			NumSMs:              80,
			PeakFP32:            15.7e6, // 15.7 TFLOPS = 15.7e6 FLOP/µs
			DRAMBandwidth:       900e3,  // 900 GB/s
			L2Size:              6 << 20,
			L2Bandwidth:         2155e3, // ~2.2 TB/s measured
			PCIeBandwidth:       12.3e3, // ~12.3 GB/s pinned H2D
			KernelLaunchLatency: 3.0,
			MinKernelTime:       1.7,
			MaxThreadsPerSM:     2048,
		},
		Host: Host{
			Name:          "xeon-gold-6138",
			OverheadScale: 1.0,
			OverheadCV:    0.35,
			TailWeight:    0.03,
		},
	}
}

// TITANXpPlatform returns the GeForce TITAN Xp platform: 60 SMs,
// 12.1 TFLOPS fp32, 547 GB/s GDDR5X, 3 MB L2.
func TITANXpPlatform() Platform {
	return Platform{
		GPU: GPU{
			Name:                TITANXp,
			NumSMs:              60,
			PeakFP32:            12.15e6,
			DRAMBandwidth:       547e3,
			L2Size:              3 << 20,
			L2Bandwidth:         1400e3,
			PCIeBandwidth:       11.5e3,
			KernelLaunchLatency: 3.4,
			MinKernelTime:       1.9,
			MaxThreadsPerSM:     2048,
		},
		Host: Host{
			Name:          "i7-8700k",
			OverheadScale: 0.92, // desktop CPU with higher single-core clocks
			OverheadCV:    0.32,
			TailWeight:    0.025,
		},
	}
}

// P100Platform returns the Tesla P100 platform: 56 SMs, 9.5 TFLOPS fp32,
// 732 GB/s HBM2, 4 MB L2.
func P100Platform() Platform {
	return Platform{
		GPU: GPU{
			Name:                P100,
			NumSMs:              56,
			PeakFP32:            9.5e6,
			DRAMBandwidth:       732e3,
			L2Size:              4 << 20,
			L2Bandwidth:         1600e3,
			PCIeBandwidth:       11.8e3,
			KernelLaunchLatency: 3.6,
			MinKernelTime:       2.1,
			MaxThreadsPerSM:     2048,
		},
		Host: Host{
			Name:          "xeon-e5-2698",
			OverheadScale: 1.12, // older server cores, slower dispatch
			OverheadCV:    0.40,
			TailWeight:    0.04,
		},
	}
}

// ByName returns the platform with the given GPU name.
func ByName(name string) (Platform, error) {
	switch name {
	case V100:
		return V100Platform(), nil
	case TITANXp:
		return TITANXpPlatform(), nil
	case P100:
		return P100Platform(), nil
	}
	return Platform{}, fmt.Errorf("hw: unknown platform %q", name)
}

// All returns the three evaluation platforms in the paper's order.
func All() []Platform {
	return []Platform{V100Platform(), TITANXpPlatform(), P100Platform()}
}

// Names returns the GPU names of All() in order.
func Names() []string {
	return []string{V100, TITANXp, P100}
}
