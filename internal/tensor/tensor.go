// Package tensor provides the lightweight tensor *metadata* the execution
// graph and kernel parameter computations are built from. Performance
// modeling never needs element values — only shapes, dtypes, and byte
// counts — so a tensor here is a shape descriptor, mirroring what the
// paper's execution-graph observer records about each op's inputs and
// outputs.
package tensor

import (
	"fmt"
	"strings"
)

// DType enumerates the element types that appear in DLRM and the CV/NLP
// models we build.
type DType int

// Supported element types.
const (
	Float32 DType = iota
	Float16
	Int64
	Int32
)

// Size returns the element size in bytes.
func (d DType) Size() int64 {
	switch d {
	case Float32, Int32:
		return 4
	case Float16:
		return 2
	case Int64:
		return 8
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case Int64:
		return "int64"
	case Int32:
		return "int32"
	}
	return fmt.Sprintf("dtype(%d)", int(d))
}

// Meta describes one tensor: its shape and element type. The zero value
// is a scalar float32.
type Meta struct {
	Shape []int64
	DType DType
}

// New returns a float32 tensor with the given shape.
func New(shape ...int64) Meta {
	return Meta{Shape: shape, DType: Float32}
}

// NewTyped returns a tensor of dtype dt with the given shape.
func NewTyped(dt DType, shape ...int64) Meta {
	return Meta{Shape: shape, DType: dt}
}

// Rank returns the number of dimensions.
func (m Meta) Rank() int { return len(m.Shape) }

// Dim returns dimension i, supporting negative indices Python-style.
func (m Meta) Dim(i int) int64 {
	if i < 0 {
		i += len(m.Shape)
	}
	if i < 0 || i >= len(m.Shape) {
		panic(fmt.Sprintf("tensor: dim %d out of range for rank %d", i, len(m.Shape)))
	}
	return m.Shape[i]
}

// Numel returns the number of elements.
func (m Meta) Numel() int64 {
	n := int64(1)
	for _, d := range m.Shape {
		n *= d
	}
	return n
}

// Bytes returns the storage size in bytes.
func (m Meta) Bytes() int64 {
	return m.Numel() * m.DType.Size()
}

// WithBatch returns a copy of m with dimension 0 replaced by b. It is the
// primitive behind the execution-graph "resize" transform (changing batch
// size without re-capturing the graph). Scalars are returned unchanged.
func (m Meta) WithBatch(b int64) Meta {
	if len(m.Shape) == 0 {
		return m
	}
	shape := append([]int64(nil), m.Shape...)
	shape[0] = b
	return Meta{Shape: shape, DType: m.DType}
}

// Equal reports whether two tensors have identical shape and dtype.
func (m Meta) Equal(o Meta) bool {
	if m.DType != o.DType || len(m.Shape) != len(o.Shape) {
		return false
	}
	for i := range m.Shape {
		if m.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// String renders like "float32[2048, 64]".
func (m Meta) String() string {
	parts := make([]string, len(m.Shape))
	for i, d := range m.Shape {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return fmt.Sprintf("%s[%s]", m.DType, strings.Join(parts, ", "))
}
