package tensor

import (
	"testing"
	"testing/quick"
)

func TestNumelAndBytes(t *testing.T) {
	m := New(2048, 64)
	if m.Numel() != 2048*64 {
		t.Errorf("Numel = %d", m.Numel())
	}
	if m.Bytes() != 2048*64*4 {
		t.Errorf("Bytes = %d", m.Bytes())
	}
	i := NewTyped(Int64, 100)
	if i.Bytes() != 800 {
		t.Errorf("int64 Bytes = %d", i.Bytes())
	}
}

func TestScalar(t *testing.T) {
	s := New()
	if s.Numel() != 1 || s.Rank() != 0 {
		t.Errorf("scalar: numel=%d rank=%d", s.Numel(), s.Rank())
	}
	if got := s.WithBatch(16); !got.Equal(s) {
		t.Errorf("WithBatch on scalar changed it: %v", got)
	}
}

func TestDim(t *testing.T) {
	m := New(4, 5, 6)
	if m.Dim(0) != 4 || m.Dim(2) != 6 {
		t.Error("positive Dim wrong")
	}
	if m.Dim(-1) != 6 || m.Dim(-3) != 4 {
		t.Error("negative Dim wrong")
	}
}

func TestDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Dim did not panic")
		}
	}()
	New(2, 3).Dim(5)
}

func TestWithBatch(t *testing.T) {
	m := New(512, 64)
	b := m.WithBatch(4096)
	if b.Dim(0) != 4096 || b.Dim(1) != 64 {
		t.Errorf("WithBatch = %v", b)
	}
	// Original must be unchanged (no aliasing).
	if m.Dim(0) != 512 {
		t.Error("WithBatch mutated the receiver")
	}
}

func TestWithBatchNoAliasing(t *testing.T) {
	f := func(a, b uint16) bool {
		dims := []int64{int64(a)%100 + 1, 7}
		m := Meta{Shape: dims, DType: Float32}
		n := m.WithBatch(int64(b)%100 + 1)
		n.Shape[1] = 999
		return m.Shape[1] == 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	if !New(2, 3).Equal(New(2, 3)) {
		t.Error("equal shapes reported unequal")
	}
	if New(2, 3).Equal(New(3, 2)) {
		t.Error("different shapes reported equal")
	}
	if New(2).Equal(NewTyped(Int64, 2)) {
		t.Error("different dtypes reported equal")
	}
	if New(2).Equal(New(2, 1)) {
		t.Error("different ranks reported equal")
	}
}

func TestString(t *testing.T) {
	got := New(2048, 64).String()
	if got != "float32[2048, 64]" {
		t.Errorf("String = %q", got)
	}
	got = NewTyped(Int64, 3).String()
	if got != "int64[3]" {
		t.Errorf("String = %q", got)
	}
}

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int64{Float32: 4, Float16: 2, Int64: 8, Int32: 4}
	for dt, want := range cases {
		if dt.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", dt, dt.Size(), want)
		}
	}
}
