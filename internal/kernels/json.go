package kernels

import (
	"encoding/json"
	"fmt"
)

// wireKernel is the tagged-union JSON form of a Kernel, used when
// exporting execution graphs and microbenchmark datasets.
type wireKernel struct {
	Type string          `json:"type"`
	Args json.RawMessage `json:"args"`
}

// MarshalKernel encodes k as a tagged JSON object.
func MarshalKernel(k Kernel) ([]byte, error) {
	var (
		typ string
		val any
	)
	switch kk := k.(type) {
	case GEMM:
		typ, val = "gemm", kk
	case Embedding:
		typ, val = "embedding", kk
	case Concat:
		typ, val = "concat", kk
	case Memcpy:
		typ, val = "memcpy", kk
	case Transpose:
		typ, val = "transpose", kk
	case Tril:
		typ, val = "tril", kk
	case Elementwise:
		typ, val = "elementwise", kk
	case Conv:
		typ, val = "conv", kk
	case BatchNorm:
		typ, val = "batchnorm", kk
	default:
		return nil, fmt.Errorf("kernels: cannot marshal kernel type %T", k)
	}
	args, err := json.Marshal(val)
	if err != nil {
		return nil, err
	}
	return json.Marshal(wireKernel{Type: typ, Args: args})
}

// UnmarshalKernel decodes a kernel previously encoded by MarshalKernel.
func UnmarshalKernel(data []byte) (Kernel, error) {
	var w wireKernel
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	decode := func(dst any) error { return json.Unmarshal(w.Args, dst) }
	switch w.Type {
	case "gemm":
		var k GEMM
		return k, decode(&k)
	case "embedding":
		var k Embedding
		return k, decode(&k)
	case "concat":
		var k Concat
		return k, decode(&k)
	case "memcpy":
		var k Memcpy
		return k, decode(&k)
	case "transpose":
		var k Transpose
		return k, decode(&k)
	case "tril":
		var k Tril
		return k, decode(&k)
	case "elementwise":
		var k Elementwise
		return k, decode(&k)
	case "conv":
		var k Conv
		return k, decode(&k)
	case "batchnorm":
		var k BatchNorm
		return k, decode(&k)
	}
	return nil, fmt.Errorf("kernels: unknown kernel type %q", w.Type)
}
