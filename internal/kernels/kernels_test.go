package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"dlrmperf/internal/hw"
)

func TestGEMMAccounting(t *testing.T) {
	g := GEMM{Batch: 1, M: 128, N: 64, K: 32}
	if got := g.FLOPs(); got != 2*128*64*32 {
		t.Errorf("FLOPs = %v", got)
	}
	r, w := g.Bytes()
	if r != 4*(128*32+32*64) || w != 4*128*64 {
		t.Errorf("Bytes = %v, %v", r, w)
	}
	if len(g.Features()) != 4 {
		t.Errorf("Features len = %d", len(g.Features()))
	}
}

func TestEmbeddingKindAndFLOPs(t *testing.T) {
	e := Embedding{B: 128, E: 1000, T: 4, L: 8, D: 64}
	if e.Kind() != KindEmbeddingFwd {
		t.Error("forward kind wrong")
	}
	b := e
	b.Backward = true
	if b.Kind() != KindEmbeddingBwd {
		t.Error("backward kind wrong")
	}
	if b.FLOPs() != 2*e.FLOPs() {
		t.Error("backward FLOPs should be 2x forward")
	}
}

func TestEmbeddingWithDefaults(t *testing.T) {
	e := Embedding{B: 1, E: 1, T: 1, L: 1, D: 1}
	if e.WithDefaults().RowsPerBlock != DefaultRowsPerBlock {
		t.Error("WithDefaults did not fill RowsPerBlock")
	}
	e.RowsPerBlock = 8
	if e.WithDefaults().RowsPerBlock != 8 {
		t.Error("WithDefaults overwrote explicit RowsPerBlock")
	}
}

func TestTrilOutElems(t *testing.T) {
	tr := Tril{B: 2, F: 9}
	if tr.OutElems() != 36 {
		t.Errorf("OutElems = %d, want 36", tr.OutElems())
	}
	fr, fw := tr.Bytes()
	br, bw := Tril{B: 2, F: 9, Backward: true}.Bytes()
	// Backward mirrors forward: reads what forward wrote, writes what it read.
	if fr != bw || fw != br {
		t.Errorf("tril fwd/bwd traffic not mirrored: fwd=(%v,%v) bwd=(%v,%v)", fr, fw, br, bw)
	}
}

func TestConvOutHWAndGEMM(t *testing.T) {
	c := Conv{N: 32, C: 64, H: 56, W: 56, K: 128, R: 3, S: 3, Stride: 1, PadH: 1, PadW: 1}
	p, q := c.OutHW()
	if p != 56 || q != 56 {
		t.Errorf("OutHW = %d,%d want 56,56", p, q)
	}
	g := c.AsGEMM()
	if g.M != 32*56*56 || g.N != 128 || g.K != 64*9 {
		t.Errorf("AsGEMM = %+v", g)
	}
	c2 := Conv{N: 1, C: 3, H: 224, W: 224, K: 64, R: 7, S: 7, Stride: 2, PadH: 3, PadW: 3}
	p, q = c2.OutHW()
	if p != 112 || q != 112 {
		t.Errorf("stride-2 OutHW = %d,%d want 112,112", p, q)
	}
}

func TestKindStringsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

func newV100() *Device { return NewDevice(hw.V100Platform().GPU, 1) }

func TestGEMMTimeScalesWithWork(t *testing.T) {
	d := newV100()
	small := d.BaseTime(GEMM{Batch: 1, M: 256, N: 256, K: 256})
	big := d.BaseTime(GEMM{Batch: 1, M: 2048, N: 2048, K: 2048})
	if big <= small {
		t.Fatalf("bigger GEMM not slower: %v <= %v", big, small)
	}
	// 512x more FLOPs should be at least 50x slower (quantization and
	// floors compress the ratio but not that much).
	if big/small < 50 {
		t.Errorf("GEMM scaling ratio %v suspiciously flat", big/small)
	}
}

func TestGEMM1024RealisticRange(t *testing.T) {
	d := newV100()
	got := d.BaseTime(GEMM{Batch: 1, M: 1024, N: 1024, K: 1024})
	// cuBLAS fp32 1024^3 on V100 lands in the 150-350 µs range.
	if got < 100 || got > 500 {
		t.Errorf("1024^3 GEMM time = %v µs, outside plausible range", got)
	}
}

func TestGEMMWaveQuantization(t *testing.T) {
	d := newV100()
	// 80 SMs: with the 64-wide tile an 80-CTA grid (M=640, N=512) fits
	// one wave, while 88 CTAs (M=704) spill into a second round, so the
	// per-FLOP cost must jump even though the work barely grows. (The
	// dispatcher partially absorbs the cliff by switching tiles, so the
	// visible jump is smaller than the raw 2x round count.)
	a := GEMM{Batch: 1, M: 640, N: 512, K: 2048}
	b := GEMM{Batch: 1, M: 704, N: 512, K: 2048}
	ta := d.BaseTime(a) / a.FLOPs()
	tb := d.BaseTime(b) / b.FLOPs()
	if tb < ta*1.25 {
		t.Errorf("no wave quantization visible: %v vs %v µs/FLOP", tb, ta)
	}
}

func TestEmbeddingSmallTableFasterPerRow(t *testing.T) {
	d := newV100()
	small := Embedding{B: 1024, E: 1000, T: 8, L: 16, D: 64}
	large := Embedding{B: 1024, E: 10_000_000, T: 8, L: 16, D: 64}
	ts := d.BaseTime(small)
	tl := d.BaseTime(large)
	// The small table lives in L2, so it must be faster despite moving
	// the same logical traffic.
	if ts >= tl {
		t.Errorf("L2-resident lookup not faster: small=%v large=%v", ts, tl)
	}
}

func TestEmbeddingBackwardSlower(t *testing.T) {
	d := newV100()
	f := Embedding{B: 2048, E: 1_000_000, T: 8, L: 10, D: 64}
	b := f
	b.Backward = true
	if d.BaseTime(b) <= d.BaseTime(f) {
		t.Error("backward lookup should be slower than forward")
	}
}

func TestMemcpyLatencyFloor(t *testing.T) {
	d := newV100()
	tiny := d.BaseTime(Memcpy{NBytes: 64, Dir: H2D})
	if tiny < 5 {
		t.Errorf("tiny memcpy %v µs is below the driver latency floor", tiny)
	}
	big := d.BaseTime(Memcpy{NBytes: 64 << 20, Dir: H2D})
	// 64 MB over ~12 GB/s PCIe is ~5.4 ms.
	if big < 4000 || big > 9000 {
		t.Errorf("64MB H2D = %v µs, implausible", big)
	}
}

func TestTransposeAlignmentPenalty(t *testing.T) {
	d := newV100()
	aligned := d.BaseTime(Transpose{B: 64, M: 512, N: 512})
	misaligned := d.BaseTime(Transpose{B: 64, M: 512, N: 513})
	perByteA := aligned / (4 * 64 * 512 * 512)
	perByteM := misaligned / (4 * 64 * 512 * 513)
	if perByteM <= perByteA {
		t.Error("misaligned transpose should cost more per byte")
	}
}

func TestTrilBackwardSlower(t *testing.T) {
	d := newV100()
	f := d.BaseTime(Tril{B: 4096, F: 27})
	b := d.BaseTime(Tril{B: 4096, F: 27, Backward: true})
	if b <= f {
		t.Errorf("tril backward (%v) should exceed forward (%v)", b, f)
	}
}

func TestQuirkStability(t *testing.T) {
	d1 := NewDevice(hw.V100Platform().GPU, 1)
	d2 := NewDevice(hw.V100Platform().GPU, 999)
	k := GEMM{Batch: 1, M: 777, N: 333, K: 555}
	// BaseTime must not depend on the RNG seed — quirks are properties of
	// the (shape, device) pair, not of the run.
	if d1.BaseTime(k) != d2.BaseTime(k) {
		t.Error("BaseTime depends on seed; quirk must be deterministic")
	}
}

func TestQuirkVariesAcrossDevices(t *testing.T) {
	v := NewDevice(hw.V100Platform().GPU, 1)
	p := NewDevice(hw.P100Platform().GPU, 1)
	k := Transpose{B: 8, M: 100, N: 100}
	rv := v.BaseTime(k) / p.BaseTime(k)
	// Devices differ in both specs and quirks; just assert they differ.
	if rv == 1 {
		t.Error("different devices produced identical kernel time")
	}
}

func TestRunNoiseAveragesOut(t *testing.T) {
	d := newV100()
	k := GEMM{Batch: 1, M: 512, N: 512, K: 512}
	base := d.BaseTime(k)
	avg := d.RunAveraged(k, 200)
	if math.Abs(avg-base)/base > 0.02 {
		t.Errorf("200-run average %v deviates from base %v", avg, base)
	}
}

func TestRunIsNoisy(t *testing.T) {
	d := newV100()
	k := GEMM{Batch: 1, M: 512, N: 512, K: 512}
	a, b := d.Run(k), d.Run(k)
	if a == b {
		t.Error("two runs returned identical noisy times")
	}
}

func TestAllKernelTimesPositive(t *testing.T) {
	for _, p := range hw.All() {
		d := NewDevice(p.GPU, 7)
		ks := []Kernel{
			GEMM{Batch: 1, M: 1, N: 1, K: 1},
			GEMM{Batch: 64, M: 2048, N: 1024, K: 512},
			Embedding{B: 1, E: 1, T: 1, L: 1, D: 1},
			Embedding{B: 4096, E: 14_000_000, T: 26, L: 1, D: 128},
			Embedding{B: 512, E: 80000, T: 8, L: 100, D: 128, Backward: true},
			Concat{OutBytes: 1, NInputs: 1},
			Concat{OutBytes: 1 << 26, NInputs: 27},
			Memcpy{NBytes: 1, Dir: H2D},
			Memcpy{NBytes: 1 << 28, Dir: D2D},
			Memcpy{NBytes: 1 << 20, Dir: D2H},
			Transpose{B: 1, M: 1, N: 1},
			Tril{B: 1, F: 2},
			Tril{B: 8192, F: 27, Backward: true},
			Elementwise{Name: "relu", NElems: 1 << 22, ReadsPerElem: 4, WritesPerElem: 4},
			Conv{N: 16, C: 3, H: 224, W: 224, K: 64, R: 7, S: 7, Stride: 2, PadH: 3, PadW: 3},
			BatchNorm{N: 16, C: 64, H: 112, W: 112},
		}
		for _, k := range ks {
			got := d.BaseTime(k)
			if got <= 0 || math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("%s: BaseTime(%s) = %v", p.GPU.Name, k, got)
			}
			if got < p.GPU.MinKernelTime*0.5 {
				t.Errorf("%s: %s faster than kernel floor: %v", p.GPU.Name, k, got)
			}
		}
	}
}

func TestMostlyMonotoneInBatch(t *testing.T) {
	// Real GPU kernels are not strictly monotone in problem size (tile
	// selection cliffs), but a bigger batch must never be *much* cheaper.
	d := newV100()
	f := func(b1Raw, b2Raw uint8) bool {
		b1 := int64(b1Raw%12) + 1
		b2 := b1 + int64(b2Raw%12) + 1
		mk := func(b int64) float64 {
			return d.BaseTime(GEMM{Batch: b, M: 256, N: 256, K: 256})
		}
		return mk(b2) >= 0.6*mk(b1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFasterGPUFasterOnBigGEMM(t *testing.T) {
	v := NewDevice(hw.V100Platform().GPU, 1)
	p := NewDevice(hw.P100Platform().GPU, 1)
	k := GEMM{Batch: 1, M: 4096, N: 4096, K: 4096}
	if v.BaseTime(k) >= p.BaseTime(k) {
		t.Error("V100 should beat P100 on a large GEMM")
	}
}

func TestConvAsymmetricFilterPenalty(t *testing.T) {
	d := newV100()
	sym := Conv{N: 32, C: 128, H: 17, W: 17, K: 128, R: 7, S: 7, Stride: 1, PadH: 3, PadW: 3}
	asym := Conv{N: 32, C: 128, H: 17, W: 17, K: 128, R: 1, S: 7, Stride: 1, PadW: 3}
	perFlopSym := d.BaseTime(sym) / sym.FLOPs()
	perFlopAsym := d.BaseTime(asym) / asym.FLOPs()
	if perFlopAsym <= perFlopSym {
		t.Error("asymmetric (1x7) conv should be less efficient per FLOP")
	}
}
