package kernels

import (
	"hash/fnv"
	"math"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/xrand"
)

// Device is the ground-truth executor: given a kernel invocation it
// returns the time the kernel takes on the modeled GPU. It stands in for
// the real silicon in this reproduction, so it is intentionally richer
// than any performance model built on top of it:
//
//   - GEMM suffers cuBLAS-style tile and wave quantization with
//     tile-dependent efficiency (the paper cites exactly these effects as
//     the reason heuristic GEMM models are infeasible);
//   - embedding lookups go through an L2-residency cache model with
//     parallelism-dependent achieved bandwidth;
//   - memory kernels see bandwidth ramp-up (small transfers achieve a
//     fraction of peak);
//   - transpose pays alignment penalties for non-multiple-of-32 rows;
//   - every (kernel shape, device) pair carries a stable "silicon quirk"
//     factor, modeling the shape-specific behavior real kernels exhibit
//     that no analytic model captures; and
//   - each invocation is perturbed by measurement noise.
//
// Prediction code must never call into this type; it sees only
// microbenchmark samples and simulator traces.
type Device struct {
	GPU hw.GPU

	// NoiseCV is the per-invocation lognormal measurement noise
	// (coefficient of variation). Zero disables noise.
	NoiseCV float64

	rng *xrand.Rand
}

// NewDevice returns a ground-truth executor for the given GPU with the
// default measurement noise, drawing randomness from seed.
func NewDevice(gpu hw.GPU, seed uint64) *Device {
	return &Device{GPU: gpu, NoiseCV: 0.025, rng: xrand.New(seed)}
}

// BaseTime returns the noise-free execution time of k in microseconds
// (still including the deterministic per-shape silicon quirk).
func (d *Device) BaseTime(k Kernel) float64 {
	var t float64
	switch kk := k.(type) {
	case GEMM:
		t = d.gemmTime(kk)
	case Embedding:
		t = d.embeddingTime(kk.WithDefaults())
	case Concat:
		t = d.concatTime(kk)
	case Memcpy:
		t = d.memcpyTime(kk)
	case Transpose:
		t = d.transposeTime(kk)
	case Tril:
		t = d.trilTime(kk)
	case Elementwise:
		t = d.elementwiseTime(kk)
	case Conv:
		t = d.convTime(kk)
	case BatchNorm:
		t = d.batchNormTime(kk)
	default:
		panic("kernels: unknown kernel type")
	}
	return t * d.quirk(k)
}

// Run returns one noisy "measured" execution of k, as a profiler would
// report it.
func (d *Device) Run(k Kernel) float64 {
	t := d.BaseTime(k)
	if d.NoiseCV > 0 {
		t *= d.rng.LogNormalMeanCV(1, d.NoiseCV)
	}
	return t
}

// RunAveraged runs k iters times and returns the mean, mirroring the
// paper's 30-iteration kernel benchmarking protocol.
func (d *Device) RunAveraged(k Kernel, iters int) float64 {
	if iters <= 0 {
		iters = 1
	}
	s := 0.0
	for i := 0; i < iters; i++ {
		s += d.Run(k)
	}
	return s / float64(iters)
}

// quirk returns the deterministic per-(shape, device) efficiency factor.
// Its amplitude differs per kernel kind: proprietary, heavily tuned
// kernels (GEMM, transpose) have larger shape-specific variation than
// simple copies.
func (d *Device) quirk(k Kernel) float64 {
	var amp float64
	switch k.Kind() {
	case KindGEMM, KindConv:
		amp = 0.09
	case KindTranspose:
		amp = 0.08
	case KindTrilFwd, KindTrilBwd:
		amp = 0.05
	case KindEmbeddingFwd, KindEmbeddingBwd:
		amp = 0.035
	case KindMemcpyH2D, KindMemcpyD2H, KindMemcpyD2D:
		// The paper measures memcpy extremely accurately on V100 (0.57%
		// GMAE) but less so on the desktop TITAN Xp platform.
		if d.GPU.Name == hw.V100 {
			amp = 0.008
		} else {
			amp = 0.05
		}
	default:
		amp = 0.03
	}
	h := fnv.New64a()
	h.Write([]byte(d.GPU.Name))
	h.Write([]byte(k.String()))
	u := float64(h.Sum64()>>11) / (1 << 53) // uniform [0,1)
	return 1 + amp*(2*u-1)
}

// ramp returns the fraction of peak bandwidth achieved for a transfer of
// the given size; halfSat is the size achieving 50% of the asymptote.
// The pure-saturation form means small transfers pay an effective fixed
// latency of halfSat/peakBW on top of their streaming time, which is how
// real copy-engine and memory-kernel bandwidth curves behave.
func ramp(bytes, halfSat float64) float64 {
	if bytes <= 0 {
		return 0.01
	}
	return bytes / (bytes + halfSat)
}

// --- GEMM -------------------------------------------------------------

type tileConfig struct {
	tm, tn int64
	eff    float64 // fraction of peak FLOPS at steady state, full machine
}

// gemmTiles are the candidate kernel variants; like cuBLAS's heuristic
// dispatcher, the ground truth evaluates each and runs the fastest.
// Larger tiles are more efficient per FLOP but expose less parallelism
// and pad small problems heavily.
var gemmTiles = []tileConfig{
	{128, 128, 0.80},
	{64, 64, 0.62},
	{32, 32, 0.40},
	{16, 16, 0.22},
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func (d *Device) gemmTime(g GEMM) float64 {
	if g.Batch <= 0 || g.M <= 0 || g.N <= 0 || g.K <= 0 {
		return d.GPU.MinKernelTime
	}
	sms := int64(d.GPU.NumSMs)
	perSMFlops := d.GPU.PeakFP32 / float64(d.GPU.NumSMs)
	// K is processed in 32-wide slices; partial slices cost a full one
	// (tile quantization along K).
	kPadded := ceilDiv(g.K, 32) * 32

	best := math.Inf(1)
	for _, tile := range gemmTiles {
		tilesM := ceilDiv(g.M, tile.tm)
		tilesN := ceilDiv(g.N, tile.tn)
		ctas := g.Batch * tilesM * tilesN
		perCTAFlops := 2 * float64(tile.tm) * float64(tile.tn) * float64(kPadded)
		// Wave quantization: an SM processes its CTAs serially; the grid
		// takes ceil(ctas/SMs) CTA-rounds regardless of how empty the
		// last wave is.
		rounds := ceilDiv(ctas, sms)
		// Under-occupied grids (fewer than ~2 CTAs per SM) cannot hide
		// memory latency and lose throughput.
		occ := float64(ctas) / float64(2*sms)
		if occ > 1 {
			occ = 1
		}
		eff := tile.eff * (0.45 + 0.55*occ)
		t := float64(rounds) * perCTAFlops / (perSMFlops * eff)
		if t < best {
			best = t
		}
	}

	read, write := g.Bytes()
	tMem := (read + write) / (d.GPU.DRAMBandwidth * 0.78 * ramp(read+write, 512<<10))
	if tMem > best {
		best = tMem
	}
	return best + d.GPU.MinKernelTime
}

// --- Embedding lookup ---------------------------------------------------

// elTraffic returns the per-WARP L2 and DRAM byte traffic of a batched
// embedding lookup under the ground-truth cache model.
func (d *Device) elTraffic(e Embedding) (l2P, dramP float64) {
	rowBytes := float64(ceilDiv(4*e.D, 32) * 32)
	trIdx := float64(ceilDiv(4*e.L, 32) * 32)
	const trFixed = 32 + 64 // table_offsets + offsets
	weights := float64(e.L) * rowBytes
	out := rowBytes

	p := d.elHitRate(e)
	if e.Backward {
		// Gradient rows are read, updated, and written through; writes
		// cannot be served by L2 in the long run.
		weights = 2 * weights
		p *= 0.5
	}
	l2P = trFixed + p*weights
	dramP = trIdx + out + (1-p)*weights
	return l2P, dramP
}

// elHitRate is the ground-truth per-access L2 hit probability for
// embedding-row reads. It follows a residency argument similar to the
// paper's enhanced model but with different structure: 128-byte line
// granularity, steady-state per-access (not per-pooled-group) hits, a
// conflict-miss ceiling, and Zipf-locality amplification.
func (d *Device) elHitRate(e Embedding) float64 {
	if e.E <= 0 {
		return 0
	}
	lineBytes := float64(ceilDiv(4*e.D, 128) * 128)
	resTables := float64(e.RowsPerBlock) * float64(d.GPU.NumSMs) / float64(e.B)
	if resTables < 1 {
		resTables = 1
	}
	if t := float64(e.T); resTables > t {
		resTables = t
	}
	cachedRows := float64(d.GPU.L2Size) / (resTables * lineBytes)
	if cachedRows > float64(e.E) {
		cachedRows = float64(e.E)
	}
	p := cachedRows / float64(e.E)
	if e.ZipfSkew > 0 {
		// Skewed reuse concentrates accesses on resident hot rows.
		p = 1 - math.Pow(1-p, 1+3*e.ZipfSkew)
	}
	if p > 0.95 {
		p = 0.95 // conflict misses cap the achievable hit rate
	}
	return p
}

func (d *Device) embeddingTime(e Embedding) float64 {
	if e.B <= 0 || e.T <= 0 || e.L <= 0 || e.D <= 0 {
		return d.GPU.MinKernelTime
	}
	l2P, dramP := d.elTraffic(e)
	warps := float64(e.B) * float64(e.T)

	// Achieved bandwidth depends on how well the grid fills the machine.
	ctas := ceilDiv(e.B*e.T, e.RowsPerBlock)
	fill := float64(ctas) / float64(d.GPU.NumSMs)
	if fill > 1 {
		fill = 1
	}
	// Random row gathers achieve well under half of streaming bandwidth:
	// scattered 128-512B rows waste transaction granularity and thrash
	// the TLB. (Real V100 gather microbenchmarks land at 300-450 GB/s.)
	bwEff := 0.42 + 0.12*fill
	t := warps * (dramP/(d.GPU.DRAMBandwidth*bwEff) + l2P/(d.GPU.L2Bandwidth*0.8))
	return t + d.GPU.MinKernelTime
}

// --- Memory kernels -----------------------------------------------------

func (d *Device) concatTime(c Concat) float64 {
	read, write := c.Bytes()
	bytes := read + write
	t := bytes / (d.GPU.DRAMBandwidth * 0.85 * ramp(bytes, 768<<10))
	// Each additional source tensor adds a small per-segment cost.
	t += 0.12 * float64(c.NInputs)
	return t + d.GPU.MinKernelTime
}

func (d *Device) memcpyTime(m Memcpy) float64 {
	bytes := float64(m.NBytes)
	var bw float64
	switch m.Dir {
	case D2D:
		bw = d.GPU.DRAMBandwidth * 0.80
	case D2H:
		bw = d.GPU.PCIeBandwidth * 0.92
	default:
		bw = d.GPU.PCIeBandwidth
	}
	t := bytes / (bw * ramp(bytes, 256<<10))
	// Driver/DMA setup latency beyond the generic kernel floor.
	return t + 4.5 + d.GPU.MinKernelTime
}

func (d *Device) transposeTime(t Transpose) float64 {
	read, write := t.Bytes()
	bytes := read + write
	penalty := 1.0
	if t.N%32 != 0 {
		penalty += 0.45 // misaligned rows defeat coalescing on one side
	}
	if t.M%32 != 0 {
		penalty += 0.20
	}
	if t.M*t.N < 4096 {
		penalty += 0.35 // tiny matrices underfill the tile buffers
	}
	tt := bytes * penalty / (d.GPU.DRAMBandwidth * 0.80 * ramp(bytes, 512<<10))
	return tt + d.GPU.MinKernelTime
}

func (d *Device) trilTime(t Tril) float64 {
	read, write := t.Bytes()
	bytes := read + write
	penalty := 1.6 // gather indexing through an int64 index tensor
	if t.Backward {
		// IndexBackward scatters through index_put_ with accumulation:
		// atomic adds at element granularity, an order of magnitude off
		// streaming bandwidth.
		penalty = 7.5
	}
	// Index arithmetic makes very small extractions latency-bound.
	if t.B*t.F*t.F < 1<<16 {
		penalty += 0.30
	}
	tt := bytes * penalty / (d.GPU.DRAMBandwidth * 0.82 * ramp(bytes, 512<<10))
	return tt + d.GPU.MinKernelTime
}

func (d *Device) elementwiseTime(e Elementwise) float64 {
	read, write := e.Bytes()
	bytes := read + write
	tMem := bytes / (d.GPU.DRAMBandwidth * 0.88 * ramp(bytes, 1<<20))
	tCompute := e.FLOPs() / (d.GPU.PeakFP32 * 0.5)
	t := tMem
	if tCompute > t {
		t = tCompute
	}
	return t + d.GPU.MinKernelTime
}

// --- CNN kernels ----------------------------------------------------------

func (d *Device) convTime(c Conv) float64 {
	g := c.AsGEMM()
	// Implicit GEMM pays an efficiency tax over plain GEMM, worse for
	// asymmetric (1x7 / 7x1) and pointwise filters.
	eff := 0.72
	if c.R != c.S {
		eff = 0.55
	} else if c.R == 1 {
		eff = 0.85 // 1x1 convs are clean GEMMs
	}
	t := d.gemmTime(g) / eff
	// Extra input re-reads from the implicit im2col expansion.
	read, _ := c.Bytes()
	t += 0.4 * read / (d.GPU.DRAMBandwidth * 0.78)
	return t
}

func (d *Device) batchNormTime(b BatchNorm) float64 {
	read, write := b.Bytes()
	bytes := read + write
	t := bytes / (d.GPU.DRAMBandwidth * 0.82 * ramp(bytes, 1<<20))
	return t + 2*d.GPU.MinKernelTime // two-pass kernel
}
