// Package kernels defines the GPU kernel taxonomy of the paper — the six
// dominating DLRM kernels (GEMM, embedding lookup forward/backward,
// concat, memcpy, transpose, tril/index) plus element-wise kernels and
// the convolution/batch-norm kernels added for the CNN comparison — and
// the *ground-truth* per-device cost model that stands in for real
// silicon in this reproduction.
//
// The ground-truth model (groundtruth.go) deliberately contains more
// structure than any of the predictor's performance models: cuBLAS-style
// tile and wave quantization for GEMM, an L2-residency cache model for
// embedding lookups, bandwidth ramp-up for small memory kernels, shape
// penalties for transpose, and measurement noise. The prediction side of
// the repository (internal/perfmodel, internal/predict) never calls the
// ground truth directly; it sees only microbenchmark samples and traces,
// the same observability the paper's authors had on real GPUs.
package kernels

import (
	"fmt"
	"math"
)

// Kind identifies a kernel family. Kernels of the same kind share one
// performance model in the prediction pipeline (Section III of the
// paper: ops like addmm and AddmmBackward share the GEMM model).
type Kind int

// Kernel kinds.
const (
	KindGEMM Kind = iota
	KindEmbeddingFwd
	KindEmbeddingBwd
	KindConcat
	KindMemcpyH2D
	KindMemcpyD2H
	KindMemcpyD2D
	KindTranspose
	KindTrilFwd
	KindTrilBwd
	KindElementwise
	KindConv
	KindBatchNorm
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGEMM:
		return "GEMM"
	case KindEmbeddingFwd:
		return "EL-F"
	case KindEmbeddingBwd:
		return "EL-B"
	case KindConcat:
		return "concat"
	case KindMemcpyH2D:
		return "memcpy"
	case KindMemcpyD2H:
		return "memcpyD2H"
	case KindMemcpyD2D:
		return "memcpyD2D"
	case KindTranspose:
		return "transpose"
	case KindTrilFwd:
		return "tril-F"
	case KindTrilBwd:
		return "tril-B"
	case KindElementwise:
		return "elementwise"
	case KindConv:
		return "conv"
	case KindBatchNorm:
		return "batchnorm"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds returns every kernel kind.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Kernel is one device kernel invocation with fully resolved parameters.
// Implementations are small value types; a Kernel is what the execution
// graph attaches to ops and what performance models consume.
type Kernel interface {
	// Kind returns the kernel family used to select a performance model.
	Kind() Kind
	// FLOPs returns the floating-point work of the kernel.
	FLOPs() float64
	// Bytes returns the logical bytes read and written by the kernel.
	Bytes() (read, write float64)
	// Features returns the log2-scaled input features used by ML-based
	// performance models (paper Section III-B2: sizes are benchmarked on
	// an exponential scale and log-transformed before training).
	Features() []float64
	// String renders a compact human-readable description.
	String() string
}

func lg(x int64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(float64(x))
}

// GEMM is a (batched) matrix multiply C[b] = A[b] (MxK) * B[b] (KxN),
// the kernel behind addmm, bmm, linear, and their backward ops.
type GEMM struct {
	Batch, M, N, K int64
}

// Kind implements Kernel.
func (g GEMM) Kind() Kind { return KindGEMM }

// FLOPs implements Kernel.
func (g GEMM) FLOPs() float64 {
	return 2 * float64(g.Batch) * float64(g.M) * float64(g.N) * float64(g.K)
}

// Bytes implements Kernel.
func (g GEMM) Bytes() (read, write float64) {
	b := float64(g.Batch)
	read = 4 * b * (float64(g.M)*float64(g.K) + float64(g.K)*float64(g.N))
	write = 4 * b * float64(g.M) * float64(g.N)
	return read, write
}

// Features implements Kernel.
func (g GEMM) Features() []float64 {
	return []float64{lg(g.Batch), lg(g.M), lg(g.N), lg(g.K)}
}

// String implements Kernel.
func (g GEMM) String() string {
	return fmt.Sprintf("gemm(b=%d,m=%d,n=%d,k=%d)", g.Batch, g.M, g.N, g.K)
}

// Embedding describes a batched embedding-table lookup in the
// parameterization of Section III-B1a: B batch size, E rows per table,
// T tables, L lookups pooled per output vector, D embedding dimension.
// RowsPerBlock is the kernel tuning argument (output vectors per CTA).
// Backward selects the gradient+SGD-update kernel.
type Embedding struct {
	B, E, T, L, D int64
	RowsPerBlock  int64
	Backward      bool
	// ZipfSkew shapes the ground-truth index locality (0 = uniform). The
	// predictor's heuristic model does not see this field — exactly the
	// information gap the paper has between its model and real traces.
	ZipfSkew float64
}

// DefaultRowsPerBlock is the kernel launch configuration used by the
// batched embedding implementation when none is specified.
const DefaultRowsPerBlock = 32

// WithDefaults returns a copy with RowsPerBlock defaulted.
func (e Embedding) WithDefaults() Embedding {
	if e.RowsPerBlock <= 0 {
		e.RowsPerBlock = DefaultRowsPerBlock
	}
	return e
}

// Kind implements Kernel.
func (e Embedding) Kind() Kind {
	if e.Backward {
		return KindEmbeddingBwd
	}
	return KindEmbeddingFwd
}

// FLOPs implements Kernel. Pooling sums L vectors of length D per output;
// backward additionally applies an SGD update.
func (e Embedding) FLOPs() float64 {
	f := float64(e.B) * float64(e.T) * float64(e.L) * float64(e.D)
	if e.Backward {
		return 2 * f
	}
	return f
}

// Bytes implements Kernel, returning the logical (cache-oblivious)
// traffic: indices and offsets read plus L embedding rows per output.
func (e Embedding) Bytes() (read, write float64) {
	rows := float64(e.B) * float64(e.T) * float64(e.L)
	rowBytes := 4 * float64(e.D)
	idxBytes := 8 * float64(e.B) * float64(e.T) * float64(e.L)
	outBytes := 4 * float64(e.B) * float64(e.T) * float64(e.D)
	if e.Backward {
		// Read upstream gradient + weight rows, write updated rows.
		return outBytes + rows*rowBytes + idxBytes, rows * rowBytes
	}
	return rows*rowBytes + idxBytes, outBytes
}

// Features implements Kernel.
func (e Embedding) Features() []float64 {
	return []float64{lg(e.B), lg(e.E), lg(e.T), lg(e.L), lg(e.D)}
}

// String implements Kernel.
func (e Embedding) String() string {
	dir := "fwd"
	if e.Backward {
		dir = "bwd"
	}
	return fmt.Sprintf("embedding_%s(B=%d,E=%d,T=%d,L=%d,D=%d)", dir, e.B, e.E, e.T, e.L, e.D)
}

// Concat is a device-side tensor concatenation producing OutBytes output
// from NInputs source tensors.
type Concat struct {
	OutBytes int64
	NInputs  int
}

// Kind implements Kernel.
func (c Concat) Kind() Kind { return KindConcat }

// FLOPs implements Kernel.
func (c Concat) FLOPs() float64 { return 0 }

// Bytes implements Kernel.
func (c Concat) Bytes() (read, write float64) {
	return float64(c.OutBytes), float64(c.OutBytes)
}

// Features implements Kernel.
func (c Concat) Features() []float64 {
	return []float64{lg(c.OutBytes), lg(int64(c.NInputs))}
}

// String implements Kernel.
func (c Concat) String() string {
	return fmt.Sprintf("concat(bytes=%d,inputs=%d)", c.OutBytes, c.NInputs)
}

// MemcpyDir is the direction of a memory copy.
type MemcpyDir int

// Copy directions.
const (
	H2D MemcpyDir = iota
	D2H
	D2D
)

// Memcpy is a cudaMemcpyAsync-backed data transfer of NBytes.
type Memcpy struct {
	NBytes int64
	Dir    MemcpyDir
}

// Kind implements Kernel.
func (m Memcpy) Kind() Kind {
	switch m.Dir {
	case D2H:
		return KindMemcpyD2H
	case D2D:
		return KindMemcpyD2D
	}
	return KindMemcpyH2D
}

// FLOPs implements Kernel.
func (m Memcpy) FLOPs() float64 { return 0 }

// Bytes implements Kernel.
func (m Memcpy) Bytes() (read, write float64) {
	return float64(m.NBytes), float64(m.NBytes)
}

// Features implements Kernel.
func (m Memcpy) Features() []float64 {
	return []float64{lg(m.NBytes), float64(m.Dir)}
}

// String implements Kernel.
func (m Memcpy) String() string {
	dir := [...]string{"h2d", "d2h", "d2d"}[m.Dir]
	return fmt.Sprintf("memcpy_%s(bytes=%d)", dir, m.NBytes)
}

// Transpose is the batched matrix transpose — permutation of the second
// and third axes of a (B, M, N) tensor — the only permutation that occurs
// in DLRM (Section III-B).
type Transpose struct {
	B, M, N int64
}

// Kind implements Kernel.
func (t Transpose) Kind() Kind { return KindTranspose }

// FLOPs implements Kernel.
func (t Transpose) FLOPs() float64 { return 0 }

// Bytes implements Kernel.
func (t Transpose) Bytes() (read, write float64) {
	n := 4 * float64(t.B) * float64(t.M) * float64(t.N)
	return n, n
}

// Features implements Kernel.
func (t Transpose) Features() []float64 {
	return []float64{lg(t.B), lg(t.M), lg(t.N)}
}

// String implements Kernel.
func (t Transpose) String() string {
	return fmt.Sprintf("transpose(b=%d,m=%d,n=%d)", t.B, t.M, t.N)
}

// Tril extracts (forward) or scatters (backward) the strictly lower
// triangular part of the BxFxF feature-interaction matrix and flattens it
// — the kernel behind aten::index / IndexBackward in DLRM's interaction.
type Tril struct {
	B, F     int64
	Backward bool
}

// OutElems returns the number of extracted elements per batch row,
// F*(F-1)/2.
func (t Tril) OutElems() int64 { return t.F * (t.F - 1) / 2 }

// Kind implements Kernel.
func (t Tril) Kind() Kind {
	if t.Backward {
		return KindTrilBwd
	}
	return KindTrilFwd
}

// FLOPs implements Kernel.
func (t Tril) FLOPs() float64 { return 0 }

// Bytes implements Kernel.
func (t Tril) Bytes() (read, write float64) {
	tri := 4 * float64(t.B) * float64(t.OutElems())
	full := 4 * float64(t.B) * float64(t.F) * float64(t.F)
	if t.Backward {
		// Read flattened gradient, write (zero-filled) full matrix.
		return tri, full
	}
	// Forward gathers from the full matrix.
	return full, tri
}

// Features implements Kernel.
func (t Tril) Features() []float64 {
	return []float64{lg(t.B), lg(t.F)}
}

// String implements Kernel.
func (t Tril) String() string {
	dir := "fwd"
	if t.Backward {
		dir = "bwd"
	}
	return fmt.Sprintf("tril_%s(b=%d,f=%d)", dir, t.B, t.F)
}

// Elementwise covers relu, sigmoid, add, mse/bce loss pieces, optimizer
// update kernels, zero_, and similar memory-bound pointwise kernels. Op
// construction fills in the per-element traffic and arithmetic.
type Elementwise struct {
	// Name distinguishes sub-flavors (relu, add_, sgd_step...) in traces.
	Name string
	// NElems is the number of output elements.
	NElems int64
	// ReadsPerElem / WritesPerElem are bytes moved per output element.
	ReadsPerElem, WritesPerElem float64
	// FLOPsPerElem is arithmetic per output element.
	FLOPsPerElem float64
}

// Kind implements Kernel.
func (e Elementwise) Kind() Kind { return KindElementwise }

// FLOPs implements Kernel.
func (e Elementwise) FLOPs() float64 { return float64(e.NElems) * e.FLOPsPerElem }

// Bytes implements Kernel.
func (e Elementwise) Bytes() (read, write float64) {
	return float64(e.NElems) * e.ReadsPerElem, float64(e.NElems) * e.WritesPerElem
}

// Features implements Kernel.
func (e Elementwise) Features() []float64 {
	return []float64{lg(e.NElems), e.ReadsPerElem, e.WritesPerElem}
}

// String implements Kernel.
func (e Elementwise) String() string {
	return fmt.Sprintf("ew_%s(n=%d)", e.Name, e.NElems)
}

// Conv is a 2D convolution (N, C, H, W) -> (N, K, P, Q) with RxS filters,
// executed as an implicit GEMM (the cuDNN strategy the CNN-comparison
// microbenchmarks cover). Padding is per-axis so that asymmetric (1x7 /
// 7x1) filters with "same" padding keep their spatial dimensions.
type Conv struct {
	N, C, H, W int64
	K, R, S    int64
	Stride     int64
	PadH, PadW int64
}

// OutHW returns the output spatial dimensions.
func (c Conv) OutHW() (p, q int64) {
	p = (c.H+2*c.PadH-c.R)/c.Stride + 1
	q = (c.W+2*c.PadW-c.S)/c.Stride + 1
	if p < 1 {
		p = 1
	}
	if q < 1 {
		q = 1
	}
	return p, q
}

// AsGEMM returns the implicit-GEMM dimensions of the convolution.
func (c Conv) AsGEMM() GEMM {
	p, q := c.OutHW()
	return GEMM{Batch: 1, M: c.N * p * q, N: c.K, K: c.C * c.R * c.S}
}

// Kind implements Kernel.
func (c Conv) Kind() Kind { return KindConv }

// FLOPs implements Kernel.
func (c Conv) FLOPs() float64 { return c.AsGEMM().FLOPs() }

// Bytes implements Kernel.
func (c Conv) Bytes() (read, write float64) {
	p, q := c.OutHW()
	read = 4 * (float64(c.N)*float64(c.C)*float64(c.H)*float64(c.W) +
		float64(c.K)*float64(c.C)*float64(c.R)*float64(c.S))
	write = 4 * float64(c.N) * float64(c.K) * float64(p) * float64(q)
	return read, write
}

// Features implements Kernel.
func (c Conv) Features() []float64 {
	p, q := c.OutHW()
	return []float64{lg(c.N), lg(c.C), lg(c.H), lg(c.K), lg(c.R), lg(c.S), lg(c.Stride), lg(p * q)}
}

// String implements Kernel.
func (c Conv) String() string {
	return fmt.Sprintf("conv(n=%d,c=%d,hw=%dx%d,k=%d,rs=%dx%d,s=%d)",
		c.N, c.C, c.H, c.W, c.K, c.R, c.S, c.Stride)
}

// BatchNorm is a 2D batch normalization over (N, C, H, W), a two-pass
// memory-bound kernel (statistics reduction + normalization).
type BatchNorm struct {
	N, C, H, W int64
}

// Kind implements Kernel.
func (b BatchNorm) Kind() Kind { return KindBatchNorm }

// FLOPs implements Kernel.
func (b BatchNorm) FLOPs() float64 {
	return 5 * float64(b.N) * float64(b.C) * float64(b.H) * float64(b.W)
}

// Bytes implements Kernel. The two passes read the input twice and write
// it once, plus negligible per-channel statistics.
func (b BatchNorm) Bytes() (read, write float64) {
	n := 4 * float64(b.N) * float64(b.C) * float64(b.H) * float64(b.W)
	return 2 * n, n
}

// Features implements Kernel.
func (b BatchNorm) Features() []float64 {
	return []float64{lg(b.N), lg(b.C), lg(b.H * b.W)}
}

// String implements Kernel.
func (b BatchNorm) String() string {
	return fmt.Sprintf("batchnorm(n=%d,c=%d,hw=%dx%d)", b.N, b.C, b.H, b.W)
}
