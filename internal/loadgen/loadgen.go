// Package loadgen is the trace-driven load harness for the serving
// surface: it replays Zipf-skewed synthetic streams or checked-in
// trace files against a live worker or coordinator at target
// per-tenant request rates, through the same typed client
// (internal/client) every other consumer uses, and reports SLO-grade
// accounting — p50/p95/p99 latency, achieved throughput, shed rate by
// rejection code, cache hit rate, and a per-tenant breakdown — in a
// JSON report plus a benchdiff-compatible suite for regression
// ratcheting.
//
// The scheduler is bounded open-loop: each tenant fires on its own
// fixed-rate clock regardless of response latency (open loop, so a
// slow server cannot flatter its own throughput by slowing the
// generator), but dispatch is capped by a shared in-flight bound. A
// tick that finds no free slot is counted as missed, never silently
// dropped — the report shows exactly how much offered load the bound
// turned away.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dlrmperf"
	"dlrmperf/internal/client"
	"dlrmperf/internal/serve"
	"dlrmperf/internal/xrand"
)

// TenantSpec is one tenant's offered load: a name (the serve-layer
// wire tag), a target request rate, and the priority class its
// requests carry.
type TenantSpec struct {
	Name     string  `json:"name"`
	RPS      float64 `json:"rps"`
	Priority string  `json:"priority,omitempty"`
}

// Config drives one load run.
type Config struct {
	// Target is the base URL of the worker or coordinator under load.
	Target string
	// Client overrides the client built from Target (tests).
	Client *client.Client
	// Tenants is the offered-load mix; at least one with RPS > 0.
	Tenants []TenantSpec
	// Duration bounds the run by wall clock; N bounds it by requests
	// scheduled per tenant. Either may be set; with both zero the run
	// defaults to 5 seconds.
	Duration time.Duration
	N        int
	// MaxInFlight caps concurrent outstanding requests across all
	// tenants (default 64). Ticks arriving with no free slot are
	// counted as missed.
	MaxInFlight int
	// Requests is the replay pool. Leave nil to synthesize one from
	// Scenarios x Devices x Batches (engine defaults when empty),
	// PoolSize entries. Tenant and Priority on pool entries are
	// overwritten by the firing tenant's spec.
	Requests  []serve.Request
	Scenarios []string
	Devices   []string
	Batches   []int64
	PoolSize  int
	// ZipfSkew shapes the draw over the pool (default 1.0; 0 is
	// uniform); Seed makes the draw sequence reproducible.
	ZipfSkew float64
	Seed     int64
	// Timeout is the per-request deadline (default 10s), applied both
	// as the client context deadline and the request's own timeout_ms.
	Timeout time.Duration
	// CheckInvariant fetches /stats after the run and verifies the
	// accounting identity hits + misses + rejected == requests on the
	// target's own counters (worker or coordinator shape).
	CheckInvariant bool
}

func (c *Config) withDefaults() error {
	if c.Target == "" && c.Client == nil {
		return errors.New("loadgen: no target")
	}
	if len(c.Tenants) == 0 {
		return errors.New("loadgen: no tenants")
	}
	for i := range c.Tenants {
		if c.Tenants[i].RPS <= 0 {
			return fmt.Errorf("loadgen: tenant %q has no positive rps", c.Tenants[i].Name)
		}
		if c.Tenants[i].Name == "" {
			c.Tenants[i].Name = "default"
		}
	}
	if c.Duration <= 0 && c.N <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 32
	}
	if c.ZipfSkew < 0 {
		return errors.New("loadgen: negative zipf skew")
	}
	if c.ZipfSkew == 0 {
		c.ZipfSkew = 1.0
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = client.New(c.Target)
	}
	return nil
}

// pool materializes the replay pool: the explicit trace when given,
// else the synthetic cross product cycled to PoolSize entries.
func (c *Config) pool() []serve.Request {
	if len(c.Requests) > 0 {
		return c.Requests
	}
	scenarios := c.Scenarios
	if len(scenarios) == 0 {
		scenarios = []string{dlrmperf.DLRMDefault}
	}
	devices := c.Devices
	if len(devices) == 0 {
		devices = []string{dlrmperf.V100}
	}
	batches := c.Batches
	if len(batches) == 0 {
		batches = []int64{256, 512, 1024, 2048}
	}
	var all []serve.Request
	for _, sc := range scenarios {
		for _, dev := range devices {
			for _, b := range batches {
				all = append(all, serve.Request{Workload: sc, Device: dev, Batch: b})
			}
		}
	}
	out := make([]serve.Request, c.PoolSize)
	for i := range out {
		out[i] = all[i%len(all)]
	}
	return out
}

// collector accumulates one tenant's outcomes. All fields are guarded
// by mu; latencies are microseconds.
type collector struct {
	mu          sync.Mutex
	scheduled   uint64
	missed      uint64
	ok          uint64
	appErrors   uint64
	cacheHits   uint64
	shed        map[string]uint64 // rejection code -> count (429/503 families)
	transport   uint64
	otherErrors uint64
	latencies   []int64
	queueWaitUs int64
	maxWaitUs   int64
}

func newCollector() *collector { return &collector{shed: map[string]uint64{}} }

// record classifies one completed request through the typed error
// taxonomy.
func (c *collector) record(res serve.Result, err error, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err == nil {
		if res.Error != "" {
			c.appErrors++
			return
		}
		c.ok++
		if res.CacheHit {
			c.cacheHits++
		}
		c.latencies = append(c.latencies, latency.Microseconds())
		c.queueWaitUs += res.QueueWaitUs
		if res.QueueWaitUs > c.maxWaitUs {
			c.maxWaitUs = res.QueueWaitUs
		}
		return
	}
	var api *client.APIError
	if !errors.As(err, &api) {
		c.transport++
		return
	}
	switch api.Status {
	case 429, 503:
		code := api.Code
		if code == "" {
			code = "unknown"
		}
		c.shed[code]++
	default:
		c.otherErrors++
	}
}

// Run executes one load run and assembles the report. It returns an
// error only for configuration or invariant failures — a server
// shedding every request still yields a report; the caller judges the
// shed rate.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	pool := cfg.pool()
	slots := make(chan struct{}, cfg.MaxInFlight)
	start := time.Now()

	runCtx := ctx
	var cancel context.CancelFunc
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	collectors := make([]*collector, len(cfg.Tenants))
	var fleet sync.WaitGroup // tenant schedulers
	var inFlight sync.WaitGroup
	for ti := range cfg.Tenants {
		collectors[ti] = newCollector()
		fleet.Add(1)
		go func(ti int) {
			defer fleet.Done()
			spec := cfg.Tenants[ti]
			col := collectors[ti]
			// Per-tenant sampler: reproducible for a fixed seed, decorrelated
			// across tenants.
			zipf := xrand.NewZipf(xrand.New(uint64(cfg.Seed)+uint64(ti)+1), len(pool), cfg.ZipfSkew)
			interval := time.Duration(float64(time.Second) / spec.RPS)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for n := 0; cfg.N <= 0 || n < cfg.N; n++ {
				select {
				case <-runCtx.Done():
					return
				case <-ticker.C:
				}
				req := pool[zipf.Next()]
				req.Tenant = spec.Name
				req.Priority = spec.Priority
				req.TimeoutMs = cfg.Timeout.Milliseconds()
				col.mu.Lock()
				col.scheduled++
				col.mu.Unlock()
				select {
				case slots <- struct{}{}:
				default:
					// Open-loop bound hit: the offered request is turned away at
					// the generator and accounted, not silently dropped.
					col.mu.Lock()
					col.missed++
					col.mu.Unlock()
					continue
				}
				inFlight.Add(1)
				go func() {
					defer inFlight.Done()
					defer func() { <-slots }()
					// The request context outlives runCtx on purpose: the run
					// deadline stops SCHEDULING, while dispatched requests get
					// their full timeout so tail latencies are measured, not
					// truncated.
					rctx, rcancel := context.WithTimeout(ctx, cfg.Timeout)
					defer rcancel()
					t0 := time.Now()
					res, err := cfg.Client.Predict(rctx, req)
					col.record(res, err, time.Since(t0))
				}()
			}
		}(ti)
	}
	fleet.Wait()
	inFlight.Wait()
	elapsed := time.Since(start)

	rep := buildReport(cfg, collectors, elapsed)
	if cfg.CheckInvariant {
		sctx, scancel := context.WithTimeout(ctx, cfg.Timeout)
		defer scancel()
		sv, err := fetchServerStats(sctx, cfg.Client)
		if err != nil {
			return rep, fmt.Errorf("loadgen: fetching /stats for the invariant check: %w", err)
		}
		rep.Server = sv
		if !sv.InvariantOK {
			return rep, fmt.Errorf("loadgen: stats invariant broken on %s: hits %d + misses %d + rejected %d != requests %d",
				cfg.Client.Base(), sv.CacheHits, sv.CacheMisses, sv.Rejected, sv.Requests)
		}
	}
	return rep, nil
}

// statsDoc is the shape-agnostic /stats view the invariant check
// needs: both the worker's RejectedStats and the coordinator's
// ClusterRejected decode into the flat bucket map.
type statsDoc struct {
	Requests uint64 `json:"requests"`
	Cache    struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	} `json:"cache"`
	Rejected map[string]uint64 `json:"rejected"`
}

// ServerStats is the target's own accounting after the run, with the
// invariant verdict. The identity only holds at quiescence, which the
// run guarantees by waiting out its in-flight requests first.
type ServerStats struct {
	Requests    uint64 `json:"requests"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Rejected    uint64 `json:"rejected"`
	InvariantOK bool   `json:"invariant_ok"`
}

func fetchServerStats(ctx context.Context, cl *client.Client) (*ServerStats, error) {
	var doc statsDoc
	if err := cl.StatsInto(ctx, &doc); err != nil {
		return nil, err
	}
	sv := &ServerStats{Requests: doc.Requests, CacheHits: doc.Cache.Hits, CacheMisses: doc.Cache.Misses}
	for _, n := range doc.Rejected {
		sv.Rejected += n
	}
	sv.InvariantOK = sv.CacheHits+sv.CacheMisses+sv.Rejected == sv.Requests
	return sv, nil
}

// quantile reads the q-th quantile (0..1) from sorted microsecond
// samples with nearest-rank rounding.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func buildReport(cfg Config, collectors []*collector, elapsed time.Duration) *Report {
	rep := &Report{
		Target:       cfg.Client.Base(),
		Seed:         cfg.Seed,
		ZipfSkew:     cfg.ZipfSkew,
		DurationSecs: elapsed.Seconds(),
		Tenants:      make([]TenantReport, len(cfg.Tenants)),
	}
	var allLatencies []int64
	for i, col := range collectors {
		col.mu.Lock()
		tr := TenantReport{
			Name:      cfg.Tenants[i].Name,
			Priority:  cfg.Tenants[i].Priority,
			TargetRPS: cfg.Tenants[i].RPS,
			Scheduled: col.scheduled,
			Missed:    col.missed,
			OK:        col.ok,
			AppErrors: col.appErrors,
			CacheHits: col.cacheHits,
			Transport: col.transport,
			Other:     col.otherErrors,
		}
		if len(col.shed) > 0 {
			tr.Shed = make(map[string]uint64, len(col.shed))
			for code, n := range col.shed {
				tr.Shed[code] = n
				tr.ShedTotal += n
			}
		}
		sent := tr.Scheduled - tr.Missed
		tr.Sent = sent
		if sent > 0 {
			tr.ShedRate = float64(tr.ShedTotal) / float64(sent)
		}
		if tr.OK > 0 {
			tr.CacheHitRate = float64(tr.CacheHits) / float64(tr.OK)
			tr.AvgQueueWaitUs = float64(col.queueWaitUs) / float64(tr.OK)
			tr.MaxQueueWaitUs = col.maxWaitUs
		}
		if elapsed > 0 {
			tr.AchievedRPS = float64(tr.OK) / elapsed.Seconds()
		}
		lat := append([]int64(nil), col.latencies...)
		col.mu.Unlock()
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		tr.Latency = latencyFrom(lat)
		allLatencies = append(allLatencies, lat...)
		rep.Tenants[i] = tr

		rep.Totals.Scheduled += tr.Scheduled
		rep.Totals.Missed += tr.Missed
		rep.Totals.Sent += tr.Sent
		rep.Totals.OK += tr.OK
		rep.Totals.AppErrors += tr.AppErrors
		rep.Totals.CacheHits += tr.CacheHits
		rep.Totals.ShedTotal += tr.ShedTotal
		rep.Totals.Transport += tr.Transport
		rep.Totals.Other += tr.Other
		for code, n := range tr.Shed {
			if rep.Totals.Shed == nil {
				rep.Totals.Shed = map[string]uint64{}
			}
			rep.Totals.Shed[code] += n
		}
	}
	sort.Slice(allLatencies, func(a, b int) bool { return allLatencies[a] < allLatencies[b] })
	rep.Totals.Name = "all"
	rep.Totals.Latency = latencyFrom(allLatencies)
	if rep.Totals.Sent > 0 {
		rep.Totals.ShedRate = float64(rep.Totals.ShedTotal) / float64(rep.Totals.Sent)
	}
	if rep.Totals.OK > 0 {
		rep.Totals.CacheHitRate = float64(rep.Totals.CacheHits) / float64(rep.Totals.OK)
	}
	if elapsed > 0 {
		rep.Totals.AchievedRPS = float64(rep.Totals.OK) / elapsed.Seconds()
	}
	return rep
}

func latencyFrom(sorted []int64) LatencyQuantiles {
	lq := LatencyQuantiles{
		P50: quantile(sorted, 0.50),
		P95: quantile(sorted, 0.95),
		P99: quantile(sorted, 0.99),
	}
	if n := len(sorted); n > 0 {
		lq.Max = sorted[n-1]
		var sum int64
		for _, v := range sorted {
			sum += v
		}
		lq.MeanUs = float64(sum) / float64(n)
	}
	return lq
}
