package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dlrmperf"
	"dlrmperf/internal/serve"
)

// newWorker stands up a real serve.Server over the tiny fast-calib
// engine behind an httptest listener — the loadgen's target in these
// tests is the genuine wire surface, not a stub.
func newWorker(t *testing.T, cfg serve.Config) string {
	t.Helper()
	if cfg.Backend == nil {
		eng, err := dlrmperf.NewEngineWith(dlrmperf.FastCalibConfig(23, 4))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backend = eng
	}
	s := serve.New(cfg)
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRunAgainstWorker replays a two-tenant synthetic stream against a
// live worker and checks the report's internal accounting: every
// scheduled tick is either sent or missed, every sent request lands in
// exactly one outcome bucket, latency quantiles are ordered, repeats
// hit the cache, and the server-side invariant holds after the run.
func TestRunAgainstWorker(t *testing.T) {
	url := newWorker(t, serve.Config{QueueDepth: 32, Workers: 4})
	rep, err := Run(context.Background(), Config{
		Target: url,
		Tenants: []TenantSpec{
			{Name: "hot", RPS: 500, Priority: "high"},
			{Name: "bg", RPS: 100},
		},
		N:              40, // per tenant; bounds the run instead of wall clock
		PoolSize:       8,
		Seed:           7,
		Timeout:        30 * time.Second,
		CheckInvariant: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenant breakdown has %d entries, want 2", len(rep.Tenants))
	}
	tot := rep.Totals
	if tot.Scheduled != 80 {
		t.Fatalf("scheduled = %d, want 80", tot.Scheduled)
	}
	if tot.Sent+tot.Missed != tot.Scheduled {
		t.Fatalf("sent %d + missed %d != scheduled %d", tot.Sent, tot.Missed, tot.Scheduled)
	}
	if got := tot.OK + tot.AppErrors + tot.ShedTotal + tot.Transport + tot.Other; got != tot.Sent {
		t.Fatalf("outcomes %d != sent %d: %+v", got, tot.Sent, tot)
	}
	if tot.OK == 0 {
		t.Fatal("no request succeeded against a healthy worker")
	}
	lq := tot.Latency
	if lq.P50 > lq.P95 || lq.P95 > lq.P99 || lq.P99 > lq.Max {
		t.Fatalf("quantiles out of order: %+v", lq)
	}
	if tot.CacheHitRate == 0 {
		t.Error("zipf replay over an 8-entry pool produced no cache hits")
	}
	if rep.Server == nil || !rep.Server.InvariantOK {
		t.Fatalf("server invariant not verified: %+v", rep.Server)
	}
	for _, tr := range rep.Tenants {
		if tr.Name != "hot" && tr.Name != "bg" {
			t.Fatalf("unexpected tenant %q in breakdown", tr.Name)
		}
		if tr.Scheduled != 40 {
			t.Errorf("tenant %s scheduled %d, want 40", tr.Name, tr.Scheduled)
		}
	}
}

// TestShedAccounting: a target shedding everything yields a complete
// report — shed rate 1.0 with the rejection code broken out — and no
// error from Run itself.
func TestShedAccounting(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		serve.WriteJSON(w, http.StatusTooManyRequests, serve.HTTPError{Code: "queue_full", Message: "busy"})
	}))
	t.Cleanup(ts.Close)
	rep, err := Run(context.Background(), Config{
		Target:  ts.URL,
		Tenants: []TenantSpec{{Name: "t", RPS: 1000}},
		N:       20,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Totals
	if tot.ShedTotal != tot.Sent || tot.Shed["queue_full"] != tot.Sent {
		t.Fatalf("shed accounting = %+v, want every sent request under queue_full", tot)
	}
	if tot.Sent > 0 && tot.ShedRate != 1 {
		t.Fatalf("shed rate = %v, want 1.0", tot.ShedRate)
	}
}

// TestMissedAccountingUnderBound: with a single in-flight slot against
// a slow target, the open-loop clock keeps firing and the turned-away
// ticks are counted as missed.
func TestMissedAccountingUnderBound(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(50 * time.Millisecond)
		serve.WriteJSON(w, http.StatusOK, serve.Result{})
	}))
	t.Cleanup(ts.Close)
	rep, err := Run(context.Background(), Config{
		Target:      ts.URL,
		Tenants:     []TenantSpec{{Name: "t", RPS: 500}},
		N:           30,
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.Totals
	if tot.Missed == 0 {
		t.Fatalf("no ticks missed with a 1-slot bound against a 50ms target: %+v", tot)
	}
	if tot.Scheduled != 30 || tot.Sent+tot.Missed != 30 {
		t.Fatalf("schedule accounting broken: %+v", tot)
	}
}

// TestInvariantCheckFailsOnBrokenTarget: a target whose counters
// violate the accounting identity fails the run.
func TestInvariantCheckFailsOnBrokenTarget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/stats" {
			serve.WriteJSON(w, http.StatusOK, map[string]any{
				"requests": 10,
				"cache":    map[string]uint64{"hits": 1, "misses": 2},
				"rejected": map[string]uint64{"queue_full": 3}, // 6 != 10
			})
			return
		}
		serve.WriteJSON(w, http.StatusOK, serve.Result{})
	}))
	t.Cleanup(ts.Close)
	rep, err := Run(context.Background(), Config{
		Target:         ts.URL,
		Tenants:        []TenantSpec{{Name: "t", RPS: 1000}},
		N:              3,
		CheckInvariant: true,
	})
	if err == nil {
		t.Fatal("broken invariant passed the check")
	}
	if rep == nil || rep.Server == nil || rep.Server.InvariantOK {
		t.Fatalf("report does not carry the failing server stats: %+v", rep)
	}
}

// TestLoadTrace covers both accepted trace shapes and the rejects.
func TestLoadTrace(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	bare := write("bare.json", `[{"workload":"a","device":"V100","batch":512}]`)
	if rows, err := LoadTrace(bare); err != nil || len(rows) != 1 || rows[0].Workload != "a" {
		t.Fatalf("bare array trace = %v / %v", rows, err)
	}
	wrapped := write("wrapped.json", `{"requests":[{"workload":"a","device":"V100"},{"workload":"b","device":"P100"}]}`)
	if rows, err := LoadTrace(wrapped); err != nil || len(rows) != 2 {
		t.Fatalf("wrapped trace = %v / %v", rows, err)
	}
	for name, body := range map[string]string{
		"garbage.json": `not json`,
		"empty.json":   `[]`,
		"noload.json":  `[{"device":"V100"}]`,
	} {
		if _, err := LoadTrace(write(name, body)); err == nil {
			t.Errorf("%s accepted, want an error", name)
		}
	}
	if _, err := LoadTrace(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestTraceReplayDrivesPool: a trace pool is replayed verbatim (modulo
// tenant/priority tags) — every request the worker sees matches a
// trace row.
func TestTraceReplayDrivesPool(t *testing.T) {
	var seen []serve.Request
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err == nil {
			mu.Lock()
			seen = append(seen, req)
			mu.Unlock()
		}
		serve.WriteJSON(w, http.StatusOK, serve.Result{Request: req})
	}))
	t.Cleanup(ts.Close)
	trace := []serve.Request{
		{Workload: "w1", Device: "V100", Batch: 256},
		{Workload: "w2", Device: "P100", Batch: 512},
	}
	if _, err := Run(context.Background(), Config{
		Target:   ts.URL,
		Tenants:  []TenantSpec{{Name: "acme", RPS: 1000, Priority: "low"}},
		N:        10,
		Requests: trace,
		Seed:     3,
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("worker saw no requests")
	}
	for _, req := range seen {
		if req.Tenant != "acme" || req.Priority != "low" {
			t.Fatalf("tenant/priority tag not applied: %+v", req)
		}
		if !((req.Workload == "w1" && req.Batch == 256) || (req.Workload == "w2" && req.Batch == 512)) {
			t.Fatalf("request not from the trace pool: %+v", req)
		}
	}
}

// TestBenchSuite pins the benchdiff bridge: quantiles in nanoseconds,
// absent alloc metrics marked -1, sample count from OK rows.
func TestBenchSuite(t *testing.T) {
	rep := &Report{}
	rep.Totals.OK = 9
	rep.Totals.Latency = LatencyQuantiles{P50: 100, P95: 200, P99: 300}
	s := rep.BenchSuite()
	p99, ok := s.Benchmarks["LoadgenLatencyP99"]
	if !ok || p99.NsPerOp != 300_000 || p99.BytesPerOp != -1 || p99.AllocsPerOp != -1 || p99.Samples != 9 {
		t.Fatalf("bench suite = %+v", s)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("suite has %d entries, want 3", len(s.Benchmarks))
	}
}

// TestQuantileNearestRank pins the quantile read.
func TestQuantileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := quantile(sorted, 0.5); got != 60 {
		t.Errorf("p50 = %d, want 60", got)
	}
	if got := quantile(sorted, 0.99); got != 100 {
		t.Errorf("p99 = %d, want 100", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
}

// TestConfigValidation rejects unusable configs.
func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Error("no target accepted")
	}
	if _, err := Run(ctx, Config{Target: "http://x"}); err == nil {
		t.Error("no tenants accepted")
	}
	if _, err := Run(ctx, Config{Target: "http://x", Tenants: []TenantSpec{{Name: "t"}}}); err == nil {
		t.Error("zero-rps tenant accepted")
	}
	if _, err := Run(ctx, Config{Target: "http://x", Tenants: []TenantSpec{{Name: "t", RPS: 1}}, ZipfSkew: -1}); err == nil {
		t.Error("negative skew accepted")
	}
}
