package loadgen

import (
	"encoding/json"
	"fmt"
	"os"

	"dlrmperf/internal/serve"
)

// traceFile is the checked-in trace format: either a bare JSON array
// of serve.Request rows or an object wrapping it under "requests"
// (room for metadata next to the rows).
type traceFile struct {
	Requests []serve.Request `json:"requests"`
}

// LoadTrace reads a replay trace from path. Tenant and priority tags
// on trace rows are advisory — the scheduler overwrites them with the
// firing tenant's spec, keeping tenancy a serve-layer property of the
// run, not of the recorded workload.
func LoadTrace(path string) ([]serve.Request, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []serve.Request
	if err := json.Unmarshal(data, &rows); err != nil {
		var tf traceFile
		if err2 := json.Unmarshal(data, &tf); err2 != nil {
			return nil, fmt.Errorf("loadgen: %s is neither a request array nor a trace object: %w", path, err)
		}
		rows = tf.Requests
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("loadgen: trace %s has no requests", path)
	}
	for i := range rows {
		if rows[i].Workload == "" {
			return nil, fmt.Errorf("loadgen: trace %s row %d has no workload", path, i)
		}
	}
	return rows, nil
}
