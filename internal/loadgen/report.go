package loadgen

// LatencyQuantiles summarizes a latency distribution in microseconds.
type LatencyQuantiles struct {
	P50    int64   `json:"p50_us"`
	P95    int64   `json:"p95_us"`
	P99    int64   `json:"p99_us"`
	Max    int64   `json:"max_us"`
	MeanUs float64 `json:"mean_us"`
}

// TenantReport is one tenant's SLO accounting for the run.
type TenantReport struct {
	Name      string  `json:"name"`
	Priority  string  `json:"priority,omitempty"`
	TargetRPS float64 `json:"target_rps,omitempty"`
	// Scheduled counts clock ticks; Missed the ticks turned away by the
	// in-flight bound; Sent = Scheduled - Missed actually dispatched.
	Scheduled uint64 `json:"scheduled"`
	Missed    uint64 `json:"missed"`
	Sent      uint64 `json:"sent"`
	// OK are clean 200 rows; AppErrors rows the server computed but
	// failed (validation, deadline); Shed the 429/503 rejections by
	// error code; Transport dial/stream failures; Other any remaining
	// non-2xx.
	OK           uint64            `json:"ok"`
	AppErrors    uint64            `json:"app_errors"`
	Shed         map[string]uint64 `json:"shed,omitempty"`
	ShedTotal    uint64            `json:"shed_total"`
	ShedRate     float64           `json:"shed_rate"`
	Transport    uint64            `json:"transport_errors"`
	Other        uint64            `json:"other_errors"`
	CacheHits    uint64            `json:"cache_hits"`
	CacheHitRate float64           `json:"cache_hit_rate"`
	AchievedRPS  float64           `json:"achieved_rps"`
	// Latency covers OK rows only, end to end as the client saw it;
	// the queue-wait fields echo the server's own admission-wait stamp.
	Latency        LatencyQuantiles `json:"latency"`
	AvgQueueWaitUs float64          `json:"avg_queue_wait_us,omitempty"`
	MaxQueueWaitUs int64            `json:"max_queue_wait_us,omitempty"`
}

// Report is the JSON document one load run produces.
type Report struct {
	Target       string         `json:"target"`
	Seed         int64          `json:"seed"`
	ZipfSkew     float64        `json:"zipf_skew"`
	DurationSecs float64        `json:"duration_secs"`
	Totals       TenantReport   `json:"totals"`
	Tenants      []TenantReport `json:"tenants"`
	// Server is the target's own post-run accounting (set when the
	// invariant check ran).
	Server *ServerStats `json:"server,omitempty"`
}

// BenchSample mirrors cmd/benchdiff's Sample shape so the load report
// can join the ratcheting benchmark gate without importing main
// packages.
type BenchSample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// BenchSuite mirrors cmd/benchdiff's Suite shape.
type BenchSuite struct {
	Benchmarks map[string]BenchSample `json:"benchmarks"`
}

// BenchSuite renders the run's latency quantiles as a benchdiff suite:
// one pseudo-benchmark per quantile, nanoseconds in NsPerOp, the
// alloc metrics marked absent (-1) exactly as benchdiff's parser does
// for unmeasured columns.
func (r *Report) BenchSuite() BenchSuite {
	mk := func(us int64) BenchSample {
		return BenchSample{NsPerOp: float64(us) * 1e3, BytesPerOp: -1, AllocsPerOp: -1, Samples: int(r.Totals.OK)}
	}
	return BenchSuite{Benchmarks: map[string]BenchSample{
		"LoadgenLatencyP50": mk(r.Totals.Latency.P50),
		"LoadgenLatencyP95": mk(r.Totals.Latency.P95),
		"LoadgenLatencyP99": mk(r.Totals.Latency.P99),
	}}
}
