// Package ops defines the operator vocabulary of the modeled workloads.
// An Op is a shape-polymorphic operator: given input tensor metadata it
// reports its output metadata and the device kernels it launches. Ops
// carry the PyTorch trace names the paper reports (aten::linear,
// AddmmBackward0, LookupFunction, ...) so that breakdowns and overhead
// tables read like the paper's figures.
//
// Keeping kernels derived (rather than stored) is what makes the
// execution-graph transforms of Section V-A possible: resizing a batch or
// fusing a subgraph re-propagates shapes and the kernel calls follow.
package ops

import (
	"fmt"

	"dlrmperf/internal/kernels"
	"dlrmperf/internal/tensor"
)

// Op is one operator type instance.
type Op interface {
	// Name returns the trace name (used to key overhead statistics).
	Name() string
	// Outputs derives output tensor metadata from the inputs.
	Outputs(inputs []tensor.Meta) []tensor.Meta
	// Kernels derives the device kernel calls for the given inputs.
	// Host-only ops (aten::view ...) return nil.
	Kernels(inputs []tensor.Meta) []kernels.Kernel
}

func assertInputs(op string, inputs []tensor.Meta, want int) {
	if len(inputs) != want {
		panic(fmt.Sprintf("ops: %s expects %d inputs, got %d", op, want, len(inputs)))
	}
}

// --- Element-wise family -------------------------------------------------

// Elementwise is a generic pointwise operator emitting a single
// element-wise kernel sized by its first input.
type Elementwise struct {
	OpName string
	// ReadsPerElem/WritesPerElem/FLOPsPerElem parameterize the kernel.
	ReadsPerElem, WritesPerElem, FLOPsPerElem float64
	// ScalarOutput collapses the output to a scalar (losses, sums).
	ScalarOutput bool
	// NInputs is the expected input count (default 1).
	NInputs int
}

// Name implements Op.
func (e Elementwise) Name() string { return e.OpName }

// Outputs implements Op.
func (e Elementwise) Outputs(inputs []tensor.Meta) []tensor.Meta {
	n := e.NInputs
	if n == 0 {
		n = 1
	}
	assertInputs(e.OpName, inputs, n)
	if e.ScalarOutput {
		return []tensor.Meta{tensor.New()}
	}
	return []tensor.Meta{inputs[0]}
}

// Kernels implements Op.
func (e Elementwise) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	return []kernels.Kernel{kernels.Elementwise{
		Name:          shortName(e.OpName),
		NElems:        inputs[0].Numel(),
		ReadsPerElem:  e.ReadsPerElem,
		WritesPerElem: e.WritesPerElem,
		FLOPsPerElem:  e.FLOPsPerElem,
	}}
}

func shortName(opName string) string {
	// "aten::relu" -> "relu"
	for i := len(opName) - 1; i >= 0; i-- {
		if opName[i] == ':' {
			return opName[i+1:]
		}
	}
	return opName
}

// ReLU returns aten::relu.
func ReLU() Op {
	return Elementwise{OpName: "aten::relu", ReadsPerElem: 4, WritesPerElem: 4, FLOPsPerElem: 1}
}

// ReLUBackward returns ReluBackward0 (reads grad and saved mask).
func ReLUBackward() Op {
	return Elementwise{OpName: "ReluBackward0", ReadsPerElem: 8, WritesPerElem: 4, FLOPsPerElem: 1}
}

// Sigmoid returns aten::sigmoid.
func Sigmoid() Op {
	return Elementwise{OpName: "aten::sigmoid", ReadsPerElem: 4, WritesPerElem: 4, FLOPsPerElem: 4}
}

// SigmoidBackward returns SigmoidBackward0.
func SigmoidBackward() Op {
	return Elementwise{OpName: "SigmoidBackward0", ReadsPerElem: 8, WritesPerElem: 4, FLOPsPerElem: 3}
}

// Add returns aten::add_ over two same-shaped tensors.
func Add() Op {
	return Elementwise{OpName: "aten::add_", ReadsPerElem: 8, WritesPerElem: 4, FLOPsPerElem: 1, NInputs: 2}
}

// MSELoss returns aten::mse_loss (pointwise diff + reduction fused).
func MSELoss() Op {
	return Elementwise{OpName: "aten::mse_loss", ReadsPerElem: 8, WritesPerElem: 0.1,
		FLOPsPerElem: 3, ScalarOutput: true, NInputs: 2}
}

// MSELossBackward returns MseLossBackward0.
func MSELossBackward() Op {
	return Elementwise{OpName: "MseLossBackward0", ReadsPerElem: 8, WritesPerElem: 4,
		FLOPsPerElem: 2, NInputs: 2}
}

// BCELoss returns aten::binary_cross_entropy.
func BCELoss() Op {
	return Elementwise{OpName: "aten::binary_cross_entropy", ReadsPerElem: 8, WritesPerElem: 0.1,
		FLOPsPerElem: 8, ScalarOutput: true, NInputs: 2}
}

// BCELossBackward returns BinaryCrossEntropyBackward0.
func BCELossBackward() Op {
	return Elementwise{OpName: "BinaryCrossEntropyBackward0", ReadsPerElem: 8, WritesPerElem: 4,
		FLOPsPerElem: 6, NInputs: 2}
}

// AccumulateGrad returns the autograd grad-accumulation node for one
// parameter tensor.
func AccumulateGrad() Op {
	return Elementwise{OpName: "AccumulateGrad", ReadsPerElem: 8, WritesPerElem: 4, FLOPsPerElem: 1}
}

// Sum returns aten::sum over the input.
func Sum() Op {
	return Elementwise{OpName: "aten::sum", ReadsPerElem: 4, WritesPerElem: 0.05,
		FLOPsPerElem: 1, ScalarOutput: true}
}

// Softmax returns aten::softmax (read twice: max+exp pass, normalize pass).
func Softmax() Op {
	return Elementwise{OpName: "aten::softmax", ReadsPerElem: 8, WritesPerElem: 4, FLOPsPerElem: 6}
}

// SoftmaxBackward returns SoftmaxBackward0.
func SoftmaxBackward() Op {
	return Elementwise{OpName: "SoftmaxBackward0", ReadsPerElem: 12, WritesPerElem: 4, FLOPsPerElem: 4}
}

// LayerNorm returns aten::layer_norm.
func LayerNorm() Op {
	return Elementwise{OpName: "aten::layer_norm", ReadsPerElem: 8, WritesPerElem: 4, FLOPsPerElem: 6}
}

// LayerNormBackward returns NativeLayerNormBackward0.
func LayerNormBackward() Op {
	return Elementwise{OpName: "NativeLayerNormBackward0", ReadsPerElem: 16, WritesPerElem: 8, FLOPsPerElem: 8}
}

// Dropout returns aten::dropout.
func Dropout() Op {
	return Elementwise{OpName: "aten::dropout", ReadsPerElem: 5, WritesPerElem: 8, FLOPsPerElem: 2}
}

// SliceBackward is the autograd node of one aten::cat input
// (SliceBackward0): it copies the corresponding slice of the upstream
// gradient out into a (B, Cols) tensor.
type SliceBackward struct{ Cols int64 }

// Name implements Op.
func (SliceBackward) Name() string { return "SliceBackward0" }

// Outputs implements Op.
func (s SliceBackward) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("SliceBackward0", inputs, 1)
	return []tensor.Meta{tensor.New(inputs[0].Dim(0), s.Cols)}
}

// Kernels implements Op.
func (s SliceBackward) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	return []kernels.Kernel{kernels.Elementwise{
		Name: "slice_backward", NElems: inputs[0].Dim(0) * s.Cols,
		ReadsPerElem: 4, WritesPerElem: 4,
	}}
}

// View returns aten::view — a host-only metadata op with no kernels, the
// paper's example of an op whose T5 path is taken in Algorithm 1.
type View struct{ NewShape []int64 }

// Name implements Op.
func (v View) Name() string { return "aten::view" }

// Outputs implements Op.
func (v View) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::view", inputs, 1)
	if len(v.NewShape) == 0 {
		// Flatten keeping dim 0.
		b := inputs[0].Dim(0)
		return []tensor.Meta{tensor.NewTyped(inputs[0].DType, b, inputs[0].Numel()/b)}
	}
	shape := append([]int64(nil), v.NewShape...)
	n := inputs[0].Numel()
	known := int64(1)
	infer := -1
	for i, d := range shape {
		if d == -1 {
			infer = i
			continue
		}
		known *= d
	}
	if infer >= 0 && known > 0 {
		shape[infer] = n / known
	}
	return []tensor.Meta{tensor.NewTyped(inputs[0].DType, shape...)}
}

// Kernels implements Op.
func (v View) Kernels([]tensor.Meta) []kernels.Kernel { return nil }

// Zeros allocates a zero tensor on device (aten::zeros): one tiny fill
// kernel.
type Zeros struct{ Shape []int64 }

// Name implements Op.
func (z Zeros) Name() string { return "aten::zeros" }

// Outputs implements Op.
func (z Zeros) Outputs(inputs []tensor.Meta) []tensor.Meta {
	return []tensor.Meta{tensor.New(z.Shape...)}
}

// Kernels implements Op.
func (z Zeros) Kernels([]tensor.Meta) []kernels.Kernel {
	m := tensor.New(z.Shape...)
	return []kernels.Kernel{kernels.Elementwise{
		Name: "fill", NElems: m.Numel(), WritesPerElem: 4,
	}}
}

// --- Data movement ---------------------------------------------------------

// ToDevice copies its input host->device (aten::to).
type ToDevice struct{}

// Name implements Op.
func (ToDevice) Name() string { return "aten::to" }

// Outputs implements Op.
func (ToDevice) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::to", inputs, 1)
	return []tensor.Meta{inputs[0]}
}

// Kernels implements Op.
func (ToDevice) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	return []kernels.Kernel{kernels.Memcpy{NBytes: inputs[0].Bytes(), Dir: kernels.H2D}}
}

// Concat concatenates its inputs along Dim (aten::cat).
type Concat struct{ Dim int }

// Name implements Op.
func (Concat) Name() string { return "aten::cat" }

// Outputs implements Op.
func (c Concat) Outputs(inputs []tensor.Meta) []tensor.Meta {
	if len(inputs) == 0 {
		panic("ops: aten::cat with no inputs")
	}
	out := append([]int64(nil), inputs[0].Shape...)
	total := int64(0)
	for _, in := range inputs {
		total += in.Dim(c.Dim)
	}
	d := c.Dim
	if d < 0 {
		d += len(out)
	}
	out[d] = total
	return []tensor.Meta{tensor.NewTyped(inputs[0].DType, out...)}
}

// Kernels implements Op.
func (c Concat) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	out := c.Outputs(inputs)[0]
	return []kernels.Kernel{kernels.Concat{OutBytes: out.Bytes(), NInputs: len(inputs)}}
}

// TransposeOp permutes the last two axes of a 3D tensor (aten::transpose
// materialized by a JIT permute kernel).
type TransposeOp struct{}

// Name implements Op.
func (TransposeOp) Name() string { return "aten::transpose" }

// Outputs implements Op.
func (TransposeOp) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::transpose", inputs, 1)
	in := inputs[0]
	if in.Rank() != 3 {
		panic("ops: aten::transpose models batched 2<->3 axis permutation only")
	}
	return []tensor.Meta{tensor.NewTyped(in.DType, in.Dim(0), in.Dim(2), in.Dim(1))}
}

// Kernels implements Op.
func (TransposeOp) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	in := inputs[0]
	return []kernels.Kernel{kernels.Transpose{B: in.Dim(0), M: in.Dim(1), N: in.Dim(2)}}
}

// TBackward is the autograd node of a transpose (TBackward0).
type TBackward struct{}

// Name implements Op.
func (TBackward) Name() string { return "TBackward0" }

// Outputs implements Op.
func (TBackward) Outputs(inputs []tensor.Meta) []tensor.Meta {
	return TransposeOp{}.Outputs(inputs)
}

// Kernels implements Op.
func (TBackward) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	return TransposeOp{}.Kernels(inputs)
}

// --- GEMM family -------------------------------------------------------------

// Linear is aten::linear: x(B,in) @ W(in,out) + bias.
type Linear struct{ Out int64 }

// Name implements Op.
func (Linear) Name() string { return "aten::linear" }

// Outputs implements Op.
func (l Linear) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::linear", inputs, 1)
	return []tensor.Meta{tensor.New(inputs[0].Dim(0), l.Out)}
}

// Kernels implements Op.
func (l Linear) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	in := inputs[0]
	return []kernels.Kernel{kernels.GEMM{Batch: 1, M: in.Dim(0), N: l.Out, K: in.Dim(1)}}
}

// LinearBackward is AddmmBackward0: two GEMMs, dgrad (B,out)x(out,in) and
// wgrad (in,B)x(B,out). Inputs: grad_out (B,out) and the saved input
// activation (B,in).
type LinearBackward struct{}

// Name implements Op.
func (LinearBackward) Name() string { return "AddmmBackward0" }

// Outputs implements Op.
func (LinearBackward) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("AddmmBackward0", inputs, 2)
	// grad wrt input, grad wrt weight.
	gradOut, x := inputs[0], inputs[1]
	return []tensor.Meta{x, tensor.New(x.Dim(1), gradOut.Dim(1))}
}

// Kernels implements Op.
func (LinearBackward) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	gradOut, x := inputs[0], inputs[1]
	b, out, in := gradOut.Dim(0), gradOut.Dim(1), x.Dim(1)
	return []kernels.Kernel{
		kernels.GEMM{Batch: 1, M: b, N: in, K: out}, // dX = dY @ W^T
		kernels.GEMM{Batch: 1, M: in, N: out, K: b}, // dW = X^T @ dY
	}
}

// BMM is aten::bmm over (B,M,K) x (B,K,N).
type BMM struct{}

// Name implements Op.
func (BMM) Name() string { return "aten::bmm" }

// Outputs implements Op.
func (BMM) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::bmm", inputs, 2)
	a, b := inputs[0], inputs[1]
	return []tensor.Meta{tensor.New(a.Dim(0), a.Dim(1), b.Dim(2))}
}

// Kernels implements Op.
func (BMM) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	a, b := inputs[0], inputs[1]
	return []kernels.Kernel{kernels.GEMM{Batch: a.Dim(0), M: a.Dim(1), N: b.Dim(2), K: a.Dim(2)}}
}

// BMMBackward is BmmBackward0: two batched GEMMs. Inputs: grad_out
// (B,M,N), saved a (B,M,K), saved b (B,K,N).
type BMMBackward struct{}

// Name implements Op.
func (BMMBackward) Name() string { return "BmmBackward0" }

// Outputs implements Op.
func (BMMBackward) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("BmmBackward0", inputs, 3)
	return []tensor.Meta{inputs[1], inputs[2]}
}

// Kernels implements Op.
func (BMMBackward) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	g, a, b := inputs[0], inputs[1], inputs[2]
	return []kernels.Kernel{
		kernels.GEMM{Batch: g.Dim(0), M: a.Dim(1), N: a.Dim(2), K: g.Dim(2)}, // dA = dC @ B^T
		kernels.GEMM{Batch: g.Dim(0), M: b.Dim(1), N: b.Dim(2), K: g.Dim(1)}, // dB = A^T @ dC
	}
}

// --- Optimizer -----------------------------------------------------------------

// OptimizerStep is Optimizer.step: one SGD-update element-wise kernel per
// parameter tensor (the paper predicts the op's kernel-time sum as a
// whole; we keep the individual kernels so T4/T5 counts stay faithful).
type OptimizerStep struct {
	// ParamSizes lists the element count of each parameter tensor.
	ParamSizes []int64
}

// Name implements Op.
func (OptimizerStep) Name() string { return "Optimizer.step" }

// Outputs implements Op.
func (o OptimizerStep) Outputs(inputs []tensor.Meta) []tensor.Meta { return nil }

// Kernels implements Op.
func (o OptimizerStep) Kernels([]tensor.Meta) []kernels.Kernel {
	ks := make([]kernels.Kernel, 0, len(o.ParamSizes))
	for _, n := range o.ParamSizes {
		ks = append(ks, kernels.Elementwise{
			Name: "sgd_step", NElems: n, ReadsPerElem: 8, WritesPerElem: 4, FLOPsPerElem: 2,
		})
	}
	return ks
}

// OptimizerZeroGrad is Optimizer.zero_grad: one fill kernel per parameter
// gradient.
type OptimizerZeroGrad struct {
	ParamSizes []int64
}

// Name implements Op.
func (OptimizerZeroGrad) Name() string { return "Optimizer.zero_grad" }

// Outputs implements Op.
func (o OptimizerZeroGrad) Outputs(inputs []tensor.Meta) []tensor.Meta { return nil }

// Kernels implements Op.
func (o OptimizerZeroGrad) Kernels([]tensor.Meta) []kernels.Kernel {
	ks := make([]kernels.Kernel, 0, len(o.ParamSizes))
	for _, n := range o.ParamSizes {
		ks = append(ks, kernels.Elementwise{
			Name: "zero_", NElems: n, WritesPerElem: 4,
		})
	}
	return ks
}
