package ops

import (
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/tensor"
)

// Conv2d is aten::conv2d over NCHW input.
type Conv2d struct {
	K, R, S     int64
	Stride, Pad int64
}

// Name implements Op.
func (Conv2d) Name() string { return "aten::conv2d" }

func (c Conv2d) kernel(in tensor.Meta) kernels.Conv {
	// "Same"-style padding never exceeds half the filter extent on each
	// axis, so asymmetric filters are padded only along their long axis.
	return kernels.Conv{
		N: in.Dim(0), C: in.Dim(1), H: in.Dim(2), W: in.Dim(3),
		K: c.K, R: c.R, S: c.S, Stride: c.Stride,
		PadH: capPad(c.Pad, c.R), PadW: capPad(c.Pad, c.S),
	}
}

func capPad(pad, filter int64) int64 {
	if m := (filter - 1) / 2; pad > m {
		return m
	}
	return pad
}

// Outputs implements Op.
func (c Conv2d) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::conv2d", inputs, 1)
	k := c.kernel(inputs[0])
	p, q := k.OutHW()
	return []tensor.Meta{tensor.New(inputs[0].Dim(0), c.K, p, q)}
}

// Kernels implements Op.
func (c Conv2d) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	return []kernels.Kernel{c.kernel(inputs[0])}
}

// Conv2dBackward is ConvolutionBackward0: data-gradient and
// weight-gradient convolutions. Inputs: grad_out (N,K,P,Q) and the saved
// input (N,C,H,W).
type Conv2dBackward struct {
	K, R, S     int64
	Stride, Pad int64
}

// Name implements Op.
func (Conv2dBackward) Name() string { return "ConvolutionBackward0" }

// Outputs implements Op.
func (c Conv2dBackward) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("ConvolutionBackward0", inputs, 2)
	x := inputs[1]
	return []tensor.Meta{x, tensor.New(c.K, x.Dim(1), c.R, c.S)}
}

// Kernels implements Op.
func (c Conv2dBackward) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	x := inputs[1]
	fwd := kernels.Conv{
		N: x.Dim(0), C: x.Dim(1), H: x.Dim(2), W: x.Dim(3),
		K: c.K, R: c.R, S: c.S, Stride: c.Stride,
		PadH: capPad(c.Pad, c.R), PadW: capPad(c.Pad, c.S),
	}
	// dgrad and wgrad each move roughly the forward conv's work; model
	// them as two convolutions of the same shape (the standard 3x
	// training-cost rule of thumb).
	return []kernels.Kernel{fwd, fwd}
}

// BatchNorm2d is aten::batch_norm over NCHW.
type BatchNorm2d struct{}

// Name implements Op.
func (BatchNorm2d) Name() string { return "aten::batch_norm" }

// Outputs implements Op.
func (BatchNorm2d) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::batch_norm", inputs, 1)
	return []tensor.Meta{inputs[0]}
}

// Kernels implements Op.
func (BatchNorm2d) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	in := inputs[0]
	return []kernels.Kernel{kernels.BatchNorm{N: in.Dim(0), C: in.Dim(1), H: in.Dim(2), W: in.Dim(3)}}
}

// BatchNorm2dBackward is NativeBatchNormBackward0.
type BatchNorm2dBackward struct{}

// Name implements Op.
func (BatchNorm2dBackward) Name() string { return "NativeBatchNormBackward0" }

// Outputs implements Op.
func (BatchNorm2dBackward) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("NativeBatchNormBackward0", inputs, 1)
	return []tensor.Meta{inputs[0]}
}

// Kernels implements Op.
func (BatchNorm2dBackward) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	in := inputs[0]
	k := kernels.BatchNorm{N: in.Dim(0), C: in.Dim(1), H: in.Dim(2), W: in.Dim(3)}
	// Backward needs the same two-pass structure twice (dgamma/dbeta
	// reduction, then dx).
	return []kernels.Kernel{k, k}
}

// MaxPool2d is aten::max_pool2d with a square window.
type MaxPool2d struct{ Window, Stride int64 }

// Name implements Op.
func (MaxPool2d) Name() string { return "aten::max_pool2d" }

// Outputs implements Op.
func (m MaxPool2d) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::max_pool2d", inputs, 1)
	in := inputs[0]
	p := (in.Dim(2)-m.Window)/m.Stride + 1
	q := (in.Dim(3)-m.Window)/m.Stride + 1
	return []tensor.Meta{tensor.New(in.Dim(0), in.Dim(1), p, q)}
}

// Kernels implements Op.
func (m MaxPool2d) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	out := m.Outputs(inputs)[0]
	w := float64(m.Window * m.Window)
	return []kernels.Kernel{kernels.Elementwise{
		Name: "max_pool2d", NElems: out.Numel(),
		ReadsPerElem: 4 * w, WritesPerElem: 4, FLOPsPerElem: w,
	}}
}

// AdaptiveAvgPool2d reduces spatial dims to 1x1 (aten::adaptive_avg_pool2d).
type AdaptiveAvgPool2d struct{}

// Name implements Op.
func (AdaptiveAvgPool2d) Name() string { return "aten::adaptive_avg_pool2d" }

// Outputs implements Op.
func (AdaptiveAvgPool2d) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::adaptive_avg_pool2d", inputs, 1)
	in := inputs[0]
	return []tensor.Meta{tensor.New(in.Dim(0), in.Dim(1), 1, 1)}
}

// Kernels implements Op.
func (AdaptiveAvgPool2d) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	in := inputs[0]
	hw := float64(in.Dim(2) * in.Dim(3))
	return []kernels.Kernel{kernels.Elementwise{
		Name: "avg_pool", NElems: in.Dim(0) * in.Dim(1),
		ReadsPerElem: 4 * hw, WritesPerElem: 4, FLOPsPerElem: hw,
	}}
}

// CrossEntropyLoss is aten::cross_entropy_loss over (B, classes).
type CrossEntropyLoss struct{}

// Name implements Op.
func (CrossEntropyLoss) Name() string { return "aten::cross_entropy_loss" }

// Outputs implements Op.
func (CrossEntropyLoss) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::cross_entropy_loss", inputs, 1)
	return []tensor.Meta{tensor.New()}
}

// Kernels implements Op.
func (CrossEntropyLoss) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	return []kernels.Kernel{kernels.Elementwise{
		Name: "cross_entropy", NElems: inputs[0].Numel(),
		ReadsPerElem: 8, WritesPerElem: 0.1, FLOPsPerElem: 8,
	}}
}

// CrossEntropyBackward is NllLossBackward0 fused with softmax backward.
type CrossEntropyBackward struct{}

// Name implements Op.
func (CrossEntropyBackward) Name() string { return "NllLossBackward0" }

// Outputs implements Op.
func (CrossEntropyBackward) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("NllLossBackward0", inputs, 1)
	return []tensor.Meta{inputs[0]}
}

// Kernels implements Op.
func (CrossEntropyBackward) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	return []kernels.Kernel{kernels.Elementwise{
		Name: "nll_backward", NElems: inputs[0].Numel(),
		ReadsPerElem: 8, WritesPerElem: 4, FLOPsPerElem: 4,
	}}
}
