package ops

import (
	"testing"

	"dlrmperf/internal/kernels"
	"dlrmperf/internal/tensor"
)

func TestLinearShapesAndKernel(t *testing.T) {
	l := Linear{Out: 256}
	in := []tensor.Meta{tensor.New(128, 512)}
	out := l.Outputs(in)
	if out[0].Dim(0) != 128 || out[0].Dim(1) != 256 {
		t.Errorf("linear out = %v", out[0])
	}
	g := l.Kernels(in)[0].(kernels.GEMM)
	if g.M != 128 || g.N != 256 || g.K != 512 {
		t.Errorf("gemm = %+v", g)
	}
}

func TestLinearBackwardTwoGEMMs(t *testing.T) {
	lb := LinearBackward{}
	in := []tensor.Meta{tensor.New(128, 256), tensor.New(128, 512)}
	outs := lb.Outputs(in)
	if !outs[0].Equal(tensor.New(128, 512)) {
		t.Errorf("dX meta = %v", outs[0])
	}
	if !outs[1].Equal(tensor.New(512, 256)) {
		t.Errorf("dW meta = %v", outs[1])
	}
	ks := lb.Kernels(in)
	if len(ks) != 2 {
		t.Fatalf("AddmmBackward0 kernels = %d, want 2", len(ks))
	}
	dgrad := ks[0].(kernels.GEMM)
	wgrad := ks[1].(kernels.GEMM)
	if dgrad.M != 128 || dgrad.N != 512 || dgrad.K != 256 {
		t.Errorf("dgrad = %+v", dgrad)
	}
	if wgrad.M != 512 || wgrad.N != 256 || wgrad.K != 128 {
		t.Errorf("wgrad = %+v", wgrad)
	}
	// Forward and backward GEMMs share one kernel kind — the sharing the
	// paper exploits to reuse one performance model.
	if dgrad.Kind() != (kernels.GEMM{}).Kind() {
		t.Error("backward GEMM has different kind")
	}
}

func TestBMMShapes(t *testing.T) {
	in := []tensor.Meta{tensor.New(64, 9, 32), tensor.New(64, 32, 9)}
	out := BMM{}.Outputs(in)[0]
	if !out.Equal(tensor.New(64, 9, 9)) {
		t.Errorf("bmm out = %v", out)
	}
	g := BMM{}.Kernels(in)[0].(kernels.GEMM)
	if g.Batch != 64 || g.M != 9 || g.N != 9 || g.K != 32 {
		t.Errorf("bmm gemm = %+v", g)
	}
	bk := BMMBackward{}.Kernels([]tensor.Meta{out, in[0], in[1]})
	if len(bk) != 2 {
		t.Fatalf("BmmBackward0 kernels = %d", len(bk))
	}
}

func TestConcatOutputs(t *testing.T) {
	in := []tensor.Meta{tensor.New(8, 1, 16), tensor.New(8, 4, 16)}
	out := Concat{Dim: 1}.Outputs(in)[0]
	if !out.Equal(tensor.New(8, 5, 16)) {
		t.Errorf("cat out = %v", out)
	}
	k := Concat{Dim: 1}.Kernels(in)[0].(kernels.Concat)
	if k.OutBytes != out.Bytes() || k.NInputs != 2 {
		t.Errorf("cat kernel = %+v", k)
	}
}

func TestEmbeddingLookupAvgRows(t *testing.T) {
	e := EmbeddingLookup{Rows: []int64{100, 200, 300}, L: 4, D: 8}
	if e.AvgRows() != 200 {
		t.Errorf("AvgRows = %d", e.AvgRows())
	}
	if e.T() != 3 {
		t.Errorf("T = %d", e.T())
	}
	in := []tensor.Meta{tensor.NewTyped(tensor.Int64, 64, 3, 4)}
	out := e.Outputs(in)[0]
	if !out.Equal(tensor.New(64, 3, 8)) {
		t.Errorf("lookup out = %v", out)
	}
	k := e.Kernels(in)[0].(kernels.Embedding)
	if k.B != 64 || k.E != 200 || k.T != 3 || k.L != 4 || k.D != 8 {
		t.Errorf("kernel = %+v", k)
	}
}

func TestEmbeddingVaryingTablesPerturbGroundTruth(t *testing.T) {
	uniform := EmbeddingLookup{Rows: []int64{1000, 1000}, L: 2, D: 8}
	mixed := EmbeddingLookup{Rows: []int64{10, 1990}, L: 2, D: 8}
	in := []tensor.Meta{tensor.NewTyped(tensor.Int64, 64, 2, 2)}
	ku := uniform.Kernels(in)[0].(kernels.Embedding)
	km := mixed.Kernels(in)[0].(kernels.Embedding)
	if ku.E != km.E {
		t.Fatal("test requires equal average rows")
	}
	if ku.ZipfSkew == km.ZipfSkew {
		t.Error("mixed table sizes should perturb the ground-truth locality knob")
	}
}

func TestTrilShapes(t *testing.T) {
	in := []tensor.Meta{tensor.New(32, 9, 9)}
	out := TrilIndex{}.Outputs(in)[0]
	if !out.Equal(tensor.New(32, 36)) {
		t.Errorf("tril out = %v", out)
	}
	b := TrilIndexBackward{F: 9}
	back := b.Outputs([]tensor.Meta{out})[0]
	if !back.Equal(tensor.New(32, 9, 9)) {
		t.Errorf("tril backward out = %v", back)
	}
	k := b.Kernels([]tensor.Meta{out})[0].(kernels.Tril)
	if !k.Backward || k.F != 9 {
		t.Errorf("tril bwd kernel = %+v", k)
	}
}

func TestViewInference(t *testing.T) {
	v := View{NewShape: []int64{-1, 4, 8}}
	out := v.Outputs([]tensor.Meta{tensor.New(16, 32)})[0]
	if !out.Equal(tensor.New(16, 4, 8)) {
		t.Errorf("view out = %v", out)
	}
	if v.Kernels(nil) != nil {
		t.Error("view must be host-only")
	}
	flat := View{}.Outputs([]tensor.Meta{tensor.New(8, 2, 3)})[0]
	if !flat.Equal(tensor.New(8, 6)) {
		t.Errorf("default flatten = %v", flat)
	}
}

func TestOptimizerKernelsPerParam(t *testing.T) {
	o := OptimizerStep{ParamSizes: []int64{100, 200, 300}}
	ks := o.Kernels(nil)
	if len(ks) != 3 {
		t.Fatalf("step kernels = %d", len(ks))
	}
	z := OptimizerZeroGrad{ParamSizes: []int64{100, 200}}
	if len(z.Kernels(nil)) != 2 {
		t.Fatal("zero_grad kernel count wrong")
	}
}

func TestToDeviceIsH2D(t *testing.T) {
	k := ToDevice{}.Kernels([]tensor.Meta{tensor.New(2048, 512)})[0].(kernels.Memcpy)
	if k.Dir != kernels.H2D {
		t.Error("aten::to should be H2D")
	}
	if k.NBytes != 2048*512*4 {
		t.Errorf("bytes = %d", k.NBytes)
	}
}

func TestConv2dShapes(t *testing.T) {
	c := Conv2d{K: 64, R: 7, S: 7, Stride: 2, Pad: 3}
	out := c.Outputs([]tensor.Meta{tensor.New(32, 3, 224, 224)})[0]
	if !out.Equal(tensor.New(32, 64, 112, 112)) {
		t.Errorf("conv out = %v", out)
	}
	bk := Conv2dBackward{K: 64, R: 7, S: 7, Stride: 2, Pad: 3}
	ks := bk.Kernels([]tensor.Meta{out, tensor.New(32, 3, 224, 224)})
	if len(ks) != 2 {
		t.Errorf("conv backward kernels = %d, want 2", len(ks))
	}
}

func TestElementwiseScalarOutput(t *testing.T) {
	loss := MSELoss()
	out := loss.Outputs([]tensor.Meta{tensor.New(128, 1), tensor.New(128, 1)})[0]
	if out.Rank() != 0 {
		t.Errorf("loss output rank = %d", out.Rank())
	}
}

func TestOpNamesMatchPaperTraces(t *testing.T) {
	want := map[string]Op{
		"aten::relu":             ReLU(),
		"ReluBackward0":          ReLUBackward(),
		"aten::linear":           Linear{Out: 1},
		"AddmmBackward0":         LinearBackward{},
		"aten::bmm":              BMM{},
		"BmmBackward0":           BMMBackward{},
		"aten::cat":              Concat{},
		"aten::to":               ToDevice{},
		"aten::index":            TrilIndex{},
		"IndexBackward0":         TrilIndexBackward{},
		"aten::mse_loss":         MSELoss(),
		"MseLossBackward0":       MSELossBackward(),
		"Optimizer.step":         OptimizerStep{},
		"Optimizer.zero_grad":    OptimizerZeroGrad{},
		"LookupFunction":         EmbeddingLookup{},
		"LookupFunctionBackward": EmbeddingLookup{Backward: true},
		"AccumulateGrad":         AccumulateGrad(),
		"SliceBackward0":         SliceBackward{},
	}
	for name, op := range want {
		if op.Name() != name {
			t.Errorf("op name %q != %q", op.Name(), name)
		}
	}
}

func TestAssertInputsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity did not panic")
		}
	}()
	Linear{Out: 4}.Outputs([]tensor.Meta{tensor.New(2, 2), tensor.New(2, 2)})
}
