package ops

import (
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/stats"
	"dlrmperf/internal/tensor"
)

// EmbeddingLookup is the batched embedding-table lookup op
// (LookupFunction in the paper's traces): T tables processed by a single
// fused kernel, the Tulloch batched implementation the paper integrates
// into DLRM. The input is the (B, T, L) int64 index tensor; the output is
// the (B, T, D) dense activations.
type EmbeddingLookup struct {
	// Rows holds the number of embeddings per table (length T). Tables
	// may differ in size (DLRM_MLPerf); the kernel-level performance
	// model only ever sees the average, which is one of the error
	// sources the paper calls out.
	Rows []int64
	// L is the pooling factor (lookups per output vector).
	L int64
	// D is the embedding dimension.
	D int64
	// ZipfSkew shapes the synthetic index locality for the ground truth.
	ZipfSkew float64
	// Backward selects LookupFunctionBackward (gradient + fused SGD).
	Backward bool
}

// T returns the number of tables.
func (e EmbeddingLookup) T() int64 { return int64(len(e.Rows)) }

// AvgRows returns the mean table size, the value performance models see.
func (e EmbeddingLookup) AvgRows() int64 {
	if len(e.Rows) == 0 {
		return 0
	}
	s := int64(0)
	for _, r := range e.Rows {
		s += r
	}
	return s / int64(len(e.Rows))
}

// rowsCV returns the coefficient of variation of table sizes, which the
// ground truth uses to model the nonlinear cache behavior of mixed table
// sizes (hidden from the predictor).
func (e EmbeddingLookup) rowsCV() float64 {
	if len(e.Rows) < 2 {
		return 0
	}
	xs := make([]float64, len(e.Rows))
	for i, r := range e.Rows {
		xs[i] = float64(r)
	}
	m := stats.Mean(xs)
	if m == 0 {
		return 0
	}
	return stats.Std(xs) / m
}

// Name implements Op.
func (e EmbeddingLookup) Name() string {
	if e.Backward {
		return "LookupFunctionBackward"
	}
	return "LookupFunction"
}

// Outputs implements Op.
func (e EmbeddingLookup) Outputs(inputs []tensor.Meta) []tensor.Meta {
	if e.Backward {
		// Inputs: saved indices, upstream gradient. Updates are applied
		// in place (fused SGD); emit a token scalar output so downstream
		// dependency edges exist.
		assertInputs(e.Name(), inputs, 2)
		return []tensor.Meta{tensor.New()}
	}
	assertInputs(e.Name(), inputs, 1)
	b := inputs[0].Dim(0)
	return []tensor.Meta{tensor.New(b, e.T(), e.D)}
}

// Kernels implements Op.
func (e EmbeddingLookup) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	b := inputs[0].Dim(0)
	k := kernels.Embedding{
		B: b, E: e.AvgRows(), T: e.T(), L: e.L, D: e.D,
		Backward: e.Backward,
		ZipfSkew: e.ZipfSkew,
	}
	// Mixed table sizes cache worse than their average suggests; fold the
	// spread into the locality knob the ground truth sees. Performance
	// models receive only (B, E, T, L, D).
	if cv := e.rowsCV(); cv > 0 {
		k.ZipfSkew -= 0.05 * cv
		if k.ZipfSkew < -0.2 {
			k.ZipfSkew = -0.2
		}
	}
	return []kernels.Kernel{k}
}

// EmbeddingBag is a single-table lookup (aten::embedding_bag), the
// *unfused* form of Fig. 11's left side: DLRM variants built with one
// EmbeddingBag per table pay per-op overheads T times, which is exactly
// the fusion opportunity the co-design study exploits.
type EmbeddingBag struct {
	Rows     int64
	L, D     int64
	ZipfSkew float64
	Backward bool
}

// Name implements Op.
func (e EmbeddingBag) Name() string {
	if e.Backward {
		return "EmbeddingBagBackward0"
	}
	return "aten::embedding_bag"
}

// Outputs implements Op.
func (e EmbeddingBag) Outputs(inputs []tensor.Meta) []tensor.Meta {
	if e.Backward {
		assertInputs(e.Name(), inputs, 2)
		return []tensor.Meta{tensor.New()}
	}
	assertInputs(e.Name(), inputs, 1)
	b := inputs[0].Dim(0)
	return []tensor.Meta{tensor.New(b, int64(1), e.D)}
}

// Kernels implements Op.
func (e EmbeddingBag) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	b := inputs[0].Dim(0)
	return []kernels.Kernel{kernels.Embedding{
		B: b, E: e.Rows, T: 1, L: e.L, D: e.D,
		Backward: e.Backward,
		ZipfSkew: e.ZipfSkew,
	}}
}

// TrilIndex extracts the strictly-lower-triangular entries of the feature
// interaction matrix (aten::index with tril indices). Input (B, F, F),
// output (B, F*(F-1)/2).
type TrilIndex struct{}

// Name implements Op.
func (TrilIndex) Name() string { return "aten::index" }

// Outputs implements Op.
func (TrilIndex) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("aten::index", inputs, 1)
	in := inputs[0]
	f := in.Dim(1)
	return []tensor.Meta{tensor.New(in.Dim(0), f*(f-1)/2)}
}

// Kernels implements Op.
func (TrilIndex) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	in := inputs[0]
	return []kernels.Kernel{kernels.Tril{B: in.Dim(0), F: in.Dim(1)}}
}

// TrilIndexBackward is IndexBackward0: scatter the flattened gradient
// back into a zero-filled (B, F, F) matrix. Input: grad (B, F*(F-1)/2)
// plus the saved interaction shape via F.
type TrilIndexBackward struct{ F int64 }

// Name implements Op.
func (TrilIndexBackward) Name() string { return "IndexBackward0" }

// Outputs implements Op.
func (t TrilIndexBackward) Outputs(inputs []tensor.Meta) []tensor.Meta {
	assertInputs("IndexBackward0", inputs, 1)
	return []tensor.Meta{tensor.New(inputs[0].Dim(0), t.F, t.F)}
}

// Kernels implements Op.
func (t TrilIndexBackward) Kernels(inputs []tensor.Meta) []kernels.Kernel {
	return []kernels.Kernel{kernels.Tril{B: inputs[0].Dim(0), F: t.F, Backward: true}}
}
