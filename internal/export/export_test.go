package export

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "a", "bee", "c")
	tb.AddRow("x", 1.5, 42)
	tb.AddRow("longer", "str", 7)
	out := tb.Render()
	if !strings.HasPrefix(out, "Title\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	// Title, header, separator, then the rows.
	if !strings.Contains(lines[2], "---") {
		t.Error("missing separator")
	}
	if !strings.Contains(lines[3], "1.50") {
		t.Errorf("float not formatted: %q", lines[3])
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRow(1, 2)
	got := tb.CSV()
	want := "x,y\n1,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.0796) != "+7.96%" {
		t.Errorf("Pct = %q", Pct(0.0796))
	}
	if Pct(-0.537) != "-53.70%" {
		t.Errorf("Pct = %q", Pct(-0.537))
	}
	if PctAbs(0.0461) != "4.61%" {
		t.Errorf("PctAbs = %q", PctAbs(0.0461))
	}
	if Us(123.4) != "123us" {
		t.Errorf("Us = %q", Us(123.4))
	}
	if Ms(12345) != "12.35ms" {
		t.Errorf("Ms = %q", Ms(12345))
	}
}
