// Package export renders experiment results as aligned ASCII tables and
// CSV, the output formats of the experiment drivers and benchmark
// harness.
package export

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the comma-separated form (no quoting; cells must not
// contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Pct formats a fraction as a signed percentage string.
func Pct(v float64) string { return fmt.Sprintf("%+.2f%%", 100*v) }

// PctAbs formats a fraction as an unsigned percentage string.
func PctAbs(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Us formats microseconds.
func Us(v float64) string { return fmt.Sprintf("%.0fus", v) }

// Ms formats microseconds as milliseconds.
func Ms(v float64) string { return fmt.Sprintf("%.2fms", v/1000) }
