// Package overhead implements the paper's host-overhead analysis
// (Section III-C): it classifies trace events into the five overhead
// types T1-T5, subtracts profiler-overhead constants from each event,
// removes outliers outside the (Q1-1.5IQR, Q3+1.5IQR) whiskers, and
// stores per-op per-type statistics in a JSON-serializable database used
// by the E2E predictor. It also aggregates databases across workloads
// into the "shared overheads" variant evaluated in Fig. 9.
package overhead

import (
	"encoding/json"
	"sort"

	"dlrmperf/internal/sim"
	"dlrmperf/internal/stats"
	"dlrmperf/internal/trace"
)

// TypeNames renders overhead type indices (sim.T1..sim.T5).
var TypeNames = [...]string{"T1", "T2", "T3", "T4", "T5"}

// T4Approx is the constant the paper substitutes for all CUDA runtime
// function durations in E2E prediction ("we use a value of 10µs to
// approximate all the CUDA runtime functions").
const T4Approx = 10.0

// Stats is mean/std/count of one (op, type) population after trimming.
type Stats struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	N    int     `json:"n"`
}

// DB is the overhead database: the JSON asset of Fig. 3's pipeline.
type DB struct {
	// T1 is the global between-ops gap statistic.
	T1 Stats `json:"t1"`
	// PerOp maps op name -> [T2, T3, T5] statistics.
	PerOp map[string][3]Stats `json:"per_op"`
	// T4 maps runtime function name -> measured duration statistics
	// (reported in the analysis; prediction uses T4Approx).
	T4 map[string]Stats `json:"t4"`
	// Defaults holds [T2, T3, T5] fallbacks for ops unseen during
	// extraction (means across all ops).
	Defaults [3]Stats `json:"defaults"`
}

// samples accumulates raw per-key observations before trimming.
type samples struct {
	t1    []float64
	perOp map[string][3][]float64
	t4    map[string][]float64
}

func newSamples() *samples {
	return &samples{perOp: map[string][3][]float64{}, t4: map[string][]float64{}}
}

// Collector extracts overhead samples from traces.
type Collector struct {
	s *samples
	// CPUCorrection and GPUCorrection are the per-event profiler
	// overheads subtracted during extraction.
	CPUCorrection float64
	GPUCorrection float64
	// TrimK is the IQR whisker multiplier (1.5 in the paper); a negative
	// value disables outlier removal (used by the trimming ablation).
	TrimK float64
}

// NewCollector returns a Collector with the paper's correction constants
// (2 µs per CPU event, 4 µs per GPU event) and 1.5-IQR trimming.
func NewCollector() *Collector {
	return &Collector{
		s:             newSamples(),
		CPUCorrection: sim.ProfilerCPUEventOverhead,
		GPUCorrection: sim.ProfilerGPUEventOverhead,
		TrimK:         1.5,
	}
}

// Add extracts overhead samples from every iteration of tr.
func (c *Collector) Add(tr *trace.Trace) {
	for iter := 0; iter < tr.Iters; iter++ {
		c.addIteration(tr.EventTree(iter))
	}
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func (c *Collector) addIteration(opsEvents []trace.OpEvents) {
	for i, oe := range opsEvents {
		op := oe.Span.Name
		if i > 0 {
			prev := opsEvents[i-1]
			c.s.t1 = append(c.s.t1, clamp(oe.Span.Start-prev.Span.End))
		}
		rec := c.s.perOp[op]
		if len(oe.Runtime) == 0 {
			// Algorithm 1's else branch charges T5 for kernel-less ops;
			// extract the op body accordingly.
			rec[2] = append(rec[2], clamp(oe.Span.Duration()-c.CPUCorrection))
			c.s.perOp[op] = rec
			continue
		}
		first, last := oe.Runtime[0], oe.Runtime[len(oe.Runtime)-1]
		rec[0] = append(rec[0], clamp(first.Start-oe.Span.Start-c.CPUCorrection))
		rec[1] = append(rec[1], clamp(oe.Span.End-last.End-c.GPUCorrection))
		for j := 0; j+1 < len(oe.Runtime); j++ {
			gap := oe.Runtime[j+1].Start - oe.Runtime[j].End
			rec[2] = append(rec[2], clamp(gap-c.GPUCorrection))
		}
		c.s.perOp[op] = rec
		for _, rt := range oe.Runtime {
			c.s.t4[rt.Name] = append(c.s.t4[rt.Name], rt.Duration())
		}
	}
}

// describeTrimmed applies the whisker trim and summarizes.
func describeTrimmed(xs []float64, k float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	if k > 0 {
		xs = stats.TrimIQR(xs, k)
	}
	d := stats.Describe(xs)
	return Stats{Mean: d.Mean, Std: d.Std, N: d.N}
}

// Finish trims outliers and produces the database.
func (c *Collector) Finish() *DB {
	db := &DB{PerOp: map[string][3]Stats{}, T4: map[string]Stats{}}
	db.T1 = describeTrimmed(c.s.t1, c.TrimK)
	var all [3][]float64
	for op, rec := range c.s.perOp {
		var st [3]Stats
		for t := 0; t < 3; t++ {
			st[t] = describeTrimmed(rec[t], c.TrimK)
			all[t] = append(all[t], rec[t]...)
		}
		db.PerOp[op] = st
	}
	for t := 0; t < 3; t++ {
		db.Defaults[t] = describeTrimmed(all[t], c.TrimK)
	}
	for fn, xs := range c.s.t4 {
		db.T4[fn] = describeTrimmed(xs, c.TrimK)
	}
	return db
}

// FromTrace builds a database from a single workload's trace.
func FromTrace(tr *trace.Trace) *DB {
	c := NewCollector()
	c.Add(tr)
	return c.Finish()
}

// Shared builds the shared-overheads database by pooling the raw samples
// of several workloads' traces ("averaging the samples across the
// workloads collected in overhead analysis").
func Shared(trs []*trace.Trace) *DB {
	c := NewCollector()
	for _, tr := range trs {
		c.Add(tr)
	}
	return c.Finish()
}

// lookup indices into PerOp entries.
const (
	idxT2 = 0
	idxT3 = 1
	idxT5 = 2
)

func (db *DB) opStat(op string, idx int) float64 {
	if st, ok := db.PerOp[op]; ok && st[idx].N > 0 {
		return st[idx].Mean
	}
	return db.Defaults[idx].Mean
}

// T1Mean returns the mean between-ops gap.
func (db *DB) T1Mean() float64 { return db.T1.Mean }

// T2Mean returns the op's mean pre-launch overhead.
func (db *DB) T2Mean(op string) float64 { return db.opStat(op, idxT2) }

// T3Mean returns the op's mean post-launch overhead.
func (db *DB) T3Mean(op string) float64 { return db.opStat(op, idxT3) }

// T5Mean returns the op's mean inter-launch overhead (also the host body
// charge for kernel-less ops).
func (db *DB) T5Mean(op string) float64 { return db.opStat(op, idxT5) }

// Ops returns the op names present, sorted.
func (db *DB) Ops() []string {
	out := make([]string, 0, len(db.PerOp))
	for op := range db.PerOp {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// Marshal renders the DB as indented JSON.
func (db *DB) Marshal() ([]byte, error) {
	return json.MarshalIndent(db, "", "  ")
}

// Load parses a DB from JSON.
func Load(data []byte) (*DB, error) {
	var db DB
	if err := json.Unmarshal(data, &db); err != nil {
		return nil, err
	}
	if db.PerOp == nil {
		db.PerOp = map[string][3]Stats{}
	}
	if db.T4 == nil {
		db.T4 = map[string]Stats{}
	}
	return &db, nil
}
