package overhead

import (
	"math"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/sim"
	"dlrmperf/internal/trace"
)

func profiledTrace(t *testing.T, model string, batch int64, seed uint64) *sim.Result {
	t.Helper()
	m, err := models.Build(model, batch)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run(m.Graph, sim.Config{
		Platform: hw.V100Platform(), Seed: seed, Warmup: 2, Iters: 25,
		Profile: true, Workload: model,
	})
}

func TestExtractionRecoversT1Mean(t *testing.T) {
	r := profiledTrace(t, models.NameDLRMDefault, 1024, 1)
	db := FromTrace(r.Trace)
	want := sim.T1Mean * hw.V100Platform().Host.OverheadScale
	// Trimming removes the long tail, so the estimate sits at or slightly
	// below the distribution mean.
	if db.T1.Mean < want*0.75 || db.T1.Mean > want*1.15 {
		t.Errorf("T1 mean = %v, want ~%v", db.T1.Mean, want)
	}
	if db.T1.N == 0 || db.T1.Std <= 0 {
		t.Errorf("T1 stats incomplete: %+v", db.T1)
	}
}

func TestExtractionRecoversPerOpT2(t *testing.T) {
	r := profiledTrace(t, models.NameDLRMDefault, 1024, 2)
	db := FromTrace(r.Trace)
	host := hw.V100Platform().Host
	s := sim.NewSampler(host, 0, models.NameDLRMDefault)
	for _, op := range []string{"aten::linear", "AddmmBackward0", "aten::relu"} {
		st, ok := db.PerOp[op]
		if !ok {
			t.Fatalf("no stats for %s", op)
		}
		want := s.MeanFor(sim.T2, op)
		got := st[0].Mean
		// The extracted value carries the workload bias and trimming, so
		// allow a generous band around the base mean.
		if got < want*0.6 || got > want*1.5 {
			t.Errorf("%s T2 = %v, want ~%v", op, got, want)
		}
	}
}

func TestSizeIndependenceAcrossBatches(t *testing.T) {
	a := FromTrace(profiledTrace(t, models.NameDLRMDefault, 512, 3).Trace)
	b := FromTrace(profiledTrace(t, models.NameDLRMDefault, 4096, 4).Trace)
	// The paper's size-independence: per-op T2 means agree across batch
	// sizes up to sampling noise.
	for _, op := range []string{"aten::linear", "aten::relu"} {
		ma := a.T2Mean(op)
		mb := b.T2Mean(op)
		if math.Abs(ma-mb)/ma > 0.25 {
			t.Errorf("%s T2 varies with batch: %v vs %v", op, ma, mb)
		}
	}
}

func TestKernellessOpsGetT5(t *testing.T) {
	r := profiledTrace(t, models.NameDLRMDefault, 512, 5)
	db := FromTrace(r.Trace)
	st, ok := db.PerOp["aten::view"]
	if !ok {
		t.Fatal("no stats for aten::view")
	}
	if st[2].N == 0 {
		t.Error("host-only op has no T5 samples")
	}
	if st[0].N != 0 {
		t.Error("host-only op should have no T2 samples")
	}
}

func TestT4PerFunction(t *testing.T) {
	r := profiledTrace(t, models.NameDLRMDefault, 1024, 6)
	db := FromTrace(r.Trace)
	launch, okL := db.T4["cudaLaunchKernel"]
	memcpy, okM := db.T4["cudaMemcpyAsync"]
	if !okL || !okM {
		t.Fatalf("missing T4 entries: launch=%v memcpy=%v", okL, okM)
	}
	if memcpy.Mean <= launch.Mean {
		t.Errorf("cudaMemcpyAsync (%v) should exceed cudaLaunchKernel (%v)", memcpy.Mean, launch.Mean)
	}
}

func TestSharedPoolsWorkloads(t *testing.T) {
	a := profiledTrace(t, models.NameDLRMDefault, 1024, 7)
	b := profiledTrace(t, models.NameDLRMMLPerf, 1024, 8)
	shared := Shared([]*trace.Trace{a.Trace, b.Trace})
	ind := FromTrace(a.Trace)
	// The shared DB must cover the union of ops, including BCE (MLPerf
	// only) which the default-model DB lacks.
	if _, ok := shared.PerOp["aten::binary_cross_entropy"]; !ok {
		t.Error("shared DB missing MLPerf-only op")
	}
	if _, ok := ind.PerOp["aten::binary_cross_entropy"]; ok {
		t.Error("individual default DB unexpectedly has BCE stats")
	}
	// Pooling across workloads shifts per-op means (the workload bias),
	// but not wildly.
	si := ind.T2Mean("aten::linear")
	ss := shared.T2Mean("aten::linear")
	if si == ss {
		t.Error("shared and individual T2 identical; expected workload-bias shift")
	}
	if math.Abs(si-ss)/si > 0.5 {
		t.Errorf("shared vs individual T2 differ too much: %v vs %v", si, ss)
	}
}

func TestTrimmingLowersT1Estimate(t *testing.T) {
	// Long-tailed T1 samples mean the raw mean exceeds the trimmed mean —
	// the paper's explanation for its systematic E2E underestimation.
	r := profiledTrace(t, models.NameDLRMDefault, 1024, 9)
	trimmed := FromTrace(r.Trace)
	raw := NewCollector()
	raw.TrimK = -1
	raw.Add(r.Trace)
	rawDB := raw.Finish()
	if rawDB.T1.Mean <= trimmed.T1.Mean {
		t.Errorf("raw T1 mean (%v) should exceed trimmed (%v)", rawDB.T1.Mean, trimmed.T1.Mean)
	}
}

func TestDBJSONRoundTrip(t *testing.T) {
	r := profiledTrace(t, models.NameDLRMDefault, 512, 10)
	db := FromTrace(r.Trace)
	data, err := db.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.T1.Mean != db.T1.Mean {
		t.Errorf("T1 mean changed in round trip: %v vs %v", got.T1.Mean, db.T1.Mean)
	}
	if got.T2Mean("aten::linear") != db.T2Mean("aten::linear") {
		t.Error("per-op T2 changed in round trip")
	}
	if len(got.Ops()) != len(db.Ops()) {
		t.Errorf("op census changed: %d vs %d", len(got.Ops()), len(db.Ops()))
	}
}

func TestLoadEmpty(t *testing.T) {
	db, err := Load([]byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if db.PerOp == nil || db.T4 == nil {
		t.Error("Load should initialize maps")
	}
	// Unknown op falls back to defaults (zero here).
	if db.T2Mean("nope") != 0 {
		t.Error("empty DB default should be 0")
	}
}
