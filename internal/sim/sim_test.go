package sim

import (
	"math"
	"testing"

	"dlrmperf/internal/graph"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/tensor"
	"dlrmperf/internal/trace"
)

func smallGraph() *graph.Graph {
	g := graph.New()
	x := g.Input(tensor.New(256, 64))
	d := g.Apply(ops.ToDevice{}, x)
	h := g.Apply(ops.Linear{Out: 32}, d[0])
	r := g.Apply(ops.ReLU(), h[0])
	g.Apply(ops.View{}, r[0]) // host-only op
	return g
}

func v100() hw.Platform { return hw.V100Platform() }

func TestRunProducesConsistentTrace(t *testing.T) {
	r := Run(smallGraph(), Config{Platform: v100(), Seed: 1, Warmup: 2, Iters: 5})
	tr := r.Trace
	if tr.Iters != 5 || len(tr.IterSpans) != 5 {
		t.Fatalf("iters = %d spans = %d", tr.Iters, len(tr.IterSpans))
	}
	// Each iteration: 4 op spans, 3 runtime calls, 3 kernels.
	var opsN, rts, kerns int
	for _, e := range tr.Events {
		if e.Iter != 0 {
			continue
		}
		switch e.Kind {
		case trace.OpSpan:
			opsN++
		case trace.RuntimeCall:
			rts++
		case trace.KernelSpan:
			kerns++
		}
	}
	if opsN != 4 || rts != 3 || kerns != 3 {
		t.Errorf("iter 0 census: ops=%d rt=%d kernels=%d", opsN, rts, kerns)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(smallGraph(), Config{Platform: v100(), Seed: 42, Warmup: 1, Iters: 5})
	b := Run(smallGraph(), Config{Platform: v100(), Seed: 42, Warmup: 1, Iters: 5})
	if a.MeanIterTime != b.MeanIterTime {
		t.Errorf("same seed, different iter time: %v vs %v", a.MeanIterTime, b.MeanIterTime)
	}
	c := Run(smallGraph(), Config{Platform: v100(), Seed: 43, Warmup: 1, Iters: 5})
	if a.MeanIterTime == c.MeanIterTime {
		t.Error("different seeds gave identical results")
	}
}

func TestEventOrderingInvariants(t *testing.T) {
	r := Run(smallGraph(), Config{Platform: v100(), Seed: 3, Warmup: 0, Iters: 3})
	for iter := 0; iter < 3; iter++ {
		tree := r.Trace.EventTree(iter)
		for _, oe := range tree {
			if oe.Span.End < oe.Span.Start {
				t.Fatal("op span ends before it starts")
			}
			for i, rt := range oe.Runtime {
				if rt.Start < oe.Span.Start || rt.End > oe.Span.End {
					t.Errorf("runtime call %d outside its op span", i)
				}
			}
			for i, k := range oe.Kernels {
				// A kernel cannot start before its launch call completes.
				if k.Start < oe.Runtime[i].End {
					t.Errorf("kernel %d starts before its launch ends", i)
				}
			}
		}
	}
}

func TestKernelsSerializeOnStream(t *testing.T) {
	m, err := models.Build(models.NameDLRMDefault, 512)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(m.Graph, Config{Platform: v100(), Seed: 5, Warmup: 1, Iters: 2})
	var spans [][2]float64
	for _, e := range r.Trace.Events {
		if e.Kind == trace.KernelSpan && e.Iter == 0 && e.Stream == 0 {
			spans = append(spans, [2]float64{e.Start, e.End})
		}
	}
	for i := 1; i < len(spans); i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Fatalf("kernels %d and %d overlap on stream 0", i-1, i)
		}
	}
}

func TestIterationIncludesDeviceDrain(t *testing.T) {
	r := Run(smallGraph(), Config{Platform: v100(), Seed: 9, Warmup: 0, Iters: 4})
	for i, span := range r.Trace.IterSpans {
		for _, e := range r.Trace.Events {
			if e.Iter == i && e.End > span[1]+1e-9 {
				t.Fatalf("iter %d event ends after iteration end", i)
			}
		}
	}
}

func TestProfiledRunIsSlower(t *testing.T) {
	// Profiling adds ~20 µs per ~300 µs iteration; use enough iterations
	// for the sampling noise of two independent runs to average out.
	plain := Run(smallGraph(), Config{Platform: v100(), Seed: 11, Warmup: 2, Iters: 400})
	prof := Run(smallGraph(), Config{Platform: v100(), Seed: 11, Warmup: 2, Iters: 400, Profile: true})
	if prof.MeanIterTime <= plain.MeanIterTime {
		t.Errorf("profiling did not add overhead: %v <= %v", prof.MeanIterTime, plain.MeanIterTime)
	}
}

func TestUtilizationRisesWithBatch(t *testing.T) {
	m, err := models.Build(models.NameDLRMDefault, 512)
	if err != nil {
		t.Fatal(err)
	}
	utilAt := func(b int64) float64 {
		if err := m.ResizeBatch(b); err != nil {
			t.Fatal(err)
		}
		r := Run(m.Graph, Config{Platform: v100(), Seed: 7, Warmup: 2, Iters: 8, Workload: m.Name})
		return r.Trace.Utilization()
	}
	low := utilAt(512)
	high := utilAt(4096)
	if high <= low {
		t.Errorf("utilization did not rise with batch: %v -> %v", low, high)
	}
	if low < 0.1 || low > 0.7 {
		t.Errorf("DLRM utilization at B=512 = %v, outside the paper's low-util band", low)
	}
	if high < 0.7 {
		t.Errorf("DLRM utilization at B=4096 = %v, too low", high)
	}
}

func TestCNNUtilizationHigh(t *testing.T) {
	if testing.Short() {
		t.Skip("resnet50 simulation in -short mode")
	}
	m, err := models.Build(models.NameResNet50, 32)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(m.Graph, Config{Platform: v100(), Seed: 7, Warmup: 1, Iters: 3, Workload: m.Name})
	if u := r.Trace.Utilization(); u < 0.9 {
		t.Errorf("resnet50 utilization = %v, want > 0.9 (Fig 1)", u)
	}
}

func TestMultiStreamOverlap(t *testing.T) {
	// Two independent heavy branches on separate streams should overlap
	// on the device and shorten the iteration.
	build := func() *graph.Graph {
		g := graph.New()
		x := g.Input(tensor.New(2048, 1024))
		d := g.Apply(ops.ToDevice{}, x)
		a := g.Apply(ops.Linear{Out: 2048}, d[0])
		b := g.Apply(ops.Linear{Out: 2048}, d[0])
		g.Apply(ops.Add(), a[0], b[0])
		return g
	}
	serial := build()
	parallel := build()
	parallel.AssignStreams()
	rs := Run(serial, Config{Platform: v100(), Seed: 21, Warmup: 2, Iters: 10})
	rp := Run(parallel, Config{Platform: v100(), Seed: 21, Warmup: 2, Iters: 10})
	if rp.MeanIterTime >= rs.MeanIterTime {
		t.Errorf("multi-stream not faster: %v >= %v", rp.MeanIterTime, rs.MeanIterTime)
	}
}

func TestOverheadSamplerProperties(t *testing.T) {
	host := v100().Host
	s := NewSampler(host, 1, "")
	// Size-independence by construction: means don't take tensor sizes.
	// Model-independence: empty workload means no bias.
	if m := s.MeanFor(T1, "any"); m != T1Mean*host.OverheadScale {
		t.Errorf("T1 mean = %v", m)
	}
	// Per-op variation exists for T2.
	if s.MeanFor(T2, "aten::relu") == s.MeanFor(T2, "AddmmBackward0") {
		t.Error("T2 means should vary across ops")
	}
	// Same op, stable mean.
	if s.MeanFor(T2, "aten::relu") != s.MeanFor(T2, "aten::relu") {
		t.Error("T2 mean not stable")
	}
	// Empirical mean of samples approaches the configured mean.
	s2 := NewSampler(hw.Host{OverheadScale: 1, OverheadCV: 0.3}, 7, "")
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += s2.Sample(T1, "x")
	}
	if got := sum / n; math.Abs(got-T1Mean)/T1Mean > 0.05 {
		t.Errorf("empirical T1 mean = %v, want ~%v", got, T1Mean)
	}
}

func TestWorkloadBiasIsStableAndBounded(t *testing.T) {
	host := v100().Host
	a := NewSampler(host, 1, "DLRM_default")
	b := NewSampler(host, 2, "DLRM_default")
	if a.workloadBias(T2, "aten::relu") != b.workloadBias(T2, "aten::relu") {
		t.Error("workload bias must not depend on the seed")
	}
	c := NewSampler(host, 1, "DLRM_MLPerf")
	if a.workloadBias(T2, "aten::relu") == c.workloadBias(T2, "aten::relu") {
		t.Error("different workloads should have different biases")
	}
	for _, op := range []string{"a", "b", "c", "aten::linear"} {
		v := a.workloadBias(T2, op)
		if v < 0.7 || v > 1.3 {
			t.Errorf("bias %v out of bounds", v)
		}
	}
}

func TestT4MemcpySlower(t *testing.T) {
	s := NewSampler(v100().Host, 1, "")
	if s.T4Mean(RTMemcpyAsync) <= s.T4Mean(RTLaunchKernel) {
		t.Error("cudaMemcpyAsync should be slower than cudaLaunchKernel")
	}
}
