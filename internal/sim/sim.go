// Package sim is the discrete-event simulator that stands in for the
// paper's GPU testbed: it executes an execution graph the way the
// PyTorch + CUDA stack does — a host thread issuing operators with
// stochastic per-type overheads (T1..T5), kernels launched asynchronously
// onto device streams, the device draining them in stream order — and
// records profiler-style traces.
//
// Everything the paper *measures* (per-batch training time, GPU active
// time, utilization, breakdowns, overhead samples) is produced here;
// everything the paper *predicts* lives in internal/perfmodel and
// internal/predict, which never see the simulator's internals.
package sim

import (
	"dlrmperf/internal/graph"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/trace"
	"dlrmperf/internal/xrand"
)

// Config controls a simulated run.
type Config struct {
	Platform hw.Platform
	// Seed drives every stochastic component of the run.
	Seed uint64
	// Warmup iterations are executed but not recorded (the paper warms up
	// for 5 iterations before measuring).
	Warmup int
	// Iters is the number of recorded iterations.
	Iters int
	// Profile injects profiler overheads into host time, as collecting a
	// trace does on real hardware. Measured E2E runs use Profile=false;
	// overhead-extraction runs use Profile=true.
	Profile bool
	// Workload names the model being run; it induces the mild per-op
	// overhead bias that breaks exact model-independence (see
	// NewSampler).
	Workload string
}

// DefaultConfig returns a 5-warmup, 30-iteration unprofiled run.
func DefaultConfig(p hw.Platform, seed uint64) Config {
	return Config{Platform: p, Seed: seed, Warmup: 5, Iters: 30}
}

// Result bundles the trace of a run.
type Result struct {
	Trace *trace.Trace
	// MeanIterTime is the measured per-batch training time in µs.
	MeanIterTime float64
	// MeanActiveTime is the measured device active time per batch in µs.
	MeanActiveTime float64
}

// interKernelGap is the device-side scheduling gap between back-to-back
// kernels on one stream (the "+1 µs" granularity Algorithm 1 models).
const interKernelGap = 0.8

// Run simulates cfg.Warmup+cfg.Iters training iterations of g.
func Run(g *graph.Graph, cfg Config) *Result {
	if cfg.Iters <= 0 {
		cfg.Iters = 1
	}
	root := xrand.New(cfg.Seed)
	dev := kernels.NewDevice(cfg.Platform.GPU, root.Split().Uint64())
	ovh := NewSampler(cfg.Platform.Host, root.Split().Uint64(), cfg.Workload)

	tr := &trace.Trace{Iters: cfg.Iters}
	host := 0.0
	streamFree := map[int]float64{}
	// deviceReady[node] is when the node's outputs exist on device.
	deviceReady := map[graph.NodeID]float64{}

	total := cfg.Warmup + cfg.Iters
	for it := 0; it < total; it++ {
		rec := it >= cfg.Warmup
		iterIdx := it - cfg.Warmup
		iterStart := host

		for _, node := range g.Nodes {
			// T1: gap before the op.
			host += ovh.Sample(T1, node.Op.Name())
			opStart := host
			opName := node.Op.Name()
			if cfg.Profile {
				host += ovh.SampleProfilerCPU()
			}

			// Cross-dependency device readiness (matters across streams;
			// same-stream ordering is enforced by streamFree).
			depReady := 0.0
			for _, d := range g.Deps(node) {
				if r := deviceReady[d]; r > depReady {
					depReady = r
				}
			}

			ks := g.NodeKernels(node)
			if len(ks) > 0 {
				host += ovh.Sample(T2, opName)
				lastEnd := depReady
				for i, k := range ks {
					fn := RTLaunchKernel
					switch k.Kind() {
					case kernels.KindMemcpyH2D, kernels.KindMemcpyD2H, kernels.KindMemcpyD2D:
						fn = RTMemcpyAsync
					}
					t4 := ovh.SampleT4(fn)
					rtStart := host
					host += t4
					rtEnd := host
					if cfg.Profile {
						host += ovh.SampleProfilerGPU()
					}

					start := rtEnd + cfg.Platform.GPU.KernelLaunchLatency
					if sf := streamFree[node.Stream] + interKernelGap; sf > start {
						start = sf
					}
					if depReady > start {
						start = depReady
					}
					dur := dev.Run(k)
					end := start + dur
					streamFree[node.Stream] = end
					if end > lastEnd {
						lastEnd = end
					}

					if rec {
						tr.Events = append(tr.Events,
							trace.Event{
								Kind: trace.RuntimeCall, Name: fn, Op: opName,
								Start: rtStart, End: rtEnd, Iter: iterIdx,
								Node: int(node.ID), Seq: i,
							},
							trace.Event{
								Kind: trace.KernelSpan, Name: k.String(), Op: opName,
								Start: start, End: end, Iter: iterIdx,
								Node: int(node.ID), Stream: node.Stream, Seq: i,
							})
					}
					if i < len(ks)-1 {
						host += ovh.Sample(T5, opName)
					}
				}
				host += ovh.Sample(T3, opName)
				deviceReady[node.ID] = lastEnd
			} else {
				// Host-only op: the T5-style body of Algorithm 1's else
				// branch.
				host += ovh.Sample(T5, opName)
				deviceReady[node.ID] = depReady
			}

			if rec {
				tr.Events = append(tr.Events, trace.Event{
					Kind: trace.OpSpan, Name: opName, Op: opName,
					Start: opStart, End: host, Iter: iterIdx, Node: int(node.ID),
				})
			}
		}

		// Iteration boundary: the training loop synchronizes (loss read /
		// next-batch handoff), so the batch time includes the drain.
		devEnd := 0.0
		for _, f := range streamFree {
			if f > devEnd {
				devEnd = f
			}
		}
		iterEnd := host
		if devEnd > iterEnd {
			iterEnd = devEnd
		}
		if rec {
			tr.IterSpans = append(tr.IterSpans, [2]float64{iterStart, iterEnd})
		}
		host = iterEnd
	}

	return &Result{
		Trace:          tr,
		MeanIterTime:   tr.MeanIterationTime(),
		MeanActiveTime: tr.MeanActiveTime(),
	}
}
