package sim

import (
	"hash/fnv"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/xrand"
)

// This file is the *ground truth* for host-side overheads: the
// distributions the simulated PyTorch runtime draws from. The paper's
// five overhead types (Section III-C, Fig. 6) are generated here with the
// properties the paper empirically observes and assumes:
//
//   - model-independence: a given op's overhead distribution is a
//     property of (op name, host), not of the model it appears in;
//   - size-independence: distributions do not depend on tensor sizes;
//   - per-op variation: different ops have different T2/T3/T5 means
//     (Fig. 8 spans ~2-45 µs across ops);
//   - long tails: occasional 3-8x outliers, especially for T1 and
//     cudaMemcpyAsync, which the paper identifies as the cause of its
//     systematic E2E underestimation once outliers are trimmed.
//
// The prediction side never reads these distributions; it re-estimates
// overheads from traces, as the paper does.

// Overhead type indices.
const (
	T1 = iota // gap between two top-level op calls
	T2        // op start to first kernel launch
	T3        // last kernel launch end to op end
	T4        // CUDA runtime function execution
	T5        // between two kernel launches
)

// Runtime function names used in traces.
const (
	RTLaunchKernel = "cudaLaunchKernel"
	RTMemcpyAsync  = "cudaMemcpyAsync"
)

// Sampler draws ground-truth overhead samples for one host.
type Sampler struct {
	host     hw.Host
	workload string
	rng      *xrand.Rand
}

// NewSampler returns a Sampler for the host drawing from seed. The
// workload name induces a mild (±15%) per-op bias: the paper's
// model-independence assumption holds only approximately on real systems
// (Section IV-B offers "not a strict mathematical proof"), and this
// residual dependence is what makes shared-overhead prediction slightly
// worse than per-workload overheads in Fig. 9.
func NewSampler(host hw.Host, seed uint64, workload string) *Sampler {
	return &Sampler{host: host, workload: workload, rng: xrand.New(seed)}
}

// workloadBias returns the stable per-workload mean factor: a global
// component (models stress the Python dispatcher, allocator, and
// autograd bookkeeping differently as a whole) times a per-op component.
// Both are invisible to a shared overhead database, which is what costs
// shared-overhead prediction its extra error in Fig. 9.
func (s *Sampler) workloadBias(typ int, op string) float64 {
	if s.workload == "" {
		return 1
	}
	global := 1 + 0.18*(opHash(s.workload, 77)-0.5)
	perOp := 1 + 0.22*(opHash(s.workload+"\x00"+op, byte(16+typ))-0.5)
	return global * perOp
}

// opHash returns a stable uniform value in [0,1) for (op, salt),
// implementing "every op has its own characteristic overhead".
func opHash(op string, salt byte) float64 {
	h := fnv.New64a()
	h.Write([]byte(op))
	h.Write([]byte{salt})
	return float64(h.Sum64()>>11) / (1 << 53)
}

// T1Mean is the reference mean of the between-ops gap on the V100 host
// (Fig. 7 shows ~8 µs across all models and batch sizes).
const T1Mean = 8.0

// MeanFor returns the distribution mean of the given overhead type for an
// op on this host. Exposed so tests can verify the model/size
// independence assumptions directly.
func (s *Sampler) MeanFor(typ int, op string) float64 {
	var m float64
	switch typ {
	case T1:
		m = T1Mean
	case T2:
		// Skewed: most ops dispatch quickly, autograd-heavy ops slowly.
		u := opHash(op, 2)
		m = 8 + 52*u*u
	case T3:
		m = 3 + 14*opHash(op, 3)
	case T5:
		m = 4 + 22*opHash(op, 5)
	case T4:
		m = 9.5
	default:
		panic("sim: unknown overhead type")
	}
	return m * s.host.OverheadScale
}

// T4Mean returns the runtime-call mean for a specific runtime function:
// cudaMemcpyAsync is slower and tailier than cudaLaunchKernel.
func (s *Sampler) T4Mean(fn string) float64 {
	m := 9.5
	if fn == RTMemcpyAsync {
		m = 15.0
	}
	return m * s.host.OverheadScale
}

// sample draws from a lognormal with the host's CV around mean, with a
// TailWeight chance of a 3-8x long-tail excursion.
func (s *Sampler) sample(mean, tailBoost float64) float64 {
	v := s.rng.LogNormalMeanCV(mean, s.host.OverheadCV)
	if s.rng.Float64() < s.host.TailWeight*tailBoost {
		v *= 3 + 5*s.rng.Float64()
	}
	return v
}

// Sample draws one overhead of the given type for op.
func (s *Sampler) Sample(typ int, op string) float64 {
	tail := 1.0
	if typ == T1 {
		tail = 1.6 // T1 has the heaviest tail (GC, allocator, Python)
	}
	return s.sample(s.MeanFor(typ, op)*s.workloadBias(typ, op), tail)
}

// SampleT4 draws one runtime-call duration for the named function.
func (s *Sampler) SampleT4(fn string) float64 {
	tail := 1.0
	if fn == RTMemcpyAsync {
		tail = 2.0
	}
	return s.sample(s.T4Mean(fn), tail)
}

// Profiler overhead reference constants (Section III-C): the values the
// paper's analyzer subtracts per event. The simulator injects stochastic
// overheads *around* these means, so subtraction leaves a small residual,
// as on real hardware.
const (
	ProfilerGPUEventOverhead = 4.0
	ProfilerCPUEventOverhead = 2.0
)

// SampleProfilerCPU draws the profiler cost added to each CPU op event.
func (s *Sampler) SampleProfilerCPU() float64 {
	return s.rng.LogNormalMeanCV(ProfilerCPUEventOverhead*s.host.OverheadScale, 0.25)
}

// SampleProfilerGPU draws the profiler cost added per GPU (kernel) event.
func (s *Sampler) SampleProfilerGPU() float64 {
	return s.rng.LogNormalMeanCV(ProfilerGPUEventOverhead*s.host.OverheadScale, 0.25)
}
