package xsync

import (
	"sync/atomic"
	"testing"
)

func TestForEachNCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 37
		hits := make([]int32, n)
		ForEachN(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachNBoundsConcurrency(t *testing.T) {
	const workers = 4
	var inFlight, peak int32
	ForEachN(64, workers, func(int) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt32(&inFlight, -1)
	})
	if peak > workers {
		t.Fatalf("observed %d concurrent invocations, bound is %d", peak, workers)
	}
}

func TestForEachNZero(t *testing.T) {
	called := false
	ForEachN(0, 8, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}
