// Package xsync holds the one bounded fan-out idiom the concurrent
// calibration and prediction layers share, so the pool logic is
// written (and audited) once.
package xsync

import "sync"

// ForEachN invokes fn(i) for every i in [0, n), with at most workers
// invocations in flight. workers <= 1 (or n <= 1) runs everything
// serially on the calling goroutine. fn must confine its writes to
// per-index state; ForEachN provides no other synchronization.
func ForEachN(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
