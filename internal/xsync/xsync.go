// Package xsync holds the small concurrency idioms the calibration,
// prediction, and serving layers share, so each is written (and
// audited) once.
package xsync

import (
	"sync"
	"sync/atomic"
)

// AtomicMax raises v to at least x.
func AtomicMax(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// ForEachN invokes fn(i) for every i in [0, n), with at most workers
// invocations in flight. workers <= 1 (or n <= 1) runs everything
// serially on the calling goroutine. fn must confine its writes to
// per-index state; ForEachN provides no other synchronization.
func ForEachN(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
