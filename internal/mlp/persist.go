package mlp

import (
	"encoding/json"
	"fmt"
)

// wireNet is the serialized form of a trained network.
type wireNet struct {
	Sizes    []int       `json:"sizes"`
	Weights  [][]float64 `json:"weights"`
	Biases   [][]float64 `json:"biases"`
	FeatMean []float64   `json:"feat_mean"`
	FeatStd  []float64   `json:"feat_std"`
}

// MarshalJSON serializes the trained network (architecture, weights, and
// input standardization), so calibrated performance models can live in a
// shared asset database.
func (n *Net) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireNet{
		Sizes:    n.sizes,
		Weights:  n.weights,
		Biases:   n.biases,
		FeatMean: n.featMean,
		FeatStd:  n.featStd,
	})
}

// UnmarshalJSON restores a network serialized by MarshalJSON.
func (n *Net) UnmarshalJSON(data []byte) error {
	var w wireNet
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Sizes) < 2 {
		return fmt.Errorf("mlp: serialized net has %d layer sizes", len(w.Sizes))
	}
	if len(w.Weights) != len(w.Sizes)-1 || len(w.Biases) != len(w.Sizes)-1 {
		return fmt.Errorf("mlp: layer count mismatch")
	}
	for l := 0; l+1 < len(w.Sizes); l++ {
		if len(w.Weights[l]) != w.Sizes[l]*w.Sizes[l+1] || len(w.Biases[l]) != w.Sizes[l+1] {
			return fmt.Errorf("mlp: layer %d shape mismatch", l)
		}
	}
	if len(w.FeatMean) != w.Sizes[0] || len(w.FeatStd) != w.Sizes[0] {
		return fmt.Errorf("mlp: standardization shape mismatch")
	}
	n.sizes = w.Sizes
	n.weights = w.Weights
	n.biases = w.Biases
	n.featMean = w.FeatMean
	n.featStd = w.FeatStd
	return nil
}
