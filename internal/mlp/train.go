package mlp

import (
	"fmt"
	"math"

	"dlrmperf/internal/xrand"
)

// Optimizer names.
const (
	Adam = "Adam"
	SGD  = "SGD"
)

// Config is one training configuration from the Table II search space.
type Config struct {
	// HiddenLayers is the number of hidden layers.
	HiddenLayers int
	// Width is the neuron count per hidden layer.
	Width int
	// Optimizer is Adam or SGD.
	Optimizer string
	// LR is the learning rate. Following the paper, SGD learning rates
	// are scaled by 10x relative to the listed values.
	LR float64
	// Epochs over the training set.
	Epochs int
	// BatchSize for minibatch training.
	BatchSize int
}

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("%dx%d %s lr=%g", c.HiddenLayers, c.Width, c.Optimizer, c.LR)
}

// DefaultConfig is the fast configuration used when a full grid search is
// not requested.
func DefaultConfig() Config {
	return Config{HiddenLayers: 3, Width: 96, Optimizer: Adam, LR: 2e-3, Epochs: 90, BatchSize: 64}
}

// Train fits a network to (X, Y) under cfg. Y values are the
// (log-transformed) regression targets.
func Train(X [][]float64, Y []float64, cfg Config, seed uint64) *Net {
	if len(X) == 0 || len(X) != len(Y) {
		panic("mlp: bad training set")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 40
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	rng := xrand.New(seed)
	sizes := []int{len(X[0])}
	for i := 0; i < cfg.HiddenLayers; i++ {
		sizes = append(sizes, cfg.Width)
	}
	sizes = append(sizes, 1)
	n := NewNet(sizes, rng)
	n.setStandardization(X)

	lr := cfg.LR
	if cfg.Optimizer == SGD {
		lr *= 10 // the paper scales SGD learning rates by 10
	}

	g := n.newGrads()
	acts := n.newActs()
	deltas := make([][]float64, len(n.sizes))
	for i, s := range n.sizes {
		deltas[i] = make([]float64, s)
	}

	// Adam state.
	var mW, vW, mB, vB [][]float64
	if cfg.Optimizer == Adam {
		for l := range n.weights {
			mW = append(mW, make([]float64, len(n.weights[l])))
			vW = append(vW, make([]float64, len(n.weights[l])))
			mB = append(mB, make([]float64, len(n.biases[l])))
			vB = append(vB, make([]float64, len(n.biases[l])))
		}
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	idx := rng.Perm(len(X))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			g.zero()
			for _, i := range idx[start:end] {
				n.forward(X[i], acts)
				n.backward(Y[i], acts, g, deltas)
			}
			scale := 1 / float64(end-start)
			step++
			// The Adam bias corrections depend only on the step, so they
			// are computed once here instead of twice per layer.
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			for l := range n.weights {
				applyUpdate(n.weights[l], g.w[l], scale, lr, cfg.Optimizer, mW, vW, l, bc1, bc2, beta1, beta2, eps)
				applyUpdate(n.biases[l], g.b[l], scale, lr, cfg.Optimizer, mB, vB, l, bc1, bc2, beta1, beta2, eps)
			}
		}
	}
	return n
}

func applyUpdate(params, grad []float64, scale, lr float64, opt string,
	m, v [][]float64, l int, bc1, bc2, beta1, beta2, eps float64) {
	if opt != Adam {
		grad = grad[:len(params)]
		for i := range params {
			params[i] -= lr * grad[i] * scale
		}
		return
	}
	ml, vl := m[l][:len(params)], v[l][:len(params)]
	grad = grad[:len(params)]
	for i := range params {
		gi := grad[i] * scale
		ml[i] = beta1*ml[i] + (1-beta1)*gi
		vl[i] = beta2*vl[i] + (1-beta2)*gi*gi
		params[i] -= lr * (ml[i] / bc1) / (math.Sqrt(vl[i]/bc2) + eps)
	}
}

// MSE returns the mean squared error of net on (X, Y).
func MSE(n *Net, X [][]float64, Y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	s := 0.0
	for i := range X {
		d := n.Predict(X[i]) - Y[i]
		s += d * d
	}
	return s / float64(len(X))
}

// SearchSpace is a hyperparameter grid (Table II).
type SearchSpace struct {
	HiddenLayers []int
	Widths       []int
	Optimizers   []string
	LRs          []float64
	Epochs       int
	BatchSize    int
}

// PaperSearchSpace returns the full Table II grid: layers 3-7, widths
// 128-1024, Adam/SGD, seven learning rates.
func PaperSearchSpace() SearchSpace {
	return SearchSpace{
		HiddenLayers: []int{3, 4, 5, 6, 7},
		Widths:       []int{128, 256, 512, 1024},
		Optimizers:   []string{Adam, SGD},
		LRs:          []float64{1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2},
		Epochs:       60,
		BatchSize:    64,
	}
}

// FastSearchSpace is the pruned grid used by tests and default
// calibration runs so that the pipeline stays fast; cmd/dlrmperf-train
// exposes the full grid behind a flag.
func FastSearchSpace() SearchSpace {
	return SearchSpace{
		HiddenLayers: []int{2, 3},
		Widths:       []int{48, 64},
		Optimizers:   []string{Adam},
		LRs:          []float64{2e-3, 5e-3},
		Epochs:       50,
		BatchSize:    64,
	}
}

// Configs enumerates the grid.
func (s SearchSpace) Configs() []Config {
	var out []Config
	for _, h := range s.HiddenLayers {
		for _, w := range s.Widths {
			for _, o := range s.Optimizers {
				for _, lr := range s.LRs {
					out = append(out, Config{
						HiddenLayers: h, Width: w, Optimizer: o, LR: lr,
						Epochs: s.Epochs, BatchSize: s.BatchSize,
					})
				}
			}
		}
	}
	return out
}

// GridSearch trains one network per configuration on the train split and
// returns the network with the lowest validation MSE, the winning
// configuration, and its validation error. The split is 80/20 by index
// permutation of seed.
func GridSearch(X [][]float64, Y []float64, space SearchSpace, seed uint64) (*Net, Config, float64) {
	rng := xrand.New(seed)
	perm := rng.Perm(len(X))
	cut := len(X) * 4 / 5
	if cut < 1 {
		cut = len(X)
	}
	trX := make([][]float64, 0, cut)
	trY := make([]float64, 0, cut)
	vaX := make([][]float64, 0, len(X)-cut)
	vaY := make([]float64, 0, len(X)-cut)
	for i, p := range perm {
		if i < cut {
			trX = append(trX, X[p])
			trY = append(trY, Y[p])
		} else {
			vaX = append(vaX, X[p])
			vaY = append(vaY, Y[p])
		}
	}
	if len(vaX) == 0 {
		vaX, vaY = trX, trY
	}

	var (
		best    *Net
		bestCfg Config
		bestErr = math.Inf(1)
	)
	for i, cfg := range space.Configs() {
		n := Train(trX, trY, cfg, seed+uint64(i)*7919)
		if err := MSE(n, vaX, vaY); err < bestErr {
			best, bestCfg, bestErr = n, cfg, err
		}
	}
	return best, bestCfg, bestErr
}
