package mlp

import (
	"encoding/json"
	"math"
	"testing"

	"dlrmperf/internal/xrand"
)

// synth generates a smooth nonlinear regression dataset resembling
// log-kernel-time surfaces: y = f(x) over inputs in [0, 12]^d.
func synth(n, d int, seed uint64) ([][]float64, []float64) {
	rng := xrand.New(seed)
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64() * 12
		}
		y := 0.3*x[0] + 0.1*x[0]*x[1%d]/4 + math.Sin(x[0]/2)
		X[i] = x
		Y[i] = y
	}
	return X, Y
}

func TestTrainFitsSmoothFunction(t *testing.T) {
	X, Y := synth(800, 3, 1)
	n := Train(X, Y, DefaultConfig(), 42)
	mse := MSE(n, X, Y)
	if mse > 0.02 {
		t.Fatalf("train MSE = %v, want < 0.02", mse)
	}
}

func TestTrainGeneralizes(t *testing.T) {
	X, Y := synth(1000, 3, 2)
	Xte, Yte := synth(200, 3, 99)
	n := Train(X, Y, DefaultConfig(), 42)
	mse := MSE(n, Xte, Yte)
	if mse > 0.05 {
		t.Fatalf("test MSE = %v, want < 0.05", mse)
	}
}

func TestSGDAlsoConverges(t *testing.T) {
	X, Y := synth(600, 2, 3)
	cfg := Config{HiddenLayers: 2, Width: 32, Optimizer: SGD, LR: 1e-3, Epochs: 80, BatchSize: 32}
	n := Train(X, Y, cfg, 7)
	if mse := MSE(n, X, Y); mse > 0.2 {
		t.Fatalf("SGD MSE = %v, want < 0.2", mse)
	}
}

func TestDeterministicTraining(t *testing.T) {
	X, Y := synth(200, 2, 4)
	cfg := Config{HiddenLayers: 2, Width: 16, Optimizer: Adam, LR: 1e-3, Epochs: 5, BatchSize: 32}
	a := Train(X, Y, cfg, 11)
	b := Train(X, Y, cfg, 11)
	for i := 0; i < 10; i++ {
		x := []float64{float64(i), float64(i) / 2}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed training is not deterministic")
		}
	}
}

func TestPredictPanicsOnWrongDim(t *testing.T) {
	X, Y := synth(100, 3, 5)
	n := Train(X, Y, Config{HiddenLayers: 1, Width: 8, Optimizer: Adam, LR: 1e-3, Epochs: 2}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input dim did not panic")
		}
	}()
	n.Predict([]float64{1})
}

func TestNumParams(t *testing.T) {
	n := NewNet([]int{4, 8, 1}, xrand.New(1))
	want := 4*8 + 8 + 8*1 + 1
	if n.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", n.NumParams(), want)
	}
}

func TestGridSearchPicksReasonableConfig(t *testing.T) {
	X, Y := synth(500, 2, 6)
	space := SearchSpace{
		HiddenLayers: []int{1, 2},
		Widths:       []int{8, 32},
		Optimizers:   []string{Adam},
		LRs:          []float64{1e-3, 5e-3},
		Epochs:       20,
		BatchSize:    32,
	}
	net, cfg, valErr := GridSearch(X, Y, space, 13)
	if net == nil {
		t.Fatal("grid search returned nil")
	}
	if valErr > 0.3 {
		t.Errorf("grid-search val MSE = %v", valErr)
	}
	if cfg.Width != 8 && cfg.Width != 32 {
		t.Errorf("config outside space: %+v", cfg)
	}
}

func TestPaperSearchSpaceSize(t *testing.T) {
	// Table II: 5 layer counts x 4 widths x 2 optimizers x 7 LRs = 280.
	if got := len(PaperSearchSpace().Configs()); got != 280 {
		t.Errorf("paper grid size = %d, want 280", got)
	}
}

func TestStandardizationGuardsConstantFeatures(t *testing.T) {
	// A constant feature must not produce NaNs via zero std.
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	Y := []float64{1, 2, 3, 4}
	n := Train(X, Y, Config{HiddenLayers: 1, Width: 8, Optimizer: Adam, LR: 1e-2, Epochs: 50, BatchSize: 2}, 3)
	got := n.Predict([]float64{2.5, 5})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("prediction is %v", got)
	}
}

func TestNetJSONRoundTrip(t *testing.T) {
	X, Y := synth(300, 3, 8)
	n := Train(X, Y, Config{HiddenLayers: 2, Width: 16, Optimizer: Adam, LR: 2e-3, Epochs: 10, BatchSize: 32}, 9)
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	var got Net
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 2, float64(i) / 3, float64(i) / 5}
		if got.Predict(x) != n.Predict(x) {
			t.Fatal("round trip changed predictions")
		}
	}
}

func TestNetUnmarshalRejectsBadShapes(t *testing.T) {
	var n Net
	if err := json.Unmarshal([]byte(`{"sizes":[2,1],"weights":[[1,2,3]],"biases":[[0]],"feat_mean":[0,0],"feat_std":[1,1]}`), &n); err == nil {
		t.Error("weight shape mismatch accepted")
	}
	if err := json.Unmarshal([]byte(`{"sizes":[2]}`), &n); err == nil {
		t.Error("single-layer net accepted")
	}
}
