// Package mlp is a small, dependency-free multilayer-perceptron library:
// dense layers with ReLU, MSE loss, SGD and Adam optimizers, minibatch
// training, and the hyperparameter grid search of Table II. It exists to
// train the paper's ML-based kernel performance models (GEMM, transpose,
// tril, conv) on microbenchmark data.
//
// Inputs are standardized internally (per-feature mean/std computed on
// the training set); callers provide already log-transformed features and
// targets, following Section III-B2's preprocessing.
package mlp

import (
	"fmt"
	"math"

	"dlrmperf/internal/xrand"
)

// Net is a trained feed-forward network with ReLU hidden activations and
// a linear scalar output.
type Net struct {
	// weights[l] is a flattened (out x in) matrix; biases[l] has length out.
	weights [][]float64
	biases  [][]float64
	sizes   []int
	// Feature standardization parameters.
	featMean, featStd []float64
}

// NewNet builds an untrained network with the given layer sizes
// (sizes[0] = input features, sizes[len-1] = 1 output), using He
// initialization from rng.
func NewNet(sizes []int, rng *xrand.Rand) *Net {
	if len(sizes) < 2 {
		panic("mlp: need at least input and output sizes")
	}
	n := &Net{sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		scale := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		n.weights = append(n.weights, w)
		n.biases = append(n.biases, make([]float64, out))
	}
	n.featMean = make([]float64, sizes[0])
	n.featStd = make([]float64, sizes[0])
	for i := range n.featStd {
		n.featStd[i] = 1
	}
	return n
}

// NumParams returns the trainable parameter count.
func (n *Net) NumParams() int {
	total := 0
	for l := range n.weights {
		total += len(n.weights[l]) + len(n.biases[l])
	}
	return total
}

// setStandardization computes per-feature mean/std over xs.
func (n *Net) setStandardization(xs [][]float64) {
	d := n.sizes[0]
	mean := make([]float64, d)
	for _, x := range xs {
		for i := 0; i < d; i++ {
			mean[i] += x[i]
		}
	}
	for i := range mean {
		mean[i] /= float64(len(xs))
	}
	std := make([]float64, d)
	for _, x := range xs {
		for i := 0; i < d; i++ {
			dd := x[i] - mean[i]
			std[i] += dd * dd
		}
	}
	for i := range std {
		std[i] = math.Sqrt(std[i] / float64(len(xs)))
		if std[i] < 1e-8 {
			std[i] = 1
		}
	}
	n.featMean, n.featStd = mean, std
}

// forward runs the network, storing activations into acts (one slice per
// layer, acts[0] = standardized input). Returns the scalar output.
func (n *Net) forward(x []float64, acts [][]float64) float64 {
	in := acts[0]
	for i := range in {
		in[i] = (x[i] - n.featMean[i]) / n.featStd[i]
	}
	for l := range n.weights {
		out := acts[l+1]
		w := n.weights[l]
		b := n.biases[l]
		nin := n.sizes[l]
		nout := n.sizes[l+1]
		src := acts[l]
		relu := l < len(n.weights)-1
		for o := 0; o < nout; o++ {
			s := dotAcc(b[o], w[o*nin:(o+1)*nin], src)
			if relu && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			out[o] = s
		}
	}
	return acts[len(acts)-1][0]
}

// dotAcc returns s plus the dot product of a and b, accumulating
// strictly left to right into a single accumulator: the 4-way unroll
// performs the exact addition sequence of the rolled loop, so results
// stay bit-identical to the historical code while the loop drops most
// of its bounds checks and branch overhead (this inner product is
// where calibration training spends its time).
func dotAcc(s float64, a, b []float64) float64 {
	a = a[:len(b)] // hoist the bounds check out of the loop
	i := 0
	for ; i+3 < len(b); i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < len(b); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Predict returns the network output for one input vector.
func (n *Net) Predict(x []float64) float64 {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("mlp: input dim %d, want %d", len(x), n.sizes[0]))
	}
	acts := n.newActs()
	return n.forward(x, acts)
}

func (n *Net) newActs() [][]float64 {
	acts := make([][]float64, len(n.sizes))
	for i, s := range n.sizes {
		acts[i] = make([]float64, s)
	}
	return acts
}

// grads mirrors the weight/bias shapes.
type grads struct {
	w [][]float64
	b [][]float64
}

func (n *Net) newGrads() *grads {
	g := &grads{}
	for l := range n.weights {
		g.w = append(g.w, make([]float64, len(n.weights[l])))
		g.b = append(g.b, make([]float64, len(n.biases[l])))
	}
	return g
}

func (g *grads) zero() {
	for l := range g.w {
		clear(g.w[l])
		clear(g.b[l])
	}
}

// backward accumulates gradients of 0.5*(out-y)^2 into g, given acts
// populated by forward. Returns the squared error.
func (n *Net) backward(y float64, acts [][]float64, g *grads, deltas [][]float64) float64 {
	L := len(n.weights)
	out := acts[L][0]
	diff := out - y

	// Output layer delta.
	deltas[L][0] = diff
	for l := L - 1; l >= 1; l-- {
		nout := n.sizes[l+1]
		nin := n.sizes[l]
		w := n.weights[l]
		d := deltas[l]
		dn := deltas[l+1]
		a := acts[l]
		for i := 0; i < nin; i++ {
			if a[i] <= 0 { // ReLU derivative
				d[i] = 0
				continue
			}
			// Column i of the (nout x nin) weight matrix, walked with an
			// incremented index instead of o*nin+i multiplies; the 4-way
			// unroll keeps the single left-to-right accumulator, so the
			// sum is bit-identical to the rolled loop.
			s := 0.0
			j := i
			o := 0
			for ; o+3 < nout; o += 4 {
				s += w[j] * dn[o]
				s += w[j+nin] * dn[o+1]
				s += w[j+2*nin] * dn[o+2]
				s += w[j+3*nin] * dn[o+3]
				j += 4 * nin
			}
			for ; o < nout; o++ {
				s += w[j] * dn[o]
				j += nin
			}
			d[i] = s
		}
	}
	for l := 0; l < L; l++ {
		nin := n.sizes[l]
		nout := n.sizes[l+1]
		src := acts[l]
		dn := deltas[l+1]
		gw := g.w[l]
		gb := g.b[l]
		for o := 0; o < nout; o++ {
			d := dn[o]
			if d == 0 {
				continue
			}
			axpy(d, src, gw[o*nin:(o+1)*nin])
			gb[o] += d
		}
	}
	return diff * diff
}

// axpy accumulates y[i] += alpha*x[i]. Each element updates
// independently — no cross-element accumulation — so the unroll cannot
// reassociate anything; it only removes bounds checks and loop
// overhead from the gradient accumulation, the second-hottest
// calibration loop.
func axpy(alpha float64, x, y []float64) {
	x = x[:len(y)] // hoist the bounds check out of the loop
	i := 0
	for ; i+3 < len(y); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(y); i++ {
		y[i] += alpha * x[i]
	}
}
