// Package deterministic is the seeded fixture for the deterministic
// analyzer: ambient nondeterminism sources carry want expectations;
// the collect-then-sort and map-write idioms must stay quiet.
package deterministic

import (
	"math/rand"
	"sort"
	"time"
)

// Fingerprint appends map keys in iteration order: nondeterministic
// output, flagged.
func Fingerprint(parts map[string]int) []string { // no sort anywhere in this function
	var out []string
	for k := range parts { // want `map iteration order feeds an appended slice`
		out = append(out, k)
	}
	return out
}

// CanonicalNames is the sanctioned collect-then-sort idiom: quiet.
func CanonicalNames(parts map[string]int) []string {
	var out []string
	for k := range parts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Counts writes into another map: order-independent, quiet.
func Counts(parts map[string]int) map[string]int {
	c := map[string]int{}
	for k, v := range parts {
		c[k] = v
	}
	return c
}

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in identity package`
}

// Jitter uses global math/rand: flagged.
func Jitter(n int) int {
	return rand.Intn(n) // want `math/rand in identity package`
}

// BootBanner shows the escape hatch: the allow directive on the line
// above suppresses the finding.
func BootBanner() int64 {
	//lint:allow deterministic boot-time banner only; never feeds a fingerprint
	return time.Now().Unix()
}
