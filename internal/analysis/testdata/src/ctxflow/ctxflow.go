// Package ctxflow is the seeded fixture for the ctxflow analyzer:
// minted contexts and dropped ctx parameters carry want expectations;
// threaded and explicitly-discarded contexts must stay quiet.
package ctxflow

import "context"

func fetch(ctx context.Context, url string) error {
	_ = ctx
	_ = url
	return nil
}

// Detached mints a root context in serving code: flagged.
func Detached(url string) error {
	return fetch(context.Background(), url) // want `context\.Background in ctxflow`
}

// Dropped receives ctx, never uses it, and calls a context-accepting
// function anyway: both the mint and the drop are flagged.
func Dropped(ctx context.Context, url string) error { // want `Dropped receives ctx but never propagates it`
	return fetch(context.TODO(), url) // want `context\.TODO in ctxflow`
}

// Threaded passes its ctx downstream: quiet.
func Threaded(ctx context.Context, url string) error {
	return fetch(ctx, url)
}

// DiscardedByName opts out with the blank identifier: quiet.
func DiscardedByName(_ context.Context, a, b int) int {
	return a + b
}

// ShutdownPush shows the escape hatch: detached by design, suppressed
// by the allow directive.
func ShutdownPush(url string) error {
	return fetch(context.Background(), url) //lint:allow ctxflow deliberately detached shutdown push
}
