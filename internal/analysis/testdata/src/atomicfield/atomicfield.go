// Package atomicfield is the seeded fixture for the atomicfield
// analyzer: a field touched via sync/atomic anywhere must be accessed
// atomically everywhere.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
}

// IncHits makes hits an atomic field for the whole package.
func (c *counters) IncHits() {
	atomic.AddInt64(&c.hits, 1)
}

// ReadHits reads hits without sync/atomic: a mixed-mode race, flagged.
func (c *counters) ReadHits() int64 {
	return c.hits // want `field hits is accessed via sync/atomic elsewhere`
}

// ReadHitsAtomic is the sanctioned access: quiet.
func (c *counters) ReadHitsAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

// IncTotal touches a field that is never atomic anywhere: quiet.
func (c *counters) IncTotal() {
	c.total++
}

// SnapshotHits shows the escape hatch: the allow directive suppresses
// the finding on the next line.
func (c *counters) SnapshotHits() int64 {
	//lint:allow atomicfield fixture demo: pretend a mutex guards this read
	return c.hits
}
