// Package hotpath is the seeded fixture for the hotpath analyzer:
// PredictHot and Server.admit are configured roots, coldCompile is a
// configured stop, and the bad patterns carry want expectations.
package hotpath

import "fmt"

// Server mirrors the serve-layer shape so a method root exercises the
// Type.Method config spelling.
type Server struct{}

// PredictHot is a configured root: everything it reaches is hot.
func PredictHot(id int, name string) string {
	if err := coldCompile(name); err != nil {
		return ""
	}
	const prefix = "k" + "/" // constant-folded concat is free: not flagged
	_ = prefix
	return buildKey(id, name)
}

// buildKey is reachable from PredictHot, so all three allocating
// idioms in it must be flagged.
func buildKey(id int, name string) string {
	s := fmt.Sprintf("k/%d", id) // want `fmt\.Sprintf in buildKey`
	s += name                    // want `string \+= in buildKey`
	s = s + grandfathered(name)  // want `string concatenation in buildKey`
	return s
}

// admit is a configured root via the "Server.admit" spelling.
func (s *Server) admit(req string) error {
	if req == "" {
		return fmt.Errorf("empty request") // want `fmt\.Errorf in Server\.admit`
	}
	return nil
}

// grandfathered shows the escape hatch: reachable from a root, but the
// allow directive suppresses the concat finding.
func grandfathered(id string) string {
	return "prefix/" + id //lint:allow hotpath grandfathered call site pending append-builder port
}

// coldCompile is a configured stop: fmt here is sanctioned cold-path
// error construction and must not be flagged.
func coldCompile(name string) error {
	if name == "" {
		return fmt.Errorf("compile %s: empty graph", name)
	}
	return nil
}

// orphan is unreachable from any root; nothing in it is flagged.
func orphan(a, b string) string {
	return fmt.Sprintf("%s-%s", a, b)
}
