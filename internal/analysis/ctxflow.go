package analysis

import (
	"go/ast"
	"go/types"
)

// ctxflowPackages are the layers where every request carries a
// deadline from admission to backend: serve's bounded queue, the
// cluster coordinator's forwarding/failover, explore sweeps, the
// typed client (every call takes the caller's ctx), and the load
// generator's dispatch path. Minting a fresh context here silently
// detaches work from the caller's deadline and from SIGTERM drain.
// The final entry is the analyzer's own test fixture.
var ctxflowPackages = []string{
	"dlrmperf/internal/serve",
	"dlrmperf/internal/cluster",
	"dlrmperf/internal/explore",
	"dlrmperf/internal/client",
	"dlrmperf/internal/loadgen",
	"ctxflow",
}

// Ctxflow bans context.Background/TODO outside main and tests in the
// serving layers, and requires a received ctx to actually flow into
// downstream context-accepting calls.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context must be propagated in serve/cluster/explore; Background/TODO banned outside main and tests",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // binaries mint the root context
	}
	if !pathInList(pass.Pkg.Path(), ctxflowPackages) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := pkgCall(pass.TypesInfo, call, "context"); ok && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s in %s detaches work from caller deadlines and drain; thread the caller's ctx instead",
				name, pass.Pkg.Name())
		}
		return true
	})
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxPropagation(pass, fd)
		}
	}
	return nil
}

// checkCtxPropagation flags functions that receive a context.Context
// parameter, never reference it, yet call at least one downstream
// function that accepts a context — the signature promises deadline
// propagation the body silently drops.
func checkCtxPropagation(pass *Pass, fd *ast.FuncDecl) {
	var ctxParam types.Object
	var ctxName string
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !isContextContext(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue // explicitly discarded: caller opted out
			}
			ctxParam = pass.TypesInfo.Defs[name]
			ctxName = name.Name
		}
	}
	if ctxParam == nil {
		return
	}

	used := false
	callsCtxAware := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if pass.TypesInfo.Uses[n] == ctxParam {
				used = true
			}
		case *ast.CallExpr:
			if !callsCtxAware && callAcceptsContext(pass.TypesInfo, n) {
				callsCtxAware = true
			}
		}
		return !used
	})
	if !used && callsCtxAware {
		pass.Reportf(fd.Name.Pos(),
			"%s receives %s but never propagates it, while calling context-accepting functions; pass %s downstream (or rename the parameter to _)",
			fd.Name.Name, ctxName, ctxName)
	}
}

// callAcceptsContext reports whether the call's static callee type has
// a context.Context parameter.
func callAcceptsContext(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
