package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// hotpathConfig lists, for one package, the steady-state entry points
// (roots) and the cold boundaries (stops) of the predict path. The
// analyzer builds the package's static call graph, walks it from the
// roots without crossing a stop, and forbids fmt calls and runtime
// string concatenation in every function it reaches. Key building in
// reached code must use the append-builder/pooled-buffer idiom
// (Request.appendKey, xrand.AppendHex16, keyBufPool) that holds
// PredictBatchCached at 4 allocs.
type hotpathConfig struct {
	roots []string // funcDisplayName spellings: "Fn" or "Type.Method"
	stops []string // reachable-but-cold functions the walk must not enter
}

// hotpathPackages maps package paths (suffix-matched, so fixture
// packages can reuse an entry name) to their hot-path roots.
var hotpathPackages = map[string]hotpathConfig{
	"dlrmperf/internal/engine": {
		roots: []string{
			// Steady-state prediction: cached single/batch entry, the
			// fast cache-hit probe, remote result install, compiled
			// plan execution, and the key builders themselves.
			"Engine.PredictCtx",
			"Engine.PredictBatchCtx",
			"Engine.predictFast",
			"Engine.RemoteResult",
			"CompiledPlan.execute",
			"Request.appendKey",
			"classStore.getBytes",
		},
		stops: []string{
			// Cold, once-per-scenario work reachable from PredictCtx:
			// plan compilation and the uncompiled ablation path may
			// use fmt.Errorf freely.
			"Engine.compile",
			"Engine.compileMulti",
			"Engine.predictUncompiled",
			"Engine.scenarioModel",
			"group.Do",
			"group.DoCtx",
		},
	},
	"dlrmperf/internal/serve": {
		roots: []string{
			// Admission and the 429 backpressure path: every request,
			// shed or served, runs through these.
			"Server.admit",
			"Server.serveOne",
			"Server.handlePredict",
			"Server.retryAfterSeconds",
			"RetryAfterSeconds",
			"resultFrom",
		},
		stops: []string{},
	},
	"dlrmperf/internal/cluster": {
		roots: []string{
			// Per-request coordinator steady state: the lease check on
			// every write, the adaptive Retry-After render on every
			// shed, the hint EWMA fold on every worker 429, and the
			// vault's hand-off decision probed on every routed request.
			"Lease.Leader",
			"Coordinator.retryAfter",
			"Coordinator.observeWorkerHint",
			"assetVault.needInstall",
			"backpressureHint",
		},
		stops: []string{},
	},
	"dlrmperf/internal/loadgen": {
		roots: []string{
			// Per-completion accounting: runs once for every dispatched
			// request while the open-loop clocks keep firing; an
			// allocation or fmt call here perturbs the very latencies
			// being measured.
			"collector.record",
		},
		stops: []string{},
	},
	"dlrmperf/internal/scenario": {
		roots: []string{
			// Fingerprint/key builders: run per request in the serve
			// path via engine key construction.
			"Spec.AppendFingerprint",
			"Spec.AppendCanonical",
			"AppendTablesKey",
			"appendLowerASCII",
		},
		stops: []string{},
	},
	// Fixture package for the analyzer's own tests.
	"hotpath": {
		roots: []string{"PredictHot", "Server.admit"},
		stops: []string{"coldCompile"},
	},
}

// Hotpath forbids fmt calls and runtime string concatenation in
// functions reachable from the configured steady-state predict roots.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "no fmt or +-concat key building in functions reachable from the steady-state predict path",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	var cfg hotpathConfig
	found := false
	for path, c := range hotpathPackages {
		if hasPathSuffix(pass.Pkg.Path(), path) {
			cfg, found = c, true
			break
		}
	}
	if !found {
		return nil
	}

	// Index this package's function declarations by object.
	decls := map[*types.Func]*ast.FuncDecl{}
	names := map[string]*types.Func{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			names[funcDisplayName(fn)] = fn
		}
	}

	stop := map[*types.Func]bool{}
	for _, s := range cfg.stops {
		if fn, ok := names[s]; ok {
			stop[fn] = true
		}
	}

	// BFS over same-package static call edges from the roots.
	reached := map[*types.Func]bool{}
	var queue []*types.Func
	for _, r := range cfg.roots {
		fn, ok := names[r]
		if !ok {
			continue // config may name functions a fixture omits
		}
		if !reached[fn] {
			reached[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if stop[callee] || reached[callee] {
				return true
			}
			if _, hasBody := decls[callee]; !hasBody {
				return true // interface method or declared elsewhere
			}
			reached[callee] = true
			queue = append(queue, callee)
			return true
		})
	}

	// Check every reached body, in deterministic order.
	var ordered []*types.Func
	for fn := range reached {
		if decls[fn] != nil {
			ordered = append(ordered, fn)
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		return decls[ordered[i]].Pos() < decls[ordered[j]].Pos()
	})
	for _, fn := range ordered {
		checkHotBody(pass, funcDisplayName(fn), decls[fn].Body)
	}
	return nil
}

// checkHotBody reports fmt calls and runtime string concatenation
// inside one hot function body.
func checkHotBody(pass *Pass, name string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fname, ok := pkgCall(pass.TypesInfo, n, "fmt"); ok {
				pass.Reportf(n.Pos(),
					"fmt.%s in %s, which is reachable from the steady-state predict path; build keys/messages with the append-builder idiom or strconv",
					fname, name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && pass.isRuntimeStringConcat(n) {
				pass.Reportf(n.Pos(),
					"string concatenation in %s, which is reachable from the steady-state predict path; use the pooled append-builder idiom",
					name)
				return false // one report per concat chain
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.TypesInfo.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(),
					"string += in %s, which is reachable from the steady-state predict path; use the pooled append-builder idiom",
					name)
			}
		}
		return true
	})
}

// isRuntimeStringConcat reports whether e is a string + that survives
// to runtime (constant-folded concatenation of literals is free).
func (p *Pass) isRuntimeStringConcat(e *ast.BinaryExpr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || !isStringType(tv.Type) {
		return false
	}
	return tv.Value == nil // non-constant result
}
