package analysis

import "testing"

func TestHotpathFixture(t *testing.T) {
	RunFixture(t, "hotpath", Hotpath)
}
