package analysis

import (
	"strings"
	"testing"
)

func TestCtxflowFixture(t *testing.T) {
	RunFixture(t, "ctxflow", Ctxflow)
}

// TestTreeIsClean runs the full suite over the real module, pinning
// "make lint passes" as a unit test: any new violation (or stale
// allow directive) fails here before CI.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list; skipped in -short")
	}
	pkgs, err := Load([]string{"dlrmperf/..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; loader lost the module", len(pkgs))
	}
	var msgs []string
	for _, pkg := range pkgs {
		findings, err := RunPackage(pkg, All())
		if err != nil {
			t.Fatalf("run %s: %v", pkg.Path, err)
		}
		for _, f := range findings {
			msgs = append(msgs, f.String())
		}
	}
	if len(msgs) > 0 {
		t.Errorf("invariant lint findings on the tree:\n%s", strings.Join(msgs, "\n"))
	}
}

// TestAllAnalyzersRegistered pins the suite roster: adding an analyzer
// without wiring it into All() (and thus the CLI) fails here.
func TestAllAnalyzersRegistered(t *testing.T) {
	want := map[string]bool{"hotpath": true, "atomicfield": true, "deterministic": true, "ctxflow": true}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in All()", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
