package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Atomicfield enforces all-or-nothing atomicity per struct field: if
// any code in the package passes &x.f to a sync/atomic function, then
// every other access to that field must also go through sync/atomic.
// Mixed plain/atomic access is exactly the class of race the PR-5
// stats-snapshot ordering fix removed by hand; the preferred cure is
// the typed atomic.Int64/Uint64 wrappers, which make non-atomic access
// inexpressible and keep this analyzer quiet.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field touched via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runAtomicfield,
}

// atomicOps are the sync/atomic function-name prefixes whose first
// argument is the address of the word being operated on.
var atomicOps = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func runAtomicfield(pass *Pass) error {
	// Pass 1: fields whose address is taken for a sync/atomic call,
	// and the exact selector nodes used in those sanctioned calls.
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := pkgCall(pass.TypesInfo, call, "sync/atomic")
		if !ok || !isAtomicOp(name) || len(call.Args) == 0 {
			return true
		}
		un, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(un.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if f := selectedField(pass.TypesInfo, sel); f != nil {
			atomicFields[f] = true
			sanctioned[sel] = true
		}
		return true
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other access to those fields is a mixed-mode race.
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		f := selectedField(pass.TypesInfo, sel)
		if f == nil || !atomicFields[f] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"field %s is accessed via sync/atomic elsewhere in this package; this plain access races with it (use sync/atomic here too, or the typed atomic.%s wrapper)",
			f.Name(), suggestedWrapper(f.Type()))
		return true
	})
	return nil
}

func isAtomicOp(name string) bool {
	for _, op := range atomicOps {
		if strings.HasPrefix(name, op) {
			return true
		}
	}
	return false
}

// selectedField resolves sel to the struct field it selects, if any.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// suggestedWrapper names the typed sync/atomic wrapper for t.
func suggestedWrapper(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	default:
		return "Value"
	}
}
