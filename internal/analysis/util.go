package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// pkgCall reports whether call is a direct selector call into the
// package with import path pkgPath (e.g. fmt.Sprintf, time.Now) and,
// if so, returns the selected name.
func pkgCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// calleeFunc resolves the *types.Func a call statically dispatches to,
// or nil for builtins, conversions, and indirect calls through
// function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcDisplayName renders a *types.Func the way analyzer configs spell
// it: "Name" for package functions, "Recv.Name" for methods with any
// pointer receiver stripped (e.g. "Engine.PredictCtx").
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return fn.Name()
	}
	return named.Obj().Name() + "." + fn.Name()
}

// isContextContext reports whether t is context.Context.
func isContextContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isStringType reports whether t's core type is a string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// hasPathSuffix matches an import path against a config entry: exact
// match, or the entry as a path-separated suffix. Fixture packages
// load under their bare directory name ("hotpath"), real packages
// under the module path ("dlrmperf/internal/engine"), and suffix
// matching lets one config entry cover both spellings.
func hasPathSuffix(path, entry string) bool {
	return path == entry || strings.HasSuffix(path, "/"+entry)
}

// pathInList reports whether path matches any config entry.
func pathInList(path string, entries []string) bool {
	for _, e := range entries {
		if hasPathSuffix(path, e) {
			return true
		}
	}
	return false
}
