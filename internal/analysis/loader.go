package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package ready for analysis.
// Only non-test GoFiles are loaded: the invariants under enforcement
// are production contracts, and test files are free to use fmt,
// time.Now, and context.Background.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load resolves patterns (e.g. "./...") to this module's packages and
// type-checks them from source. Imports — including the standard
// library — are satisfied from compiler export data discovered via
// `go list -export -deps`, so loading works offline from the build
// cache with no dependency on golang.org/x/tools.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-check %s:\n  %s", t.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", t.ImportPath, err)
	}
	return &Package{
		Path:  t.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
