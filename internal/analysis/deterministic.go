package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPackages are the fingerprint/identity packages: the
// bytes they produce (scenario fingerprints, engine cache keys,
// explore grid expansions and frontier reports) are cache identities
// and cross-process routing keys, so they must be pure functions of
// their inputs. Wall-clock time, global math/rand, and map iteration
// order are the three ambient nondeterminism sources this analyzer
// bans; injected clocks and internal/xrand streams are the sanctioned
// substitutes. The final entry is the analyzer's own test fixture.
var deterministicPackages = []string{
	"dlrmperf/internal/scenario",
	"dlrmperf/internal/engine",
	"dlrmperf/internal/explore",
	"deterministic",
}

// Deterministic forbids ambient nondeterminism in identity packages.
var Deterministic = &Analyzer{
	Name: "deterministic",
	Doc:  "no time.Now, global math/rand, or map-iteration-ordered output in fingerprint/identity packages",
	Run:  runDeterministic,
}

func runDeterministic(pass *Pass) error {
	if !pathInList(pass.Pkg.Path(), deterministicPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeterministicFunc(pass, fd)
		}
	}
	return nil
}

func checkDeterministicFunc(pass *Pass, fd *ast.FuncDecl) {
	sorts := functionSorts(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := pkgCall(pass.TypesInfo, n, "time"); ok && name == "Now" {
				pass.Reportf(n.Pos(),
					"time.Now in identity package %s; inject a clock (or derive from inputs) so fingerprints and keys stay deterministic",
					pass.Pkg.Name())
			}
		case *ast.SelectorExpr:
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
					p := pn.Imported().Path()
					if p == "math/rand" || p == "math/rand/v2" {
						pass.Reportf(n.Pos(),
							"math/rand in identity package %s; use a seeded internal/xrand stream instead",
							pass.Pkg.Name())
					}
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, n, sorts)
		}
		return true
	})
}

// functionSorts reports whether fd calls into package sort, or a
// slices.Sort* function, anywhere in its body. A map range whose
// collected output is later sorted is the sanctioned
// collect-then-sort idiom.
func functionSorts(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := pkgCall(pass.TypesInfo, call, "sort"); ok {
			found = true
		}
		if name, ok := pkgCall(pass.TypesInfo, call, "slices"); ok && strings.HasPrefix(name, "Sort") {
			found = true
		}
		return !found
	})
	return found
}

// checkMapRange flags ranges over maps whose bodies append the
// iteration key or value to a slice without a sort in the enclosing
// function: that slice's order is randomized per run, so any output
// derived from it (fingerprints, canonical listings, reports) is
// nondeterministic. Writes into other maps, counters, and
// collect-then-sort all pass.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, sorts bool) {
	if sorts {
		return
	}
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	iterVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				iterVars[obj] = true
			}
		}
	}
	if len(iterVars) == 0 {
		return
	}
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || id.Name != "append" {
			return true
		}
		for _, arg := range call.Args[1:] {
			if exprUsesAny(pass.TypesInfo, arg, iterVars) {
				reported = true
				pass.Reportf(rng.Pos(),
					"map iteration order feeds an appended slice in identity package %s; collect keys and sort (or sort the result) to keep output deterministic",
					pass.Pkg.Name())
				return false
			}
		}
		return true
	})
}

// exprUsesAny reports whether e references any of the given objects.
func exprUsesAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}
