package analysis

import "testing"

func TestDeterministicFixture(t *testing.T) {
	RunFixture(t, "deterministic", Deterministic)
}
