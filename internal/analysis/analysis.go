// Package analysis is the repository's invariant lint suite: a small
// go/ast + go/types analyzer framework (stdlib-only — the build
// environment has no network, so golang.org/x/tools/go/analysis is
// deliberately not a dependency) plus the four analyzers that
// mechanically enforce the load-bearing conventions the ROADMAP
// "Architecture anchors" section used to state only in prose:
//
//   - hotpath:       no fmt / string-concat key building inside
//     functions reachable from the steady-state predict path (the
//     append-builder/pooled-buffer idiom is the only sanctioned one).
//   - atomicfield:   a struct field touched through sync/atomic
//     anywhere must be accessed atomically everywhere.
//   - deterministic: no time.Now, no global math/rand, and no
//     map-iteration-ordered output in the fingerprint/identity
//     packages.
//   - ctxflow:       context.Background/TODO banned outside main and
//     tests in the serving layers, and a received ctx must actually be
//     propagated downstream.
//
// The suite runs as `dlrmperf-lint ./...` (cmd/dlrmperf-lint, wired
// into `make lint` and CI). The escape hatch is a line comment
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above it; the reason is required
// by convention and review, not by the machine.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identity: the tag reported with findings
	// and the token accepted by //lint:allow.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run reports findings on one package via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one raw finding before allow-comment suppression.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Inspect walks every file of the pass with ast.Inspect.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Hotpath, Atomicfield, Deterministic, Ctxflow}
}

// Finding is one suppressed-and-positioned finding, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// allowDirective is the escape-hatch comment prefix. The full form is
// "//lint:allow <analyzer> <reason>"; it suppresses the named
// analyzer's findings on its own line and the line directly below it
// (so it can sit on the offending line or immediately above).
const allowDirective = "lint:allow"

// allowSet maps file -> line -> analyzer names allowed on that line.
type allowSet map[string]map[int]map[string]bool

// collectAllows scans every comment of the files for allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	out := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowDirective))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					out[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = map[string]bool{}
					byLine[pos.Line] = names
				}
				names[fields[0]] = true
			}
		}
	}
	return out
}

// allowed reports whether a finding by analyzer at pos is suppressed:
// an allow directive for it sits on the same line or the line above.
func (a allowSet) allowed(analyzer string, pos token.Position) bool {
	byLine := a[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][analyzer] || byLine[pos.Line-1][analyzer]
}

// RunPackage runs the analyzers over one loaded package, applies
// allow-comment suppression, and returns position-sorted findings.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	allows := collectAllows(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			pos := pkg.Fset.Position(d.Pos)
			if allows.allowed(a.Name, pos) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
