package analysis

import "testing"

func TestAtomicfieldFixture(t *testing.T) {
	RunFixture(t, "atomicfield", Atomicfield)
}
