package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// This file is the repository's stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture
// package from testdata/src/<name>, runs one analyzer (with the
// //lint:allow suppression applied, so fixtures exercise the escape
// hatch too), and asserts the findings against // want comments:
//
//	s := fmt.Sprintf("k/%d", id) // want `fmt\.Sprintf in buildKey`
//
// Each want regex must be matched by a finding on its line, and each
// finding must be expected by a want on its line.

// RunFixture runs analyzer a over testdata/src/<name> and checks its
// findings against the fixture's want comments.
func RunFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	// Fixtures import only the standard library, so the source
	// importer resolves everything offline from GOROOT.
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", name, err)
	}

	pkg := &Package{Path: name, Fset: fset, Files: files, Types: tpkg, Info: info}
	findings, err := RunPackage(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	for _, f := range findings {
		if !wants.match(f) {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding at %s:%d matching %q", filepath.Base(w.file), w.line, w.re.String())
		}
	}
}

type wantExp struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet []*wantExp

func (ws wantSet) match(f Finding) bool {
	ok := false
	for _, w := range ws {
		if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
			w.matched = true
			ok = true
		}
	}
	return ok
}

// wantPatternRe extracts backtick- or double-quoted regexes from the
// remainder of a want comment.
var wantPatternRe = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) wantSet {
	t.Helper()
	var ws wantSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantPatternRe.FindAllStringSubmatch(strings.TrimPrefix(text, "want "), -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					ws = append(ws, &wantExp{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return ws
}
