package predict

import (
	"testing"

	"dlrmperf/internal/graph"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/models"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
)

// TestCommModelEdgeCases pins the alpha-beta collective model at its
// boundaries: no communication on one device, the n=2 algorithmic
// factors, and pure-latency zero-byte collectives.
func TestCommModelEdgeCases(t *testing.T) {
	c := CommModel{Alpha: 10, BusBW: 1000}
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"allreduce n=1 is free", c.AllReduce(1<<20, 1), 0},
		{"alltoall n=1 is free", c.AllToAll(1<<20, 1), 0},
		{"allreduce n=0 is free", c.AllReduce(1<<20, 0), 0},
		// A ring over n devices takes 2*(n-1) all-reduce steps and n-1
		// all-to-all steps, each paying the launch latency alpha.
		{"allreduce zero bytes pays per-step latency", c.AllReduce(0, 4), 6 * c.Alpha},
		{"alltoall zero bytes pays per-step latency", c.AllToAll(0, 4), 3 * c.Alpha},
		// Ring all-reduce moves 2*(n-1)/n of the payload: n=2 -> factor 1,
		// over 2 steps.
		{"allreduce n=2 factor", c.AllReduce(1000, 2), 2*c.Alpha + 1000.0/c.BusBW},
		// All-to-all keeps (n-1)/n off-device: n=2 -> factor 1/2, 1 step.
		{"alltoall n=2 factor", c.AllToAll(1000, 2), c.Alpha + 500.0/c.BusBW},
		// n=4: factors 2*3/4 and 3/4, over 6 and 3 steps.
		{"allreduce n=4 factor", c.AllReduce(1000, 4), 6*c.Alpha + 1500.0/c.BusBW},
		{"alltoall n=4 factor", c.AllToAll(1000, 4), 3*c.Alpha + 750.0/c.BusBW},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestCommByName(t *testing.T) {
	for name, want := range map[string]CommModel{
		"":       NVLinkCommModel(),
		"nvlink": NVLinkCommModel(),
		"NVLink": NVLinkCommModel(),
		"pcie":   PCIeCommModel(),
	} {
		got, err := CommByName(name)
		if err != nil || got != want {
			t.Errorf("CommByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := CommByName("carrier-pigeon"); err == nil {
		t.Error("unknown comm model accepted")
	}
}

// flatModel prices every kernel at a constant time, which is all the
// multi-GPU composition logic needs from the kernel-model layer.
type flatModel float64

func (f flatModel) Name() string                     { return "flat" }
func (f flatModel) Predict(k kernels.Kernel) float64 { return float64(f) }

// flatPredictor builds a Predictor whose kernels all take `us`
// microseconds and whose overheads are the database defaults.
func flatPredictor(us float64) *Predictor {
	reg := perfmodel.NewRegistry("test")
	for _, kind := range kernels.Kinds() {
		reg.Register(kind, flatModel(us))
	}
	return New(reg, &overhead.DB{})
}

func builtGraph(t *testing.T, name string, batch int64) *graph.Graph {
	t.Helper()
	m, err := models.Build(name, batch)
	if err != nil {
		t.Fatal(err)
	}
	return m.Graph
}

func dlrmGraph(t *testing.T, batch int64) *graph.Graph {
	return builtGraph(t, models.NameDLRMDefault, batch)
}

// TestPredictDataParallelInvariants: for a fixed per-device graph and
// fixed payloads, scaling efficiency lies in (0, 1] and never improves
// as the device count grows — more devices mean strictly more
// communication against the same compute.
func TestPredictDataParallelInvariants(t *testing.T) {
	p := flatPredictor(5)
	g := dlrmGraph(t, 512)
	const denseParams, embActBytes = 2_000_000, 4 << 20

	prev := 2.0
	var singleE2E float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		mp, err := p.PredictDataParallel(g, n, denseParams, embActBytes, NVLinkCommModel())
		if err != nil {
			t.Fatal(err)
		}
		if mp.Devices != n {
			t.Errorf("n=%d: Devices = %d", n, mp.Devices)
		}
		se := mp.ScalingEfficiency
		if se <= 0 || se > 1 {
			t.Errorf("n=%d: scaling efficiency %v outside (0,1]", n, se)
		}
		if se > prev {
			t.Errorf("n=%d: efficiency %v above n-smaller value %v (not monotone)", n, se, prev)
		}
		prev = se
		if n == 1 {
			singleE2E = mp.E2E
			if se != 1 {
				t.Errorf("n=1: efficiency = %v, want exactly 1", se)
			}
			if mp.AllReduceUs != 0 || mp.AllToAllUs != 0 {
				t.Errorf("n=1 priced collectives: %+v", mp)
			}
		} else {
			if mp.E2E <= singleE2E {
				t.Errorf("n=%d: E2E %v not above single-device %v", n, mp.E2E, singleE2E)
			}
			if mp.E2E != singleE2E+mp.AllReduceUs+mp.AllToAllUs {
				t.Errorf("n=%d: E2E %v != compute %v + collectives %v + %v",
					n, mp.E2E, singleE2E, mp.AllReduceUs, mp.AllToAllUs)
			}
		}
	}

	if _, err := p.PredictDataParallel(g, 0, denseParams, embActBytes, NVLinkCommModel()); err == nil {
		t.Error("device count 0 accepted")
	}
}

// TestPredictShardedBottleneck: the sharded path takes the slowest
// device's compute as the makespan and adds the collectives once. A
// flat kernel model prices graphs by op/kernel count, so the 26-table
// DLRM_MLPerf shard is the bottleneck next to the 8-table default.
func TestPredictShardedBottleneck(t *testing.T) {
	p := flatPredictor(5)
	small := dlrmGraph(t, 512)
	big := builtGraph(t, models.NameDLRMMLPerf, 512)

	single, err := p.Predict(big)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := p.PredictSharded([]*graph.Graph{small, big}, 2_000_000, 4<<20, NVLinkCommModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.PerDeviceE2E) != 2 {
		t.Fatalf("per-device breakdown = %v", mp.PerDeviceE2E)
	}
	if mp.PerDeviceE2E[1] <= mp.PerDeviceE2E[0] {
		t.Fatalf("bigger shard not slower: %v", mp.PerDeviceE2E)
	}
	wantE2E := single.E2E + mp.AllReduceUs + mp.AllToAllUs
	if mp.E2E != wantE2E {
		t.Errorf("E2E = %v, want bottleneck %v + collectives = %v", mp.E2E, single.E2E, wantE2E)
	}
	if se := mp.ScalingEfficiency; se <= 0 || se >= 1 {
		t.Errorf("scaling efficiency = %v, want in (0,1)", se)
	}

	// One graph degenerates to a plain single-device prediction.
	one, err := p.PredictSharded([]*graph.Graph{big}, 2_000_000, 4<<20, NVLinkCommModel())
	if err != nil {
		t.Fatal(err)
	}
	if one.E2E != single.E2E || one.ScalingEfficiency != 1 {
		t.Errorf("single-graph sharded prediction = %+v, want plain %v", one, single.E2E)
	}
	if _, err := p.PredictSharded(nil, 1, 1, NVLinkCommModel()); err == nil {
		t.Error("empty graph list accepted")
	}
}

// TestZeroPayloadCollectivesNotLaunched: a pure data-parallel workload
// with no embedding exchange must not be charged the all-to-all's
// launch latency — a collective that never runs costs nothing.
func TestZeroPayloadCollectivesNotLaunched(t *testing.T) {
	p := flatPredictor(5)
	g := builtGraph(t, models.NameResNet50, 16)
	mp, err := p.PredictSharded([]*graph.Graph{g, g}, 25_000_000, 0, NVLinkCommModel())
	if err != nil {
		t.Fatal(err)
	}
	if mp.AllToAllUs != 0 {
		t.Errorf("phantom all-to-all charged: %v", mp.AllToAllUs)
	}
	if mp.AllReduceUs <= 0 {
		t.Errorf("dense all-reduce missing: %v", mp.AllReduceUs)
	}
	dp, err := p.PredictDataParallel(g, 2, 0, 0, NVLinkCommModel())
	if err != nil {
		t.Fatal(err)
	}
	if dp.AllReduceUs != 0 || dp.AllToAllUs != 0 || dp.ScalingEfficiency != 1 {
		t.Errorf("zero payloads priced: %+v", dp)
	}
}
