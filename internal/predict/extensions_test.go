package predict

import (
	"encoding/json"
	"strings"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/sim"
)

func TestEstimateMemoryComponents(t *testing.T) {
	m, err := models.Build(models.NameDLRMDefault, 2048)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateMemory(m.Graph, m.Params, "sgd")
	if est.Parameters != m.Params*4 {
		t.Errorf("params bytes = %d", est.Parameters)
	}
	if est.Gradients != est.Parameters {
		t.Error("gradient bytes should mirror parameters")
	}
	if est.OptimizerState != 0 {
		t.Error("SGD has no optimizer state")
	}
	// 8 tables x 1M rows x 64 floats.
	wantEmb := int64(8) * 1_000_000 * 64 * 4
	if est.EmbeddingTables != wantEmb {
		t.Errorf("embedding bytes = %d, want %d", est.EmbeddingTables, wantEmb)
	}
	if est.Activations <= 0 || est.Total <= est.EmbeddingTables {
		t.Errorf("estimate incomplete: %+v", est)
	}
}

func TestEstimateMemoryScalesWithBatch(t *testing.T) {
	m, err := models.Build(models.NameDLRMDDP, 512)
	if err != nil {
		t.Fatal(err)
	}
	small := EstimateMemory(m.Graph, m.Params, "adam")
	if err := m.ResizeBatch(4096); err != nil {
		t.Fatal(err)
	}
	big := EstimateMemory(m.Graph, m.Params, "adam")
	// Activations scale ~linearly with batch; weights don't.
	if big.Activations < small.Activations*6 {
		t.Errorf("activations did not scale: %d -> %d", small.Activations, big.Activations)
	}
	if big.Parameters != small.Parameters || big.EmbeddingTables != small.EmbeddingTables {
		t.Error("weight memory should not depend on batch")
	}
	if big.OptimizerState != 2*big.Parameters {
		t.Error("adam state should be 2x parameters")
	}
}

func TestFitsInMemory(t *testing.T) {
	est := MemoryEstimate{Total: 10 << 30}
	if est.FitsInMemory(16<<30, 0.1) != true {
		t.Error("10GB should fit a 16GB device with 10% headroom")
	}
	if est.FitsInMemory(10<<30, 0.1) != false {
		t.Error("10GB must not fit 9GB usable")
	}
}

func TestChromeTraceExport(t *testing.T) {
	m, err := models.Build(models.NameDLRMDefault, 512)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.Run(m.Graph, sim.Config{Platform: hw.V100Platform(), Seed: 1, Warmup: 1, Iters: 2})
	data, err := r.Trace.ToChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) != len(r.Trace.Events) {
		t.Fatalf("chrome events = %d, trace events = %d", len(parsed.TraceEvents), len(r.Trace.Events))
	}
	s := string(data)
	for _, want := range []string{`"cat": "op"`, `"cat": "kernel"`, `"cat": "cuda_runtime"`, `"ph": "X"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

func TestCommModelScaling(t *testing.T) {
	c := NVLinkCommModel()
	if c.AllReduce(1<<20, 1) != 0 || c.AllToAll(1<<20, 1) != 0 {
		t.Error("single device needs no communication")
	}
	// The ring all-reduce factor 2(n-1)/n grows with n and saturates at 2.
	t2 := c.AllReduce(100<<20, 2)
	t8 := c.AllReduce(100<<20, 8)
	if t8 <= t2 {
		t.Error("all-reduce should cost more across more devices")
	}
	if t8 > 2*t2 {
		t.Error("ring all-reduce saturates below 2x the 2-device cost")
	}
	// All-to-all of the same bytes is cheaper than all-reduce.
	if c.AllToAll(100<<20, 8) >= t8 {
		t.Error("all-to-all factor should be below all-reduce's")
	}
}

func TestPredictDataParallel(t *testing.T) {
	pred, m, _ := assets(t, models.NameDLRMDefault, 2048)
	embActBytes := int64(2048) * 8 * 64 * 4 // B*T*D*4

	single, err := pred.PredictDataParallel(m.Graph, 1, m.Params, embActBytes, NVLinkCommModel())
	if err != nil {
		t.Fatal(err)
	}
	if single.AllReduceUs != 0 || single.ScalingEfficiency != 1 {
		t.Errorf("single-device prediction has comm: %+v", single)
	}

	multi, err := pred.PredictDataParallel(m.Graph, 8, m.Params, embActBytes, NVLinkCommModel())
	if err != nil {
		t.Fatal(err)
	}
	if multi.E2E <= single.E2E {
		t.Error("8-device step must pay communication on top of compute")
	}
	if multi.ScalingEfficiency >= 1 || multi.ScalingEfficiency < 0.3 {
		t.Errorf("scaling efficiency = %v, implausible", multi.ScalingEfficiency)
	}
	// Slower interconnect, lower efficiency.
	pcie, err := pred.PredictDataParallel(m.Graph, 8, m.Params, embActBytes, PCIeCommModel())
	if err != nil {
		t.Fatal(err)
	}
	if pcie.ScalingEfficiency >= multi.ScalingEfficiency {
		t.Error("PCIe should scale worse than NVLink")
	}
	if _, err := pred.PredictDataParallel(m.Graph, 0, m.Params, embActBytes, NVLinkCommModel()); err == nil {
		t.Error("zero devices accepted")
	}
}
