// Package predict implements the paper's end-to-end GPU training
// performance model: Algorithm 1, the critical-path traversal of the
// execution graph that integrates per-kernel time predictions with the
// five host-overhead types to produce the per-batch training time,
// including the device idle time that "sum of kernel times" methods miss.
package predict

import (
	"fmt"

	"dlrmperf/internal/graph"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
)

// Predictor bundles the calibrated kernel models and an overhead
// database — the two assets of Fig. 3's prediction track.
type Predictor struct {
	Models    *perfmodel.Registry
	Overheads *overhead.DB
	// UseMeasuredT4 charges the database's measured per-runtime-function
	// means instead of the paper's 10 µs constant (the T4 ablation).
	UseMeasuredT4 bool
}

// New returns a Predictor.
func New(models *perfmodel.Registry, ov *overhead.DB) *Predictor {
	return &Predictor{Models: models, Overheads: ov}
}

// t4For returns the runtime-call charge for a kernel.
func (p *Predictor) t4For(k kernels.Kernel) float64 {
	if !p.UseMeasuredT4 {
		return overhead.T4Approx
	}
	fn := "cudaLaunchKernel"
	switch k.Kind() {
	case kernels.KindMemcpyH2D, kernels.KindMemcpyD2H, kernels.KindMemcpyD2D:
		fn = "cudaMemcpyAsync"
	}
	if st, ok := p.Overheads.T4[fn]; ok && st.N > 0 {
		return st.Mean
	}
	return overhead.T4Approx
}

// OpTime is the per-op prediction detail.
type OpTime struct {
	Op string
	// Kernel is the summed predicted kernel time of the op.
	Kernel float64
	// Host is the op's charged host overhead (T1+T2+T3+T4s+T5s).
	Host float64
}

// Prediction is the result of one E2E prediction.
type Prediction struct {
	// E2E is Algorithm 1's per-batch training time in µs.
	E2E float64
	// Active is the predicted GPU active time (sum of predicted kernel
	// times) — the "kernel only" baseline when used as an E2E estimate.
	Active float64
	// CPUTime is the accumulated host time of the traversal.
	CPUTime float64
	// PerOp holds the per-op breakdown in execution order.
	PerOp []OpTime
}

// scheduleGranularity is Algorithm 1's "+1" term: the device cannot start
// a queued kernel sooner than 1 µs after the previous one finishes.
const scheduleGranularity = 1.0

// Predict runs Algorithm 1 over the execution graph.
func (p *Predictor) Predict(g *graph.Graph) (Prediction, error) {
	var pr Prediction
	cpu, gpu := 0.0, 0.0
	for _, node := range g.Nodes {
		op := node.Op.Name()
		t1 := p.Overheads.T1Mean()
		t2 := p.Overheads.T2Mean(op)
		t3 := p.Overheads.T3Mean(op)
		t5 := p.Overheads.T5Mean(op)

		cpu += t1
		hostCharged := t1
		kernelSum := 0.0

		ks := g.NodeKernels(node)
		if len(ks) > 0 {
			cpu += t2
			hostCharged += t2
			for i, k := range ks {
				t4 := p.t4For(k)
				tk, err := p.Models.Predict(k)
				if err != nil {
					return Prediction{}, fmt.Errorf("predict: op %s: %w", op, err)
				}
				// gpu_time = max(gpu_time + 1, cpu_time + T4/2) + Tk
				start := gpu + scheduleGranularity
				if s := cpu + t4/2; s > start {
					start = s
				}
				gpu = start + tk
				kernelSum += tk
				cpu += t4
				hostCharged += t4
				if i < len(ks)-1 {
					cpu += t5
					hostCharged += t5
				}
			}
			cpu += t3
			hostCharged += t3
		} else {
			cpu += t5
			hostCharged += t5
		}
		pr.Active += kernelSum
		pr.PerOp = append(pr.PerOp, OpTime{Op: op, Kernel: kernelSum, Host: hostCharged})
	}
	pr.CPUTime = cpu
	pr.E2E = cpu
	if gpu > pr.E2E {
		pr.E2E = gpu
	}
	return pr, nil
}

// KernelOnly returns the sum of predicted kernel times — the baseline
// that previous CNN-focused work uses as the E2E estimate and that Fig. 9
// shows failing at low GPU utilization.
func (p *Predictor) KernelOnly(g *graph.Graph) (float64, error) {
	total := 0.0
	for _, node := range g.Nodes {
		for _, k := range g.NodeKernels(node) {
			tk, err := p.Models.Predict(k)
			if err != nil {
				return 0, err
			}
			total += tk
		}
	}
	return total, nil
}

// PredictStreams extends Algorithm 1 to multi-stream execution graphs
// (the parallelization what-if of Section V-A): per-stream GPU clocks,
// with cross-stream data dependencies enforced via the producing node's
// device completion time.
func (p *Predictor) PredictStreams(g *graph.Graph) (Prediction, error) {
	var pr Prediction
	cpu := 0.0
	gpuOf := map[int]float64{}
	nodeDone := map[graph.NodeID]float64{}
	for _, node := range g.Nodes {
		op := node.Op.Name()
		t1 := p.Overheads.T1Mean()
		t2 := p.Overheads.T2Mean(op)
		t3 := p.Overheads.T3Mean(op)
		t5 := p.Overheads.T5Mean(op)

		cpu += t1
		hostCharged := t1
		kernelSum := 0.0

		depReady := 0.0
		for _, d := range g.Deps(node) {
			if r := nodeDone[d]; r > depReady {
				depReady = r
			}
		}

		ks := g.NodeKernels(node)
		if len(ks) > 0 {
			cpu += t2
			hostCharged += t2
			gpu := gpuOf[node.Stream]
			last := depReady
			for i, k := range ks {
				t4 := p.t4For(k)
				tk, err := p.Models.Predict(k)
				if err != nil {
					return Prediction{}, fmt.Errorf("predict: op %s: %w", op, err)
				}
				start := gpu + scheduleGranularity
				if s := cpu + t4/2; s > start {
					start = s
				}
				if depReady > start {
					start = depReady
				}
				gpu = start + tk
				kernelSum += tk
				cpu += t4
				hostCharged += t4
				if i < len(ks)-1 {
					cpu += t5
					hostCharged += t5
				}
			}
			gpuOf[node.Stream] = gpu
			if gpu > last {
				last = gpu
			}
			nodeDone[node.ID] = last
			cpu += t3
			hostCharged += t3
		} else {
			cpu += t5
			hostCharged += t5
			nodeDone[node.ID] = depReady
		}
		pr.Active += kernelSum
		pr.PerOp = append(pr.PerOp, OpTime{Op: op, Kernel: kernelSum, Host: hostCharged})
	}
	pr.CPUTime = cpu
	pr.E2E = cpu
	for _, gpu := range gpuOf {
		if gpu > pr.E2E {
			pr.E2E = gpu
		}
	}
	return pr, nil
}

// PredictDecoded runs Algorithm 1 over a decoded (serialized) execution
// graph — the form exchanged between the observer and the predictor in a
// large-scale prediction service.
func (p *Predictor) PredictDecoded(nodes []graph.DecodedNode) (Prediction, error) {
	var pr Prediction
	cpu, gpu := 0.0, 0.0
	for _, node := range nodes {
		op := node.Name
		cpu += p.Overheads.T1Mean()
		if len(node.Kernels) > 0 {
			cpu += p.Overheads.T2Mean(op)
			for i, k := range node.Kernels {
				tk, err := p.Models.Predict(k)
				if err != nil {
					return Prediction{}, err
				}
				start := gpu + scheduleGranularity
				if s := cpu + overhead.T4Approx/2; s > start {
					start = s
				}
				gpu = start + tk
				pr.Active += tk
				cpu += overhead.T4Approx
				if i < len(node.Kernels)-1 {
					cpu += p.Overheads.T5Mean(op)
				}
			}
			cpu += p.Overheads.T3Mean(op)
		} else {
			cpu += p.Overheads.T5Mean(op)
		}
	}
	pr.CPUTime = cpu
	pr.E2E = cpu
	if gpu > pr.E2E {
		pr.E2E = gpu
	}
	return pr, nil
}

// KernelCensus aggregates predicted kernel time by kernel kind — handy
// for bottleneck analysis in the co-design workflows.
func (p *Predictor) KernelCensus(g *graph.Graph) (map[kernels.Kind]float64, error) {
	out := map[kernels.Kind]float64{}
	for _, node := range g.Nodes {
		for _, k := range g.NodeKernels(node) {
			tk, err := p.Models.Predict(k)
			if err != nil {
				return nil, err
			}
			out[k.Kind()] += tk
		}
	}
	return out, nil
}
