package predict

import (
	"dlrmperf/internal/graph"
	"dlrmperf/internal/kernels"
)

// MemoryEstimate answers the paper's first what-if question — "how does
// changing batch size and/or number of parameters impact performance and
// memory constraints" — by sizing a training iteration's device-memory
// footprint from the execution graph alone.
type MemoryEstimate struct {
	// Activations is the bytes of forward activations kept for backward
	// (every non-scalar tensor produced during the iteration).
	Activations int64
	// Parameters is the dense parameter bytes.
	Parameters int64
	// Gradients mirrors Parameters (one gradient buffer per parameter).
	Gradients int64
	// OptimizerState is the additional optimizer bytes (0 for SGD, 1x
	// params for momentum, 2x for Adam).
	OptimizerState int64
	// EmbeddingTables is the embedding weight bytes (updated sparsely,
	// no dense gradient buffer).
	EmbeddingTables int64
	// Total sums all components.
	Total int64
}

// OptimizerStateFactor returns the per-parameter state multiplier of an
// optimizer name.
func OptimizerStateFactor(optimizer string) int64 {
	switch optimizer {
	case "sgd":
		return 0
	case "momentum":
		return 1
	case "adam", "adagrad+momentum":
		return 2
	}
	return 0
}

// EstimateMemory sizes the training footprint of g. denseParams is the
// dense (MLP) parameter count; optimizer selects the state multiplier.
// Embedding tables are discovered from the graph's lookup kernels.
func EstimateMemory(g *graph.Graph, denseParams int64, optimizer string) MemoryEstimate {
	var est MemoryEstimate

	// Activations: every tensor produced on device during the iteration.
	// (Views alias their inputs and are skipped.)
	for _, n := range g.Nodes {
		if len(g.NodeKernels(n)) == 0 {
			continue // host-only metadata op: no new device storage
		}
		for _, out := range n.Outputs {
			m := g.Meta(out)
			if m.Rank() == 0 {
				continue
			}
			est.Activations += m.Bytes()
		}
	}

	est.Parameters = denseParams * 4
	est.Gradients = est.Parameters
	est.OptimizerState = est.Parameters * OptimizerStateFactor(optimizer)

	// Embedding tables: E rows x D floats per table, discovered from the
	// forward lookup kernels (T tables of average size E each).
	seen := map[string]bool{}
	for _, n := range g.Nodes {
		for _, k := range g.NodeKernels(n) {
			e, ok := k.(kernels.Embedding)
			if !ok || e.Backward {
				continue
			}
			key := e.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			est.EmbeddingTables += e.E * e.T * e.D * 4
		}
	}

	est.Total = est.Activations + est.Parameters + est.Gradients +
		est.OptimizerState + est.EmbeddingTables
	return est
}

// FitsInMemory reports whether the estimate fits a device with the given
// memory capacity in bytes, leaving a fraction of headroom for workspace
// and allocator fragmentation (cuDNN workspaces, caching allocator).
func (m MemoryEstimate) FitsInMemory(capacityBytes int64, headroomFrac float64) bool {
	usable := float64(capacityBytes) * (1 - headroomFrac)
	return float64(m.Total) <= usable
}
