package predict

import (
	"sync"
	"testing"

	"dlrmperf/internal/graph"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/models"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/sim"
	"dlrmperf/internal/stats"
)

var (
	assetOnce sync.Once
	assetCal  *perfmodel.Calibration
)

// calibration returns a fast shared V100 calibration.
func calibration(t *testing.T) *perfmodel.Calibration {
	t.Helper()
	assetOnce.Do(func() {
		sizes := map[kernels.Kind]int{}
		for k, n := range microbench.DefaultSweepSizes() {
			sizes[k] = n / 4
			// The tril surface needs denser sampling after the backward
			// scatter penalty steepened it; the kernels are cheap.
			if k == kernels.KindTrilFwd || k == kernels.KindTrilBwd {
				sizes[k] = n
			}
		}
		assetCal = perfmodel.Calibrate(hw.V100Platform().GPU, perfmodel.CalibOptions{
			Seed: 3, SweepSizes: sizes, Ensemble: 2,
			MLPConfig: mlp.Config{HiddenLayers: 2, Width: 48, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 45, BatchSize: 64},
		})
	})
	return assetCal
}

// assets builds (predictor, model, measured run) for a DLRM config.
func assets(t *testing.T, name string, batch int64) (*Predictor, *models.Model, *sim.Result) {
	t.Helper()
	cal := calibration(t)
	m, err := models.Build(name, batch)
	if err != nil {
		t.Fatal(err)
	}
	p := hw.V100Platform()
	prof := sim.Run(m.Graph, sim.Config{Platform: p, Seed: 11, Warmup: 3, Iters: 25, Profile: true, Workload: name})
	meas := sim.Run(m.Graph, sim.Config{Platform: p, Seed: 12, Warmup: 3, Iters: 25, Workload: name})
	return New(cal.Registry, overhead.FromTrace(prof.Trace)), m, meas
}

func TestE2EPredictionAccuracy(t *testing.T) {
	for _, tc := range []struct {
		name  string
		batch int64
	}{
		{models.NameDLRMDefault, 512},
		{models.NameDLRMDefault, 2048},
		{models.NameDLRMMLPerf, 1024},
		{models.NameDLRMDDP, 2048},
	} {
		pred, m, meas := assets(t, tc.name, tc.batch)
		pr, err := pred.Predict(m.Graph)
		if err != nil {
			t.Fatal(err)
		}
		e2eErr := stats.AbsRelErr(pr.E2E, meas.MeanIterTime)
		activeErr := stats.AbsRelErr(pr.Active, meas.MeanActiveTime)
		// Paper: E2E geomean 7.96%, max ~25%; active geomean 4.61%.
		if e2eErr > 0.25 {
			t.Errorf("%s B=%d: E2E error %.1f%% too high", tc.name, tc.batch, 100*e2eErr)
		}
		if activeErr > 0.15 {
			t.Errorf("%s B=%d: active error %.1f%% too high", tc.name, tc.batch, 100*activeErr)
		}
	}
}

func TestKernelOnlyUnderestimatesAtLowBatch(t *testing.T) {
	pred, m, meas := assets(t, models.NameDLRMDefault, 512)
	ko, err := pred.KernelOnly(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rel := stats.RelErr(ko, meas.MeanIterTime)
	// Fig 9: kernel-only errors around -50% at B=512.
	if rel > -0.3 {
		t.Errorf("kernel-only error at B=512 = %+.1f%%, expected strong underestimation", 100*rel)
	}
	pr, err := pred.Predict(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AbsRelErr(pr.E2E, meas.MeanIterTime) >= stats.AbsRelErr(ko, meas.MeanIterTime) {
		t.Error("Algorithm 1 should beat kernel-only at low utilization")
	}
}

func TestKernelOnlyGapShrinksWithBatch(t *testing.T) {
	predS, mS, measS := assets(t, models.NameDLRMDefault, 512)
	koS, _ := predS.KernelOnly(mS.Graph)
	predL, mL, measL := assets(t, models.NameDLRMDefault, 4096)
	koL, _ := predL.KernelOnly(mL.Graph)
	gapS := -stats.RelErr(koS, measS.MeanIterTime)
	gapL := -stats.RelErr(koL, measL.MeanIterTime)
	if gapL >= gapS {
		t.Errorf("kernel-only gap did not shrink with batch: %.1f%% -> %.1f%%", 100*gapS, 100*gapL)
	}
}

func TestPredictionIsSystematicallyLowAtSmallBatch(t *testing.T) {
	// The paper observes E2E underestimation from trimmed long-tail
	// overheads; it is most visible when the host dominates.
	under := 0
	for _, name := range models.DLRMNames() {
		pred, m, meas := assets(t, name, 512)
		pr, err := pred.Predict(m.Graph)
		if err != nil {
			t.Fatal(err)
		}
		if pr.E2E < meas.MeanIterTime {
			under++
		}
	}
	if under < 2 {
		t.Errorf("only %d/3 workloads underestimated at B=512", under)
	}
}

func TestPerOpBreakdownSumsToActive(t *testing.T) {
	pred, m, _ := assets(t, models.NameDLRMDefault, 1024)
	pr, err := pred.Predict(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.PerOp) != len(m.Graph.Nodes) {
		t.Fatalf("per-op rows = %d, nodes = %d", len(pr.PerOp), len(m.Graph.Nodes))
	}
	sum := 0.0
	for _, op := range pr.PerOp {
		sum += op.Kernel
	}
	if diff := sum - pr.Active; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("per-op kernel sum %v != active %v", sum, pr.Active)
	}
	if pr.E2E < pr.Active || pr.E2E < pr.CPUTime {
		t.Error("E2E must be >= max(active-ish GPU time, CPU time)")
	}
}

func TestPredictDecodedMatchesDirect(t *testing.T) {
	pred, m, _ := assets(t, models.NameDLRMDDP, 1024)
	direct, err := pred.Predict(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Graph.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := graph.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := pred.PredictDecoded(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if diff := stats.AbsRelErr(decoded.E2E, direct.E2E); diff > 1e-9 {
		t.Errorf("decoded prediction differs: %v vs %v", decoded.E2E, direct.E2E)
	}
}

func TestPredictStreamsNotSlower(t *testing.T) {
	pred, m, _ := assets(t, models.NameDLRMDefault, 2048)
	single, err := pred.Predict(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	multi := m.Clone()
	multi.Graph.AssignStreams()
	parallel, err := pred.PredictStreams(multi.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-stream execution can only help (or tie) the predicted E2E.
	if parallel.E2E > single.E2E*1.02 {
		t.Errorf("multi-stream prediction slower: %v > %v", parallel.E2E, single.E2E)
	}
}

func TestUseMeasuredT4ChangesPrediction(t *testing.T) {
	pred, m, _ := assets(t, models.NameDLRMDefault, 512)
	a, err := pred.Predict(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	pred.UseMeasuredT4 = true
	b, err := pred.Predict(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if a.E2E == b.E2E {
		t.Error("measured-T4 variant should differ from the 10µs constant")
	}
}

func TestKernelCensus(t *testing.T) {
	pred, m, _ := assets(t, models.NameDLRMDefault, 2048)
	census, err := pred.KernelCensus(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if census[kernels.KindGEMM] <= 0 {
		t.Error("census missing GEMM time")
	}
	if census[kernels.KindEmbeddingBwd] <= census[kernels.KindEmbeddingFwd]/10 {
		t.Error("census embedding backward implausibly small")
	}
}

func TestFusionWhatIfPredictsSpeedup(t *testing.T) {
	cal := calibration(t)
	cfg := models.DLRMDefaultConfig(512)
	cfg.FusedEmbedding = false
	unfused, err := models.BuildDLRM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := hw.V100Platform()
	prof := sim.Run(unfused.Graph, sim.Config{Platform: p, Seed: 31, Warmup: 3, Iters: 25, Profile: true, Workload: unfused.Name})
	pred := New(cal.Registry, overhead.FromTrace(prof.Trace))

	before, err := pred.Predict(unfused.Graph)
	if err != nil {
		t.Fatal(err)
	}
	fusedModel := unfused.Clone()
	ids := models.EmbeddingBagNodes(fusedModel)
	if _, err := fusedModel.Graph.ReplaceNodes(ids, fusedOp(cfg, false)); err != nil {
		t.Fatal(err)
	}
	var bwd []graph.NodeID
	for _, n := range fusedModel.Graph.Nodes {
		if n.Op.Name() == "EmbeddingBagBackward0" {
			bwd = append(bwd, n.ID)
		}
	}
	if _, err := fusedModel.Graph.ReplaceNodes(bwd, fusedOp(cfg, true)); err != nil {
		t.Fatal(err)
	}
	after, err := pred.Predict(fusedModel.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if after.E2E >= before.E2E {
		t.Errorf("fusion predicted no speedup: %v >= %v", after.E2E, before.E2E)
	}
}

func fusedOp(cfg models.DLRMConfig, backward bool) ops.EmbeddingLookup {
	return ops.EmbeddingLookup{
		Rows: cfg.EmbRows, L: cfg.Lookups, D: cfg.EmbDim, Backward: backward,
	}
}
