package predict

import (
	"fmt"
	"strings"

	"dlrmperf/internal/graph"
)

// This file implements the paper's stated future work (§VI): extending
// the performance model to (distributed) multi-GPU training. DLRM's
// standard hybrid-parallel recipe is data parallelism for the dense MLPs
// (gradients all-reduced every step) with the embedding tables
// model-parallel across devices (activations exchanged by all-to-all).
// The extension composes the single-GPU Algorithm 1 prediction with an
// alpha-beta collective model.

// CommModel prices communication collectives with the classic
// alpha-beta model: latency alpha (µs) plus bytes over bus bandwidth
// (B/µs), with the collective's algorithmic factor applied.
type CommModel struct {
	// Alpha is the per-collective latency in µs.
	Alpha float64
	// BusBW is the per-link bus bandwidth in B/µs.
	BusBW float64
}

// NVLinkCommModel returns an NVLink-class interconnect (~22 GB/s
// effective bus bandwidth per direction, ~10 µs launch latency).
func NVLinkCommModel() CommModel {
	return CommModel{Alpha: 10, BusBW: 22e3}
}

// PCIeCommModel returns a PCIe-class interconnect.
func PCIeCommModel() CommModel {
	return CommModel{Alpha: 15, BusBW: 10e3}
}

// CommByName maps an interconnect name ("nvlink", "pcie"; "" defaults
// to nvlink) to its alpha-beta model — the wire-format hook for
// scenario specs.
func CommByName(name string) (CommModel, error) {
	switch strings.ToLower(name) {
	case "", "nvlink":
		return NVLinkCommModel(), nil
	case "pcie":
		return PCIeCommModel(), nil
	}
	return CommModel{}, fmt.Errorf("predict: unknown comm model %q", name)
}

// AllReduce returns the time for a ring all-reduce of nBytes across n
// devices: 2*(n-1)/n of the data crosses each link, over 2*(n-1) ring
// steps (reduce-scatter then all-gather), each paying the launch
// latency alpha once.
func (c CommModel) AllReduce(nBytes int64, n int) float64 {
	if n <= 1 {
		return 0
	}
	steps := 2 * float64(n-1)
	factor := 2 * float64(n-1) / float64(n)
	return steps*c.Alpha + factor*float64(nBytes)/c.BusBW
}

// AllToAll returns the time for an all-to-all exchange of nBytes total
// payload per device across n devices: (n-1)/n of the payload leaves
// each device, over n-1 pairwise exchange steps, each paying alpha.
func (c CommModel) AllToAll(nBytes int64, n int) float64 {
	if n <= 1 {
		return 0
	}
	steps := float64(n - 1)
	factor := float64(n-1) / float64(n)
	return steps*c.Alpha + factor*float64(nBytes)/c.BusBW
}

// MultiGPUPrediction extends Prediction with the communication breakdown.
type MultiGPUPrediction struct {
	Prediction
	// Devices is the device count.
	Devices int
	// AllReduceUs is the dense-gradient all-reduce time per step.
	AllReduceUs float64
	// AllToAllUs is the embedding-activation exchange time per step
	// (forward + backward).
	AllToAllUs float64
	// ScalingEfficiency is singleGPU*N / (N * multiGPU) — the fraction of
	// linear weak-scaling throughput retained.
	ScalingEfficiency float64
	// PerDeviceE2E lists each device's compute-only E2E time (before
	// collectives). Only populated by PredictSharded, where devices run
	// heterogeneous shards.
	PerDeviceE2E []float64 `json:",omitempty"`
}

// PredictDataParallel predicts the per-batch time of hybrid-parallel
// DLRM training on n identical devices: each device runs the (per-device
// batch) execution graph g, dense gradients are all-reduced (overlapped
// with nothing, the conservative schedule), and embedding activations
// are exchanged all-to-all in forward and backward.
//
// g must already be built at the *per-device* batch size. denseParams is
// the dense parameter count; embActBytes the per-device embedding
// activation payload per direction (B_device * T * D * 4 for DLRM).
func (p *Predictor) PredictDataParallel(g *graph.Graph, n int, denseParams, embActBytes int64, comm CommModel) (MultiGPUPrediction, error) {
	if n < 1 {
		return MultiGPUPrediction{}, fmt.Errorf("predict: device count %d must be >= 1", n)
	}
	single, err := p.Predict(g)
	if err != nil {
		return MultiGPUPrediction{}, err
	}
	out := MultiGPUPrediction{Prediction: single, Devices: n, ScalingEfficiency: 1}
	if n == 1 {
		return out, nil
	}
	out.AllReduceUs, out.AllToAllUs = collectives(denseParams, embActBytes, n, comm)
	out.E2E = single.E2E + out.AllReduceUs + out.AllToAllUs
	out.ScalingEfficiency = single.E2E / out.E2E
	return out, nil
}

// collectives prices one training step's communication. A zero payload
// means the collective is never launched (a pure data-parallel CNN has
// no embedding all-to-all), so it costs nothing — not even alpha.
func collectives(denseParams, embActBytes int64, n int, comm CommModel) (allReduce, allToAll float64) {
	if denseParams > 0 {
		allReduce = comm.AllReduce(denseParams*4, n)
	}
	if embActBytes > 0 {
		// All-to-all twice: activations forward, gradients backward.
		allToAll = 2 * comm.AllToAll(embActBytes, n)
	}
	return allReduce, allToAll
}

// PredictSharded prices hybrid-parallel training where device d runs
// its own per-device execution graph graphs[d] — each built at the
// per-device batch size with that device's embedding-table shard (the
// sharding planner's output). The step time is the slowest device's
// compute (the makespan the planner minimizes) plus the dense
// all-reduce and the two embedding all-to-alls; the embedded Prediction
// carries the bottleneck device's breakdown with E2E lifted to the
// full-step time. ScalingEfficiency is makespan/step: the fraction of
// the step not lost to collectives (1 for a single device).
func (p *Predictor) PredictSharded(graphs []*graph.Graph, denseParams, embActBytes int64, comm CommModel) (MultiGPUPrediction, error) {
	n := len(graphs)
	if n < 1 {
		return MultiGPUPrediction{}, fmt.Errorf("predict: sharded prediction needs at least one device graph")
	}
	out := MultiGPUPrediction{Devices: n, ScalingEfficiency: 1}
	for d, g := range graphs {
		pred, err := p.Predict(g)
		if err != nil {
			return MultiGPUPrediction{}, fmt.Errorf("device %d: %w", d, err)
		}
		out.PerDeviceE2E = append(out.PerDeviceE2E, pred.E2E)
		if d == 0 || pred.E2E > out.Prediction.E2E {
			out.Prediction = pred
		}
	}
	if n == 1 {
		return out, nil
	}
	makespan := out.Prediction.E2E
	out.AllReduceUs, out.AllToAllUs = collectives(denseParams, embActBytes, n, comm)
	out.E2E = makespan + out.AllReduceUs + out.AllToAllUs
	out.ScalingEfficiency = makespan / out.E2E
	return out, nil
}
