package client

import (
	"testing"

	"dlrmperf/internal/leakcheck"
)

func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
