package client

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"dlrmperf/internal/serve"
)

// APIError is any non-2xx response from the serving surface, carrying
// the decoded serve.HTTPError envelope. The specialized error types
// below embed it, so errors.As(err, *APIError) matches every server
// rejection while the concrete types select the actionable cases.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server status %d (%s): %s", e.Status, e.Code, e.Message)
}

// ErrBackpressure is a 429: the server (or the worker behind a
// coordinator) asked the caller to slow down. RetryAfter carries the
// server's hint; 0 means the server sent none. Code distinguishes
// queue_full (global capacity) from tenant_limited (the caller's own
// tenant exhausted its fair share).
type ErrBackpressure struct {
	APIError
	RetryAfter time.Duration
}

func (e *ErrBackpressure) Error() string {
	return fmt.Sprintf("client: backpressure (%s), retry after %s", e.Code, e.RetryAfter)
}

func (e *ErrBackpressure) Unwrap() error { return &e.APIError }

// ErrDraining is a 503 code "draining": the server is shutting down
// gracefully and sheds new admissions. RetryAfter carries the hint for
// retrying against a replacement (0 when the server sent none).
type ErrDraining struct {
	APIError
	RetryAfter time.Duration
}

func (e *ErrDraining) Error() string { return "client: server draining" }

func (e *ErrDraining) Unwrap() error { return &e.APIError }

// ErrNoWorkers is a coordinator 503 code "no_workers": zero live
// workers were registered when the request arrived.
type ErrNoWorkers struct {
	APIError
	RetryAfter time.Duration
}

func (e *ErrNoWorkers) Error() string { return "client: cluster has no live workers" }

func (e *ErrNoWorkers) Unwrap() error { return &e.APIError }

// ErrWorkerFailed is a coordinator 502 code "worker_failed": routing
// exhausted its attempts (the ranked worker and one retry both died).
type ErrWorkerFailed struct{ APIError }

func (e *ErrWorkerFailed) Error() string {
	return fmt.Sprintf("client: routing failed: %s", e.Message)
}

func (e *ErrWorkerFailed) Unwrap() error { return &e.APIError }

// decodeError maps one non-200 response onto the typed error taxonomy.
// A body that isn't the HTTPError envelope still produces a usable
// error with the raw snippet as the message.
func decodeError(resp *http.Response, body []byte) error {
	var he serve.HTTPError
	if err := json.Unmarshal(body, &he); err != nil || he.Code == "" {
		he.Code = "unknown"
		msg := string(body)
		if len(msg) > 256 {
			msg = msg[:256]
		}
		he.Message = msg
	}
	api := APIError{Status: resp.StatusCode, Code: he.Code, Message: he.Message}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return &ErrBackpressure{APIError: api, RetryAfter: parseRetryAfter(resp.Header)}
	case resp.StatusCode == http.StatusServiceUnavailable && he.Code == "draining":
		return &ErrDraining{APIError: api, RetryAfter: parseRetryAfter(resp.Header)}
	case resp.StatusCode == http.StatusServiceUnavailable && he.Code == "no_workers":
		return &ErrNoWorkers{APIError: api, RetryAfter: parseRetryAfter(resp.Header)}
	case resp.StatusCode == http.StatusBadGateway && he.Code == "worker_failed":
		return &ErrWorkerFailed{APIError: api}
	}
	return &api
}
