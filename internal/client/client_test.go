package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dlrmperf/internal/serve"
)

import "context"

// stub builds a one-endpoint server answering with a fixed status,
// optional Retry-After, and a JSON body.
func stub(t *testing.T, status int, retryAfter string, body any) *Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		serve.WriteJSON(w, status, body)
	}))
	t.Cleanup(ts.Close)
	return New(ts.URL)
}

// TestErrorTaxonomy pins the status+code -> typed error mapping, and
// that every specialized error also unwraps to *APIError.
func TestErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	t.Run("backpressure", func(t *testing.T) {
		cl := stub(t, http.StatusTooManyRequests, "7", serve.HTTPError{Code: "queue_full", Message: "busy"})
		_, err := cl.Predict(ctx, serve.Request{Workload: "w"})
		var bp *ErrBackpressure
		if !errors.As(err, &bp) || bp.RetryAfter != 7*time.Second || bp.Code != "queue_full" {
			t.Fatalf("err = %v, want ErrBackpressure queue_full with 7s", err)
		}
	})
	t.Run("tenant-limited is backpressure", func(t *testing.T) {
		cl := stub(t, http.StatusTooManyRequests, "2", serve.HTTPError{Code: "tenant_limited", Message: "share exhausted"})
		_, err := cl.Predict(ctx, serve.Request{Workload: "w"})
		var bp *ErrBackpressure
		if !errors.As(err, &bp) || bp.Code != "tenant_limited" || bp.RetryAfter != 2*time.Second {
			t.Fatalf("err = %v, want tenant_limited backpressure", err)
		}
	})
	t.Run("draining", func(t *testing.T) {
		cl := stub(t, http.StatusServiceUnavailable, "1", serve.HTTPError{Code: "draining", Message: "bye"})
		_, err := cl.Predict(ctx, serve.Request{Workload: "w"})
		var dr *ErrDraining
		if !errors.As(err, &dr) || dr.RetryAfter != time.Second {
			t.Fatalf("err = %v, want ErrDraining with 1s", err)
		}
	})
	t.Run("no-workers", func(t *testing.T) {
		cl := stub(t, http.StatusServiceUnavailable, "", serve.HTTPError{Code: "no_workers", Message: "none"})
		_, err := cl.Predict(ctx, serve.Request{Workload: "w"})
		var nw *ErrNoWorkers
		if !errors.As(err, &nw) {
			t.Fatalf("err = %v, want ErrNoWorkers", err)
		}
	})
	t.Run("worker-failed", func(t *testing.T) {
		cl := stub(t, http.StatusBadGateway, "", serve.HTTPError{Code: "worker_failed", Message: "dead"})
		_, err := cl.Predict(ctx, serve.Request{Workload: "w"})
		var wf *ErrWorkerFailed
		if !errors.As(err, &wf) || wf.Message != "dead" {
			t.Fatalf("err = %v, want ErrWorkerFailed", err)
		}
	})
	t.Run("generic 400", func(t *testing.T) {
		cl := stub(t, http.StatusBadRequest, "", serve.HTTPError{Code: "bad_priority", Message: "nope"})
		_, err := cl.Predict(ctx, serve.Request{Workload: "w"})
		var api *APIError
		if !errors.As(err, &api) || api.Code != "bad_priority" || api.Status != http.StatusBadRequest {
			t.Fatalf("err = %v, want plain *APIError bad_priority", err)
		}
		// None of the specialized types match a plain 400.
		var bp *ErrBackpressure
		var dr *ErrDraining
		if errors.As(err, &bp) || errors.As(err, &dr) {
			t.Fatalf("400 matched a specialized error type: %v", err)
		}
	})
	t.Run("every typed error unwraps to APIError", func(t *testing.T) {
		for _, err := range []error{
			&ErrBackpressure{APIError: APIError{Status: 429}},
			&ErrDraining{APIError: APIError{Status: 503}},
			&ErrNoWorkers{APIError: APIError{Status: 503}},
			&ErrWorkerFailed{APIError: APIError{Status: 502}},
		} {
			var api *APIError
			if !errors.As(err, &api) {
				t.Errorf("%T does not unwrap to *APIError", err)
			}
		}
	})
}

// TestNonEnvelopeErrorBody: a non-JSON error body still produces a
// usable *APIError with code "unknown" and a bounded raw snippet.
func TestNonEnvelopeErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte("<html>panic</html>" + strings.Repeat("x", 1024)))
	}))
	t.Cleanup(ts.Close)
	_, err := New(ts.URL).Predict(context.Background(), serve.Request{Workload: "w"})
	var api *APIError
	if !errors.As(err, &api) || api.Code != "unknown" || api.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want unknown-code *APIError", err)
	}
	if len(api.Message) > 256 {
		t.Fatalf("raw snippet not bounded: %d bytes", len(api.Message))
	}
}

// TestHealthzBothStates: 200 ok and 503 draining both decode without
// error — draining is a reportable state, not a failure.
func TestHealthzBothStates(t *testing.T) {
	ctx := context.Background()
	if h, err := stub(t, http.StatusOK, "", map[string]any{"status": "ok", "workers": 3}).Healthz(ctx); err != nil || h.Status != "ok" || h.Workers != 3 {
		t.Fatalf("healthy = %+v / %v", h, err)
	}
	if h, err := stub(t, http.StatusServiceUnavailable, "", map[string]any{"status": "draining"}).Healthz(ctx); err != nil || h.Status != "draining" {
		t.Fatalf("draining = %+v / %v", h, err)
	}
}

// TestBodySizeLimit: a response past the configured cap is truncated at
// the limit, so a misbehaving server yields a parse error instead of
// unbounded memory growth.
func TestBodySizeLimit(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"error":"` + strings.Repeat("x", 4096) + `"}`))
	}))
	t.Cleanup(ts.Close)
	cl := New(ts.URL, WithMaxBodyBytes(64))
	if _, err := cl.Stats(context.Background()); err == nil {
		t.Fatal("oversized body parsed cleanly, want a truncation parse error")
	}
}

// TestParseRetryAfter covers the header forms this surface can emit.
func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"7", 7 * time.Second},
		{"0", 0},
		{"", 0},
		{"-3", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, // date form unsupported by design
	} {
		h := http.Header{}
		if tc.in != "" {
			h.Set("Retry-After", tc.in)
		}
		if got := parseRetryAfter(h); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestTransportErrorIsNotAPIError: a dead socket surfaces as the
// transport error, not as a server rejection.
func TestTransportErrorIsNotAPIError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	ts.Close() // dead before use
	_, err := New(ts.URL).Predict(context.Background(), serve.Request{Workload: "w"})
	if err == nil {
		t.Fatal("predict against a closed server succeeded")
	}
	var api *APIError
	if errors.As(err, &api) {
		t.Fatalf("transport failure decoded as *APIError: %v", err)
	}
}

// TestRegisterAndDrainPaths: the control-plane helpers hit the right
// endpoints with the right payloads.
func TestRegisterAndDrainPaths(t *testing.T) {
	var gotPath, gotBody string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		buf := make([]byte, 256)
		n, _ := r.Body.Read(buf)
		gotBody = string(buf[:n])
		serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	t.Cleanup(ts.Close)
	cl := New(ts.URL)
	ctx := context.Background()

	if err := cl.Register(ctx, "w1", "http://worker:8080"); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/workers/register" || !strings.Contains(gotBody, `"id":"w1"`) || !strings.Contains(gotBody, `"url":"http://worker:8080"`) {
		t.Fatalf("register hit %s with %s", gotPath, gotBody)
	}
	if err := cl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/drain" {
		t.Fatalf("drain hit %s", gotPath)
	}
}
