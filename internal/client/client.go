// Package client is the typed Go client for the dlrmperf serving
// surface — the single blessed way to talk to a worker
// (internal/serve) or a coordinator (internal/cluster), which
// re-exports the worker wire surface. It owns the request encoding,
// response decoding, body-size limits, and the mapping from HTTP error
// envelopes (serve.HTTPError) onto typed Go errors, so no consumer —
// coordinator fan-out, load generator, e2e tests — hand-rolls its own
// status switch.
//
// Error taxonomy (all also match errors.As against *APIError):
//
//	429                    -> *ErrBackpressure (RetryAfter parsed)
//	503 code "draining"    -> *ErrDraining
//	503 code "no_workers"  -> *ErrNoWorkers
//	502 code "worker_failed" -> *ErrWorkerFailed
//	any other non-2xx      -> *APIError
//
// Transport failures (dial, broken stream) surface as the underlying
// *url.Error — a different failure class than a server that answered.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dlrmperf/internal/explore"
	"dlrmperf/internal/serve"
)

// defaultMaxBodyBytes bounds response bodies (64 MiB): a misbehaving
// server cannot balloon a client's memory, yet full explore reports
// over large grids still fit.
const defaultMaxBodyBytes = 64 << 20

// defaultHTTPClient dials fast (dead-socket detection must be quick)
// but never bounds the response wait — a cold worker legitimately
// spends minutes calibrating a device. Callers needing a response
// bound pass their own *http.Client or a request context deadline.
var defaultHTTPClient = &http.Client{Transport: &http.Transport{
	DialContext: (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
}}

// Client talks to one server base URL.
type Client struct {
	base    string
	hc      *http.Client
	maxBody int64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (nil keeps the default).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithMaxBodyBytes bounds response bodies read by this client.
func WithMaxBodyBytes(n int64) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxBody = n
		}
	}
}

// New returns a client for the server at base (scheme://host[:port],
// trailing slash tolerated).
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      defaultHTTPClient,
		maxBody: defaultMaxBodyBytes,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the server base URL this client targets.
func (c *Client) Base() string { return c.base }

// Predict submits one request on the non-blocking admission path
// (POST /v1/predict). A 429 surfaces as *ErrBackpressure with the
// server's Retry-After hint. Rows the server computed but failed
// (validation, deadline) return with err == nil and Result.Error set —
// an application-level verdict, not a transport failure.
func (c *Client) Predict(ctx context.Context, req serve.Request) (serve.Result, error) {
	var row serve.Result
	if err := c.postJSON(ctx, "/v1/predict", req, &row); err != nil {
		return serve.Result{}, err
	}
	return row, nil
}

// PredictBatch submits a request list on the blocking admission path
// (POST /v1/predict/batch) and returns a WORKER's full report. Against
// a coordinator use PredictBatchInto with the cluster report type — the
// coordinator's calibration ledger is nested per-worker and does not
// decode into serve.Report.
func (c *Client) PredictBatch(ctx context.Context, reqs []serve.Request) (*serve.Report, error) {
	var rep serve.Report
	if err := c.postJSON(ctx, "/v1/predict/batch", reqs, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// PredictBatchInto submits a request list and decodes the report into
// v — the shape-agnostic variant for coordinator reports or partial
// views.
func (c *Client) PredictBatchInto(ctx context.Context, reqs []serve.Request, v any) error {
	return c.postJSON(ctx, "/v1/predict/batch", reqs, v)
}

// Explore runs a design-space sweep (POST /v1/explore).
func (c *Client) Explore(ctx context.Context, g explore.Grid) (*explore.Report, error) {
	var rep explore.Report
	if err := c.postJSON(ctx, "/v1/explore", g, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Stats fetches a WORKER's /stats document. Against a coordinator use
// StatsInto with the cluster stats type — the client deliberately
// doesn't import internal/cluster (cluster imports client).
func (c *Client) Stats(ctx context.Context) (serve.Stats, error) {
	var st serve.Stats
	if err := c.getJSON(ctx, "/stats", &st); err != nil {
		return serve.Stats{}, err
	}
	return st, nil
}

// StatsInto fetches /stats and decodes it into v — the shape-agnostic
// variant for coordinator documents or partial views.
func (c *Client) StatsInto(ctx context.Context, v any) error {
	return c.getJSON(ctx, "/stats", v)
}

// Health is the GET /healthz document. Workers is only populated by
// coordinators.
type Health struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
}

// Healthz fetches liveness. Both 200 ("ok") and 503 ("draining")
// decode into Health with err == nil — draining is a reportable state,
// not a request failure; anything else is an error.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var h Health
	data, resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return Health{}, decodeError(resp, data)
	}
	if err := json.Unmarshal(data, &h); err != nil {
		return Health{}, fmt.Errorf("client: parsing /healthz: %w", err)
	}
	return h, nil
}

// Scenarios lists the server's registered scenario names.
func (c *Client) Scenarios(ctx context.Context) ([]string, error) {
	var names []string
	if err := c.getJSON(ctx, "/v1/scenarios", &names); err != nil {
		return nil, err
	}
	return names, nil
}

// Drain asks the server to drain (POST /v1/drain — mounted by workers
// running under a cluster registration).
func (c *Client) Drain(ctx context.Context) error {
	return c.postJSON(ctx, "/v1/drain", nil, nil)
}

// Register self-registers a worker with a coordinator
// (POST /v1/workers/register).
func (c *Client) Register(ctx context.Context, id, url string) error {
	body := struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}{ID: id, URL: url}
	return c.postJSON(ctx, "/v1/workers/register", body, nil)
}

// InstallAssets streams a SaveAssets payload to a worker
// (POST /v1/assets/install) so the device it covers serves warm — the
// cluster's asset hand-off on failover. The payload is already JSON
// and is sent verbatim.
func (c *Client) InstallAssets(ctx context.Context, assets []byte) error {
	return c.postJSON(ctx, "/v1/assets/install", json.RawMessage(assets), nil)
}

// PushAssets uploads a worker's exported calibration assets for one
// device to a coordinator's replicated vault
// (POST /v1/workers/assets). epoch is the device's asset-mutation
// counter at export time, so the coordinator can drop stale replays.
func (c *Client) PushAssets(ctx context.Context, workerID, device string, epoch uint64, assets []byte) error {
	body := struct {
		ID     string          `json:"id"`
		Device string          `json:"device"`
		Epoch  uint64          `json:"epoch"`
		Assets json.RawMessage `json:"assets"`
	}{ID: workerID, Device: device, Epoch: epoch, Assets: assets}
	return c.postJSON(ctx, "/v1/workers/assets", body, nil)
}

// PostJSON POSTs an arbitrary JSON body to path and decodes a 200 into
// out (nil discards it) — the extension point coordinator peer
// replication rides, so internal gossip reuses this client's
// transport, body limits, and error taxonomy instead of hand-rolling
// HTTP. Prefer the typed methods for any public wire operation.
func (c *Client) PostJSON(ctx context.Context, path string, in, out any) error {
	return c.postJSON(ctx, path, in, out)
}

// postJSON marshals in (nil means an empty body), POSTs it, and
// decodes a 200 into out (nil discards the body). Non-200s decode into
// typed errors.
func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	data, resp, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: parsing %s response: %w", path, err)
	}
	return nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	data, resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: parsing %s response: %w", path, err)
	}
	return nil
}

// do performs one HTTP round trip and reads the (size-capped) body.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader) ([]byte, *http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody))
	if err != nil {
		return nil, nil, err
	}
	return data, resp, nil
}

// parseRetryAfter reads a whole-seconds Retry-After header (the only
// form this surface emits); absent or malformed values yield 0.
func parseRetryAfter(h http.Header) time.Duration {
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
