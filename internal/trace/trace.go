// Package trace defines the profiler trace format the simulator emits and
// the analyses the paper's "Analysis Track" performs on it: per-batch
// iteration times, device active/idle breakdowns (Fig. 5), GPU
// utilization (Fig. 1), and the per-op event structure the overhead
// extractor consumes.
//
// A trace mirrors what PyTorch's profiler (Kineto) records: host-side op
// spans, host-side CUDA runtime calls (cudaLaunchKernel /
// cudaMemcpyAsync), and device-side kernel spans, each attributed to an
// op and an iteration. All times are in microseconds.
package trace

import (
	"fmt"
	"sort"
)

// EventKind distinguishes trace event types.
type EventKind int

// Event kinds.
const (
	// OpSpan is a host-side top-level operator call.
	OpSpan EventKind = iota
	// RuntimeCall is a host-side CUDA runtime function (one per launch).
	RuntimeCall
	// KernelSpan is a device-side kernel execution.
	KernelSpan
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case OpSpan:
		return "op"
	case RuntimeCall:
		return "runtime"
	case KernelSpan:
		return "kernel"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one trace record.
type Event struct {
	Kind  EventKind
	Name  string  // op name, runtime function name, or kernel name
	Op    string  // owning op name (for runtime calls and kernels)
	Start float64 // µs
	End   float64 // µs
	Iter  int
	Node  int // graph node ID
	// Stream is the device stream (kernel events).
	Stream int
	// Seq orders runtime calls / kernels within their op.
	Seq int
}

// Duration returns End-Start.
func (e Event) Duration() float64 { return e.End - e.Start }

// Trace is an ordered event log over a multi-iteration run.
type Trace struct {
	Events []Event
	// Iters is the number of recorded (post-warmup) iterations.
	Iters int
	// IterSpans records [start, end] per iteration, where end includes
	// the device drain (the measured per-batch training time).
	IterSpans [][2]float64
}

// IterationTimes returns the per-batch training time of each iteration.
func (t *Trace) IterationTimes() []float64 {
	out := make([]float64, len(t.IterSpans))
	for i, s := range t.IterSpans {
		out[i] = s[1] - s[0]
	}
	return out
}

// MeanIterationTime returns the average per-batch time.
func (t *Trace) MeanIterationTime() float64 {
	ts := t.IterationTimes()
	if len(ts) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range ts {
		s += v
	}
	return s / float64(len(ts))
}

// ActiveTime returns the total device-active time (union of kernel spans
// across streams) for one iteration.
func (t *Trace) ActiveTime(iter int) float64 {
	var spans [][2]float64
	for _, e := range t.Events {
		if e.Kind == KernelSpan && e.Iter == iter {
			spans = append(spans, [2]float64{e.Start, e.End})
		}
	}
	return unionLength(spans)
}

// MeanActiveTime averages ActiveTime over all iterations.
func (t *Trace) MeanActiveTime() float64 {
	if t.Iters == 0 {
		return 0
	}
	s := 0.0
	for i := 0; i < t.Iters; i++ {
		s += t.ActiveTime(i)
	}
	return s / float64(t.Iters)
}

// Utilization returns mean active time over mean iteration time — the
// paper's "GPU utilization" metric of Fig. 1.
func (t *Trace) Utilization() float64 {
	it := t.MeanIterationTime()
	if it == 0 {
		return 0
	}
	return t.MeanActiveTime() / it
}

// unionLength sums the length of the union of intervals.
func unionLength(spans [][2]float64) float64 {
	if len(spans) == 0 {
		return 0
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	total := 0.0
	curStart, curEnd := spans[0][0], spans[0][1]
	for _, s := range spans[1:] {
		if s[0] > curEnd {
			total += curEnd - curStart
			curStart, curEnd = s[0], s[1]
			continue
		}
		if s[1] > curEnd {
			curEnd = s[1]
		}
	}
	return total + (curEnd - curStart)
}

// BreakdownEntry is one row of the device-time breakdown.
type BreakdownEntry struct {
	Op    string
	Time  float64 // mean device time per iteration, µs
	Share float64 // fraction of mean iteration time
}

// Breakdown attributes device-active time to ops (averaged per
// iteration), appends an "Idle" entry, and sorts descending — the Fig. 5
// analysis. Ops below minShare are folded into "others".
func (t *Trace) Breakdown(minShare float64) []BreakdownEntry {
	if t.Iters == 0 {
		return nil
	}
	perOp := map[string]float64{}
	for _, e := range t.Events {
		if e.Kind == KernelSpan {
			perOp[e.Op] += e.Duration()
		}
	}
	iterTime := t.MeanIterationTime()
	active := t.MeanActiveTime()
	var entries []BreakdownEntry
	others := 0.0
	for op, tt := range perOp {
		mean := tt / float64(t.Iters)
		if iterTime > 0 && mean/iterTime < minShare {
			others += mean
			continue
		}
		entries = append(entries, BreakdownEntry{Op: op, Time: mean, Share: mean / iterTime})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Time > entries[j].Time })
	if others > 0 {
		entries = append(entries, BreakdownEntry{Op: "others", Time: others, Share: others / iterTime})
	}
	idle := iterTime - active
	if idle < 0 {
		idle = 0
	}
	entries = append(entries, BreakdownEntry{Op: "Idle", Time: idle, Share: idle / iterTime})
	return entries
}

// OpEvents groups one iteration's events by op occurrence, in host order:
// each element holds the op span and its runtime calls. This is the
// event-tree view the overhead extractor walks.
type OpEvents struct {
	Span    Event
	Runtime []Event
	Kernels []Event
}

// EventTree returns per-iteration op groupings.
func (t *Trace) EventTree(iter int) []OpEvents {
	var spans []Event
	byNode := map[int]*OpEvents{}
	for _, e := range t.Events {
		if e.Iter != iter {
			continue
		}
		if e.Kind == OpSpan {
			spans = append(spans, e)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	out := make([]OpEvents, len(spans))
	for i, s := range spans {
		out[i] = OpEvents{Span: s}
		byNode[s.Node] = &out[i]
	}
	for _, e := range t.Events {
		if e.Iter != iter || e.Kind == OpSpan {
			continue
		}
		grp, ok := byNode[e.Node]
		if !ok {
			continue
		}
		switch e.Kind {
		case RuntimeCall:
			grp.Runtime = append(grp.Runtime, e)
		case KernelSpan:
			grp.Kernels = append(grp.Kernels, e)
		}
	}
	for i := range out {
		sort.Slice(out[i].Runtime, func(a, b int) bool { return out[i].Runtime[a].Seq < out[i].Runtime[b].Seq })
		sort.Slice(out[i].Kernels, func(a, b int) bool { return out[i].Kernels[a].Seq < out[i].Kernels[b].Seq })
	}
	return out
}
