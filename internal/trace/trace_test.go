package trace

import (
	"math"
	"testing"
)

// synthetic builds a two-iteration trace with known structure:
// iteration i has two ops; op A launches two kernels, op B none.
func synthetic() *Trace {
	tr := &Trace{Iters: 2}
	for iter := 0; iter < 2; iter++ {
		base := float64(iter) * 100
		tr.Events = append(tr.Events,
			Event{Kind: OpSpan, Name: "A", Op: "A", Start: base + 0, End: base + 30, Iter: iter, Node: 1},
			Event{Kind: RuntimeCall, Name: "cudaLaunchKernel", Op: "A", Start: base + 5, End: base + 10, Iter: iter, Node: 1, Seq: 0},
			Event{Kind: RuntimeCall, Name: "cudaLaunchKernel", Op: "A", Start: base + 15, End: base + 20, Iter: iter, Node: 1, Seq: 1},
			Event{Kind: KernelSpan, Name: "k0", Op: "A", Start: base + 12, End: base + 22, Iter: iter, Node: 1, Seq: 0},
			Event{Kind: KernelSpan, Name: "k1", Op: "A", Start: base + 25, End: base + 40, Iter: iter, Node: 1, Seq: 1},
			Event{Kind: OpSpan, Name: "B", Op: "B", Start: base + 35, End: base + 45, Iter: iter, Node: 2},
		)
		tr.IterSpans = append(tr.IterSpans, [2]float64{base, base + 50})
	}
	return tr
}

func TestIterationTimes(t *testing.T) {
	tr := synthetic()
	ts := tr.IterationTimes()
	if len(ts) != 2 || ts[0] != 50 || ts[1] != 50 {
		t.Fatalf("IterationTimes = %v", ts)
	}
	if tr.MeanIterationTime() != 50 {
		t.Errorf("mean = %v", tr.MeanIterationTime())
	}
}

func TestActiveTime(t *testing.T) {
	tr := synthetic()
	// Kernels: [12,22] + [25,40] = 10 + 15 = 25 per iteration.
	if got := tr.ActiveTime(0); got != 25 {
		t.Errorf("ActiveTime = %v, want 25", got)
	}
	if got := tr.MeanActiveTime(); got != 25 {
		t.Errorf("MeanActiveTime = %v", got)
	}
}

func TestUtilization(t *testing.T) {
	tr := synthetic()
	if got := tr.Utilization(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
}

func TestActiveTimeMergesOverlaps(t *testing.T) {
	tr := &Trace{Iters: 1, IterSpans: [][2]float64{{0, 100}}}
	tr.Events = []Event{
		{Kind: KernelSpan, Start: 0, End: 50, Iter: 0, Stream: 0},
		{Kind: KernelSpan, Start: 25, End: 75, Iter: 0, Stream: 1}, // overlaps
	}
	if got := tr.ActiveTime(0); got != 75 {
		t.Errorf("overlapping streams ActiveTime = %v, want 75", got)
	}
}

func TestBreakdown(t *testing.T) {
	tr := synthetic()
	entries := tr.Breakdown(0)
	// Op A: 25 µs device time, idle = 50-25 = 25.
	var a, idle float64
	for _, e := range entries {
		switch e.Op {
		case "A":
			a = e.Time
		case "Idle":
			idle = e.Time
		}
	}
	if a != 25 {
		t.Errorf("op A device time = %v", a)
	}
	if idle != 25 {
		t.Errorf("idle = %v", idle)
	}
	// Idle is always the last entry.
	if entries[len(entries)-1].Op != "Idle" {
		t.Error("Idle not last entry")
	}
}

func TestBreakdownFoldsSmallOps(t *testing.T) {
	tr := synthetic()
	// With a huge threshold, op A folds into "others".
	entries := tr.Breakdown(0.9)
	for _, e := range entries {
		if e.Op == "A" {
			t.Error("op A should have been folded into others")
		}
	}
	foundOthers := false
	for _, e := range entries {
		if e.Op == "others" {
			foundOthers = true
		}
	}
	if !foundOthers {
		t.Error("no others entry")
	}
}

func TestEventTree(t *testing.T) {
	tr := synthetic()
	tree := tr.EventTree(1)
	if len(tree) != 2 {
		t.Fatalf("tree size = %d", len(tree))
	}
	if tree[0].Span.Name != "A" || tree[1].Span.Name != "B" {
		t.Errorf("tree order: %s, %s", tree[0].Span.Name, tree[1].Span.Name)
	}
	if len(tree[0].Runtime) != 2 || len(tree[0].Kernels) != 2 {
		t.Errorf("op A children: %d runtime, %d kernels", len(tree[0].Runtime), len(tree[0].Kernels))
	}
	if len(tree[1].Runtime) != 0 {
		t.Error("op B should have no runtime calls")
	}
	// Children sorted by Seq.
	if tree[0].Runtime[0].Seq != 0 || tree[0].Runtime[1].Seq != 1 {
		t.Error("runtime calls not in Seq order")
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if tr.MeanIterationTime() != 0 || tr.MeanActiveTime() != 0 || tr.Utilization() != 0 {
		t.Error("empty trace should report zeros")
	}
	if tr.Breakdown(0) != nil {
		t.Error("empty trace breakdown should be nil")
	}
}

func TestEventKindString(t *testing.T) {
	if OpSpan.String() != "op" || RuntimeCall.String() != "runtime" || KernelSpan.String() != "kernel" {
		t.Error("EventKind strings wrong")
	}
}
