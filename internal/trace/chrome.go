package trace

import (
	"encoding/json"
)

// chromeEvent is one entry of the Chrome Trace Event Format (the
// "complete event" phase), loadable in chrome://tracing or Perfetto —
// the same viewer workflow the paper's PyTorch profiler traces use.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // µs
	Dur  float64           `json:"dur"` // µs
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Chrome thread-ID layout: host op spans on tid 0, runtime calls on
// tid 1, each GPU stream on 100+stream.
const (
	chromeTIDOps     = 0
	chromeTIDRuntime = 1
	chromeTIDStream0 = 100
)

// ToChromeTrace renders the trace in the Chrome Trace Event Format.
// Host events land on pid 0 (ops on tid 0, CUDA runtime calls on tid 1);
// kernels land on pid 1 with one tid per stream.
func (t *Trace) ToChromeTrace() ([]byte, error) {
	var events []chromeEvent
	for _, e := range t.Events {
		ce := chromeEvent{
			Name: e.Name,
			Ph:   "X",
			Ts:   e.Start,
			Dur:  e.Duration(),
			Args: map[string]string{"op": e.Op},
		}
		switch e.Kind {
		case OpSpan:
			ce.Cat, ce.PID, ce.TID = "op", 0, chromeTIDOps
		case RuntimeCall:
			ce.Cat, ce.PID, ce.TID = "cuda_runtime", 0, chromeTIDRuntime
		case KernelSpan:
			ce.Cat, ce.PID, ce.TID = "kernel", 1, chromeTIDStream0+e.Stream
		}
		events = append(events, ce)
	}
	return json.MarshalIndent(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}, "", " ")
}
