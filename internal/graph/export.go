package graph

import (
	"encoding/json"

	"dlrmperf/internal/kernels"
)

// Export is the serialized execution graph: what the paper's observer
// writes out and what the prediction track consumes. It freezes the
// shape-derived kernels, so a consumer needs neither the op registry nor
// tensor shapes to predict performance.
type Export struct {
	Nodes []ExportNode `json:"nodes"`
}

// ExportNode is one operator in the serialized graph.
type ExportNode struct {
	ID      int               `json:"id"`
	Name    string            `json:"name"`
	Stream  int               `json:"stream"`
	Inputs  []int             `json:"inputs"`
	Outputs []int             `json:"outputs"`
	Kernels []json.RawMessage `json:"kernels,omitempty"`
	Deps    []int             `json:"deps"`
}

// ToExport freezes the graph into its serializable form.
func (g *Graph) ToExport() (*Export, error) {
	e := &Export{}
	for _, n := range g.Nodes {
		en := ExportNode{
			ID:     int(n.ID),
			Name:   n.Op.Name(),
			Stream: n.Stream,
		}
		for _, in := range n.Inputs {
			en.Inputs = append(en.Inputs, int(in))
		}
		for _, out := range n.Outputs {
			en.Outputs = append(en.Outputs, int(out))
		}
		for _, d := range g.Deps(n) {
			en.Deps = append(en.Deps, int(d))
		}
		for _, k := range g.NodeKernels(n) {
			raw, err := kernels.MarshalKernel(k)
			if err != nil {
				return nil, err
			}
			en.Kernels = append(en.Kernels, raw)
		}
		e.Nodes = append(e.Nodes, en)
	}
	return e, nil
}

// MarshalJSON renders the graph in its export form.
func (g *Graph) MarshalJSON() ([]byte, error) {
	e, err := g.ToExport()
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(e, "", "  ")
}

// DecodedNode is an ExportNode with kernels materialized.
type DecodedNode struct {
	ID      int
	Name    string
	Stream  int
	Kernels []kernels.Kernel
	Deps    []int
}

// Decode parses serialized graph JSON into prediction-ready nodes.
func Decode(data []byte) ([]DecodedNode, error) {
	var e Export
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, err
	}
	out := make([]DecodedNode, 0, len(e.Nodes))
	for _, en := range e.Nodes {
		dn := DecodedNode{ID: en.ID, Name: en.Name, Stream: en.Stream, Deps: en.Deps}
		for _, raw := range en.Kernels {
			k, err := kernels.UnmarshalKernel(raw)
			if err != nil {
				return nil, err
			}
			dn.Kernels = append(dn.Kernels, k)
		}
		out = append(out, dn)
	}
	return out, nil
}
