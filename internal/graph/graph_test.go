package graph

import (
	"encoding/json"
	"testing"

	"dlrmperf/internal/kernels"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/tensor"
)

// tinyMLP builds in -> linear(32) -> relu -> linear(8).
func tinyMLP(b int64) *Graph {
	g := New()
	x := g.Input(tensor.New(b, 64))
	h := g.Apply(ops.Linear{Out: 32}, x)
	r := g.Apply(ops.ReLU(), h[0])
	g.Apply(ops.Linear{Out: 8}, r[0])
	return g
}

func TestApplyAndMeta(t *testing.T) {
	g := tinyMLP(16)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(g.Nodes))
	}
	last := g.Nodes[2]
	out := g.Meta(last.Outputs[0])
	if out.Dim(0) != 16 || out.Dim(1) != 8 {
		t.Errorf("final output = %v", out)
	}
}

func TestNodeKernels(t *testing.T) {
	g := tinyMLP(16)
	ks := g.NodeKernels(g.Nodes[0])
	if len(ks) != 1 {
		t.Fatalf("linear emitted %d kernels", len(ks))
	}
	gm, ok := ks[0].(kernels.GEMM)
	if !ok {
		t.Fatalf("linear kernel is %T", ks[0])
	}
	if gm.M != 16 || gm.N != 32 || gm.K != 64 {
		t.Errorf("GEMM dims = %+v", gm)
	}
}

func TestResizeBatchPropagates(t *testing.T) {
	g := tinyMLP(16)
	if err := g.ResizeBatch(1024); err != nil {
		t.Fatal(err)
	}
	gm := g.NodeKernels(g.Nodes[0])[0].(kernels.GEMM)
	if gm.M != 1024 {
		t.Errorf("after resize GEMM M = %d, want 1024", gm.M)
	}
	out := g.Meta(g.Nodes[2].Outputs[0])
	if out.Dim(0) != 1024 {
		t.Errorf("final output batch = %d", out.Dim(0))
	}
	if g.BatchSize() != 1024 {
		t.Errorf("BatchSize = %d", g.BatchSize())
	}
}

func TestDeps(t *testing.T) {
	g := New()
	a := g.Input(tensor.New(4, 8))
	b := g.Input(tensor.New(4, 8))
	s := g.Apply(ops.Add(), a, b)
	g.Apply(ops.ReLU(), s[0])
	relu := g.Nodes[1]
	deps := g.Deps(relu)
	if len(deps) != 1 || deps[0] != g.Nodes[0].ID {
		t.Errorf("deps = %v", deps)
	}
	if len(g.Deps(g.Nodes[0])) != 0 {
		t.Error("input-consuming node should have no node deps")
	}
	if g.Producer(a) != -1 {
		t.Error("graph input should have producer -1")
	}
}

func TestValidateCatchesUseBeforeDef(t *testing.T) {
	g := tinyMLP(8)
	// Swap the first two nodes so relu runs before the linear that feeds it.
	g.Nodes[0], g.Nodes[1] = g.Nodes[1], g.Nodes[0]
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted use-before-def ordering")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := tinyMLP(8)
	c := g.Clone()
	if err := c.ResizeBatch(256); err != nil {
		t.Fatal(err)
	}
	if g.BatchSize() != 8 {
		t.Errorf("resizing clone mutated original (batch=%d)", g.BatchSize())
	}
	if c.BatchSize() != 256 {
		t.Errorf("clone batch = %d", c.BatchSize())
	}
}

func TestTotalKernels(t *testing.T) {
	g := tinyMLP(8)
	if got := g.TotalKernels(); got != 3 {
		t.Errorf("TotalKernels = %d, want 3", got)
	}
}

func TestReplaceNodesFusesEmbeddingBags(t *testing.T) {
	g := New()
	idx := g.Input(tensor.NewTyped(tensor.Int64, 128, 4, 10))
	var outs []TensorID
	var ids []NodeID
	for i := 0; i < 4; i++ {
		o := g.Apply(ops.EmbeddingBag{Rows: 1000, L: 10, D: 16}, idx)
		ids = append(ids, g.Producer(o[0]))
		outs = append(outs, o[0])
	}
	cat := g.Apply(ops.Concat{Dim: 1}, outs...)
	g.Apply(ops.ReLU(), cat[0]) // downstream consumer

	ids = append(ids, g.Producer(cat[0]))
	fused, err := g.ReplaceNodes(ids, ops.EmbeddingLookup{
		Rows: []int64{1000, 1000, 1000, 1000}, L: 10, D: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 5 nodes replaced by 1: fused + relu remain.
	if len(g.Nodes) != 2 {
		t.Fatalf("nodes after fusion = %d, want 2", len(g.Nodes))
	}
	if fused.Op.Name() != "LookupFunction" {
		t.Errorf("fused op = %s", fused.Op.Name())
	}
	out := g.Meta(fused.Outputs[0])
	if out.Dim(0) != 128 || out.Dim(1) != 4 || out.Dim(2) != 16 {
		t.Errorf("fused output meta = %v", out)
	}
	// The downstream relu must now depend on the fused node.
	relu := g.Nodes[1]
	deps := g.Deps(relu)
	if len(deps) != 1 || deps[0] != fused.ID {
		t.Errorf("relu deps after fusion = %v", deps)
	}
}

func TestReplaceNodesReducesKernelAndOpCount(t *testing.T) {
	g := New()
	idx := g.Input(tensor.NewTyped(tensor.Int64, 128, 8, 10))
	var outs []TensorID
	var ids []NodeID
	for i := 0; i < 8; i++ {
		o := g.Apply(ops.EmbeddingBag{Rows: 5000, L: 10, D: 16}, idx)
		ids = append(ids, g.Producer(o[0]))
		outs = append(outs, o[0])
	}
	cat := g.Apply(ops.Concat{Dim: 1}, outs...)
	g.Apply(ops.ReLU(), cat[0])
	before := len(g.Nodes)
	ids = append(ids, g.Producer(cat[0]))
	rows := make([]int64, 8)
	for i := range rows {
		rows[i] = 5000
	}
	if _, err := g.ReplaceNodes(ids, ops.EmbeddingLookup{Rows: rows, L: 10, D: 16}); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) >= before {
		t.Errorf("fusion did not shrink graph: %d -> %d", before, len(g.Nodes))
	}
}

func TestRemoveNode(t *testing.T) {
	g := tinyMLP(8)
	last := g.Nodes[2]
	if err := g.RemoveNode(last.ID); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
	// Removing a node with consumers must fail.
	if err := g.RemoveNode(g.Nodes[0].ID); err == nil {
		t.Fatal("RemoveNode allowed removing a consumed node")
	}
}

func TestMoveNodeRespectsDeps(t *testing.T) {
	g := New()
	a := g.Input(tensor.New(4, 8))
	g.Apply(ops.ReLU(), a)          // node 0
	g.Apply(ops.Sigmoid(), a)       // node 1 — independent of node 0
	relu2 := g.Apply(ops.ReLU(), a) // node 2
	g.Apply(ops.Sigmoid(), relu2[0])

	// Moving the independent sigmoid to front is legal.
	if err := g.MoveNode(g.Nodes[1].ID, 0); err != nil {
		t.Fatalf("legal move rejected: %v", err)
	}
	// Moving the dependent final sigmoid before its producer is illegal.
	lastID := g.Nodes[3].ID
	if err := g.MoveNode(lastID, 0); err == nil {
		t.Fatal("illegal move accepted")
	}
	// Graph must be unchanged after the failed move.
	if err := g.Validate(); err != nil {
		t.Fatalf("graph corrupted after rejected move: %v", err)
	}
}

func TestAssignStreams(t *testing.T) {
	g := New()
	a := g.Input(tensor.New(4, 8))
	r1 := g.Apply(ops.ReLU(), a)
	r2 := g.Apply(ops.Sigmoid(), a)
	g.Apply(ops.Add(), r1[0], r2[0])
	n := g.AssignStreams()
	if n < 2 {
		t.Fatalf("expected at least 2 streams for parallel branches, got %d", n)
	}
	if g.Nodes[0].Stream == g.Nodes[1].Stream {
		t.Error("independent branches share a stream")
	}
	// The join lands on one of its dependencies' streams.
	join := g.Nodes[2]
	if join.Stream != g.Nodes[0].Stream && join.Stream != g.Nodes[1].Stream {
		t.Error("join node on unrelated stream")
	}
	g.ResetStreams()
	for _, node := range g.Nodes {
		if node.Stream != 0 {
			t.Error("ResetStreams left a node off stream 0")
		}
	}
}

func TestExportDecodeRoundTrip(t *testing.T) {
	g := tinyMLP(32)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != len(g.Nodes) {
		t.Fatalf("decoded %d nodes, want %d", len(nodes), len(g.Nodes))
	}
	for i, n := range nodes {
		if n.Name != g.Nodes[i].Op.Name() {
			t.Errorf("node %d name %q != %q", i, n.Name, g.Nodes[i].Op.Name())
		}
		want := g.NodeKernels(g.Nodes[i])
		if len(n.Kernels) != len(want) {
			t.Errorf("node %d kernels %d != %d", i, len(n.Kernels), len(want))
			continue
		}
		for j := range want {
			if n.Kernels[j].String() != want[j].String() {
				t.Errorf("node %d kernel %d: %s != %s", i, j, n.Kernels[j], want[j])
			}
		}
	}
	// Dependency edges survive.
	if len(nodes[1].Deps) != 1 || nodes[1].Deps[0] != int(g.Nodes[0].ID) {
		t.Errorf("decoded deps = %v", nodes[1].Deps)
	}
}
