package graph

import (
	"testing"
	"testing/quick"

	"dlrmperf/internal/ops"
	"dlrmperf/internal/tensor"
	"dlrmperf/internal/xrand"
)

// TestFusionPreservesValidityProperty fuses random subsets of
// embedding-bag fan-outs and checks the graph stays structurally valid
// with the downstream consumer intact.
func TestFusionPreservesValidityProperty(t *testing.T) {
	rng := xrand.New(99)
	f := func(nRaw, batchRaw uint8) bool {
		n := int(nRaw%6) + 2 // 2..7 tables
		batch := int64(batchRaw%8+1) * 64
		g := New()
		idx := g.Input(tensor.NewTyped(tensor.Int64, batch, int64(n), 4))
		var outs []TensorID
		var ids []NodeID
		rows := make([]int64, n)
		for i := 0; i < n; i++ {
			rows[i] = int64(rng.Intn(100_000) + 100)
			o := g.Apply(ops.EmbeddingBag{Rows: rows[i], L: 4, D: 16}, idx)
			ids = append(ids, g.Producer(o[0]))
			outs = append(outs, o[0])
		}
		cat := g.Apply(ops.Concat{Dim: 1}, outs...)
		relu := g.Apply(ops.ReLU(), cat[0])

		before := g.TotalKernels()
		ids = append(ids, g.Producer(cat[0]))
		fused, err := g.ReplaceNodes(ids, ops.EmbeddingLookup{Rows: rows, L: 4, D: 16})
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		// The fused graph launches fewer kernels than n bags + a concat.
		if g.TotalKernels() >= before {
			return false
		}
		// Downstream relu depends on the fused node, and its shape holds.
		reluNode := g.Node(g.Producer(relu[0]))
		deps := g.Deps(reluNode)
		if len(deps) != 1 || deps[0] != fused.ID {
			return false
		}
		m := g.Meta(relu[0])
		return m.Dim(0) == batch && m.Dim(1) == int64(n) && m.Dim(2) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestResizePropagationProperty checks that resizing to an arbitrary
// batch updates every kernel's leading dimension consistently.
func TestResizePropagationProperty(t *testing.T) {
	f := func(b1Raw, b2Raw uint8) bool {
		b1 := int64(b1Raw%16+1) * 32
		b2 := int64(b2Raw%16+1) * 32
		g := New()
		x := g.Input(tensor.New(b1, 64))
		h := g.Apply(ops.Linear{Out: 32}, x)
		r := g.Apply(ops.ReLU(), h[0])
		g.Apply(ops.Linear{Out: 8}, r[0])
		if g.ResizeBatch(b2) != nil {
			return false
		}
		for _, n := range g.Nodes {
			for _, out := range n.Outputs {
				m := g.Meta(out)
				if m.Rank() > 0 && m.Dim(0) != b2 {
					return false
				}
			}
		}
		return g.BatchSize() == b2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
