package graph

import (
	"fmt"

	"dlrmperf/internal/ops"
)

// This file implements the execution-graph transforms of Section V-A:
// op fusion (Fig. 11), node removal/replacement for iterative model
// tuning, dependency-respecting reordering, and multi-stream
// parallelization.

// ReplaceNodes removes the nodes with the given IDs and splices a single
// fused node executing op in their place. The fused node consumes the
// external inputs of the removed set (in first-use order) and its outputs
// are rewired to the consumers of the removed nodes' outputs: the op's
// i-th output replaces the i-th *externally consumed* output of the
// removed set. This is the primitive behind the embedding-bag fusion
// case study.
func (g *Graph) ReplaceNodes(ids []NodeID, op ops.Op) (*Node, error) {
	removed := map[NodeID]bool{}
	for _, id := range ids {
		if g.Node(id) == nil {
			return nil, fmt.Errorf("graph: ReplaceNodes: unknown node %d", id)
		}
		removed[id] = true
	}

	// Collect internal outputs and external inputs of the removed set.
	internalOut := map[TensorID]bool{}
	for _, n := range g.Nodes {
		if !removed[n.ID] {
			continue
		}
		for _, out := range n.Outputs {
			internalOut[out] = true
		}
	}
	var extInputs []TensorID
	seenIn := map[TensorID]bool{}
	insertPos := -1
	for i, n := range g.Nodes {
		if !removed[n.ID] {
			continue
		}
		if insertPos < 0 {
			insertPos = i
		}
		for _, in := range n.Inputs {
			if !internalOut[in] && !seenIn[in] {
				seenIn[in] = true
				extInputs = append(extInputs, in)
			}
		}
	}
	if insertPos < 0 {
		return nil, fmt.Errorf("graph: ReplaceNodes: empty node set")
	}

	// Externally consumed outputs, in production order.
	consumed := map[TensorID]bool{}
	for _, n := range g.Nodes {
		if removed[n.ID] {
			continue
		}
		for _, in := range n.Inputs {
			if internalOut[in] {
				consumed[in] = true
			}
		}
	}
	var extOutputs []TensorID
	for _, n := range g.Nodes {
		if !removed[n.ID] {
			continue
		}
		for _, out := range n.Outputs {
			if consumed[out] {
				extOutputs = append(extOutputs, out)
			}
		}
	}

	outMetas := op.Outputs(g.inputMetas(extInputs))
	if len(outMetas) < len(extOutputs) {
		return nil, fmt.Errorf("graph: ReplaceNodes: op %s produces %d outputs but %d are consumed externally",
			op.Name(), len(outMetas), len(extOutputs))
	}

	fused := &Node{ID: g.nextNode, Op: op, Inputs: extInputs}
	g.nextNode++
	for i, m := range outMetas {
		var id TensorID
		if i < len(extOutputs) {
			id = extOutputs[i] // reuse the consumed tensor IDs
		} else {
			id = g.nextTensor
			g.nextTensor++
		}
		g.tensors[id] = m
		g.producers[id] = fused.ID
		fused.Outputs = append(fused.Outputs, id)
	}

	// Drop removed nodes, garbage-collect their unconsumed outputs, and
	// splice the fused node at the first removed position.
	var nodes []*Node
	for i, n := range g.Nodes {
		if i == insertPos {
			nodes = append(nodes, fused)
		}
		if removed[n.ID] {
			for _, out := range n.Outputs {
				if !consumed[out] {
					delete(g.tensors, out)
					delete(g.producers, out)
				}
			}
			continue
		}
		nodes = append(nodes, n)
	}
	g.Nodes = nodes
	if err := g.Propagate(); err != nil {
		return nil, err
	}
	return fused, nil
}

// RemoveNode deletes a node whose outputs are unused (e.g. dropping a
// layer during iterative tuning). It fails if any output has a consumer.
func (g *Graph) RemoveNode(id NodeID) error {
	n := g.Node(id)
	if n == nil {
		return fmt.Errorf("graph: RemoveNode: unknown node %d", id)
	}
	outs := map[TensorID]bool{}
	for _, o := range n.Outputs {
		outs[o] = true
	}
	for _, other := range g.Nodes {
		if other.ID == id {
			continue
		}
		for _, in := range other.Inputs {
			if outs[in] {
				return fmt.Errorf("graph: RemoveNode: node %d output %d still consumed by node %d",
					id, in, other.ID)
			}
		}
	}
	var nodes []*Node
	for _, other := range g.Nodes {
		if other.ID == id {
			continue
		}
		nodes = append(nodes, other)
	}
	g.Nodes = nodes
	for o := range outs {
		delete(g.tensors, o)
		delete(g.producers, o)
	}
	return nil
}

// MoveNode reorders node id to execute at position pos in the node list,
// provided data dependencies still hold; otherwise it returns an error.
// Reordering changes how host overheads overlap device work, which is
// one of the optimization questions the performance model answers.
func (g *Graph) MoveNode(id NodeID, pos int) error {
	from := -1
	for i, n := range g.Nodes {
		if n.ID == id {
			from = i
			break
		}
	}
	if from < 0 {
		return fmt.Errorf("graph: MoveNode: unknown node %d", id)
	}
	if pos < 0 || pos >= len(g.Nodes) {
		return fmt.Errorf("graph: MoveNode: position %d out of range", pos)
	}
	n := g.Nodes[from]
	nodes := append([]*Node(nil), g.Nodes[:from]...)
	nodes = append(nodes, g.Nodes[from+1:]...)
	nodes = append(nodes[:pos], append([]*Node{n}, nodes[pos:]...)...)
	old := g.Nodes
	g.Nodes = nodes
	if err := g.Validate(); err != nil {
		g.Nodes = old
		return fmt.Errorf("graph: MoveNode would violate dependencies: %w", err)
	}
	return nil
}

// AssignStreams places independent branches on distinct GPU streams. Two
// nodes are independent when neither transitively consumes the other's
// outputs. The transform greedily colors each node: the first consumer
// of a producer inherits its stream, later consumers (fan-out branches)
// get fresh streams, and join points collapse onto the smallest incoming
// stream — a simple but effective heuristic for DLRM's parallel
// embedding/MLP branches. It returns the number of streams used.
func (g *Graph) AssignStreams() int {
	streamOf := map[NodeID]int{}
	branched := map[NodeID]bool{} // producer already has a same-stream consumer
	next := 0
	fresh := func() int {
		s := next
		next++
		return s
	}
	for _, n := range g.Nodes {
		deps := g.Deps(n)
		switch len(deps) {
		case 0:
			n.Stream = fresh()
		case 1:
			d := deps[0]
			if branched[d] {
				// Fan-out: a sibling already continues the producer's
				// stream, so this branch runs concurrently on a new one.
				n.Stream = fresh()
			} else {
				n.Stream = streamOf[d]
				branched[d] = true
			}
		default:
			// Join points collapse onto the smallest incoming stream.
			s := streamOf[deps[0]]
			for _, d := range deps[1:] {
				if streamOf[d] < s {
					s = streamOf[d]
				}
			}
			n.Stream = s
		}
		streamOf[n.ID] = n.Stream
	}
	if next == 0 {
		next = 1
	}
	return next
}

// ResetStreams places every node back on stream 0 (the capture default).
func (g *Graph) ResetStreams() {
	for _, n := range g.Nodes {
		n.Stream = 0
	}
}
