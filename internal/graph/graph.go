// Package graph implements the model execution graph: the artifact the
// paper's PyTorch observer extracts during a training iteration, holding
// every executed operator, its input/output tensors, and hence the data
// dependencies between ops. The graph is the input to both the simulator
// (which "runs" it to produce measured traces) and the end-to-end
// performance model (Algorithm 1).
//
// Because ops derive their kernels from tensor metadata, the graph is
// mutable in exactly the ways Section V-A needs for model-system
// co-design: batch resizing, op fusion, reordering, and multi-stream
// parallelization, all without re-capturing the model.
package graph

import (
	"fmt"

	"dlrmperf/internal/kernels"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/tensor"
)

// TensorID identifies a tensor value in the graph.
type TensorID int

// NodeID identifies an operator node in the graph.
type NodeID int

// Node is one executed operator.
type Node struct {
	ID      NodeID
	Op      ops.Op
	Inputs  []TensorID
	Outputs []TensorID
	// Stream is the GPU stream the node's kernels are issued to. The
	// capture default is stream 0; the parallelize transform reassigns
	// independent branches.
	Stream int
}

// Graph is an execution graph. Nodes appear in captured execution order,
// which is also the host issue order during simulation and prediction.
type Graph struct {
	Nodes   []*Node
	tensors map[TensorID]tensor.Meta
	// sources are graph inputs (model inputs, labels): tensors not
	// produced by any node.
	sources    []TensorID
	producers  map[TensorID]NodeID
	nextTensor TensorID
	nextNode   NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		tensors:   make(map[TensorID]tensor.Meta),
		producers: make(map[TensorID]NodeID),
	}
}

// Input registers a graph input tensor (e.g. the dense feature batch) and
// returns its ID.
func (g *Graph) Input(m tensor.Meta) TensorID {
	id := g.nextTensor
	g.nextTensor++
	g.tensors[id] = m
	g.sources = append(g.sources, id)
	return id
}

// Meta returns the metadata of tensor id.
func (g *Graph) Meta(id TensorID) tensor.Meta {
	m, ok := g.tensors[id]
	if !ok {
		panic(fmt.Sprintf("graph: unknown tensor %d", id))
	}
	return m
}

// Sources returns the graph input tensor IDs.
func (g *Graph) Sources() []TensorID { return append([]TensorID(nil), g.sources...) }

// Apply appends a node executing op on the given inputs and returns the
// IDs of its output tensors.
func (g *Graph) Apply(op ops.Op, inputs ...TensorID) []TensorID {
	metas := g.inputMetas(inputs)
	outMetas := op.Outputs(metas)
	node := &Node{
		ID:     g.nextNode,
		Op:     op,
		Inputs: append([]TensorID(nil), inputs...),
	}
	g.nextNode++
	for _, m := range outMetas {
		id := g.nextTensor
		g.nextTensor++
		g.tensors[id] = m
		g.producers[id] = node.ID
		node.Outputs = append(node.Outputs, id)
	}
	g.Nodes = append(g.Nodes, node)
	return node.Outputs
}

func (g *Graph) inputMetas(inputs []TensorID) []tensor.Meta {
	metas := make([]tensor.Meta, len(inputs))
	for i, id := range inputs {
		metas[i] = g.Meta(id)
	}
	return metas
}

// NodeKernels returns the kernels node n launches under the current
// tensor shapes.
func (g *Graph) NodeKernels(n *Node) []kernels.Kernel {
	return n.Op.Kernels(g.inputMetas(n.Inputs))
}

// Producer returns the node producing tensor id, or -1 for graph inputs.
func (g *Graph) Producer(id TensorID) NodeID {
	if p, ok := g.producers[id]; ok {
		return p
	}
	return -1
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node {
	for _, n := range g.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// Deps returns the IDs of the nodes whose outputs node n consumes.
func (g *Graph) Deps(n *Node) []NodeID {
	var deps []NodeID
	seen := map[NodeID]bool{}
	for _, in := range n.Inputs {
		if p := g.Producer(in); p >= 0 && !seen[p] {
			seen[p] = true
			deps = append(deps, p)
		}
	}
	return deps
}

// Validate checks structural integrity: every node input is either a
// graph source or produced by an earlier node, and every node's declared
// outputs exist.
func (g *Graph) Validate() error {
	produced := map[TensorID]bool{}
	for _, s := range g.sources {
		produced[s] = true
	}
	for i, n := range g.Nodes {
		for _, in := range n.Inputs {
			if !produced[in] {
				return fmt.Errorf("graph: node %d (%s) at position %d consumes tensor %d before it is produced",
					n.ID, n.Op.Name(), i, in)
			}
		}
		for _, out := range n.Outputs {
			if _, ok := g.tensors[out]; !ok {
				return fmt.Errorf("graph: node %d (%s) declares unknown output tensor %d", n.ID, n.Op.Name(), out)
			}
			produced[out] = true
		}
	}
	return nil
}

// Propagate recomputes every tensor's metadata from the sources through
// the node list, in order. It must be called after mutating source shapes
// (e.g. ResizeBatch) or editing nodes.
func (g *Graph) Propagate() error {
	if err := g.Validate(); err != nil {
		return err
	}
	for _, n := range g.Nodes {
		outMetas := n.Op.Outputs(g.inputMetas(n.Inputs))
		if len(outMetas) != len(n.Outputs) {
			return fmt.Errorf("graph: node %d (%s) output arity changed from %d to %d",
				n.ID, n.Op.Name(), len(n.Outputs), len(outMetas))
		}
		for i, m := range outMetas {
			g.tensors[n.Outputs[i]] = m
		}
	}
	return nil
}

// ResizeBatch sets the leading dimension of every graph input to b and
// re-propagates shapes — the paper's "change batch size and re-predict"
// what-if, done without re-capturing the model.
func (g *Graph) ResizeBatch(b int64) error {
	for _, s := range g.sources {
		g.tensors[s] = g.tensors[s].WithBatch(b)
	}
	return g.Propagate()
}

// BatchSize returns the leading dimension of the first non-scalar source.
func (g *Graph) BatchSize() int64 {
	for _, s := range g.sources {
		if m := g.tensors[s]; m.Rank() > 0 {
			return m.Dim(0)
		}
	}
	return 0
}

// TotalKernels counts the kernels launched by one execution of the graph.
func (g *Graph) TotalKernels() int {
	n := 0
	for _, node := range g.Nodes {
		n += len(g.NodeKernels(node))
	}
	return n
}

// Clone returns a deep copy of the graph (ops are immutable values and
// are shared).
func (g *Graph) Clone() *Graph {
	c := New()
	c.nextTensor = g.nextTensor
	c.nextNode = g.nextNode
	c.sources = append([]TensorID(nil), g.sources...)
	for id, m := range g.tensors {
		c.tensors[id] = m
	}
	for id, p := range g.producers {
		c.producers[id] = p
	}
	for _, n := range g.Nodes {
		c.Nodes = append(c.Nodes, &Node{
			ID:      n.ID,
			Op:      n.Op,
			Inputs:  append([]TensorID(nil), n.Inputs...),
			Outputs: append([]TensorID(nil), n.Outputs...),
			Stream:  n.Stream,
		})
	}
	return c
}
