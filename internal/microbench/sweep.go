package microbench

import (
	"fmt"

	"dlrmperf/internal/kernels"
	"dlrmperf/internal/xrand"
)

// GenerateKernels produces n pseudo-random shapes of the given kind on an
// exponential size scale (Section III-B2: "input sizes of the benchmark
// are chosen in an almost exponential scale, e.g. 32, 64, 128"), with
// mild jitter so quantization effects are exercised, not just grid
// points.
func GenerateKernels(kind kernels.Kind, n int, rng *xrand.Rand) []kernels.Kernel {
	out := make([]kernels.Kernel, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, generateOne(kind, rng))
	}
	return out
}

// expChoice returns a power of two in [2^lo, 2^hi].
func expChoice(rng *xrand.Rand, lo, hi int) int64 {
	return int64(1) << (lo + rng.Intn(hi-lo+1))
}

// jitter perturbs v by up to +/-frac, at least keeping it >= 1.
func jitter(rng *xrand.Rand, v int64, frac float64) int64 {
	d := int64(float64(v) * frac * (2*rng.Float64() - 1))
	v += d
	if v < 1 {
		v = 1
	}
	return v
}

func generateOne(kind kernels.Kind, rng *xrand.Rand) kernels.Kernel {
	switch kind {
	case kernels.KindGEMM:
		// Mix plain (batch 1) and batched GEMMs. Dimensions go all the
		// way down to 1: DLRM's output layer is an N=1 GEMM, and the
		// interaction bmm has M=N=T+1 around 10.
		batch := int64(1)
		if rng.Float64() < 0.35 {
			batch = expChoice(rng, 3, 13) // 8..8192
		}
		return kernels.GEMM{
			Batch: batch,
			M:     jitter(rng, expChoice(rng, 0, 13), 0.2), // 1..8192
			N:     jitter(rng, expChoice(rng, 0, 13), 0.2),
			K:     jitter(rng, expChoice(rng, 0, 13), 0.2),
		}
	case kernels.KindEmbeddingFwd, kernels.KindEmbeddingBwd:
		// E spans small (fully cached) to industrial-scale tables.
		e := int64(float64(expChoice(rng, 9, 24)) * (0.75 + 0.5*rng.Float64())) // ~512..16M
		return kernels.Embedding{
			B:        expChoice(rng, 8, 13), // 256..8192 (training batch range)
			E:        e,
			T:        []int64{1, 2, 4, 8, 16, 26, 32}[rng.Intn(7)],
			L:        []int64{1, 2, 4, 8, 10, 16, 32, 64, 100}[rng.Intn(9)],
			D:        []int64{16, 32, 64, 128, 256}[rng.Intn(5)],
			Backward: kind == kernels.KindEmbeddingBwd,
		}
	case kernels.KindConcat:
		return kernels.Concat{
			OutBytes: jitter(rng, expChoice(rng, 10, 27), 0.3), // 1KB..128MB
			NInputs:  2 + rng.Intn(26),
		}
	case kernels.KindMemcpyH2D:
		return kernels.Memcpy{NBytes: jitter(rng, expChoice(rng, 10, 27), 0.3), Dir: kernels.H2D}
	case kernels.KindMemcpyD2H:
		return kernels.Memcpy{NBytes: jitter(rng, expChoice(rng, 10, 27), 0.3), Dir: kernels.D2H}
	case kernels.KindMemcpyD2D:
		return kernels.Memcpy{NBytes: jitter(rng, expChoice(rng, 10, 27), 0.3), Dir: kernels.D2D}
	case kernels.KindTranspose:
		// Include non-multiples of 32 so alignment penalties are sampled,
		// and very small M/N: DLRM's interaction transposes are (B, F, D)
		// with F around 10.
		return kernels.Transpose{
			B: expChoice(rng, 0, 12),
			M: jitter(rng, expChoice(rng, 2, 11), 0.3),
			N: jitter(rng, expChoice(rng, 2, 11), 0.3),
		}
	case kernels.KindTrilFwd, kernels.KindTrilBwd:
		return kernels.Tril{
			B:        expChoice(rng, 6, 13),
			F:        4 + int64(rng.Intn(60)), // interaction features 4..63
			Backward: kind == kernels.KindTrilBwd,
		}
	case kernels.KindElementwise:
		return kernels.Elementwise{
			Name:          "bench",
			NElems:        jitter(rng, expChoice(rng, 10, 26), 0.3),
			ReadsPerElem:  4 * float64(1+rng.Intn(2)),
			WritesPerElem: 4,
			FLOPsPerElem:  float64(rng.Intn(4)),
		}
	case kernels.KindConv:
		// CNN-flavored shapes, including pointwise and asymmetric filters.
		hws := []int64{7, 8, 14, 17, 28, 35, 56, 112, 149}
		hw := hws[rng.Intn(len(hws))]
		rs := [][2]int64{{1, 1}, {3, 3}, {5, 5}, {7, 7}, {1, 7}, {7, 1}, {1, 3}, {3, 1}}
		f := rs[rng.Intn(len(rs))]
		stride := int64(1)
		if rng.Float64() < 0.25 {
			stride = 2
		}
		// Mix valid (pad 0) and same padding; the "same" pad of an
		// asymmetric filter follows its longer axis.
		maxF := f[0]
		if f[1] > maxF {
			maxF = f[1]
		}
		pad := int64(0)
		if rng.Float64() < 0.6 {
			pad = maxF / 2
		}
		padH, padW := pad, pad
		if m := (f[0] - 1) / 2; padH > m {
			padH = m
		}
		if m := (f[1] - 1) / 2; padW > m {
			padW = m
		}
		return kernels.Conv{
			// Channel counts are jittered off the power-of-two grid: real
			// networks use 48/80/192/768-style widths.
			N: expChoice(rng, 2, 7),                    // 4..128
			C: jitter(rng, expChoice(rng, 4, 11), 0.4), // up to ~2.8k channels
			H: hw, W: hw,
			K: jitter(rng, expChoice(rng, 4, 11), 0.4),
			R: f[0], S: f[1],
			Stride: stride,
			PadH:   padH, PadW: padW,
		}
	case kernels.KindBatchNorm:
		hws := []int64{7, 14, 28, 56, 112}
		hw := hws[rng.Intn(len(hws))]
		return kernels.BatchNorm{
			N: expChoice(rng, 2, 7),
			C: expChoice(rng, 4, 10),
			H: hw, W: hw,
		}
	}
	panic(fmt.Sprintf("microbench: no sweep for kind %v", kind))
}

// DefaultSweepSizes returns the per-kind shape counts of the default
// (fast) sweep. The paper's full sweep is ~30k shapes per kernel; these
// defaults keep the whole calibration pipeline in seconds while leaving
// plenty of training data for the ML models.
func DefaultSweepSizes() map[kernels.Kind]int {
	return map[kernels.Kind]int{
		kernels.KindGEMM:         2600,
		kernels.KindEmbeddingFwd: 900,
		kernels.KindEmbeddingBwd: 900,
		kernels.KindConcat:       500,
		kernels.KindMemcpyH2D:    400,
		kernels.KindTranspose:    1500,
		kernels.KindTrilFwd:      600,
		kernels.KindTrilBwd:      600,
		kernels.KindElementwise:  500,
		kernels.KindConv:         2000,
		kernels.KindBatchNorm:    400,
	}
}
