package microbench

import (
	"encoding/json"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/xrand"
)

func TestGenerateKernelsKindAndCount(t *testing.T) {
	rng := xrand.New(1)
	for _, kind := range []kernels.Kind{
		kernels.KindGEMM, kernels.KindEmbeddingFwd, kernels.KindEmbeddingBwd,
		kernels.KindConcat, kernels.KindMemcpyH2D, kernels.KindTranspose,
		kernels.KindTrilFwd, kernels.KindTrilBwd, kernels.KindElementwise,
		kernels.KindConv, kernels.KindBatchNorm,
	} {
		ks := GenerateKernels(kind, 50, rng)
		if len(ks) != 50 {
			t.Fatalf("%s: %d kernels", kind, len(ks))
		}
		for _, k := range ks {
			if k.Kind() != kind {
				t.Fatalf("%s sweep produced %s kernel", kind, k.Kind())
			}
		}
	}
}

func TestSweepCoversSmallAndLargeTables(t *testing.T) {
	rng := xrand.New(2)
	ks := GenerateKernels(kernels.KindEmbeddingFwd, 400, rng)
	small, large := 0, 0
	for _, k := range ks {
		e := k.(kernels.Embedding)
		if e.E < 10_000 {
			small++
		}
		if e.E > 1_000_000 {
			large++
		}
	}
	if small < 20 || large < 20 {
		t.Errorf("table size coverage thin: %d small, %d large", small, large)
	}
}

func TestSweepCoversAsymmetricConvs(t *testing.T) {
	rng := xrand.New(3)
	ks := GenerateKernels(kernels.KindConv, 400, rng)
	asym := 0
	for _, k := range ks {
		c := k.(kernels.Conv)
		if c.R != c.S {
			asym++
		}
	}
	if asym < 50 {
		t.Errorf("asymmetric conv coverage = %d/400", asym)
	}
}

func TestCollectKindMeasures(t *testing.T) {
	ds := CollectKind(hw.V100Platform().GPU, kernels.KindTrilFwd, 40, 7)
	if len(ds.Samples) != 40 {
		t.Fatalf("samples = %d", len(ds.Samples))
	}
	if ds.Kind != kernels.KindTrilFwd || ds.Device != hw.V100 {
		t.Errorf("dataset identity wrong: %s %s", ds.Device, ds.Kind)
	}
	for _, s := range ds.Samples {
		if s.Time <= 0 {
			t.Fatalf("non-positive measured time for %s", s.Kernel)
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	ds := CollectKind(hw.V100Platform().GPU, kernels.KindConcat, 100, 9)
	train, test := ds.Split(0.8, 3)
	if len(train.Samples) != 80 || len(test.Samples) != 20 {
		t.Fatalf("split sizes: %d/%d", len(train.Samples), len(test.Samples))
	}
	// Same seed -> same split.
	train2, _ := ds.Split(0.8, 3)
	for i := range train.Samples {
		if train.Samples[i].Kernel.String() != train2.Samples[i].Kernel.String() {
			t.Fatal("split not deterministic")
		}
	}
}

func TestFilter(t *testing.T) {
	ds := CollectKind(hw.V100Platform().GPU, kernels.KindEmbeddingFwd, 100, 11)
	big := ds.Filter(func(k kernels.Kernel) bool {
		return k.(kernels.Embedding).E > 100_000
	})
	if len(big.Samples) == 0 || len(big.Samples) == len(ds.Samples) {
		t.Errorf("filter kept %d of %d", len(big.Samples), len(ds.Samples))
	}
}

func TestFeaturesShape(t *testing.T) {
	ds := CollectKind(hw.V100Platform().GPU, kernels.KindGEMM, 30, 13)
	X, Y := ds.Features()
	if len(X) != 30 || len(Y) != 30 {
		t.Fatalf("features: %d/%d", len(X), len(Y))
	}
	for i := range X {
		if len(X[i]) != 4 {
			t.Fatalf("GEMM feature width = %d", len(X[i]))
		}
		if Y[i] == 0 {
			t.Error("log time exactly zero is suspicious")
		}
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	ds := CollectKind(hw.V100Platform().GPU, kernels.KindTranspose, 25, 17)
	data, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	var got Dataset
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != ds.Kind || got.Device != ds.Device || len(got.Samples) != len(ds.Samples) {
		t.Fatal("round trip changed dataset identity")
	}
	for i := range ds.Samples {
		if got.Samples[i].Time != ds.Samples[i].Time {
			t.Fatal("round trip changed sample time")
		}
		if got.Samples[i].Kernel.String() != ds.Samples[i].Kernel.String() {
			t.Fatal("round trip changed kernel")
		}
	}
}

func TestDefaultSweepSizesCoverDominatingKinds(t *testing.T) {
	sizes := DefaultSweepSizes()
	for _, kind := range []kernels.Kind{
		kernels.KindGEMM, kernels.KindEmbeddingFwd, kernels.KindEmbeddingBwd,
		kernels.KindConcat, kernels.KindMemcpyH2D, kernels.KindTranspose,
		kernels.KindTrilFwd, kernels.KindTrilBwd,
	} {
		if sizes[kind] < 100 {
			t.Errorf("%s sweep size = %d", kind, sizes[kind])
		}
	}
}
