// Package microbench implements the paper's microbenchmark track: for
// each dominating kernel family it sweeps a wide range of shapes on an
// exponential scale, executes each shape on the (simulated) device for a
// number of warmed-up iterations, and collects (kernel, mean time)
// datasets used to fit and evaluate kernel performance models.
//
// The paper sweeps up to 30k shapes per kernel over days of GPU time;
// the default sweep here is ~1k shapes (seconds of simulation), with the
// sample count a caller-controlled knob.
package microbench

import (
	"encoding/json"
	"fmt"
	"math"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/xrand"
)

// Sample is one measured shape.
type Sample struct {
	Kernel kernels.Kernel
	// Time is the mean measured execution time in µs.
	Time float64
}

// Dataset is the benchmark result for one kernel kind on one device.
type Dataset struct {
	Device  string
	Kind    kernels.Kind
	Samples []Sample
}

// BenchIters is the paper's per-shape measurement count (30 iterations
// after warm-up).
const BenchIters = 30

// Features returns the ML-model training matrix: per-sample feature
// vectors and natural-log times.
func (d *Dataset) Features() (X [][]float64, Y []float64) {
	for _, s := range d.Samples {
		X = append(X, s.Kernel.Features())
		Y = append(Y, logTime(s.Time))
	}
	return X, Y
}

func logTime(t float64) float64 {
	if t <= 0 {
		t = 1e-6
	}
	return math.Log(t)
}

// Split partitions the dataset into train/test by a seeded permutation.
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, test *Dataset) {
	rng := xrand.New(seed)
	perm := rng.Perm(len(d.Samples))
	cut := int(float64(len(d.Samples)) * trainFrac)
	train = &Dataset{Device: d.Device, Kind: d.Kind}
	test = &Dataset{Device: d.Device, Kind: d.Kind}
	for i, p := range perm {
		if i < cut {
			train.Samples = append(train.Samples, d.Samples[p])
		} else {
			test.Samples = append(test.Samples, d.Samples[p])
		}
	}
	return train, test
}

// Filter returns the subset of samples for which keep returns true.
func (d *Dataset) Filter(keep func(kernels.Kernel) bool) *Dataset {
	out := &Dataset{Device: d.Device, Kind: d.Kind}
	for _, s := range d.Samples {
		if keep(s.Kernel) {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// Collect measures every kernel in ks on dev.
func Collect(dev *kernels.Device, kind kernels.Kind, ks []kernels.Kernel) *Dataset {
	d := &Dataset{Device: dev.GPU.Name, Kind: kind}
	for _, k := range ks {
		d.Samples = append(d.Samples, Sample{Kernel: k, Time: dev.RunAveraged(k, BenchIters)})
	}
	return d
}

// CollectKind sweeps n shapes of the given kind on gpu and measures them.
func CollectKind(gpu hw.GPU, kind kernels.Kind, n int, seed uint64) *Dataset {
	rng := xrand.New(seed)
	dev := kernels.NewDevice(gpu, rng.Split().Uint64())
	return Collect(dev, kind, GenerateKernels(kind, n, rng))
}

// --- serialization --------------------------------------------------------

type wireSample struct {
	Kernel json.RawMessage `json:"kernel"`
	Time   float64         `json:"time_us"`
}

type wireDataset struct {
	Device  string       `json:"device"`
	Kind    string       `json:"kind"`
	Samples []wireSample `json:"samples"`
}

// MarshalJSON implements json.Marshaler.
func (d *Dataset) MarshalJSON() ([]byte, error) {
	w := wireDataset{Device: d.Device, Kind: d.Kind.String()}
	for _, s := range d.Samples {
		raw, err := kernels.MarshalKernel(s.Kernel)
		if err != nil {
			return nil, err
		}
		w.Samples = append(w.Samples, wireSample{Kernel: raw, Time: s.Time})
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dataset) UnmarshalJSON(data []byte) error {
	var w wireDataset
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	d.Device = w.Device
	kind, err := kindFromString(w.Kind)
	if err != nil {
		return err
	}
	d.Kind = kind
	d.Samples = nil
	for _, s := range w.Samples {
		k, err := kernels.UnmarshalKernel(s.Kernel)
		if err != nil {
			return err
		}
		d.Samples = append(d.Samples, Sample{Kernel: k, Time: s.Time})
	}
	return nil
}

func kindFromString(s string) (kernels.Kind, error) {
	for _, k := range kernels.Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("microbench: unknown kind %q", s)
}
