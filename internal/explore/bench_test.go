package explore

import (
	"context"
	"testing"

	"dlrmperf"
	"dlrmperf/internal/xrand"
)

// BenchmarkExploreWarm is the acceptance benchmark for the sweep fast
// path: one full Sweep of the checked-in demo grid (16 grid points, 8
// unique configs) per iteration against a fully warm engine, so every
// prediction is a result-cache hit. The paper-facing claim of ≥ 100k
// configs/sec over the 16-point grid translates to ns/op ≤ 160000 —
// the ratcheted benchdiff baseline locks it in.
func BenchmarkExploreWarm(b *testing.B) {
	eng := benchEngine(b, 0)
	g := loadGrid(b)
	warmup(b, eng, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(context.Background(), eng, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreCold measures the sweep with the result cache
// disabled — every unique config re-walks its compiled plan — over a
// Zipf-skewed batch axis (a realistic exploration has heavy repetition
// of popular batch sizes). Assets (calibrations, plans) are warmed
// before the timer so only per-prediction work is measured.
func BenchmarkExploreCold(b *testing.B) {
	eng := benchEngine(b, -1)
	candidates := []int64{256, 512, 768, 1024, 1536, 2048, 3072, 4096}
	batches := make([]int64, 0, 12)
	for _, idx := range xrand.ZipfStream(xrand.New(7), len(candidates), 1.1, 12) {
		batches = append(batches, candidates[idx])
	}
	g := Grid{
		Scenarios: []string{"dlrm-default", "dlrm-ddp"},
		Devices:   []string{dlrmperf.V100},
		GPUs:      []int{1, 2},
		Batches:   batches,
	}
	warmup(b, eng, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(context.Background(), eng, g); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngine builds a low-fidelity V100 engine with the given result
// cache size (0 = default, -1 = disabled).
func benchEngine(b *testing.B, cacheSize int) *dlrmperf.Engine {
	b.Helper()
	cfg := dlrmperf.FastCalibConfig(17, 4)
	cfg.Devices = []string{dlrmperf.V100}
	cfg.ResultCacheSize = cacheSize
	eng, err := dlrmperf.NewEngineWith(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// warmup runs one untimed sweep to pay calibrations, plan compilation,
// and (when enabled) result-cache fills before the measured loop.
func warmup(b *testing.B, eng *dlrmperf.Engine, g Grid) {
	b.Helper()
	rep, err := Sweep(context.Background(), eng, g)
	if err != nil {
		b.Fatal(err)
	}
	if rep.Failed != 0 {
		b.Fatalf("warm-up sweep failed %d predictions: %+v", rep.Failed, rep.FailedSamples)
	}
}
