package explore

import (
	"context"
	"time"

	"dlrmperf"
)

// Sweep expands the grid and drives it through one in-process engine:
// the unique units fan out across the engine's bounded worker pool via
// PredictBatchContext (warm units are served inline from the result
// cache; misses share the pool with the rest of the process), and
// every result streams into the online aggregates. Canceling ctx
// abandons the remaining units cleanly — each reports the context
// error — without poisoning any in-flight computation.
func Sweep(ctx context.Context, eng *dlrmperf.Engine, g Grid) (*Report, error) {
	ex, err := Expand(g)
	if err != nil {
		return nil, err
	}
	return SweepExpansion(ctx, eng, ex), nil
}

// SweepExpansion is Sweep over an already-expanded grid, so callers
// that need the expansion (to size-cap it, or to reuse it) expand once.
func SweepExpansion(ctx context.Context, eng *dlrmperf.Engine, ex *Expansion) *Report {
	start := time.Now() //lint:allow deterministic wall-clock elapsed for the report only; frontier identity is fingerprint-keyed
	agg := NewAggregator(ex)
	res := eng.PredictBatchContext(ctx, ex.Requests())
	for i := range res {
		agg.Add(i, OutcomeOf(res[i]))
	}
	rep := agg.Report(time.Since(start))
	assets := eng.AssetStats()
	rep.Assets = &assets
	return rep
}
