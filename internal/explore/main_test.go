package explore

import (
	"testing"

	"dlrmperf/internal/leakcheck"
)

// TestMain guards the package against leaked goroutines: a sweep whose
// cancellation strands engine fan-out workers fails the suite.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
