// Package explore is the high-throughput design-space exploration
// layer over the prediction engine — the surface the paper's whole
// premise points at: choosing a DLRM training configuration *without
// running it* means sweeping a configuration space (workload family ×
// GPU count × communication model × batch size × overhead mode) and
// reading the frontier off the predictions.
//
// A Grid names per-axis value lists; Expand crosses them into concrete
// points, rejects the ones scenario validation refuses (counted, never
// dispatched), and deduplicates the rest by resolved scenario
// fingerprint — distinct grid points can canonicalize to the same spec
// (comm "" and "nvlink" are one identity at width > 1), and a sweep
// must never predict one spec twice. The unique list comes out
// device-major, so pinned calibration assets and compiled plans are
// touched in cache-friendly order. Sweep fans the unique requests
// through the engine's bounded worker pool (PredictBatchContext,
// context-threaded: a canceled exploration abandons cleanly without
// poisoning the singleflight) and streams every result into an
// incremental Pareto frontier — no O(n²) post-pass, memory
// proportional to the frontier and the top-N table, not the grid.
package explore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dlrmperf"
	"dlrmperf/internal/scenario"
)

// Grid is the JSON exploration request: one value list per axis, the
// cross-product of which is the design space. Scenarios and Devices
// are required; every other axis defaults to a one-element list that
// keeps the scenario's own default (width 0, batch 0, single-shot comm
// and overhead mode).
type Grid struct {
	// Scenarios lists registered scenario generator names (the workload
	// family × sharding strategy axis — e.g. dlrm-default vs dlrm-ddp).
	Scenarios []string `json:"scenarios"`
	// Devices lists hardware device names (V100, P100, ...).
	Devices []string `json:"devices"`
	// GPUs lists execution widths; 0 keeps each scenario's default.
	GPUs []int `json:"gpus,omitempty"`
	// Comms lists interconnect models ("" keeps the default, "nvlink",
	// "pcie"). Comm values on single-device points are rejected by
	// scenario validation and reported in the rejected count.
	Comms []string `json:"comms,omitempty"`
	// Batches lists global batch sizes; 0 keeps each scenario's default.
	Batches []int64 `json:"batches,omitempty"`
	// Shared lists overhead modes (false: per-workload overhead DB,
	// true: the device's shared cross-DLRM DB).
	Shared []bool `json:"shared,omitempty"`
	// Top bounds the best-configurations table in the report (default
	// 16, capped at 64 — the report stays small however large the grid).
	Top int `json:"top,omitempty"`
	// TimeoutMs optionally bounds each dispatched prediction on the
	// serving paths (ignored by the in-process Sweep, which is bounded
	// by the caller's context).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// topCap bounds the report's best-configurations table regardless of
// what the grid asks for.
const topCap = 64

// withDefaults fills the optional axes with one-element default lists
// and clamps Top.
func (g Grid) withDefaults() Grid {
	if len(g.GPUs) == 0 {
		g.GPUs = []int{0}
	}
	if len(g.Comms) == 0 {
		g.Comms = []string{""}
	}
	if len(g.Batches) == 0 {
		g.Batches = []int64{0}
	}
	if len(g.Shared) == 0 {
		g.Shared = []bool{false}
	}
	if g.Top <= 0 {
		g.Top = 16
	}
	if g.Top > topCap {
		g.Top = topCap
	}
	return g
}

// Size returns the cross-product cardinality of the grid after
// defaulting — the number of points Expand will visit.
func (g Grid) Size() int {
	g = g.withDefaults()
	return len(g.Scenarios) * len(g.Devices) * len(g.GPUs) *
		len(g.Comms) * len(g.Batches) * len(g.Shared)
}

// Point is one concrete grid coordinate.
type Point struct {
	Scenario string `json:"scenario"`
	Device   string `json:"device"`
	GPUs     int    `json:"gpus,omitempty"`
	Comm     string `json:"comm,omitempty"`
	Batch    int64  `json:"batch,omitempty"`
	Shared   bool   `json:"shared,omitempty"`
}

// Request maps the point onto the facade request that predicts it.
func (p Point) Request() dlrmperf.PredictRequest {
	return dlrmperf.PredictRequest{
		Scenario: p.Scenario, Device: p.Device, GPUs: p.GPUs,
		Comm: p.Comm, Batch: p.Batch, SharedOverheads: p.Shared,
	}
}

// Unit is one deduplicated unit of prediction work: the first grid
// point that resolved to its (device, fingerprint, shared) identity,
// plus how many later points collapsed into it.
type Unit struct {
	Point Point
	// Spec is the resolved, validated scenario (defaults applied).
	Spec scenario.Spec
	// Key is the dedup identity: device | spec fingerprint | overhead
	// mode — the same identity the engine's result cache keys on.
	Key string
	// Dups counts the other grid points that resolved to this unit.
	Dups int
}

// Rejection samples one grid point that failed scenario validation.
type Rejection struct {
	Point Point  `json:"point"`
	Error string `json:"error"`
}

// rejectedSampleCap bounds the rejection samples carried in a report;
// the rejected *count* is always exact.
const rejectedSampleCap = 16

// Expansion is the expanded, deduplicated, validated form of a grid.
// Coverage is exact: Total == len(Unique) + Duplicates() + Rejected.
type Expansion struct {
	Grid  Grid
	Total int
	// Unique holds one unit per distinct prediction, in device-major
	// order: all of one device's work is contiguous, so calibrations and
	// compiled plans are touched in cache-friendly runs (and the cluster
	// path keeps one worker's requests together in flight).
	Unique []Unit
	// Rejected counts grid points scenario validation refused — they
	// are never dispatched, mirroring the engine's RejectedRequests
	// accounting at the explore layer so a partially-invalid grid
	// reports exact coverage instead of silently shrinking.
	Rejected        int
	RejectedSamples []Rejection
}

// Duplicates counts the grid points that collapsed into an earlier
// unit.
func (ex *Expansion) Duplicates() int {
	return ex.Total - len(ex.Unique) - ex.Rejected
}

// Expand crosses the grid's axes, resolves each point to its scenario
// spec, rejects validation failures, and deduplicates by fingerprint.
// The device axis iterates outermost, so Unique is device-major by
// construction. Only structurally empty grids error; per-point
// failures (unknown scenario names included) land in Rejected.
func Expand(g Grid) (*Expansion, error) {
	g = g.withDefaults()
	if len(g.Scenarios) == 0 {
		return nil, fmt.Errorf("explore: grid needs at least one scenario")
	}
	if len(g.Devices) == 0 {
		return nil, fmt.Errorf("explore: grid needs at least one device")
	}
	ex := &Expansion{Grid: g}
	seen := make(map[string]int)
	var kb []byte
	for _, dev := range g.Devices {
		for _, sc := range g.Scenarios {
			for _, width := range g.GPUs {
				for _, comm := range g.Comms {
					for _, batch := range g.Batches {
						for _, shared := range g.Shared {
							ex.Total++
							p := Point{Scenario: sc, Device: dev, GPUs: width,
								Comm: comm, Batch: batch, Shared: shared}
							spec, err := p.Request().ResolveSpec()
							if err == nil {
								// Build validates before the comm override; the
								// final spec must be re-checked (comm on a
								// single-device point fails here).
								err = spec.Validate()
							}
							if err != nil {
								ex.Rejected++
								if len(ex.RejectedSamples) < rejectedSampleCap {
									ex.RejectedSamples = append(ex.RejectedSamples,
										Rejection{Point: p, Error: err.Error()})
								}
								continue
							}
							kb = append(kb[:0], dev...)
							kb = append(kb, '|')
							kb = spec.AppendFingerprint(kb)
							if shared {
								kb = append(kb, "|shared"...)
							}
							key := string(kb)
							if i, dup := seen[key]; dup {
								ex.Unique[i].Dups++
								continue
							}
							seen[key] = len(ex.Unique)
							ex.Unique = append(ex.Unique, Unit{Point: p, Spec: spec, Key: key})
						}
					}
				}
			}
		}
	}
	return ex, nil
}

// Requests materializes the facade request per unique unit, in unit
// order.
func (ex *Expansion) Requests() []dlrmperf.PredictRequest {
	reqs := make([]dlrmperf.PredictRequest, len(ex.Unique))
	for i := range ex.Unique {
		reqs[i] = ex.Unique[i].Point.Request()
	}
	return reqs
}

// Outcome is the prediction verdict of one unit, normalized across the
// in-process, HTTP, and cluster paths.
type Outcome struct {
	// E2EUs is the predicted per-step end-to-end time.
	E2EUs float64
	// ScalingEfficiency is the retained fraction of linear scaling.
	ScalingEfficiency float64
	// CacheHit marks results served from a result cache (engine or
	// coordinator pass-through).
	CacheHit bool
	// Err is the failure message ("" on success): dispatch errors,
	// deadline expiries, engine-side rejects.
	Err string
}

// OutcomeOf normalizes a facade result.
func OutcomeOf(res dlrmperf.PredictResult) Outcome {
	o := Outcome{
		ScalingEfficiency: res.ScalingEfficiency,
		CacheHit:          res.CacheHit,
	}
	if res.Err != nil {
		o.Err = res.Err.Error()
		return o
	}
	o.E2EUs = res.Prediction.E2EUs
	return o
}

// Row is one explored configuration in the report: the resolved
// coordinate (width and batch are post-default) plus its prediction.
type Row struct {
	Scenario string `json:"scenario"`
	Workload string `json:"workload"`
	Device   string `json:"device"`
	// Devices is the resolved execution width (>= 1).
	Devices int     `json:"devices"`
	Comm    string  `json:"comm,omitempty"`
	Batch   int64   `json:"batch"`
	Shared  bool    `json:"shared,omitempty"`
	E2EUs   float64 `json:"e2e_us"`
	// SamplesPerSec is the predicted training throughput:
	// batch / step time.
	SamplesPerSec     float64 `json:"samples_per_sec"`
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	CacheHit          bool    `json:"cache_hit,omitempty"`
	Fingerprint       string  `json:"fingerprint"`
}

// rowOf renders a successful unit outcome as a report row.
func rowOf(u *Unit, o Outcome) Row {
	r := Row{
		Scenario:          u.Point.Scenario,
		Workload:          u.Spec.Workload,
		Device:            u.Point.Device,
		Devices:           u.Spec.NumDevices(),
		Comm:              u.Spec.Comm,
		Batch:             u.Spec.Batch,
		Shared:            u.Point.Shared,
		E2EUs:             o.E2EUs,
		ScalingEfficiency: o.ScalingEfficiency,
		CacheHit:          o.CacheHit,
		Fingerprint:       u.Spec.Fingerprint(),
	}
	if o.E2EUs > 0 {
		r.SamplesPerSec = float64(r.Batch) / o.E2EUs * 1e6
	}
	return r
}

// Report is the sweep's output document. Coverage is exact —
// GridPoints == Unique + Duplicates + Rejected, and every unique unit
// lands in Predicted (Failed counts the predicted units whose
// prediction errored). CacheHitRate is over predicted units, so a warm
// repeat of an identical grid reports 1.0.
type Report struct {
	GridPoints      int         `json:"grid_points"`
	Unique          int         `json:"unique"`
	Duplicates      int         `json:"duplicates"`
	Rejected        int         `json:"rejected"`
	RejectedSamples []Rejection `json:"rejected_samples,omitempty"`
	Predicted       int         `json:"predicted"`
	Failed          int         `json:"failed"`
	FailedSamples   []Rejection `json:"failed_samples,omitempty"`
	CacheHits       int         `json:"cache_hits"`
	CacheHitRate    float64     `json:"cache_hit_rate"`
	ElapsedMs       float64     `json:"elapsed_ms"`
	// ConfigsPerSec is the sweep throughput over the whole grid
	// (duplicates and rejects are resolved by the sweep too);
	// PredictionsPerSec counts only the unique predicted units.
	ConfigsPerSec     float64 `json:"configs_per_sec"`
	PredictionsPerSec float64 `json:"predictions_per_sec"`
	// Frontier is the Pareto frontier of predicted step time vs device
	// count: each row is the fastest configuration at its width, and
	// wider rows are strictly faster than every narrower one.
	Frontier []Row `json:"frontier"`
	// Best maps each workload family to its highest-throughput
	// configuration.
	Best map[string]Row `json:"best_per_workload"`
	// Top lists the Grid.Top highest-throughput configurations overall.
	Top []Row `json:"top,omitempty"`
	// Assets snapshots the engine's per-class asset store at report
	// time (calibrations, compiled plans, cached results).
	Assets *dlrmperf.AssetStats `json:"assets,omitempty"`
}

// Aggregator folds unit outcomes into the report's online aggregates.
// It retains the frontier, the per-workload best table, and the top-N
// list — never the full row set — so its memory is proportional to the
// frontier, not the grid. Add is safe for concurrent use.
type Aggregator struct {
	ex *Expansion

	mu        sync.Mutex
	frontier  Frontier
	best      map[string]Row
	top       topN
	predicted int
	failed    int
	failures  []Rejection
	cacheHits int
}

// NewAggregator returns an aggregator over the expansion's units.
func NewAggregator(ex *Expansion) *Aggregator {
	return &Aggregator{
		ex:   ex,
		best: make(map[string]Row),
		top:  topN{n: ex.Grid.Top},
	}
}

// Add folds in the outcome of unit i.
func (a *Aggregator) Add(i int, o Outcome) {
	u := &a.ex.Unique[i]
	a.mu.Lock()
	defer a.mu.Unlock()
	a.predicted++
	if o.CacheHit {
		a.cacheHits++
	}
	if o.Err != "" {
		a.failed++
		if len(a.failures) < rejectedSampleCap {
			a.failures = append(a.failures, Rejection{Point: u.Point, Error: o.Err})
		}
		return
	}
	row := rowOf(u, o)
	a.frontier.Add(row)
	a.top.add(row)
	if best, ok := a.best[row.Workload]; !ok || betterForWorkload(row, best) {
		a.best[row.Workload] = row
	}
}

// betterForWorkload orders the per-workload best table: higher
// throughput wins; ties break to the lower step time, then to the
// smaller tie key, so the table is deterministic whatever order
// results stream in.
func betterForWorkload(a, b Row) bool {
	if a.SamplesPerSec != b.SamplesPerSec {
		return a.SamplesPerSec > b.SamplesPerSec
	}
	if a.E2EUs != b.E2EUs {
		return a.E2EUs < b.E2EUs
	}
	return tieKey(a) < tieKey(b)
}

// Report assembles the final document.
func (a *Aggregator) Report(elapsed time.Duration) *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	ex := a.ex
	rep := &Report{
		GridPoints:      ex.Total,
		Unique:          len(ex.Unique),
		Duplicates:      ex.Duplicates(),
		Rejected:        ex.Rejected,
		RejectedSamples: ex.RejectedSamples,
		Predicted:       a.predicted,
		Failed:          a.failed,
		FailedSamples:   a.failures,
		CacheHits:       a.cacheHits,
		ElapsedMs:       float64(elapsed.Microseconds()) / 1000,
		Frontier:        a.frontier.Points(),
		Best:            make(map[string]Row, len(a.best)),
		Top:             a.top.list(),
	}
	for w, r := range a.best {
		rep.Best[w] = r
	}
	if a.predicted > 0 {
		rep.CacheHitRate = float64(a.cacheHits) / float64(a.predicted)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ConfigsPerSec = float64(ex.Total) / secs
		rep.PredictionsPerSec = float64(a.predicted) / secs
	}
	return rep
}

// topN keeps the n highest-throughput rows seen so far, ordered by
// descending SamplesPerSec with the deterministic tie key.
type topN struct {
	n    int
	rows []Row
}

func (t *topN) add(r Row) {
	if t.n <= 0 {
		return
	}
	i := sort.Search(len(t.rows), func(i int) bool {
		return betterForWorkload(r, t.rows[i])
	})
	if i >= t.n {
		return
	}
	t.rows = append(t.rows, Row{})
	copy(t.rows[i+1:], t.rows[i:])
	t.rows[i] = r
	if len(t.rows) > t.n {
		t.rows = t.rows[:t.n]
	}
}

func (t *topN) list() []Row {
	return append([]Row(nil), t.rows...)
}
