package explore

import (
	"fmt"
	"testing"
	"testing/quick"

	"dlrmperf/internal/xrand"
)

// rowsFrom derives a deterministic row set from raw quick-generated
// values. The coordinate ranges are deliberately tight (8 widths, 24
// times) so duplicates and exact ties occur often.
func rowsFrom(raw []uint16) []Row {
	rows := make([]Row, len(raw))
	for i, r := range raw {
		rows[i] = Row{
			Device:      "D",
			Devices:     1 + int(r%8),
			E2EUs:       float64(1 + (r>>3)%24),
			Fingerprint: fmt.Sprintf("fp%05d", r),
		}
	}
	return rows
}

// bruteFrontier is the O(n²) reference: the set of (devices, e2e)
// coordinates not dominated by any other row (fewer-or-equal devices
// and faster-or-equal time, strictly better on at least one axis).
func bruteFrontier(rows []Row) map[[2]float64]bool {
	coords := map[[2]float64]bool{}
	for _, r := range rows {
		coords[[2]float64{float64(r.Devices), r.E2EUs}] = true
	}
	out := map[[2]float64]bool{}
	for c := range coords {
		dominated := false
		for o := range coords {
			if o[0] <= c[0] && o[1] <= c[1] && (o[0] < c[0] || o[1] < c[1]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out[c] = true
		}
	}
	return out
}

// TestFrontierMatchesBruteForce (testing/quick): the incremental
// frontier's coordinate set equals the brute-force O(n²) Pareto filter
// on random row sets, and its structural invariant holds — ascending
// widths, strictly decreasing times.
func TestFrontierMatchesBruteForce(t *testing.T) {
	f := func(raw []uint16) bool {
		rows := rowsFrom(raw)
		var fr Frontier
		for _, r := range rows {
			fr.Add(r)
		}
		pts := fr.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].Devices <= pts[i-1].Devices || pts[i].E2EUs >= pts[i-1].E2EUs {
				t.Logf("invariant broken at %d: %+v then %+v", i, pts[i-1], pts[i])
				return false
			}
		}
		want := bruteFrontier(rows)
		if len(pts) != len(want) {
			t.Logf("frontier has %d points, brute force %d", len(pts), len(want))
			return false
		}
		for _, p := range pts {
			if !want[[2]float64{float64(p.Devices), p.E2EUs}] {
				t.Logf("frontier point %+v not in brute-force set", p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFrontierPermutationInvariant: the frontier — surviving tie-break
// representatives included — is independent of insertion order.
func TestFrontierPermutationInvariant(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		rows := rowsFrom(raw)
		var a Frontier
		for _, r := range rows {
			a.Add(r)
		}
		shuffled := append([]Row(nil), rows...)
		xrand.New(seed).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		var b Frontier
		for _, r := range shuffled {
			b.Add(r)
		}
		pa, pb := a.Points(), b.Points()
		if len(pa) != len(pb) {
			t.Logf("orders disagree on size: %d vs %d", len(pa), len(pb))
			return false
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Logf("orders disagree at %d: %+v vs %+v", i, pa[i], pb[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFrontierReplaceAndSweep pins the two eviction paths directly: a
// faster row at an existing width replaces it, and an inserted narrow
// row sweeps away every wider row it newly dominates.
func TestFrontierReplaceAndSweep(t *testing.T) {
	row := func(d int, us float64, fp string) Row {
		return Row{Device: "D", Devices: d, E2EUs: us, Fingerprint: fp}
	}
	var f Frontier
	f.Add(row(2, 100, "a"))
	f.Add(row(4, 80, "b"))
	f.Add(row(8, 60, "c"))
	if f.Len() != 3 {
		t.Fatalf("frontier = %+v", f.Points())
	}
	// Same width, faster: replaces in place.
	f.Add(row(4, 70, "d"))
	if pts := f.Points(); len(pts) != 3 || pts[1].Fingerprint != "d" {
		t.Fatalf("replace failed: %+v", pts)
	}
	// Narrow and fast: dominates everything wider and slower.
	f.Add(row(1, 65, "e"))
	pts := f.Points()
	if len(pts) != 2 || pts[0].Fingerprint != "e" || pts[1].Fingerprint != "c" {
		t.Fatalf("sweep failed: %+v", pts)
	}
	// Exact coordinate tie: the smaller tie key survives whichever
	// arrives first.
	f.Add(row(1, 65, "a-smaller"))
	if pts := f.Points(); pts[0].Fingerprint != "a-smaller" {
		t.Fatalf("tie-break failed: %+v", pts)
	}
	f.Add(row(1, 65, "z-bigger"))
	if pts := f.Points(); pts[0].Fingerprint != "a-smaller" {
		t.Fatalf("tie-break not sticky: %+v", pts)
	}
}
