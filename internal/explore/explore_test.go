package explore

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"dlrmperf"
)

// loadGrid reads the checked-in demo grid fixture.
func loadGrid(t testing.TB) Grid {
	t.Helper()
	data, err := os.ReadFile("testdata/grid.json")
	if err != nil {
		t.Fatal(err)
	}
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	return g
}

// fastEngine builds a low-fidelity engine over the given devices.
func fastEngine(t testing.TB, devices ...string) *dlrmperf.Engine {
	t.Helper()
	cfg := dlrmperf.FastCalibConfig(17, 4)
	cfg.Devices = devices
	eng, err := dlrmperf.NewEngineWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// assertCoverage checks the exact-coverage identity on a report.
func assertCoverage(t *testing.T, rep *Report) {
	t.Helper()
	if got := rep.Unique + rep.Duplicates + rep.Rejected; got != rep.GridPoints {
		t.Errorf("coverage identity broken: %d unique + %d dup + %d rejected = %d, grid %d",
			rep.Unique, rep.Duplicates, rep.Rejected, got, rep.GridPoints)
	}
}

// TestExpandFixtureCoverage pins the demo grid's expansion: 16 points,
// 8 unique (comm "" and "nvlink" are one identity at width 2), 4
// duplicates, 4 rejected (comm on a single-device point), device-major
// unit order, and exact coverage.
func TestExpandFixtureCoverage(t *testing.T) {
	ex, err := Expand(loadGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Total != 16 || len(ex.Unique) != 8 || ex.Duplicates() != 4 || ex.Rejected != 4 {
		t.Fatalf("expansion = %d total / %d unique / %d dup / %d rejected, want 16/8/4/4",
			ex.Total, len(ex.Unique), ex.Duplicates(), ex.Rejected)
	}
	dups := 0
	for _, u := range ex.Unique {
		dups += u.Dups
	}
	if dups != ex.Duplicates() {
		t.Errorf("per-unit dups sum %d != %d", dups, ex.Duplicates())
	}
	for _, r := range ex.RejectedSamples {
		if !strings.Contains(r.Error, "single-device") {
			t.Errorf("unexpected rejection for %+v: %s", r.Point, r.Error)
		}
	}
	// Device-major order: each device's units are contiguous.
	lastDev, seen := "", map[string]bool{}
	for _, u := range ex.Unique {
		if u.Point.Device != lastDev {
			if seen[u.Point.Device] {
				t.Fatalf("device %s units not contiguous", u.Point.Device)
			}
			seen[u.Point.Device] = true
			lastDev = u.Point.Device
		}
	}
}

// TestExpandErrors: structurally empty grids are the only hard errors;
// an unknown scenario name is a counted rejection, not a failure.
func TestExpandErrors(t *testing.T) {
	if _, err := Expand(Grid{Devices: []string{"V100"}}); err == nil {
		t.Error("no-scenario grid did not error")
	}
	if _, err := Expand(Grid{Scenarios: []string{"dlrm-default"}}); err == nil {
		t.Error("no-device grid did not error")
	}
	ex, err := Expand(Grid{Scenarios: []string{"no-such-scenario"}, Devices: []string{"V100"}})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Rejected != 1 || len(ex.Unique) != 0 {
		t.Errorf("unknown scenario: %d rejected / %d unique, want 1/0", ex.Rejected, len(ex.Unique))
	}
}

// TestAggregatorAccounting drives the aggregator with synthetic
// outcomes and checks the failure sampling, hit-rate, and top-N
// bookkeeping without an engine.
func TestAggregatorAccounting(t *testing.T) {
	ex, err := Expand(Grid{
		Scenarios: []string{"dlrm-default"},
		Devices:   []string{"V100"},
		Batches:   []int64{512, 1024, 2048},
		Top:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Unique) != 3 {
		t.Fatalf("unique = %d, want 3", len(ex.Unique))
	}
	agg := NewAggregator(ex)
	agg.Add(0, Outcome{Err: "boom"})
	agg.Add(1, Outcome{E2EUs: 1000, CacheHit: true, ScalingEfficiency: 1})
	agg.Add(2, Outcome{E2EUs: 1500, ScalingEfficiency: 1})
	rep := agg.Report(0)
	assertCoverage(t, rep)
	if rep.Predicted != 3 || rep.Failed != 1 || rep.CacheHits != 1 {
		t.Errorf("predicted/failed/hits = %d/%d/%d, want 3/1/1", rep.Predicted, rep.Failed, rep.CacheHits)
	}
	if len(rep.FailedSamples) != 1 || rep.FailedSamples[0].Error != "boom" {
		t.Errorf("failed samples = %+v", rep.FailedSamples)
	}
	if want := 1.0 / 3; rep.CacheHitRate != want {
		t.Errorf("hit rate = %v, want %v", rep.CacheHitRate, want)
	}
	// Top is bounded at Grid.Top and ordered by throughput:
	// batch 2048 / 1500us beats batch 1024 / 1000us.
	if len(rep.Top) != 2 || rep.Top[0].Batch != 2048 || rep.Top[1].Batch != 1024 {
		t.Errorf("top = %+v", rep.Top)
	}
	if best := rep.Best["DLRM_default"]; best.Batch != 2048 {
		t.Errorf("best = %+v, want the batch-2048 row", best)
	}
}

// TestSweepFixture runs the demo grid against a real low-fidelity
// engine twice: the first pass predicts every unique unit, the second
// is served entirely from the result cache — zero new predictions,
// cache hit rate 1.0 — and both passes report identical coverage and
// frontiers.
func TestSweepFixture(t *testing.T) {
	eng := fastEngine(t, dlrmperf.V100)
	g := loadGrid(t)
	cold, err := Sweep(context.Background(), eng, g)
	if err != nil {
		t.Fatal(err)
	}
	assertCoverage(t, cold)
	if cold.Failed != 0 || cold.Predicted != cold.Unique {
		t.Fatalf("cold pass: %d predicted, %d failed (samples %+v)", cold.Predicted, cold.Failed, cold.FailedSamples)
	}
	hits0, misses0 := eng.CacheStats()
	warm, err := Sweep(context.Background(), eng, g)
	if err != nil {
		t.Fatal(err)
	}
	assertCoverage(t, warm)
	hits1, misses1 := eng.CacheStats()
	if misses1 != misses0 {
		t.Errorf("warm pass computed %d new predictions, want 0", misses1-misses0)
	}
	if int(hits1-hits0) != warm.Unique {
		t.Errorf("warm pass hits = %d, want %d", hits1-hits0, warm.Unique)
	}
	if warm.CacheHitRate != 1 {
		t.Errorf("warm hit rate = %v, want 1", warm.CacheHitRate)
	}
	if len(warm.Frontier) == 0 || len(warm.Frontier) != len(cold.Frontier) {
		t.Errorf("frontiers differ: cold %d rows, warm %d", len(cold.Frontier), len(warm.Frontier))
	}
	for i := range warm.Frontier {
		if warm.Frontier[i].Fingerprint != cold.Frontier[i].Fingerprint {
			t.Errorf("frontier[%d] differs: %s vs %s", i, cold.Frontier[i].Fingerprint, warm.Frontier[i].Fingerprint)
		}
	}
	if warm.Assets == nil || warm.Assets.Class("results").Resident == 0 {
		t.Errorf("asset stats missing or empty: %+v", warm.Assets)
	}
}

// TestSweepUnknownDeviceFails: a device outside the engine's set is
// dispatched (explore does not know engine device sets) and lands in
// Failed with the facade's rejection, leaving the valid device's units
// untouched.
func TestSweepUnknownDeviceFails(t *testing.T) {
	eng := fastEngine(t, dlrmperf.V100)
	rep, err := Sweep(context.Background(), eng, Grid{
		Scenarios: []string{"dlrm-default"},
		Devices:   []string{"V100", "P100"}, // engine serves only V100
		Batches:   []int64{512},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertCoverage(t, rep)
	if rep.Failed != 1 || rep.Predicted != 2 {
		t.Fatalf("predicted/failed = %d/%d, want 2/1: %+v", rep.Predicted, rep.Failed, rep.FailedSamples)
	}
	if !strings.Contains(rep.FailedSamples[0].Error, "not in engine device set") {
		t.Errorf("failure = %+v", rep.FailedSamples[0])
	}
}

// TestSweepIdempotentAcrossRegistry (testing/quick, mirroring
// sharding_property_test.go) pins the tentpole's dedup contract over
// random grids drawn from the whole scenario registry: a second
// identical sweep performs ZERO new predictions — the engine's miss
// counter is unchanged and its hit delta equals the unique fingerprint
// count — and coverage stays exact. One shared warm engine keeps the
// property cheap enough to sample.
func TestSweepIdempotentAcrossRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("registry-wide sweeps are slow under -short")
	}
	eng := fastEngine(t, dlrmperf.V100)
	names := dlrmperf.Scenarios()
	gpuAxes := [][]int{{0}, {1, 2}, {0, 2}}
	batchAxes := [][]int64{{0}, {0, 1024}}

	f := func(pick uint32, gpuSel, batchSel uint8) bool {
		// Derive a non-empty scenario subset from the pick bits.
		var subset []string
		for i, name := range names {
			if pick&(1<<(uint(i)%32)) != 0 {
				subset = append(subset, name)
			}
		}
		if len(subset) == 0 {
			subset = []string{names[int(pick)%len(names)]}
		}
		if len(subset) > 4 {
			subset = subset[:4]
		}
		g := Grid{
			Scenarios: subset,
			Devices:   []string{dlrmperf.V100},
			GPUs:      gpuAxes[int(gpuSel)%len(gpuAxes)],
			Batches:   batchAxes[int(batchSel)%len(batchAxes)],
		}
		first, err := Sweep(context.Background(), eng, g)
		if err != nil {
			t.Logf("first sweep: %v", err)
			return false
		}
		hits0, misses0 := eng.CacheStats()
		second, err := Sweep(context.Background(), eng, g)
		if err != nil {
			t.Logf("second sweep: %v", err)
			return false
		}
		hits1, misses1 := eng.CacheStats()
		ok := true
		if misses1 != misses0 {
			t.Logf("repeat sweep of %v computed %d new predictions", g, misses1-misses0)
			ok = false
		}
		if int(hits1-hits0) != second.Unique {
			t.Logf("repeat sweep hits %d != unique %d", hits1-hits0, second.Unique)
			ok = false
		}
		if second.CacheHitRate != 1 || second.Failed != 0 {
			t.Logf("repeat sweep hit rate %v, failed %d", second.CacheHitRate, second.Failed)
			ok = false
		}
		for _, rep := range []*Report{first, second} {
			if got := rep.Unique + rep.Duplicates + rep.Rejected; got != rep.GridPoints {
				t.Logf("coverage identity broken: %+v", rep)
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
