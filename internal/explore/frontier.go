package explore

import "sort"

// Frontier is the incremental Pareto frontier of predicted step time
// vs device count: the set of explored configurations not dominated by
// any other (fewer-or-equal devices AND faster-or-equal step time,
// strictly better on at least one axis). It is maintained online — one
// binary search plus a bounded sweep per Add — so a sweep never buffers
// its rows for an O(n²) post-pass, and the memory held is the frontier
// itself.
//
// Invariant: points are sorted by ascending Devices with strictly
// decreasing E2EUs — every extra device must buy speed, or the wider
// configuration is dominated and dropped.
type Frontier struct {
	pts []Row
}

// tieKey is the deterministic identity rows tie-break on when their
// (devices, time) coordinates are exactly equal, so the surviving
// representative — and hence the whole frontier — is independent of
// the order results stream in.
func tieKey(r Row) string {
	k := r.Device + "|" + r.Fingerprint
	if r.Shared {
		k += "|shared"
	}
	return k
}

// Add offers a row to the frontier, inserting it and evicting newly
// dominated points as needed.
func (f *Frontier) Add(r Row) {
	i := sort.Search(len(f.pts), func(i int) bool {
		return f.pts[i].Devices >= r.Devices
	})
	// Dominated by a strictly narrower point at least as fast?
	if i > 0 && f.pts[i-1].E2EUs <= r.E2EUs {
		return
	}
	if i < len(f.pts) && f.pts[i].Devices == r.Devices {
		// Same width: keep the faster row; on an exact (devices, time)
		// tie keep the smaller tie key.
		cur := f.pts[i]
		if cur.E2EUs < r.E2EUs || (cur.E2EUs == r.E2EUs && tieKey(cur) <= tieKey(r)) {
			return
		}
		f.pts[i] = r
	} else {
		f.pts = append(f.pts, Row{})
		copy(f.pts[i+1:], f.pts[i:])
		f.pts[i] = r
	}
	// Sweep right: wider points no faster than r are now dominated.
	j := i + 1
	for j < len(f.pts) && f.pts[j].E2EUs >= r.E2EUs {
		j++
	}
	if j > i+1 {
		f.pts = append(f.pts[:i+1], f.pts[j:]...)
	}
}

// Len returns the current frontier size.
func (f *Frontier) Len() int { return len(f.pts) }

// Points returns the frontier in ascending device order.
func (f *Frontier) Points() []Row {
	return append([]Row(nil), f.pts...)
}
