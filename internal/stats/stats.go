// Package stats implements the descriptive statistics and error metrics
// used throughout the paper's evaluation: geometric-mean absolute error
// (GMAE) for kernel models, geomean/min/max summaries for end-to-end
// errors (Table V), and the IQR whisker trimming applied to host-overhead
// samples before averaging (Section IV-B).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs (0 for fewer than
// two samples).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Geomean returns the geometric mean of xs, which must all be positive.
// Zero-valued entries are clamped to a tiny epsilon so that a single
// perfect prediction (0 error) does not collapse the whole summary, the
// same pragmatic choice made when summarizing error tables.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-12
	s := 0.0
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TrimIQR removes samples outside the whiskers
// [Q1 - k*IQR, Q3 + k*IQR] and returns the surviving samples in their
// original order. The paper uses k = 1.5 when cleaning overhead samples.
// Inputs with fewer than 4 samples are returned unchanged.
func TrimIQR(xs []float64, k float64) []float64 {
	if len(xs) < 4 {
		return append([]float64(nil), xs...)
	}
	q1 := Percentile(xs, 25)
	q3 := Percentile(xs, 75)
	iqr := q3 - q1
	lo := q1 - k*iqr
	hi := q3 + k*iqr
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x >= lo && x <= hi {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		// Degenerate distributions (all mass at outliers) keep the data.
		return append([]float64(nil), xs...)
	}
	return out
}

// RelErr returns the signed relative error (pred-actual)/actual.
// It panics if actual is 0.
func RelErr(pred, actual float64) float64 {
	if actual == 0 {
		panic("stats: RelErr with zero actual")
	}
	return (pred - actual) / actual
}

// AbsRelErr returns |pred-actual|/actual.
func AbsRelErr(pred, actual float64) float64 {
	return math.Abs(RelErr(pred, actual))
}

// GMAE returns the geometric mean of the absolute relative errors of the
// prediction/actual pairs, the headline kernel-model metric in Table IV.
// Pairs with non-positive actual values are skipped.
func GMAE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stats: GMAE length mismatch")
	}
	errs := make([]float64, 0, len(pred))
	for i := range pred {
		if actual[i] <= 0 {
			continue
		}
		errs = append(errs, AbsRelErr(pred[i], actual[i]))
	}
	return Geomean(errs)
}

// MeanAbsRelErr returns the arithmetic mean of absolute relative errors.
func MeanAbsRelErr(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stats: MeanAbsRelErr length mismatch")
	}
	errs := make([]float64, 0, len(pred))
	for i := range pred {
		if actual[i] <= 0 {
			continue
		}
		errs = append(errs, AbsRelErr(pred[i], actual[i]))
	}
	return Mean(errs)
}

// StdAbsRelErr returns the standard deviation of absolute relative errors.
func StdAbsRelErr(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stats: StdAbsRelErr length mismatch")
	}
	errs := make([]float64, 0, len(pred))
	for i := range pred {
		if actual[i] <= 0 {
			continue
		}
		errs = append(errs, AbsRelErr(pred[i], actual[i]))
	}
	return Std(errs)
}

// ErrorSummary bundles the three error statistics reported per kernel and
// per platform in Table IV.
type ErrorSummary struct {
	GMAE float64
	Mean float64
	Std  float64
	N    int
}

// Summarize computes an ErrorSummary over prediction/actual pairs.
func Summarize(pred, actual []float64) ErrorSummary {
	return ErrorSummary{
		GMAE: GMAE(pred, actual),
		Mean: MeanAbsRelErr(pred, actual),
		Std:  StdAbsRelErr(pred, actual),
		N:    len(pred),
	}
}

// Series summarizes a plain sample set with the fields plotted in the
// overhead figures (mean and std).
type Series struct {
	Mean float64
	Std  float64
	N    int
}

// Describe returns mean/std/count for xs.
func Describe(xs []float64) Series {
	return Series{Mean: Mean(xs), Std: Std(xs), N: len(xs)}
}
