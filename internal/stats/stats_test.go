package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dlrmperf/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestStd(t *testing.T) {
	if got := Std([]float64{2, 2, 2}); got != 0 {
		t.Errorf("Std of constant = %v, want 0", got)
	}
	got := Std([]float64{1, 3})
	if !almost(got, 1, 1e-12) {
		t.Errorf("Std([1,3]) = %v, want 1", got)
	}
	if got := Std([]float64{5}); got != 0 {
		t.Errorf("Std of single = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
}

func TestMinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 100})
	if !almost(got, 10, 1e-9) {
		t.Errorf("Geomean([1,100]) = %v, want 10", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", got)
	}
}

func TestGeomeanLEArithmeticMean(t *testing.T) {
	rng := xrand.New(1)
	f := func(seed uint16) bool {
		n := int(seed%20) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*10 + 0.01
		}
		return Geomean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almost(got, 5, 1e-12) {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
}

func TestTrimIQRRemovesOutliers(t *testing.T) {
	xs := []float64{5, 6, 5, 7, 6, 5, 6, 7, 500}
	out := TrimIQR(xs, 1.5)
	for _, v := range out {
		if v > 100 {
			t.Fatalf("outlier %v survived trimming", v)
		}
	}
	if len(out) != len(xs)-1 {
		t.Fatalf("trimmed %d values, want 1", len(xs)-len(out))
	}
}

func TestTrimIQRSmallInputsUnchanged(t *testing.T) {
	xs := []float64{1, 1000, 2}
	out := TrimIQR(xs, 1.5)
	if len(out) != 3 {
		t.Fatalf("small input was trimmed: %v", out)
	}
}

func TestTrimIQRPreservesOrder(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	out := TrimIQR(xs, 3)
	for i := 1; i < len(out); i++ {
		// With k=3 nothing is removed, so order must be the original.
		if out[i] != xs[i] {
			t.Fatalf("order not preserved: %v vs %v", out, xs)
		}
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(90, 100); !almost(got, -0.1, 1e-12) {
		t.Errorf("RelErr = %v, want -0.1", got)
	}
	if got := AbsRelErr(90, 100); !almost(got, 0.1, 1e-12) {
		t.Errorf("AbsRelErr = %v, want 0.1", got)
	}
}

func TestGMAEPerfectPrediction(t *testing.T) {
	pred := []float64{1, 2, 3}
	if got := GMAE(pred, pred); got > 1e-10 {
		t.Errorf("GMAE of perfect prediction = %v, want ~0", got)
	}
}

func TestGMAEKnownValue(t *testing.T) {
	pred := []float64{110, 121}
	actual := []float64{100, 110}
	got := GMAE(pred, actual)
	if !almost(got, 0.1, 1e-3) {
		t.Errorf("GMAE = %v, want ~0.1", got)
	}
}

func TestGMAESkipsNonPositiveActuals(t *testing.T) {
	pred := []float64{5, 110}
	actual := []float64{0, 100}
	got := GMAE(pred, actual)
	if !almost(got, 0.1, 1e-9) {
		t.Errorf("GMAE = %v, want 0.1 (zero-actual pair skipped)", got)
	}
}

func TestGMAELengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched GMAE did not panic")
		}
	}()
	GMAE([]float64{1}, []float64{1, 2})
}

func TestSummarize(t *testing.T) {
	pred := []float64{110, 90, 105}
	actual := []float64{100, 100, 100}
	s := Summarize(pred, actual)
	if s.N != 3 {
		t.Errorf("N = %d", s.N)
	}
	if !almost(s.Mean, (0.1+0.1+0.05)/3, 1e-9) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.GMAE <= 0 || s.GMAE > s.Mean+1e-9 {
		t.Errorf("GMAE = %v should be positive and <= mean %v", s.GMAE, s.Mean)
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{2, 4})
	if s.Mean != 3 || s.N != 2 {
		t.Errorf("Describe = %+v", s)
	}
	if !almost(s.Std, 1, 1e-12) {
		t.Errorf("Std = %v, want 1", s.Std)
	}
}
