package leakcheck

import (
	"testing"
	"time"
)

// TestCatchesBlockedGoroutine pins that a stranded goroutine is seen
// by the snapshot and that wait clears once it exits.
func TestCatchesBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started

	deadline := time.Now().Add(2 * time.Second)
	for {
		if len(snapshot()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never saw the blocked goroutine")
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	if leaked := wait(2 * time.Second); len(leaked) != 0 {
		t.Errorf("wait still reports %d goroutines after release:\n%s", len(leaked), leaked[0])
	}
}

// TestIgnoredFilters pins the harness/runtime ignore list.
func TestIgnoredFilters(t *testing.T) {
	cases := []struct {
		stack string
		want  bool
	}{
		{"goroutine 1 [chan receive]:\ntesting.(*M).Run(...)\n\tmain.go:1", true},
		{"goroutine 7 [IO wait]:\nnet/http.(*persistConn).readLoop(...)\n\ttransport.go:1", true},
		{"goroutine 9 [chan receive]:\ndlrmperf/internal/serve.(*Server).worker(...)\n\tserve.go:1", false},
	}
	for _, c := range cases {
		if got := ignored(c.stack); got != c.want {
			t.Errorf("ignored(%q) = %v, want %v", c.stack, got, c.want)
		}
	}
}
