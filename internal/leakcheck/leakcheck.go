// Package leakcheck is a stdlib-only goroutine-leak guard in the
// spirit of go.uber.org/goleak (which the offline build environment
// cannot vendor): a TestMain wrapper that, after the package's tests
// pass, polls the full goroutine dump until everything the tests
// spawned has exited, and fails the run otherwise.
//
// Wire it in with one file per test package:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// The serving layers (internal/serve, internal/cluster,
// internal/explore) run under this guard so a drain or cancel path
// that strands a worker goroutine fails the race job, not production.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignoredStacks marks goroutines that are expected to outlive tests:
// the test harness itself and process-global runtime/net machinery.
// Matching is by substring against any line of the goroutine's stack.
var ignoredStacks = []string{
	// Test harness.
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"testing.runTests(",
	// Runtime helpers that appear in all=true dumps.
	"runtime.runfinq",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.gcBgMarkWorker",
	"runtime.forcegchelper",
	"runtime.ReadTrace",
	// Signal delivery (installed once per process by os/signal users
	// such as the drain tests).
	"os/signal.signal_recv",
	"os/signal.loop",
	// net/http keep-alive connection pools are process-global: idle
	// persistConns linger by design until their idle timeout.
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
	"net/http.setupRewindBody",
}

// Main runs the package's tests and then verifies no test-spawned
// goroutines are left behind, giving asynchronous teardown a grace
// period to finish before declaring a leak.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := wait(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked by this test package:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// wait polls the goroutine dump until it is clean or the deadline
// passes, returning the stacks still alive at the end.
func wait(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	delay := 1 * time.Millisecond
	for {
		leaked := snapshot()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// snapshot returns the stacks of all live goroutines except the
// calling one and the ignore list.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := strings.Split(strings.TrimSpace(string(buf)), "\n\n")
	var leaked []string
	for i, s := range stacks {
		if i == 0 {
			continue // the goroutine running leakcheck itself
		}
		if ignored(s) {
			continue
		}
		leaked = append(leaked, s)
	}
	return leaked
}

func ignored(stack string) bool {
	for _, pat := range ignoredStacks {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}
