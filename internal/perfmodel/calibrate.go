package perfmodel

import (
	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/stats"
)

// CalibOptions controls the Analysis-Track calibration pipeline of
// Fig. 3: microbenchmark sweep sizes, ML-model training strategy, and
// which optional kernel families to cover.
type CalibOptions struct {
	// Seed drives sweeps, splits, and training.
	Seed uint64
	// SweepSizes overrides per-kind shape counts (default:
	// microbench.DefaultSweepSizes).
	SweepSizes map[kernels.Kind]int
	// UseGridSearch selects Table II hyperparameter search; otherwise a
	// single fixed configuration is trained.
	UseGridSearch bool
	// Space is the grid used when UseGridSearch is set (default:
	// mlp.FastSearchSpace).
	Space mlp.SearchSpace
	// MLPConfig is the fixed configuration otherwise (default:
	// mlp.DefaultConfig).
	MLPConfig mlp.Config
	// IncludeCNN additionally calibrates conv and batch-norm models (the
	// Fig. 10 extension).
	IncludeCNN bool
	// Ensemble is the number of independently seeded networks averaged
	// per ML-based model (default 3).
	Ensemble int
	// TrainFrac is the train split fraction (default 0.8).
	TrainFrac float64
}

func (o CalibOptions) withDefaults() CalibOptions {
	if o.SweepSizes == nil {
		o.SweepSizes = microbench.DefaultSweepSizes()
	}
	if o.MLPConfig.Width == 0 {
		o.MLPConfig = mlp.DefaultConfig()
	}
	if len(o.Space.Widths) == 0 {
		o.Space = mlp.FastSearchSpace()
	}
	if o.TrainFrac == 0 {
		o.TrainFrac = 0.8
	}
	if o.Ensemble == 0 {
		o.Ensemble = 3
	}
	return o
}

// KernelEval is one row of Table IV: a named model evaluated on held-out
// microbenchmark samples.
type KernelEval struct {
	Row     string
	Summary stats.ErrorSummary
}

// Calibration bundles the fitted registry with its Table IV evaluation.
type Calibration struct {
	Registry *Registry
	// Evals holds one entry per Table IV row, in the paper's order.
	Evals []KernelEval
}

// Eval returns the named row, or a zero summary.
func (c *Calibration) Eval(row string) stats.ErrorSummary {
	for _, e := range c.Evals {
		if e.Row == row {
			return e.Summary
		}
	}
	return stats.ErrorSummary{}
}

// Calibrate runs the full analysis track for one GPU: sweep, fit, and
// evaluate every dominating kernel model, returning the prediction-ready
// registry (with the enhanced embedding model installed, as the paper
// adopts) and the Table IV rows.
func Calibrate(gpu hw.GPU, opt CalibOptions) *Calibration {
	opt = opt.withDefaults()
	reg := NewRegistry(gpu.Name)
	cal := &Calibration{Registry: reg}
	seed := opt.Seed

	collect := func(kind kernels.Kind) (*microbench.Dataset, *microbench.Dataset) {
		n := opt.SweepSizes[kind]
		if n <= 0 {
			n = 400
		}
		seed += 101
		ds := microbench.CollectKind(gpu, kind, n, seed)
		return ds.Split(opt.TrainFrac, seed*31+7)
	}

	// ML models are trained on roofline-normalized residuals built from
	// the public spec numbers; the corrected efficiencies live in what
	// the network learns.
	fitMLP := func(name string, kind kernels.Kind) {
		train, test := collect(kind)
		var m *MLPModel
		if opt.UseGridSearch {
			m = SearchMLP(name, train, gpu.PeakFP32, gpu.DRAMBandwidth, opt.Space, opt.Ensemble, seed)
		} else {
			m = TrainMLP(name, train, gpu.PeakFP32, gpu.DRAMBandwidth, opt.MLPConfig, opt.Ensemble, seed)
		}
		reg.Register(kind, m)
		cal.Evals = append(cal.Evals, KernelEval{Row: name, Summary: Evaluate(m, test)})
	}

	// --- Embedding lookup: plain vs enhanced, all vs large tables -----
	for _, dir := range []struct {
		kind kernels.Kind
		tag  string
	}{
		{kernels.KindEmbeddingFwd, "EL-F"},
		{kernels.KindEmbeddingBwd, "EL-B"},
	} {
		train, test := collect(dir.kind)
		large := test.Filter(IsLargeTable)
		plain := CalibrateEL(dir.tag, gpu, train, false)
		enhanced := CalibrateEL(dir.tag+"H", gpu, train, true)
		cal.Evals = append(cal.Evals,
			KernelEval{Row: dir.tag, Summary: Evaluate(plain, test)},
			KernelEval{Row: dir.tag + "L", Summary: Evaluate(plain, large)},
			KernelEval{Row: dir.tag + "H", Summary: Evaluate(enhanced, test)},
			KernelEval{Row: dir.tag + "HL", Summary: Evaluate(enhanced, large)},
		)
		// The paper adopts the enhanced model for E2E prediction.
		reg.Register(dir.kind, enhanced)
	}

	// --- Memory kernels: roofline with corrected bandwidth -------------
	{
		train, test := collect(kernels.KindConcat)
		m := CalibrateRoofline("concat", train, 0)
		reg.Register(kernels.KindConcat, m)
		cal.Evals = append(cal.Evals, KernelEval{Row: "concat", Summary: Evaluate(m, test)})
	}
	{
		train, test := collect(kernels.KindMemcpyH2D)
		m := CalibrateRoofline("memcpy", train, 0)
		reg.Register(kernels.KindMemcpyH2D, m)
		cal.Evals = append(cal.Evals, KernelEval{Row: "memcpy", Summary: Evaluate(m, test)})
	}

	// --- ML-based models -------------------------------------------------
	fitMLP("GEMM", kernels.KindGEMM)
	fitMLP("transpose", kernels.KindTranspose)
	fitMLP("tril-F", kernels.KindTrilFwd)
	fitMLP("tril-B", kernels.KindTrilBwd)

	// --- Element-wise roofline (not a Table IV row, but required by the
	// E2E predictor for relu/losses/optimizer kernels) ------------------
	{
		train, test := collect(kernels.KindElementwise)
		m := CalibrateRoofline("elementwise", train, gpu.PeakFP32*0.5)
		reg.Register(kernels.KindElementwise, m)
		cal.Evals = append(cal.Evals, KernelEval{Row: "elementwise", Summary: Evaluate(m, test)})
	}

	if opt.IncludeCNN {
		fitMLP("conv", kernels.KindConv)
		train, test := collect(kernels.KindBatchNorm)
		m := CalibrateRoofline("batchnorm", train, 0)
		reg.Register(kernels.KindBatchNorm, m)
		cal.Evals = append(cal.Evals, KernelEval{Row: "batchnorm", Summary: Evaluate(m, test)})
	}

	return cal
}

// Table4Rows lists the paper's Table IV rows in order.
func Table4Rows() []string {
	return []string{
		"EL-F", "EL-FL", "EL-FH", "EL-FHL",
		"EL-B", "EL-BL", "EL-BH", "EL-BHL",
		"concat", "memcpy",
		"GEMM", "transpose", "tril-F", "tril-B",
	}
}
