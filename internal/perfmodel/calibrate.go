package perfmodel

import (
	"runtime"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/stats"
	"dlrmperf/internal/xsync"
)

// CalibOptions controls the Analysis-Track calibration pipeline of
// Fig. 3: microbenchmark sweep sizes, ML-model training strategy, and
// which optional kernel families to cover.
type CalibOptions struct {
	// Seed drives sweeps, splits, and training.
	Seed uint64
	// SweepSizes overrides per-kind shape counts (default:
	// microbench.DefaultSweepSizes).
	SweepSizes map[kernels.Kind]int
	// UseGridSearch selects Table II hyperparameter search; otherwise a
	// single fixed configuration is trained.
	UseGridSearch bool
	// Space is the grid used when UseGridSearch is set (default:
	// mlp.FastSearchSpace).
	Space mlp.SearchSpace
	// MLPConfig is the fixed configuration otherwise (default:
	// mlp.DefaultConfig).
	MLPConfig mlp.Config
	// IncludeCNN additionally calibrates conv and batch-norm models (the
	// Fig. 10 extension).
	IncludeCNN bool
	// Ensemble is the number of independently seeded networks averaged
	// per ML-based model (default 3).
	Ensemble int
	// TrainFrac is the train split fraction (default 0.8).
	TrainFrac float64
}

func (o CalibOptions) withDefaults() CalibOptions {
	if o.SweepSizes == nil {
		o.SweepSizes = microbench.DefaultSweepSizes()
	}
	if o.MLPConfig.Width == 0 {
		o.MLPConfig = mlp.DefaultConfig()
	}
	if len(o.Space.Widths) == 0 {
		o.Space = mlp.FastSearchSpace()
	}
	if o.TrainFrac == 0 {
		o.TrainFrac = 0.8
	}
	if o.Ensemble == 0 {
		o.Ensemble = 3
	}
	return o
}

// KernelEval is one row of Table IV: a named model evaluated on held-out
// microbenchmark samples.
type KernelEval struct {
	Row     string
	Summary stats.ErrorSummary
}

// Calibration bundles the fitted registry with its Table IV evaluation.
type Calibration struct {
	Registry *Registry
	// Evals holds one entry per Table IV row, in the paper's order.
	Evals []KernelEval
}

// Eval returns the named row, or a zero summary.
func (c *Calibration) Eval(row string) stats.ErrorSummary {
	for _, e := range c.Evals {
		if e.Row == row {
			return e.Summary
		}
	}
	return stats.ErrorSummary{}
}

// regEntry is one model a calibration job wants installed.
type regEntry struct {
	kind  kernels.Kind
	model KernelModel
}

// jobResult is the output of one calibration job: the models to register
// and the Table IV rows the job evaluated, in the paper's order.
type jobResult struct {
	regs  []regEntry
	evals []KernelEval
}

// calibJob is one independent unit of the calibration plan: sweep one
// kernel family, split, fit its model(s), and evaluate them. Every job
// carries a precomputed seed, so jobs are pure functions of (gpu, opt,
// seed) and can run in any order — serially or on a worker pool — with
// bit-identical results. memberWorkers bounds the ensemble-member
// concurrency inside the job.
type calibJob struct {
	row  string
	seed uint64
	run  func(seed uint64, memberWorkers int) jobResult
}

// seedStride is the per-family seed increment of the calibration plan.
// The stride (rather than, say, a hash of the family name) preserves the
// exact RNG schedule of the original strictly-serial implementation, so
// historical calibrations reproduce bit-for-bit.
const seedStride = 101

// calibrationPlan lays out the per-family jobs in the paper's Table IV
// order and assigns each its seed up front. Family job i draws from
// stream opt.Seed + seedStride*(i+1); ensemble member m within a family
// draws from memberSeed(familySeed, m).
func calibrationPlan(gpu hw.GPU, opt CalibOptions) []calibJob {
	var jobs []calibJob
	seed := opt.Seed
	add := func(row string, run func(seed uint64, memberWorkers int) jobResult) {
		seed += seedStride
		jobs = append(jobs, calibJob{row: row, seed: seed, run: run})
	}

	collect := func(kind kernels.Kind, seed uint64) (train, test *microbench.Dataset) {
		n := opt.SweepSizes[kind]
		if n <= 0 {
			n = 400
		}
		ds := microbench.CollectKind(gpu, kind, n, seed)
		return ds.Split(opt.TrainFrac, seed*31+7)
	}

	// --- Embedding lookup: plain vs enhanced, all vs large tables -----
	elJob := func(kind kernels.Kind, tag string) {
		add(tag, func(seed uint64, _ int) jobResult {
			train, test := collect(kind, seed)
			large := test.Filter(IsLargeTable)
			plain := CalibrateEL(tag, gpu, train, false)
			enhanced := CalibrateEL(tag+"H", gpu, train, true)
			return jobResult{
				// The paper adopts the enhanced model for E2E prediction.
				regs: []regEntry{{kind, enhanced}},
				evals: []KernelEval{
					{Row: tag, Summary: Evaluate(plain, test)},
					{Row: tag + "L", Summary: Evaluate(plain, large)},
					{Row: tag + "H", Summary: Evaluate(enhanced, test)},
					{Row: tag + "HL", Summary: Evaluate(enhanced, large)},
				},
			}
		})
	}

	// --- Memory-bound kernels: roofline with corrected bandwidth -------
	rooflineJob := func(row string, kind kernels.Kind, peak float64) {
		add(row, func(seed uint64, _ int) jobResult {
			train, test := collect(kind, seed)
			m := CalibrateRoofline(row, train, peak)
			return jobResult{
				regs:  []regEntry{{kind, m}},
				evals: []KernelEval{{Row: row, Summary: Evaluate(m, test)}},
			}
		})
	}

	// --- ML-based models: trained on roofline-normalized residuals
	// built from the public spec numbers; the corrected efficiencies live
	// in what the network learns. -------------------------------------
	mlpJob := func(name string, kind kernels.Kind) {
		add(name, func(seed uint64, memberWorkers int) jobResult {
			train, test := collect(kind, seed)
			var m *MLPModel
			if opt.UseGridSearch {
				m = SearchMLPParallel(name, train, gpu.PeakFP32, gpu.DRAMBandwidth, opt.Space, opt.Ensemble, seed, memberWorkers)
			} else {
				m = TrainMLPParallel(name, train, gpu.PeakFP32, gpu.DRAMBandwidth, opt.MLPConfig, opt.Ensemble, seed, memberWorkers)
			}
			return jobResult{
				regs:  []regEntry{{kind, m}},
				evals: []KernelEval{{Row: name, Summary: Evaluate(m, test)}},
			}
		})
	}

	elJob(kernels.KindEmbeddingFwd, "EL-F")
	elJob(kernels.KindEmbeddingBwd, "EL-B")
	rooflineJob("concat", kernels.KindConcat, 0)
	rooflineJob("memcpy", kernels.KindMemcpyH2D, 0)
	mlpJob("GEMM", kernels.KindGEMM)
	mlpJob("transpose", kernels.KindTranspose)
	mlpJob("tril-F", kernels.KindTrilFwd)
	mlpJob("tril-B", kernels.KindTrilBwd)
	// Element-wise is not a Table IV row, but is required by the E2E
	// predictor for relu/losses/optimizer kernels.
	rooflineJob("elementwise", kernels.KindElementwise, gpu.PeakFP32*0.5)
	if opt.IncludeCNN {
		mlpJob("conv", kernels.KindConv)
		rooflineJob("batchnorm", kernels.KindBatchNorm, 0)
	}
	return jobs
}

// Calibrate runs the full analysis track for one GPU on the calling
// goroutine: sweep, fit, and evaluate every dominating kernel model,
// returning the prediction-ready registry (with the enhanced embedding
// model installed, as the paper adopts) and the Table IV rows. It is the
// reference serial path; CalibrateParallel produces bit-identical output
// on a worker pool.
func Calibrate(gpu hw.GPU, opt CalibOptions) *Calibration {
	return calibrate(gpu, opt, 1)
}

// CalibrateParallel runs the same calibration plan as Calibrate with up
// to workers per-family jobs in flight (and ensemble members within a
// family training concurrently). workers <= 0 selects
// runtime.GOMAXPROCS(0). Because every job owns a precomputed RNG
// stream, the result is bit-identical to Calibrate regardless of
// scheduling.
func CalibrateParallel(gpu hw.GPU, opt CalibOptions, workers int) *Calibration {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return calibrate(gpu, opt, workers)
}

func calibrate(gpu hw.GPU, opt CalibOptions, workers int) *Calibration {
	opt = opt.withDefaults()
	jobs := calibrationPlan(gpu, opt)
	results := make([]jobResult, len(jobs))
	// Split the budget between the two levels: family jobs fill the
	// pool first, and ensemble members only fan out with whatever
	// multiple of the job count is left (total in-flight work stays
	// ~bounded by workers instead of workers^2).
	memberWorkers := workers / len(jobs)
	if memberWorkers < 1 {
		memberWorkers = 1
	}
	xsync.ForEachN(len(jobs), workers, func(i int) {
		results[i] = jobs[i].run(jobs[i].seed, memberWorkers)
	})

	// Merge in plan order so registries and Table IV rows are identical
	// to the serial path no matter which worker finished first.
	reg := NewRegistry(gpu.Name)
	cal := &Calibration{Registry: reg}
	for _, r := range results {
		for _, e := range r.regs {
			reg.Register(e.kind, e.model)
		}
		cal.Evals = append(cal.Evals, r.evals...)
	}
	return cal
}

// Table4Rows lists the paper's Table IV rows in order.
func Table4Rows() []string {
	return []string{
		"EL-F", "EL-FL", "EL-FH", "EL-FHL",
		"EL-B", "EL-BL", "EL-BH", "EL-BHL",
		"concat", "memcpy",
		"GEMM", "transpose", "tril-F", "tril-B",
	}
}
