package perfmodel

import (
	"encoding/json"
	"fmt"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/mlp"
)

// This file serializes calibrated kernel-model registries. Together with
// the overhead database, a serialized registry is the complete asset set
// of Fig. 3's prediction track: calibrate once, predict everywhere — the
// paper's "shared database for large-scale prediction".

// wireModel is the tagged union of serialized kernel models.
type wireModel struct {
	Type string          `json:"type"` // roofline | el | mlp
	Data json.RawMessage `json:"data"`
}

type wireEL struct {
	Name     string  `json:"name"`
	GPU      string  `json:"gpu"`
	DRAMBW   float64 `json:"dram_bw"`
	L2BW     float64 `json:"l2_bw"`
	Enhanced bool    `json:"enhanced"`
}

type wireMLP struct {
	Name     string            `json:"name"`
	Config   mlp.Config        `json:"config"`
	BasePeak float64           `json:"base_peak"`
	BaseBW   float64           `json:"base_bw"`
	Nets     []json.RawMessage `json:"nets"`
}

type wireRegistry struct {
	Device string               `json:"device"`
	Models map[string]wireModel `json:"models"` // kernel kind string -> model
}

// SaveRegistry serializes a calibrated registry to JSON.
func SaveRegistry(r *Registry) ([]byte, error) {
	out := wireRegistry{Device: r.Device, Models: map[string]wireModel{}}
	for _, kind := range r.Kinds() {
		m := r.Model(kind)
		var (
			typ string
			val any
		)
		switch mm := m.(type) {
		case Roofline:
			typ, val = "roofline", mm
		case *ELHeuristic:
			typ, val = "el", wireEL{
				Name: mm.ModelName, GPU: mm.GPU.Name,
				DRAMBW: mm.DRAMBW, L2BW: mm.L2BW, Enhanced: mm.Enhanced,
			}
		case *MLPModel:
			w := wireMLP{Name: mm.ModelName, Config: mm.Config, BasePeak: mm.BasePeak, BaseBW: mm.BaseBW}
			for _, n := range mm.Nets {
				raw, err := json.Marshal(n)
				if err != nil {
					return nil, err
				}
				w.Nets = append(w.Nets, raw)
			}
			typ, val = "mlp", w
		default:
			return nil, fmt.Errorf("perfmodel: cannot serialize model type %T", m)
		}
		data, err := json.Marshal(val)
		if err != nil {
			return nil, err
		}
		out.Models[kind.String()] = wireModel{Type: typ, Data: data}
	}
	return json.MarshalIndent(out, "", " ")
}

// LoadRegistry restores a registry serialized by SaveRegistry.
func LoadRegistry(data []byte) (*Registry, error) {
	var w wireRegistry
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, err
	}
	reg := NewRegistry(w.Device)
	for kindName, wm := range w.Models {
		kind, err := kindFromString(kindName)
		if err != nil {
			return nil, err
		}
		switch wm.Type {
		case "roofline":
			var m Roofline
			if err := json.Unmarshal(wm.Data, &m); err != nil {
				return nil, err
			}
			reg.Register(kind, m)
		case "el":
			var e wireEL
			if err := json.Unmarshal(wm.Data, &e); err != nil {
				return nil, err
			}
			p, err := hw.ByName(e.GPU)
			if err != nil {
				return nil, fmt.Errorf("perfmodel: embedding model references %w", err)
			}
			reg.Register(kind, &ELHeuristic{
				ModelName: e.Name, GPU: p.GPU,
				DRAMBW: e.DRAMBW, L2BW: e.L2BW, Enhanced: e.Enhanced,
			})
		case "mlp":
			var mw wireMLP
			if err := json.Unmarshal(wm.Data, &mw); err != nil {
				return nil, err
			}
			m := &MLPModel{ModelName: mw.Name, Config: mw.Config, BasePeak: mw.BasePeak, BaseBW: mw.BaseBW}
			for _, raw := range mw.Nets {
				var n mlp.Net
				if err := json.Unmarshal(raw, &n); err != nil {
					return nil, err
				}
				m.Nets = append(m.Nets, &n)
			}
			if len(m.Nets) == 0 {
				return nil, fmt.Errorf("perfmodel: mlp model %s has no networks", mw.Name)
			}
			reg.Register(kind, m)
		default:
			return nil, fmt.Errorf("perfmodel: unknown model type %q", wm.Type)
		}
	}
	return reg, nil
}

func kindFromString(s string) (kernels.Kind, error) {
	for _, k := range kernels.Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("perfmodel: unknown kernel kind %q", s)
}
