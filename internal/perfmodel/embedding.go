package perfmodel

import (
	"math"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/stats"
)

// ELHeuristic is the paper's analytic model for the batched embedding
// lookup kernel (Section III-B1a). The plain variant assumes every
// embedding-row access misses in L2 and charges DRAM traffic only; the
// enhanced variant estimates the L2 hit probability from cache residency
// and splits traffic between DRAM and L2.
//
// Note on the forward weights-traffic term: the paper prints
// tr_weights = ceil(4D/32)*32 for the forward kernel, without the factor
// L, while the backward formula includes L. Each pooled output physically
// reads L embedding rows, so we implement L*ceil(4D/32)*32 and treat the
// printed formula as a typo (see DESIGN.md); with the literal formula the
// model could not approach the paper's ~11% GMAE.
type ELHeuristic struct {
	ModelName string
	// GPU supplies SM count and L2 size (public spec values, as the
	// paper's model uses).
	GPU hw.GPU
	// DRAMBW and L2BW are the corrected bandwidths in B/µs, calibrated
	// from microbenchmark data.
	DRAMBW, L2BW float64
	// Enhanced enables the L2 hit-rate estimation.
	Enhanced bool
}

// Name implements KernelModel.
func (m *ELHeuristic) Name() string { return m.ModelName }

// traffic returns the per-WARP traffic terms of the paper's formulas.
func elTerms(e kernels.Embedding) (fixed, idx, weights, out float64) {
	rowBytes := float64((4*e.D + 31) / 32 * 32)
	fixed = 32 + 64
	idx = float64((4*e.L + 31) / 32 * 32)
	if e.Backward {
		weights = float64((2*4*e.L*e.D + 31) / 32 * 32)
	} else {
		weights = float64(e.L) * rowBytes
	}
	out = rowBytes
	return fixed, idx, weights, out
}

// HitRate returns the enhanced model's estimate of p: the probability
// that all L row accesses of one pooled lookup are L2-resident,
// p = C(cached, L) / C(E, L).
func (m *ELHeuristic) HitRate(e kernels.Embedding) float64 {
	if e.E <= 0 {
		return 0
	}
	numTables := float64(e.RowsPerBlock) * float64(m.GPU.NumSMs) / float64(e.B)
	if numTables < 1 {
		numTables = 1
	}
	if t := float64(e.T); numTables > t {
		numTables = t
	}
	rowBytes := 4 * float64(e.D)
	cached := float64(m.GPU.L2Size) / (numTables * rowBytes)
	if cached > float64(e.E) {
		cached = float64(e.E)
	}
	if cached < float64(e.L) {
		return 0
	}
	// log C(cached, L) - log C(E, L) = sum log((cached-i)/(E-i)).
	logp := 0.0
	for i := int64(0); i < e.L; i++ {
		logp += math.Log((cached - float64(i)) / (float64(e.E) - float64(i)))
	}
	return math.Exp(logp)
}

// Predict implements KernelModel.
func (m *ELHeuristic) Predict(k kernels.Kernel) float64 {
	e, ok := k.(kernels.Embedding)
	if !ok {
		panic("perfmodel: ELHeuristic got non-embedding kernel")
	}
	e = e.WithDefaults()
	fixed, idx, weights, out := elTerms(e)
	warps := float64(e.B) * float64(e.T)
	if !m.Enhanced {
		return warps * (fixed + idx + weights + out) / m.DRAMBW
	}
	p := m.HitRate(e)
	trL2 := fixed + p*weights
	trDRAM := idx + out + (1-p)*weights
	return warps * (trDRAM/m.DRAMBW + trL2/m.L2BW)
}

// LargeTableThreshold is the paper's cut for "large" tables (the -L rows
// of Table IV): average table size greater than 100k embeddings.
const LargeTableThreshold = 100_000

// IsLargeTable reports whether a benchmark sample belongs to the
// large-table subset.
func IsLargeTable(k kernels.Kernel) bool {
	e, ok := k.(kernels.Embedding)
	return ok && e.E > LargeTableThreshold
}

// CalibrateEL fits the corrected bandwidths of the embedding model from a
// microbenchmark dataset:
//
//   - DRAM bandwidth from large-table samples, where the all-misses
//     assumption holds, as the maximum achieved plain-model bandwidth;
//   - L2 bandwidth (enhanced model only) from small, fully cached tables
//     by solving the enhanced equation for the residual L2 term.
func CalibrateEL(name string, gpu hw.GPU, ds *microbench.Dataset, enhanced bool) *ELHeuristic {
	m := &ELHeuristic{ModelName: name, GPU: gpu, Enhanced: enhanced}

	var dramBWs []float64
	for _, s := range ds.Filter(IsLargeTable).Samples {
		e := s.Kernel.(kernels.Embedding).WithDefaults()
		fixed, idx, weights, out := elTerms(e)
		warps := float64(e.B) * float64(e.T)
		if s.Time > 0 {
			dramBWs = append(dramBWs, warps*(fixed+idx+weights+out)/s.Time)
		}
	}
	if len(dramBWs) == 0 {
		m.DRAMBW = gpu.DRAMBandwidth
	} else {
		// A central percentile rather than the raw maximum: achieved
		// lookup bandwidth varies with grid fill, and centering the
		// correction halves the typical error without hiding the
		// small-table bias the enhanced model exists to fix.
		m.DRAMBW = stats.Percentile(dramBWs, 60)
	}
	if !enhanced {
		return m
	}

	var l2BWs []float64
	for _, s := range ds.Samples {
		e, ok := s.Kernel.(kernels.Embedding)
		if !ok {
			continue
		}
		e = e.WithDefaults()
		p := m.HitRate(e)
		if p < 0.9 { // only confidently cached samples identify the L2 term
			continue
		}
		fixed, idx, weights, out := elTerms(e)
		warps := float64(e.B) * float64(e.T)
		trL2 := fixed + p*weights
		trDRAM := idx + out + (1-p)*weights
		residual := s.Time - warps*trDRAM/m.DRAMBW
		if residual > 0 {
			l2BWs = append(l2BWs, warps*trL2/residual)
		}
	}
	if len(l2BWs) == 0 {
		m.L2BW = gpu.L2Bandwidth
	} else {
		m.L2BW = stats.Percentile(l2BWs, 75)
	}
	return m
}
