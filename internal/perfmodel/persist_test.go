package perfmodel

import (
	"testing"

	"dlrmperf/internal/kernels"
)

func TestRegistryRoundTrip(t *testing.T) {
	cal := v100Calibration(t)
	data, err := SaveRegistry(cal.Registry)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadRegistry(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Device != cal.Registry.Device {
		t.Errorf("device = %s", got.Device)
	}
	if len(got.Kinds()) != len(cal.Registry.Kinds()) {
		t.Fatalf("kinds: %d vs %d", len(got.Kinds()), len(cal.Registry.Kinds()))
	}
	// Every model family must predict bit-identically after the round
	// trip: heuristic (embedding), roofline (concat, memcpy), ML (GEMM,
	// transpose, tril).
	probes := []kernels.Kernel{
		kernels.Embedding{B: 1024, E: 500_000, T: 8, L: 16, D: 64},
		kernels.Embedding{B: 2048, E: 2000, T: 4, L: 4, D: 128, Backward: true},
		kernels.Concat{OutBytes: 1 << 20, NInputs: 9},
		kernels.Memcpy{NBytes: 4 << 20, Dir: kernels.H2D},
		kernels.GEMM{Batch: 1, M: 2048, N: 1024, K: 512},
		kernels.GEMM{Batch: 64, M: 9, N: 9, K: 64},
		kernels.Transpose{B: 2048, M: 9, N: 64},
		kernels.Tril{B: 2048, F: 27},
		kernels.Tril{B: 2048, F: 27, Backward: true},
		kernels.Elementwise{Name: "relu", NElems: 1 << 20, ReadsPerElem: 4, WritesPerElem: 4},
	}
	for _, k := range probes {
		want, err := cal.Registry.Predict(k)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Predict(k)
		if err != nil {
			t.Fatal(err)
		}
		if want != have {
			t.Errorf("%s: prediction changed after round trip: %v vs %v", k, want, have)
		}
	}
}

func TestLoadRegistryRejectsGarbage(t *testing.T) {
	if _, err := LoadRegistry([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadRegistry([]byte(`{"device":"V100","models":{"GEMM":{"type":"nope","data":{}}}}`)); err == nil {
		t.Error("unknown model type accepted")
	}
	if _, err := LoadRegistry([]byte(`{"device":"V100","models":{"warp9":{"type":"roofline","data":{}}}}`)); err == nil {
		t.Error("unknown kernel kind accepted")
	}
}
