// Package perfmodel implements the paper's kernel performance models
// (Section III-B): heuristic models for kernels with accessible or
// trivial structure — the batched embedding lookup (plain and enhanced
// with L2 hit-rate estimation) and roofline models for element-wise,
// concat, and memcpy kernels — and ML-based MLP regressors for opaque
// kernels (cuBLAS GEMM, JIT transpose, tril, conv).
//
// Models are calibrated exclusively from microbenchmark datasets: peak
// bandwidths are corrected to the maximum measured bandwidth (the paper's
// protocol) and ML models are trained on log-transformed shapes/times.
// Nothing in this package touches the ground-truth cost functions.
package perfmodel

import (
	"fmt"
	"math"

	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/stats"
	"dlrmperf/internal/xsync"
)

// KernelModel predicts the execution time in µs of kernels of one family.
type KernelModel interface {
	// Name identifies the model (for reports).
	Name() string
	// Predict returns the predicted kernel time in µs.
	Predict(k kernels.Kernel) float64
}

// --- Roofline ----------------------------------------------------------------

// Roofline is the classic model t = max(FLOP/peak, lat + bytes/bw) with
// the corrected (measured) bandwidth, used for element-wise, concat,
// memcpy, and batch-norm kernels. Following the paper's protocol of
// correcting the peak bandwidth to the maximum measured bandwidth, the
// calibration additionally measures the fixed launch/DMA latency that
// dominates small transfers.
type Roofline struct {
	ModelName string
	// BW is the corrected peak bandwidth in B/µs.
	BW float64
	// Lat is the measured fixed per-kernel latency in µs.
	Lat float64
	// Peak is the corrected peak compute throughput in FLOP/µs.
	Peak float64
}

// Name implements KernelModel.
func (r Roofline) Name() string { return r.ModelName }

// Predict implements KernelModel.
func (r Roofline) Predict(k kernels.Kernel) float64 {
	read, write := k.Bytes()
	t := r.Lat + (read+write)/r.BW
	if r.Peak > 0 {
		if tc := k.FLOPs() / r.Peak; tc > t {
			t = tc
		}
	}
	return t
}

// CalibrateRoofline fits t = lat + bytes/bw to a dataset by weighted
// least squares (weights 1/t^2, i.e. minimizing relative error), which
// simultaneously recovers the corrected peak bandwidth from the large
// transfers and the fixed latency from the small ones.
func CalibrateRoofline(name string, ds *microbench.Dataset, peakFLOPs float64) Roofline {
	// Weighted least squares for t = a + b*x with w = 1/t^2.
	var sw, swx, swxx, swt, swxt float64
	for _, s := range ds.Samples {
		if s.Time <= 0 {
			continue
		}
		read, write := s.Kernel.Bytes()
		x := read + write
		w := 1 / (s.Time * s.Time)
		sw += w
		swx += w * x
		swxx += w * x * x
		swt += w * s.Time
		swxt += w * x * s.Time
	}
	det := sw*swxx - swx*swx
	r := Roofline{ModelName: name, Peak: peakFLOPs}
	if det == 0 || sw == 0 {
		r.BW = 1
		return r
	}
	a := (swxx*swt - swx*swxt) / det
	b := (sw*swxt - swx*swt) / det
	if a < 0 {
		a = 0
		// Refit slope through the origin.
		b = swxt / swxx
	}
	if b <= 0 {
		// Degenerate: fall back to best measured bandwidth.
		var bws []float64
		for _, s := range ds.Samples {
			read, write := s.Kernel.Bytes()
			if s.Time > 0 {
				bws = append(bws, (read+write)/s.Time)
			}
		}
		r.BW = stats.Percentile(bws, 98)
		r.Lat = 0
		return r
	}
	r.Lat = a
	r.BW = 1 / b
	return r
}

// --- ML-based ------------------------------------------------------------------

// Baseline maps a kernel to an analytic time scale (µs). ML-based models
// are trained on the *residual* log(measured/baseline): the roofline
// baseline carries the many-orders-of-magnitude size dependence, and the
// network only has to learn the bounded efficiency surface (tile and
// wave quantization, alignment penalties, shape quirks). This keeps the
// model unbiased across the size range and extrapolation-safe.
type Baseline func(k kernels.Kernel) float64

// RooflineBaseline returns the spec-sheet roofline baseline for a GPU
// with the given peak FLOP/µs and bandwidth B/µs.
func RooflineBaseline(peak, bw float64) Baseline {
	return func(k kernels.Kernel) float64 {
		read, write := k.Bytes()
		t := (read + write) / bw
		if peak > 0 {
			if tc := k.FLOPs() / peak; tc > t {
				t = tc
			}
		}
		if t < 0.5 {
			t = 0.5 // launch floor keeps the residual bounded for tiny kernels
		}
		return t
	}
}

// MLPModel wraps an ensemble of MLP regressors over log-shape features
// predicting the log residual to an analytic baseline. Averaging the
// log-residual predictions of independently seeded networks reduces the
// fit variance on the quantization-heavy efficiency surfaces (GEMM wave
// boundaries, transpose alignment cliffs). The baseline is parameterized
// by (BasePeak, BaseBW) rather than a closure so trained models
// serialize into a shared asset database.
type MLPModel struct {
	ModelName string
	Nets      []*mlp.Net
	Config    mlp.Config
	// BasePeak and BaseBW parameterize the roofline baseline the
	// networks' residuals are relative to.
	BasePeak, BaseBW float64
}

// Name implements KernelModel.
func (m *MLPModel) Name() string { return m.ModelName }

// base returns the analytic baseline time of k.
func (m *MLPModel) base(k kernels.Kernel) float64 {
	return RooflineBaseline(m.BasePeak, m.BaseBW)(k)
}

// Predict implements KernelModel.
func (m *MLPModel) Predict(k kernels.Kernel) float64 {
	x := k.Features()
	s := 0.0
	for _, n := range m.Nets {
		s += n.Predict(x)
	}
	return m.base(k) * math.Exp(s/float64(len(m.Nets)))
}

// residualTargets converts a dataset into (features, log residual) pairs.
func residualTargets(ds *microbench.Dataset, base Baseline) ([][]float64, []float64) {
	var X [][]float64
	var Y []float64
	for _, s := range ds.Samples {
		t := s.Time
		if t <= 0 {
			t = 1e-6
		}
		X = append(X, s.Kernel.Features())
		Y = append(Y, math.Log(t/base(s.Kernel)))
	}
	return X, Y
}

// memberStride decorrelates the RNG streams of ensemble members within
// one family: member m of a family seeded s trains from s + m*memberStride.
const memberStride = 104729

// memberSeed derives the training seed of one ensemble member from its
// family's calibration seed.
func memberSeed(familySeed uint64, member int) uint64 {
	return familySeed + uint64(member)*memberStride
}

// trainEnsemble trains members [from, to) of an ensemble, each with its
// own derived seed, with at most workers trainings in flight. Members
// slot into the result by index, so the output is bit-identical
// regardless of workers.
func trainEnsemble(X [][]float64, Y []float64, cfg mlp.Config, familySeed uint64, from, to, workers int) []*mlp.Net {
	if to < from {
		to = from
	}
	nets := make([]*mlp.Net, to-from)
	xsync.ForEachN(len(nets), workers, func(i int) {
		nets[i] = mlp.Train(X, Y, cfg, memberSeed(familySeed, from+i))
	})
	return nets
}

// TrainMLP fits an MLPModel ensemble on a dataset with a fixed
// configuration. basePeak/baseBW parameterize the roofline the residual
// targets are relative to.
func TrainMLP(name string, ds *microbench.Dataset, basePeak, baseBW float64, cfg mlp.Config, ensemble int, seed uint64) *MLPModel {
	return TrainMLPParallel(name, ds, basePeak, baseBW, cfg, ensemble, seed, 1)
}

// TrainMLPParallel is TrainMLP with up to workers ensemble members
// training concurrently; the fitted model is bit-identical to TrainMLP.
func TrainMLPParallel(name string, ds *microbench.Dataset, basePeak, baseBW float64, cfg mlp.Config, ensemble int, seed uint64, workers int) *MLPModel {
	if ensemble < 1 {
		ensemble = 1
	}
	X, Y := residualTargets(ds, RooflineBaseline(basePeak, baseBW))
	m := &MLPModel{ModelName: name, Config: cfg, BasePeak: basePeak, BaseBW: baseBW}
	m.Nets = trainEnsemble(X, Y, cfg, seed, 0, ensemble, workers)
	return m
}

// SearchMLP fits an MLPModel with a hyperparameter grid search
// (Table II), then trains an ensemble of the winning configuration.
func SearchMLP(name string, ds *microbench.Dataset, basePeak, baseBW float64, space mlp.SearchSpace, ensemble int, seed uint64) *MLPModel {
	return SearchMLPParallel(name, ds, basePeak, baseBW, space, ensemble, seed, 1)
}

// SearchMLPParallel is SearchMLP with up to workers ensemble members
// training concurrently after the grid search picks the winning
// configuration; the fitted model is bit-identical to SearchMLP.
func SearchMLPParallel(name string, ds *microbench.Dataset, basePeak, baseBW float64, space mlp.SearchSpace, ensemble int, seed uint64, workers int) *MLPModel {
	if ensemble < 1 {
		ensemble = 1
	}
	X, Y := residualTargets(ds, RooflineBaseline(basePeak, baseBW))
	net, cfg, _ := mlp.GridSearch(X, Y, space, seed)
	m := &MLPModel{ModelName: name, Config: cfg, BasePeak: basePeak, BaseBW: baseBW, Nets: []*mlp.Net{net}}
	m.Nets = append(m.Nets, trainEnsemble(X, Y, cfg, seed, 1, ensemble, workers)...)
	return m
}

// --- Evaluation ------------------------------------------------------------------

// Evaluate computes the Table IV error statistics of model on a dataset.
func Evaluate(model KernelModel, ds *microbench.Dataset) stats.ErrorSummary {
	var pred, actual []float64
	for _, s := range ds.Samples {
		pred = append(pred, model.Predict(s.Kernel))
		actual = append(actual, s.Time)
	}
	return stats.Summarize(pred, actual)
}

// ErrNoModel is returned by Registry.Predict for uncovered kernel kinds.
var ErrNoModel = fmt.Errorf("perfmodel: no model for kernel kind")

// Registry maps kernel kinds to their performance models — the asset
// store of Fig. 3's prediction track. Ops that call the same kernel kind
// share one model (addmm, bmm, linear, and their backwards all hit the
// GEMM entry).
type Registry struct {
	Device string
	models map[kernels.Kind]KernelModel
}

// NewRegistry returns an empty registry for a device.
func NewRegistry(device string) *Registry {
	return &Registry{Device: device, models: map[kernels.Kind]KernelModel{}}
}

// Register installs a model for a kind.
func (r *Registry) Register(kind kernels.Kind, m KernelModel) { r.models[kind] = m }

// Model returns the model for a kind, or nil.
func (r *Registry) Model(kind kernels.Kind) KernelModel { return r.models[kind] }

// Predict returns the predicted time of k. It returns ErrNoModel if the
// kind is not covered.
func (r *Registry) Predict(k kernels.Kernel) (float64, error) {
	m, ok := r.models[k.Kind()]
	if !ok {
		return 0, fmt.Errorf("%w %s", ErrNoModel, k.Kind())
	}
	return m.Predict(k), nil
}

// Kinds lists the covered kernel kinds.
func (r *Registry) Kinds() []kernels.Kind {
	var out []kernels.Kind
	for _, k := range kernels.Kinds() {
		if _, ok := r.models[k]; ok {
			out = append(out, k)
		}
	}
	return out
}
