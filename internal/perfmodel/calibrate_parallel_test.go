package perfmodel

import (
	"reflect"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/xrand"
)

// fastCalibOptions keeps the equivalence tests quick: small sweeps, a
// tiny network, two ensemble members (so member-level parallelism is
// exercised), CNN kinds included (so every plan job exists).
func fastCalibOptions(seed uint64) CalibOptions {
	sizes := map[kernels.Kind]int{}
	for k, n := range microbench.DefaultSweepSizes() {
		sizes[k] = n / 8
	}
	return CalibOptions{
		Seed:       seed,
		SweepSizes: sizes,
		Ensemble:   2,
		IncludeCNN: true,
		MLPConfig:  mlp.Config{HiddenLayers: 1, Width: 16, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 10, BatchSize: 64},
	}
}

// TestCalibrateSerialParallelEquivalence is the contract the concurrent
// calibration engine is built on: the worker-pool path must reproduce
// the serial path bit for bit — same Table IV rows, same registry
// predictions — for the same seed, regardless of scheduling.
func TestCalibrateSerialParallelEquivalence(t *testing.T) {
	p, err := hw.ByName(hw.V100)
	if err != nil {
		t.Fatal(err)
	}
	opt := fastCalibOptions(11)
	serial := Calibrate(p.GPU, opt)
	parallel := CalibrateParallel(p.GPU, opt, 8)

	if !reflect.DeepEqual(serial.Evals, parallel.Evals) {
		for i := range serial.Evals {
			if i < len(parallel.Evals) && !reflect.DeepEqual(serial.Evals[i], parallel.Evals[i]) {
				t.Errorf("eval row %d differs: serial %+v parallel %+v",
					i, serial.Evals[i], parallel.Evals[i])
			}
		}
		t.Fatalf("KernelEval rows differ (serial %d rows, parallel %d rows)",
			len(serial.Evals), len(parallel.Evals))
	}

	sk, pk := serial.Registry.Kinds(), parallel.Registry.Kinds()
	if !reflect.DeepEqual(sk, pk) {
		t.Fatalf("covered kinds differ: %v vs %v", sk, pk)
	}
	rng := xrand.New(99)
	for _, kind := range sk {
		for _, k := range microbench.GenerateKernels(kind, 8, rng) {
			a, err := serial.Registry.Predict(k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := parallel.Registry.Predict(k)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%s prediction differs: serial %v parallel %v (kernel %+v)", kind, a, b, k)
			}
		}
	}
}

// TestCalibrateParallelWorkerCountInvariance pins the scheduling-freedom
// half of the contract: any pool size gives the same calibration.
func TestCalibrateParallelWorkerCountInvariance(t *testing.T) {
	p, err := hw.ByName(hw.P100)
	if err != nil {
		t.Fatal(err)
	}
	opt := fastCalibOptions(23)
	opt.IncludeCNN = false
	two := CalibrateParallel(p.GPU, opt, 2)
	many := CalibrateParallel(p.GPU, opt, 16)
	if !reflect.DeepEqual(two.Evals, many.Evals) {
		t.Fatal("worker count changed the Table IV rows")
	}
}
