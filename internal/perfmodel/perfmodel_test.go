package perfmodel

import (
	"sync"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
)

// fastOptions keeps test calibrations quick while staying representative.
func fastOptions() CalibOptions {
	sizes := map[kernels.Kind]int{}
	for k, n := range microbench.DefaultSweepSizes() {
		sizes[k] = n / 4
		// The tril surface needs denser sampling after the backward
		// scatter penalty steepened it; the kernels are cheap.
		if k == kernels.KindTrilFwd || k == kernels.KindTrilBwd {
			sizes[k] = n
		}
	}
	return CalibOptions{
		Seed:       1,
		SweepSizes: sizes,
		MLPConfig:  mlp.Config{HiddenLayers: 2, Width: 48, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 45, BatchSize: 64},
		Ensemble:   2,
	}
}

var (
	calOnce sync.Once
	calV100 *Calibration
)

func v100Calibration(t *testing.T) *Calibration {
	t.Helper()
	calOnce.Do(func() {
		calV100 = Calibrate(hw.V100Platform().GPU, fastOptions())
	})
	return calV100
}

func TestCalibrationCoversTable4Rows(t *testing.T) {
	cal := v100Calibration(t)
	for _, row := range Table4Rows() {
		sm := cal.Eval(row)
		if sm.N == 0 {
			t.Errorf("row %s has no evaluation samples", row)
		}
	}
}

func TestKernelModelAccuracy(t *testing.T) {
	cal := v100Calibration(t)
	// The paper's headline: every adopted kernel model under ~10% GMAE.
	// The fast test calibration uses quarter-size sweeps, so allow modest
	// slack over the full-sweep numbers.
	bounds := map[string]float64{
		"EL-FH": 0.13, "EL-BH": 0.13,
		"concat": 0.12, "memcpy": 0.03,
		"GEMM": 0.14, "transpose": 0.12,
		"tril-F": 0.10, "tril-B": 0.10,
		"elementwise": 0.04,
	}
	for row, bound := range bounds {
		if got := cal.Eval(row).GMAE; got > bound {
			t.Errorf("%s GMAE = %.2f%%, want < %.2f%%", row, 100*got, 100*bound)
		}
	}
}

func TestEnhancedELBeatsPlainOverall(t *testing.T) {
	cal := v100Calibration(t)
	if cal.Eval("EL-FH").GMAE >= cal.Eval("EL-F").GMAE {
		t.Errorf("enhanced EL (%.2f%%) should beat plain (%.2f%%) on all tables",
			100*cal.Eval("EL-FH").GMAE, 100*cal.Eval("EL-F").GMAE)
	}
	// Plain model improves markedly on the large-table subset, where its
	// all-misses assumption holds (Table IV's -L rows).
	if cal.Eval("EL-FL").GMAE >= cal.Eval("EL-F").GMAE {
		t.Errorf("plain EL on large tables (%.2f%%) should beat all tables (%.2f%%)",
			100*cal.Eval("EL-FL").GMAE, 100*cal.Eval("EL-F").GMAE)
	}
}

func TestPlainELOverpredictsSmallTables(t *testing.T) {
	gpu := hw.V100Platform().GPU
	ds := microbench.CollectKind(gpu, kernels.KindEmbeddingFwd, 300, 11)
	plain := CalibrateEL("EL-F", gpu, ds, false)
	dev := kernels.NewDevice(gpu, 5)
	small := kernels.Embedding{B: 1024, E: 2000, T: 4, L: 16, D: 64}
	pred := plain.Predict(small)
	actual := dev.BaseTime(small)
	if pred < actual*1.3 {
		t.Errorf("plain model should grossly overpredict L2-resident lookups: pred=%v actual=%v", pred, actual)
	}
}

func TestELHitRateProperties(t *testing.T) {
	gpu := hw.V100Platform().GPU
	m := &ELHeuristic{GPU: gpu, DRAMBW: gpu.DRAMBandwidth, L2BW: gpu.L2Bandwidth, Enhanced: true}
	tiny := kernels.Embedding{B: 256, E: 1000, T: 1, L: 4, D: 64}.WithDefaults()
	huge := kernels.Embedding{B: 256, E: 50_000_000, T: 1, L: 4, D: 64}.WithDefaults()
	pTiny := m.HitRate(tiny)
	pHuge := m.HitRate(huge)
	if pTiny < 0.99 {
		t.Errorf("fully cached table hit rate = %v, want ~1", pTiny)
	}
	if pHuge > 0.01 {
		t.Errorf("huge table hit rate = %v, want ~0", pHuge)
	}
	// Hit probability decreases with table size.
	last := 1.1
	for _, e := range []int64{1000, 10_000, 100_000, 1_000_000, 10_000_000} {
		p := m.HitRate(kernels.Embedding{B: 256, E: e, T: 1, L: 4, D: 64}.WithDefaults())
		if p > last {
			t.Errorf("hit rate not monotone at E=%d: %v > %v", e, p, last)
		}
		last = p
	}
}

func TestELForwardFormulaIncludesL(t *testing.T) {
	// Doubling the pooling factor must roughly double the plain-model
	// forward prediction (the documented paper-typo fix).
	gpu := hw.V100Platform().GPU
	m := &ELHeuristic{GPU: gpu, DRAMBW: gpu.DRAMBandwidth}
	a := m.Predict(kernels.Embedding{B: 512, E: 1_000_000, T: 8, L: 16, D: 64})
	b := m.Predict(kernels.Embedding{B: 512, E: 1_000_000, T: 8, L: 32, D: 64})
	if b < a*1.7 {
		t.Errorf("doubling L scaled prediction by %vx; weights traffic must include L", b/a)
	}
}

func TestRooflineFitRecoversAffineLaw(t *testing.T) {
	// Synthesize samples from t = 5 + bytes/1000 and check the fit.
	ds := &microbench.Dataset{Kind: kernels.KindConcat}
	for _, b := range []int64{1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26} {
		k := kernels.Concat{OutBytes: b / 2, NInputs: 2} // read+write = b
		ds.Samples = append(ds.Samples, microbench.Sample{Kernel: k, Time: 5 + float64(b)/1000})
	}
	r := CalibrateRoofline("test", ds, 0)
	if r.Lat < 4 || r.Lat > 6 {
		t.Errorf("fitted latency = %v, want ~5", r.Lat)
	}
	if r.BW < 900 || r.BW > 1100 {
		t.Errorf("fitted bandwidth = %v, want ~1000", r.BW)
	}
}

func TestMLPModelResidualForm(t *testing.T) {
	cal := v100Calibration(t)
	m, ok := cal.Registry.Model(kernels.KindGEMM).(*MLPModel)
	if !ok {
		t.Fatal("GEMM model is not an MLPModel")
	}
	if len(m.Nets) != 2 {
		t.Errorf("ensemble size = %d, want 2", len(m.Nets))
	}
	// Prediction must be positive and finite for extreme shapes.
	for _, g := range []kernels.GEMM{
		{Batch: 1, M: 1, N: 1, K: 1},
		{Batch: 1, M: 16384, N: 16384, K: 16384},
	} {
		p := m.Predict(g)
		if p <= 0 {
			t.Errorf("prediction for %v = %v", g, p)
		}
	}
}

func TestRegistrySharedAcrossOps(t *testing.T) {
	cal := v100Calibration(t)
	// Forward and backward GEMMs must hit the same model instance — the
	// sharing that saves microbenchmark cost (Section III).
	fwd := kernels.GEMM{Batch: 1, M: 128, N: 64, K: 32}
	bwd := kernels.GEMM{Batch: 1, M: 64, N: 32, K: 128}
	a, err := cal.Registry.Predict(fwd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cal.Registry.Predict(bwd)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 || b <= 0 {
		t.Error("registry predictions must be positive")
	}
	if cal.Registry.Model(fwd.Kind()) != cal.Registry.Model(bwd.Kind()) {
		t.Error("GEMM model not shared")
	}
}

func TestRegistryUnknownKind(t *testing.T) {
	reg := NewRegistry("V100")
	if _, err := reg.Predict(kernels.GEMM{Batch: 1, M: 1, N: 1, K: 1}); err == nil {
		t.Fatal("empty registry should error")
	}
}

func TestRegistryKinds(t *testing.T) {
	cal := v100Calibration(t)
	kinds := cal.Registry.Kinds()
	want := map[kernels.Kind]bool{
		kernels.KindGEMM: true, kernels.KindEmbeddingFwd: true,
		kernels.KindEmbeddingBwd: true, kernels.KindConcat: true,
		kernels.KindMemcpyH2D: true, kernels.KindTranspose: true,
		kernels.KindTrilFwd: true, kernels.KindTrilBwd: true,
		kernels.KindElementwise: true,
	}
	have := map[kernels.Kind]bool{}
	for _, k := range kinds {
		have[k] = true
	}
	for k := range want {
		if !have[k] {
			t.Errorf("registry missing kind %s", k)
		}
	}
}

func TestCalibrationDeterministic(t *testing.T) {
	opts := fastOptions()
	sizes := map[kernels.Kind]int{}
	for k := range opts.SweepSizes {
		sizes[k] = 60
	}
	opts.SweepSizes = sizes
	opts.MLPConfig.Epochs = 5
	a := Calibrate(hw.V100Platform().GPU, opts)
	b := Calibrate(hw.V100Platform().GPU, opts)
	ka := kernels.GEMM{Batch: 1, M: 333, N: 222, K: 111}
	pa, _ := a.Registry.Predict(ka)
	pb, _ := b.Registry.Predict(ka)
	if pa != pb {
		t.Errorf("same-seed calibrations differ: %v vs %v", pa, pb)
	}
}
