// Package cluster is the multi-process sharding layer over the PR-4
// serving stack: a coordinator that owns a worker registry (static
// list + self-registration with heartbeat liveness) and fans
// /v1/predict traffic out to per-device dlrmperf-serve worker
// processes by rendezvous hashing on the request's device — so each
// device calibrates on exactly one worker and its pinned calibration
// assets stay hot there — retrying a failed worker once on the
// next-ranked candidate before surfacing 502.
//
// The coordinator re-exports the worker HTTP surface unchanged
// (POST /v1/predict, POST /v1/predict/batch, POST /v1/explore,
// GET /v1/scenarios, GET /healthz, GET /stats) plus
// POST /v1/workers/register for self-registration, and its /stats merges the per-worker
// cache/asset/stream counters into one attempt-accounted document
// whose invariant — hits + misses + rejected == requests — holds
// cluster-wide (see stats.go for the accounting model). A
// pass-through result cache (the engine's fingerprint result cache
// via dlrmperf.Engine.RemoteResult) answers repeats of identical
// scenarios at the coordinator without a network round trip.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dlrmperf"
	"dlrmperf/internal/client"
	"dlrmperf/internal/serve"
	"dlrmperf/internal/xsync"
)

// ResultCache is the coordinator's pass-through cache surface —
// implemented by *dlrmperf.Engine (RemoteResult +
// InstallRemoteResult), narrowed to an interface so tests can
// substitute or disable it. InstallRemoteResult seeds an entry
// without executing a fetch — the replication ingest path, so a
// result fetched through ANY peer coordinator is a local hit here on
// the next repeat of the same scenario fingerprint.
type ResultCache interface {
	RemoteResult(ctx context.Context, req dlrmperf.PredictRequest, fetch func() (any, error)) (v any, hit bool, err error)
	InstallRemoteResult(req dlrmperf.PredictRequest, v any)
}

// Config parameterizes a Coordinator.
type Config struct {
	// Registry is the worker set (required).
	Registry *Registry
	// Cache is the pass-through result cache; nil forwards every
	// request (the ablation, and the fault-injection tests' default so
	// repeats actually route).
	Cache ResultCache
	// Client performs worker HTTP calls. The default dials with a 2s
	// timeout (dead-socket failover must be fast) but never bounds the
	// response wait — a cold worker legitimately spends minutes
	// calibrating a device.
	Client *http.Client
	// RetryAfter is the floor of the backpressure hint on coordinator
	// 503s. Default 1s. The emitted hint adapts upward toward the
	// workers' own observed 429 hints (see retryAfter), clamped to
	// MaxRetryAfter.
	RetryAfter time.Duration
	// MaxRetryAfter caps the adaptive 503 hint. Default 30s (floored at
	// RetryAfter).
	MaxRetryAfter time.Duration
	// Self is this coordinator's own base URL as peers reach it —
	// required when Peers is non-empty, ignored otherwise.
	Self string
	// Peers lists the OTHER coordinators in a replicated control plane
	// (base URLs). Non-empty enables the leader lease, registration
	// forwarding, and result/asset gossip; empty (the default) keeps
	// the single-coordinator behavior exactly.
	Peers []string
	// LeaseTTL is the peer-liveness window of the leader lease (default
	// DefaultLiveness, same as worker liveness).
	LeaseTTL time.Duration
	// MaxBodyBytes bounds request bodies (default 16 MiB), MaxBatch the
	// rows of one batch POST (default 4096), MaxGrid the expanded size
	// of one explore POST (default 262144) — the same admission hygiene
	// as the worker surface.
	MaxBodyBytes int64
	MaxBatch     int
	MaxGrid      int
	// Fanout bounds concurrently routed batch rows (default 16).
	Fanout int
	// StatsTimeout bounds each worker's /stats fetch during
	// aggregation (default 5s).
	StatsTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
		}}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	if c.MaxRetryAfter < c.RetryAfter {
		c.MaxRetryAfter = c.RetryAfter
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxGrid <= 0 {
		c.MaxGrid = 1 << 18
	}
	if c.Fanout <= 0 {
		c.Fanout = 16
	}
	if c.StatsTimeout <= 0 {
		c.StatsTimeout = 5 * time.Second
	}
	return c
}

// ErrNoWorkers rejects a request that arrived with zero live workers.
var ErrNoWorkers = errors.New("cluster: no live workers")

// ErrDraining rejects admissions while the coordinator drains.
var ErrDraining = errors.New("cluster: coordinator draining")

// RouteError is a request that exhausted its routing attempts (the
// ranked candidate and one retry) — the 502 surface.
type RouteError struct {
	Attempts int
	Err      error
}

func (e *RouteError) Error() string {
	return fmt.Sprintf("cluster: %d routing attempt(s) failed: %v", e.Attempts, e.Err)
}

func (e *RouteError) Unwrap() error { return e.Err }

// BackpressureError passes a worker's 429 through to the client with
// its Retry-After hint. Backpressure is not a failure: the worker is
// healthy and asked the client to slow down, so the coordinator
// honors it instead of re-routing the request off its affine worker.
type BackpressureError struct{ RetryAfter string }

func (e *BackpressureError) Error() string { return "cluster: worker backpressure (429)" }

// rowError carries a worker-computed failure row (validation errors,
// deadline expiries) through the cache layer without storing it: the
// row still reaches the client, but a failed prediction is never
// cached.
type rowError struct{ row serve.Result }

func (e rowError) Error() string { return e.row.Error }

// Registration is the POST /v1/workers/register wire body.
type Registration struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Coordinator routes client requests across the registry's workers.
type Coordinator struct {
	cfg Config
	reg *Registry

	// lease is the replicated-control-plane membership view; nil when
	// Config.Peers is empty (single-coordinator mode).
	lease *Lease
	// vault replicates every worker's exported calibration assets so a
	// device's new rendezvous home can be handed them on failover.
	vault *assetVault
	// repl tracks detached replication goroutines (gossip fans,
	// registration forwards) so Drain can wait them out.
	repl sync.WaitGroup

	// admitMu guards draining against inflight.Add, exactly like the
	// worker-side admission gate: Drain cannot start waiting while a
	// request is between its draining check and its inflight add.
	admitMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	received        atomic.Uint64
	localHits       atomic.Uint64
	workerFailed    atomic.Uint64
	noWorkers       atomic.Uint64
	drainingRejects atomic.Uint64

	// hintUs is the EWMA of worker 429 Retry-After hints (microseconds),
	// feeding the adaptive 503 hint. Zero until a hint is observed.
	hintUs atomic.Int64

	migrations           atomic.Uint64
	migrationFailures    atomic.Uint64
	peerResultsInstalled atomic.Uint64

	routedMu sync.Mutex
	routed   map[string]uint64
}

// New returns a coordinator over the registry.
func New(cfg Config) *Coordinator {
	if cfg.Registry == nil {
		panic("cluster: Config.Registry is required")
	}
	c := &Coordinator{cfg: cfg.withDefaults(), reg: cfg.Registry, routed: map[string]uint64{}, vault: newAssetVault()}
	if len(c.cfg.Peers) > 0 {
		if c.cfg.Self == "" {
			panic("cluster: Config.Self is required with Peers")
		}
		c.lease = NewLease(c.cfg.Self, c.cfg.Peers, c.cfg.LeaseTTL)
	}
	return c
}

// Registry returns the coordinator's worker registry.
func (c *Coordinator) Registry() *Registry { return c.reg }

// Draining reports whether the coordinator has started draining.
func (c *Coordinator) Draining() bool {
	c.admitMu.Lock()
	defer c.admitMu.Unlock()
	return c.draining
}

// PredictOne serves one client request: local pass-through cache
// first, then rendezvous routing with one retry. blocking selects the
// worker admission mode — false forwards to the worker's non-blocking
// POST /v1/predict (backpressure 429s pass through), true to its
// blocking batch admission (the coordinator batch path, which must
// not shed rows).
func (c *Coordinator) PredictOne(ctx context.Context, req serve.Request, blocking bool) (serve.Result, error) {
	c.received.Add(1)
	c.admitMu.Lock()
	if c.draining {
		c.admitMu.Unlock()
		c.drainingRejects.Add(1)
		return serve.Result{}, ErrDraining
	}
	c.inflight.Add(1)
	c.admitMu.Unlock()
	defer c.inflight.Done()

	fetch := func() (any, error) {
		row, err := c.forward(ctx, req, blocking)
		if err != nil {
			return nil, err
		}
		if row.Error != "" {
			return nil, rowError{row}
		}
		return row, nil
	}
	var v any
	var hit bool
	var err error
	if c.cfg.Cache != nil {
		v, hit, err = c.cfg.Cache.RemoteResult(ctx, req.ToPredict(), fetch)
	} else {
		v, err = fetch()
	}
	if err != nil {
		var re rowError
		if errors.As(err, &re) {
			// A worker-computed failure row: already accounted worker-side,
			// delivered to the client like any other row.
			return re.row, nil
		}
		return serve.Result{}, err
	}
	row := v.(serve.Result)
	if !hit && c.cfg.Cache != nil {
		// This caller executed the fetch (hit covers both cache reads and
		// flight joins), so it is the one copy of the result that peers
		// don't have yet: replicate the RAW row, pre-re-stamp, so every
		// coordinator caches the same value a repeat would fetch.
		c.replicateResult(req, row)
	}
	// The cached value carries the envelope of whichever request first
	// fetched it; re-stamp this caller's own.
	row.Request = req
	if hit {
		c.localHits.Add(1)
		row.CacheHit = true
	}
	return row, nil
}

// forward routes one request to the top-ranked live worker for its
// device, retrying once on the next-ranked candidate after a failure.
// MarkFailed removes the failed worker from the live set, so the
// re-rank of the survivors IS the next-ranked candidate list —
// rendezvous hashing guarantees keys on surviving workers don't move.
func (c *Coordinator) forward(ctx context.Context, req serve.Request, blocking bool) (serve.Result, error) {
	var lastErr error
	const maxAttempts = 2
	for attempt := 0; attempt < maxAttempts; attempt++ {
		ranked := Rank(c.reg.Live(), req.Device)
		if len(ranked) == 0 {
			if lastErr != nil {
				break // candidates exhausted mid-retry: a route failure, not "no workers"
			}
			c.noWorkers.Add(1)
			return serve.Result{}, ErrNoWorkers
		}
		w := ranked[0]
		// Warm hand-off: if this worker is about to inherit a device whose
		// calibration assets were exported by a (now dead or out-ranked)
		// different home, install them before the first request lands.
		c.ensureWarm(ctx, req.Device, w)
		c.routedMu.Lock()
		c.routed[w.ID]++
		c.routedMu.Unlock()
		row, err := c.call(ctx, w, req, blocking)
		if err == nil {
			return row, nil
		}
		var bp *BackpressureError
		if errors.As(err, &bp) {
			return serve.Result{}, err // healthy worker said slow down: no retry, no failure mark
		}
		if ctx.Err() != nil {
			// The CLIENT died (canceled or timed out mid-call), which
			// says nothing about the worker: do not quarantine it — that
			// would break device affinity and force a re-calibration on
			// the next-ranked worker — and do not count a worker
			// failure. If the request reached the worker, the worker's
			// own canceled/miss accounting covers it.
			return serve.Result{}, fmt.Errorf("worker %s: %w", w.ID, err)
		}
		c.workerFailed.Add(1)
		c.reg.MarkFailed(w.ID)
		lastErr = fmt.Errorf("worker %s: %w", w.ID, err)
	}
	return serve.Result{}, &RouteError{Attempts: maxAttempts, Err: lastErr}
}

// workerClient wraps one worker URL in the typed client, sharing the
// coordinator's transport. Construction is a tiny struct fill — the
// network round trip it fronts dwarfs it — so per-call construction
// beats a URL-keyed cache.
func (c *Coordinator) workerClient(url string) *client.Client {
	return client.New(url, client.WithHTTPClient(c.cfg.Client))
}

// call performs one worker attempt through the typed client.
func (c *Coordinator) call(ctx context.Context, w Worker, req serve.Request, blocking bool) (serve.Result, error) {
	cl := c.workerClient(w.URL)
	if blocking {
		// A 1-row batch rides the worker's BLOCKING admission path:
		// batch rows must apply backpressure by waiting, never shed.
		out, err := cl.PredictBatch(ctx, []serve.Request{req})
		if err != nil {
			return serve.Result{}, err
		}
		if len(out.Results) != 1 {
			return serve.Result{}, fmt.Errorf("worker batch report has %d rows, want 1", len(out.Results))
		}
		row := out.Results[0]
		// A draining worker reports its admission rejection as a 200 row
		// with the drain sentinel in Error. That is a routing failure,
		// not a prediction verdict: surface it as an error so the
		// forward loop fails over to the survivor — batch rows must
		// never terminally fail just because their affine worker is
		// shutting down.
		if row.Error == serve.ErrDraining.Error() {
			return serve.Result{}, fmt.Errorf("worker draining: %s", row.Error)
		}
		return row, nil
	}
	row, err := cl.Predict(ctx, req)
	if err != nil {
		var bp *client.ErrBackpressure
		if errors.As(err, &bp) {
			c.observeWorkerHint(bp.RetryAfter)
			return serve.Result{}, &BackpressureError{RetryAfter: backpressureHint(bp.RetryAfter)}
		}
		// Every other typed client error — a worker 503 while draining
		// included — is a routing failure the forward loop fails over
		// from, same as a dead socket.
		return serve.Result{}, err
	}
	return row, nil
}

// RunBatch routes a request list across the cluster (bounded fan-out,
// blocking worker admission) and returns one row per request in
// request order; routing failures surface in the failing row.
func (c *Coordinator) RunBatch(ctx context.Context, reqs []serve.Request) []serve.Result {
	out := make([]serve.Result, len(reqs))
	xsync.ForEachN(len(reqs), c.cfg.Fanout, func(i int) {
		res, err := c.PredictOne(ctx, reqs[i], true)
		if err != nil {
			res = serve.Result{Request: reqs[i], Error: err.Error()}
		}
		out[i] = res
	})
	return out
}

// Report is the coordinator's batch response: per-row results plus
// the aggregated cluster counters at report time.
type Report struct {
	Results   []serve.Result `json:"results"`
	Requests  int            `json:"requests"`
	Failed    int            `json:"failed"`
	ElapsedMs float64        `json:"elapsed_ms"`
	// Calibrations is the device-affinity ledger: worker ID -> device
	// -> executed calibration runs, merged from worker /stats.
	Calibrations map[string]map[string]int `json:"calibrations"`
	Cache        serve.CacheStats          `json:"cache"`
	Rejected     ClusterRejected           `json:"rejected_requests"`
	Error        *serve.ReportError        `json:"error,omitempty"`
}

// Run serves a whole request list and assembles the cluster report.
func (c *Coordinator) Run(ctx context.Context, reqs []serve.Request) *Report {
	start := time.Now()
	results := c.RunBatch(ctx, reqs)
	rep := &Report{
		Results:   results,
		Requests:  len(results),
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, row := range results {
		if row.Error != "" {
			rep.Failed++
		}
	}
	st := c.Stats(ctx)
	rep.Calibrations = st.Calibrations
	rep.Cache, rep.Rejected = st.Cache, st.Rejected
	if rep.Failed == rep.Requests && rep.Requests > 0 {
		rep.Error = &serve.ReportError{
			Code:    "all_requests_failed",
			Message: fmt.Sprintf("all %d requests failed; first error: %s", rep.Requests, results[0].Error),
		}
	}
	return rep
}

// Stats assembles the aggregated cluster document: the coordinator's
// own buckets plus every live worker's /stats snapshot (fetched
// concurrently), merged under the attempt-accounting model. The
// coordinator buckets are read before the worker fetches and each
// worker snapshot is internally ordered (serve.Server.Stats), so
// Accounted() <= Requests holds on every aggregated snapshot too.
func (c *Coordinator) Stats(ctx context.Context) Stats {
	agg := Stats{
		Rejected: ClusterRejected{
			WorkerFailed: c.workerFailed.Load(),
			NoWorkers:    c.noWorkers.Load(),
			Draining:     c.drainingRejects.Load(),
		},
		Coordinator: CoordinatorStats{
			Received:             c.received.Load(),
			LocalCacheHits:       c.localHits.Load(),
			Migrations:           c.migrations.Load(),
			MigrationFailures:    c.migrationFailures.Load(),
			PeerResultsInstalled: c.peerResultsInstalled.Load(),
		},
		Lease:    c.lease.Snapshot(),
		Vault:    c.vault.snapshot(),
		Draining: c.Draining(),
	}
	// Every coordinator-accounted attempt joins both sides of the
	// invariant: the bucket above and the request total here.
	agg.Requests = agg.Coordinator.LocalCacheHits + agg.Rejected.WorkerFailed +
		agg.Rejected.NoWorkers + agg.Rejected.Draining
	agg.Cache.Hits = agg.Coordinator.LocalCacheHits

	infos := c.reg.Snapshot()
	statuses := make([]WorkerStatus, len(infos))
	xsync.ForEachN(len(infos), 8, func(i int) {
		statuses[i] = c.workerStatus(ctx, infos[i])
	})
	for _, ws := range statuses {
		if ws.Stats != nil {
			agg.mergeWorker(ws.ID, *ws.Stats)
		}
	}
	agg.Workers = statuses
	return agg
}

// workerStatus fetches one worker's /stats snapshot (live workers
// only; a fetch failure is reported, not fatal).
func (c *Coordinator) workerStatus(ctx context.Context, info WorkerInfo) WorkerStatus {
	c.routedMu.Lock()
	routed := c.routed[info.ID]
	c.routedMu.Unlock()
	ws := WorkerStatus{WorkerInfo: info, Routed: routed}
	if !info.Live {
		return ws
	}
	sctx, cancel := context.WithTimeout(ctx, c.cfg.StatsTimeout)
	defer cancel()
	st, err := c.workerClient(info.URL).Stats(sctx)
	if err != nil {
		ws.StatsError = err.Error()
		return ws
	}
	ws.Stats = &st
	return ws
}

// Drain gracefully stops the coordinator: new admissions reject with
// ErrDraining, every in-flight route finishes and is delivered, and —
// with propagate set — the drain is then pushed to the registered
// (non-static) live workers via POST /v1/drain, best-effort. Static
// workers are deliberately spared: they were configured from outside
// and may be shared with other coordinators.
func (c *Coordinator) Drain(propagate bool) {
	c.admitMu.Lock()
	c.draining = true
	c.admitMu.Unlock()
	c.inflight.Wait()
	c.repl.Wait() // outstanding gossip fans finish before shutdown
	if !propagate {
		return
	}
	workers := c.reg.Live()
	var wg sync.WaitGroup
	for _, w := range workers {
		if w.Static {
			continue
		}
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			//lint:allow ctxflow deliberately detached: drain pushes must outlive the dying caller's ctx, bounded by StatsTimeout
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.StatsTimeout)
			defer cancel()
			_ = c.workerClient(w.URL).Drain(ctx) // best-effort push
		}(w)
	}
	wg.Wait()
}

// Handler returns the coordinator's HTTP surface: the worker surface
// re-exported, plus worker self-registration.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", c.handlePredict)
	mux.HandleFunc("POST /v1/predict/batch", c.handleBatch)
	mux.HandleFunc("POST /v1/explore", c.handleExplore)
	mux.HandleFunc("POST /v1/workers/register", c.handleRegister)
	mux.HandleFunc("POST /v1/workers/assets", c.handleWorkerAssets)
	if c.lease != nil {
		// Peer gossip is apply-only: these handlers install state locally
		// and never re-forward, so replication cannot loop.
		mux.HandleFunc("POST /v1/peers/register", c.handlePeerRegister)
		mux.HandleFunc("POST /v1/peers/result", c.handlePeerResult)
		mux.HandleFunc("POST /v1/peers/assets", c.handlePeerAssets)
	}
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, _ *http.Request) {
		serve.WriteJSON(w, http.StatusOK, dlrmperf.Scenarios())
	})
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /stats", c.handleStats)
	return mux
}

// backpressureHint renders a worker's Retry-After duration for the
// pass-through 429 header. Sub-second hints round UP to 1 second —
// truncation would emit "0", telling clients to hammer a worker that
// just asked them to back off. Non-positive means no hint.
func backpressureHint(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return serve.RetryAfterSeconds(d)
}

// observeWorkerHint folds one worker 429 Retry-After hint into the
// EWMA (alpha 1/4) behind the coordinator's adaptive 503 hint.
func (c *Coordinator) observeWorkerHint(d time.Duration) {
	if d <= 0 {
		return
	}
	us := d.Microseconds()
	for {
		old := c.hintUs.Load()
		next := us
		if old > 0 {
			next = old + (us-old)/4
		}
		if c.hintUs.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter is the hint on coordinator-origin 503s (draining,
// no_workers). It starts at the configured floor and adapts upward
// toward the workers' own observed 429 hints — a coordinator fronting
// saturated workers should not invite clients back sooner than the
// workers themselves would — clamped to [RetryAfter, MaxRetryAfter].
func (c *Coordinator) retryAfter() string {
	d := c.cfg.RetryAfter
	if hint := time.Duration(c.hintUs.Load()) * time.Microsecond; hint > d {
		d = hint
	}
	if d > c.cfg.MaxRetryAfter {
		d = c.cfg.MaxRetryAfter
	}
	return serve.RetryAfterSeconds(d)
}

func (c *Coordinator) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req serve.Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	res, err := c.PredictOne(r.Context(), req, false)
	var bp *BackpressureError
	var re *RouteError
	switch {
	case err == nil:
		serve.WriteJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", c.retryAfter())
		serve.WriteJSON(w, http.StatusServiceUnavailable, serve.HTTPError{Code: "draining", Message: err.Error()})
	case errors.Is(err, ErrNoWorkers):
		w.Header().Set("Retry-After", c.retryAfter())
		serve.WriteJSON(w, http.StatusServiceUnavailable, serve.HTTPError{Code: "no_workers", Message: err.Error()})
	case errors.As(err, &bp):
		ra := bp.RetryAfter
		if ra == "" {
			ra = c.retryAfter()
		}
		w.Header().Set("Retry-After", ra)
		serve.WriteJSON(w, http.StatusTooManyRequests, serve.HTTPError{Code: "queue_full", Message: err.Error()})
	case errors.As(err, &re):
		serve.WriteJSON(w, http.StatusBadGateway, serve.HTTPError{Code: "worker_failed", Message: err.Error()})
	default:
		serve.WriteJSON(w, http.StatusInternalServerError, serve.HTTPError{Code: "internal", Message: err.Error()})
	}
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []serve.Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&reqs); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	if len(reqs) == 0 {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: "empty request list"})
		return
	}
	if len(reqs) > c.cfg.MaxBatch {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{
			Code:    "batch_too_large",
			Message: fmt.Sprintf("batch of %d exceeds the %d-row limit; split it", len(reqs), c.cfg.MaxBatch),
		})
		return
	}
	serve.WriteJSON(w, http.StatusOK, c.Run(r.Context(), reqs))
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var reg Registration
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&reg); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	if reg.URL == "" {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: "url is required"})
		return
	}
	if reg.ID == "" {
		reg.ID = reg.URL
	}
	c.reg.Register(reg.ID, reg.URL)
	c.shareRegistration(reg)
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"ttl_ms":  c.reg.TTL().Milliseconds(),
		"workers": len(c.reg.Live()),
	})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	live := len(c.reg.Live())
	if c.Draining() {
		serve.WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "workers": live})
		return
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{"status": "ok", "workers": live})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, c.Stats(r.Context()))
}

// Heartbeat self-registers a worker with a coordinator immediately and
// then every interval, keeping it inside the registry's liveness
// window, until the returned stop function is called (idempotent,
// waits for the loop to exit) or ctx is canceled. Registration
// failures are retried on the next tick — a coordinator restart heals
// itself. A nil hc uses a 5s-bounded default (a beat must never hang
// past its own interval for long).
func Heartbeat(ctx context.Context, hc *http.Client, coordinatorURL, id, selfURL string, interval time.Duration) (stop func()) {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	cl := client.New(coordinatorURL, client.WithHTTPClient(hc))
	done := make(chan struct{})
	exited := make(chan struct{})
	beat := func() {
		_ = cl.Register(ctx, id, selfURL) // best-effort; retried next tick
	}
	go func() {
		defer close(exited)
		beat()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				beat()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
