package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"time"

	"dlrmperf/internal/serve"
)

// Coordinator replication. A coordinator configured with a static peer
// list (Config.Self + Config.Peers) joins a replication group built on
// a leader lease that follows the worker registry's pattern exactly:
// an injectable clock and a liveness window, no consensus protocol.
//
// Leadership is deterministic: every coordinator ranks the candidate
// set — itself plus every peer seen alive within the lease window — and
// the lowest URL holds the lease. Proof of life is passive and active
// at once: a successful probe (StartPeerProbes), an inbound gossip
// message, and a successful outbound gossip delivery all refresh a
// peer's lease entry. When the leader stops answering, its entry ages
// out of every follower's window and the next-lowest live coordinator
// is — by the shared rule, without an election round trip — the new
// leader.
//
// Writes and reads split the classic way: reads (routing, stats,
// cache lookups) are answered locally on every coordinator, while
// writes flow toward the leader. A worker registration landing on a
// follower is applied locally (its own routing table must not lag its
// own observations) and forwarded to the leader, which gossips it to
// every peer — so wherever a worker registers, the whole group routes
// to it within one beat. Because the leader is always the lowest live
// URL, forwarding chains strictly descend and can never cycle.
//
// Replicated state rides three apply-only peer endpoints (they never
// re-forward, so gossip cannot loop):
//
//	POST /v1/peers/register  worker registration         -> Registry.Register
//	POST /v1/peers/result    fetched result row          -> ResultCache.InstallRemoteResult
//	POST /v1/peers/assets    worker asset export (vault) -> assetVault.put
//
// Result rows replicate from whichever coordinator fetched them
// (commutative, idempotent — no leader needed), which is what makes a
// repeat of any fingerprint a local cache hit on every coordinator:
// killing the leader mid-run loses no cached results.

// Lease is the coordinator group's leader lease: the static peer set
// with last-proof-of-life stamps. Like the worker registry, the clock
// is injectable so expiry tests advance time instead of sleeping, and
// liveness is recomputed on read — there is no background state to
// tend.
type Lease struct {
	self string
	ttl  time.Duration
	// now is the clock, injectable for deterministic expiry tests.
	now func() time.Time

	mu    sync.Mutex
	peers map[string]time.Time // peer URL -> last proof of life (zero: never seen)
}

// NewLease returns a lease over the static peer set. self is this
// coordinator's own advertised URL; it is excluded from peers if
// listed there. ttl <= 0 selects DefaultLiveness.
func NewLease(self string, peers []string, ttl time.Duration) *Lease {
	if ttl <= 0 {
		ttl = DefaultLiveness
	}
	self = strings.TrimRight(strings.TrimSpace(self), "/")
	l := &Lease{self: self, ttl: ttl, now: time.Now, peers: map[string]time.Time{}}
	for _, p := range peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" && p != self {
			l.peers[p] = time.Time{}
		}
	}
	return l
}

// Self reports this coordinator's own URL.
func (l *Lease) Self() string { return l.self }

// TTL reports the lease liveness window.
func (l *Lease) TTL() time.Duration { return l.ttl }

// Peers lists the configured peer URLs, sorted.
func (l *Lease) Peers() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.peers))
	for p := range l.peers {
		out = append(out, p)
	}
	// Insertion sort: the peer set is tiny and this keeps the hot
	// Leader/Peers pair free of package dependencies beyond the stdlib
	// already imported.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// MarkSeen records proof of life for a peer (successful probe, inbound
// gossip, or a delivered outbound gossip). Unknown URLs are ignored —
// the peer set is static by design.
func (l *Lease) MarkSeen(peer string) {
	peer = strings.TrimRight(peer, "/")
	l.mu.Lock()
	if _, ok := l.peers[peer]; ok {
		l.peers[peer] = l.now()
	}
	l.mu.Unlock()
}

// Leader returns the lease holder: the lowest URL among this
// coordinator and every peer seen within the window. With no live
// peers (or no peers at all) that is self — a group of one leads
// itself.
func (l *Lease) Leader() string {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	leader := l.self
	for p, seen := range l.peers {
		if !seen.IsZero() && now.Sub(seen) <= l.ttl && p < leader {
			leader = p
		}
	}
	return leader
}

// IsLeader reports whether this coordinator currently holds the lease.
func (l *Lease) IsLeader() bool { return l.Leader() == l.self }

// PeerStatus is one peer's row in the lease snapshot.
type PeerStatus struct {
	URL  string `json:"url"`
	Live bool   `json:"live"`
	// LastSeenAgeMs is the age of the newest proof of life (-1: never).
	LastSeenAgeMs int64 `json:"last_seen_age_ms"`
}

// LeaseStatus is the lease block of the coordinator /stats document.
type LeaseStatus struct {
	Self     string       `json:"self"`
	Leader   string       `json:"leader"`
	IsLeader bool         `json:"is_leader"`
	TTLMs    int64        `json:"ttl_ms"`
	Peers    []PeerStatus `json:"peers,omitempty"`
}

// Snapshot assembles the lease's observable state, peers sorted. Safe
// on a nil lease (single-coordinator mode), where it reports nothing.
func (l *Lease) Snapshot() *LeaseStatus {
	if l == nil {
		return nil
	}
	leader := l.Leader()
	now := l.now()
	st := &LeaseStatus{Self: l.self, Leader: leader, IsLeader: leader == l.self, TTLMs: l.ttl.Milliseconds()}
	for _, p := range l.Peers() {
		l.mu.Lock()
		seen := l.peers[p]
		l.mu.Unlock()
		ps := PeerStatus{URL: p, LastSeenAgeMs: -1}
		if !seen.IsZero() {
			ps.Live = now.Sub(seen) <= l.ttl
			ps.LastSeenAgeMs = now.Sub(seen).Milliseconds()
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}

// peerRegistration, peerResult, and peerAssets are the replication
// wire bodies. From names the origin coordinator: a gossip receipt
// doubles as its proof of life.
type peerRegistration struct {
	From string       `json:"from"`
	Reg  Registration `json:"registration"`
}

type peerResult struct {
	From    string        `json:"from"`
	Request serve.Request `json:"request"`
	Row     serve.Result  `json:"row"`
}

type peerAssets struct {
	From string    `json:"from"`
	Push AssetPush `json:"push"`
}

// gossip fans body out to every peer, asynchronously and best-effort:
// replication is an optimization over re-fetching (results), the next
// heartbeat (registrations), or the next push (assets), so a lost
// message heals itself. A delivered message marks the peer alive.
func (c *Coordinator) gossip(path string, body any) {
	if c.lease == nil {
		return
	}
	for _, peer := range c.lease.Peers() {
		c.repl.Add(1)
		go func(peer string) {
			defer c.repl.Done()
			//lint:allow ctxflow deliberately detached: replication must outlive the originating request, bounded by StatsTimeout
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.StatsTimeout)
			defer cancel()
			if err := c.workerClient(peer).PostJSON(ctx, path, body, nil); err == nil {
				c.lease.MarkSeen(peer)
			}
		}(peer)
	}
}

// shareRegistration propagates a client-facing registration through
// the group: the leader gossips it to every peer; a follower forwards
// it to the leader (the write path), which applies and gossips it.
// Forwarding targets are always strictly lower URLs, so chains descend
// and terminate at the group minimum.
func (c *Coordinator) shareRegistration(reg Registration) {
	if c.lease == nil {
		return
	}
	if c.lease.IsLeader() {
		c.gossip("/v1/peers/register", peerRegistration{From: c.lease.Self(), Reg: reg})
		return
	}
	leader := c.lease.Leader()
	c.repl.Add(1)
	go func() {
		defer c.repl.Done()
		//lint:allow ctxflow deliberately detached: the forwarded write must outlive the worker's heartbeat request, bounded by StatsTimeout
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.StatsTimeout)
		defer cancel()
		if err := c.workerClient(leader).Register(ctx, reg.ID, reg.URL); err == nil {
			c.lease.MarkSeen(leader)
		}
	}()
}

// replicateResult shares a freshly fetched result row with every peer
// by scenario fingerprint, so a repeat hitting ANY coordinator is a
// local cache hit.
func (c *Coordinator) replicateResult(req serve.Request, row serve.Result) {
	if c.lease == nil || c.cfg.Cache == nil {
		return
	}
	c.gossip("/v1/peers/result", peerResult{From: c.lease.Self(), Request: req, Row: row})
}

// handlePeerRegister applies a replicated worker registration.
// Apply-only: peer endpoints never re-forward, so gossip cannot loop.
func (c *Coordinator) handlePeerRegister(w http.ResponseWriter, r *http.Request) {
	var p peerRegistration
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&p); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	if p.Reg.URL == "" {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: "registration url is required"})
		return
	}
	c.lease.MarkSeen(p.From)
	if p.Reg.ID == "" {
		p.Reg.ID = p.Reg.URL
	}
	c.reg.Register(p.Reg.ID, p.Reg.URL)
	serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "applied"})
}

// handlePeerResult installs a replicated result row into the local
// pass-through cache under its scenario fingerprint.
func (c *Coordinator) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	var p peerResult
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&p); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	c.lease.MarkSeen(p.From)
	if c.cfg.Cache != nil && p.Row.Error == "" {
		c.cfg.Cache.InstallRemoteResult(p.Request.ToPredict(), p.Row)
		c.peerResultsInstalled.Add(1)
	}
	serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "applied"})
}

// handlePeerAssets applies a replicated worker asset export to the
// local vault.
func (c *Coordinator) handlePeerAssets(w http.ResponseWriter, r *http.Request) {
	var p peerAssets
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&p); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	c.lease.MarkSeen(p.From)
	if p.Push.Device != "" && len(p.Push.Assets) > 0 {
		c.vault.put(p.Push.Device, p.Push.ID, p.Push.Epoch, p.Push.Assets)
	}
	serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "applied"})
}

// StartPeerProbes actively probes every peer's GET /healthz every
// interval (default 2s), refreshing the lease on success, until the
// returned stop function is called or ctx is canceled. Probing is the
// liveness floor — an idle group with no gossip still converges on a
// leader — and the heal path: a restarted peer is seen within one
// probe interval.
func (c *Coordinator) StartPeerProbes(ctx context.Context, interval time.Duration) (stop func()) {
	if c.lease == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	probe := func() {
		for _, peer := range c.lease.Peers() {
			pctx, cancel := context.WithTimeout(ctx, c.cfg.StatsTimeout)
			h, err := c.workerClient(peer).Healthz(pctx)
			cancel()
			// A draining peer answers but is leaving the group: it must
			// not be (re-)elected leader, so only "ok" refreshes its lease.
			if err == nil && h.Status == "ok" {
				c.lease.MarkSeen(peer)
			}
		}
	}
	go func() {
		defer close(exited)
		probe()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				probe()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// Lease returns the coordinator's leader lease (nil outside a
// replication group).
func (c *Coordinator) Lease() *Lease { return c.lease }
