package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dlrmperf"
	"dlrmperf/internal/explore"
	"dlrmperf/internal/serve"
)

// clusterGrid is the coordinator sweep fixture: one workload over two
// devices at two widths, 4 unique configurations with no duplicates or
// rejections, so routing assertions are exact.
func clusterGrid() explore.Grid {
	return explore.Grid{
		Scenarios: []string{"dlrm-default"},
		Devices:   []string{"V100", "P100"},
		GPUs:      []int{1, 2},
		Batches:   []int64{512},
	}
}

// TestClusterExploreDeviceAffinity: a coordinator sweep routes each
// device's configurations to exactly one worker (rendezvous routing +
// device-major expansion), so pinned calibrations and compiled plans
// are reused instead of duplicated across the cluster.
func TestClusterExploreDeviceAffinity(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	rep, err := coord.RunExplore(context.Background(), clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GridPoints != 4 || rep.Unique != 4 || rep.Rejected != 0 || rep.Failed != 0 {
		t.Fatalf("coverage = %d points / %d unique / %d rejected / %d failed, want 4/4/0/0: %+v",
			rep.GridPoints, rep.Unique, rep.Rejected, rep.Failed, rep.FailedSamples)
	}
	for _, dev := range []string{"V100", "P100"} {
		owners := 0
		for _, fw := range workers {
			fw.mu.Lock()
			_, has := fw.calibrated[dev]
			fw.mu.Unlock()
			if has {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("device %s calibrated on %d workers, want exactly 1", dev, owners)
		}
	}
	assertAggInvariant(t, coord.Stats(context.Background()))
}

// TestClusterExploreWarmRepeat: with the pass-through cache installed,
// a repeat sweep is answered entirely at the coordinator — hit rate
// 1.0, zero additional worker traffic.
func TestClusterExploreWarmRepeat(t *testing.T) {
	eng, err := dlrmperf.NewEngineWith(dlrmperf.EngineConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	coord, workers := newTestCluster(t, 2, eng)
	ctx := context.Background()

	cold, err := coord.RunExplore(ctx, clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || cold.Failed != 0 {
		t.Fatalf("cold pass: %d hits, %d failed", cold.CacheHits, cold.Failed)
	}
	routed := workers[0].receivedCount() + workers[1].receivedCount()
	if routed != 4 {
		t.Fatalf("cold pass routed %d requests, want 4", routed)
	}

	warm, err := coord.RunExplore(ctx, clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHitRate != 1 || warm.CacheHits != 4 {
		t.Errorf("warm hit rate = %v (%d hits), want 1.0 over 4", warm.CacheHitRate, warm.CacheHits)
	}
	if again := workers[0].receivedCount() + workers[1].receivedCount(); again != routed {
		t.Errorf("warm pass routed %d extra requests, want 0 (answered locally)", again-routed)
	}
	st := coord.Stats(ctx)
	assertAggInvariant(t, st)
	if st.Coordinator.LocalCacheHits != 4 {
		t.Errorf("local cache hits = %d, want 4", st.Coordinator.LocalCacheHits)
	}
}

// TestClusterExploreHTTP drives POST /v1/explore on the coordinator:
// 200 with full coverage, 400 grid_too_large over MaxGrid, 400
// bad_grid on a structurally empty grid, and 503 + Retry-After while
// draining.
func TestClusterExploreHTTP(t *testing.T) {
	coord, _ := newTestCluster(t, 2, nil)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	gridJSON, err := json.Marshal(clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	var rep explore.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Unique != 4 || rep.Failed != 0 {
		t.Fatalf("explore status %d, coverage %d unique / %d failed, want 200 with 4/0",
			resp.StatusCode, rep.Unique, rep.Failed)
	}
	if len(rep.Frontier) == 0 {
		t.Error("report missing frontier")
	}

	postErr := func(body string) (int, serve.HTTPError) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var he serve.HTTPError
		json.NewDecoder(resp.Body).Decode(&he)
		return resp.StatusCode, he
	}
	if code, he := postErr(`{"devices": ["V100"]}`); code != http.StatusBadRequest || he.Code != "bad_grid" {
		t.Errorf("empty grid: %d %q, want 400 bad_grid", code, he.Code)
	}

	small := New(Config{Registry: coord.cfg.Registry, MaxGrid: 2})
	tsSmall := httptest.NewServer(small.Handler())
	defer tsSmall.Close()
	resp2, err := http.Post(tsSmall.URL+"/v1/explore", "application/json", bytes.NewReader(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	var he serve.HTTPError
	json.NewDecoder(resp2.Body).Decode(&he)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest || he.Code != "grid_too_large" {
		t.Errorf("over-budget grid: %d %q, want 400 grid_too_large", resp2.StatusCode, he.Code)
	}

	coord.Drain(false)
	resp3, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("explore during drain: status %d, want 503", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
}

// TestClusterExploreWorkerFailure: a grid over a device whose affine
// worker is dead still completes — failover retries the unit on the
// surviving worker and the report records zero failures.
func TestClusterExploreWorkerFailure(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	workers[0].killed.Store(true)
	rep, err := coord.RunExplore(context.Background(), clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Predicted != 4 {
		t.Fatalf("with one dead worker: %d predicted / %d failed: %+v",
			rep.Predicted, rep.Failed, rep.FailedSamples)
	}
	if got := workers[1].receivedCount(); got != 4 {
		t.Errorf("surviving worker served %d units, want 4", got)
	}
}
