package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"dlrmperf"
	"dlrmperf/internal/client"
	"dlrmperf/internal/explore"
)

// clusterGrid is the coordinator sweep fixture: one workload over two
// devices at two widths, 4 unique configurations with no duplicates or
// rejections, so routing assertions are exact.
func clusterGrid() explore.Grid {
	return explore.Grid{
		Scenarios: []string{"dlrm-default"},
		Devices:   []string{"V100", "P100"},
		GPUs:      []int{1, 2},
		Batches:   []int64{512},
	}
}

// TestClusterExploreDeviceAffinity: a coordinator sweep routes each
// device's configurations to exactly one worker (rendezvous routing +
// device-major expansion), so pinned calibrations and compiled plans
// are reused instead of duplicated across the cluster.
func TestClusterExploreDeviceAffinity(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	rep, err := coord.RunExplore(context.Background(), clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GridPoints != 4 || rep.Unique != 4 || rep.Rejected != 0 || rep.Failed != 0 {
		t.Fatalf("coverage = %d points / %d unique / %d rejected / %d failed, want 4/4/0/0: %+v",
			rep.GridPoints, rep.Unique, rep.Rejected, rep.Failed, rep.FailedSamples)
	}
	for _, dev := range []string{"V100", "P100"} {
		owners := 0
		for _, fw := range workers {
			fw.mu.Lock()
			_, has := fw.calibrated[dev]
			fw.mu.Unlock()
			if has {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("device %s calibrated on %d workers, want exactly 1", dev, owners)
		}
	}
	assertAggInvariant(t, coord.Stats(context.Background()))
}

// TestClusterExploreWarmRepeat: with the pass-through cache installed,
// a repeat sweep is answered entirely at the coordinator — hit rate
// 1.0, zero additional worker traffic.
func TestClusterExploreWarmRepeat(t *testing.T) {
	eng, err := dlrmperf.NewEngineWith(dlrmperf.EngineConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	coord, workers := newTestCluster(t, 2, eng)
	ctx := context.Background()

	cold, err := coord.RunExplore(ctx, clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || cold.Failed != 0 {
		t.Fatalf("cold pass: %d hits, %d failed", cold.CacheHits, cold.Failed)
	}
	routed := workers[0].receivedCount() + workers[1].receivedCount()
	if routed != 4 {
		t.Fatalf("cold pass routed %d requests, want 4", routed)
	}

	warm, err := coord.RunExplore(ctx, clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHitRate != 1 || warm.CacheHits != 4 {
		t.Errorf("warm hit rate = %v (%d hits), want 1.0 over 4", warm.CacheHitRate, warm.CacheHits)
	}
	if again := workers[0].receivedCount() + workers[1].receivedCount(); again != routed {
		t.Errorf("warm pass routed %d extra requests, want 0 (answered locally)", again-routed)
	}
	st := coord.Stats(ctx)
	assertAggInvariant(t, st)
	if st.Coordinator.LocalCacheHits != 4 {
		t.Errorf("local cache hits = %d, want 4", st.Coordinator.LocalCacheHits)
	}
}

// TestClusterExploreHTTP drives POST /v1/explore on the coordinator:
// 200 with full coverage, 400 grid_too_large over MaxGrid, 400
// bad_grid on a structurally empty grid, and 503 + Retry-After while
// draining.
func TestClusterExploreHTTP(t *testing.T) {
	coord, _ := newTestCluster(t, 2, nil)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	cl := client.New(ts.URL)
	ctx := context.Background()
	rep, err := cl.Explore(ctx, clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unique != 4 || rep.Failed != 0 {
		t.Fatalf("explore coverage %d unique / %d failed, want 4/0", rep.Unique, rep.Failed)
	}
	if len(rep.Frontier) == 0 {
		t.Error("report missing frontier")
	}

	var apiErr *client.APIError
	if _, err := cl.Explore(ctx, explore.Grid{Devices: []string{"V100"}}); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusBadRequest || apiErr.Code != "bad_grid" {
		t.Errorf("empty grid: err = %v, want 400 bad_grid", err)
	}

	small := New(Config{Registry: coord.cfg.Registry, MaxGrid: 2})
	tsSmall := httptest.NewServer(small.Handler())
	defer tsSmall.Close()
	if _, err := client.New(tsSmall.URL).Explore(ctx, clusterGrid()); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusBadRequest || apiErr.Code != "grid_too_large" {
		t.Errorf("over-budget grid: err = %v, want 400 grid_too_large", err)
	}

	coord.Drain(false)
	var dr *client.ErrDraining
	if _, err := cl.Explore(ctx, clusterGrid()); !errors.As(err, &dr) || dr.RetryAfter <= 0 {
		t.Errorf("explore during drain: err = %v, want ErrDraining with a Retry-After hint", err)
	}
}

// TestClusterExploreWorkerFailure: a grid over a device whose affine
// worker is dead still completes — failover retries the unit on the
// surviving worker and the report records zero failures.
func TestClusterExploreWorkerFailure(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	workers[0].killed.Store(true)
	rep, err := coord.RunExplore(context.Background(), clusterGrid())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Predicted != 4 {
		t.Fatalf("with one dead worker: %d predicted / %d failed: %+v",
			rep.Predicted, rep.Failed, rep.FailedSamples)
	}
	if got := workers[1].receivedCount(); got != 4 {
		t.Errorf("surviving worker served %d units, want 4", got)
	}
}
