package cluster

import (
	"testing"

	"dlrmperf/internal/leakcheck"
)

// TestMain guards the package against leaked goroutines: heartbeat
// loops or forwarding calls that survive Close/Drain fail the suite.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
