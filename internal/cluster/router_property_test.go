package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// syntheticWorkers builds n workers with URL-shaped IDs.
func syntheticWorkers(n int) []Worker {
	out := make([]Worker, n)
	for i := range out {
		out[i] = Worker{ID: fmt.Sprintf("http://10.0.0.%d:8080", i+1), URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1)}
	}
	return out
}

// TestRouterDeterministicAndOrderFree (testing/quick): for random keys
// and worker-set sizes, the ranking is identical across repeated calls
// and across arbitrary permutations of the input slice — routing
// depends only on (IDs, key), never on registration order.
func TestRouterDeterministicAndOrderFree(t *testing.T) {
	f := func(key string, sizeRaw uint8, permSeed int64) bool {
		n := 1 + int(sizeRaw)%8
		workers := syntheticWorkers(n)
		base := Rank(workers, key)

		shuffled := append([]Worker(nil), workers...)
		rand.New(rand.NewSource(permSeed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return reflect.DeepEqual(base, Rank(workers, key)) &&
			reflect.DeepEqual(base, Rank(shuffled, key))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRouterUniformWithin2x: 1k synthetic devices across 5 workers
// must spread within 2x between the busiest and the idlest worker (and
// leave no worker empty) — the load-balance bound the serving layer
// relies on without virtual nodes.
func TestRouterUniformWithin2x(t *testing.T) {
	workers := syntheticWorkers(5)
	counts := map[string]int{}
	const devices = 1000
	for d := 0; d < devices; d++ {
		counts[Rank(workers, fmt.Sprintf("device-%04d", d))[0].ID]++
	}
	min, max := devices, 0
	for _, w := range workers {
		c := counts[w.ID]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	t.Logf("per-worker device counts: %v (min %d, max %d)", counts, min, max)
	if min == 0 {
		t.Fatalf("a worker owns no devices: %v", counts)
	}
	if max > 2*min {
		t.Fatalf("imbalance beyond 2x: min %d, max %d (%v)", min, max, counts)
	}
}

// TestRouterMinimalDisruption: dropping one worker re-homes ONLY the
// keys it owned; every key on a surviving worker keeps its owner, and
// the orphaned keys land on their previous second-ranked candidate.
// This is exactly why the coordinator's one-retry failover preserves
// device affinity: the retry target is the key's post-failure home.
func TestRouterMinimalDisruption(t *testing.T) {
	workers := syntheticWorkers(4)
	const keys = 500
	type home struct{ first, second string }
	before := map[string]home{}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("device-%04d", k)
		ranked := Rank(workers, key)
		before[key] = home{ranked[0].ID, ranked[1].ID}
	}
	for drop := range workers {
		var remaining []Worker
		for i, w := range workers {
			if i != drop {
				remaining = append(remaining, w)
			}
		}
		moved := 0
		for key, h := range before {
			after := Rank(remaining, key)[0].ID
			if h.first == workers[drop].ID {
				moved++
				if after != h.second {
					t.Fatalf("dropping %s: key %s moved to %s, want its second-ranked %s",
						workers[drop].ID, key, after, h.second)
				}
			} else if after != h.first {
				t.Fatalf("dropping %s moved key %s from surviving owner %s to %s",
					workers[drop].ID, key, h.first, after)
			}
		}
		if moved == 0 {
			t.Fatalf("dropping %s moved no keys (it owned none of %d?)", workers[drop].ID, keys)
		}
	}
}
