package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"dlrmperf/internal/explore"
	"dlrmperf/internal/serve"
	"dlrmperf/internal/xsync"
)

// RunExplore sweeps a grid across the cluster: the coordinator expands
// and deduplicates once, then routes each unique unit through
// PredictOne — blocking worker admission (sweep units must apply
// backpressure, never shed), the pass-through result cache in front
// (a warm repeat of a grid is answered locally without touching a
// worker), and rendezvous routing behind it. The expansion's
// device-major order means one device's configurations are in flight
// together, all bound for the same affine worker, so that worker's
// pinned calibration and compiled plans serve a contiguous run of
// requests. Fan-out is bounded by Config.Fanout like the batch path.
func (c *Coordinator) RunExplore(ctx context.Context, g explore.Grid) (*explore.Report, error) {
	if c.Draining() {
		return nil, ErrDraining
	}
	if size := g.Size(); size > c.cfg.MaxGrid {
		return nil, &serve.GridTooLargeError{Size: size, Max: c.cfg.MaxGrid}
	}
	ex, err := explore.Expand(g)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	agg := explore.NewAggregator(ex)
	xsync.ForEachN(len(ex.Unique), c.cfg.Fanout, func(i int) {
		row, err := c.PredictOne(ctx, serve.WireRequest(ex.Unique[i].Point, g.TimeoutMs), true)
		if err != nil {
			agg.Add(i, explore.Outcome{Err: err.Error()})
			return
		}
		agg.Add(i, explore.Outcome{
			E2EUs:             row.E2EUs,
			ScalingEfficiency: row.ScalingEfficiency,
			CacheHit:          row.CacheHit,
			Err:               row.Error,
		})
	})
	rep := agg.Report(time.Since(start))
	// The asset view of a cluster sweep is the merged worker stores
	// (where the calibrations and compiled plans actually live).
	st := c.Stats(ctx)
	rep.Assets = &st.Assets
	return rep, nil
}

func (c *Coordinator) handleExplore(w http.ResponseWriter, r *http.Request) {
	var g explore.Grid
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&g); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	rep, err := c.RunExplore(r.Context(), g)
	var tooLarge *serve.GridTooLargeError
	switch {
	case err == nil:
		serve.WriteJSON(w, http.StatusOK, rep)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", c.retryAfter())
		serve.WriteJSON(w, http.StatusServiceUnavailable, serve.HTTPError{Code: "draining", Message: err.Error()})
	case errors.As(err, &tooLarge):
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "grid_too_large", Message: err.Error()})
	default:
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_grid", Message: err.Error()})
	}
}
