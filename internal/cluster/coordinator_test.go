package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlrmperf"
	"dlrmperf/internal/client"
	"dlrmperf/internal/serve"
)

// fakeWorker is a controllable in-process stand-in for one
// dlrmperf-serve worker: it answers the wire surface the coordinator
// drives (/v1/predict, /v1/predict/batch, /stats, /v1/drain) with
// engine-convention counters (hits + misses + rejected == requests),
// records which devices it "calibrated", and can be killed mid-stream
// (every subsequent response aborts the connection) for fault
// injection.
type fakeWorker struct {
	srv *httptest.Server
	id  string

	killed   atomic.Bool
	drained  atomic.Bool
	draining atomic.Bool // report batch rows with the drain sentinel, like a worker mid-shutdown

	mu         sync.Mutex
	received   uint64
	hits       uint64
	misses     uint64
	rejected   uint64
	calibrated map[string]int
	installed  map[string]bool
	seen       map[string]bool
	installs   uint64
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{calibrated: map[string]int{}, installed: map[string]bool{}, seen: map[string]bool{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/assets/install", func(w http.ResponseWriter, r *http.Request) {
		fw.maybeDie()
		var blob struct {
			Device string `json:"device"`
		}
		if err := json.NewDecoder(r.Body).Decode(&blob); err != nil || blob.Device == "" {
			serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_assets", Message: "missing device"})
			return
		}
		fw.mu.Lock()
		fw.installed[blob.Device] = true
		fw.installs++
		fw.mu.Unlock()
		serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "installed"})
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		fw.maybeDie()
		var req serve.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
			return
		}
		serve.WriteJSON(w, http.StatusOK, fw.serveRow(req))
	})
	mux.HandleFunc("POST /v1/predict/batch", func(w http.ResponseWriter, r *http.Request) {
		fw.maybeDie()
		var reqs []serve.Request
		if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
			serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
			return
		}
		rep := serve.Report{Requests: len(reqs)}
		for _, req := range reqs {
			if fw.draining.Load() {
				rep.Results = append(rep.Results, serve.Result{Request: req, Error: serve.ErrDraining.Error()})
				continue
			}
			rep.Results = append(rep.Results, fw.serveRow(req))
		}
		serve.WriteJSON(w, http.StatusOK, &rep)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		fw.maybeDie()
		serve.WriteJSON(w, http.StatusOK, fw.stats())
	})
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, _ *http.Request) {
		fw.drained.Store(true)
		serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "draining"})
	})
	fw.srv = httptest.NewServer(mux)
	fw.id = fw.srv.URL
	t.Cleanup(fw.srv.Close)
	return fw
}

// maybeDie aborts the connection mid-response once the worker has been
// killed — the client sees a broken stream, exactly like a process
// that died with requests in flight.
func (fw *fakeWorker) maybeDie() {
	if fw.killed.Load() {
		panic(http.ErrAbortHandler)
	}
}

func (fw *fakeWorker) serveRow(req serve.Request) serve.Result {
	if req.Workload == "slow" {
		time.Sleep(300 * time.Millisecond) // a legitimate long computation
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.received++
	if req.Workload == "reject" {
		fw.rejected++
		return serve.Result{Request: req, Error: "fake: rejected"}
	}
	// A device whose assets were installed serves warm: its ledger
	// entry never appears — mirroring the real engine, where installed
	// calibration skips the calibration path entirely.
	if fw.calibrated[req.Device] == 0 && !fw.installed[req.Device] {
		fw.calibrated[req.Device] = 1
	}
	key := fmt.Sprintf("%s|%s|%s|%d|%d", req.Workload, req.Scenario, req.Device, req.Batch, req.GPUs)
	hit := fw.seen[key]
	fw.seen[key] = true
	if hit {
		fw.hits++
	} else {
		fw.misses++
	}
	return serve.Result{Request: req, E2EUs: 42, GPUsUsed: 1, CacheHit: hit}
}

func (fw *fakeWorker) stats() serve.Stats {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	cals := make(map[string]int, len(fw.calibrated))
	for d, n := range fw.calibrated {
		cals[d] = n
	}
	return serve.Stats{
		Requests:     fw.received,
		Served:       fw.hits + fw.misses,
		Rejected:     serve.RejectedStats{Validation: fw.rejected},
		Cache:        serve.CacheStats{Hits: fw.hits, Misses: fw.misses, Rejected: fw.rejected},
		Calibrations: cals,
	}
}

func (fw *fakeWorker) receivedCount() uint64 {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.received
}

func (fw *fakeWorker) installCount() uint64 {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.installs
}

func (fw *fakeWorker) hasInstalled(device string) bool {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.installed[device]
}

func (fw *fakeWorker) calibratedDevices() map[string]int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	out := make(map[string]int, len(fw.calibrated))
	for d, n := range fw.calibrated {
		out[d] = n
	}
	return out
}

// newTestCluster wires n fake workers behind a coordinator as static
// registry entries (no cache unless provided).
func newTestCluster(t *testing.T, n int, cache ResultCache) (*Coordinator, []*fakeWorker) {
	t.Helper()
	reg := NewRegistry(0)
	workers := make([]*fakeWorker, n)
	for i := range workers {
		workers[i] = newFakeWorker(t)
		reg.AddStatic(workers[i].srv.URL)
	}
	return New(Config{Registry: reg, Cache: cache}), workers
}

func req(device, workload string, batch int64) serve.Request {
	return serve.Request{Workload: workload, Device: device, Batch: batch}
}

// assertAggInvariant asserts the cluster-wide accounting identity on
// an aggregated snapshot.
func assertAggInvariant(t *testing.T, st Stats) {
	t.Helper()
	if got := st.Accounted(); got != st.Requests {
		t.Errorf("cluster invariant broken: hits %d + misses %d + rejected %d = %d, requests %d",
			st.Cache.Hits, st.Cache.Misses, st.Rejected.Total(), got, st.Requests)
	}
}

// TestDeviceAffineRouting pins the tentpole routing property: every
// device is served — and therefore "calibrated" — on exactly one
// worker, the one rendezvous hashing ranks first, across many devices
// and repeated requests.
func TestDeviceAffineRouting(t *testing.T) {
	coord, workers := newTestCluster(t, 3, nil)
	byID := map[string]*fakeWorker{}
	for _, fw := range workers {
		byID[fw.id] = fw
	}
	live := coord.Registry().Live()

	const devices = 24
	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		for rep := 0; rep < 3; rep++ {
			row, err := coord.PredictOne(context.Background(), req(dev, "w", 512), rep%2 == 0)
			if err != nil || row.Error != "" {
				t.Fatalf("dev %s rep %d: %v / %q", dev, rep, err, row.Error)
			}
		}
	}
	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("dev-%d", d)
		want := Rank(live, dev)[0].ID
		owners := 0
		for id, fw := range byID {
			fw.mu.Lock()
			_, has := fw.calibrated[dev]
			fw.mu.Unlock()
			if has {
				owners++
				if id != want {
					t.Errorf("device %s served on %s, rendezvous ranks %s first", dev, id, want)
				}
			}
		}
		if owners != 1 {
			t.Errorf("device %s calibrated on %d workers, want exactly 1", dev, owners)
		}
	}

	st := coord.Stats(context.Background())
	assertAggInvariant(t, st)
	if st.Requests != devices*3 {
		t.Fatalf("aggregated requests = %d, want %d", st.Requests, devices*3)
	}
	// Affinity also means repeats are worker-side cache hits: 2 of the
	// 3 requests per device.
	if st.Cache.Hits != devices*2 || st.Cache.Misses != devices {
		t.Fatalf("aggregated cache = %d/%d hit/miss, want %d/%d", st.Cache.Hits, st.Cache.Misses, devices*2, devices)
	}
	// The calibration ledger shows each device under exactly one worker.
	seen := map[string]int{}
	for _, devs := range st.Calibrations {
		for d := range devs {
			seen[d]++
		}
	}
	for d := 0; d < devices; d++ {
		if n := seen[fmt.Sprintf("dev-%d", d)]; n != 1 {
			t.Errorf("ledger shows dev-%d on %d workers, want 1", d, n)
		}
	}
}

// TestCoordinatorLocalCacheHit: with the pass-through cache installed,
// an identical repeat is answered at the coordinator — the worker sees
// the scenario exactly once — and the local hit is accounted in both
// sides of the aggregated invariant.
func TestCoordinatorLocalCacheHit(t *testing.T) {
	eng, err := dlrmperf.NewEngineWith(dlrmperf.EngineConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	coord, workers := newTestCluster(t, 2, eng)

	r := req("V100", "DLRM_default", 512)
	first, err := coord.PredictOne(context.Background(), r, false)
	if err != nil || first.Error != "" || first.CacheHit {
		t.Fatalf("first = %+v, %v; want a routed miss", first, err)
	}
	second, err := coord.PredictOne(context.Background(), r, false)
	if err != nil || second.Error != "" {
		t.Fatalf("second = %+v, %v", second, err)
	}
	if !second.CacheHit {
		t.Fatalf("repeat not served from the coordinator cache: %+v", second)
	}
	if total := workers[0].receivedCount() + workers[1].receivedCount(); total != 1 {
		t.Fatalf("workers saw %d requests, want 1 (repeat answered locally)", total)
	}
	st := coord.Stats(context.Background())
	if st.Coordinator.LocalCacheHits != 1 || st.Coordinator.Received != 2 {
		t.Fatalf("coordinator stats = %+v, want 1 local hit of 2 received", st.Coordinator)
	}
	assertAggInvariant(t, st)
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("aggregated cache = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
}

// TestAggregatedStatsMergesWorkers: worker-side validation rejects and
// cache verdicts merge into one document that preserves the invariant,
// and worker asset/stream counters are summed.
func TestAggregatedStatsMergesWorkers(t *testing.T) {
	coord, _ := newTestCluster(t, 2, nil)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		coord.PredictOne(ctx, req(fmt.Sprintf("dev-%d", i%3), "w", 512), false)
	}
	if row, err := coord.PredictOne(ctx, req("dev-0", "reject", 512), false); err != nil || row.Error == "" {
		t.Fatalf("rejected row = %+v, %v; want an error row", row, err)
	}
	st := coord.Stats(ctx)
	assertAggInvariant(t, st)
	if st.Rejected.Validation != 1 {
		t.Fatalf("validation rejects = %d, want 1", st.Rejected.Validation)
	}
	if st.Requests != 7 {
		t.Fatalf("requests = %d, want 7", st.Requests)
	}
	if st.Served != 6 {
		t.Fatalf("served = %d, want 6", st.Served)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(st.Workers))
	}
	for _, w := range st.Workers {
		if !w.Live || w.Stats == nil {
			t.Fatalf("worker %s not live with stats: %+v", w.ID, w)
		}
	}
}

// TestRegisterAndHeartbeat drives the self-registration loop against
// the coordinator's real HTTP handler: the worker becomes live within
// a heartbeat, stays live while beating, and expires one liveness
// window after the loop stops.
func TestRegisterAndHeartbeat(t *testing.T) {
	reg := NewRegistry(250 * time.Millisecond)
	coord := New(Config{Registry: reg})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	fw := newFakeWorker(t)
	stop := Heartbeat(context.Background(), nil, ts.URL, fw.id, fw.srv.URL, 50*time.Millisecond)
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for len(reg.Live()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if live := reg.Live(); len(live) != 1 || live[0].ID != fw.id || live[0].Static {
		t.Fatalf("live after heartbeat = %+v, want the registered worker", live)
	}

	// Registered workers serve traffic like static ones.
	if row, err := coord.PredictOne(context.Background(), req("V100", "w", 512), false); err != nil || row.Error != "" {
		t.Fatalf("predict via registered worker: %v / %q", err, row.Error)
	}

	// Stop beating: the worker must expire within one liveness window.
	stop()
	deadline = time.Now().Add(5 * time.Second)
	for len(reg.Live()) != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if live := reg.Live(); len(live) != 0 {
		t.Fatalf("worker still live after heartbeats stopped: %+v", live)
	}
	if _, err := coord.PredictOne(context.Background(), req("V100", "w", 1024), false); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("predict with expired worker: err = %v, want ErrNoWorkers", err)
	}
	st := coord.Stats(context.Background())
	if st.Rejected.NoWorkers != 1 {
		t.Fatalf("no-workers rejects = %d, want 1", st.Rejected.NoWorkers)
	}
	assertAggInvariant(t, st)
}

// TestDrainPropagation: draining rejects new admissions with 503,
// flips healthz, and pushes the drain to registered (but not static)
// workers.
func TestDrainPropagation(t *testing.T) {
	reg := NewRegistry(0)
	staticW := newFakeWorker(t)
	regW := newFakeWorker(t)
	reg.AddStatic(staticW.srv.URL)
	reg.Register(regW.id, regW.srv.URL)
	coord := New(Config{Registry: reg})

	coord.Drain(true)
	if !regW.drained.Load() {
		t.Fatal("registered worker did not receive the propagated drain")
	}
	if staticW.drained.Load() {
		t.Fatal("static worker must not be drained by the coordinator")
	}
	if _, err := coord.PredictOne(context.Background(), req("V100", "w", 512), false); !errors.Is(err, ErrDraining) {
		t.Fatalf("admission while draining: err = %v, want ErrDraining", err)
	}

	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	if h, err := cl.Healthz(context.Background()); err != nil || h.Status != "draining" {
		t.Fatalf("healthz while draining = %+v / %v, want status draining", h, err)
	}
	var dr *client.ErrDraining
	if _, err := cl.Predict(context.Background(), req("V100", "w", 512)); !errors.As(err, &dr) || dr.RetryAfter <= 0 {
		t.Fatalf("predict while draining: err = %v, want ErrDraining with a Retry-After hint", err)
	}
	st := coord.Stats(context.Background())
	if st.Rejected.Draining != 2 {
		t.Fatalf("draining rejects = %d, want 2", st.Rejected.Draining)
	}
	assertAggInvariant(t, st)
}

// TestBackpressurePassThrough: a worker 429 is not a failure — it
// reaches the client as 429 with the worker's own Retry-After hint,
// the worker is not marked failed, and nothing lands in worker_failed.
func TestBackpressurePassThrough(t *testing.T) {
	reg := NewRegistry(0)
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "7")
		serve.WriteJSON(w, http.StatusTooManyRequests, serve.HTTPError{Code: "queue_full", Message: "busy"})
	}))
	defer busy.Close()
	reg.AddStatic(busy.URL)
	coord := New(Config{Registry: reg})

	_, err := coord.PredictOne(context.Background(), req("V100", "w", 512), false)
	var bp *BackpressureError
	if !errors.As(err, &bp) || bp.RetryAfter != "7" {
		t.Fatalf("err = %v, want BackpressureError with Retry-After 7", err)
	}
	if len(reg.Live()) != 1 {
		t.Fatal("backpressure must not mark the worker failed")
	}

	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	var tbp *client.ErrBackpressure
	if _, err := client.New(ts.URL).Predict(context.Background(), req("V100", "w", 512)); !errors.As(err, &tbp) || tbp.RetryAfter != 7*time.Second {
		t.Fatalf("predict over HTTP: err = %v, want typed 429 carrying the worker's 7s hint", err)
	}
	st := coord.Stats(context.Background())
	if st.Rejected.WorkerFailed != 0 {
		t.Fatalf("worker_failed = %d, want 0 for backpressure", st.Rejected.WorkerFailed)
	}
}

// TestBatchFanOut: the coordinator batch endpoint splits rows across
// workers by device, preserves request order, and its report carries
// the aggregated counters and the calibration ledger.
func TestBatchFanOut(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	var reqs []serve.Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, req(fmt.Sprintf("dev-%d", i%4), "w", int64(512+i)))
	}
	var rep Report
	if err := client.New(ts.URL).PredictBatchInto(context.Background(), reqs, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 8 || rep.Failed != 0 {
		t.Fatalf("batch report = %d/%d, want 8 requests, 0 failed", rep.Requests, rep.Failed)
	}
	for i, row := range rep.Results {
		if row.Device != reqs[i].Device || row.Batch != reqs[i].Batch {
			t.Fatalf("row %d out of order: %+v", i, row)
		}
	}
	// Both workers participated (4 distinct devices split 2 ways is
	// overwhelmingly likely to touch both; assert at least the total).
	if total := workers[0].receivedCount() + workers[1].receivedCount(); total != 8 {
		t.Fatalf("workers saw %d rows, want 8", total)
	}
	if got := rep.Cache.Hits + rep.Cache.Misses + rep.Rejected.Total(); got != 8 {
		t.Fatalf("report accounting = %d, want 8", got)
	}
}
