package cluster

import (
	"sort"
	"sync"
	"time"
)

// Worker is one per-device serve process the coordinator can route to.
type Worker struct {
	// ID is the worker's routing identity — the rendezvous hash input.
	// Self-registered workers use their advertised base URL, so the ID
	// is stable across re-registrations of the same process.
	ID string `json:"id"`
	// URL is the worker's base URL (scheme://host:port, no path).
	URL string `json:"url"`
	// Static marks workers from the coordinator's -static-workers list:
	// they are expected alive without heartbeats and rejoin the routing
	// set one liveness window after a failure (self-healing), whereas
	// registered workers must keep heartbeating to stay routable.
	Static bool `json:"static,omitempty"`
}

// workerState is the registry's record of one worker.
type workerState struct {
	w Worker
	// lastSeen is the most recent registration heartbeat (zero for
	// static workers, which do not heartbeat).
	lastSeen time.Time
	// failedUntil quarantines the worker after a failed route until the
	// given time; a heartbeat lifts it early (the worker proved it is
	// back).
	failedUntil time.Time
}

// Registry is the coordinator's worker set: a static list plus
// self-registered workers with heartbeat liveness. All methods are
// safe for concurrent use.
type Registry struct {
	ttl time.Duration
	// now is the clock, injectable so liveness-expiry tests advance
	// time instead of sleeping.
	now func() time.Time

	mu      sync.Mutex
	workers map[string]*workerState
}

// DefaultLiveness is the registration TTL when none is configured: a
// registered worker that misses heartbeats for this long stops being
// routed to.
const DefaultLiveness = 6 * time.Second

// NewRegistry returns an empty registry with the given liveness window
// (0 selects DefaultLiveness).
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultLiveness
	}
	return &Registry{ttl: ttl, now: time.Now, workers: map[string]*workerState{}}
}

// TTL reports the liveness window.
func (r *Registry) TTL() time.Duration { return r.ttl }

// AddStatic registers a permanent worker by URL (its ID). Static
// workers need no heartbeat; a routing failure quarantines them for
// one liveness window instead of removing them.
func (r *Registry) AddStatic(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers[url] = &workerState{w: Worker{ID: url, URL: url, Static: true}}
}

// Register records a worker heartbeat, creating the entry on first
// contact, refreshing its liveness, and lifting any failure
// quarantine (the worker just proved it is reachable). It reports
// whether the worker is new to the registry.
func (r *Registry) Register(id, url string) (isNew bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ws, ok := r.workers[id]
	if !ok {
		ws = &workerState{w: Worker{ID: id, URL: url}}
		r.workers[id] = ws
	}
	ws.w.URL = url
	ws.lastSeen = r.now()
	ws.failedUntil = time.Time{}
	return !ok
}

// MarkFailed quarantines a worker after a failed route for one
// liveness window, so the very next request is not burned on the same
// dead socket. A registered worker that is actually alive lifts the
// quarantine with its next heartbeat; a static worker rejoins when the
// window lapses (and is re-quarantined if it fails again).
func (r *Registry) MarkFailed(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ws, ok := r.workers[id]; ok {
		ws.failedUntil = r.now().Add(r.ttl)
	}
}

// live reports whether one worker is currently routable.
func (ws *workerState) live(now time.Time, ttl time.Duration) bool {
	if now.Before(ws.failedUntil) {
		return false
	}
	if ws.w.Static {
		return true
	}
	return now.Sub(ws.lastSeen) <= ttl
}

// Live returns the currently routable workers, sorted by ID: static
// workers outside their failure quarantine, plus registered workers
// whose last heartbeat is within the liveness window.
func (r *Registry) Live() []Worker {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Worker, 0, len(r.workers))
	for _, ws := range r.workers {
		if ws.live(now, r.ttl) {
			out = append(out, ws.w)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// WorkerInfo is one registry entry's observable state, for /stats.
type WorkerInfo struct {
	Worker
	Live bool `json:"live"`
	// LastSeenAgeMs is the age of the newest heartbeat (-1 for static
	// workers, which do not heartbeat).
	LastSeenAgeMs int64 `json:"last_seen_age_ms"`
}

// Snapshot returns every registry entry (live or not), sorted by ID.
func (r *Registry) Snapshot() []WorkerInfo {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, ws := range r.workers {
		info := WorkerInfo{Worker: ws.w, Live: ws.live(now, r.ttl), LastSeenAgeMs: -1}
		if !ws.lastSeen.IsZero() {
			info.LastSeenAgeMs = now.Sub(ws.lastSeen).Milliseconds()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
