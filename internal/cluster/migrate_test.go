package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlrmperf/internal/client"
)

// fakeExporter is a controllable AssetExporter: fixed devices with
// test-bumpable epochs, counting exports.
type fakeExporter struct {
	mu     sync.Mutex
	epochs map[string]uint64
	saves  atomic.Uint64
}

func (f *fakeExporter) CalibratedDevices() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.epochs))
	for d := range f.epochs {
		out = append(out, d)
	}
	return out
}

func (f *fakeExporter) AssetsEpoch(device string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epochs[device]
}

func (f *fakeExporter) SaveAssets(device string) ([]byte, error) {
	f.saves.Add(1)
	return fakeAssets(device), nil
}

func (f *fakeExporter) bump(device string) {
	f.mu.Lock()
	f.epochs[device]++
	f.mu.Unlock()
}

// fakeAssets builds a minimal SaveAssets-shaped payload the fakeWorker
// install handler accepts (it only reads the device field).
func fakeAssets(device string) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"version":1,"device":%q}`, device))
}

// TestVaultPutFreshness pins the vault's applied-if-newer rule: asset
// epochs are per-worker counters, so a re-push from the current home
// applies only if its epoch moved, while a push from a DIFFERENT
// worker always applies — the newest exporter is the device's new
// home and is authoritative.
func TestVaultPutFreshness(t *testing.T) {
	v := newAssetVault()
	if !v.put("gpu-0", "w1", 3, fakeAssets("gpu-0")) {
		t.Fatal("first put not applied")
	}
	if v.put("gpu-0", "w1", 3, fakeAssets("gpu-0")) {
		t.Fatal("same-worker same-epoch replay applied")
	}
	if v.put("gpu-0", "w1", 2, fakeAssets("gpu-0")) {
		t.Fatal("same-worker stale-epoch replay applied")
	}
	if !v.put("gpu-0", "w1", 4, fakeAssets("gpu-0")) {
		t.Fatal("same-worker newer epoch not applied")
	}
	// A different worker's epoch counter is incomparable: even a lower
	// number must win.
	if !v.put("gpu-0", "w2", 1, fakeAssets("gpu-0")) {
		t.Fatal("different-worker push not applied")
	}
	if st := v.snapshot(); st["gpu-0"].Worker != "w2" || st["gpu-0"].Epoch != 1 {
		t.Fatalf("snapshot = %+v, want w2@1", st["gpu-0"])
	}
}

// TestVaultNeedInstall pins the hand-off decision: no copy -> no
// install; target owns the copy -> no install; already handed this
// epoch -> no install; a newer export re-arms the hand-off.
func TestVaultNeedInstall(t *testing.T) {
	v := newAssetVault()
	if _, _, ok := v.needInstall("gpu-0", "w2"); ok {
		t.Fatal("install wanted with an empty vault")
	}
	v.put("gpu-0", "w1", 1, fakeAssets("gpu-0"))
	if _, _, ok := v.needInstall("gpu-0", "w1"); ok {
		t.Fatal("install wanted onto the exporting home itself")
	}
	data, epoch, ok := v.needInstall("gpu-0", "w2")
	if !ok || epoch != 1 || len(data) == 0 {
		t.Fatalf("needInstall = %q/%d/%v, want the vaulted copy", data, epoch, ok)
	}
	v.markInstalled("gpu-0", "w2", 1)
	if _, _, ok := v.needInstall("gpu-0", "w2"); ok {
		t.Fatal("install wanted again after markInstalled")
	}
	// The home recalibrates (epoch bump): the stand-in's copy is stale,
	// so the next routing decision re-installs.
	v.put("gpu-0", "w1", 2, fakeAssets("gpu-0"))
	if _, epoch, ok := v.needInstall("gpu-0", "w2"); !ok || epoch != 2 {
		t.Fatalf("needInstall after re-export = %d/%v, want epoch 2", epoch, ok)
	}
	if st := v.snapshot(); st["gpu-0"].InstalledOn != "w2" {
		t.Fatalf("snapshot = %+v, want installed_on w2", st["gpu-0"])
	}
}

// TestWarmHandoffOnFailover is the in-process tentpole migration test:
// a device's home dies after its assets were pushed to the
// coordinator; the retry routes to the survivor AND the coordinator
// installs the dead home's assets there first — so the survivor
// serves warm and its calibration ledger never grows.
func TestWarmHandoffOnFailover(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	victim, survivor := workers[0], workers[1]
	dev := affineDevice(t, coord.Registry().Live(), victim.id)
	ctx := context.Background()

	// Prime: the home serves (and "calibrates") the device, then its
	// heartbeat pushes the exported assets into the vault.
	if row, err := coord.PredictOne(ctx, req(dev, "w", 512), false); err != nil || row.Error != "" {
		t.Fatalf("prime: %v / %q", err, row.Error)
	}
	if !coord.vault.put(dev, victim.id, 1, fakeAssets(dev)) {
		t.Fatal("vault rejected the home's push")
	}

	// Kill the home mid-stream. The failover request must land on the
	// survivor WARM: installed before served, ledger unchanged.
	victim.killed.Store(true)
	row, err := coord.PredictOne(ctx, req(dev, "w", 1024), false)
	if err != nil || row.Error != "" {
		t.Fatalf("failover: %v / %q", err, row.Error)
	}
	if !survivor.hasInstalled(dev) {
		t.Fatal("survivor served the failover request without the asset install")
	}
	if cals := survivor.calibratedDevices(); cals[dev] != 0 {
		t.Fatalf("survivor calibration ledger grew after warm hand-off: %v", cals)
	}

	// The hand-off is one-shot: further traffic neither re-installs nor
	// recalibrates.
	if row, err := coord.PredictOne(ctx, req(dev, "w", 2048), false); err != nil || row.Error != "" {
		t.Fatalf("post-failover: %v / %q", err, row.Error)
	}
	if n := survivor.installCount(); n != 1 {
		t.Fatalf("survivor saw %d installs, want exactly 1", n)
	}
	st := coord.Stats(ctx)
	if st.Coordinator.Migrations != 1 || st.Coordinator.MigrationFailures != 0 {
		t.Fatalf("migrations = %d/%d failures, want 1/0", st.Coordinator.Migrations, st.Coordinator.MigrationFailures)
	}
	if vs := st.Vault[dev]; vs.InstalledOn != survivor.id {
		t.Fatalf("vault status = %+v, want installed on the survivor", vs)
	}
	assertAggInvariant(t, st)
}

// TestMigrationFailureFallsBackCold: when the install itself fails the
// request still proceeds (the survivor calibrates cold — yesterday's
// behavior), and the degraded path is counted.
func TestMigrationFailureFallsBackCold(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	victim, survivor := workers[0], workers[1]
	dev := affineDevice(t, coord.Registry().Live(), victim.id)

	coord.vault.put(dev, victim.id, 1, json.RawMessage(`{"version":1}`)) // no device: install 400s
	victim.killed.Store(true)
	row, err := coord.PredictOne(context.Background(), req(dev, "w", 512), false)
	if err != nil || row.Error != "" {
		t.Fatalf("failover with broken install: %v / %q, want cold success", err, row.Error)
	}
	if cals := survivor.calibratedDevices(); cals[dev] != 1 {
		t.Fatalf("survivor ledger = %v, want a cold calibration", cals)
	}
	if st := coord.Stats(context.Background()); st.Coordinator.MigrationFailures != 1 || st.Coordinator.Migrations != 0 {
		t.Fatalf("migrations = %d/%d failures, want 0/1", st.Coordinator.Migrations, st.Coordinator.MigrationFailures)
	}
}

// TestWorkerAssetPushReplicates: a push to one coordinator's
// /v1/workers/assets lands in its vault AND gossips to the peer, so
// either survivor can drive the hand-off.
func TestWorkerAssetPushReplicates(t *testing.T) {
	cA, cB, urlA, _ := peerPair(t, nil, nil)
	if err := client.New(urlA).PushAssets(context.Background(), "w1", "gpu-7", 3, fakeAssets("gpu-7")); err != nil {
		t.Fatal(err)
	}
	if st := cA.vault.snapshot(); st["gpu-7"].Epoch != 3 {
		t.Fatalf("A's vault = %+v, want gpu-7@3", st)
	}
	waitUntil(t, "asset push to gossip to the peer", func() bool {
		st := cB.vault.snapshot()
		return st["gpu-7"].Worker == "w1" && st["gpu-7"].Epoch == 3
	})

	// Replays are dropped without re-gossip; a newer epoch propagates.
	if err := client.New(urlA).PushAssets(context.Background(), "w1", "gpu-7", 4, fakeAssets("gpu-7")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "newer epoch to gossip", func() bool { return cB.vault.snapshot()["gpu-7"].Epoch == 4 })
}

// TestHeartbeatAssetsPushes drives the worker-side loop against two
// real coordinator handlers: registration reaches both, each
// calibrated device's export lands in both vaults, and an epoch bump
// re-pushes while an unchanged device does not.
func TestHeartbeatAssetsPushes(t *testing.T) {
	cA, cB, urlA, urlB := peerPair(t, nil, nil)
	exp := &fakeExporter{epochs: map[string]uint64{"gpu-1": 1}}

	stop := HeartbeatAssets(context.Background(), nil, []string{urlA, urlB}, "w1", "http://w1", 20*time.Millisecond, exp)
	defer stop()

	waitUntil(t, "registration and pushes to land", func() bool {
		return len(cA.Registry().Live()) == 1 && len(cB.Registry().Live()) == 1 &&
			cA.vault.snapshot()["gpu-1"].Epoch == 1 && cB.vault.snapshot()["gpu-1"].Epoch == 1
	})
	if n := exp.saves.Load(); n < 2 {
		t.Fatalf("exporter saved %d times, want >= 2 (once per coordinator)", n)
	}

	// Unchanged epochs stop pushing; a bump re-pushes everywhere.
	base := exp.saves.Load()
	time.Sleep(100 * time.Millisecond)
	if n := exp.saves.Load(); n != base {
		t.Fatalf("exports kept flowing with unchanged epochs: %d -> %d", base, n)
	}
	exp.bump("gpu-1")
	waitUntil(t, "epoch bump to re-push", func() bool {
		return cA.vault.snapshot()["gpu-1"].Epoch == 2 && cB.vault.snapshot()["gpu-1"].Epoch == 2
	})
}
