package cluster

import (
	"dlrmperf"
	"dlrmperf/internal/serve"
)

// Accounting model. The cluster-wide invariant mirrors the per-process
// one — Cache.Hits + Cache.Misses + Rejected.Total() == Requests at
// quiescence — but over ATTEMPT accounting: the aggregated request
// total is defined as the sum of every accounted attempt, not the
// coordinator's client-facing received count (which CoordinatorStats
// reports separately). Each attempt lands in exactly one bucket:
//
//   - a request served by a worker is that worker's request, counted
//     (with its hit/miss/rejection verdict) in the worker's own /stats
//     and merged from there;
//   - a request answered from the coordinator's pass-through result
//     cache never reaches a worker and is counted once as a
//     coordinator local hit (in both Cache.Hits and Requests);
//   - a routing attempt that failed (dead socket, 5xx) is counted once
//     under Rejected.WorkerFailed — whether or not the retry on the
//     next-ranked candidate then succeeded (that retry is a separate,
//     worker-accounted attempt). A request that fails over therefore
//     contributes two accounted attempts: one failed, one served.
//   - requests refused at the coordinator (draining, no live workers)
//     land in the Draining/NoWorkers buckets.
//
// Workers whose /stats fetch fails are excluded from the merge
// entirely — both their buckets and their request totals — so the
// identity survives worker death: a killed worker takes both sides of
// its contribution with it.

// ClusterRejected breaks out every never-served attempt cluster-wide:
// the per-worker buckets summed (validation, queue_full, draining,
// canceled_admissions — see serve.RejectedStats) plus the
// coordinator's own routing buckets.
type ClusterRejected struct {
	Validation    uint64 `json:"validation"`
	QueueFull     uint64 `json:"queue_full"`
	TenantLimited uint64 `json:"tenant_limited"`
	Draining      uint64 `json:"draining"`
	Canceled      uint64 `json:"canceled_admissions"`
	// WorkerFailed counts routing attempts that died on a worker (the
	// socket broke, or the worker answered 5xx): the fault-injection
	// signal. Retried requests still count their failed first attempt
	// here.
	WorkerFailed uint64 `json:"worker_failed"`
	// NoWorkers counts requests that arrived with zero live workers.
	NoWorkers uint64 `json:"no_workers"`
}

// Total sums every rejection bucket.
func (r ClusterRejected) Total() uint64 {
	return r.Validation + r.QueueFull + r.TenantLimited + r.Draining + r.Canceled + r.WorkerFailed + r.NoWorkers
}

// CoordinatorStats are the coordinator's own counters, client-facing:
// Received counts client requests (each once, however many attempts
// its routing took), LocalCacheHits the subset answered from the
// pass-through result cache without touching a worker.
type CoordinatorStats struct {
	Received       uint64 `json:"received"`
	LocalCacheHits uint64 `json:"local_cache_hits"`
	// Migrations counts completed warm asset hand-offs (dead home's
	// assets installed on a device's new rendezvous owner);
	// MigrationFailures counts installs that failed, where the new home
	// proceeded cold. Hand-offs are control plane, not requests: they
	// join no side of the accounting invariant.
	Migrations        uint64 `json:"migrations,omitempty"`
	MigrationFailures uint64 `json:"migration_failures,omitempty"`
	// PeerResultsInstalled counts result rows this coordinator accepted
	// from peer gossip into its local pass-through cache — the signal
	// that replication landed, observable without a cache-polluting
	// probe query. Control plane: moves no request counters.
	PeerResultsInstalled uint64 `json:"peer_results_installed,omitempty"`
}

// WorkerStatus is one worker's row in the aggregated stats: its
// registry state, how many attempts the coordinator routed to it, and
// its own /stats snapshot (nil, with StatsError set, when the fetch
// failed — such workers are excluded from the aggregate sums).
type WorkerStatus struct {
	WorkerInfo
	Routed     uint64       `json:"routed"`
	Stats      *serve.Stats `json:"stats,omitempty"`
	StatsError string       `json:"stats_error,omitempty"`
}

// Stats is the coordinator's GET /stats document: the merged
// cluster-wide counters (attempt-accounted, see the package accounting
// model) plus per-worker detail.
type Stats struct {
	// Requests is the aggregated accounted-attempt total; the invariant
	// Cache.Hits + Cache.Misses + Rejected.Total() == Requests holds at
	// quiescence, and Accounted() <= Requests on every snapshot.
	Requests uint64           `json:"requests"`
	Cache    serve.CacheStats `json:"cache"`
	Rejected ClusterRejected  `json:"rejected"`
	// Served/Canceled/InFlight merge the workers' stream counters.
	Served   uint64 `json:"served"`
	Canceled uint64 `json:"canceled"`
	InFlight int64  `json:"in_flight"`
	// Assets merges the workers' asset stores class-by-class (resident
	// entries, bytes, hit/miss/eviction counters summed; capacities
	// summed into a cluster-wide bound).
	Assets dlrmperf.AssetStats `json:"assets"`
	// Calibrations maps worker ID -> device -> executed calibration
	// runs: the device-affinity ledger. Under rendezvous routing every
	// device should appear under exactly one worker.
	Calibrations map[string]map[string]int `json:"calibrations,omitempty"`
	// Tenants sums the per-tenant admission ledgers across workers.
	// These are worker-side fair-queue counters: requests answered from
	// the coordinator's pass-through cache never reach a worker queue
	// and so appear only in Coordinator.LocalCacheHits.
	Tenants     map[string]serve.TenantStats `json:"tenants,omitempty"`
	Coordinator CoordinatorStats             `json:"coordinator"`
	// Lease is the replicated-control-plane membership view (nil in
	// single-coordinator mode); Vault the replicated per-device asset
	// copies backing warm hand-off on failover.
	Lease    *LeaseStatus           `json:"lease,omitempty"`
	Vault    map[string]VaultStatus `json:"asset_vault,omitempty"`
	Workers  []WorkerStatus         `json:"workers"`
	Draining bool                   `json:"draining"`
}

// Accounted sums the terminal buckets; Accounted() <= Requests on
// every snapshot, with equality at quiescence.
func (s Stats) Accounted() uint64 {
	return s.Cache.Hits + s.Cache.Misses + s.Rejected.Total()
}

// mergeWorker folds one worker's snapshot into the aggregate. Both
// sides of the invariant move together: the worker's buckets into
// Cache/Rejected, its request total into Requests.
func (s *Stats) mergeWorker(id string, ws serve.Stats) {
	s.Requests += ws.Requests
	s.Cache.Hits += ws.Cache.Hits
	s.Cache.Misses += ws.Cache.Misses
	s.Cache.Rejected += ws.Cache.Rejected
	s.Rejected.Validation += ws.Rejected.Validation
	s.Rejected.QueueFull += ws.Rejected.QueueFull
	s.Rejected.TenantLimited += ws.Rejected.TenantLimited
	s.Rejected.Draining += ws.Rejected.Draining
	s.Rejected.Canceled += ws.Rejected.Canceled
	s.Served += ws.Served
	s.Canceled += ws.Canceled
	s.InFlight += ws.Queue.InFlight
	mergeAssets(&s.Assets, ws.Assets)
	if len(ws.Calibrations) > 0 {
		if s.Calibrations == nil {
			s.Calibrations = map[string]map[string]int{}
		}
		s.Calibrations[id] = ws.Calibrations
	}
	for name, ts := range ws.Tenants {
		if s.Tenants == nil {
			s.Tenants = map[string]serve.TenantStats{}
		}
		agg := s.Tenants[name]
		agg.Requests += ts.Requests
		agg.Served += ts.Served
		agg.Shed += ts.Shed
		agg.Canceled += ts.Canceled
		agg.Queued += ts.Queued
		agg.TotalWaitUs += ts.TotalWaitUs
		if ts.MaxWaitUs > agg.MaxWaitUs {
			agg.MaxWaitUs = ts.MaxWaitUs
		}
		if agg.Served > 0 {
			agg.AvgWaitUs = float64(agg.TotalWaitUs) / float64(agg.Served)
		}
		s.Tenants[name] = agg
	}
}

// mergeAssets sums a worker's per-class asset counters into the
// aggregate, matching classes by name (order-preserving on first
// sight, so the merged report keeps the engine's class order).
func mergeAssets(dst *dlrmperf.AssetStats, src dlrmperf.AssetStats) {
	for _, c := range src.Classes {
		found := false
		for i := range dst.Classes {
			if dst.Classes[i].Class == c.Class {
				dst.Classes[i].Resident += c.Resident
				dst.Classes[i].Capacity += c.Capacity
				dst.Classes[i].Bytes += c.Bytes
				dst.Classes[i].Hits += c.Hits
				dst.Classes[i].Misses += c.Misses
				dst.Classes[i].Evictions += c.Evictions
				found = true
				break
			}
		}
		if !found {
			dst.Classes = append(dst.Classes, c)
		}
	}
	dst.TotalBytes += src.TotalBytes
}
