package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dlrmperf/internal/client"
	"dlrmperf/internal/serve"
)

// TestBackpressureHintRoundsUp pins the 429 pass-through hint
// rendering: sub-second worker hints must round UP to 1 second —
// truncation emitted "0", telling clients to hammer a worker that had
// just asked them to back off — and whole seconds pass through
// unchanged. Non-positive means no hint.
func TestBackpressureHintRoundsUp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, ""},
		{-time.Second, ""},
		{time.Millisecond, "1"},
		{250 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{1500 * time.Millisecond, "2"},
		{7 * time.Second, "7"},
		{7*time.Second + time.Millisecond, "8"},
	}
	for _, tc := range cases {
		if got := backpressureHint(tc.d); got != tc.want {
			t.Errorf("backpressureHint(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// TestAdaptiveRetryAfterTracksWorkerHints pins the coordinator-origin
// 503 hint: it starts at the configured floor, climbs toward observed
// worker 429 hints (a coordinator fronting saturated workers must not
// invite clients back sooner than the workers themselves would), and
// clamps at MaxRetryAfter.
func TestAdaptiveRetryAfterTracksWorkerHints(t *testing.T) {
	reg := NewRegistry(0)
	coord := New(Config{Registry: reg, RetryAfter: time.Second, MaxRetryAfter: 10 * time.Second})

	if got := coord.retryAfter(); got != "1" {
		t.Fatalf("hint before any observation = %q, want the 1s floor", got)
	}
	// The EWMA (alpha 1/4) converges onto a sustained worker hint.
	for i := 0; i < 32; i++ {
		coord.observeWorkerHint(8 * time.Second)
	}
	if got := coord.retryAfter(); got != "8" {
		t.Fatalf("hint after sustained 8s worker hints = %q, want 8", got)
	}
	// Hints above the ceiling clamp.
	for i := 0; i < 32; i++ {
		coord.observeWorkerHint(time.Minute)
	}
	if got := coord.retryAfter(); got != "10" {
		t.Fatalf("hint after 60s worker hints = %q, want the 10s ceiling", got)
	}
	// Non-positive observations are ignored, not folded in as zeros.
	coord.observeWorkerHint(0)
	if got := coord.retryAfter(); got != "10" {
		t.Fatalf("hint after a zero observation = %q, want unchanged", got)
	}
}

// TestDraining503CarriesObservedHint drives the adaptive hint
// end-to-end over HTTP: a worker 429 with a 7s hint teaches the
// coordinator, whose own draining 503 then tells the client to come
// back no sooner than the workers would.
func TestDraining503CarriesObservedHint(t *testing.T) {
	reg := NewRegistry(0)
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "7")
		serve.WriteJSON(w, http.StatusTooManyRequests, serve.HTTPError{Code: "queue_full", Message: "busy"})
	}))
	defer busy.Close()
	reg.AddStatic(busy.URL)
	coord := New(Config{Registry: reg, RetryAfter: time.Second})

	for i := 0; i < 32; i++ {
		var bp *BackpressureError
		if _, err := coord.PredictOne(context.Background(), req("V100", "w", 512), false); !errors.As(err, &bp) {
			t.Fatalf("err = %v, want backpressure", err)
		}
	}
	coord.Drain(false)

	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	var dr *client.ErrDraining
	_, err := client.New(ts.URL).Predict(context.Background(), req("V100", "w", 512))
	if !errors.As(err, &dr) {
		t.Fatalf("err = %v, want draining", err)
	}
	if dr.RetryAfter < 7*time.Second {
		t.Fatalf("draining Retry-After = %v, want >= the workers' own 7s hint", dr.RetryAfter)
	}
}
