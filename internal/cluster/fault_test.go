package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dlrmperf"
	"dlrmperf/internal/client"
)

// affineDevice returns a device name whose rendezvous rank-0 among the
// live workers is want — fault tests use it to aim traffic at the
// worker they are about to kill.
func affineDevice(t *testing.T, live []Worker, want string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		dev := fmt.Sprintf("gpu-%d", i)
		if Rank(live, dev)[0].ID == want {
			return dev
		}
	}
	t.Fatal("no device ranks the target worker first (rendezvous broken?)")
	return ""
}

// TestWorkerKilledMidStreamRetries is the headline fault injection:
// the worker owning a device dies mid-response, the coordinator counts
// the broken attempt under rejected.worker_failed, retries once on the
// next-ranked candidate, and the client transparently gets a served
// row from the survivor. The dead worker is quarantined, so follow-up
// traffic goes straight to the survivor without another failure.
func TestWorkerKilledMidStreamRetries(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	live := coord.Registry().Live()
	victim, survivor := workers[0], workers[1]
	dev := affineDevice(t, live, victim.id)

	// Prime: the device's first request lands (and "calibrates") on the
	// victim.
	if row, err := coord.PredictOne(context.Background(), req(dev, "w", 512), false); err != nil || row.Error != "" {
		t.Fatalf("prime: %v / %q", err, row.Error)
	}
	if victim.receivedCount() != 1 || survivor.receivedCount() != 0 {
		t.Fatalf("prime routed %d/%d, want 1/0", victim.receivedCount(), survivor.receivedCount())
	}

	// Kill mid-stream: every further response on the victim aborts the
	// connection, exactly like a process dying with the request in
	// flight.
	victim.killed.Store(true)
	row, err := coord.PredictOne(context.Background(), req(dev, "w", 1024), false)
	if err != nil || row.Error != "" {
		t.Fatalf("failover request: %v / %q, want transparent success via survivor", err, row.Error)
	}
	if survivor.receivedCount() != 1 {
		t.Fatalf("survivor served %d, want 1 (the retried request)", survivor.receivedCount())
	}
	st := coord.Stats(context.Background())
	if st.Rejected.WorkerFailed != 1 {
		t.Fatalf("worker_failed = %d, want 1 (the broken first attempt)", st.Rejected.WorkerFailed)
	}
	assertAggInvariant(t, st)

	// The victim is quarantined: it is out of the live set and the next
	// request for its device routes straight to the survivor.
	if lv := coord.Registry().Live(); len(lv) != 1 || lv[0].ID != survivor.id {
		t.Fatalf("live after failure = %+v, want only the survivor", lv)
	}
	if row, err := coord.PredictOne(context.Background(), req(dev, "w", 2048), false); err != nil || row.Error != "" {
		t.Fatalf("post-failover request: %v / %q", err, row.Error)
	}
	if st := coord.Stats(context.Background()); st.Rejected.WorkerFailed != 1 {
		t.Fatalf("worker_failed grew to %d after quarantine, want still 1", st.Rejected.WorkerFailed)
	}
}

// TestWorkerDeadSocketRetries is the harsher variant: the worker's
// listener is gone entirely (connection refused), which must take the
// same retry path.
func TestWorkerDeadSocketRetries(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	live := coord.Registry().Live()
	victim, survivor := workers[0], workers[1]
	dev := affineDevice(t, live, victim.id)

	victim.srv.CloseClientConnections()
	victim.srv.Close()

	row, err := coord.PredictOne(context.Background(), req(dev, "w", 512), true)
	if err != nil || row.Error != "" {
		t.Fatalf("failover: %v / %q", err, row.Error)
	}
	if survivor.receivedCount() != 1 {
		t.Fatalf("survivor served %d, want 1", survivor.receivedCount())
	}
	if st := coord.Stats(context.Background()); st.Rejected.WorkerFailed != 1 {
		t.Fatalf("worker_failed = %d, want 1", st.Rejected.WorkerFailed)
	}
}

// TestAllWorkersDead: with every candidate failing, the single retry
// is spent and the request surfaces a RouteError (the 502), with both
// broken attempts accounted.
func TestAllWorkersDead(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	for _, fw := range workers {
		fw.killed.Store(true)
	}
	_, err := coord.PredictOne(context.Background(), req("gpu-0", "w", 512), false)
	var re *RouteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RouteError", err)
	}
	st := coord.Stats(context.Background())
	if st.Rejected.WorkerFailed != 2 {
		t.Fatalf("worker_failed = %d, want 2 (both attempts)", st.Rejected.WorkerFailed)
	}
	assertAggInvariant(t, st)
}

// TestDrainingWorkerFailsOver: a worker shutting down reports batch
// rows as 200s carrying the drain sentinel in the row error; the
// coordinator must treat that as a routing failure and fail the row
// over to the survivor instead of delivering a terminal "draining"
// row — batch rows never shed just because their affine worker is
// going away.
func TestDrainingWorkerFailsOver(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	victim, survivor := workers[0], workers[1]
	dev := affineDevice(t, coord.Registry().Live(), victim.id)

	victim.draining.Store(true)
	row, err := coord.PredictOne(context.Background(), req(dev, "w", 512), true)
	if err != nil || row.Error != "" {
		t.Fatalf("batch row via draining worker: %v / %q, want failover success", err, row.Error)
	}
	if survivor.receivedCount() != 1 {
		t.Fatalf("survivor served %d, want 1", survivor.receivedCount())
	}
	st := coord.Stats(context.Background())
	if st.Rejected.WorkerFailed != 1 {
		t.Fatalf("worker_failed = %d, want 1 (the draining attempt)", st.Rejected.WorkerFailed)
	}
}

// TestClientCancelDoesNotQuarantine: a client that times out while its
// affine worker is legitimately computing must NOT mark the worker
// failed (that would evict the device's hot calibration) nor count a
// worker failure — the client died, not the worker.
func TestClientCancelDoesNotQuarantine(t *testing.T) {
	coord, workers := newTestCluster(t, 2, nil)
	dev := affineDevice(t, coord.Registry().Live(), workers[0].id)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := coord.PredictOne(ctx, req(dev, "slow", 512), false)
	if err == nil {
		t.Fatal("expired client got a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the client's deadline", err)
	}
	if live := coord.Registry().Live(); len(live) != 2 {
		t.Fatalf("live after client cancel = %d workers, want 2 (no quarantine)", len(live))
	}
	if st := coord.Stats(context.Background()); st.Rejected.WorkerFailed != 0 {
		t.Fatalf("worker_failed = %d, want 0 for a client-side cancel", st.Rejected.WorkerFailed)
	}
}

// TestHeartbeatExpiryStopsRouting pins the liveness window with an
// injected clock: a registered worker that stops heartbeating is out
// of the routing set within one window — no real sleeping — and a
// fresh heartbeat brings it straight back.
func TestHeartbeatExpiryStopsRouting(t *testing.T) {
	reg := NewRegistry(5 * time.Second)
	now := time.Unix(1000, 0)
	reg.now = func() time.Time { return now }

	a, b := newFakeWorker(t), newFakeWorker(t)
	reg.Register(a.id, a.srv.URL)
	reg.AddStatic(b.srv.URL)
	coord := New(Config{Registry: reg})
	dev := affineDevice(t, reg.Live(), a.id)

	if row, err := coord.PredictOne(context.Background(), req(dev, "w", 512), false); err != nil || row.Error != "" {
		t.Fatalf("prime: %v / %q", err, row.Error)
	}
	if a.receivedCount() != 1 {
		t.Fatalf("affine worker served %d, want 1", a.receivedCount())
	}

	// One liveness window later with no heartbeat, the registry stops
	// routing to it: the same device now lands on the static survivor.
	now = now.Add(5*time.Second + time.Millisecond)
	if lv := reg.Live(); len(lv) != 1 || lv[0].ID != b.id {
		t.Fatalf("live after expiry = %+v, want only the static worker", lv)
	}
	if row, err := coord.PredictOne(context.Background(), req(dev, "w", 1024), false); err != nil || row.Error != "" {
		t.Fatalf("post-expiry: %v / %q", err, row.Error)
	}
	if a.receivedCount() != 1 || b.receivedCount() != 1 {
		t.Fatalf("routed %d/%d after expiry, want 1/1", a.receivedCount(), b.receivedCount())
	}

	// A fresh heartbeat restores routing — and lifts any quarantine.
	reg.Register(a.id, a.srv.URL)
	if lv := reg.Live(); len(lv) != 2 {
		t.Fatalf("live after re-register = %+v, want both", lv)
	}

	// The snapshot reports the dead period honestly too.
	now = now.Add(6 * time.Second)
	for _, info := range reg.Snapshot() {
		if info.ID == a.id && info.Live {
			t.Fatalf("snapshot shows expired worker live: %+v", info)
		}
		if info.ID == b.id && !info.Live {
			t.Fatalf("snapshot shows static worker dead: %+v", info)
		}
	}
}

// TestStaticWorkerQuarantineHeals: a static worker that fails is
// quarantined for one liveness window, then rejoins the routing set
// (self-healing without heartbeats).
func TestStaticWorkerQuarantineHeals(t *testing.T) {
	reg := NewRegistry(5 * time.Second)
	now := time.Unix(2000, 0)
	reg.now = func() time.Time { return now }
	reg.AddStatic("http://worker-a")
	reg.AddStatic("http://worker-b")

	reg.MarkFailed("http://worker-a")
	if lv := reg.Live(); len(lv) != 1 || lv[0].ID != "http://worker-b" {
		t.Fatalf("live during quarantine = %+v", lv)
	}
	now = now.Add(5*time.Second + time.Millisecond)
	if lv := reg.Live(); len(lv) != 2 {
		t.Fatalf("live after quarantine lapse = %+v, want both", lv)
	}
}

// TestInvariantAcrossHandoffAndMigration is the replication fault
// drill: traffic flows through a two-coordinator group, the leader
// dies (lease hand-off), then a device's home worker dies (asset
// migration) — and at every quiescent point, on whichever coordinator
// answers, the accounting identity hits + misses + rejected ==
// requests still holds. Control-plane traffic (gossip, installs)
// must move no request counters.
func TestInvariantAcrossHandoffAndMigration(t *testing.T) {
	engA, err := dlrmperf.NewEngineWith(dlrmperf.EngineConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	engB, err := dlrmperf.NewEngineWith(dlrmperf.EngineConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cA, cB, urlA, urlB := peerPair(t, engA, engB)
	leader, survivor := cA, cB
	if urlB < urlA {
		leader, survivor = cB, cA
	}
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	for _, c := range []*Coordinator{cA, cB} {
		c.Registry().AddStatic(w1.srv.URL)
		c.Registry().AddStatic(w2.srv.URL)
	}
	// Both leases live: the lower URL holds the lease.
	cA.Lease().MarkSeen(urlB)
	cB.Lease().MarkSeen(urlA)
	if !leader.Lease().IsLeader() || survivor.Lease().IsLeader() {
		t.Fatalf("lease split: leader=%v survivor=%v", leader.Lease().Snapshot(), survivor.Lease().Snapshot())
	}
	ctx := context.Background()

	// Phase 1: traffic through the leader — misses fetch from workers
	// and replicate to the survivor.
	dev := affineDevice(t, leader.Registry().Live(), w1.id)
	for i := 0; i < 4; i++ {
		if row, err := leader.PredictOne(ctx, req(dev, "w", int64(512+i%2)), false); err != nil || row.Error != "" {
			t.Fatalf("phase 1 request %d: %v / %q", i, err, row.Error)
		}
	}
	// The home's heartbeat pushed its calibration assets group-wide.
	if err := (client.New(leader.Lease().Self())).PushAssets(ctx, w1.id, dev, 1, fakeAssets(dev)); err != nil {
		t.Fatal(err)
	}
	leader.Drain(false) // quiesce the replication fan, then "kill" the leader
	assertAggInvariant(t, leader.Stats(ctx))

	// Phase 2: lease hand-off. The survivor ages the dead leader out of
	// its window (injected clock — no sleeping) and takes the lease.
	now := time.Now().Add(2 * DefaultLiveness)
	survivor.lease.now = func() time.Time { return now }
	if !survivor.Lease().IsLeader() {
		t.Fatalf("survivor did not take the lease: %+v", survivor.Lease().Snapshot())
	}
	// No cached result was lost: the fingerprints fetched through the
	// dead leader are local hits on the survivor — the workers see no
	// re-fetch.
	routed := w1.receivedCount() + w2.receivedCount()
	for i := 0; i < 2; i++ {
		row, err := survivor.PredictOne(ctx, req(dev, "w", int64(512+i)), false)
		if err != nil || row.Error != "" || !row.CacheHit {
			t.Fatalf("replicated re-query %d = %+v, %v; want a local hit", i, row, err)
		}
	}
	if got := w1.receivedCount() + w2.receivedCount(); got != routed {
		t.Fatalf("re-queries reached workers (%d -> %d routed), want local hits only", routed, got)
	}
	assertAggInvariant(t, survivor.Stats(ctx))
	if gossiped := survivor.vault.snapshot()[dev]; gossiped.Worker != w1.id {
		t.Fatalf("survivor's vault missing the gossiped assets: %+v", gossiped)
	}

	// Phase 3: the device's home dies. A FRESH fingerprint on the
	// survivor coordinator fails over to w2 with the assets installed
	// first — warm, ledger unchanged — and the invariant still holds:
	// the broken attempt and the served retry are both accounted, the
	// install is not.
	w1.killed.Store(true)
	row, err := survivor.PredictOne(ctx, req(dev, "w", 4096), false)
	if err != nil || row.Error != "" || row.CacheHit {
		t.Fatalf("migration request = %+v, %v; want a routed miss via w2", row, err)
	}
	if !w2.hasInstalled(dev) {
		t.Fatal("w2 served the failover request cold")
	}
	if cals := w2.calibratedDevices(); cals[dev] != 0 {
		t.Fatalf("w2's calibration ledger grew after the warm hand-off: %v", cals)
	}
	st := survivor.Stats(ctx)
	if st.Rejected.WorkerFailed != 1 {
		t.Fatalf("worker_failed = %d, want 1 (the broken attempt on w1)", st.Rejected.WorkerFailed)
	}
	if st.Coordinator.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", st.Coordinator.Migrations)
	}
	assertAggInvariant(t, st)
}
