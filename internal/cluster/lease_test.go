package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dlrmperf"
	"dlrmperf/internal/client"
)

// TestLeaseLeaderElection pins the lease rule with an injected clock:
// the leader is the lowest URL among self and the peers seen within
// the window, a group of one leads itself, expiry hands the lease
// over deterministically, and a fresh proof of life hands it back —
// no sleeping, no election round trips.
func TestLeaseLeaderElection(t *testing.T) {
	now := time.Unix(3000, 0)
	l := NewLease("http://b", []string{"http://a", "http://c", "http://b"}, 5*time.Second)
	l.now = func() time.Time { return now }

	// Self is excluded from its own peer set; never-seen peers are dead.
	if peers := l.Peers(); len(peers) != 2 || peers[0] != "http://a" || peers[1] != "http://c" {
		t.Fatalf("peers = %v, want [http://a http://c]", peers)
	}
	if got := l.Leader(); got != "http://b" || !l.IsLeader() {
		t.Fatalf("leader with no live peers = %q, want self", got)
	}

	// A live lower peer takes the lease; a live higher one does not.
	l.MarkSeen("http://c")
	if got := l.Leader(); got != "http://b" {
		t.Fatalf("leader with live higher peer = %q, want self", got)
	}
	l.MarkSeen("http://a")
	if got := l.Leader(); got != "http://a" || l.IsLeader() {
		t.Fatalf("leader with live lower peer = %q, want http://a", got)
	}

	// One window later with no proof of life, the lease hands over to
	// the next-lowest live URL — here, self again.
	now = now.Add(5*time.Second + time.Millisecond)
	if got := l.Leader(); got != "http://b" || !l.IsLeader() {
		t.Fatalf("leader after expiry = %q, want self", got)
	}

	// A fresh proof of life hands it straight back.
	l.MarkSeen("http://a")
	if got := l.Leader(); got != "http://a" {
		t.Fatalf("leader after revival = %q, want http://a", got)
	}

	// Unknown URLs are ignored — the peer set is static.
	l.MarkSeen("http://intruder")
	if peers := l.Peers(); len(peers) != 2 {
		t.Fatalf("peer set grew to %v after unknown MarkSeen", peers)
	}
}

// TestLeaseSnapshot: the stats block reports self, the computed
// leader, and per-peer liveness with ages; a nil lease (single
// coordinator) snapshots to nil so the stats field is omitted.
func TestLeaseSnapshot(t *testing.T) {
	now := time.Unix(4000, 0)
	l := NewLease("http://b", []string{"http://a"}, 5*time.Second)
	l.now = func() time.Time { return now }
	l.MarkSeen("http://a")
	now = now.Add(2 * time.Second)

	st := l.Snapshot()
	if st == nil || st.Self != "http://b" || st.Leader != "http://a" || st.IsLeader {
		t.Fatalf("snapshot = %+v, want follower of http://a", st)
	}
	if st.TTLMs != 5000 || len(st.Peers) != 1 {
		t.Fatalf("snapshot = %+v, want ttl 5000ms and one peer", st)
	}
	if p := st.Peers[0]; p.URL != "http://a" || !p.Live || p.LastSeenAgeMs != 2000 {
		t.Fatalf("peer row = %+v, want live with age 2000ms", p)
	}

	now = now.Add(4 * time.Second)
	if p := l.Snapshot().Peers[0]; p.Live {
		t.Fatalf("peer row = %+v, want dead after the window", p)
	}

	var nilLease *Lease
	if nilLease.Snapshot() != nil {
		t.Fatal("nil lease must snapshot to nil")
	}
}

// peerPair wires two coordinators into a replication group over real
// HTTP, each with its own registry and result cache, returning them
// with their base URLs. Lease clocks stay real (tests that need
// expiry inject their own).
func peerPair(t *testing.T, cacheA, cacheB ResultCache) (cA, cB *Coordinator, urlA, urlB string) {
	t.Helper()
	// The handler indirection breaks the chicken-and-egg between
	// httptest URL allocation and Config.Self.
	var a, b *Coordinator
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { a.Handler().ServeHTTP(w, r) }))
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { b.Handler().ServeHTTP(w, r) }))
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	a = New(Config{Registry: NewRegistry(0), Cache: cacheA, Self: tsA.URL, Peers: []string{tsB.URL}})
	b = New(Config{Registry: NewRegistry(0), Cache: cacheB, Self: tsB.URL, Peers: []string{tsA.URL}})
	return a, b, tsA.URL, tsB.URL
}

// waitUntil polls cond until it holds or the deadline lapses.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRegistrationReplicates: a worker registering with ONE
// coordinator becomes routable on every coordinator — the leader
// gossips it, a follower forwards it to the leader — so wherever a
// heartbeat lands, the whole group converges on the same routing set.
func TestRegistrationReplicates(t *testing.T) {
	cA, cB, urlA, urlB := peerPair(t, nil, nil)
	fw := newFakeWorker(t)

	// Register via A (whatever its lease role); B must learn the worker
	// through replication without ever hearing from it directly.
	if err := client.New(urlA).Register(context.Background(), fw.id, fw.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "registration to reach peer", func() bool { return len(cB.Registry().Live()) == 1 })

	// And symmetrically: registering via B reaches A. (One direction
	// exercised leader-gossip, the other follower-forwarding, whichever
	// way the URLs sorted.)
	fw2 := newFakeWorker(t)
	if err := client.New(urlB).Register(context.Background(), fw2.id, fw2.srv.URL); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "second registration to reach peer", func() bool { return len(cA.Registry().Live()) == 2 })

	// Gossip receipts are proof of life: each lease has seen its peer.
	if cA.Lease().Leader() != cB.Lease().Leader() {
		t.Fatalf("split brain: A elects %q, B elects %q", cA.Lease().Leader(), cB.Lease().Leader())
	}
}

// TestResultReplicationSurvivesLeaderDeath is the tentpole cache
// property: a result fetched through one coordinator is a local cache
// hit on the OTHER after the first dies — killing the leader loses no
// cached results.
func TestResultReplicationSurvivesLeaderDeath(t *testing.T) {
	engA, err := dlrmperf.NewEngineWith(dlrmperf.EngineConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	engB, err := dlrmperf.NewEngineWith(dlrmperf.EngineConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cA, cB, _, _ := peerPair(t, engA, engB)
	fw := newFakeWorker(t)
	cA.Registry().AddStatic(fw.srv.URL)
	cB.Registry().AddStatic(fw.srv.URL)

	r := req("V100", "DLRM_default", 512)
	row, err := cA.PredictOne(context.Background(), r, false)
	if err != nil || row.Error != "" || row.CacheHit {
		t.Fatalf("fetch via A = %+v, %v; want a routed miss", row, err)
	}
	// Quiesce A's replication fan, then "kill" it: from here on only B
	// answers.
	cA.Drain(false)

	waitUntil(t, "replicated result to land in B's cache", func() bool {
		row, err := cB.PredictOne(context.Background(), r, false)
		return err == nil && row.CacheHit
	})
	if n := fw.receivedCount(); n != 1 {
		t.Fatalf("worker saw %d requests, want 1 — the re-query must be B's local hit", n)
	}
	st := cB.Stats(context.Background())
	if st.Coordinator.LocalCacheHits == 0 {
		t.Fatalf("B reports no local hits after replicated re-query: %+v", st.Coordinator)
	}
	if st.Coordinator.PeerResultsInstalled == 0 {
		t.Fatalf("B never counted the gossiped install: %+v", st.Coordinator)
	}
	assertAggInvariant(t, st)
}

// TestDrainingPeerCannotLead: peer probes refresh the lease only on an
// "ok" /healthz — a draining coordinator answers probes but is leaving
// the group and must age out of leadership.
func TestDrainingPeerCannotLead(t *testing.T) {
	cA, cB, urlA, urlB := peerPair(t, nil, nil)
	lower, higher := cA, cB
	if urlB < urlA {
		lower, higher = cB, cA
	}
	// Pin clocks so liveness is under test control.
	now := time.Unix(5000, 0)
	higher.lease.now = func() time.Time { return now }
	higher.lease.MarkSeen(lower.lease.Self())
	if higher.lease.IsLeader() {
		t.Fatal("higher URL leads while the lower peer is live")
	}

	// The lower coordinator drains: its healthz flips, so probes stop
	// refreshing it and the higher peer takes the lease at expiry.
	lower.Drain(false)
	stop := higher.StartPeerProbes(context.Background(), 20*time.Millisecond)
	defer stop()
	now = now.Add(DefaultLiveness + time.Millisecond)
	time.Sleep(100 * time.Millisecond) // several probe rounds against the draining peer
	if !higher.lease.IsLeader() {
		t.Fatalf("lease still held by draining peer: %+v", higher.lease.Snapshot())
	}
}
