package cluster

import "sort"

// Rendezvous (highest-random-weight) hashing is the coordinator's
// device→worker routing function. Every (worker, key) pair gets a
// deterministic pseudo-random score; a key is served by the live
// worker with the highest score. The properties the serving layer
// leans on, all pinned by property tests:
//
//   - Deterministic and order-free: the ranking depends only on the
//     worker IDs and the key, never on registration order, so every
//     coordinator replica routes identically and a device's pinned
//     calibration assets stay hot on one worker.
//   - Uniform: scores are independent hashes, so devices spread evenly
//     across workers without a token ring or virtual nodes.
//   - Minimal disruption: removing a worker only re-homes the keys it
//     owned (their next-ranked candidate is unchanged); keys on
//     surviving workers never move. This is what makes the one-retry
//     failover cheap — the retry target is exactly the worker the key
//     would live on after the failure.

// rendezvousScore hashes one (workerID, key) pair: FNV-1a over the two
// strings with a separator byte (so ("ab","c") and ("a","bc") differ),
// finished with a SplitMix64 mixer for high-order avalanche — raw
// FNV-1a is too weak in its top bits for a fair argmax.
func rendezvousScore(workerID, key string) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(workerID); i++ {
		h = (h ^ uint64(workerID[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	// SplitMix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Rank orders workers by descending rendezvous weight for key; ties
// (only possible with duplicate IDs) break toward the lower ID so the
// ranking is a total order. The input slice is not modified.
func Rank(workers []Worker, key string) []Worker {
	out := append([]Worker(nil), workers...)
	sort.SliceStable(out, func(a, b int) bool {
		sa, sb := rendezvousScore(out[a].ID, key), rendezvousScore(out[b].ID, key)
		if sa != sb {
			return sa > sb
		}
		return out[a].ID < out[b].ID
	})
	return out
}
