package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"dlrmperf/internal/client"
	"dlrmperf/internal/serve"
)

// Asset migration on failover. Calibrating a device costs seconds; the
// serialized result (Engine.SaveAssets) is a few hundred KB. So the
// coordinator keeps a replicated copy of every worker's exported
// calibration assets in an assetVault — refreshed by the workers'
// heartbeat-time pushes (POST /v1/workers/assets, see
// HeartbeatAssets) and gossiped to peer coordinators — and when a
// device's rendezvous home dies, the router streams the dead home's
// assets to the device's NEW rendezvous owner (POST
// /v1/assets/install on the worker) before the first request is
// routed there. The new home's first post-failover request is warm:
// its calibration ledger does not grow, and latency is the cached
// path, not a multi-second recalibration.
//
// The vault needs no expiry hook into the registry: ownership is
// evaluated at routing time. Whether the old home was expired by the
// liveness window, quarantined by MarkFailed, or simply out-ranked, the
// rule is the same — if the vault's copy of a device's assets came
// from a worker other than the one about to be routed to, and that
// worker has not been handed them yet, install first. Installs are
// idempotent (LoadAssets overwrites the same pinned slot), so
// concurrent coordinators racing the same hand-off are safe.

// AssetPush is the POST /v1/workers/assets wire body: one worker's
// exported SaveAssets payload for one device, stamped with the
// device's asset epoch so stale replays are dropped.
type AssetPush struct {
	ID     string          `json:"id"`
	Device string          `json:"device"`
	Epoch  uint64          `json:"epoch"`
	Assets json.RawMessage `json:"assets"`
}

// vaultEntry is the replicated asset copy of one device.
type vaultEntry struct {
	worker string // the worker that exported these assets (the device's home)
	epoch  uint64 // the home's asset epoch at export time
	data   []byte
}

// installMark records the newest hand-off: which worker was last
// handed a device's assets, at which vault epoch.
type installMark struct {
	worker string
	epoch  uint64
}

// assetVault is the coordinator's replicated per-device asset store.
type assetVault struct {
	mu        sync.Mutex
	entries   map[string]vaultEntry  // device -> newest export
	installed map[string]installMark // device -> last hand-off target
	gates     map[string]*sync.Mutex // device -> install critical section
}

func newAssetVault() *assetVault {
	return &assetVault{
		entries:   map[string]vaultEntry{},
		installed: map[string]installMark{},
		gates:     map[string]*sync.Mutex{},
	}
}

// put applies one asset export and reports whether it changed the
// vault (the signal to gossip it onward). Epochs are per-worker
// counters, not globally ordered: a push from the CURRENT home applies
// only if its epoch moved forward, while a push from a different
// worker always applies — the newest exporter is the device's new home
// and is authoritative.
func (v *assetVault) put(device, worker string, epoch uint64, data []byte) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if cur, ok := v.entries[device]; ok && cur.worker == worker && epoch <= cur.epoch {
		return false
	}
	v.entries[device] = vaultEntry{worker: worker, epoch: epoch, data: data}
	return true
}

// needInstall reports whether routing device traffic to target
// requires a hand-off first, returning the assets to install. No
// install is needed when the vault has no copy, when target exported
// the copy itself (it IS the home), or when target was already handed
// this exact epoch.
func (v *assetVault) needInstall(device, target string) (data []byte, epoch uint64, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	e, exists := v.entries[device]
	if !exists || e.worker == target {
		return nil, 0, false
	}
	if m, done := v.installed[device]; done && m.worker == target && m.epoch == e.epoch {
		return nil, 0, false
	}
	return e.data, e.epoch, true
}

// markInstalled records a completed hand-off.
func (v *assetVault) markInstalled(device, target string, epoch uint64) {
	v.mu.Lock()
	v.installed[device] = installMark{worker: target, epoch: epoch}
	v.mu.Unlock()
}

// lockDevice serializes hand-offs per device: a post-failover burst
// performs one install while the rest of the burst waits for it, then
// routes warm — instead of racing N identical installs or, worse,
// routing ahead of the install and triggering the recalibration the
// vault exists to avoid.
func (v *assetVault) lockDevice(device string) (unlock func()) {
	v.mu.Lock()
	g, ok := v.gates[device]
	if !ok {
		g = &sync.Mutex{}
		v.gates[device] = g
	}
	v.mu.Unlock()
	g.Lock()
	return g.Unlock
}

// VaultStatus is one device's row in the /stats asset-vault block.
type VaultStatus struct {
	Worker string `json:"worker"`
	Epoch  uint64 `json:"epoch"`
	Bytes  int    `json:"bytes"`
	// InstalledOn is the last hand-off target ("" until a migration
	// happened).
	InstalledOn string `json:"installed_on,omitempty"`
}

// snapshot assembles the vault's observable state.
func (v *assetVault) snapshot() map[string]VaultStatus {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.entries) == 0 {
		return nil
	}
	out := make(map[string]VaultStatus, len(v.entries))
	for d, e := range v.entries {
		st := VaultStatus{Worker: e.worker, Epoch: e.epoch, Bytes: len(e.data)}
		if m, ok := v.installed[d]; ok {
			st.InstalledOn = m.worker
		}
		out[d] = st
	}
	return out
}

// ensureWarm performs the hand-off for one routing decision: if the
// device's vaulted assets came from a worker other than w, stream them
// to w before the caller routes traffic there. Failure is not fatal —
// the request proceeds and w cold-calibrates, which is exactly
// yesterday's behavior — but is counted, so a degraded migration path
// is visible in /stats.
func (c *Coordinator) ensureWarm(ctx context.Context, device string, w Worker) {
	if _, _, ok := c.vault.needInstall(device, w.ID); !ok {
		return // fast path: no vault copy, or w already owns/has it
	}
	unlock := c.vault.lockDevice(device)
	defer unlock()
	data, epoch, ok := c.vault.needInstall(device, w.ID) // recheck under the gate
	if !ok {
		return
	}
	if err := c.workerClient(w.URL).InstallAssets(ctx, data); err != nil {
		c.migrationFailures.Add(1)
		return
	}
	c.vault.markInstalled(device, w.ID, epoch)
	c.migrations.Add(1)
}

// handleWorkerAssets ingests one worker asset export into the vault
// and gossips it to peer coordinators (apply-only on their side).
func (c *Coordinator) handleWorkerAssets(w http.ResponseWriter, r *http.Request) {
	var p AssetPush
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)).Decode(&p); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	if p.ID == "" || p.Device == "" || len(p.Assets) == 0 {
		serve.WriteJSON(w, http.StatusBadRequest, serve.HTTPError{Code: "bad_request", Message: "id, device, and assets are required"})
		return
	}
	if c.vault.put(p.Device, p.ID, p.Epoch, p.Assets) && c.lease != nil {
		c.gossip("/v1/peers/assets", peerAssets{From: c.lease.Self(), Push: p})
	}
	serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "stored"})
}

// AssetExporter is the engine surface the worker-side asset sync
// rides: which devices hold calibration assets, each device's
// mutation epoch, and the serialized export. *dlrmperf.Engine
// implements it.
type AssetExporter interface {
	CalibratedDevices() []string
	AssetsEpoch(device string) uint64
	SaveAssets(device string) ([]byte, error)
}

// HeartbeatAssets self-registers a worker with EVERY coordinator in
// coordinatorURLs immediately and then every interval — the
// multi-coordinator generalization of Heartbeat — and, with a non-nil
// exporter, pushes each calibrated device's exported assets to each
// coordinator whenever the device's asset epoch has moved since the
// last successful push there. The push is the replication source of
// the coordinators' asset vaults: it is what makes a warm hand-off
// possible after this worker dies. Registration and push failures are
// retried on the next tick; a restarted coordinator re-learns both
// within one beat.
func HeartbeatAssets(ctx context.Context, hc *http.Client, coordinatorURLs []string, id, selfURL string, interval time.Duration, exp AssetExporter) (stop func()) {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	clients := make([]*client.Client, len(coordinatorURLs))
	pushed := make([]map[string]uint64, len(coordinatorURLs))
	for i, u := range coordinatorURLs {
		clients[i] = client.New(u, client.WithHTTPClient(hc))
		pushed[i] = map[string]uint64{}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	beat := func() {
		for i, cl := range clients {
			if err := cl.Register(ctx, id, selfURL); err != nil {
				continue // coordinator unreachable; retried next tick
			}
			if exp == nil {
				continue
			}
			devices := exp.CalibratedDevices()
			sort.Strings(devices)
			for _, d := range devices {
				epoch := exp.AssetsEpoch(d)
				if epoch == pushed[i][d] {
					continue
				}
				data, err := exp.SaveAssets(d)
				if err != nil {
					continue
				}
				if cl.PushAssets(ctx, id, d, epoch, data) == nil {
					// The epoch may have moved between AssetsEpoch and
					// SaveAssets; recording the pre-export epoch only means
					// the next beat re-pushes, which is the safe direction.
					pushed[i][d] = epoch
				}
			}
		}
	}
	go func() {
		defer close(exited)
		beat()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				beat()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
