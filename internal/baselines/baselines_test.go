package baselines

import (
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/models"
	"dlrmperf/internal/sim"
	"dlrmperf/internal/stats"
)

func TestHabitatScaleDirections(t *testing.T) {
	h := &Habitat{Base: hw.V100Platform(), Target: hw.P100Platform()}
	// Moving from V100 to the slower P100 must scale every kernel up.
	compute := kernels.GEMM{Batch: 1, M: 2048, N: 2048, K: 2048}
	memory := kernels.Concat{OutBytes: 1 << 24, NInputs: 2}
	if h.scale(compute) <= 1 {
		t.Errorf("compute scale to slower GPU = %v, want > 1", h.scale(compute))
	}
	if h.scale(memory) <= 1 {
		t.Errorf("memory scale to slower GPU = %v, want > 1", h.scale(memory))
	}
	// Compute-bound kernels scale closer to the FLOPS ratio; memory-bound
	// closer to the bandwidth ratio.
	fpRatio := h.Base.GPU.PeakFP32 / h.Target.GPU.PeakFP32
	bwRatio := h.Base.GPU.DRAMBandwidth / h.Target.GPU.DRAMBandwidth
	if d := h.scale(compute) - fpRatio; d > 0.2 || d < -0.2 {
		t.Errorf("compute scale %v far from FLOPS ratio %v", h.scale(compute), fpRatio)
	}
	if d := h.scale(memory) - bwRatio; d > 0.2 || d < -0.2 {
		t.Errorf("memory scale %v far from BW ratio %v", h.scale(memory), bwRatio)
	}
}

func TestHabitatMemcpyUsesPCIe(t *testing.T) {
	h := &Habitat{Base: hw.V100Platform(), Target: hw.TITANXpPlatform()}
	cp := kernels.Memcpy{NBytes: 1 << 24, Dir: kernels.H2D}
	want := h.Base.GPU.PCIeBandwidth / h.Target.GPU.PCIeBandwidth
	if got := h.scale(cp); got != want {
		t.Errorf("memcpy scale = %v, want %v", got, want)
	}
}

func TestHabitatPredictReasonableOnCNN(t *testing.T) {
	m, err := models.Build(models.NameResNet50, 16)
	if err != nil {
		t.Fatal(err)
	}
	target := hw.P100Platform()
	h := &Habitat{Base: hw.V100Platform(), Target: target, Seed: 5}
	pred := h.Predict(m.Graph, m.Name)
	meas := sim.Run(m.Graph, sim.Config{Platform: target, Seed: 9, Warmup: 1, Iters: 3, Workload: m.Name})
	if e := stats.AbsRelErr(pred, meas.MeanIterTime); e > 0.35 {
		t.Errorf("habitat resnet error = %.1f%%, want < 35%%", 100*e)
	}
}

func TestMLPredictCoveredVsUncovered(t *testing.T) {
	p := hw.V100Platform()
	ml := TrainMLPredict(p, 7)

	res, err := models.Build(models.NameResNet50, 16)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := models.Build(models.NameInceptionV3, 16)
	if err != nil {
		t.Fatal(err)
	}
	measRes := sim.Run(res.Graph, sim.Config{Platform: p, Seed: 4, Warmup: 1, Iters: 3, Workload: res.Name})
	measInc := sim.Run(inc.Graph, sim.Config{Platform: p, Seed: 4, Warmup: 1, Iters: 3, Workload: inc.Name})

	errRes := stats.AbsRelErr(ml.Predict(res.Graph), measRes.MeanIterTime)
	errInc := stats.AbsRelErr(ml.Predict(inc.Graph), measInc.MeanIterTime)
	// ResNet-50 at B=16 is inside the corpus: moderate error. Inception's
	// 1x7/7x1 stacks are the documented failure (Fig. 10's 50-73% bars).
	if errRes > 0.4 {
		t.Errorf("MLPredict resnet error = %.1f%%, should be covered", 100*errRes)
	}
	if errInc < errRes {
		t.Errorf("MLPredict should fail harder on inception: %.1f%% vs %.1f%%", 100*errInc, 100*errRes)
	}
	if errInc < 0.25 {
		t.Errorf("MLPredict inception error = %.1f%%, the coverage failure should be visible", 100*errInc)
	}
	// Failure mode bounded: the clamp prevents astronomic divergence.
	if errInc > 5 {
		t.Errorf("MLPredict inception error diverged: %.0f%%", 100*errInc)
	}
}

func TestMLPredictKernelClamp(t *testing.T) {
	p := hw.V100Platform()
	ml := TrainMLPredict(p, 11)
	// An absurd extrapolation target must stay within the clamped range.
	monster := kernels.Conv{N: 1024, C: 4096, H: 512, W: 512, K: 4096, R: 7, S: 7, Stride: 1, PadH: 3, PadW: 3}
	if got := ml.PredictKernel(monster); got > 3e6 {
		t.Errorf("clamp failed: %v µs", got)
	}
	// Non-layer kernels get the token charge.
	ew := kernels.Elementwise{Name: "relu", NElems: 1 << 20, ReadsPerElem: 4, WritesPerElem: 4}
	if got := ml.PredictKernel(ew); got > 100 {
		t.Errorf("non-layer op charge = %v, want small constant", got)
	}
}
