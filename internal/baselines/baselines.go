// Package baselines reimplements, faithfully in spirit, the two
// comparison predictors of Fig. 10:
//
//   - Habitat (Yu et al.): a runtime-based cross-device predictor. It
//     measures each op on a base GPU and scales the measured kernel times
//     to the target GPU by compute/bandwidth ratios (wave scaling), then
//     sums per-op latencies. It cannot predict kernel time for unmeasured
//     configurations and it inherits the base machine's overheads.
//
//   - MLPredict (Justus et al.): a per-op ML predictor trained on a
//     limited shape corpus — batch sizes up to 32 and square convolution
//     filters. It predicts each op's *total* latency (kernel + overhead)
//     and sums. Its documented failure modes, which Fig. 10 exhibits, are
//     extrapolation to uncovered batch sizes and asymmetric (1x7/7x1)
//     convolutions.
package baselines

import (
	"math"

	"dlrmperf/internal/graph"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/sim"
	"dlrmperf/internal/xrand"
)

// Habitat predicts a workload's per-batch time on a target GPU from a
// measured run on a base GPU.
type Habitat struct {
	Base   hw.Platform
	Target hw.Platform
	// Seed drives the base-device measurement run.
	Seed uint64
}

// scale returns the wave-scaling factor applied to a kernel measured on
// base when moving to target: compute-bound kernels scale with peak
// FLOPS, memory-bound ones with memory bandwidth, blended by arithmetic
// intensity.
func (h *Habitat) scale(k kernels.Kernel) float64 {
	read, write := k.Bytes()
	bytes := read + write
	flops := k.FLOPs()
	switch k.Kind() {
	case kernels.KindMemcpyH2D, kernels.KindMemcpyD2H:
		return h.Base.GPU.PCIeBandwidth / h.Target.GPU.PCIeBandwidth
	}
	bwRatio := h.Base.GPU.DRAMBandwidth / h.Target.GPU.DRAMBandwidth
	fpRatio := h.Base.GPU.PeakFP32 / h.Target.GPU.PeakFP32
	if bytes <= 0 {
		return fpRatio
	}
	// Arithmetic intensity relative to the base device's balance point.
	ai := flops / bytes
	balance := h.Base.GPU.PeakFP32 / h.Base.GPU.DRAMBandwidth
	w := ai / (ai + balance) // 0 = memory bound, 1 = compute bound
	return (1-w)*bwRatio + w*fpRatio
}

// Predict measures g on the base platform and returns the scaled per-batch
// prediction for the target platform: the sum over ops of
// max(host latency, scaled device time), Habitat's op-serial composition.
func (h *Habitat) Predict(g *graph.Graph, workload string) float64 {
	res := sim.Run(g, sim.Config{
		Platform: h.Base, Seed: h.Seed, Warmup: 3, Iters: 10, Workload: workload,
	})
	tr := res.Trace
	// Average per-op host span and device time across iterations.
	type acc struct{ host, dev float64 }
	perNode := map[int]*acc{}
	kernelOf := map[int][]kernels.Kernel{}
	for _, n := range g.Nodes {
		kernelOf[int(n.ID)] = g.NodeKernels(n)
	}
	for iter := 0; iter < tr.Iters; iter++ {
		for _, oe := range tr.EventTree(iter) {
			a := perNode[oe.Span.Node]
			if a == nil {
				a = &acc{}
				perNode[oe.Span.Node] = a
			}
			a.host += oe.Span.Duration()
			for i, kev := range oe.Kernels {
				ks := kernelOf[oe.Span.Node]
				if i < len(ks) {
					a.dev += kev.Duration() * h.scale(ks[i])
				} else {
					a.dev += kev.Duration()
				}
			}
		}
	}
	total := 0.0
	for _, a := range perNode {
		host := a.host / float64(tr.Iters)
		dev := a.dev / float64(tr.Iters)
		if dev > host {
			total += dev
		} else {
			total += host
		}
	}
	return total
}

// MLPredict is the per-op ML predictor with limited shape coverage.
// Predictions are clamped to the training corpus's latency range (plus
// one e-fold of headroom): the published predictor regresses bounded
// normalized targets, so it saturates rather than diverges when asked to
// extrapolate far outside its corpus.
type MLPredict struct {
	net    *mlp.Net
	gpu    hw.GPU
	host   hw.Host
	minLog float64
	maxLog float64
}

// mlpredictCoveredBatches is the training corpus batch-size coverage.
var mlpredictCoveredBatches = []int64{4, 8, 16, 32}

// mlpredictFeatures maps a kernel to MLPredict's op-level feature vector
// (batch, channels, spatial size, filter extents, stride). The training
// corpus contains only square filters, so the R and S features are
// perfectly correlated during training; on Inception-V3's 1x7/7x1 inputs
// the regressor is off its manifold and misprices those stacks — the
// failure mode the paper attributes to MLPredict's limited shape
// coverage.
func mlpredictFeatures(k kernels.Kernel) []float64 {
	switch kk := k.(type) {
	case kernels.Conv:
		return []float64{lg(kk.N), lg(kk.C), lg(kk.H), lg(kk.K),
			float64(kk.R), float64(kk.S), float64(kk.Stride)}
	case kernels.GEMM:
		return []float64{lg(kk.Batch * kk.M), lg(kk.N), lg(kk.K), 0, -1, -1, 0}
	default:
		read, write := k.Bytes()
		return []float64{lgf(read + write), 0, 0, 0, -2, -2, 1}
	}
}

func lgf(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

func lg(x int64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(float64(x))
}

// TrainMLPredict builds the baseline by benchmarking ops (kernel time
// plus a fixed launch overhead, since the published model predicts
// whole-op latencies) on the covered corpus.
func TrainMLPredict(p hw.Platform, seed uint64) *MLPredict {
	rng := xrand.New(seed)
	dev := kernels.NewDevice(p.GPU, rng.Split().Uint64())

	var X [][]float64
	var Y []float64
	add := func(k kernels.Kernel) {
		if k.FLOPs() > 2e12 {
			return // real layer corpora contain no half-second kernels
		}
		t := dev.RunAveraged(k, 5) + 12*p.Host.OverheadScale // op latency incl. overhead
		X = append(X, mlpredictFeatures(k))
		Y = append(Y, logf(t))
	}
	// Square-filter convolutions of real-network layers over the covered
	// batch sizes (stem-scale spatial sizes and 7x7 filters included;
	// asymmetric filters are not).
	for _, n := range mlpredictCoveredBatches {
		for _, c := range []int64{3, 16, 64, 128, 256, 512, 1024} {
			for _, hwDim := range []int64{7, 14, 28, 56, 112, 224} {
				for _, f := range []int64{1, 3, 5, 7} {
					for _, k := range []int64{32, 128, 512, 2048} {
						for _, stride := range []int64{1, 2} {
							add(kernels.Conv{N: n, C: c, H: hwDim, W: hwDim, K: k,
								R: f, S: f, Stride: stride, PadH: f / 2, PadW: f / 2})
						}
					}
				}
			}
		}
	}
	// Dense layers.
	for _, n := range mlpredictCoveredBatches {
		for _, in := range []int64{256, 1024, 4096} {
			for _, out := range []int64{256, 1024, 4096} {
				add(kernels.GEMM{Batch: 1, M: n, N: out, K: in})
			}
		}
	}
	net := mlp.Train(X, Y, mlp.Config{
		HiddenLayers: 2, Width: 48, Optimizer: mlp.Adam, LR: 2e-3, Epochs: 40, BatchSize: 64,
	}, rng.Uint64())
	minLog, maxLog := Y[0], Y[0]
	for _, y := range Y {
		if y < minLog {
			minLog = y
		}
		if y > maxLog {
			maxLog = y
		}
	}
	return &MLPredict{net: net, gpu: p.GPU, host: p.Host, minLog: minLog - 1, maxLog: maxLog + 1}
}

func logf(t float64) float64 {
	if t <= 0 {
		t = 1e-6
	}
	return math.Log(t)
}

// Predict sums per-op latency predictions over the graph. Like the
// published tool, only the layer types in the corpus (convolutions and
// dense layers) are predicted by the network; every other op contributes
// a token fixed launch latency — batch-norm, pooling, and activation
// device time is simply missed, and asymmetric convolutions are priced
// as their square counterparts.
func (m *MLPredict) Predict(g *graph.Graph) float64 {
	total := 0.0
	for _, n := range g.Nodes {
		for _, k := range g.NodeKernels(n) {
			total += m.PredictKernel(k)
		}
	}
	return total
}

// PredictKernel exposes the per-kernel prediction for debugging and
// tests.
func (m *MLPredict) PredictKernel(k kernels.Kernel) float64 {
	switch k.Kind() {
	case kernels.KindConv, kernels.KindGEMM:
		y := m.net.Predict(mlpredictFeatures(k))
		if y < m.minLog {
			y = m.minLog
		}
		if y > m.maxLog {
			y = m.maxLog
		}
		return math.Exp(y)
	}
	return 12 * m.host.OverheadScale
}
