// Package serve_test drives the worker HTTP surface through
// internal/client — the same typed client the coordinator and the load
// generator use — so the wire contract and the error taxonomy are
// tested end to end instead of against hand-rolled requests. It lives
// in the external test package because client imports serve.
package serve_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dlrmperf/internal/client"
	"dlrmperf/internal/serve"
)

func newHTTPServer(t *testing.T, cfg serve.Config) (*serve.Server, *client.Client) {
	t.Helper()
	s := serve.New(cfg)
	t.Cleanup(s.Drain)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL)
}

// TestHTTPSurface exercises the full wire surface through the typed
// client: predict with tenant and priority tags, worker-side cache
// verdicts, app-level error rows, the batch path, scenario listing,
// liveness, and a stats document that keeps the accounting identity
// and carries the per-tenant ledger.
func TestHTTPSurface(t *testing.T) {
	fb := serve.NewTestBackend()
	fb.Release() // nothing parks
	_, cl := newHTTPServer(t, serve.Config{Backend: fb, QueueDepth: 8, Workers: 2})
	ctx := context.Background()

	if h, err := cl.Healthz(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %+v / %v, want ok", h, err)
	}

	req := serve.Request{Workload: "w", Device: "FakeGPU", Tenant: "acme", Priority: "high"}
	row, err := cl.Predict(ctx, req)
	if err != nil || row.Error != "" || row.E2EUs != 42 || row.CacheHit {
		t.Fatalf("predict = %+v / %v, want a computed miss", row, err)
	}
	if row, err = cl.Predict(ctx, req); err != nil || !row.CacheHit {
		t.Fatalf("repeat = %+v / %v, want a cache hit", row, err)
	}

	// A backend validation reject is an application-level verdict: the
	// row reports it, the transport does not fail.
	if row, err = cl.Predict(ctx, serve.Request{Workload: "reject", Device: "FakeGPU"}); err != nil || row.Error == "" {
		t.Fatalf("rejected workload = %+v / %v, want an error row with err == nil", row, err)
	}

	rep, err := cl.PredictBatch(ctx, []serve.Request{
		{Workload: "a", Device: "FakeGPU", Tenant: "acme"},
		{Workload: "b", Device: "FakeGPU", Priority: "low"},
	})
	if err != nil || rep.Requests != 2 || rep.Failed != 0 {
		t.Fatalf("batch = %+v / %v, want 2 clean rows", rep, err)
	}
	if rep.Results[0].Workload != "a" || rep.Results[1].Workload != "b" {
		t.Fatalf("batch rows out of order: %+v", rep.Results)
	}

	if names, err := cl.Scenarios(ctx); err != nil || len(names) == 0 {
		t.Fatalf("scenarios = %v / %v, want a non-empty list", names, err)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	serve.AssertInvariant(t, st)
	if st.Requests != 5 {
		t.Fatalf("requests = %d, want 5", st.Requests)
	}
	if st.Tenants["acme"].Served != 3 {
		t.Fatalf("acme ledger = %+v, want 3 served", st.Tenants["acme"])
	}
	if st.Tenants["default"].Served != 2 {
		t.Fatalf("default-tenant ledger = %+v, want 2 served (untagged rows)", st.Tenants["default"])
	}
}

// TestHTTPBadPriority: an unknown priority string is rejected at the
// boundary with 400 bad_priority — on both the single and the batch
// path, before admission counts the request.
func TestHTTPBadPriority(t *testing.T) {
	fb := serve.NewTestBackend()
	fb.Release()
	s, cl := newHTTPServer(t, serve.Config{Backend: fb, QueueDepth: 4, Workers: 1})
	ctx := context.Background()

	var apiErr *client.APIError
	if _, err := cl.Predict(ctx, serve.Request{Workload: "w", Device: "FakeGPU", Priority: "urgent"}); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusBadRequest || apiErr.Code != "bad_priority" {
		t.Fatalf("bad priority: err = %v, want 400 bad_priority", err)
	}
	if _, err := cl.PredictBatch(ctx, []serve.Request{
		{Workload: "w", Device: "FakeGPU"},
		{Workload: "w", Device: "FakeGPU", Priority: "urgent"},
	}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != "bad_priority" {
		t.Fatalf("bad batch-row priority: err = %v, want 400 bad_priority", err)
	}
	if st := s.Stats(); st.Requests != 0 {
		t.Fatalf("boundary-rejected requests were admitted: %d received", st.Requests)
	}
}

// TestHTTP429RetryAfter drives the queue to capacity behind a parked
// worker and checks the typed backpressure error: 429 queue_full with
// the configured floor as the Retry-After hint (no request has
// completed, so there is no drain-rate observation to adapt from).
func TestHTTP429RetryAfter(t *testing.T) {
	fb := serve.NewTestBackend()
	s, cl := newHTTPServer(t, serve.Config{Backend: fb, QueueDepth: 2, Workers: 1, TenantQueueCap: 2, RetryAfter: 3 * time.Second})
	ctx := context.Background()

	blockReq := serve.Request{Workload: "block", Device: "FakeGPU"}
	var wg sync.WaitGroup
	submit := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if row, err := cl.Predict(ctx, blockReq); err != nil || row.Error != "" {
				t.Errorf("admitted request failed: %v / %q", err, row.Error)
			}
		}()
	}
	submit() // parked in the worker
	<-fb.StartedCh()
	submit() // fills the queue
	submit()
	serve.WaitFor(t, func() bool { return s.Stats().Queue.Depth == 2 })

	_, err := cl.Predict(ctx, serve.Request{Workload: "x", Device: "FakeGPU"})
	var bp *client.ErrBackpressure
	if !errors.As(err, &bp) || bp.Code != "queue_full" || bp.RetryAfter != 3*time.Second {
		t.Fatalf("over capacity: err = %v, want queue_full backpressure with the 3s floor hint", err)
	}
	// The taxonomy is layered: the same error matches the generic class.
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("backpressure does not unwrap to *APIError: %v", err)
	}

	fb.Release()
	wg.Wait()
	serve.AssertInvariant(t, s.Stats())
}

// TestHTTPTenantLimited429: a tenant that exhausts its share is shed
// with 429 tenant_limited while the queue still has room — and other
// tenants keep being admitted through the same queue.
func TestHTTPTenantLimited429(t *testing.T) {
	fb := serve.NewTestBackend()
	s, cl := newHTTPServer(t, serve.Config{Backend: fb, QueueDepth: 8, Workers: 1, TenantQueueCap: 1})
	ctx := context.Background()

	var wg sync.WaitGroup
	submit := func(tenant, workload string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if row, err := cl.Predict(ctx, serve.Request{Workload: workload, Device: "FakeGPU", Tenant: tenant}); err != nil || row.Error != "" {
				t.Errorf("admitted request (%s) failed: %v / %q", tenant, err, row.Error)
			}
		}()
	}
	submit("hog", "block") // parked in the worker
	<-fb.StartedCh()
	submit("hog", "block") // fills hog's share of 1
	serve.WaitFor(t, func() bool { return s.Stats().Queue.Depth == 1 })

	_, err := cl.Predict(ctx, serve.Request{Workload: "x", Device: "FakeGPU", Tenant: "hog"})
	var bp *client.ErrBackpressure
	if !errors.As(err, &bp) || bp.Code != "tenant_limited" || bp.RetryAfter <= 0 {
		t.Fatalf("hog over share: err = %v, want tenant_limited backpressure with a hint", err)
	}
	// A different tenant is not collateral damage.
	submit("quiet", "x")
	serve.WaitFor(t, func() bool { return s.Stats().Queue.Depth == 2 })

	fb.Release()
	wg.Wait()
	st := s.Stats()
	serve.AssertInvariant(t, st)
	if st.Rejected.TenantLimited != 1 {
		t.Fatalf("tenant_limited rejects = %d, want 1", st.Rejected.TenantLimited)
	}
	if st.Tenants["hog"].Shed != 1 || st.Tenants["quiet"].Shed != 0 {
		t.Fatalf("shed ledger = hog %d / quiet %d, want 1/0", st.Tenants["hog"].Shed, st.Tenants["quiet"].Shed)
	}
}

// TestHTTPDrainingViaClient: a draining worker answers 503 with code
// "draining" — the client surfaces *ErrDraining with the Retry-After
// hint — and healthz flips to draining without erroring.
func TestHTTPDrainingViaClient(t *testing.T) {
	fb := serve.NewTestBackend()
	fb.Release()
	s, cl := newHTTPServer(t, serve.Config{Backend: fb, QueueDepth: 4, Workers: 1})
	ctx := context.Background()
	s.Drain()

	if h, err := cl.Healthz(ctx); err != nil || h.Status != "draining" {
		t.Fatalf("healthz while draining = %+v / %v, want status draining", h, err)
	}
	var dr *client.ErrDraining
	if _, err := cl.Predict(ctx, serve.Request{Workload: "w", Device: "FakeGPU"}); !errors.As(err, &dr) || dr.RetryAfter <= 0 {
		t.Fatalf("predict while draining: err = %v, want ErrDraining with a hint", err)
	}
	serve.AssertInvariant(t, s.Stats())
}
