package serve

import (
	"testing"
	"time"
)

// TestRetryAfterSecondsRoundsUp pins the header rendering rule:
// Retry-After rounds UP to whole seconds with a 1s floor. Truncation
// would emit "0" for any sub-second adaptive hint — an instruction to
// retry immediately against a server that just asked for backoff.
func TestRetryAfterSecondsRoundsUp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{time.Nanosecond, "1"},
		{50 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{time.Second + time.Millisecond, "2"},
		{2500 * time.Millisecond, "3"},
		{30 * time.Second, "30"},
	}
	for _, tc := range cases {
		if got := RetryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("RetryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
