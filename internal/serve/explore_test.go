package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dlrmperf/internal/explore"
)

// exploreGrid mirrors the checked-in demo fixture against the fake
// backend's single device: 16 points = 8 unique + 4 duplicates (comm ""
// and "nvlink" alias at width 2) + 4 rejected (comm on a single-device
// point).
func exploreGrid() explore.Grid {
	return explore.Grid{
		Scenarios: []string{"dlrm-default", "dlrm-ddp"},
		Devices:   []string{"FakeGPU"},
		GPUs:      []int{1, 2},
		Comms:     []string{"", "nvlink"},
		Batches:   []int64{512, 1024},
	}
}

// TestRunExploreAccounting: the sweep rides the admission pipeline —
// every unique unit becomes exactly one /stats-counted request — while
// scenario-level rejections stay explore-side, and a repeat sweep is
// served entirely from the backend cache.
func TestRunExploreAccounting(t *testing.T) {
	fb := newFakeBackend()
	s := New(Config{Backend: fb, QueueDepth: 4, Workers: 2})
	defer s.Drain()

	cold, err := s.RunExplore(context.Background(), exploreGrid())
	if err != nil {
		t.Fatal(err)
	}
	if cold.GridPoints != 16 || cold.Unique != 8 || cold.Duplicates != 4 || cold.Rejected != 4 {
		t.Fatalf("coverage = %d/%d/%d/%d, want 16/8/4/4",
			cold.GridPoints, cold.Unique, cold.Duplicates, cold.Rejected)
	}
	if cold.Failed != 0 || cold.Predicted != 8 {
		t.Fatalf("cold predicted/failed = %d/%d: %+v", cold.Predicted, cold.Failed, cold.FailedSamples)
	}
	st := s.Stats()
	assertInvariant(t, st)
	if st.Requests != 8 {
		t.Errorf("server requests = %d, want 8 (one per unique unit)", st.Requests)
	}

	warm, err := s.RunExplore(context.Background(), exploreGrid())
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHitRate != 1 || warm.CacheHits != 8 {
		t.Errorf("warm hit rate = %v (%d hits), want 1.0 over 8", warm.CacheHitRate, warm.CacheHits)
	}
	st = s.Stats()
	assertInvariant(t, st)
	if st.Requests != 16 {
		t.Errorf("server requests after repeat = %d, want 16", st.Requests)
	}
}

// TestRunExploreLimits pins the two refusal paths: an over-budget
// expansion (MaxGrid counts expanded points, not wire bytes) and a
// draining server.
func TestRunExploreLimits(t *testing.T) {
	fb := newFakeBackend()
	s := New(Config{Backend: fb, QueueDepth: 4, Workers: 2, MaxGrid: 8})
	var tooLarge *GridTooLargeError
	if _, err := s.RunExplore(context.Background(), exploreGrid()); !errors.As(err, &tooLarge) {
		t.Fatalf("16-point grid over MaxGrid 8: err = %v, want GridTooLargeError", err)
	} else if tooLarge.Size != 16 {
		t.Errorf("reported size = %d, want 16", tooLarge.Size)
	}
	s.Drain()
	if _, err := s.RunExplore(context.Background(), exploreGrid()); !errors.Is(err, ErrDraining) {
		t.Fatalf("explore during drain: err = %v, want ErrDraining", err)
	}
	assertInvariant(t, s.Stats())
}

// TestHTTPExplore drives POST /v1/explore end to end over httptest:
// 200 with a full report, 400 bad_grid on a structurally empty grid,
// 400 grid_too_large over the expansion budget, and /stats keeps its
// invariant with the sweep's requests counted.
func TestHTTPExplore(t *testing.T) {
	fb := newFakeBackend()
	s := New(Config{Backend: fb, QueueDepth: 4, Workers: 2})
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	gridJSON, err := json.Marshal(exploreGrid())
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(string(gridJSON))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status = %d: %s", resp.StatusCode, body)
	}
	var rep explore.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.GridPoints != 16 || rep.Unique != 8 || rep.Rejected != 4 {
		t.Errorf("report coverage = %d/%d/%d, want 16/8/4", rep.GridPoints, rep.Unique, rep.Rejected)
	}
	if len(rep.Frontier) == 0 || len(rep.Best) == 0 {
		t.Errorf("report missing frontier or best table: %+v", rep)
	}

	var httpErr HTTPError
	resp, body = post(`{"devices": ["FakeGPU"]}`)
	if json.Unmarshal(body, &httpErr); resp.StatusCode != http.StatusBadRequest || httpErr.Code != "bad_grid" {
		t.Errorf("empty grid: status %d code %q, want 400 bad_grid", resp.StatusCode, httpErr.Code)
	}
	resp, body = post(`{"scenarios": ["dlrm-default"], "devices": ["FakeGPU"], "batches": "not-a-list"}`)
	if json.Unmarshal(body, &httpErr); resp.StatusCode != http.StatusBadRequest || httpErr.Code != "bad_request" {
		t.Errorf("malformed batch axis: status %d code %q, want 400 bad_request", resp.StatusCode, httpErr.Code)
	}

	small := New(Config{Backend: fb, QueueDepth: 4, Workers: 2, MaxGrid: 4})
	defer small.Drain()
	tsSmall := httptest.NewServer(small.Handler())
	defer tsSmall.Close()
	resp2, err := http.Post(tsSmall.URL+"/v1/explore", "application/json", bytes.NewReader(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	httpErr = HTTPError{}
	if json.NewDecoder(resp2.Body).Decode(&httpErr); resp2.StatusCode != http.StatusBadRequest || httpErr.Code != "grid_too_large" {
		t.Errorf("over-budget grid: status %d code %q, want 400 grid_too_large", resp2.StatusCode, httpErr.Code)
	}
	assertInvariant(t, s.Stats())
}

// TestHTTPExploreDraining: a draining server turns explores away with
// 503 + Retry-After before any expansion work.
func TestHTTPExploreDraining(t *testing.T) {
	fb := newFakeBackend()
	s := New(Config{Backend: fb, QueueDepth: 4, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Drain()

	gridJSON, _ := json.Marshal(exploreGrid())
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("explore during drain: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
}
