package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"dlrmperf"
)

// pushJob enqueues one bare job (no result channel — these tests pop
// directly off the queue and never run a worker).
func pushJob(t *testing.T, q *fairQueue, tenant, priority string) *job {
	t.Helper()
	j := &job{req: Request{Tenant: tenant, Priority: priority}}
	j.pri, _ = priorityClass(priority)
	if err := q.push(context.Background(), j, false); err != nil {
		t.Fatalf("push(%s/%s): %v", tenant, priority, err)
	}
	return j
}

// TestFairQueueWRRWeights: with every class backlogged, each 7-dequeue
// round of the weighted round-robin serves exactly 4 high, 2 normal,
// 1 low — the static 4:2:1 schedule.
func TestFairQueueWRRWeights(t *testing.T) {
	q := newFairQueue(64, 64)
	for i := 0; i < 8; i++ {
		pushJob(t, q, "a", "high")
		pushJob(t, q, "b", "normal")
		pushJob(t, q, "c", "low")
	}
	for round := 0; round < 2; round++ {
		var counts [priClasses]int
		for i := 0; i < len(wrrPattern); i++ {
			j, ok := q.pop()
			if !ok {
				t.Fatal("queue closed unexpectedly")
			}
			counts[j.pri]++
		}
		if counts[priHigh] != 4 || counts[priNormal] != 2 || counts[priLow] != 1 {
			t.Fatalf("round %d served %d/%d/%d high/normal/low, want 4/2/1", round, counts[priHigh], counts[priNormal], counts[priLow])
		}
	}
}

// TestFairQueueEmptyClassesSkipped: the weights only bite under
// contention — a lone low-priority stream drains at full rate.
func TestFairQueueEmptyClassesSkipped(t *testing.T) {
	q := newFairQueue(16, 16)
	for i := 0; i < 5; i++ {
		pushJob(t, q, "solo", "low")
	}
	for i := 0; i < 5; i++ {
		j, ok := q.pop()
		if !ok || j.pri != priLow {
			t.Fatalf("dequeue %d = %v/%v, want the low-priority job", i, j, ok)
		}
	}
}

// TestFairQueueTenantStarvation is the queue-level starvation bound: a
// hot tenant with a 10x backlog cannot push a background tenant's jobs
// to the back — tenant round-robin serves the background jobs within
// two dequeues each of their enqueue position, regardless of backlog.
func TestFairQueueTenantStarvation(t *testing.T) {
	q := newFairQueue(64, 48)
	for i := 0; i < 20; i++ {
		pushJob(t, q, "hot", "")
	}
	bg := map[*job]bool{
		pushJob(t, q, "bg", ""): true,
		pushJob(t, q, "bg", ""): true,
	}
	for i := 0; i < 4; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue closed unexpectedly")
		}
		delete(bg, j)
	}
	if len(bg) != 0 {
		t.Fatalf("%d background jobs still queued after 4 dequeues behind a 20-deep hot backlog", len(bg))
	}
}

// TestFairQueueTenantCap: a tenant over its share is shed with
// ErrTenantLimited while the queue has room, and other tenants keep
// admitting; a globally full queue sheds with ErrQueueFull.
func TestFairQueueTenantCap(t *testing.T) {
	q := newFairQueue(4, 2)
	pushJob(t, q, "hog", "")
	pushJob(t, q, "hog", "")
	j := &job{req: Request{Tenant: "hog"}}
	if err := q.push(context.Background(), j, false); err != ErrTenantLimited {
		t.Fatalf("hog over share: err = %v, want ErrTenantLimited", err)
	}
	pushJob(t, q, "quiet", "")
	pushJob(t, q, "quiet", "")
	j = &job{req: Request{Tenant: "third"}}
	if err := q.push(context.Background(), j, false); err != ErrQueueFull {
		t.Fatalf("globally full: err = %v, want ErrQueueFull", err)
	}
	_, tenants := func() (int, map[string]TenantStats) {
		d, _, ts := q.snapshot()
		return d, ts
	}()
	if tenants["hog"].Shed != 1 || tenants["third"].Shed != 1 || tenants["quiet"].Shed != 0 {
		t.Fatalf("shed ledger = hog %d / third %d / quiet %d, want 1/1/0",
			tenants["hog"].Shed, tenants["third"].Shed, tenants["quiet"].Shed)
	}
}

// TestFairQueueTenantOverflowFolds: tenants past the tracking bound
// fold into the shared overflow bucket instead of growing the ledger
// without bound.
func TestFairQueueTenantOverflowFolds(t *testing.T) {
	q := newFairQueue(1<<20, 1<<20)
	for i := 0; i < maxTrackedTenants+10; i++ {
		pushJob(t, q, fmt.Sprintf("t-%d", i), "")
	}
	q.mu.Lock()
	n := len(q.tenants)
	over := q.tenants[overflowTenant]
	q.mu.Unlock()
	if n > maxTrackedTenants+1 {
		t.Fatalf("ledger grew to %d tenants, bound is %d (+overflow)", n, maxTrackedTenants)
	}
	if over == nil || over.requests != 10 {
		t.Fatalf("overflow bucket = %+v, want 10 folded requests", over)
	}
}

// TestAdaptiveRetryAfterHint: the backpressure hint tracks backlog ×
// smoothed service time across the worker pool, clamped between the
// configured floor and ceiling, and falls back to the floor before any
// request has completed.
func TestAdaptiveRetryAfterHint(t *testing.T) {
	q := newFairQueue(8, 8)
	if got := q.drainEstimate(1); got != 0 {
		t.Fatalf("estimate with no observation = %v, want 0", got)
	}
	q.observeService(100 * time.Millisecond)
	if got := q.drainEstimate(1); got != 0 {
		t.Fatalf("estimate with no backlog = %v, want 0", got)
	}
	for i := 0; i < 4; i++ {
		pushJob(t, q, "t", "")
	}
	if got := q.drainEstimate(1); got != 400*time.Millisecond {
		t.Fatalf("estimate(1 worker) = %v, want 400ms", got)
	}
	if got := q.drainEstimate(2); got != 200*time.Millisecond {
		t.Fatalf("estimate(2 workers) = %v, want 200ms", got)
	}

	s := &Server{cfg: Config{Workers: 1, RetryAfter: time.Second, MaxRetryAfter: 2 * time.Second}, q: q}
	// 4 × 100ms backlog is under the floor.
	if got := s.retryAfterHint(); got != time.Second {
		t.Fatalf("hint under floor = %v, want 1s", got)
	}
	// A slow service observation pushes the estimate past the ceiling.
	q.observeService(10 * time.Second)
	if got := s.retryAfterHint(); got != 2*time.Second {
		t.Fatalf("hint over ceiling = %v, want the 2s cap", got)
	}
}

// slowBackend makes every request cost a fixed service time, so queues
// build under flood and queue waits are measurable.
type slowBackend struct {
	*fakeBackend
	delay time.Duration
}

func (b *slowBackend) PredictContext(ctx context.Context, req dlrmperf.PredictRequest) dlrmperf.PredictResult {
	time.Sleep(b.delay)
	return b.fakeBackend.PredictContext(ctx, req)
}

// TestTenantFairnessUnderFlood is the server-level starvation test: a
// hot tenant flooding at 10x the background tenant's volume cannot
// starve it — with tenant round-robin the background tenant's WORST
// queue wait stays at or below the hot tenant's median, instead of
// queuing behind the entire hot backlog.
func TestTenantFairnessUnderFlood(t *testing.T) {
	fb := newFakeBackend()
	close(fb.release)
	s := New(Config{Backend: &slowBackend{fakeBackend: fb, delay: 2 * time.Millisecond}, QueueDepth: 64, Workers: 1, TenantQueueCap: 48})
	defer s.Drain()

	const hotN, bgN = 40, 4
	hotWaits := make(chan int64, hotN)
	bgWaits := make(chan int64, bgN)
	var wg sync.WaitGroup
	for i := 0; i < hotN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Submit(context.Background(), Request{Workload: fmt.Sprintf("h%d", i), Device: "FakeGPU", Tenant: "hot"})
			if err == nil && res.Error == "" {
				hotWaits <- res.QueueWaitUs
			}
		}(i)
	}
	// Let the hot backlog build before the background tenant shows up —
	// the worst case for it.
	waitFor(t, func() bool { return s.Stats().Queue.Depth >= 16 })
	for i := 0; i < bgN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Submit(context.Background(), Request{Workload: fmt.Sprintf("b%d", i), Device: "FakeGPU", Tenant: "bg"})
			if err == nil && res.Error == "" {
				bgWaits <- res.QueueWaitUs
			}
		}(i)
	}
	wg.Wait()
	close(hotWaits)
	close(bgWaits)

	var hot, bg []int64
	for w := range hotWaits {
		hot = append(hot, w)
	}
	for w := range bgWaits {
		bg = append(bg, w)
	}
	if len(hot) != hotN || len(bg) != bgN {
		t.Fatalf("served %d hot / %d bg, want %d/%d", len(hot), len(bg), hotN, bgN)
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	sort.Slice(bg, func(i, j int) bool { return bg[i] < bg[j] })
	hotP50, bgMax := hot[len(hot)/2], bg[len(bg)-1]
	if bgMax > hotP50 {
		t.Fatalf("background worst wait %dus exceeds hot median %dus: hot tenant starved the background tenant", bgMax, hotP50)
	}
	st := s.Stats()
	assertInvariant(t, st)
	if st.Tenants["hot"].Served != hotN || st.Tenants["bg"].Served != bgN {
		t.Fatalf("tenant ledger served = hot %d / bg %d, want %d/%d", st.Tenants["hot"].Served, st.Tenants["bg"].Served, hotN, bgN)
	}
}

// TestInvariantUnderTenantLoad mixes tenants, priorities, blocking and
// non-blocking admission, and validation rejects, then asserts both the
// global accounting identity and the per-tenant ledger identity
// (requests == served + shed + canceled, nothing left queued) at
// quiescence. Run under -race this is the fairness data-race check.
func TestInvariantUnderTenantLoad(t *testing.T) {
	fb := newFakeBackend()
	close(fb.release)
	s := New(Config{Backend: fb, QueueDepth: 8, Workers: 2, TenantQueueCap: 4})
	defer s.Drain()

	tenants := []string{"", "acme", "globex", "initech"}
	priorities := []string{"", "high", "low", "normal"}
	const clients, perClient = 12, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := Request{Workload: "dup", Device: "FakeGPU", Tenant: tenants[(c+i)%len(tenants)], Priority: priorities[i%len(priorities)]}
				if i%5 == 0 {
					req.Workload = "reject"
				}
				if c%2 == 0 {
					s.Submit(context.Background(), req)
				} else {
					s.TrySubmit(context.Background(), req)
				}
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	assertInvariant(t, st)
	if st.Requests != clients*perClient {
		t.Fatalf("requests = %d, want %d", st.Requests, clients*perClient)
	}
	var ledger uint64
	for name, ts := range st.Tenants {
		if ts.Queued != 0 {
			t.Errorf("tenant %s still has %d queued at quiescence", name, ts.Queued)
		}
		if got := ts.Served + ts.Shed + ts.Canceled; got != ts.Requests {
			t.Errorf("tenant %s ledger broken: served %d + shed %d + canceled %d = %d, requests %d",
				name, ts.Served, ts.Shed, ts.Canceled, got, ts.Requests)
		}
		ledger += ts.Requests
	}
	if ledger != st.Requests {
		t.Fatalf("tenant ledgers sum to %d, server received %d", ledger, st.Requests)
	}
	if _, ok := st.Tenants[defaultTenant]; !ok {
		t.Fatal("untagged traffic missing from the ledger under the default tenant")
	}
}
