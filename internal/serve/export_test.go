package serve

import "testing"

// Test-only exports for the external serve_test package (which drives
// the HTTP surface through internal/client — an import the internal
// test package cannot make, since client imports serve).

// TestBackend is the controllable fake backend shared by both test
// packages.
type TestBackend = fakeBackend

// NewTestBackend returns a fresh controllable backend.
func NewTestBackend() *TestBackend { return newFakeBackend() }

// Release unparks every "block" request (idempotent via test
// discipline: call once).
func (f *fakeBackend) Release() { close(f.release) }

// StartedCh ticks once per request entering the blocked section.
func (f *fakeBackend) StartedCh() <-chan struct{} { return f.started }

// AssertInvariant re-exports the accounting-identity assertion.
func AssertInvariant(t *testing.T, st Stats) {
	t.Helper()
	assertInvariant(t, st)
}

// WaitFor re-exports the polling helper.
func WaitFor(t *testing.T, cond func() bool) {
	t.Helper()
	waitFor(t, cond)
}
