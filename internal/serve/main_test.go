package serve

import (
	"testing"

	"dlrmperf/internal/leakcheck"
)

// TestMain guards the package against leaked goroutines: a drain path
// that strands a queue worker fails the suite, not production.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
