package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dlrmperf"
)

// Request is the wire format of one prediction request — the same
// schema the dlrmperf-serve batch fixture uses, for the file-driven
// one-shot mode, POST /v1/predict (one object), and
// POST /v1/predict/batch (an array).
type Request struct {
	Workload string `json:"workload,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Batch    int64  `json:"batch,omitempty"`
	Device   string `json:"device"`
	GPUs     int    `json:"gpus,omitempty"`
	Comm     string `json:"comm,omitempty"`
	Shared   bool   `json:"shared,omitempty"`
	// TimeoutMs optionally tightens this request's deadline below the
	// server's default; the effective deadline is the smaller of the
	// two. Expired requests fail with the context error; the
	// computation they started keeps running and lands in the result
	// cache.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Tenant tags the request for per-tenant fair admission and the
	// per-tenant /stats breakdown. It is a serve-layer field only —
	// never part of the scenario identity, so two tenants asking for
	// the same scenario share one cached prediction. Empty means the
	// "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority selects the admission class: "high", "normal" (or
	// empty), or "low". Higher classes get a larger weighted share of
	// the dequeue order; no class is ever fully starved. Like Tenant it
	// never enters the scenario identity.
	Priority string `json:"priority,omitempty"`
}

// ToPredict maps the wire request onto the facade request.
func (r Request) ToPredict() dlrmperf.PredictRequest {
	return dlrmperf.PredictRequest{
		Workload: r.Workload, Scenario: r.Scenario, Batch: r.Batch,
		Device: r.Device, GPUs: r.GPUs, Comm: r.Comm, SharedOverheads: r.Shared,
	}
}

// Result is one row of a report (and the POST /v1/predict response).
type Result struct {
	Request
	E2EUs             float64 `json:"e2e_us,omitempty"`
	ActiveUs          float64 `json:"active_us,omitempty"`
	CPUUs             float64 `json:"cpu_us,omitempty"`
	GPUsUsed          int     `json:"gpus_used,omitempty"`
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
	AllReduceUs       float64 `json:"allreduce_us,omitempty"`
	AllToAllUs        float64 `json:"alltoall_us,omitempty"`
	ShardImbalance    float64 `json:"shard_imbalance,omitempty"`
	CacheHit          bool    `json:"cache_hit,omitempty"`
	// QueueWaitUs is the time this request spent in the admission
	// queue before a worker picked it up — the fairness signal the
	// loadgen SLO report separates from service time.
	QueueWaitUs int64  `json:"queue_wait_us,omitempty"`
	Error       string `json:"error,omitempty"`
}

// resultFrom flattens a facade result into the wire row.
func resultFrom(req Request, res dlrmperf.PredictResult) Result {
	row := Result{Request: req}
	if res.Err != nil {
		row.Error = res.Err.Error()
		return row
	}
	row.E2EUs = res.Prediction.E2EUs
	row.ActiveUs = res.Prediction.ActiveUs
	row.CPUUs = res.Prediction.CPUUs
	row.GPUsUsed = res.GPUs
	row.ScalingEfficiency = res.ScalingEfficiency
	row.AllReduceUs = res.AllReduceUs
	row.AllToAllUs = res.AllToAllUs
	row.ShardImbalance = res.ShardImbalance
	row.CacheHit = res.CacheHit
	return row
}

// ReportError is the structured failure entry emitted when a whole
// batch fails, or when post-serve work (asset re-save) fails; it pairs
// with a non-zero process exit in the one-shot driver.
type ReportError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// CacheStats mirrors the engine's prediction result cache counters.
// Hits + Misses equals the requests the engine served; Rejected counts
// requests the engine (or the facade's request resolution) refused at
// validation — it duplicates RejectedStats.Validation for report
// compatibility.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Rejected uint64 `json:"rejected"`
}

// RejectedStats breaks out the requests that never reached a
// computation, by the wall they hit: scenario/device validation
// (inside the engine, before the compute path), a full admission queue
// (backpressure 429s), a tenant that exhausted its fair queue share
// while the queue itself had room (also 429, but the hot tenant's own
// doing), admissions refused because the server was draining, and
// blocking admissions abandoned by the caller (its context expired
// while waiting for queue space — the client gave up, which can happen
// even with space free, so it is not a queue-full).
type RejectedStats struct {
	Validation    uint64 `json:"validation"`
	QueueFull     uint64 `json:"queue_full"`
	TenantLimited uint64 `json:"tenant_limited"`
	Draining      uint64 `json:"draining"`
	Canceled      uint64 `json:"canceled_admissions"`
}

// Total sums every never-computed bucket.
func (r RejectedStats) Total() uint64 {
	return r.Validation + r.QueueFull + r.TenantLimited + r.Draining + r.Canceled
}

// QueueStats is the admission queue's observable state.
type QueueStats struct {
	// Depth is the current queued (admitted, not yet executing) count;
	// PeakDepth its high-water mark; Capacity the bound that triggers
	// backpressure.
	Depth     int   `json:"depth"`
	PeakDepth int64 `json:"peak_depth"`
	Capacity  int   `json:"capacity"`
	// Workers is the concurrent execution width; InFlight/PeakInFlight
	// count requests inside the engine's predict path right now and at
	// the high-water mark.
	Workers      int   `json:"workers"`
	InFlight     int64 `json:"in_flight"`
	PeakInFlight int64 `json:"peak_in_flight"`
	// AvgServiceUs is the exponential moving average of per-request
	// service time the adaptive Retry-After hint is derived from;
	// RetryAfterHintSecs is the hint a 429/503 would carry right now
	// (estimated backlog drain time, clamped to the configured bounds).
	AvgServiceUs       float64 `json:"avg_service_us,omitempty"`
	RetryAfterHintSecs int     `json:"retry_after_hint_secs,omitempty"`
}

// TenantStats is one tenant's row in the per-tenant /stats breakdown.
// Requests counts admissions that reached the fair queue (the draining
// gate sits before tenant resolution); Served the subset handed to a
// worker; Shed the 429s (queue_full and tenant_limited); Canceled the
// blocking admissions whose caller expired while waiting. Wait times
// measure the queue only — service time is excluded.
type TenantStats struct {
	Requests    uint64  `json:"requests"`
	Served      uint64  `json:"served"`
	Shed        uint64  `json:"shed"`
	Canceled    uint64  `json:"canceled"`
	Queued      int     `json:"queued"`
	TotalWaitUs int64   `json:"total_wait_us"`
	AvgWaitUs   float64 `json:"avg_wait_us"`
	MaxWaitUs   int64   `json:"max_wait_us"`
}

// LatencyStats aggregates per-request wall-clock latency inside the
// engine (queue wait excluded).
type LatencyStats struct {
	AvgUs   float64 `json:"avg_us"`
	MaxUs   int64   `json:"max_us"`
	TotalUs int64   `json:"total_us"`
}

// Stats is the GET /stats document: admission, stream, cache, and
// asset-store counters. The accounting invariant — every admitted
// request lands in exactly one bucket — is
//
//	Cache.Hits + Cache.Misses + Rejected.Total() <= Requests
//
// on EVERY snapshot, with equality at quiescence; canceled requests
// are a subset of the misses. The slack is exactly the requests in
// flight at snapshot time (admitted, not yet bucketed). The one-sided
// bound is guaranteed by Stats' read order — every bucket counter is
// loaded BEFORE the request total, so a bucket can never be observed
// ahead of the total that contains it (see Server.Stats).
type Stats struct {
	Requests uint64              `json:"requests"`
	Served   uint64              `json:"served"`
	Canceled uint64              `json:"canceled"`
	Rejected RejectedStats       `json:"rejected"`
	Queue    QueueStats          `json:"queue"`
	Latency  LatencyStats        `json:"latency"`
	Cache    CacheStats          `json:"cache"`
	Assets   dlrmperf.AssetStats `json:"assets"`
	// Calibrations maps each device that calibrated in this process to
	// its executed calibration count (normally 1; 0-count devices are
	// omitted). The cluster coordinator merges these per-worker maps to
	// prove device-affine routing.
	Calibrations map[string]int `json:"calibrations,omitempty"`
	// Tenants is the per-tenant admission breakdown (absent until the
	// first request reaches the fair queue). The rows are informational
	// detail under the top-level invariant, not a second accounting
	// identity: draining rejects are not tenant-attributed.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
	// AssetInstalls counts POST /v1/assets/install payloads accepted —
	// cluster warm hand-offs landed on this worker. Installs are control
	// plane, not requests: they join no side of the accounting invariant.
	AssetInstalls uint64 `json:"asset_installs,omitempty"`
	Draining      bool   `json:"draining"`
}

// Accounted sums the terminal buckets of a snapshot: cache hits,
// misses, and every rejection. The snapshot invariant is
// Accounted() <= Requests, with equality at quiescence.
func (s Stats) Accounted() uint64 {
	return s.Cache.Hits + s.Cache.Misses + s.Rejected.Total()
}

// Report is the full output document of a batch run (the one-shot
// report and the POST /v1/predict/batch response). Results, Requests,
// Failed, and ElapsedMs describe this batch; the Cache, Rejected,
// Stream, Latency, and Assets blocks are engine-lifetime snapshots at
// report time — the Stats invariant holds over them against the
// server's lifetime request total, not this batch's Requests. In the
// one-shot driver the engine serves exactly one batch, so the two
// coincide (which is what its tests assert).
type Report struct {
	Results      []Result            `json:"results"`
	Requests     int                 `json:"requests"`
	Failed       int                 `json:"failed"`
	ElapsedMs    float64             `json:"elapsed_ms"`
	Calibrations map[string]int      `json:"calibrations"`
	Cache        CacheStats          `json:"cache"`
	Rejected     RejectedStats       `json:"rejected_requests"`
	Stream       QueueStats          `json:"stream"`
	Latency      LatencyStats        `json:"latency"`
	Assets       dlrmperf.AssetStats `json:"assets"`
	Error        *ReportError        `json:"error,omitempty"`
}

// HTTPError is the JSON error envelope of non-200 responses — shared
// by the worker surface here and the cluster coordinator, so clients
// parse one shape whichever layer rejected them.
type HTTPError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// WriteJSON renders v as an indented JSON response with the given
// status. It is the single response writer of the serving wire surface
// (worker and coordinator alike).
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// RetryAfterSeconds renders a backpressure hint as whole seconds,
// rounding UP with a 1s floor — the Retry-After header value on
// 429/503 responses. Rounding up matters: truncation would render a
// sub-second adaptive hint as "0" (retry immediately) and shave up to
// a second off every fractional one, undercutting the backoff the
// hint exists to request.
func RetryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// Report assembles the batch report from finished rows plus the
// server's live counters.
func (s *Server) Report(results []Result, elapsed time.Duration) *Report {
	rep := &Report{
		Results:      results,
		Requests:     len(results),
		ElapsedMs:    float64(elapsed.Microseconds()) / 1000,
		Calibrations: map[string]int{},
	}
	for _, row := range results {
		if row.Error != "" {
			rep.Failed++
		}
	}
	b := s.cfg.Backend
	for _, d := range b.Devices() {
		if n := b.CalibrationRuns(d); n > 0 {
			rep.Calibrations[d] = n
		}
	}
	st := s.Stats()
	rep.Cache, rep.Rejected = st.Cache, st.Rejected
	rep.Stream, rep.Latency = st.Queue, st.Latency
	rep.Assets = st.Assets
	if rep.Failed == rep.Requests && rep.Requests > 0 {
		rep.Error = &ReportError{
			Code:    "all_requests_failed",
			Message: fmt.Sprintf("all %d requests failed; first error: %s", rep.Requests, results[0].Error),
		}
	}
	return rep
}
