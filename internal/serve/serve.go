// Package serve is the async HTTP serving layer over the prediction
// engine: a bounded admission queue with backpressure, a worker pool
// draining it into the engine's concurrent predict path, per-request
// deadlines threaded down as context cancellation, and a graceful
// drain for clean shutdown. It is the layer that turns the one-shot
// batch driver into a long-lived service: identical in-flight
// scenarios still collapse through the engine's singleflight and
// result cache, so an open-ended request stream pays for each distinct
// scenario once.
//
// Admission is tenant-fair: requests carry an optional tenant tag and
// priority class ("high"/"normal"/"low"), the queue bounds each
// tenant's share of its capacity, and dequeue order is weighted
// round-robin across classes and round-robin across tenants within a
// class — one hot client cannot starve the queue (see fair.go). The
// Retry-After hint on 429/503 adapts to the observed drain rate.
//
// Endpoints (see Handler):
//
//	POST /v1/predict        one request  -> one result row (429 when the queue is full)
//	POST /v1/predict/batch  request list -> full report (admission blocks instead of 429ing)
//	POST /v1/explore        grid spec    -> design-space sweep report (frontier, coverage, throughput)
//	GET  /v1/scenarios      registered scenario names
//	GET  /healthz           liveness (503 while draining)
//	GET  /stats             admission/stream/cache/asset counters
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dlrmperf"
)

// Backend is the engine surface the server drives — implemented by
// *dlrmperf.Engine, narrowed to an interface so stream tests can
// substitute a controllable fake.
type Backend interface {
	PredictContext(ctx context.Context, req dlrmperf.PredictRequest) dlrmperf.PredictResult
	CacheStats() (hits, misses uint64)
	RejectedRequests() uint64
	AssetStats() dlrmperf.AssetStats
	StreamStats() dlrmperf.StreamStats
	Devices() []string
	CalibrationRuns(device string) int
}

// AssetLoader is the optional backend surface behind
// POST /v1/assets/install: installing a serialized calibration asset
// payload (Engine.SaveAssets bytes) so the device it covers serves
// warm without recalibrating — the cluster's hand-off path when a
// device's rendezvous home dies. *dlrmperf.Engine implements it; a
// backend that does not gets a 501 from the endpoint.
type AssetLoader interface {
	LoadAssets(data []byte) error
}

// Config parameterizes a Server.
type Config struct {
	Backend Backend
	// QueueDepth bounds the admission queue; a full queue rejects
	// non-blocking admissions with ErrQueueFull (HTTP 429). Default 64.
	QueueDepth int
	// Workers is the number of requests executed concurrently (the
	// drain width of the queue). Default runtime.GOMAXPROCS.
	Workers int
	// RequestTimeout is the default per-request deadline (0 = none);
	// a request's TimeoutMs can only tighten it. The clock starts at
	// admission, so time spent queued counts against the deadline.
	RequestTimeout time.Duration
	// TenantQueueCap bounds one tenant's share of the admission queue.
	// Default half of QueueDepth (minimum 1), so a single hot tenant
	// always leaves room for others to be admitted. Values above
	// QueueDepth are clamped to it.
	TenantQueueCap int
	// RetryAfter is the FLOOR of the backpressure hint returned with
	// 429/503 responses; the hint itself adapts upward to the
	// estimated backlog drain time (queued requests x smoothed service
	// time / workers). Default 1s.
	RetryAfter time.Duration
	// MaxRetryAfter caps the adaptive hint. Default 30s.
	MaxRetryAfter time.Duration
	// MaxBodyBytes bounds HTTP request bodies (default 16 MiB) so a
	// single oversized POST cannot balloon memory before admission
	// control even runs.
	MaxBodyBytes int64
	// MaxBatch bounds the rows accepted by one POST /v1/predict/batch
	// (default 4096): the batch path admits by blocking, one goroutine
	// per row, so the row count must be bounded for backpressure to
	// bound anything.
	MaxBatch int
	// MaxGrid bounds the expanded cross-product size of one
	// POST /v1/explore (default 262144 grid points). Unlike MaxBatch
	// this caps the *expanded* size: a few-line grid spec can name
	// millions of points, so the wire size bounds nothing.
	MaxGrid int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TenantQueueCap <= 0 {
		c.TenantQueueCap = c.QueueDepth / 2
		if c.TenantQueueCap < 1 {
			c.TenantQueueCap = 1
		}
	}
	if c.TenantQueueCap > c.QueueDepth {
		c.TenantQueueCap = c.QueueDepth
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	if c.MaxRetryAfter < c.RetryAfter {
		c.MaxRetryAfter = c.RetryAfter
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxGrid <= 0 {
		c.MaxGrid = 1 << 18
	}
	return c
}

// ErrQueueFull rejects a non-blocking admission when the queue is at
// capacity — the backpressure signal behind HTTP 429.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrTenantLimited rejects a non-blocking admission when the request's
// tenant has exhausted its fair share of the queue while the queue
// itself still has room — also HTTP 429, but attributable to the hot
// tenant rather than global load.
var ErrTenantLimited = errors.New("serve: tenant queue share exhausted")

// ErrDraining rejects admissions while the server drains — the signal
// behind HTTP 503 during shutdown.
var ErrDraining = errors.New("serve: server draining")

// job is one admitted request traveling the queue. Jobs are pooled:
// admit owns a job until it has either received the result (enqueued
// path) or failed before the queue send (never seen by any worker), so
// returning it to the pool at those points can never race a worker.
// The done channel is buffered and drained before reuse.
type job struct {
	ctx  context.Context
	req  Request
	done chan Result

	// Fair-queue state: the canonical tenant (stamped by push), the
	// priority class, when the job entered the queue, and the queue
	// wait the dequeue measured (surfaced as Result.QueueWaitUs).
	tenant     string
	pri        uint8
	enqueuedAt time.Time
	waitNs     int64
}

var jobPool = sync.Pool{
	New: func() any { return &job{done: make(chan Result, 1)} },
}

// putJob clears a job's per-request state and returns it to the pool.
func putJob(j *job) {
	j.ctx = nil
	j.req = Request{}
	j.tenant = ""
	j.pri = 0
	j.enqueuedAt = time.Time{}
	j.waitNs = 0
	jobPool.Put(j)
}

// Server owns the admission queue and worker pool over one Backend.
type Server struct {
	cfg Config
	q   *fairQueue

	workers sync.WaitGroup

	// admitMu guards draining against jobs.Add, so Drain cannot start
	// waiting while an admission is between its draining check and its
	// queue send.
	admitMu  sync.Mutex
	draining bool
	jobs     sync.WaitGroup
	closed   sync.Once

	received             atomic.Uint64
	queueFullRejects     atomic.Uint64
	tenantLimitedRejects atomic.Uint64
	drainingRejects      atomic.Uint64
	canceledAdmits       atomic.Uint64
	assetInstalls        atomic.Uint64

	servedMu   sync.Mutex
	servedDevs map[string]bool
}

// New starts a server's worker pool over the backend. Callers must
// Drain it when done.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		q:          newFairQueue(cfg.QueueDepth, cfg.TenantQueueCap),
		servedDevs: map[string]bool{},
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		start := time.Now()
		res := s.serveOne(j)
		s.q.observeService(time.Since(start))
		j.done <- res
	}
}

// serveOne executes one admitted request against the backend. The
// job's context already carries the effective deadline (applied at
// admission), so a request that spent its whole budget queued fails
// fast inside the engine instead of computing past its deadline.
func (s *Server) serveOne(j *job) Result {
	res := resultFrom(j.req, s.cfg.Backend.PredictContext(j.ctx, j.req.ToPredict()))
	res.QueueWaitUs = j.waitNs / 1e3
	if res.Error == "" {
		s.servedMu.Lock()
		s.servedDevs[j.req.Device] = true
		s.servedMu.Unlock()
	}
	return res
}

// requestContext applies the request's effective deadline — the
// smaller of the server default and the request's own timeout_ms —
// starting now (admission time), so queue wait counts against it.
func (s *Server) requestContext(ctx context.Context, req Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		if rt := time.Duration(req.TimeoutMs) * time.Millisecond; timeout <= 0 || rt < timeout {
			timeout = rt
		}
	}
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

// admit pushes one request through the fair queue and waits for its
// result. With wait=false a violated bound fails fast with
// ErrQueueFull (or ErrTenantLimited when only the tenant's share is
// exhausted); with wait=true admission blocks until space frees
// (backpressure by blocking — the batch path), failing with the
// context error if the caller expires first (counted as a canceled
// admission, distinct from queue-full: the client gave up, which can
// happen even with queue space free).
func (s *Server) admit(ctx context.Context, req Request, wait bool) (Result, error) {
	s.received.Add(1)
	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		s.drainingRejects.Add(1)
		return Result{}, ErrDraining
	}
	s.jobs.Add(1)
	s.admitMu.Unlock()

	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx API fallback; requestContext layers the queue timeout on top either way
	}
	ctx, cancel := s.requestContext(ctx, req)
	defer cancel()
	j := jobPool.Get().(*job)
	j.ctx, j.req = ctx, req
	j.pri, _ = priorityClass(req.Priority) // unknown strings already 400ed at the HTTP boundary; fall back to normal here
	if err := s.q.push(ctx, j, wait); err != nil {
		putJob(j) // never enqueued: no worker can hold it
		s.jobs.Done()
		switch {
		case errors.Is(err, ErrQueueFull):
			s.queueFullRejects.Add(1)
		case errors.Is(err, ErrTenantLimited):
			s.tenantLimitedRejects.Add(1)
		default: // ctx expired while blocked on admission
			s.canceledAdmits.Add(1)
		}
		return Result{}, err
	}
	// The worker always delivers exactly one result (done is buffered,
	// and workers drain every queued job before Drain stops them), and
	// the job's context carries the deadline from admission, so this
	// wait is bounded by the request's own deadline even while queued.
	// After the receive the worker is done with the job (it sends as its
	// last touch), so it can be recycled.
	res := <-j.done
	putJob(j)
	s.jobs.Done()
	return res, nil
}

// TrySubmit admits one request without blocking: a full queue returns
// ErrQueueFull immediately. This is the POST /v1/predict path.
func (s *Server) TrySubmit(ctx context.Context, req Request) (Result, error) {
	return s.admit(ctx, req, false)
}

// Submit admits one request, blocking while the queue is full. This is
// the batch and one-shot path: a file of requests applies backpressure
// by waiting instead of shedding load.
func (s *Server) Submit(ctx context.Context, req Request) (Result, error) {
	return s.admit(ctx, req, true)
}

// RunBatch drives a request list through the admission pipeline and
// returns one row per request, in request order. Admission failures
// (draining, caller expiry) surface in the failing row.
func (s *Server) RunBatch(ctx context.Context, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Submit(ctx, reqs[i])
			if err != nil {
				res = Result{Request: reqs[i], Error: err.Error()}
			}
			out[i] = res
		}(i)
	}
	wg.Wait()
	return out
}

// Run serves a whole request list and assembles its report — the
// shared spine of the one-shot driver and POST /v1/predict/batch.
func (s *Server) Run(ctx context.Context, reqs []Request) *Report {
	start := time.Now()
	results := s.RunBatch(ctx, reqs)
	return s.Report(results, time.Since(start))
}

// Drain gracefully stops the server: new admissions are rejected with
// ErrDraining, every admitted request (queued or executing) finishes
// and is delivered, then the workers exit. Drain is idempotent and
// safe to call concurrently.
func (s *Server) Drain() {
	s.admitMu.Lock()
	s.draining = true
	s.admitMu.Unlock()
	s.jobs.Wait()
	s.closed.Do(func() { s.q.close() })
	s.workers.Wait()
}

// Draining reports whether the server has started draining.
func (s *Server) Draining() bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	return s.draining
}

// ServedDevices lists the devices that served at least one successful
// request — the set worth re-saving assets for (warm-started devices
// included, calibration counts are not the criterion).
func (s *Server) ServedDevices() []string {
	s.servedMu.Lock()
	defer s.servedMu.Unlock()
	out := make([]string, 0, len(s.servedDevs))
	for d := range s.servedDevs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Stats assembles the live counters of the admission queue, the
// engine's stream/cache counters, and the asset store.
//
// The snapshot is built from independent atomic loads, so its
// invariant (Accounted() <= Requests on every snapshot, equality at
// quiescence) depends on read ORDER: every request increments the
// received total at admission, strictly before it can land in any
// terminal bucket (hit, miss, or a rejection). Loading all bucket
// counters first and the request total LAST therefore guarantees no
// bucket is ever observed ahead of the total that contains it —
// whereas the opposite order could observe a request's bucket without
// its admission and report hits+misses+rejected > requests under
// load. TestStatsSnapshotInvariantUnderLoad hammers exactly this.
func (s *Server) Stats() Stats {
	b := s.cfg.Backend
	// Terminal buckets first (monotonic counters, sinks)...
	validation := b.RejectedRequests()
	hits, misses := b.CacheStats()
	queueFull := s.queueFullRejects.Load()
	tenantLimited := s.tenantLimitedRejects.Load()
	draining := s.drainingRejects.Load()
	canceledAdmits := s.canceledAdmits.Load()
	ss := b.StreamStats()
	depth, peakDepth, tenants := s.q.snapshot()
	// ...the request total last (source).
	requests := s.received.Load()

	// Allocated only when a device actually calibrated: the snapshot is
	// polled, and a nil map marshals identically to an empty one under
	// omitempty.
	var cals map[string]int
	for _, d := range b.Devices() {
		if n := b.CalibrationRuns(d); n > 0 {
			if cals == nil {
				cals = make(map[string]int, 4)
			}
			cals[d] = n
		}
	}
	return Stats{
		Requests: requests,
		Served:   ss.Served,
		Canceled: ss.Canceled,
		Rejected: RejectedStats{
			Validation:    validation,
			QueueFull:     queueFull,
			TenantLimited: tenantLimited,
			Draining:      draining,
			Canceled:      canceledAdmits,
		},
		Queue: QueueStats{
			Depth:              depth,
			PeakDepth:          peakDepth,
			Capacity:           s.cfg.QueueDepth,
			Workers:            s.cfg.Workers,
			InFlight:           ss.InFlight,
			PeakInFlight:       ss.PeakInFlight,
			AvgServiceUs:       s.q.avgServiceUs(),
			RetryAfterHintSecs: int(s.retryAfterHint() / time.Second),
		},
		Latency: LatencyStats{
			AvgUs:   ss.AvgUs(),
			MaxUs:   ss.MaxUs,
			TotalUs: ss.TotalUs,
		},
		Cache: CacheStats{
			Hits:     hits,
			Misses:   misses,
			Rejected: validation,
		},
		Assets:        b.AssetStats(),
		Calibrations:  cals,
		Tenants:       tenants,
		AssetInstalls: s.assetInstalls.Load(),
		Draining:      s.Draining(),
	}
}

// Handler returns the HTTP surface of the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/predict/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/explore", s.handleExplore)
	mux.HandleFunc("POST /v1/assets/install", s.handleInstallAssets)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// retryAfterHint is the adaptive backpressure hint: the estimated
// backlog drain time, clamped between the configured floor
// (cfg.RetryAfter) and ceiling (cfg.MaxRetryAfter). With no completed
// request yet (no drain-rate observation) it falls back to the floor.
func (s *Server) retryAfterHint() time.Duration {
	d := s.q.drainEstimate(s.cfg.Workers)
	if d < s.cfg.RetryAfter {
		d = s.cfg.RetryAfter
	}
	if d > s.cfg.MaxRetryAfter {
		d = s.cfg.MaxRetryAfter
	}
	return d
}

// retryAfterSeconds renders the adaptive backpressure hint, at least 1s.
func (s *Server) retryAfterSeconds() string {
	return RetryAfterSeconds(s.retryAfterHint())
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		WriteJSON(w, http.StatusBadRequest, HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	if _, ok := priorityClass(req.Priority); !ok {
		WriteJSON(w, http.StatusBadRequest, HTTPError{Code: "bad_priority", Message: "priority must be one of high, normal, low"})
		return
	}
	res, err := s.TrySubmit(r.Context(), req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		WriteJSON(w, http.StatusTooManyRequests, HTTPError{Code: "queue_full", Message: err.Error()})
	case errors.Is(err, ErrTenantLimited):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		WriteJSON(w, http.StatusTooManyRequests, HTTPError{Code: "tenant_limited", Message: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		WriteJSON(w, http.StatusServiceUnavailable, HTTPError{Code: "draining", Message: err.Error()})
	case err != nil:
		// Unreachable today — non-blocking admission fails only with the
		// two sentinels above — kept as a defensive catch-all so a future
		// admit error cannot masquerade as a 200.
		WriteJSON(w, http.StatusInternalServerError, HTTPError{Code: "internal", Message: err.Error()})
	default:
		WriteJSON(w, http.StatusOK, res)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&reqs); err != nil {
		WriteJSON(w, http.StatusBadRequest, HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	if len(reqs) == 0 {
		WriteJSON(w, http.StatusBadRequest, HTTPError{Code: "bad_request", Message: "empty request list"})
		return
	}
	if len(reqs) > s.cfg.MaxBatch {
		WriteJSON(w, http.StatusBadRequest, HTTPError{
			Code:    "batch_too_large",
			Message: fmt.Sprintf("batch of %d exceeds the %d-row limit; split it", len(reqs), s.cfg.MaxBatch),
		})
		return
	}
	for i := range reqs {
		if _, ok := priorityClass(reqs[i].Priority); !ok {
			WriteJSON(w, http.StatusBadRequest, HTTPError{
				Code:    "bad_priority",
				Message: fmt.Sprintf("row %d: priority must be one of high, normal, low", i),
			})
			return
		}
	}
	WriteJSON(w, http.StatusOK, s.Run(r.Context(), reqs))
}

// handleInstallAssets accepts a SaveAssets payload and installs it —
// the cluster warm hand-off target. Installs bypass the admission
// queue (control plane, not a prediction) but still respect the drain
// gate: a draining worker is leaving the routing set and must not
// accept new device ownership.
func (s *Server) handleInstallAssets(w http.ResponseWriter, r *http.Request) {
	al, ok := s.cfg.Backend.(AssetLoader)
	if !ok {
		WriteJSON(w, http.StatusNotImplemented, HTTPError{Code: "unsupported", Message: "backend cannot install assets"})
		return
	}
	if s.Draining() {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		WriteJSON(w, http.StatusServiceUnavailable, HTTPError{Code: "draining", Message: ErrDraining.Error()})
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	if err := al.LoadAssets(data); err != nil {
		WriteJSON(w, http.StatusBadRequest, HTTPError{Code: "bad_assets", Message: err.Error()})
		return
	}
	s.assetInstalls.Add(1)
	WriteJSON(w, http.StatusOK, map[string]string{"status": "installed"})
}

func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	WriteJSON(w, http.StatusOK, dlrmperf.Scenarios())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	WriteJSON(w, http.StatusOK, s.Stats())
}
