package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dlrmperf/internal/explore"
	"dlrmperf/internal/xsync"
)

// GridTooLargeError rejects a grid whose expanded cross-product
// exceeds Config.MaxGrid — the HTTP 400 grid_too_large surface.
type GridTooLargeError struct{ Size, Max int }

func (e *GridTooLargeError) Error() string {
	return fmt.Sprintf("serve: grid expands to %d points, above the %d-point limit; split the axes", e.Size, e.Max)
}

// WireRequest maps one explore grid point onto the serving wire shape,
// carrying the grid's per-prediction timeout. Shared between the
// worker's own explore path and the cluster coordinator's.
func WireRequest(p explore.Point, timeoutMs int64) Request {
	return Request{
		Scenario: p.Scenario, Device: p.Device, Batch: p.Batch,
		GPUs: p.GPUs, Comm: p.Comm, Shared: p.Shared, TimeoutMs: timeoutMs,
	}
}

// RunExplore expands the grid and drives its unique units through the
// server's admission pipeline — every unit rides Submit's blocking
// admission exactly like a batch row, so the sweep is governed by the
// same queue, counted by the same /stats buckets, and preserves
// hits + misses + rejected == requests. Grid points scenario
// validation rejects are counted explore-side and never admitted.
// Submitters are bounded by the queue capacity plus the worker width:
// enough to keep every worker busy with a full queue behind it, while
// a million-point grid holds a bounded goroutine count, not one per
// point.
func (s *Server) RunExplore(ctx context.Context, g explore.Grid) (*explore.Report, error) {
	if s.Draining() {
		return nil, ErrDraining
	}
	if size := g.Size(); size > s.cfg.MaxGrid {
		return nil, &GridTooLargeError{Size: size, Max: s.cfg.MaxGrid}
	}
	ex, err := explore.Expand(g)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	agg := explore.NewAggregator(ex)
	submitters := s.cfg.Workers + s.cfg.QueueDepth
	xsync.ForEachN(len(ex.Unique), submitters, func(i int) {
		res, err := s.Submit(ctx, WireRequest(ex.Unique[i].Point, g.TimeoutMs))
		if err != nil {
			agg.Add(i, explore.Outcome{Err: err.Error()})
			return
		}
		agg.Add(i, explore.Outcome{
			E2EUs:             res.E2EUs,
			ScalingEfficiency: res.ScalingEfficiency,
			CacheHit:          res.CacheHit,
			Err:               res.Error,
		})
	})
	rep := agg.Report(time.Since(start))
	assets := s.cfg.Backend.AssetStats()
	rep.Assets = &assets
	return rep, nil
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var g explore.Grid
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&g); err != nil {
		WriteJSON(w, http.StatusBadRequest, HTTPError{Code: "bad_request", Message: err.Error()})
		return
	}
	rep, err := s.RunExplore(r.Context(), g)
	var tooLarge *GridTooLargeError
	switch {
	case err == nil:
		WriteJSON(w, http.StatusOK, rep)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		WriteJSON(w, http.StatusServiceUnavailable, HTTPError{Code: "draining", Message: err.Error()})
	case errors.As(err, &tooLarge):
		WriteJSON(w, http.StatusBadRequest, HTTPError{Code: "grid_too_large", Message: err.Error()})
	default:
		// Expansion errors: structurally empty grids.
		WriteJSON(w, http.StatusBadRequest, HTTPError{Code: "bad_grid", Message: err.Error()})
	}
}
