package serve

import (
	"context"
	"sync"
	"time"
)

// Priority classes, highest first. The wire field is a string
// ("high", "normal"/"", "low"); priorityClass maps it onto these.
const (
	priHigh = iota
	priNormal
	priLow
	priClasses
)

// wrrPattern is the static weighted round-robin schedule across the
// priority classes when all are backlogged: high 4, normal 2, low 1
// per 7 dequeues. Empty classes are skipped, so the weights only bite
// under contention — a lone low-priority stream still gets the whole
// queue. No class weight is zero, so no class can be starved outright.
var wrrPattern = [...]uint8{priHigh, priNormal, priHigh, priLow, priHigh, priNormal, priHigh}

// priorityClass maps the wire priority field onto a class index. The
// second return reports whether the string was a known class — the
// HTTP boundary rejects unknown strings with 400, and internal callers
// fall back to normal.
func priorityClass(s string) (uint8, bool) {
	switch s {
	case "", "normal":
		return priNormal, true
	case "high":
		return priHigh, true
	case "low":
		return priLow, true
	}
	return priNormal, false
}

// defaultTenant names untagged traffic; overflowTenant pools tenants
// past the tracking bound so an adversarial tenant-per-request stream
// cannot grow the ledger (or the subqueue set) without bound.
const (
	defaultTenant     = "default"
	overflowTenant    = "~other"
	maxTrackedTenants = 256
)

func normalizeTenant(s string) string {
	if s == "" {
		return defaultTenant
	}
	return s
}

// subQueue is one tenant's FIFO within one priority class. The slice
// is reused as a ring-ish buffer: head chases the tail and both reset
// when the queue empties, so steady-state traffic stops allocating.
type subQueue struct {
	tenant string
	jobs   []*job
	head   int
}

func (sq *subQueue) push(j *job) { sq.jobs = append(sq.jobs, j) }

func (sq *subQueue) pop() *job {
	j := sq.jobs[sq.head]
	sq.jobs[sq.head] = nil
	sq.head++
	if sq.head == len(sq.jobs) {
		sq.jobs = sq.jobs[:0]
		sq.head = 0
	}
	return j
}

func (sq *subQueue) empty() bool { return sq.head == len(sq.jobs) }

// classQueue is one priority class: a round-robin ring over the
// tenants that currently have jobs queued at this priority, so within
// a class every tenant drains at the same rate regardless of backlog.
type classQueue struct {
	ring  []*subQueue
	next  int
	index map[string]*subQueue
}

func (cq *classQueue) enqueue(tenant string, j *job) {
	sq := cq.index[tenant]
	if sq == nil {
		if cq.index == nil {
			cq.index = map[string]*subQueue{}
		}
		sq = &subQueue{tenant: tenant}
		cq.index[tenant] = sq
	}
	if sq.empty() {
		cq.ring = append(cq.ring, sq)
	}
	sq.push(j)
}

// dequeue pops one job from the next tenant in the ring (nil when the
// class is empty). An emptied tenant leaves the ring in place — the
// element sliding into its slot is served next, preserving rotation
// order — and rejoins at the tail on its next enqueue.
func (cq *classQueue) dequeue() *job {
	if len(cq.ring) == 0 {
		return nil
	}
	if cq.next >= len(cq.ring) {
		cq.next = 0
	}
	sq := cq.ring[cq.next]
	j := sq.pop()
	if sq.empty() {
		cq.ring = append(cq.ring[:cq.next], cq.ring[cq.next+1:]...)
	} else {
		cq.next++
	}
	return j
}

// tenantCounters is one tenant's admission ledger, guarded by the fair
// queue's mutex. All durations measure queue wait only.
type tenantCounters struct {
	requests  uint64
	served    uint64
	shed      uint64
	canceled  uint64
	queued    int
	totalWait time.Duration
	maxWait   time.Duration
}

// serviceAlpha weights the exponential moving average of service time
// that feeds the adaptive Retry-After hint.
const serviceAlpha = 0.2

// fairQueue replaces the flat admission channel with per-tenant fair
// queuing under priority classes: a global capacity bound plus a
// per-tenant share bound at admission, weighted round-robin across
// classes and plain round-robin across tenants at dequeue. The
// external contract matches the channel it replaced — push blocks (or
// fails fast) on a full queue, pop blocks until a job or close-and-
// empty — so the Drain choreography in Server is unchanged.
type fairQueue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	space    *sync.Cond

	classes   [priClasses]classQueue
	cursor    int
	total     int
	peak      int64
	capacity  int
	tenantCap int
	closed    bool

	tenants map[string]*tenantCounters

	// ewmaServiceNs tracks smoothed per-request service time; zero
	// means no request has completed yet.
	ewmaServiceNs float64
}

func newFairQueue(capacity, tenantCap int) *fairQueue {
	q := &fairQueue{
		capacity:  capacity,
		tenantCap: tenantCap,
		tenants:   map[string]*tenantCounters{},
	}
	q.notEmpty = sync.NewCond(&q.mu)
	q.space = sync.NewCond(&q.mu)
	return q
}

// tenantLocked resolves a tenant's counters, folding tenants past the
// tracking bound into the shared overflow bucket. Returns the
// canonical name the job queues under.
func (q *fairQueue) tenantLocked(name string) (string, *tenantCounters) {
	tc := q.tenants[name]
	if tc == nil {
		if len(q.tenants) >= maxTrackedTenants {
			name = overflowTenant
			tc = q.tenants[name]
		}
		if tc == nil {
			tc = &tenantCounters{}
			q.tenants[name] = tc
		}
	}
	return name, tc
}

// push admits one job under both bounds. With wait=false a violated
// bound fails fast — ErrTenantLimited when this tenant is over its
// share while the queue itself has room, ErrQueueFull otherwise. With
// wait=true push blocks until both bounds clear or ctx expires.
// Admission is gated by the Server's draining check before push, and
// close happens only after every admitted job finished, so push never
// runs on a closed queue.
func (q *fairQueue) push(ctx context.Context, j *job, wait bool) error {
	if wait {
		// Wake the cond wait when the caller gives up; Wait holds no
		// ordering with ctx.Done, so the loop rechecks ctx after every
		// wake.
		stop := context.AfterFunc(ctx, func() {
			q.mu.Lock()
			q.space.Broadcast()
			q.mu.Unlock()
		})
		defer stop()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	name, tc := q.tenantLocked(normalizeTenant(j.req.Tenant))
	j.tenant = name
	tc.requests++
	for q.total >= q.capacity || tc.queued >= q.tenantCap {
		if !wait {
			tc.shed++
			if tc.queued >= q.tenantCap && q.total < q.capacity {
				return ErrTenantLimited
			}
			return ErrQueueFull
		}
		if ctx.Err() != nil {
			tc.canceled++
			return ctx.Err()
		}
		q.space.Wait()
	}
	j.enqueuedAt = time.Now()
	q.classes[j.pri].enqueue(name, j)
	tc.queued++
	q.total++
	if int64(q.total) > q.peak {
		q.peak = int64(q.total)
	}
	q.notEmpty.Signal()
	return nil
}

// pop blocks until a job is available (fair-dequeued) or the queue is
// closed and empty. It stamps the job's queue wait and rolls it into
// the tenant ledger before handing the job to the worker.
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.total == 0 {
		if q.closed {
			return nil, false
		}
		q.notEmpty.Wait()
	}
	var j *job
	for i := 0; i < len(wrrPattern) && j == nil; i++ {
		j = q.classes[wrrPattern[q.cursor]].dequeue()
		q.cursor++
		if q.cursor == len(wrrPattern) {
			q.cursor = 0
		}
	}
	if j == nil {
		// The pattern names every class, so total > 0 guarantees a hit
		// above; kept as a defensive direct scan.
		for c := 0; c < priClasses && j == nil; c++ {
			j = q.classes[c].dequeue()
		}
	}
	q.total--
	wait := time.Since(j.enqueuedAt)
	j.waitNs = wait.Nanoseconds()
	tc := q.tenants[j.tenant]
	tc.queued--
	tc.served++
	tc.totalWait += wait
	if wait > tc.maxWait {
		tc.maxWait = wait
	}
	// Broadcast, not Signal: waiters block on different predicates
	// (global capacity vs their own tenant's share), so a single
	// wakeup could land on a waiter whose bound is still violated and
	// strand one that could proceed.
	q.space.Broadcast()
	return j, true
}

// close wakes every blocked pop (and any push waiter) for shutdown;
// pops drain the remaining jobs first and then return false.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.space.Broadcast()
	q.mu.Unlock()
}

// observeService folds one completed request's service time into the
// drain-rate estimate.
func (q *fairQueue) observeService(d time.Duration) {
	q.mu.Lock()
	if q.ewmaServiceNs == 0 {
		q.ewmaServiceNs = float64(d.Nanoseconds())
	} else {
		q.ewmaServiceNs += serviceAlpha * (float64(d.Nanoseconds()) - q.ewmaServiceNs)
	}
	q.mu.Unlock()
}

// drainEstimate predicts how long the current backlog needs to clear
// across the worker pool — the adaptive Retry-After signal. Zero means
// no observation (or no backlog) yet; the caller applies the
// configured floor and ceiling.
func (q *fairQueue) drainEstimate(workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.ewmaServiceNs == 0 || q.total == 0 {
		return 0
	}
	return time.Duration(float64(q.total) * q.ewmaServiceNs / float64(workers))
}

func (q *fairQueue) avgServiceUs() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ewmaServiceNs / 1e3
}

// snapshot reports the queue depth, its high-water mark, and the
// per-tenant ledger (nil before the first admission reaches the
// queue).
func (q *fairQueue) snapshot() (depth int, peak int64, tenants map[string]TenantStats) {
	q.mu.Lock()
	defer q.mu.Unlock()
	depth, peak = q.total, q.peak
	if len(q.tenants) == 0 {
		return depth, peak, nil
	}
	tenants = make(map[string]TenantStats, len(q.tenants))
	for name, tc := range q.tenants {
		ts := TenantStats{
			Requests:    tc.requests,
			Served:      tc.served,
			Shed:        tc.shed,
			Canceled:    tc.canceled,
			Queued:      tc.queued,
			TotalWaitUs: tc.totalWait.Microseconds(),
			MaxWaitUs:   tc.maxWait.Microseconds(),
		}
		if tc.served > 0 {
			ts.AvgWaitUs = float64(ts.TotalWaitUs) / float64(tc.served)
		}
		tenants[name] = ts
	}
	return depth, peak, tenants
}
