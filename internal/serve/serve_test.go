package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlrmperf"
)

// fakeBackend is a controllable Backend: requests whose workload is
// "block" park on release until the test frees them (or their context
// expires); "reject" fails validation. Counters follow the engine's
// conventions (hits+misses == served, rejects separate) so Stats
// invariants can be asserted against it.
type fakeBackend struct {
	release chan struct{}
	started chan struct{} // one tick per request entering the blocked section

	served   atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	rejected atomic.Uint64
	canceled atomic.Uint64
	inFlight atomic.Int64

	mu   sync.Mutex
	seen map[string]bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		release: make(chan struct{}),
		started: make(chan struct{}, 1024),
		seen:    map[string]bool{},
	}
}

func (f *fakeBackend) PredictContext(ctx context.Context, req dlrmperf.PredictRequest) dlrmperf.PredictResult {
	if req.Workload == "reject" {
		f.rejected.Add(1)
		return dlrmperf.PredictResult{Request: req, Err: errors.New("fake: rejected")}
	}
	f.inFlight.Add(1)
	defer f.inFlight.Add(-1)
	defer f.served.Add(1)
	if req.Workload == "block" {
		f.started <- struct{}{}
		select {
		case <-f.release:
		case <-ctx.Done():
			f.misses.Add(1)
			f.canceled.Add(1)
			return dlrmperf.PredictResult{Request: req, Err: ctx.Err()}
		}
	}
	// Full request identity, so grid sweeps over distinct scenarios and
	// batches see engine-like hit patterns (identical requests hit,
	// distinct ones miss).
	key := fmt.Sprintf("%s/%s/%s/%d/%d/%s/%t",
		req.Workload, req.Scenario, req.Device, req.Batch, req.GPUs, req.Comm, req.SharedOverheads)
	f.mu.Lock()
	hit := f.seen[key]
	f.seen[key] = true
	f.mu.Unlock()
	if hit {
		f.hits.Add(1)
	} else {
		f.misses.Add(1)
	}
	return dlrmperf.PredictResult{
		Request:           req,
		Prediction:        dlrmperf.Prediction{E2EUs: 42, ActiveUs: 40, CPUUs: 2},
		GPUs:              1,
		ScalingEfficiency: 1,
		CacheHit:          hit,
	}
}

func (f *fakeBackend) CacheStats() (uint64, uint64)    { return f.hits.Load(), f.misses.Load() }
func (f *fakeBackend) RejectedRequests() uint64        { return f.rejected.Load() }
func (f *fakeBackend) AssetStats() dlrmperf.AssetStats { return dlrmperf.AssetStats{} }
func (f *fakeBackend) StreamStats() dlrmperf.StreamStats {
	return dlrmperf.StreamStats{
		InFlight: f.inFlight.Load(),
		Served:   f.served.Load(),
		Canceled: f.canceled.Load(),
	}
}
func (f *fakeBackend) Devices() []string          { return []string{"FakeGPU"} }
func (f *fakeBackend) CalibrationRuns(string) int { return 0 }

// assertInvariant checks the /stats accounting identity: every admitted
// request is a hit, a miss, or a rejection.
func assertInvariant(t *testing.T, st Stats) {
	t.Helper()
	if got := st.Cache.Hits + st.Cache.Misses + st.Rejected.Total(); got != st.Requests {
		t.Errorf("stats invariant broken: hits %d + misses %d + rejected %d = %d, requests %d",
			st.Cache.Hits, st.Cache.Misses, st.Rejected.Total(), got, st.Requests)
	}
}

// TestAdmissionBackpressure drives the bounded queue to capacity with a
// deliberately blocked worker and verifies the 429 path: non-blocking
// admissions fail fast with ErrQueueFull, the rejection is counted, and
// every admitted request still completes once the backend unblocks.
func TestAdmissionBackpressure(t *testing.T) {
	fb := newFakeBackend()
	// TenantQueueCap = QueueDepth: this test drives the queue to its
	// global bound with a single (default) tenant, so the per-tenant
	// share must not trip first.
	s := New(Config{Backend: fb, QueueDepth: 2, Workers: 1, TenantQueueCap: 2})
	defer s.Drain()

	blockReq := Request{Workload: "block", Device: "FakeGPU"}
	type submitResult struct {
		res Result
		err error
	}
	inFlight := make([]chan submitResult, 0, 3)
	// First admission: the single worker picks it up and parks on the
	// backend; wait for it to start so queue occupancy is deterministic.
	ch := make(chan submitResult, 1)
	go func() { r, err := s.TrySubmit(context.Background(), blockReq); ch <- submitResult{r, err} }()
	inFlight = append(inFlight, ch)
	<-fb.started

	// Two more fill the queue (worker is parked, nothing drains).
	for i := 0; i < 2; i++ {
		ch := make(chan submitResult, 1)
		go func() { r, err := s.TrySubmit(context.Background(), blockReq); ch <- submitResult{r, err} }()
		inFlight = append(inFlight, ch)
	}
	waitFor(t, func() bool { return s.Stats().Queue.Depth == 2 })

	// The queue is full: the next non-blocking admissions shed load.
	const shed = 4
	for i := 0; i < shed; i++ {
		if _, err := s.TrySubmit(context.Background(), blockReq); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("admission %d over capacity: err = %v, want ErrQueueFull", i, err)
		}
	}
	st := s.Stats()
	if st.Rejected.QueueFull != shed {
		t.Fatalf("queue-full rejections = %d, want %d", st.Rejected.QueueFull, shed)
	}
	if st.Queue.PeakDepth != 2 {
		t.Fatalf("peak queue depth = %d, want 2", st.Queue.PeakDepth)
	}

	close(fb.release)
	for i, ch := range inFlight {
		got := <-ch
		if got.err != nil || got.res.Error != "" {
			t.Fatalf("admitted request %d failed after release: %v / %q", i, got.err, got.res.Error)
		}
	}
	assertInvariant(t, s.Stats())
}

// TestDrainGraceful: queued and executing requests finish during a
// drain, while new admissions are rejected with ErrDraining and counted
// distinctly from queue-full rejections.
func TestDrainGraceful(t *testing.T) {
	fb := newFakeBackend()
	s := New(Config{Backend: fb, QueueDepth: 4, Workers: 1})

	blockReq := Request{Workload: "block", Device: "FakeGPU"}
	results := make(chan Result, 3)
	for i := 0; i < 3; i++ {
		go func() {
			r, err := s.Submit(context.Background(), blockReq)
			if err != nil {
				r = Result{Error: err.Error()}
			}
			results <- r
		}()
	}
	<-fb.started
	waitFor(t, func() bool { return s.Stats().Queue.Depth == 2 })

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	waitFor(t, func() bool { return s.Draining() })

	if _, err := s.Submit(context.Background(), Request{Workload: "x", Device: "FakeGPU"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}
	if _, err := s.TrySubmit(context.Background(), Request{Workload: "x", Device: "FakeGPU"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("try-submit during drain: err = %v, want ErrDraining", err)
	}
	select {
	case <-drained:
		t.Fatal("drain completed while requests were still in flight")
	default:
	}

	close(fb.release)
	for i := 0; i < 3; i++ {
		if r := <-results; r.Error != "" {
			t.Fatalf("in-flight request %d failed during drain: %s", i, r.Error)
		}
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed")
	}
	st := s.Stats()
	if st.Rejected.Draining != 2 {
		t.Errorf("draining rejections = %d, want 2", st.Rejected.Draining)
	}
	assertInvariant(t, st)
}

// TestConcurrentClientsRace floods the server with N goroutine clients
// mixing compute, duplicate, rejected, and canceled requests — run
// under -race this is the streaming-safety test: counters stay
// consistent and every client gets exactly one answer.
func TestConcurrentClientsRace(t *testing.T) {
	fb := newFakeBackend()
	close(fb.release) // nothing blocks; "block" requests pass straight through
	s := New(Config{Backend: fb, QueueDepth: 32, Workers: 8})
	defer s.Drain()

	const clients = 64
	var wg sync.WaitGroup
	var answered atomic.Uint64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{Workload: "dup", Device: "FakeGPU"}
			if i%8 == 0 {
				req.Workload = "reject"
			}
			res, err := s.Submit(context.Background(), req)
			if err == nil {
				answered.Add(1)
				if req.Workload == "reject" && res.Error == "" {
					t.Error("rejected request served")
				}
			}
		}(i)
	}
	wg.Wait()
	if answered.Load() != clients {
		t.Fatalf("answered = %d, want %d", answered.Load(), clients)
	}
	st := s.Stats()
	if st.Requests != clients {
		t.Fatalf("requests = %d, want %d", st.Requests, clients)
	}
	if st.Cache.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single computation of the duplicate scenario)", st.Cache.Misses)
	}
	assertInvariant(t, st)
}

// TestStatsSnapshotInvariantUnderLoad hammers Stats() from a dedicated
// goroutine while concurrent clients mix computed, duplicate, rejected,
// queue-full, and blocked traffic, asserting the accounting invariant
// Accounted() <= Requests on EVERY snapshot — not just at quiescence.
// The bound is only guaranteed by Stats' monotonic read order (bucket
// counters before the request total); with the order reversed a bucket
// increment can be observed without its admission and the snapshot
// reads hits+misses+rejected > requests. Run under -race this is also
// the data-race check on the snapshot path.
func TestStatsSnapshotInvariantUnderLoad(t *testing.T) {
	fb := newFakeBackend()
	close(fb.release) // nothing parks; traffic flows freely
	s := New(Config{Backend: fb, QueueDepth: 4, Workers: 2})
	defer s.Drain()

	stop := make(chan struct{})
	var snapshots atomic.Uint64
	var hammer sync.WaitGroup
	for g := 0; g < 2; g++ {
		hammer.Add(1)
		go func() {
			defer hammer.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				snapshots.Add(1)
				if got := st.Accounted(); got > st.Requests {
					t.Errorf("snapshot overshoot: hits %d + misses %d + rejected %d = %d > requests %d",
						st.Cache.Hits, st.Cache.Misses, st.Rejected.Total(), got, st.Requests)
					return
				}
			}
		}()
	}

	const clients, perClient = 16, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := Request{Workload: "dup", Device: "FakeGPU"}
				switch {
				case i%5 == 0:
					req.Workload = "reject" // backend validation reject
				case i%7 == 0:
					req.Workload = "u" // distinct scenario: a miss
				}
				if c%2 == 0 {
					s.Submit(context.Background(), req)
				} else {
					// Non-blocking: some of these shed with queue-full,
					// exercising the server-side rejection buckets too.
					s.TrySubmit(context.Background(), req)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	hammer.Wait()

	if snapshots.Load() == 0 {
		t.Fatal("hammer took no snapshots")
	}
	st := s.Stats()
	if st.Requests != clients*perClient {
		t.Fatalf("requests = %d, want %d", st.Requests, clients*perClient)
	}
	if got := st.Accounted(); got != st.Requests {
		t.Fatalf("quiescent invariant broken: accounted %d != requests %d\n%+v", got, st.Requests, st)
	}
	t.Logf("%d snapshots verified against %d requests", snapshots.Load(), st.Requests)
}

// tinyConfig is the shared low-fidelity calibration preset, so the
// integration test calibrates in fractions of a second.
func tinyConfig() dlrmperf.EngineConfig {
	return dlrmperf.FastCalibConfig(23, 4)
}

// TestStreamIntegrationRealEngine is the end-to-end streaming contract
// over a real (tiny) engine: a request canceled mid-calibration
// returns the context error without poisoning the singleflight entry,
// duplicate in-flight scenarios collapse to one computation, and the
// stats invariant holds across all of it.
func TestStreamIntegrationRealEngine(t *testing.T) {
	eng, err := dlrmperf.NewEngineWith(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Backend: eng, QueueDepth: 32, Workers: 4})
	defer s.Drain()

	req := Request{Workload: dlrmperf.DLRMDefault, Batch: 512, Device: dlrmperf.V100}

	// 1ms deadline: cold calibration takes far longer, so this cancels
	// mid-calibration. The detached computation keeps running.
	short := req
	short.TimeoutMs = 1
	res, err := s.Submit(context.Background(), short)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("canceled request error = %q, want deadline exceeded", res.Error)
	}

	// Duplicate in-flight burst of the same scenario: every client is
	// served, exactly one computation happened across the canceled
	// request and the burst, and the device calibrated once.
	const clients = 6
	results := make([]Result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Submit(context.Background(), req)
			if err != nil {
				r = Result{Error: err.Error()}
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	computed := 0
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("client %d failed: %s", i, r.Error)
		}
		if r.E2EUs != results[0].E2EUs {
			t.Fatalf("client %d prediction differs: %v vs %v", i, r.E2EUs, results[0].E2EUs)
		}
		if !r.CacheHit {
			computed++
		}
	}
	if computed > 1 {
		t.Fatalf("%d clients computed, want at most 1 (singleflight collapse)", computed)
	}
	if got := eng.CalibrationRuns(dlrmperf.V100); got != 1 {
		t.Fatalf("calibrations executed = %d, want 1 (canceled request must not poison the flight)", got)
	}
	st := s.Stats()
	if st.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", st.Canceled)
	}
	assertInvariant(t, st)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}
