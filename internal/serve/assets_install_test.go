package serve_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dlrmperf/internal/client"
	"dlrmperf/internal/serve"
)

// loaderBackend wraps the fake backend with an AssetLoader surface so
// the install endpoint's happy path can be exercised without a real
// engine. A payload containing "bad" refuses, everything else
// installs. (The client ships payloads as raw JSON, so even the
// refused blob must parse.)
type loaderBackend struct {
	*serve.TestBackend
	installed [][]byte
}

func (l *loaderBackend) LoadAssets(data []byte) error {
	if strings.Contains(string(data), "bad") {
		return errors.New("loader: malformed asset payload")
	}
	l.installed = append(l.installed, data)
	return nil
}

// TestHTTPInstallAssets pins the worker-side warm hand-off endpoint:
// a valid payload installs and is counted as a control-plane stat (no
// request counters move), a payload the backend refuses surfaces as
// 400 bad_assets, and a backend without the AssetLoader surface gets
// 501 so the coordinator knows the hand-off cannot land here.
func TestHTTPInstallAssets(t *testing.T) {
	lb := &loaderBackend{TestBackend: serve.NewTestBackend()}
	lb.Release()
	s, cl := newHTTPServer(t, serve.Config{Backend: lb, QueueDepth: 4, Workers: 1})
	ctx := context.Background()

	if err := cl.InstallAssets(ctx, []byte(`{"version":1,"device":"FakeGPU"}`)); err != nil {
		t.Fatalf("install = %v, want accepted", err)
	}
	if len(lb.installed) != 1 {
		t.Fatalf("backend saw %d installs, want 1", len(lb.installed))
	}

	// A refused payload is the caller's problem, typed bad_assets.
	var api *client.APIError
	err := cl.InstallAssets(ctx, []byte(`{"bad":true}`))
	if !errors.As(err, &api) || api.Status != 400 || api.Code != "bad_assets" {
		t.Fatalf("refused install err = %v, want 400 bad_assets", err)
	}

	// Installs are control plane: the accounting identity holds with
	// zero requests — no hit, miss, or reject moved.
	st := s.Stats()
	if st.AssetInstalls != 1 {
		t.Fatalf("asset_installs = %d, want 1", st.AssetInstalls)
	}
	if st.Requests != 0 {
		t.Fatalf("requests = %d after installs, want 0 (control plane)", st.Requests)
	}
	serve.AssertInvariant(t, st)
}

// TestHTTPInstallAssetsUnsupported: a backend without LoadAssets gets
// a 501, not a silent success the coordinator would mistake for a
// warm hand-off.
func TestHTTPInstallAssetsUnsupported(t *testing.T) {
	fb := serve.NewTestBackend()
	fb.Release()
	_, cl := newHTTPServer(t, serve.Config{Backend: fb, QueueDepth: 4, Workers: 1})

	var api *client.APIError
	err := cl.InstallAssets(context.Background(), []byte(`{}`))
	if !errors.As(err, &api) || api.Status != 501 || api.Code != "unsupported" {
		t.Fatalf("install on loader-less backend = %v, want 501 unsupported", err)
	}
}

// TestHTTPInstallAssetsDraining: a draining worker is leaving the
// routing set and must refuse new device ownership — 503 draining
// with a Retry-After hint, same taxonomy as the predict path.
func TestHTTPInstallAssetsDraining(t *testing.T) {
	lb := &loaderBackend{TestBackend: serve.NewTestBackend()}
	lb.Release()
	s, cl := newHTTPServer(t, serve.Config{Backend: lb, QueueDepth: 4, Workers: 1, RetryAfter: 2 * time.Second})
	s.Drain()

	var dr *client.ErrDraining
	err := cl.InstallAssets(context.Background(), []byte(`{"version":1}`))
	if !errors.As(err, &dr) {
		t.Fatalf("install on draining worker = %v, want ErrDraining", err)
	}
	if dr.RetryAfter < time.Second {
		t.Fatalf("draining install Retry-After = %v, want a >= 1s hint", dr.RetryAfter)
	}
	if len(lb.installed) != 0 {
		t.Fatal("draining worker accepted an asset install")
	}
}
