package scenario

import (
	"fmt"
	"sort"

	"dlrmperf/internal/workload"
)

// Plan is a device assignment of embedding tables — the promoted form
// of the examples/sharding load-balancing study, usable by the engine's
// multi-device prediction path and by co-design callers alike.
type Plan struct {
	// Devices is the shard count.
	Devices int
	// Assignments[d] lists the indices (into the planned table slice)
	// owned by device d, ascending.
	Assignments [][]int
	// Loads[d] is the summed weight assigned to device d.
	Loads []float64
	// MaxLoad and MeanLoad summarize the balance.
	MaxLoad, MeanLoad float64
}

// Imbalance is MaxLoad/MeanLoad - 1: 0 for a perfect split, 1 when the
// busiest device carries twice the average.
func (p Plan) Imbalance() float64 {
	if p.MeanLoad == 0 {
		return 0
	}
	return p.MaxLoad/p.MeanLoad - 1
}

// TablesFor materializes device d's shard of the planned tables.
func (p Plan) TablesFor(d int, tables []workload.TableSpec) []workload.TableSpec {
	out := make([]workload.TableSpec, 0, len(p.Assignments[d]))
	for _, i := range p.Assignments[d] {
		out = append(out, tables[i])
	}
	return out
}

// PlanShards balances tables across n devices by the static rows×dim
// weight — the memory-and-lookup proxy that needs no calibrated model.
func PlanShards(tables []workload.TableSpec, dim int64, n int) (Plan, error) {
	return PlanShardsCost(tables, n, func(t workload.TableSpec) float64 {
		return float64(t.Rows) * float64(dim)
	})
}

// PlanShardsCost balances tables across n devices with greedy LPT
// (largest cost first onto the least-loaded device) under an arbitrary
// per-table cost — e.g. a calibrated kernel model's predicted lookup
// time. The plan is deterministic: ties break toward the lower table
// index and the lower device index.
func PlanShardsCost(tables []workload.TableSpec, n int, cost func(workload.TableSpec) float64) (Plan, error) {
	if n < 1 {
		return Plan{}, fmt.Errorf("scenario: device count %d must be >= 1", n)
	}
	if len(tables) == 0 {
		return Plan{}, fmt.Errorf("scenario: no tables to shard")
	}
	if len(tables) < n {
		return Plan{}, fmt.Errorf("scenario: cannot shard %d tables across %d devices without leaving a device empty",
			len(tables), n)
	}
	costs := make([]float64, len(tables))
	order := make([]int, len(tables))
	for i, t := range tables {
		costs[i] = cost(t)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })

	p := Plan{
		Devices:     n,
		Assignments: make([][]int, n),
		Loads:       make([]float64, n),
	}
	for _, ti := range order {
		best := 0
		for d := 1; d < n; d++ {
			// An empty device always wins: no device may end up with zero
			// tables (a shard must still build a valid DLRM graph).
			if len(p.Assignments[d]) == 0 && len(p.Assignments[best]) > 0 {
				best = d
				break
			}
			if len(p.Assignments[best]) == 0 {
				continue
			}
			if p.Loads[d] < p.Loads[best] {
				best = d
			}
		}
		p.Assignments[best] = append(p.Assignments[best], ti)
		p.Loads[best] += costs[ti]
	}
	total := 0.0
	for d := range p.Assignments {
		sort.Ints(p.Assignments[d])
		total += p.Loads[d]
		if p.Loads[d] > p.MaxLoad {
			p.MaxLoad = p.Loads[d]
		}
	}
	p.MeanLoad = total / float64(n)
	return p, nil
}
