package scenario

import (
	"strings"
	"testing"

	"dlrmperf/internal/models"
	"dlrmperf/internal/workload"
)

func TestFingerprintIdentity(t *testing.T) {
	a := Single(models.NameDLRMDefault, 2048)
	b := Single(models.NameDLRMDefault, 2048)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal specs fingerprint differently")
	}
	// Name is informational: it must not affect identity.
	b.Name = "anything"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("Name changed the fingerprint")
	}
	// Devices 0 and 1 are the same execution.
	b.Devices = 0
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("devices 0 vs 1 fingerprint differently")
	}
	// Comm names are case-insensitive and default to nvlink.
	lower := Spec{Workload: models.NameDLRMDefault, Batch: 2048, Devices: 2, Comm: "nvlink"}
	upper := Spec{Workload: models.NameDLRMDefault, Batch: 2048, Devices: 2, Comm: "NVLink"}
	blank := Spec{Workload: models.NameDLRMDefault, Batch: 2048, Devices: 2}
	if lower.Fingerprint() != upper.Fingerprint() || lower.Fingerprint() != blank.Fingerprint() {
		t.Error("comm-name case or default changed the fingerprint")
	}

	distinct := []Spec{
		Single(models.NameDLRMDefault, 1024),
		Single(models.NameDLRMDDP, 2048),
		{Workload: models.NameDLRMDefault, Batch: 2048, Devices: 2},
		{Workload: models.NameDLRMDefault, Batch: 2048, Devices: 2, Comm: CommPCIe},
		{Workload: models.NameDLRMDefault, Batch: 2048,
			Tables: workload.UniformTables(4, 1000, 8)},
	}
	seen := map[string]string{a.Fingerprint(): a.Canonical()}
	for _, s := range distinct {
		fp := s.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %q and %q -> %s", prev, s.Canonical(), fp)
		}
		seen[fp] = s.Canonical()
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"single", Single(models.NameDLRMDefault, 512), true},
		{"multi", Spec{Workload: models.NameDLRMDefault, Batch: 512, Devices: 4}, true},
		{"empty workload", Spec{Batch: 512}, false},
		{"zero batch", Spec{Workload: models.NameDLRMDefault}, false},
		{"negative devices", Spec{Workload: models.NameDLRMDefault, Batch: 512, Devices: -1}, false},
		{"batch below devices", Spec{Workload: models.NameDLRMDefault, Batch: 2, Devices: 4}, false},
		{"bad comm", Spec{Workload: models.NameDLRMDefault, Batch: 512, Devices: 2, Comm: "smoke-signal"}, false},
		{"case-insensitive comm", Spec{Workload: models.NameDLRMDefault, Batch: 512, Devices: 2, Comm: "NVLink"}, true},
		{"bad table", Spec{Workload: models.NameDLRMDefault, Batch: 512,
			Tables: []workload.TableSpec{{Rows: 0, Lookups: 1}}}, false},
		{"negative skew", Spec{Workload: models.NameDLRMDefault, Batch: 512,
			Tables: []workload.TableSpec{{Rows: 1000, Lookups: 1, Skew: -0.5}}}, false},
		{"zero skew", Spec{Workload: models.NameDLRMDefault, Batch: 512,
			Tables: []workload.TableSpec{{Rows: 1000, Lookups: 1, Skew: 0}}}, true},
		{"comm on single-device spec", Spec{Workload: models.NameDLRMDefault,
			Batch: 512, Comm: CommPCIe}, false},
		{"comm on width-0 spec", Spec{Workload: models.NameDLRMDefault,
			Batch: 512, Devices: 0, Comm: CommNVLink}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestRegistryBuild(t *testing.T) {
	if len(Names()) < 6 {
		t.Fatalf("registry too small: %v", Names())
	}
	// Defaults resolve.
	s, err := Build("dlrm-criteo", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Workload != models.NameDLRMMLPerf || s.Batch != 2048 || s.NumDevices() != 1 {
		t.Errorf("dlrm-criteo defaults = %+v", s)
	}
	if len(s.Tables) != 26 {
		t.Errorf("dlrm-criteo tables = %d, want 26", len(s.Tables))
	}
	// Multi-GPU preset fixes the width; batch and width stay overridable.
	m, err := Build("dlrm-uniform-4gpu", 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDevices() != 4 || m.Batch != 1024 {
		t.Errorf("dlrm-uniform-4gpu override = %+v", m)
	}
	w, err := Build("dlrm-uniform-4gpu", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumDevices() != 2 {
		t.Errorf("width override ignored: %+v", w)
	}
	if _, err := Build("no-such-scenario", 0, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("unknown name error = %v", err)
	}
	// Generated specs carry their registry name without changing identity.
	plain, err := Build("dlrm-uniform", 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Name != "dlrm-uniform" {
		t.Errorf("spec name = %q", plain.Name)
	}
}

func TestPlanShardsBalance(t *testing.T) {
	// 8 equal tables over 4 devices: a perfect split, imbalance 0.
	p, err := PlanShards(workload.UniformTables(8, 1_000_000, 32), 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Imbalance() != 0 {
		t.Errorf("uniform imbalance = %v, want 0", p.Imbalance())
	}
	for d, tables := range p.Assignments {
		if len(tables) != 2 {
			t.Errorf("device %d got %d tables, want 2", d, len(tables))
		}
	}

	// The Criteo profile is dominated by a handful of huge tables; LPT
	// must beat the trivial contiguous split and leave no device empty.
	tables := workload.CriteoLikeTables()
	p, err = PlanShards(tables, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, dev := range p.Assignments {
		if len(dev) == 0 {
			t.Error("device left empty")
		}
		covered += len(dev)
	}
	if covered != len(tables) {
		t.Errorf("plan covers %d of %d tables", covered, len(tables))
	}
	if p.Imbalance() < 0 || p.Imbalance() > 1 {
		t.Errorf("criteo imbalance = %v, want in [0,1]", p.Imbalance())
	}
	if p.MaxLoad < p.MeanLoad {
		t.Errorf("max load %v below mean %v", p.MaxLoad, p.MeanLoad)
	}

	// Determinism: the same inputs yield the same plan.
	q, err := PlanShards(tables, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	for d := range p.Assignments {
		if len(p.Assignments[d]) != len(q.Assignments[d]) {
			t.Fatalf("plan not deterministic on device %d", d)
		}
		for i := range p.Assignments[d] {
			if p.Assignments[d][i] != q.Assignments[d][i] {
				t.Fatalf("plan not deterministic on device %d", d)
			}
		}
	}
}

func TestPlanShardsErrors(t *testing.T) {
	tables := workload.UniformTables(2, 1000, 4)
	if _, err := PlanShards(tables, 64, 0); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := PlanShards(nil, 64, 2); err == nil {
		t.Error("empty table population accepted")
	}
	if _, err := PlanShards(tables, 64, 3); err == nil {
		t.Error("more devices than tables accepted")
	}
}

func TestPlanShardsCostZeroCost(t *testing.T) {
	// A degenerate cost function must still fill every device.
	p, err := PlanShardsCost(workload.UniformTables(6, 1000, 4), 3,
		func(workload.TableSpec) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	for d, dev := range p.Assignments {
		if len(dev) == 0 {
			t.Errorf("device %d left empty under zero cost", d)
		}
	}
	if p.Imbalance() != 0 {
		t.Errorf("zero-cost imbalance = %v", p.Imbalance())
	}
}
