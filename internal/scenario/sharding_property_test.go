package scenario

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"dlrmperf/internal/workload"
)

// TestPlanShardsProperties (testing/quick) pins the planner's
// contract over random table populations and device counts:
//
//   - every device gets at least one table (a shard must still build a
//     valid DLRM graph) and every table is assigned exactly once;
//   - the greedy-LPT balance bound holds: the busiest device exceeds
//     the mean by at most the worst single table's cost (so Imbalance
//     <= maxCost/meanLoad);
//   - the plan is deterministic: planning the same input twice is
//     bit-identical.
func TestPlanShardsProperties(t *testing.T) {
	const dim = int64(64)
	f := func(rawRows []uint32, nRaw uint8) bool {
		if len(rawRows) == 0 {
			return true // no tables: PlanShards correctly errors; not this property's domain
		}
		tables := make([]workload.TableSpec, len(rawRows))
		maxCost := 0.0
		total := 0.0
		for i, r := range rawRows {
			rows := int64(1 + r%1_000_000)
			tables[i] = workload.TableSpec{Rows: rows, Lookups: 1 + int64(r)%64}
			cost := float64(rows) * float64(dim)
			total += cost
			if cost > maxCost {
				maxCost = cost
			}
		}
		n := 1 + int(nRaw)%len(tables)

		p, err := PlanShards(tables, dim, n)
		if err != nil {
			t.Logf("PlanShards(%d tables, %d devices): %v", len(tables), n, err)
			return false
		}
		// No empty devices; every table assigned exactly once.
		assigned := map[int]int{}
		for d, idxs := range p.Assignments {
			if len(idxs) == 0 {
				t.Logf("device %d empty", d)
				return false
			}
			for _, ti := range idxs {
				assigned[ti]++
			}
		}
		if len(assigned) != len(tables) {
			t.Logf("assigned %d of %d tables", len(assigned), len(tables))
			return false
		}
		for ti, cnt := range assigned {
			if cnt != 1 {
				t.Logf("table %d assigned %d times", ti, cnt)
				return false
			}
		}
		// Load bookkeeping and the LPT bound.
		const eps = 1e-6
		sum := 0.0
		for _, l := range p.Loads {
			sum += l
		}
		if math.Abs(sum-total) > eps*total {
			t.Logf("loads sum %v != total %v", sum, total)
			return false
		}
		if p.MaxLoad > p.MeanLoad+maxCost+eps*total {
			t.Logf("LPT bound broken: max %v > mean %v + worst table %v", p.MaxLoad, p.MeanLoad, maxCost)
			return false
		}
		if p.Imbalance() > maxCost/p.MeanLoad+eps {
			t.Logf("imbalance %v beyond worst-single-table bound %v", p.Imbalance(), maxCost/p.MeanLoad)
			return false
		}
		// Determinism.
		p2, err := PlanShards(tables, dim, n)
		if err != nil || !reflect.DeepEqual(p, p2) {
			t.Logf("replanning differed: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
