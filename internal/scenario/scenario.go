// Package scenario is the workload-planning layer between the facade
// and the prediction engine: a Spec bundles *what* to predict (a model
// family, its embedding-table population, a batch size) with *how* to
// execute it (single device, or hybrid-parallel across N devices with a
// chosen interconnect), plus a deterministic fingerprint that keys
// result caches and memoized graphs.
//
// Named generators (criteo-like DLRM, uniform-table DLRM, the CNN
// families, and multi-GPU presets of each) live in a registry so
// services can accept scenario names over the wire; the greedy
// embedding-table sharding planner (sharding.go) turns a multi-device
// Spec into balanced per-device table shards.
package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dlrmperf/internal/models"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/workload"
	"dlrmperf/internal/xrand"
)

// Comm model names accepted by Spec.Comm (case-insensitively). The
// empty string means CommNVLink. The mapping to alpha-beta parameters
// — and hence the authoritative name set — is predict.CommByName.
const (
	CommNVLink = "nvlink"
	CommPCIe   = "pcie"
)

// Spec is one fully-specified prediction scenario.
type Spec struct {
	// Name is the registry name that generated the spec ("" for ad-hoc
	// specs). It is informational only: identity is the Fingerprint.
	Name string `json:"name,omitempty"`
	// Workload is the model-family builder name (models.Build).
	Workload string `json:"workload"`
	// Batch is the global training batch size. Multi-device scenarios
	// split it evenly (ceil) across devices.
	Batch int64 `json:"batch"`
	// Tables overrides the family's embedding-table population (DLRM
	// families only; nil keeps the builder default).
	Tables []workload.TableSpec `json:"tables,omitempty"`
	// Devices is the execution width; 0 and 1 both mean single-device.
	// Widths above 1 select the hybrid-parallel path: dense layers
	// data-parallel at Batch/Devices, embedding tables sharded by the
	// planner, collectives priced by the Comm model.
	Devices int `json:"devices,omitempty"`
	// Comm names the interconnect model for Devices > 1 (CommNVLink
	// default, CommPCIe).
	Comm string `json:"comm,omitempty"`
}

// Single returns the single-device scenario of a built-in workload —
// the exact shape every pre-scenario PredictRequest had.
func Single(workloadName string, batch int64) Spec {
	return Spec{Workload: workloadName, Batch: batch, Devices: 1}
}

// NumDevices returns the normalized execution width (>= 1).
func (s Spec) NumDevices() int {
	if s.Devices < 1 {
		return 1
	}
	return s.Devices
}

// Validate checks structural constraints common to every consumer.
func (s Spec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("scenario: empty workload")
	}
	if s.Batch <= 0 {
		return fmt.Errorf("scenario %s: batch %d must be positive", s.Workload, s.Batch)
	}
	if s.Devices < 0 {
		return fmt.Errorf("scenario %s: negative device count %d", s.Workload, s.Devices)
	}
	if n := int64(s.NumDevices()); s.Batch < n {
		return fmt.Errorf("scenario %s: batch %d smaller than device count %d", s.Workload, s.Batch, n)
	}
	for i, t := range s.Tables {
		if t.Rows <= 0 || t.Lookups <= 0 || t.Skew < 0 {
			return fmt.Errorf("scenario %s: table %d has invalid spec %+v", s.Workload, i, t)
		}
	}
	if _, err := predict.CommByName(s.Comm); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Workload, err)
	}
	// A comm model on a single-device spec would never be exercised and
	// is dropped from the canonical identity; reject it so two
	// differently-written specs cannot alias one fingerprint.
	if s.Comm != "" && s.NumDevices() == 1 {
		return fmt.Errorf("scenario %s: comm %q set on a single-device spec", s.Workload, s.Comm)
	}
	return nil
}

// Canonical renders the identity-bearing fields in a normalized order.
// Two specs with equal Canonical strings predict identically; Name is
// deliberately excluded.
func (s Spec) Canonical() string {
	return string(s.AppendCanonical(nil))
}

// AppendCanonical appends the canonical encoding to b and returns the
// extended slice — the allocation-free form of Canonical for hot
// cache-key builders. The encoding is pinned: it keys every memoized
// graph and result, so changing a byte invalidates warm-started caches.
func (s *Spec) AppendCanonical(b []byte) []byte {
	b = append(b, "w="...)
	b = append(b, s.Workload...)
	b = append(b, ";b="...)
	b = strconv.AppendInt(b, s.Batch, 10)
	b = append(b, ";n="...)
	b = strconv.AppendInt(b, int64(s.NumDevices()), 10)
	if s.NumDevices() > 1 {
		// Comm names are case-insensitive; normalize so "NVLink" and
		// "nvlink" share one identity.
		b = append(b, ";comm="...)
		if s.Comm == "" {
			b = append(b, CommNVLink...)
		} else {
			b = appendLowerASCII(b, s.Comm)
		}
	}
	if len(s.Tables) > 0 {
		b = append(b, ";tables="...)
		b = AppendTablesKey(b, s.Tables)
	}
	return b
}

// appendLowerASCII lower-cases s byte-wise while appending. Comm names
// are ASCII by construction (predict.CommByName's switch), so this
// matches strings.ToLower on every accepted input.
func appendLowerASCII(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	return b
}

// TablesKey renders a table population canonically — the identity
// under which equal populations (and equal per-device shards) share
// fingerprints and memoized graphs.
func TablesKey(tables []workload.TableSpec) string {
	return string(AppendTablesKey(nil, tables))
}

// AppendTablesKey is the allocation-free form of TablesKey. The skew
// renders with strconv's shortest 'g' formatting, byte-identical to the
// fmt %g verb the key historically used.
func AppendTablesKey(b []byte, tables []workload.TableSpec) []byte {
	for i, t := range tables {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, t.Rows, 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(t.Lookups), 10)
		b = append(b, ':')
		b = strconv.AppendFloat(b, t.Skew, 'g', -1, 64)
	}
	return b
}

// TablesOf expands a DLRM family configuration into its table
// population — the population the engine shards when a spec carries no
// explicit tables, and the one listings should preview.
func TablesOf(cfg models.DLRMConfig) []workload.TableSpec {
	out := make([]workload.TableSpec, len(cfg.EmbRows))
	for i, r := range cfg.EmbRows {
		out[i] = workload.TableSpec{Rows: r, Lookups: cfg.Lookups, Skew: cfg.ZipfSkew}
	}
	return out
}

// Fingerprint is the deterministic cache identity of the spec: a
// human-scannable prefix plus a hash of the canonical encoding.
func (s Spec) Fingerprint() string {
	return string(s.AppendFingerprint(nil))
}

// AppendFingerprint appends the fingerprint to b and returns the
// extended slice. The canonical encoding is hashed in place through
// b's spare capacity, so a caller reusing a scratch buffer fingerprints
// with zero allocations.
func (s *Spec) AppendFingerprint(b []byte) []byte {
	b = append(b, s.Workload...)
	b = append(b, "-b"...)
	b = strconv.AppendInt(b, s.Batch, 10)
	b = append(b, "-n"...)
	b = strconv.AppendInt(b, int64(s.NumDevices()), 10)
	b = append(b, '-')
	mark := len(b)
	b = s.AppendCanonical(b)
	h := xrand.HashBytes(b[mark:])
	return xrand.AppendHex16(b[:mark], h)
}

// Generator builds Specs for one registered scenario name.
type Generator struct {
	// Name is the registry key.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// DefaultBatch is substituted when Build is called with batch 0.
	DefaultBatch int64
	// DefaultDevices is substituted when Build is called with devices 0.
	DefaultDevices int
	// Make produces the spec at a resolved batch size and device count.
	Make func(batch int64, devices int) (Spec, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Generator{}
)

// Register installs a generator; re-registering a name is a programming
// error and panics.
func Register(g Generator) {
	if g.Name == "" || g.Make == nil {
		panic("scenario: generator needs a name and a Make func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[g.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate generator %q", g.Name))
	}
	registry[g.Name] = g
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the generator registered under name.
func Lookup(name string) (Generator, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	g, ok := registry[name]
	return g, ok
}

// Build resolves a registered scenario name into a validated Spec.
// batch 0 and devices 0 select the generator's defaults, so callers can
// override either axis independently (e.g. run "dlrm-criteo-4gpu" at 8
// devices, or "cnn-resnet50" at batch 64).
func Build(name string, batch int64, devices int) (Spec, error) {
	g, ok := Lookup(name)
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	if batch == 0 {
		batch = g.DefaultBatch
	}
	if devices == 0 {
		devices = g.DefaultDevices
	}
	s, err := g.Make(batch, devices)
	if err != nil {
		return Spec{}, err
	}
	s.Name = name
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// family registers a plain workload-family generator plus its
// multi-GPU presets (name-2gpu, name-4gpu).
func family(name, desc, workloadName string, defaultBatch int64, tables func() []workload.TableSpec) {
	mk := func(batch int64, devices int) (Spec, error) {
		s := Spec{Workload: workloadName, Batch: batch, Devices: devices}
		if tables != nil {
			s.Tables = tables()
		}
		return s, nil
	}
	Register(Generator{Name: name, Description: desc,
		DefaultBatch: defaultBatch, DefaultDevices: 1, Make: mk})
	for _, n := range []int{2, 4} {
		Register(Generator{
			Name:           fmt.Sprintf("%s-%dgpu", name, n),
			Description:    fmt.Sprintf("%s, hybrid-parallel across %d devices", desc, n),
			DefaultBatch:   defaultBatch,
			DefaultDevices: n,
			Make:           mk,
		})
	}
}

func init() {
	family("dlrm-default", "DLRM_default (Table III): 8x1M tables, D=64, L=64",
		models.NameDLRMDefault, 2048, nil)
	family("dlrm-ddp", "DLRM_DDP (Table III): 8x80k tables, D=128, L=80",
		models.NameDLRMDDP, 2048, nil)
	family("dlrm-criteo", "DLRM_MLPerf over the 26-table Criteo Kaggle cardinality profile",
		models.NameDLRMMLPerf, 2048, workload.CriteoLikeTables)
	family("dlrm-uniform", "DLRM_default over 8 uniform 1M-row tables (benchmark synthetic input)",
		models.NameDLRMDefault, 2048,
		func() []workload.TableSpec { return workload.UniformTables(8, 1_000_000, 64) })
	family("cnn-resnet50", "ResNet-50 training iteration (data-parallel when multi-GPU)",
		models.NameResNet50, 32, nil)
	family("cnn-inception", "Inception-V3 training iteration (data-parallel when multi-GPU)",
		models.NameInceptionV3, 32, nil)
}
