package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The split stream must not replay the parent stream.
	parent := make([]uint64, 50)
	for i := range parent {
		parent[i] = r.Uint64()
	}
	for i := 0; i < 50; i++ {
		v := s.Uint64()
		for _, p := range parent {
			if v == p {
				t.Fatalf("split stream collided with parent at step %d", i)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMeanCV(t *testing.T) {
	r := New(17)
	const n = 400000
	wantMean, cv := 8.0, 0.4
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.LogNormalMeanCV(wantMean, cv)
		if v <= 0 {
			t.Fatalf("lognormal produced non-positive value %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-wantMean)/wantMean > 0.02 {
		t.Errorf("lognormal mean = %v, want ~%v", mean, wantMean)
	}
	if math.Abs(std/mean-cv)/cv > 0.05 {
		t.Errorf("lognormal cv = %v, want ~%v", std/mean, cv)
	}
}

func TestLogNormalMeanCVDegenerate(t *testing.T) {
	r := New(19)
	if got := r.LogNormalMeanCV(0, 0.5); got != 0 {
		t.Errorf("mean 0 should return 0, got %v", got)
	}
	if got := r.LogNormalMeanCV(5, 0); got != 5 {
		t.Errorf("cv 0 should return mean, got %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfUniformWhenSkewZero(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 1000, 1.0)
	top10 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if z.Next() < 10 {
			top10++
		}
	}
	frac := float64(top10) / n
	if frac < 0.3 {
		t.Errorf("zipf(1.0) top-10 mass = %v, want > 0.3", frac)
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 17, 0.8)
	if z.N() != 17 {
		t.Fatalf("N = %d, want 17", z.N())
	}
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 17 {
			t.Fatalf("Zipf.Next out of range: %d", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(1)
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(r, tc.n, tc.s)
		}()
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(41)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestHashStringStableAndDistinct(t *testing.T) {
	// The value is pinned: engine asset seeds depend on it, so changing
	// the hash silently re-seeds every per-device calibration stream.
	if got := HashString("V100"); got != 15833220653259277578 {
		t.Fatalf("HashString(V100) = %d, want 15833220653259277578", got)
	}
	if HashString("") != 1469598103934665603 {
		t.Fatal("empty-label hash must be the FNV-1a offset basis")
	}
	seen := map[uint64]string{}
	for _, s := range []string{"V100", "TITAN Xp", "P100", "DLRM_default", "DLRM_MLPerf"} {
		if prev, ok := seen[HashString(s)]; ok {
			t.Fatalf("hash collision between %q and %q", prev, s)
		}
		seen[HashString(s)] = s
	}
}

func TestZipfStreamMatchesInlineLoop(t *testing.T) {
	z := NewZipf(New(2022), 48, 1.1)
	want := make([]int, 200)
	for i := range want {
		want[i] = z.Next()
	}
	got := ZipfStream(New(2022), 48, 1.1, 200)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ZipfStream[%d] = %d, inline loop drew %d", i, got[i], want[i])
		}
	}
}
