// Package xrand provides a small, fully deterministic random number
// generator and the samplers used across the simulator and workload
// generators. Every stochastic component in this repository draws from an
// explicitly seeded *Rand so that all experiments are reproducible.
//
// The core generator is splitmix64, which is tiny, fast, passes BigCrush,
// and — unlike math/rand's global state — makes seed plumbing explicit.
package xrand

import "math"

// Rand is a deterministic pseudo-random generator based on splitmix64.
// The zero value is a valid generator seeded with 0; prefer New to make
// seeding explicit.
type Rand struct {
	state uint64
	// cached spare normal variate for Box-Muller.
	hasSpare bool
	spare    float64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives a new independent generator from r. The derived stream is
// decorrelated from r's by an extra mixing step, which lets callers hand
// out per-component generators without sharing state.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// HashString folds a label into a 64-bit stream salt (FNV-1a). It is
// how named components — one calibration per device, one sweep per
// kernel family — derive decorrelated seeds from a shared base seed
// without any ordering dependence: stream(seed, label) = seed +
// HashString(label).
func HashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// HashBytes is HashString over a byte slice: the same FNV-1a fold, so
// HashBytes(b) == HashString(string(b)) without the conversion
// allocation. Hot cache-key builders hash scratch buffers through it.
func HashBytes(b []byte) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * 1099511628211
	}
	return h
}

// AppendHex16 appends v as 16 zero-padded lowercase hex digits — the
// %016x rendering cache keys embed hashes with, shared here so every
// key builder renders hashes identically.
func AppendHex16(b []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	var t [16]byte
	for i := 15; i >= 0; i-- {
		t[i] = digits[v&0xf]
		v >>= 4
	}
	return append(b, t[:]...)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// LogNormal returns a variate whose logarithm is Normal(mu, sigma).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// LogNormalMeanCV returns a log-normal variate parameterized by its
// arithmetic mean and coefficient of variation (std/mean). This is the
// natural parameterization for host-overhead distributions, where we know
// the target mean (e.g., "T1 averages 8 µs") and the relative spread.
func (r *Rand) LogNormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return r.LogNormal(mu, math.Sqrt(sigma2))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the n elements addressed by swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the CDF, so construct once and sample many
// times. A skew s of 0 degenerates to the uniform distribution.
type Zipf struct {
	cdf []float64
	rng *Rand
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s >= 0, drawing
// randomness from rng. It panics if n <= 0 or s < 0.
func NewZipf(rng *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative skew")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the support size of the sampler.
func (z *Zipf) N() int { return len(z.cdf) }

// ZipfStream draws length indices in [0, n) from a fresh Zipf(s)
// sampler over rng — the skewed access stream the asset-store
// benchmark and the explore benchmark workloads share. It is exactly
// NewZipf(rng, n, s) followed by length Next calls, so a caller that
// previously inlined that loop sees bit-identical draws.
func ZipfStream(rng *Rand, n int, s float64, length int) []int {
	z := NewZipf(rng, n, s)
	stream := make([]int, length)
	for i := range stream {
		stream[i] = z.Next()
	}
	return stream
}

// Next samples one value in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
