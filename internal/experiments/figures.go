package experiments

import (
	"sort"

	"dlrmperf/internal/export"
	"dlrmperf/internal/models"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/trace"
)

// --- Fig. 1: GPU utilization of six models ---------------------------------

// Fig01Row is one bar of Fig. 1.
type Fig01Row struct {
	Model       string
	Batch       int64
	Utilization float64
	IterTime    float64 // µs
}

// Fig01 measures GPU utilization of the six models on V100, over the
// batch ranges the paper plots.
func (s *Suite) Fig01() ([]Fig01Row, error) {
	type cfg struct {
		model   string
		batches []int64
	}
	cfgs := []cfg{
		{models.NameDLRMDefault, s.opts.DLRMBatches},
		{models.NameDLRMMLPerf, s.opts.DLRMBatches},
		{models.NameDLRMDDP, s.opts.DLRMBatches},
		{models.NameResNet50, s.opts.CNNBatches},
		{models.NameInceptionV3, s.opts.CNNBatches},
		{models.NameTransformer, []int64{64, 128, 256, 512}},
	}
	var rows []Fig01Row
	for _, c := range cfgs {
		for _, b := range c.batches {
			r, err := s.Run("V100", c.model, b, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig01Row{
				Model: c.model, Batch: b,
				Utilization: r.Trace.Utilization(),
				IterTime:    r.MeanIterTime,
			})
		}
	}
	return rows, nil
}

// RenderFig01 renders Fig. 1 as a table.
func RenderFig01(rows []Fig01Row) string {
	t := export.NewTable("Fig 1: GPU utilization of per-batch training time (V100)",
		"model", "batch", "utilization", "iter_time")
	for _, r := range rows {
		t.AddRow(r.Model, r.Batch, export.PctAbs(r.Utilization), export.Ms(r.IterTime))
	}
	return t.Render()
}

// --- Fig. 5: device time breakdown ------------------------------------------

// Fig05Result is the breakdown for one DLRM model.
type Fig05Result struct {
	Model   string
	Batch   int64
	Entries []trace.BreakdownEntry
}

// Fig05 computes the device-time breakdown of the three DLRM models at
// batch 2048 on V100, idle time included.
func (s *Suite) Fig05() ([]Fig05Result, error) {
	var out []Fig05Result
	for _, model := range models.DLRMNames() {
		r, err := s.Run("V100", model, 2048, false)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig05Result{
			Model: model, Batch: 2048,
			Entries: r.Trace.Breakdown(0.005),
		})
	}
	return out, nil
}

// RenderFig05 renders the breakdowns.
func RenderFig05(res []Fig05Result) string {
	out := ""
	for _, r := range res {
		t := export.NewTable("Fig 5: device time breakdown — "+r.Model+" (B=2048, V100)",
			"op", "time", "share")
		for _, e := range r.Entries {
			t.AddRow(e.Op, export.Us(e.Time), export.PctAbs(e.Share))
		}
		out += t.Render() + "\n"
	}
	return out
}

// --- Fig. 7: T1 overhead stability -------------------------------------------

// Fig07Row is the T1 statistic of one (model, batch) cell.
type Fig07Row struct {
	Model string
	Batch int64
	Mean  float64
	Std   float64
}

// Fig07 extracts T1 statistics per model and batch size on V100, the
// model/size-independence evidence.
func (s *Suite) Fig07() ([]Fig07Row, error) {
	var rows []Fig07Row
	for _, model := range models.DLRMNames() {
		for _, b := range s.opts.DLRMBatches {
			r, err := s.Run("V100", model, b, true)
			if err != nil {
				return nil, err
			}
			db := overhead.FromTrace(r.Trace)
			rows = append(rows, Fig07Row{Model: model, Batch: b, Mean: db.T1.Mean, Std: db.T1.Std})
		}
	}
	return rows, nil
}

// RenderFig07 renders the T1 table.
func RenderFig07(rows []Fig07Row) string {
	t := export.NewTable("Fig 7: T1 overhead mean/std across models and batch sizes (V100)",
		"model", "batch", "mean_us", "std_us")
	for _, r := range rows {
		t.AddRow(r.Model, r.Batch, r.Mean, r.Std)
	}
	return t.Render()
}

// --- Fig. 8: per-op T2/T3/T5 overheads -----------------------------------------

// Fig08Row is one (op, model) cell of one overhead type.
type Fig08Row struct {
	Type  string // T2 | T3 | T5
	Op    string
	Model string
	Mean  float64
	Std   float64
}

// Fig08 extracts T2/T3/T5 statistics for the ten most device-dominating
// ops of each DLRM model on V100.
func (s *Suite) Fig08() ([]Fig08Row, error) {
	var rows []Fig08Row
	for _, model := range models.DLRMNames() {
		// Determine the ten most dominating ops from the breakdown.
		meas, err := s.Run("V100", model, 2048, false)
		if err != nil {
			return nil, err
		}
		var topOps []string
		for _, e := range meas.Trace.Breakdown(0) {
			if e.Op == "Idle" || e.Op == "others" {
				continue
			}
			topOps = append(topOps, e.Op)
			if len(topOps) == 10 {
				break
			}
		}
		db, err := s.OverheadDB("V100", model)
		if err != nil {
			return nil, err
		}
		for _, op := range topOps {
			st, ok := db.PerOp[op]
			if !ok {
				continue
			}
			for t, name := range []string{"T2", "T3", "T5"} {
				if st[t].N == 0 {
					continue
				}
				rows = append(rows, Fig08Row{
					Type: name, Op: op, Model: model,
					Mean: st[t].Mean, Std: st[t].Std,
				})
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Type != rows[j].Type {
			return rows[i].Type < rows[j].Type
		}
		return rows[i].Op < rows[j].Op
	})
	return rows, nil
}

// RenderFig08 renders the per-op overhead table.
func RenderFig08(rows []Fig08Row) string {
	t := export.NewTable("Fig 8: T2/T3/T5 overheads of dominating ops (V100)",
		"type", "op", "model", "mean_us", "std_us")
	for _, r := range rows {
		t.AddRow(r.Type, r.Op, r.Model, r.Mean, r.Std)
	}
	return t.Render()
}
