// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section IV) plus the co-design case studies of
// Section V. Each driver returns structured results and can render the
// paper's artifact as a text table; the root-level benchmarks and
// cmd/experiments regenerate everything from here.
//
// A Suite memoizes the expensive assets — kernel-model calibrations,
// measured workload runs, overhead databases — so that drivers compose
// without recomputation and every result is deterministic in the seed.
package experiments

import (
	"fmt"
	"sync"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/sim"
)

// Options scopes a Suite.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Devices are the evaluation platforms (default: all three).
	Devices []string
	// DLRMBatches are the DLRM batch sizes (default 512..4096).
	DLRMBatches []int64
	// CNNBatches are the CNN batch sizes of Fig. 10 (default 16/32/64).
	CNNBatches []int64
	// Iters is the measured-run iteration count (default 30).
	Iters int
	// Calib overrides calibration options (Seed is always taken from
	// Options.Seed).
	Calib perfmodel.CalibOptions
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 2022
	}
	if len(o.Devices) == 0 {
		o.Devices = hw.Names()
	}
	if len(o.DLRMBatches) == 0 {
		o.DLRMBatches = []int64{512, 1024, 2048, 4096}
	}
	if len(o.CNNBatches) == 0 {
		o.CNNBatches = []int64{16, 32, 64}
	}
	if o.Iters == 0 {
		o.Iters = 30
	}
	return o
}

// Suite memoizes experiment assets.
type Suite struct {
	opts Options

	mu     sync.Mutex
	cals   map[string]*perfmodel.Calibration // device -> calibration (with CNN)
	runs   map[string]*sim.Result            // device/model/batch/profiled -> run
	dbs    map[string]*overhead.DB           // device/model -> individual overhead DB
	shared map[string]*overhead.DB           // device -> shared DB
	models map[string]*models.Model          // model/batch -> built graph
}

// NewSuite returns a Suite with the given options.
func NewSuite(opts Options) *Suite {
	return &Suite{
		opts:   opts.withDefaults(),
		cals:   map[string]*perfmodel.Calibration{},
		runs:   map[string]*sim.Result{},
		dbs:    map[string]*overhead.DB{},
		shared: map[string]*overhead.DB{},
		models: map[string]*models.Model{},
	}
}

// Options returns the resolved options.
func (s *Suite) Options() Options { return s.opts }

// model returns the memoized built model.
func (s *Suite) model(name string, batch int64) (*models.Model, error) {
	key := fmt.Sprintf("%s/%d", name, batch)
	s.mu.Lock()
	m, ok := s.models[key]
	s.mu.Unlock()
	if ok {
		return m, nil
	}
	m, err := models.Build(name, batch)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.models[key] = m
	s.mu.Unlock()
	return m, nil
}

// Calibration returns the memoized kernel-model calibration for a device
// (always including the CNN extension so Fig. 10 composes).
func (s *Suite) Calibration(device string) (*perfmodel.Calibration, error) {
	s.mu.Lock()
	c, ok := s.cals[device]
	s.mu.Unlock()
	if ok {
		return c, nil
	}
	p, err := hw.ByName(device)
	if err != nil {
		return nil, err
	}
	opt := s.opts.Calib
	opt.Seed = s.opts.Seed + devSalt(device)
	opt.IncludeCNN = true
	c = perfmodel.Calibrate(p.GPU, opt)
	s.mu.Lock()
	s.cals[device] = c
	s.mu.Unlock()
	return c, nil
}

func devSalt(device string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(device); i++ {
		h = (h ^ uint64(device[i])) * 1099511628211
	}
	return h
}

// Run returns the memoized measured (or profiled) run of model at batch
// on device.
func (s *Suite) Run(device, model string, batch int64, profiled bool) (*sim.Result, error) {
	key := fmt.Sprintf("%s/%s/%d/%v", device, model, batch, profiled)
	s.mu.Lock()
	r, ok := s.runs[key]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	p, err := hw.ByName(device)
	if err != nil {
		return nil, err
	}
	m, err := s.model(model, batch)
	if err != nil {
		return nil, err
	}
	seed := s.opts.Seed*3 + devSalt(device) + uint64(batch)
	if profiled {
		seed += 17
	}
	r = sim.Run(m.Graph, sim.Config{
		Platform: p, Seed: seed, Warmup: 5, Iters: s.opts.Iters,
		Profile: profiled, Workload: model,
	})
	s.mu.Lock()
	s.runs[key] = r
	s.mu.Unlock()
	return r, nil
}

// batchesFor returns the evaluation batch sizes of a model family.
func (s *Suite) batchesFor(model string) []int64 {
	switch model {
	case models.NameResNet50, models.NameInceptionV3:
		return s.opts.CNNBatches
	case models.NameTransformer:
		return []int64{64, 128, 256}
	}
	return s.opts.DLRMBatches
}

// OverheadDB returns the individual-workload overhead database for one
// model on one device, pooled over all evaluated batch sizes (the
// paper's per-workload overhead statistics).
func (s *Suite) OverheadDB(device, model string) (*overhead.DB, error) {
	key := device + "/" + model
	s.mu.Lock()
	db, ok := s.dbs[key]
	s.mu.Unlock()
	if ok {
		return db, nil
	}
	c := overhead.NewCollector()
	for _, b := range s.batchesFor(model) {
		r, err := s.Run(device, model, b, true)
		if err != nil {
			return nil, err
		}
		c.Add(r.Trace)
	}
	db = c.Finish()
	s.mu.Lock()
	s.dbs[key] = db
	s.mu.Unlock()
	return db, nil
}

// SharedOverheadDB pools overhead samples across all DLRM workloads on a
// device (the shared_E2E variant of Fig. 9).
func (s *Suite) SharedOverheadDB(device string) (*overhead.DB, error) {
	s.mu.Lock()
	db, ok := s.shared[device]
	s.mu.Unlock()
	if ok {
		return db, nil
	}
	c := overhead.NewCollector()
	for _, model := range models.DLRMNames() {
		for _, b := range s.opts.DLRMBatches {
			r, err := s.Run(device, model, b, true)
			if err != nil {
				return nil, err
			}
			c.Add(r.Trace)
		}
	}
	db = c.Finish()
	s.mu.Lock()
	s.shared[device] = db
	s.mu.Unlock()
	return db, nil
}

// Predictor builds the paper's predictor for a device with the given
// overhead database.
func (s *Suite) Predictor(device string, db *overhead.DB) (*predict.Predictor, error) {
	cal, err := s.Calibration(device)
	if err != nil {
		return nil, err
	}
	return predict.New(cal.Registry, db), nil
}
