// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section IV) plus the co-design case studies of
// Section V. Each driver returns structured results and can render the
// paper's artifact as a text table; the root-level benchmarks and
// cmd/experiments regenerate everything from here.
//
// A Suite is a thin view over the concurrent calibration engine
// (internal/engine), which owns the expensive assets — kernel-model
// calibrations, measured workload runs, overhead databases — so that
// drivers compose without recomputation, concurrent drivers never
// calibrate a device twice, and every result is deterministic in the
// seed.
package experiments

import (
	"dlrmperf/internal/engine"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/sim"
	"dlrmperf/internal/xrand"
)

// Options scopes a Suite.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Devices are the evaluation platforms (default: all three).
	Devices []string
	// DLRMBatches are the DLRM batch sizes (default 512..4096).
	DLRMBatches []int64
	// CNNBatches are the CNN batch sizes of Fig. 10 (default 16/32/64).
	CNNBatches []int64
	// Iters is the measured-run iteration count (default 30).
	Iters int
	// Calib overrides calibration options (Seed is always taken from
	// Options.Seed).
	Calib perfmodel.CalibOptions
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 2022
	}
	if len(o.Devices) == 0 {
		o.Devices = hw.Names()
	}
	if len(o.DLRMBatches) == 0 {
		o.DLRMBatches = []int64{512, 1024, 2048, 4096}
	}
	if len(o.CNNBatches) == 0 {
		o.CNNBatches = []int64{16, 32, 64}
	}
	if o.Iters == 0 {
		o.Iters = 30
	}
	return o
}

// Suite runs experiment drivers against a shared asset engine.
type Suite struct {
	opts Options
	eng  *engine.Engine
}

// NewSuite returns a Suite with the given options.
func NewSuite(opts Options) *Suite {
	o := opts.withDefaults()
	calib := o.Calib
	// Always include the CNN extension so Fig. 10 composes.
	calib.IncludeCNN = true
	return &Suite{
		opts: o,
		eng: engine.New(engine.Options{
			Seed:            o.Seed,
			SaltDeviceSeeds: true,
			Calib:           calib,
			DLRMBatches:     o.DLRMBatches,
			CNNBatches:      o.CNNBatches,
			Iters:           o.Iters,
		}),
	}
}

// Options returns the resolved options.
func (s *Suite) Options() Options { return s.opts }

// Engine exposes the suite's asset engine, so callers can warm-start it
// or share it with a prediction service.
func (s *Suite) Engine() *engine.Engine { return s.eng }

// devSalt is the per-device seed salt (shared with the engine so every
// historical figure reproduces).
func devSalt(device string) uint64 { return xrand.HashString(device) }

// model returns the memoized built model.
func (s *Suite) model(name string, batch int64) (*models.Model, error) {
	return s.eng.Model(name, batch)
}

// Calibration returns the memoized kernel-model calibration for a device
// (always including the CNN extension so Fig. 10 composes).
func (s *Suite) Calibration(device string) (*perfmodel.Calibration, error) {
	return s.eng.Calibration(device)
}

// Run returns the memoized measured (or profiled) run of model at batch
// on device.
func (s *Suite) Run(device, model string, batch int64, profiled bool) (*sim.Result, error) {
	return s.eng.Run(device, model, batch, profiled)
}

// OverheadDB returns the individual-workload overhead database for one
// model on one device, pooled over all evaluated batch sizes (the
// paper's per-workload overhead statistics).
func (s *Suite) OverheadDB(device, model string) (*overhead.DB, error) {
	return s.eng.OverheadDB(device, model)
}

// SharedOverheadDB pools overhead samples across all DLRM workloads on a
// device (the shared_E2E variant of Fig. 9).
func (s *Suite) SharedOverheadDB(device string) (*overhead.DB, error) {
	return s.eng.SharedOverheadDB(device)
}

// Predictor builds the paper's predictor for a device with the given
// overhead database.
func (s *Suite) Predictor(device string, db *overhead.DB) (*predict.Predictor, error) {
	return s.eng.Predictor(device, db)
}
