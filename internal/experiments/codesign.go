package experiments

import (
	"sort"

	"dlrmperf/internal/export"
	"dlrmperf/internal/graph"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/models"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/sim"
	"dlrmperf/internal/stats"
)

// --- Fig. 11 / Section V-A(b): op fusion ---------------------------------------

// Fig11Row evaluates the embedding-bag fusion what-if at one batch size:
// the predictor forecasts the speedup of replacing per-table
// embedding_bag ops with one batched lookup, without running the fused
// model; the simulator then validates the forecast.
type Fig11Row struct {
	Batch int64
	// Predicted per-batch times, µs.
	PredUnfused, PredFused float64
	// Measured per-batch times, µs.
	MeasUnfused, MeasFused float64
	// PredictedSpeedup and MeasuredSpeedup are unfused/fused ratios.
	PredictedSpeedup, MeasuredSpeedup float64
}

// Fig11 runs the op-fusion co-design study on V100 with DLRM_default's
// embedding configuration.
func (s *Suite) Fig11() ([]Fig11Row, error) {
	p, err := hw.ByName(hw.V100)
	if err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for _, b := range s.opts.DLRMBatches {
		cfg := models.DLRMDefaultConfig(b)
		cfg.FusedEmbedding = false
		unfused, err := models.BuildDLRM(cfg)
		if err != nil {
			return nil, err
		}
		// Measure + extract overheads from the unfused model only: the
		// whole point is that the fused variant never runs.
		meas := sim.Run(unfused.Graph, sim.Config{
			Platform: p, Seed: s.opts.Seed + 301 + uint64(b), Warmup: 5,
			Iters: s.opts.Iters, Workload: unfused.Name,
		})
		prof := sim.Run(unfused.Graph, sim.Config{
			Platform: p, Seed: s.opts.Seed + 303 + uint64(b), Warmup: 5,
			Iters: s.opts.Iters, Profile: true, Workload: unfused.Name,
		})
		db := overhead.FromTrace(prof.Trace)
		pred, err := s.Predictor(hw.V100, db)
		if err != nil {
			return nil, err
		}
		prUnfused, err := pred.Predict(unfused.Graph)
		if err != nil {
			return nil, err
		}

		// Transform the execution graph: all embedding_bag ops + their
		// concat collapse into one batched lookup (the forward pass; the
		// backward bags fuse symmetrically).
		fusedModel := unfused.Clone()
		ids := models.EmbeddingBagNodes(fusedModel)
		fusedFwd := ops.EmbeddingLookup{Rows: cfg.EmbRows, L: cfg.Lookups, D: cfg.EmbDim, ZipfSkew: cfg.ZipfSkew}
		if _, err := fusedModel.Graph.ReplaceNodes(ids, fusedFwd); err != nil {
			return nil, err
		}
		var bwdIDs []graph.NodeID
		for _, n := range fusedModel.Graph.Nodes {
			if n.Op.Name() == "EmbeddingBagBackward0" {
				bwdIDs = append(bwdIDs, n.ID)
			}
		}
		if len(bwdIDs) > 0 {
			fusedBwd := fusedFwd
			fusedBwd.Backward = true
			if _, err := fusedModel.Graph.ReplaceNodes(bwdIDs, fusedBwd); err != nil {
				return nil, err
			}
		}
		prFused, err := pred.Predict(fusedModel.Graph)
		if err != nil {
			return nil, err
		}

		// Validation run of the fused graph.
		measFused := sim.Run(fusedModel.Graph, sim.Config{
			Platform: p, Seed: s.opts.Seed + 307 + uint64(b), Warmup: 5,
			Iters: s.opts.Iters, Workload: unfused.Name,
		})

		rows = append(rows, Fig11Row{
			Batch:            b,
			PredUnfused:      prUnfused.E2E,
			PredFused:        prFused.E2E,
			MeasUnfused:      meas.MeanIterTime,
			MeasFused:        measFused.MeanIterTime,
			PredictedSpeedup: prUnfused.E2E / prFused.E2E,
			MeasuredSpeedup:  meas.MeanIterTime / measFused.MeanIterTime,
		})
	}
	return rows, nil
}

// RenderFig11 renders the fusion study.
func RenderFig11(rows []Fig11Row) string {
	t := export.NewTable("Fig 11: embedding-bag fusion what-if (DLRM_default, V100)",
		"batch", "pred_unfused", "pred_fused", "pred_speedup",
		"meas_unfused", "meas_fused", "meas_speedup")
	for _, r := range rows {
		t.AddRow(r.Batch, export.Ms(r.PredUnfused), export.Ms(r.PredFused),
			ratio(r.PredictedSpeedup), export.Ms(r.MeasUnfused), export.Ms(r.MeasFused),
			ratio(r.MeasuredSpeedup))
	}
	return t.Render()
}

func ratio(v float64) string { return export.PctAbs(v-1) + " faster" }

// --- Section V-A(c): embedding-table sharding load balance ---------------------

// ShardingScheme is one table-to-device assignment evaluated by the
// predictor.
type ShardingScheme struct {
	Name string
	// PerDevice is the predicted embedding time per device, µs.
	PerDevice []float64
	// Makespan is the max per-device time (the step's critical device).
	Makespan float64
}

// Sharding evaluates table-sharding schemes for a heterogeneous 16-table
// embedding layer split across nDevices V100s, using only the kernel
// performance model — no workload ever runs.
func (s *Suite) Sharding(nDevices int) ([]ShardingScheme, error) {
	cal, err := s.Calibration(hw.V100)
	if err != nil {
		return nil, err
	}
	elModel := cal.Registry.Model(kernels.KindEmbeddingFwd)

	// A skewed table population: a few huge, hot tables (large pooling
	// factors), many small, cold ones — the shape of production models
	// where naive sharding loses.
	type table struct {
		rows    int64
		lookups int64
	}
	tables := []table{
		{14_000_000, 64}, {11_000_000, 32}, {8_000_000, 32}, {4_000_000, 16},
		{1_000_000, 16}, {1_000_000, 10}, {500_000, 10}, {500_000, 8},
		{200_000, 8}, {200_000, 4}, {100_000, 4}, {100_000, 2},
		{50_000, 2}, {50_000, 1}, {20_000, 1}, {20_000, 1},
	}
	const batch, dim = 2048, 64

	cost := func(t table) float64 {
		return elModel.Predict(kernels.Embedding{
			B: batch, E: t.rows, T: 1, L: t.lookups, D: dim,
		})
	}

	assignRoundRobin := func() [][]table {
		out := make([][]table, nDevices)
		for i, t := range tables {
			out[i%nDevices] = append(out[i%nDevices], t)
		}
		return out
	}
	assignBySize := func() [][]table {
		// Contiguous chunks of the size-sorted list: the naive scheme
		// that overloads whichever device gets the big tables.
		sorted := append([]table(nil), tables...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].rows > sorted[j].rows })
		out := make([][]table, nDevices)
		per := (len(sorted) + nDevices - 1) / nDevices
		for i, t := range sorted {
			out[i/per] = append(out[i/per], t)
		}
		return out
	}
	assignGreedyLPT := func() [][]table {
		// Longest-processing-time-first onto the least-loaded device,
		// using *predicted* per-table cost — the paper's co-design use.
		sorted := append([]table(nil), tables...)
		sort.Slice(sorted, func(i, j int) bool { return cost(sorted[i]) > cost(sorted[j]) })
		out := make([][]table, nDevices)
		load := make([]float64, nDevices)
		for _, t := range sorted {
			best := 0
			for d := 1; d < nDevices; d++ {
				if load[d] < load[best] {
					best = d
				}
			}
			out[best] = append(out[best], t)
			load[best] += cost(t)
		}
		return out
	}

	schemes := []struct {
		name   string
		assign func() [][]table
	}{
		{"chunked-by-size", assignBySize},
		{"round-robin", assignRoundRobin},
		{"greedy-predicted-LPT", assignGreedyLPT},
	}
	var out []ShardingScheme
	for _, sc := range schemes {
		assignment := sc.assign()
		res := ShardingScheme{Name: sc.name}
		for _, devTables := range assignment {
			t := 0.0
			for _, tb := range devTables {
				t += cost(tb)
			}
			res.PerDevice = append(res.PerDevice, t)
			if t > res.Makespan {
				res.Makespan = t
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderSharding renders the sharding study.
func RenderSharding(schemes []ShardingScheme) string {
	t := export.NewTable("Sharding: predicted embedding-lookup load balance (V100)",
		"scheme", "makespan", "per_device")
	for _, sc := range schemes {
		per := ""
		for i, v := range sc.PerDevice {
			if i > 0 {
				per += " / "
			}
			per += export.Us(v)
		}
		t.AddRow(sc.Name, export.Us(sc.Makespan), per)
	}
	return t.Render()
}

// --- Ablations -------------------------------------------------------------------

// AblationRow compares E2E error under a predictor variant.
type AblationRow struct {
	Variant string
	Model   string
	Batch   int64
	E2EErr  float64
}

// AblationOverheadPolicy quantifies two design choices of the prediction
// pipeline on V100: (a) IQR-trimming overhead samples versus using raw
// means — the paper attributes its systematic E2E underestimation to
// trimming the long tails; and (b) the 10 µs T4 constant versus measured
// per-runtime-function means.
func (s *Suite) AblationOverheadPolicy() ([]AblationRow, error) {
	var rows []AblationRow
	dev := hw.V100
	for _, model := range models.DLRMNames() {
		// Raw (untrimmed) overhead DB.
		raw := overhead.NewCollector()
		raw.TrimK = -1
		trimmed, err := s.OverheadDB(dev, model)
		if err != nil {
			return nil, err
		}
		for _, b := range s.opts.DLRMBatches {
			r, err := s.Run(dev, model, b, true)
			if err != nil {
				return nil, err
			}
			raw.Add(r.Trace)
		}
		rawDB := raw.Finish()

		predTrim, err := s.Predictor(dev, trimmed)
		if err != nil {
			return nil, err
		}
		predRaw, err := s.Predictor(dev, rawDB)
		if err != nil {
			return nil, err
		}
		predT4, err := s.Predictor(dev, trimmed)
		if err != nil {
			return nil, err
		}
		predT4.UseMeasuredT4 = true

		for _, b := range s.opts.DLRMBatches {
			meas, err := s.Run(dev, model, b, false)
			if err != nil {
				return nil, err
			}
			m, err := s.model(model, b)
			if err != nil {
				return nil, err
			}
			prTrim, err := predTrim.Predict(m.Graph)
			if err != nil {
				return nil, err
			}
			prRaw, err := predRaw.Predict(m.Graph)
			if err != nil {
				return nil, err
			}
			prT4, err := predT4.Predict(m.Graph)
			if err != nil {
				return nil, err
			}
			rows = append(rows,
				AblationRow{"trimmed (paper)", model, b, stats.RelErr(prTrim.E2E, meas.MeanIterTime)},
				AblationRow{"raw means", model, b, stats.RelErr(prRaw.E2E, meas.MeanIterTime)},
				AblationRow{"measured T4", model, b, stats.RelErr(prT4.E2E, meas.MeanIterTime)},
			)
		}
	}
	return rows, nil
}

// RenderAblation renders the ablation rows.
func RenderAblation(rows []AblationRow) string {
	t := export.NewTable("Ablation: overhead trimming and T4 policy (V100, signed E2E error)",
		"variant", "model", "batch", "e2e_err")
	for _, r := range rows {
		t.AddRow(r.Variant, r.Model, r.Batch, export.Pct(r.E2EErr))
	}
	return t.Render()
}
