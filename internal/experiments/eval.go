package experiments

import (
	"dlrmperf/internal/baselines"
	"dlrmperf/internal/export"
	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/stats"
)

// --- Table IV: kernel-model errors ------------------------------------------

// Table04Cell is one (kernel row, device) error summary.
type Table04Cell struct {
	Row     string
	Device  string
	Summary stats.ErrorSummary
}

// Table04 calibrates and evaluates every kernel performance model on
// every device.
func (s *Suite) Table04() ([]Table04Cell, error) {
	var out []Table04Cell
	for _, dev := range s.opts.Devices {
		cal, err := s.Calibration(dev)
		if err != nil {
			return nil, err
		}
		for _, row := range perfmodel.Table4Rows() {
			out = append(out, Table04Cell{Row: row, Device: dev, Summary: cal.Eval(row)})
		}
	}
	return out, nil
}

// RenderTable04 renders Table IV with devices as column groups.
func RenderTable04(cells []Table04Cell, devices []string) string {
	t := export.NewTable("Table IV: kernel execution-time prediction error",
		append([]string{"kernel"}, expandCols(devices)...)...)
	byRow := map[string]map[string]stats.ErrorSummary{}
	var rows []string
	for _, c := range cells {
		if byRow[c.Row] == nil {
			byRow[c.Row] = map[string]stats.ErrorSummary{}
			rows = append(rows, c.Row)
		}
		byRow[c.Row][c.Device] = c.Summary
	}
	for _, row := range rows {
		cellsOut := []any{row}
		for _, dev := range devices {
			sm := byRow[row][dev]
			cellsOut = append(cellsOut,
				export.PctAbs(sm.GMAE), export.PctAbs(sm.Mean), export.PctAbs(sm.Std))
		}
		t.AddRow(cellsOut...)
	}
	return t.Render()
}

func expandCols(devices []string) []string {
	var cols []string
	for _, d := range devices {
		cols = append(cols, d+" GMAE", d+" mean", d+" std")
	}
	return cols
}

// --- Fig. 9 / Table V: E2E prediction -----------------------------------------

// Fig09Row is one (device, model, batch) evaluation cell.
type Fig09Row struct {
	Device string
	Model  string
	Batch  int64
	// Measured per-batch time and device active time, µs.
	MeasuredIter, MeasuredActive float64
	// Signed relative errors.
	ActiveErr, E2EErr, SharedErr, KernelOnlyErr float64
}

// Fig09 runs the full E2E evaluation: per-cell measured iteration time,
// GPU-active prediction error, Algorithm 1 E2E error with individual and
// shared overheads, and the kernel-only baseline.
func (s *Suite) Fig09() ([]Fig09Row, error) {
	var rows []Fig09Row
	for _, dev := range s.opts.Devices {
		shared, err := s.SharedOverheadDB(dev)
		if err != nil {
			return nil, err
		}
		for _, model := range models.DLRMNames() {
			db, err := s.OverheadDB(dev, model)
			if err != nil {
				return nil, err
			}
			pred, err := s.Predictor(dev, db)
			if err != nil {
				return nil, err
			}
			sharedPred, err := s.Predictor(dev, shared)
			if err != nil {
				return nil, err
			}
			for _, b := range s.opts.DLRMBatches {
				meas, err := s.Run(dev, model, b, false)
				if err != nil {
					return nil, err
				}
				m, err := s.model(model, b)
				if err != nil {
					return nil, err
				}
				pr, err := pred.Predict(m.Graph)
				if err != nil {
					return nil, err
				}
				prShared, err := sharedPred.Predict(m.Graph)
				if err != nil {
					return nil, err
				}
				ko, err := pred.KernelOnly(m.Graph)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig09Row{
					Device: dev, Model: model, Batch: b,
					MeasuredIter:   meas.MeanIterTime,
					MeasuredActive: meas.MeanActiveTime,
					ActiveErr:      stats.RelErr(pr.Active, meas.MeanActiveTime),
					E2EErr:         stats.RelErr(pr.E2E, meas.MeanIterTime),
					SharedErr:      stats.RelErr(prShared.E2E, meas.MeanIterTime),
					KernelOnlyErr:  stats.RelErr(ko, meas.MeanIterTime),
				})
			}
		}
	}
	return rows, nil
}

// RenderFig09 renders the evaluation rows.
func RenderFig09(rows []Fig09Row) string {
	t := export.NewTable("Fig 9: E2E per-batch training time prediction",
		"device", "model", "batch", "iter", "active_err", "e2e_err", "shared_e2e_err", "kernel_only_err")
	for _, r := range rows {
		t.AddRow(r.Device, r.Model, r.Batch, export.Ms(r.MeasuredIter),
			export.Pct(r.ActiveErr), export.Pct(r.E2EErr),
			export.Pct(r.SharedErr), export.Pct(r.KernelOnlyErr))
	}
	return t.Render()
}

// Table05Row aggregates one error family on one platform (or Overall).
type Table05Row struct {
	Metric  string // Active | E2E | Shared E2E
	Device  string // platform name or "Overall"
	Geomean float64
	Min     float64
	Max     float64
}

// Table05 aggregates Fig. 9 rows into the paper's Table V.
func Table05(rows []Fig09Row) []Table05Row {
	metrics := []struct {
		name string
		get  func(Fig09Row) float64
	}{
		{"Active", func(r Fig09Row) float64 { return abs(r.ActiveErr) }},
		{"E2E", func(r Fig09Row) float64 { return abs(r.E2EErr) }},
		{"Shared E2E", func(r Fig09Row) float64 { return abs(r.SharedErr) }},
	}
	devices := []string{"Overall"}
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Device] {
			seen[r.Device] = true
			devices = append(devices, r.Device)
		}
	}
	var out []Table05Row
	for _, m := range metrics {
		for _, dev := range devices {
			var errs []float64
			for _, r := range rows {
				if dev == "Overall" || r.Device == dev {
					errs = append(errs, m.get(r))
				}
			}
			if len(errs) == 0 {
				continue
			}
			out = append(out, Table05Row{
				Metric: m.name, Device: dev,
				Geomean: stats.Geomean(errs),
				Min:     stats.Min(errs),
				Max:     stats.Max(errs),
			})
		}
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderTable05 renders Table V.
func RenderTable05(rows []Table05Row) string {
	t := export.NewTable("Table V: active and E2E prediction error statistics",
		"metric", "platform", "geomean", "min", "max")
	for _, r := range rows {
		t.AddRow(r.Metric, r.Device, export.PctAbs(r.Geomean), export.PctAbs(r.Min), export.PctAbs(r.Max))
	}
	return t.Render()
}

// --- Fig. 10: CNN comparison against Habitat and MLPredict ---------------------

// Fig10Row is one comparison cell.
type Fig10Row struct {
	Device string
	Model  string
	Batch  int64
	// Measured per-batch time, µs.
	Measured float64
	// Signed relative errors of the three predictors.
	Ours, Habitat, MLPredict float64
}

// Fig10 compares the paper's predictor against the Habitat-like and
// MLPredict-like baselines on ResNet-50 and Inception-V3.
func (s *Suite) Fig10() ([]Fig10Row, error) {
	var rows []Fig10Row
	cnnModels := []string{models.NameResNet50, models.NameInceptionV3}
	for _, dev := range s.opts.Devices {
		p, err := hw.ByName(dev)
		if err != nil {
			return nil, err
		}
		// Habitat scales from a different base GPU.
		baseName := hw.V100
		if dev == hw.V100 {
			baseName = hw.P100
		}
		base, err := hw.ByName(baseName)
		if err != nil {
			return nil, err
		}
		mlpred := baselines.TrainMLPredict(p, s.opts.Seed+devSalt(dev)+5)

		for _, model := range cnnModels {
			// Individual CNN overheads for our predictor.
			db, err := s.OverheadDB(dev, model)
			if err != nil {
				return nil, err
			}
			pred, err := s.Predictor(dev, db)
			if err != nil {
				return nil, err
			}
			for _, b := range s.opts.CNNBatches {
				meas, err := s.Run(dev, model, b, false)
				if err != nil {
					return nil, err
				}
				m, err := s.model(model, b)
				if err != nil {
					return nil, err
				}
				pr, err := pred.Predict(m.Graph)
				if err != nil {
					return nil, err
				}
				hab := &baselines.Habitat{Base: base, Target: p, Seed: s.opts.Seed + 91}
				habPred := hab.Predict(m.Graph, model)
				mlPred := mlpred.Predict(m.Graph)
				rows = append(rows, Fig10Row{
					Device: dev, Model: model, Batch: b,
					Measured:  meas.MeanIterTime,
					Ours:      stats.RelErr(pr.E2E, meas.MeanIterTime),
					Habitat:   stats.RelErr(habPred, meas.MeanIterTime),
					MLPredict: stats.RelErr(mlPred, meas.MeanIterTime),
				})
			}
		}
	}
	return rows, nil
}

// RenderFig10 renders the comparison.
func RenderFig10(rows []Fig10Row) string {
	t := export.NewTable("Fig 10: E2E prediction error on CNNs vs Habitat and MLPredict",
		"device", "model", "batch", "iter", "ours", "habitat", "mlpredict")
	for _, r := range rows {
		t.AddRow(r.Device, r.Model, r.Batch, export.Ms(r.Measured),
			export.Pct(r.Ours), export.Pct(r.Habitat), export.Pct(r.MLPredict))
	}
	return t.Render()
}
