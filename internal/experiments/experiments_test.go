package experiments

import (
	"strings"
	"sync"
	"testing"

	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/models"
	"dlrmperf/internal/perfmodel"
)

var (
	suiteOnce sync.Once
	suite     *Suite
)

// fastSuite is a V100-only suite with quarter-size sweeps: representative
// but quick enough for `go test`.
func fastSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		sizes := map[kernels.Kind]int{}
		for k, n := range microbench.DefaultSweepSizes() {
			sizes[k] = n / 4
			// The tril surface needs denser sampling after the backward
			// scatter penalty steepened it; the kernels are cheap.
			if k == kernels.KindTrilFwd || k == kernels.KindTrilBwd {
				sizes[k] = n
			}
		}
		suite = NewSuite(Options{
			Devices:     []string{"V100"},
			DLRMBatches: []int64{512, 2048},
			CNNBatches:  []int64{16},
			Iters:       15,
			Calib: perfmodel.CalibOptions{
				SweepSizes: sizes,
				Ensemble:   2,
				MLPConfig:  mlp.Config{HiddenLayers: 2, Width: 48, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 45, BatchSize: 64},
			},
		})
	})
	return suite
}

func TestFig01Shape(t *testing.T) {
	rows, err := fastSuite(t).Fig01()
	if err != nil {
		t.Fatal(err)
	}
	util := map[string]map[int64]float64{}
	for _, r := range rows {
		if util[r.Model] == nil {
			util[r.Model] = map[int64]float64{}
		}
		util[r.Model][r.Batch] = r.Utilization
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("%s B=%d utilization %v out of range", r.Model, r.Batch, r.Utilization)
		}
	}
	// DLRM has substantially lower utilization than the CNNs (Fig 1).
	if util[models.NameDLRMDefault][512] >= util[models.NameResNet50][16] {
		t.Error("DLRM utilization should be below ResNet-50's")
	}
	if util[models.NameResNet50][16] < 0.9 {
		t.Errorf("resnet utilization = %v", util[models.NameResNet50][16])
	}
	if util[models.NameDLRMDefault][512] >= util[models.NameDLRMDefault][2048] {
		t.Error("DLRM utilization should rise with batch size")
	}
	if !strings.Contains(RenderFig01(rows), "DLRM_default") {
		t.Error("render missing model name")
	}
}

func TestFig05Breakdown(t *testing.T) {
	res, err := fastSuite(t).Fig05()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("breakdowns = %d", len(res))
	}
	for _, r := range res {
		ops := map[string]bool{}
		total := 0.0
		for _, e := range r.Entries {
			ops[e.Op] = true
			total += e.Share
		}
		if !ops["Idle"] {
			t.Errorf("%s breakdown missing Idle", r.Model)
		}
		// Shares sum to ~1 (active + idle = iteration).
		if total < 0.95 || total > 1.05 {
			t.Errorf("%s shares sum to %v", r.Model, total)
		}
	}
	// Fig 5: embedding backward dominates DLRM_default and DLRM_DDP.
	for _, idx := range []int{0, 2} {
		found := false
		for i, e := range res[idx].Entries {
			if e.Op == "LookupFunctionBackward" && i < 6 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: LookupFunctionBackward not among top device-time ops", res[idx].Model)
		}
	}
}

func TestTable04AllRowsPresent(t *testing.T) {
	cells, err := fastSuite(t).Table04()
	if err != nil {
		t.Fatal(err)
	}
	want := len(perfmodel.Table4Rows())
	if len(cells) != want {
		t.Fatalf("cells = %d, want %d (V100 only)", len(cells), want)
	}
	for _, c := range cells {
		if c.Summary.N == 0 {
			t.Errorf("row %s empty", c.Row)
		}
	}
	out := RenderTable04(cells, []string{"V100"})
	if !strings.Contains(out, "EL-FHL") || !strings.Contains(out, "GEMM") {
		t.Error("render missing rows")
	}
}

func TestFig07T1Stability(t *testing.T) {
	rows, err := fastSuite(t).Fig07()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var lo, hi float64 = 1e9, 0
	for _, r := range rows {
		if r.Mean < lo {
			lo = r.Mean
		}
		if r.Mean > hi {
			hi = r.Mean
		}
	}
	// Fig 7: T1 means cluster across models and batch sizes.
	if hi/lo > 1.6 {
		t.Errorf("T1 means spread too wide: [%v, %v]", lo, hi)
	}
}

func TestFig08CoversTypesAndOps(t *testing.T) {
	rows, err := fastSuite(t).Fig08()
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	for _, r := range rows {
		types[r.Type]++
		if r.Mean < 0 {
			t.Errorf("negative overhead mean for %s/%s", r.Type, r.Op)
		}
	}
	for _, typ := range []string{"T2", "T3", "T5"} {
		if types[typ] == 0 {
			t.Errorf("no %s rows", typ)
		}
	}
}

func TestFig09AndTable05(t *testing.T) {
	rows, err := fastSuite(t).Fig09()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2 { // 3 models x 2 batches on V100
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.KernelOnlyErr >= 0 && r.Batch == 512 {
			t.Errorf("%s B=512 kernel-only error %v should be negative", r.Model, r.KernelOnlyErr)
		}
		if abs(r.E2EErr) > 0.3 {
			t.Errorf("%s B=%d E2E error %v too large", r.Model, r.Batch, r.E2EErr)
		}
		if abs(r.ActiveErr) > 0.2 {
			t.Errorf("%s B=%d active error %v too large", r.Model, r.Batch, r.ActiveErr)
		}
	}
	t5 := Table05(rows)
	var activeG, e2eG float64
	for _, row := range t5 {
		if row.Device != "Overall" {
			continue
		}
		switch row.Metric {
		case "Active":
			activeG = row.Geomean
		case "E2E":
			e2eG = row.Geomean
		}
	}
	// Table V: active-time prediction beats E2E prediction.
	if activeG >= e2eG {
		t.Errorf("active geomean %v should be below E2E %v", activeG, e2eG)
	}
	if e2eG > 0.2 {
		t.Errorf("E2E geomean %v too high", e2eG)
	}
}

func TestFig11FusionAgreement(t *testing.T) {
	rows, err := fastSuite(t).Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PredictedSpeedup <= 1 {
			t.Errorf("B=%d: no predicted fusion speedup (%v)", r.Batch, r.PredictedSpeedup)
		}
		if r.MeasuredSpeedup <= 1 {
			t.Errorf("B=%d: no measured fusion speedup (%v)", r.Batch, r.MeasuredSpeedup)
		}
		// The prediction tracks the measured speedup within a few points.
		if abs(r.PredictedSpeedup-r.MeasuredSpeedup) > 0.10 {
			t.Errorf("B=%d: predicted %.3f vs measured %.3f speedup", r.Batch, r.PredictedSpeedup, r.MeasuredSpeedup)
		}
	}
}

func TestShardingGreedyWins(t *testing.T) {
	schemes, err := fastSuite(t).Sharding(4)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ShardingScheme{}
	for _, sc := range schemes {
		byName[sc.Name] = sc
		if len(sc.PerDevice) != 4 {
			t.Errorf("%s has %d devices", sc.Name, len(sc.PerDevice))
		}
	}
	greedy := byName["greedy-predicted-LPT"].Makespan
	chunked := byName["chunked-by-size"].Makespan
	if greedy >= chunked {
		t.Errorf("greedy LPT (%v) should beat chunked-by-size (%v)", greedy, chunked)
	}
}

func TestAblationTrimmedUnderestimates(t *testing.T) {
	rows, err := fastSuite(t).AblationOverheadPolicy()
	if err != nil {
		t.Fatal(err)
	}
	// At B=512 the trimmed variant must sit below the raw-means variant
	// (the paper's underestimation mechanism).
	var trimmedSum, rawSum float64
	var n int
	for _, r := range rows {
		if r.Batch != 512 {
			continue
		}
		switch r.Variant {
		case "trimmed (paper)":
			trimmedSum += r.E2EErr
			n++
		case "raw means":
			rawSum += r.E2EErr
		}
	}
	if n == 0 {
		t.Fatal("no B=512 ablation rows")
	}
	if trimmedSum/float64(n) >= rawSum/float64(n) {
		t.Errorf("trimmed mean error %v should be below raw %v", trimmedSum/float64(n), rawSum/float64(n))
	}
}

func TestSuiteMemoization(t *testing.T) {
	s := fastSuite(t)
	a, err := s.Calibration("V100")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Calibration("V100")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("calibration not memoized")
	}
	r1, err := s.Run("V100", models.NameDLRMDefault, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("V100", models.NameDLRMDefault, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("runs not memoized")
	}
}

func TestSuiteUnknownDevice(t *testing.T) {
	s := NewSuite(Options{Devices: []string{"H100"}})
	if _, err := s.Calibration("H100"); err == nil {
		t.Fatal("unknown device accepted")
	}
}
