// Package workload generates the synthetic sparse-input streams that
// drive DLRM training: per-table categorical index sequences with
// configurable cardinality, pooling factor, and popularity skew. It
// stands in for the Criteo Kaggle dataset the paper trains DLRM_MLPerf
// on — for performance modeling only the index *distribution* matters,
// and these generators exercise the same cache-locality code paths.
//
// The package also provides the empirical locality analyses (working-set
// size, stack-distance-free reuse fractions) used to validate the
// ground-truth cache model and to estimate a ZipfSkew knob from a stream.
package workload

import (
	"fmt"
	"math"
	"sort"

	"dlrmperf/internal/xrand"
)

// TableSpec describes one sparse feature (one embedding table).
type TableSpec struct {
	// Rows is the table cardinality E.
	Rows int64
	// Lookups is the pooling factor L (indices per sample).
	Lookups int64
	// Skew is the Zipf exponent of index popularity (0 = uniform).
	Skew float64
}

// Batch is one batch of sparse inputs: Indices[t][i] is the i-th lookup
// index of table t, flattened over the batch (B*L entries per table).
type Batch struct {
	B       int64
	Tables  []TableSpec
	Indices [][]int64
}

// Generator produces index batches for a fixed table population.
type Generator struct {
	tables   []TableSpec
	samplers []*xrand.Zipf
	rng      *xrand.Rand
}

// NewGenerator builds a generator for the given tables, seeded.
// Zipf samplers precompute CDFs, so construction cost is O(sum rows) for
// skewed tables; uniform tables are sampled directly.
func NewGenerator(tables []TableSpec, seed uint64) (*Generator, error) {
	g := &Generator{rng: xrand.New(seed)}
	for i, t := range tables {
		if t.Rows <= 0 || t.Lookups <= 0 {
			return nil, fmt.Errorf("workload: table %d has invalid spec %+v", i, t)
		}
		g.tables = append(g.tables, t)
		if t.Skew > 0 {
			// Cap CDF construction for enormous tables: sampling the hot
			// head exactly and the tail uniformly preserves the locality
			// profile while bounding memory.
			n := t.Rows
			if n > 2_000_000 {
				n = 2_000_000
			}
			g.samplers = append(g.samplers, xrand.NewZipf(g.rng.Split(), int(n), t.Skew))
		} else {
			g.samplers = append(g.samplers, nil)
		}
	}
	return g, nil
}

// Tables returns the generator's table population.
func (g *Generator) Tables() []TableSpec { return append([]TableSpec(nil), g.tables...) }

// Next generates one batch of size b.
func (g *Generator) Next(b int64) *Batch {
	out := &Batch{B: b, Tables: g.Tables()}
	for ti, t := range g.tables {
		idx := make([]int64, 0, b*t.Lookups)
		z := g.samplers[ti]
		for i := int64(0); i < b*t.Lookups; i++ {
			if z == nil {
				idx = append(idx, g.rng.Int63n(t.Rows))
				continue
			}
			v := int64(z.Next())
			if int64(z.N()) < t.Rows {
				// Head sampled by Zipf; spill a fraction into the tail so
				// the full cardinality is exercised.
				if g.rng.Float64() < 0.05 {
					v = int64(z.N()) + g.rng.Int63n(t.Rows-int64(z.N()))
				}
			}
			idx = append(idx, v)
		}
		out.Indices = append(out.Indices, idx)
	}
	return out
}

// CriteoLikeTables returns a 26-table population with the Criteo Kaggle
// cardinality profile (a handful of multi-million-row tables, many tiny
// ones), single lookups, and mild popularity skew — the workload shape
// behind DLRM_MLPerf.
func CriteoLikeTables() []TableSpec {
	rows := []int64{
		14_000_000, 39_060, 17_295, 7_424, 20_265, 3, 7_122, 1_543, 63,
		11_700_000, 3_067_956, 405_282, 10, 2_209, 11_938, 155, 4, 976,
		14, 12_900_000, 7_800_000, 11_400_000, 590_152, 12_973, 108, 36,
	}
	out := make([]TableSpec, len(rows))
	for i, r := range rows {
		out[i] = TableSpec{Rows: r, Lookups: 1, Skew: 1.05}
	}
	return out
}

// UniformTables returns n identical uniform tables (the DLRM benchmark's
// synthetic default input).
func UniformTables(n int, rows, lookups int64) []TableSpec {
	out := make([]TableSpec, n)
	for i := range out {
		out[i] = TableSpec{Rows: rows, Lookups: lookups}
	}
	return out
}

// Rows extracts the per-table cardinalities of a population — the
// EmbRows field a DLRM graph builder consumes.
func Rows(tables []TableSpec) []int64 {
	out := make([]int64, len(tables))
	for i, t := range tables {
		out[i] = t.Rows
	}
	return out
}

// MeanLookups returns the population's average pooling factor, rounded
// and floored at 1 — the single L a fused-lookup graph models when
// tables disagree.
func MeanLookups(tables []TableSpec) int64 {
	if len(tables) == 0 {
		return 1
	}
	var sum int64
	for _, t := range tables {
		sum += t.Lookups
	}
	l := (sum + int64(len(tables))/2) / int64(len(tables))
	if l < 1 {
		l = 1
	}
	return l
}

// MeanSkew returns the population's average Zipf exponent.
func MeanSkew(tables []TableSpec) float64 {
	if len(tables) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range tables {
		sum += t.Skew
	}
	return sum / float64(len(tables))
}

// Locality summarizes the empirical reuse behavior of one table's stream.
type Locality struct {
	// Accesses is the number of index samples analyzed.
	Accesses int
	// Distinct is the number of distinct rows touched.
	Distinct int
	// Top1PctMass is the fraction of accesses landing on the most popular
	// 1% of touched rows — near 0.01 for uniform, large under skew.
	Top1PctMass float64
	// HitRateAt estimates the hit rate of an LRU-less resident cache of
	// the given row capacity: the probability mass of the `capacity` most
	// popular rows.
	hist []int
}

// AnalyzeLocality computes the locality profile of a table's stream.
func AnalyzeLocality(indices []int64) Locality {
	counts := map[int64]int{}
	for _, v := range indices {
		counts[v]++
	}
	hist := make([]int, 0, len(counts))
	for _, c := range counts {
		hist = append(hist, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(hist)))
	loc := Locality{Accesses: len(indices), Distinct: len(hist), hist: hist}
	if len(hist) == 0 {
		return loc
	}
	top := len(hist) / 100
	if top < 1 {
		top = 1
	}
	mass := 0
	for _, c := range hist[:top] {
		mass += c
	}
	if len(indices) > 0 {
		loc.Top1PctMass = float64(mass) / float64(len(indices))
	}
	return loc
}

// HitRateAt returns the best-case hit rate of a cache holding `capacity`
// rows of this stream (mass of the capacity most popular rows).
func (l Locality) HitRateAt(capacity int) float64 {
	if l.Accesses == 0 || capacity <= 0 {
		return 0
	}
	if capacity > len(l.hist) {
		capacity = len(l.hist)
	}
	hits := 0
	for _, c := range l.hist[:capacity] {
		hits += c
	}
	return float64(hits) / float64(l.Accesses)
}

// EstimateSkew fits a Zipf exponent to the stream's popularity profile by
// matching the top-1% access mass, invertible via a small search. It
// returns 0 for effectively uniform streams.
func EstimateSkew(indices []int64, rows int64) float64 {
	loc := AnalyzeLocality(indices)
	if loc.Accesses == 0 || rows <= 1 {
		return 0
	}
	uniformMass := math.Max(0.01, float64(loc.Accesses/100)/float64(loc.Accesses))
	if loc.Top1PctMass <= uniformMass*1.5 {
		return 0
	}
	// Binary search the skew whose theoretical top-1% mass matches.
	lo, hi := 0.0, 2.5
	n := int(rows)
	if n > 100_000 {
		n = 100_000 // the head shape saturates well before this
	}
	for iter := 0; iter < 30; iter++ {
		mid := (lo + hi) / 2
		if zipfTopMass(n, mid, 0.01) < loc.Top1PctMass {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// zipfTopMass computes the probability mass of the top frac of a Zipf(s)
// distribution over n items.
func zipfTopMass(n int, s, frac float64) float64 {
	top := int(float64(n) * frac)
	if top < 1 {
		top = 1
	}
	var head, total float64
	for i := 1; i <= n; i++ {
		p := 1 / math.Pow(float64(i), s)
		total += p
		if i <= top {
			head += p
		}
	}
	return head / total
}
