package workload

import (
	"testing"
	"testing/quick"
)

func TestGeneratorShapes(t *testing.T) {
	tables := UniformTables(4, 10_000, 8)
	g, err := NewGenerator(tables, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Next(256)
	if len(b.Indices) != 4 {
		t.Fatalf("tables = %d", len(b.Indices))
	}
	for ti, idx := range b.Indices {
		if int64(len(idx)) != 256*8 {
			t.Fatalf("table %d has %d indices, want %d", ti, len(idx), 256*8)
		}
		for _, v := range idx {
			if v < 0 || v >= 10_000 {
				t.Fatalf("index %d out of range", v)
			}
		}
	}
}

func TestGeneratorRejectsInvalidSpec(t *testing.T) {
	if _, err := NewGenerator([]TableSpec{{Rows: 0, Lookups: 1}}, 1); err == nil {
		t.Fatal("zero-row table accepted")
	}
	if _, err := NewGenerator([]TableSpec{{Rows: 10, Lookups: 0}}, 1); err == nil {
		t.Fatal("zero-lookup table accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	mk := func() []int64 {
		g, err := NewGenerator(UniformTables(1, 1000, 4), 42)
		if err != nil {
			t.Fatal(err)
		}
		return g.Next(64).Indices[0]
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestSkewConcentratesAccesses(t *testing.T) {
	uni, err := NewGenerator([]TableSpec{{Rows: 100_000, Lookups: 4}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	skew, err := NewGenerator([]TableSpec{{Rows: 100_000, Lookups: 4, Skew: 1.1}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	lu := AnalyzeLocality(uni.Next(4096).Indices[0])
	ls := AnalyzeLocality(skew.Next(4096).Indices[0])
	if ls.Top1PctMass <= lu.Top1PctMass*2 {
		t.Errorf("skewed top-1%% mass %v not above uniform %v", ls.Top1PctMass, lu.Top1PctMass)
	}
	if ls.Distinct >= lu.Distinct {
		t.Error("skewed stream should touch fewer distinct rows")
	}
}

func TestCriteoLikeTables(t *testing.T) {
	tables := CriteoLikeTables()
	if len(tables) != 26 {
		t.Fatalf("tables = %d, want 26", len(tables))
	}
	var maxRows int64
	for _, tb := range tables {
		if tb.Lookups != 1 {
			t.Error("Criteo features are one-hot: L must be 1")
		}
		if tb.Rows > maxRows {
			maxRows = tb.Rows
		}
	}
	if maxRows != 14_000_000 {
		t.Errorf("max table = %d", maxRows)
	}
	g, err := NewGenerator(tables, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Next(128)
	if len(b.Indices) != 26 {
		t.Fatal("batch table count wrong")
	}
}

func TestHitRateAtMonotone(t *testing.T) {
	g, err := NewGenerator([]TableSpec{{Rows: 5000, Lookups: 2, Skew: 0.9}}, 11)
	if err != nil {
		t.Fatal(err)
	}
	loc := AnalyzeLocality(g.Next(2048).Indices[0])
	prev := 0.0
	for _, c := range []int{1, 10, 100, 1000, 10_000} {
		h := loc.HitRateAt(c)
		if h < prev {
			t.Fatalf("hit rate decreased at capacity %d: %v < %v", c, h, prev)
		}
		if h < 0 || h > 1 {
			t.Fatalf("hit rate %v out of range", h)
		}
		prev = h
	}
	if loc.HitRateAt(10_000) < 0.999 {
		t.Error("full-capacity hit rate should approach 1")
	}
}

func TestHitRateProperties(t *testing.T) {
	f := func(seed uint16) bool {
		g, err := NewGenerator([]TableSpec{{Rows: 2000, Lookups: 1, Skew: 0.5}}, uint64(seed)+1)
		if err != nil {
			return false
		}
		loc := AnalyzeLocality(g.Next(512).Indices[0])
		// Capacity 0 gives 0; full capacity gives 1; in between bounded.
		return loc.HitRateAt(0) == 0 &&
			loc.HitRateAt(loc.Distinct) > 0.999 &&
			loc.HitRateAt(50) >= 0 && loc.HitRateAt(50) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateSkewRecovers(t *testing.T) {
	for _, want := range []float64{0, 0.8, 1.2} {
		g, err := NewGenerator([]TableSpec{{Rows: 50_000, Lookups: 1, Skew: want}}, 13)
		if err != nil {
			t.Fatal(err)
		}
		stream := g.Next(16384).Indices[0]
		got := EstimateSkew(stream, 50_000)
		if want == 0 {
			if got > 0.3 {
				t.Errorf("uniform stream estimated skew %v", got)
			}
			continue
		}
		if got < want-0.4 || got > want+0.4 {
			t.Errorf("skew %v estimated as %v", want, got)
		}
	}
}

func TestAnalyzeLocalityEmpty(t *testing.T) {
	loc := AnalyzeLocality(nil)
	if loc.Accesses != 0 || loc.Top1PctMass != 0 || loc.HitRateAt(10) != 0 {
		t.Error("empty stream should report zeros")
	}
}
