package models

import (
	"dlrmperf/internal/graph"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/tensor"
)

// TransformerConfig sizes the encoder used for Fig. 1's utilization
// comparison: a standard base encoder (d=512, 6 layers, 8 heads,
// FFN 2048) over sequences of length Seq.
type TransformerConfig struct {
	Batch  int64
	Seq    int64
	Model  int64 // d_model
	Heads  int64
	FFN    int64
	Layers int
	Vocab  int64
}

// DefaultTransformerConfig returns the base encoder configuration.
func DefaultTransformerConfig(batch int64) TransformerConfig {
	return TransformerConfig{
		Batch: batch, Seq: 64, Model: 512, Heads: 8, FFN: 2048, Layers: 6, Vocab: 32000,
	}
}

// BuildTransformer constructs one training iteration of the encoder with
// a token-prediction head (the compute profile of the paper's
// "Transformer" bar in Fig. 1: almost entirely large GEMMs).
func BuildTransformer(batch int64) *Model {
	cfg := DefaultTransformerConfig(batch)
	b := cfg.Batch
	s, d, h := cfg.Seq, cfg.Model, cfg.Heads
	dh := d / h
	g := graph.New()
	var params []int64

	tokHost := g.Input(tensor.NewTyped(tensor.Int64, b, s, 1))
	labelHost := g.Input(tensor.NewTyped(tensor.Int64, b, s, 1))
	tok := g.Apply(ops.ToDevice{}, tokHost)[0]
	g.Apply(ops.ToDevice{}, labelHost)

	// Token embedding: one row gathered per position. The lookup op's
	// batch dimension carries B*S so that every position fetches a row.
	vocabRows := []int64{cfg.Vocab}
	tokFlat := g.Apply(ops.View{NewShape: []int64{b * s, 1, 1}}, tok)[0]
	emb := g.Apply(ops.EmbeddingLookup{Rows: vocabRows, L: 1, D: d}, tokFlat)[0] // (B*S, 1, D)
	x := g.Apply(ops.View{NewShape: []int64{b * s, d}}, emb)[0]

	type layerRec struct {
		qkvIn, attnIn, ffnIn graph.TensorID
		q, k, v              graph.TensorID
		probs                graph.TensorID
		ffnHidden            graph.TensorID
	}
	var recs []layerRec

	linear := func(x graph.TensorID, out int64) graph.TensorID {
		in := g.Meta(x).Dim(1)
		params = append(params, in*out, out)
		return g.Apply(ops.Linear{Out: out}, x)[0]
	}

	for i := 0; i < cfg.Layers; i++ {
		var rec layerRec
		rec.qkvIn = x
		// Self-attention.
		q := linear(x, d)
		k := linear(x, d)
		v := linear(x, d)
		rec.q, rec.k, rec.v = q, k, v
		qh := g.Apply(ops.View{NewShape: []int64{b * h, s, dh}}, q)[0]
		kh := g.Apply(ops.View{NewShape: []int64{b * h, s, dh}}, k)[0]
		vh := g.Apply(ops.View{NewShape: []int64{b * h, s, dh}}, v)[0]
		khT := g.Apply(ops.TransposeOp{}, kh)[0] // (BH, dh, S)
		scores := g.Apply(ops.BMM{}, qh, khT)[0] // (BH, S, S)
		probs := g.Apply(ops.Softmax(), scores)[0]
		rec.probs = probs
		ctx := g.Apply(ops.BMM{}, probs, vh)[0] // (BH, S, dh)
		ctxFlat := g.Apply(ops.View{NewShape: []int64{b * s, d}}, ctx)[0]
		rec.attnIn = ctxFlat
		proj := linear(ctxFlat, d)
		res1 := g.Apply(ops.Add(), x, proj)[0]
		norm1 := g.Apply(ops.LayerNorm(), res1)[0]

		// FFN.
		rec.ffnIn = norm1
		hdn := linear(norm1, cfg.FFN)
		hdn = g.Apply(ops.ReLU(), hdn)[0]
		rec.ffnHidden = hdn
		out := linear(hdn, d)
		res2 := g.Apply(ops.Add(), norm1, out)[0]
		x = g.Apply(ops.LayerNorm(), res2)[0]
		recs = append(recs, rec)
	}

	// Head + loss.
	logits := linear(x, cfg.Vocab)
	g.Apply(ops.CrossEntropyLoss{}, logits)
	grad := g.Apply(ops.CrossEntropyBackward{}, logits)[0]
	outs := g.Apply(ops.LinearBackward{}, grad, x)
	g.Apply(ops.AccumulateGrad(), outs[1])
	grad = outs[0]

	// Backward through layers.
	linBwd := func(grad, saved graph.TensorID) graph.TensorID {
		o := g.Apply(ops.LinearBackward{}, grad, saved)
		g.Apply(ops.AccumulateGrad(), o[1])
		return o[0]
	}
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		// FFN backward.
		grad = g.Apply(ops.LayerNormBackward(), grad)[0]
		gFFNOut := linBwd(grad, rec.ffnHidden)
		gFFNOut = g.Apply(ops.ReLUBackward(), gFFNOut)[0]
		gFFNIn := linBwd(gFFNOut, rec.ffnIn)
		grad = g.Apply(ops.Add(), grad, gFFNIn)[0] // residual join

		// Attention backward.
		grad = g.Apply(ops.LayerNormBackward(), grad)[0]
		gProj := linBwd(grad, rec.attnIn)
		gCtx := g.Apply(ops.View{NewShape: []int64{b * h, s, dh}}, gProj)[0]
		vh := g.Apply(ops.View{NewShape: []int64{b * h, s, dh}}, rec.v)[0]
		qh := g.Apply(ops.View{NewShape: []int64{b * h, s, dh}}, rec.q)[0]
		kh := g.Apply(ops.View{NewShape: []int64{b * h, s, dh}}, rec.k)[0]
		bmm2 := g.Apply(ops.BMMBackward{}, gCtx, rec.probs, vh)
		gProbs := bmm2[0]
		gV := bmm2[1]
		gScores := g.Apply(ops.SoftmaxBackward(), gProbs)[0]
		khT := g.Apply(ops.TransposeOp{}, kh)[0]
		bmm1 := g.Apply(ops.BMMBackward{}, gScores, qh, khT)
		gQ := bmm1[0]
		gKT := g.Apply(ops.TBackward{}, bmm1[1])[0]
		gQf := g.Apply(ops.View{NewShape: []int64{b * s, d}}, gQ)[0]
		gKf := g.Apply(ops.View{NewShape: []int64{b * s, d}}, gKT)[0]
		gVf := g.Apply(ops.View{NewShape: []int64{b * s, d}}, gV)[0]
		gIn := linBwd(gQf, rec.qkvIn)
		gIn = g.Apply(ops.Add(), gIn, linBwd(gKf, rec.qkvIn))[0]
		gIn = g.Apply(ops.Add(), gIn, linBwd(gVf, rec.qkvIn))[0]
		grad = g.Apply(ops.Add(), grad, gIn)[0] // residual join
	}

	// Embedding backward (sparse update).
	gradEmb := g.Apply(ops.View{NewShape: []int64{b * s, 1, d}}, grad)[0]
	g.Apply(ops.EmbeddingLookup{Rows: vocabRows, L: 1, D: d, Backward: true}, tokFlat, gradEmb)

	g.Apply(ops.OptimizerZeroGrad{ParamSizes: params})
	g.Apply(ops.OptimizerStep{ParamSizes: params})

	var total int64
	for _, p := range params {
		total += p
	}
	return &Model{Name: NameTransformer, Graph: g, Params: total}
}
