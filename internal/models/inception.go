package models

import (
	"dlrmperf/internal/graph"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/tensor"
)

// branchRec is one branch of an Inception block: a sequence of conv units
// whose output channel count is the branch's contribution to the concat.
type branchRec struct {
	recs []convRec
	outC int64
	pool bool // branch starts with an avg-pool (its backward is pointwise)
}

// inceptionBlockRec saves a whole block for backward.
type inceptionBlockRec struct {
	branches []branchRec
}

// branchSpec describes one branch as (K, R, S, stride, pad) conv stages.
type branchSpec struct {
	convs [][5]int64
	pool  bool
}

// inceptionBlock emits a multi-branch block: each branch runs its conv
// chain from the shared input; outputs concatenate along channels.
func (b *cnnBuilder) inceptionBlock(x graph.TensorID, specs []branchSpec) (graph.TensorID, inceptionBlockRec) {
	var outs []graph.TensorID
	var rec inceptionBlockRec
	for _, spec := range specs {
		y := x
		br := branchRec{pool: spec.pool}
		if spec.pool {
			// 3x3 stride-1 average pool preceding the projection conv.
			y = b.g.Apply(ops.Elementwise{
				OpName: "aten::avg_pool2d", ReadsPerElem: 36, WritesPerElem: 4, FLOPsPerElem: 9,
			}, y)[0]
		}
		for _, c := range spec.convs {
			var r convRec
			y, r = b.convBNRelu(y, c[0], c[1], c[2], c[3], c[4], true)
			br.recs = append(br.recs, r)
		}
		br.outC = b.g.Meta(y).Dim(1)
		outs = append(outs, y)
		rec.branches = append(rec.branches, br)
	}
	out := b.g.Apply(ops.Concat{Dim: 1}, outs...)[0]
	return out, rec
}

// inceptionBlockBwd emits the backward pass of a block: slice the
// incoming gradient per branch, run each branch backward, and sum the
// input gradients.
func (b *cnnBuilder) inceptionBlockBwd(grad graph.TensorID, rec inceptionBlockRec) graph.TensorID {
	gm := b.g.Meta(grad)
	var gradIn graph.TensorID
	first := true
	for _, br := range rec.branches {
		// Channel-slice of the concatenated gradient.
		slice := b.g.Apply(ops.Elementwise{
			OpName: "SliceBackward0", ReadsPerElem: 4, WritesPerElem: 4,
		}, b.g.Apply(expandOp{shape: []int64{gm.Dim(0), br.outC, gm.Dim(2), gm.Dim(3)}}, grad)[0])[0]
		gi := b.seqBwd(slice, br.recs)
		if br.pool {
			gi = b.g.Apply(ops.Elementwise{
				OpName: "AvgPool2DBackward0", ReadsPerElem: 4, WritesPerElem: 4, FLOPsPerElem: 9,
			}, gi)[0]
		}
		if first {
			gradIn = gi
			first = false
		} else {
			gradIn = b.g.Apply(ops.Add(), gradIn, gi)[0]
		}
	}
	return gradIn
}

// BuildInceptionV3 constructs an Inception-V3 training iteration on
// 299x299 inputs. The block inventory follows the published architecture
// (stem, 3x block-A, reduction, 4x block-B with the 1x7/7x1 factorized
// convolutions, reduction, 2x block-C), which matters for Fig. 10: the
// asymmetric filters are exactly where shape-coverage-limited predictors
// fail.
func BuildInceptionV3(batch int64) *Model {
	b := &cnnBuilder{g: graph.New()}
	g := b.g

	imgHost := g.Input(tensor.New(batch, 3, 299, 299))
	x := g.Apply(ops.ToDevice{}, imgHost)[0]

	// Stem.
	var stem []convRec
	var r convRec
	x, r = b.convBNRelu(x, 32, 3, 3, 2, 0, true) // 149x149
	stem = append(stem, r)
	x, r = b.convBNRelu(x, 32, 3, 3, 1, 0, true) // 147x147
	stem = append(stem, r)
	x, r = b.convBNRelu(x, 64, 3, 3, 1, 1, true)
	stem = append(stem, r)
	x = g.Apply(ops.MaxPool2d{Window: 3, Stride: 2}, x)[0] // 73x73
	x, r = b.convBNRelu(x, 80, 1, 1, 1, 0, true)
	stem = append(stem, r)
	x, r = b.convBNRelu(x, 192, 3, 3, 1, 0, true) // 71x71
	stem = append(stem, r)
	x = g.Apply(ops.MaxPool2d{Window: 3, Stride: 2}, x)[0] // 35x35

	var blocks []inceptionBlockRec
	addBlock := func(specs []branchSpec) {
		var rec inceptionBlockRec
		x, rec = b.inceptionBlock(x, specs)
		blocks = append(blocks, rec)
	}

	// 3x Inception-A at 35x35.
	blockA := func(poolProj int64) []branchSpec {
		return []branchSpec{
			{convs: [][5]int64{{64, 1, 1, 1, 0}}},
			{convs: [][5]int64{{48, 1, 1, 1, 0}, {64, 5, 5, 1, 2}}},
			{convs: [][5]int64{{64, 1, 1, 1, 0}, {96, 3, 3, 1, 1}, {96, 3, 3, 1, 1}}},
			{convs: [][5]int64{{poolProj, 1, 1, 1, 0}}, pool: true},
		}
	}
	addBlock(blockA(32))
	addBlock(blockA(64))
	addBlock(blockA(64))

	// Reduction-A to 17x17.
	addBlock([]branchSpec{
		{convs: [][5]int64{{384, 3, 3, 2, 0}}},
		{convs: [][5]int64{{64, 1, 1, 1, 0}, {96, 3, 3, 1, 1}, {96, 3, 3, 2, 0}}},
		{convs: [][5]int64{{288, 3, 3, 2, 0}}}, // stands in for the stride-2 pool branch
	})

	// 4x Inception-B at 17x17 with factorized 1x7/7x1 convolutions.
	blockB := func(c7 int64) []branchSpec {
		return []branchSpec{
			{convs: [][5]int64{{192, 1, 1, 1, 0}}},
			{convs: [][5]int64{{c7, 1, 1, 1, 0}, {c7, 1, 7, 1, 3}, {192, 7, 1, 1, 3}}},
			{convs: [][5]int64{{c7, 1, 1, 1, 0}, {c7, 7, 1, 1, 3}, {c7, 1, 7, 1, 3}, {c7, 7, 1, 1, 3}, {192, 1, 7, 1, 3}}},
			{convs: [][5]int64{{192, 1, 1, 1, 0}}, pool: true},
		}
	}
	addBlock(blockB(128))
	addBlock(blockB(160))
	addBlock(blockB(160))
	addBlock(blockB(192))

	// Reduction-B to 8x8.
	addBlock([]branchSpec{
		{convs: [][5]int64{{192, 1, 1, 1, 0}, {320, 3, 3, 2, 0}}},
		{convs: [][5]int64{{192, 1, 1, 1, 0}, {192, 1, 7, 1, 3}, {192, 7, 1, 1, 3}, {192, 3, 3, 2, 0}}},
		{convs: [][5]int64{{768, 3, 3, 2, 0}}},
	})

	// 2x Inception-C at 8x8.
	blockC := []branchSpec{
		{convs: [][5]int64{{320, 1, 1, 1, 0}}},
		{convs: [][5]int64{{384, 1, 1, 1, 0}, {384, 1, 3, 1, 1}}},
		{convs: [][5]int64{{448, 1, 1, 1, 0}, {384, 3, 3, 1, 1}, {384, 3, 1, 1, 1}}},
		{convs: [][5]int64{{192, 1, 1, 1, 0}}, pool: true},
	}
	addBlock(blockC)
	addBlock(blockC)

	grad := b.classifierHead(x, 1000)

	for i := len(blocks) - 1; i >= 0; i-- {
		grad = b.inceptionBlockBwd(grad, blocks[i])
	}
	grad = g.Apply(ops.Elementwise{
		OpName: "MaxPool2DWithIndicesBackward0", ReadsPerElem: 8, WritesPerElem: 16,
	}, grad)[0]
	grad = b.seqBwd(grad, stem[3:])
	grad = g.Apply(ops.Elementwise{
		OpName: "MaxPool2DWithIndicesBackward0", ReadsPerElem: 8, WritesPerElem: 16,
	}, grad)[0]
	b.seqBwd(grad, stem[:3])

	return b.finish(NameInceptionV3)
}
