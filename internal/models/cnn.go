package models

import (
	"dlrmperf/internal/graph"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/tensor"
)

// cnnBuilder accumulates the forward graph of a CNN and the bookkeeping
// needed to emit a faithful backward pass (ConvolutionBackward0 /
// NativeBatchNormBackward0 / ReluBackward0 mirrors plus AccumulateGrad
// nodes) and the optimizer parameter census.
type cnnBuilder struct {
	g      *graph.Graph
	params []int64
}

// convRec saves what a conv+bn(+relu) unit needs for its backward ops.
type convRec struct {
	x           graph.TensorID // conv input activation
	k, r, s     int64
	stride, pad int64
	relu        bool
}

// convBNRelu emits conv2d -> batch_norm (-> relu) and returns the output
// tensor plus the backward record.
func (b *cnnBuilder) convBNRelu(x graph.TensorID, k, r, s, stride, pad int64, relu bool) (graph.TensorID, convRec) {
	rec := convRec{x: x, k: k, r: r, s: s, stride: stride, pad: pad, relu: relu}
	inC := b.g.Meta(x).Dim(1)
	y := b.g.Apply(ops.Conv2d{K: k, R: r, S: s, Stride: stride, Pad: pad}, x)[0]
	y = b.g.Apply(ops.BatchNorm2d{}, y)[0]
	if relu {
		y = b.g.Apply(ops.ReLU(), y)[0]
	}
	b.params = append(b.params, k*inC*r*s, 2*k) // conv weight, bn gamma+beta
	return y, rec
}

// convBNBwd emits the backward ops of one convBNRelu unit and returns the
// gradient with respect to its input.
func (b *cnnBuilder) convBNBwd(grad graph.TensorID, rec convRec) graph.TensorID {
	if rec.relu {
		grad = b.g.Apply(ops.ReLUBackward(), grad)[0]
	}
	grad = b.g.Apply(ops.BatchNorm2dBackward{}, grad)[0]
	outs := b.g.Apply(ops.Conv2dBackward{K: rec.k, R: rec.r, S: rec.s, Stride: rec.stride, Pad: rec.pad},
		grad, rec.x)
	b.g.Apply(ops.AccumulateGrad(), outs[1])
	return outs[0]
}

// seqBwd plays a slice of convRecs backward in reverse order.
func (b *cnnBuilder) seqBwd(grad graph.TensorID, recs []convRec) graph.TensorID {
	for i := len(recs) - 1; i >= 0; i-- {
		grad = b.convBNBwd(grad, recs[i])
	}
	return grad
}

// classifierHead emits global average pooling, the fully connected layer,
// and cross-entropy loss; it returns the gradient flowing back into the
// pooled features, ready for the backbone backward pass.
func (b *cnnBuilder) classifierHead(feat graph.TensorID, classes int64) graph.TensorID {
	pooled := b.g.Apply(ops.AdaptiveAvgPool2d{}, feat)[0]
	flat := b.g.Apply(ops.View{}, pooled)[0]
	inDim := b.g.Meta(flat).Dim(1)
	logits := b.g.Apply(ops.Linear{Out: classes}, flat)[0]
	b.params = append(b.params, inDim*classes, classes)
	b.g.Apply(ops.CrossEntropyLoss{}, logits)

	// Backward: loss -> fc -> un-pool.
	grad := b.g.Apply(ops.CrossEntropyBackward{}, logits)[0]
	outs := b.g.Apply(ops.LinearBackward{}, grad, flat)
	b.g.Apply(ops.AccumulateGrad(), outs[1])
	gradFlat := outs[0]
	// Average-pool backward broadcasts the gradient over HxW: a zero-copy
	// aten::expand (host-only) followed by the scaling kernel.
	featMeta := b.g.Meta(feat)
	expanded := b.g.Apply(expandOp{shape: featMeta.Shape}, gradFlat)[0]
	gradFeat := b.g.Apply(ops.Elementwise{
		OpName: "AvgPoolBackward0", ReadsPerElem: 4, WritesPerElem: 4, FLOPsPerElem: 1,
	}, expanded)[0]
	return gradFeat
}

// expandOp is aten::expand: metadata-only, no kernels.
type expandOp struct{ shape []int64 }

func (expandOp) Name() string { return "aten::expand" }

func (e expandOp) Outputs(inputs []tensor.Meta) []tensor.Meta {
	return []tensor.Meta{tensor.NewTyped(inputs[0].DType, e.shape...)}
}

func (expandOp) Kernels([]tensor.Meta) []kernels.Kernel { return nil }

// finish appends the optimizer ops and wraps the graph into a Model.
func (b *cnnBuilder) finish(name string) *Model {
	b.g.Apply(ops.OptimizerZeroGrad{ParamSizes: b.params})
	b.g.Apply(ops.OptimizerStep{ParamSizes: b.params})
	var total int64
	for _, p := range b.params {
		total += p
	}
	return &Model{Name: name, Graph: b.g, Params: total}
}
