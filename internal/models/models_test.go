package models

import (
	"testing"

	"dlrmperf/internal/kernels"
)

func TestBuildAllModels(t *testing.T) {
	for _, name := range []string{
		NameDLRMDefault, NameDLRMMLPerf, NameDLRMDDP,
		NameResNet50, NameInceptionV3, NameTransformer,
	} {
		m, err := Build(name, 32)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if err := m.Graph.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", name, err)
		}
		if m.Params <= 0 {
			t.Errorf("%s: params = %d", name, m.Params)
		}
		if len(m.Graph.Nodes) < 20 {
			t.Errorf("%s: suspiciously few nodes (%d)", name, len(m.Graph.Nodes))
		}
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build("alexnet", 32); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDLRMConfigValidation(t *testing.T) {
	bad := DLRMDefaultConfig(128)
	bad.EmbDim = 32 // breaks bottom-MLP == D constraint
	if _, err := BuildDLRM(bad); err == nil {
		t.Error("mismatched bottom MLP / embedding dim accepted")
	}
	bad2 := DLRMDefaultConfig(0)
	if _, err := BuildDLRM(bad2); err == nil {
		t.Error("zero batch accepted")
	}
	bad3 := DLRMDefaultConfig(128)
	bad3.TopMLP = []int64{1024, 2}
	if _, err := BuildDLRM(bad3); err == nil {
		t.Error("top MLP not ending in 1 accepted")
	}
	bad4 := DLRMDefaultConfig(128)
	bad4.Loss = "hinge"
	if _, err := BuildDLRM(bad4); err == nil {
		t.Error("unknown loss accepted")
	}
}

func TestDLRMKernelCensus(t *testing.T) {
	m, err := Build(NameDLRMDefault, 2048)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[kernels.Kind]int{}
	for _, n := range m.Graph.Nodes {
		for _, k := range m.Graph.NodeKernels(n) {
			counts[k.Kind()]++
		}
	}
	// The six dominating kernel families of Section III-A must all appear.
	for _, kind := range []kernels.Kind{
		kernels.KindGEMM, kernels.KindEmbeddingFwd, kernels.KindEmbeddingBwd,
		kernels.KindConcat, kernels.KindMemcpyH2D, kernels.KindTranspose,
		kernels.KindTrilFwd, kernels.KindTrilBwd, kernels.KindElementwise,
	} {
		if counts[kind] == 0 {
			t.Errorf("DLRM graph missing kernel kind %s", kind)
		}
	}
	// Forward 6 linears + backward 2 GEMMs each + 2 bmm fwd + 4 bmm bwd.
	if counts[kernels.KindGEMM] < 15 {
		t.Errorf("GEMM census = %d, expected >= 15", counts[kernels.KindGEMM])
	}
}

func TestDLRMResize(t *testing.T) {
	m, err := Build(NameDLRMDDP, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ResizeBatch(4096); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range m.Graph.Nodes {
		if n.Op.Name() != "LookupFunction" {
			continue
		}
		k := m.Graph.NodeKernels(n)[0].(kernels.Embedding)
		if k.B != 4096 {
			t.Errorf("embedding batch after resize = %d", k.B)
		}
		found = true
	}
	if !found {
		t.Fatal("no LookupFunction node found")
	}
	if err := m.ResizeBatch(-1); err == nil {
		t.Error("negative batch accepted")
	}
}

func TestDLRMUnfusedVariant(t *testing.T) {
	cfg := DLRMDefaultConfig(256)
	cfg.FusedEmbedding = false
	m, err := BuildDLRM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bags := 0
	for _, n := range m.Graph.Nodes {
		if n.Op.Name() == "aten::embedding_bag" {
			bags++
		}
	}
	if bags != 8 {
		t.Fatalf("unfused DLRM has %d embedding_bag ops, want 8", bags)
	}
	ids := EmbeddingBagNodes(m)
	// 8 bags + their concat.
	if len(ids) != 9 {
		t.Fatalf("EmbeddingBagNodes = %d ids, want 9", len(ids))
	}
	fused, err := BuildDLRM(DLRMDefaultConfig(256))
	if err != nil {
		t.Fatal(err)
	}
	if EmbeddingBagNodes(fused) != nil {
		t.Error("fused model reported embedding_bag nodes")
	}
	if len(m.Graph.Nodes) <= len(fused.Graph.Nodes) {
		t.Error("unfused graph should have more ops than fused")
	}
}

func TestMLPerfUsesBCEAndVaryingTables(t *testing.T) {
	cfg := DLRMMLPerfConfig(1024)
	if cfg.Loss != "bce" {
		t.Error("MLPerf should use BCE loss")
	}
	if len(cfg.EmbRows) != 26 {
		t.Errorf("MLPerf tables = %d, want 26", len(cfg.EmbRows))
	}
	var maxRows int64
	for _, r := range cfg.EmbRows {
		if r > maxRows {
			maxRows = r
		}
	}
	if maxRows != 14_000_000 {
		t.Errorf("max table = %d, want 14M", maxRows)
	}
	m, err := BuildDLRM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hasBCE := false
	for _, n := range m.Graph.Nodes {
		if n.Op.Name() == "aten::binary_cross_entropy" {
			hasBCE = true
		}
	}
	if !hasBCE {
		t.Error("MLPerf graph missing BCE loss op")
	}
}

func TestResNet50Census(t *testing.T) {
	m := BuildResNet50(32)
	if err := m.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	convs, bns := 0, 0
	for _, n := range m.Graph.Nodes {
		switch n.Op.Name() {
		case "aten::conv2d":
			convs++
		case "aten::batch_norm":
			bns++
		}
	}
	// ResNet-50 has 53 convolutions (49 in blocks + 4 downsample + stem).
	if convs != 53 {
		t.Errorf("resnet50 convs = %d, want 53", convs)
	}
	if bns != convs {
		t.Errorf("batch_norm count %d != conv count %d", bns, convs)
	}
	// ~25.5M parameters.
	if m.Params < 20_000_000 || m.Params > 30_000_000 {
		t.Errorf("resnet50 params = %d, want ~25.5M", m.Params)
	}
}

func TestResNetDominatedByConvFLOPs(t *testing.T) {
	m := BuildResNet50(32)
	var convFLOPs, totalFLOPs float64
	for _, n := range m.Graph.Nodes {
		for _, k := range m.Graph.NodeKernels(n) {
			totalFLOPs += k.FLOPs()
			if k.Kind() == kernels.KindConv {
				convFLOPs += k.FLOPs()
			}
		}
	}
	if convFLOPs/totalFLOPs < 0.9 {
		t.Errorf("conv FLOP share = %.2f, want > 0.9", convFLOPs/totalFLOPs)
	}
	// Train step ~3x forward ~4 GFLOP/img * 32.
	perImg := totalFLOPs / 32 / 1e9
	if perImg < 6 || perImg > 30 {
		t.Errorf("resnet50 train GFLOP/img = %.1f, outside [6,30]", perImg)
	}
}

func TestInceptionHasAsymmetricConvs(t *testing.T) {
	m := BuildInceptionV3(16)
	if err := m.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	asym := 0
	for _, n := range m.Graph.Nodes {
		for _, k := range m.Graph.NodeKernels(n) {
			if c, ok := k.(kernels.Conv); ok && c.R != c.S {
				asym++
			}
		}
	}
	if asym < 10 {
		t.Errorf("inception asymmetric conv kernels = %d, want >= 10", asym)
	}
}

func TestTransformerDominatedByGEMM(t *testing.T) {
	m := BuildTransformer(64)
	if err := m.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	var gemm, total float64
	for _, n := range m.Graph.Nodes {
		for _, k := range m.Graph.NodeKernels(n) {
			total += k.FLOPs()
			if k.Kind() == kernels.KindGEMM {
				gemm += k.FLOPs()
			}
		}
	}
	if gemm/total < 0.85 {
		t.Errorf("transformer GEMM FLOP share = %.2f, want > 0.85", gemm/total)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, err := Build(NameDLRMDefault, 512)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := c.ResizeBatch(2048); err != nil {
		t.Fatal(err)
	}
	if m.Graph.BatchSize() != 512 {
		t.Error("clone resize affected original")
	}
}
