// Package models is the workload zoo: builders that produce full
// training-iteration execution graphs (forward, backward, optimizer) for
// the three open-source DLRM configurations of Table III, plus the
// ResNet-50, Inception-V3, and Transformer models used by Fig. 1 and the
// Fig. 10 cross-tool comparison.
package models

import (
	"fmt"

	"dlrmperf/internal/graph"
	"dlrmperf/internal/ops"
)

// Model pairs an execution graph with workload identity.
type Model struct {
	Name  string
	Graph *graph.Graph
	// Params is the total trainable dense parameter count (embedding
	// tables excluded; their updates are fused into the lookup backward).
	Params int64
}

// ResizeBatch rebuilds the graph for a new batch size in place.
func (m *Model) ResizeBatch(b int64) error {
	if b <= 0 {
		return fmt.Errorf("models: batch size %d must be positive", b)
	}
	return m.Graph.ResizeBatch(b)
}

// Clone deep-copies the model.
func (m *Model) Clone() *Model {
	return &Model{Name: m.Name, Graph: m.Graph.Clone(), Params: m.Params}
}

// Builder names usable with Build.
const (
	NameDLRMDefault = "DLRM_default"
	NameDLRMMLPerf  = "DLRM_MLPerf"
	NameDLRMDDP     = "DLRM_DDP"
	NameResNet50    = "resnet50"
	NameInceptionV3 = "inception_v3"
	NameTransformer = "Transformer"
)

// Build constructs a named model at the given batch size.
func Build(name string, batch int64) (*Model, error) {
	switch name {
	case NameDLRMDefault:
		return BuildDLRM(DLRMDefaultConfig(batch))
	case NameDLRMMLPerf:
		return BuildDLRM(DLRMMLPerfConfig(batch))
	case NameDLRMDDP:
		return BuildDLRM(DLRMDDPConfig(batch))
	case NameResNet50:
		return BuildResNet50(batch), nil
	case NameInceptionV3:
		return BuildInceptionV3(batch), nil
	case NameTransformer:
		return BuildTransformer(batch), nil
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}

// DLRMNames returns the three DLRM workload names in the paper's order.
func DLRMNames() []string {
	return []string{NameDLRMDefault, NameDLRMMLPerf, NameDLRMDDP}
}

// DLRMConfigFor returns the named DLRM family's Table III configuration
// at the given batch size — the template scenario builders specialize
// (custom table populations, per-device shards) before BuildDLRM.
func DLRMConfigFor(name string, batch int64) (DLRMConfig, error) {
	switch name {
	case NameDLRMDefault:
		return DLRMDefaultConfig(batch), nil
	case NameDLRMMLPerf:
		return DLRMMLPerfConfig(batch), nil
	case NameDLRMDDP:
		return DLRMDDPConfig(batch), nil
	}
	return DLRMConfig{}, fmt.Errorf("models: %q is not a DLRM family", name)
}

// DenseParams returns the dense (MLP) trainable parameter count of the
// configuration — the all-reduce payload of hybrid-parallel training,
// identical on every device regardless of embedding sharding.
func (c DLRMConfig) DenseParams() int64 {
	var total int64
	for _, p := range dlrmParamSizes(c) {
		total += p
	}
	return total
}

// mlpTail holds the saved tensors needed to emit a linear+ReLU layer's
// backward ops.
type mlpLayer struct {
	x      graph.TensorID // input activation (saved for wgrad)
	out    graph.TensorID // layer output (after activation)
	hasAct bool
	outDim int64
	inDim  int64
}

// buildMLP emits linear(+ReLU) layers; dims[0] is the input width of x.
// If actLast is false the final layer has no activation.
func buildMLP(g *graph.Graph, x graph.TensorID, dims []int64, actLast bool) (graph.TensorID, []mlpLayer) {
	var layers []mlpLayer
	for i := 1; i < len(dims); i++ {
		in := x
		y := g.Apply(ops.Linear{Out: dims[i]}, x)[0]
		hasAct := actLast || i < len(dims)-1
		if hasAct {
			y = g.Apply(ops.ReLU(), y)[0]
		}
		layers = append(layers, mlpLayer{x: in, out: y, hasAct: hasAct, outDim: dims[i], inDim: dims[i-1]})
		x = y
	}
	return x, layers
}

// backwardMLP emits the backward ops for layers (in reverse) given the
// gradient flowing into the last layer's output, returning the gradient
// with respect to the MLP input.
func backwardMLP(g *graph.Graph, grad graph.TensorID, layers []mlpLayer) graph.TensorID {
	for i := len(layers) - 1; i >= 0; i-- {
		l := layers[i]
		if l.hasAct {
			grad = g.Apply(ops.ReLUBackward(), grad)[0]
		}
		outs := g.Apply(ops.LinearBackward{}, grad, l.x)
		grad = outs[0]
		g.Apply(ops.AccumulateGrad(), outs[1])
	}
	return grad
}

// mlpParams sums weight+bias parameters of an MLP described by dims.
func mlpParams(dims []int64) int64 {
	var p int64
	for i := 1; i < len(dims); i++ {
		p += dims[i-1]*dims[i] + dims[i]
	}
	return p
}
