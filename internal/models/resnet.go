package models

import (
	"dlrmperf/internal/graph"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/tensor"
)

// bottleneckRec saves the tensors of one ResNet bottleneck block for its
// backward pass.
type bottleneckRec struct {
	main     []convRec
	shortcut []convRec // empty for identity shortcuts
	// addOut is the tensor after the residual add (pre final relu).
	blockIn graph.TensorID
}

// bottleneck emits one ResNet-50 bottleneck block:
// 1x1(mid) -> 3x3(mid, stride) -> 1x1(4*mid) + shortcut, add, relu.
func (b *cnnBuilder) bottleneck(x graph.TensorID, mid, stride int64) (graph.TensorID, bottleneckRec) {
	rec := bottleneckRec{blockIn: x}
	inC := b.g.Meta(x).Dim(1)
	outC := 4 * mid

	y := x
	var r convRec
	y, r = b.convBNRelu(y, mid, 1, 1, 1, 0, true)
	rec.main = append(rec.main, r)
	y, r = b.convBNRelu(y, mid, 3, 3, stride, 1, true)
	rec.main = append(rec.main, r)
	y, r = b.convBNRelu(y, outC, 1, 1, 1, 0, false)
	rec.main = append(rec.main, r)

	short := x
	if inC != outC || stride != 1 {
		short, r = b.convBNRelu(x, outC, 1, 1, stride, 0, false)
		rec.shortcut = append(rec.shortcut, r)
	}

	out := b.g.Apply(ops.Add(), y, short)[0]
	out = b.g.Apply(ops.ReLU(), out)[0]
	return out, rec
}

// bottleneckBwd emits the backward ops of one block and returns the
// gradient with respect to the block input.
func (b *cnnBuilder) bottleneckBwd(grad graph.TensorID, rec bottleneckRec) graph.TensorID {
	grad = b.g.Apply(ops.ReLUBackward(), grad)[0]
	gradMain := b.seqBwd(grad, rec.main)
	gradShort := grad
	if len(rec.shortcut) > 0 {
		gradShort = b.seqBwd(grad, rec.shortcut)
	}
	return b.g.Apply(ops.Add(), gradMain, gradShort)[0]
}

// BuildResNet50 constructs a full ResNet-50 training iteration on
// 224x224 ImageNet-shaped inputs at the given batch size.
func BuildResNet50(batch int64) *Model {
	b := &cnnBuilder{g: graph.New()}
	g := b.g

	imgHost := g.Input(tensor.New(batch, 3, 224, 224))
	x := g.Apply(ops.ToDevice{}, imgHost)[0]

	// Stem: 7x7/2 conv, maxpool 3x3/2.
	x, stem := b.convBNRelu(x, 64, 7, 7, 2, 3, true)
	x = g.Apply(ops.MaxPool2d{Window: 3, Stride: 2}, x)[0]

	// Stages: (mid width, block count, first-block stride).
	stages := []struct {
		mid, blocks, stride int64
	}{
		{64, 3, 1},
		{128, 4, 2},
		{256, 6, 2},
		{512, 3, 2},
	}
	var recs []bottleneckRec
	for _, st := range stages {
		for i := int64(0); i < st.blocks; i++ {
			stride := int64(1)
			if i == 0 {
				stride = st.stride
			}
			var rec bottleneckRec
			x, rec = b.bottleneck(x, st.mid, stride)
			recs = append(recs, rec)
		}
	}

	grad := b.classifierHead(x, 1000)

	// Backward through the stages.
	for i := len(recs) - 1; i >= 0; i-- {
		grad = b.bottleneckBwd(grad, recs[i])
	}
	// Maxpool backward (scatter via saved indices into the 2x-larger
	// pre-pool tensor, hence 4 output elements written per input) and the
	// stem.
	grad = g.Apply(ops.Elementwise{
		OpName: "MaxPool2DWithIndicesBackward0", ReadsPerElem: 8, WritesPerElem: 16,
	}, grad)[0]
	b.convBNBwd(grad, stem)

	return b.finish(NameResNet50)
}
