package models

import (
	"fmt"

	"dlrmperf/internal/graph"
	"dlrmperf/internal/ops"
	"dlrmperf/internal/tensor"
)

// DLRMConfig describes a DLRM instance in the vocabulary of Table III.
type DLRMConfig struct {
	Name string
	// Batch is the training batch size.
	Batch int64
	// BotMLP lists the bottom MLP widths; BotMLP[0] is the dense feature
	// width. The last width must equal EmbDim (DLRM requirement).
	BotMLP []int64
	// TopMLP lists the top MLP hidden widths; the final entry must be 1.
	TopMLP []int64
	// EmbRows is the number of rows of each embedding table.
	EmbRows []int64
	// EmbDim is the embedding vector length D.
	EmbDim int64
	// Lookups is the pooling factor L per table.
	Lookups int64
	// Loss selects "mse" (default DLRM benchmark) or "bce" (MLPerf).
	Loss string
	// ZipfSkew shapes synthetic index locality (0 = uniform).
	ZipfSkew float64
	// FusedEmbedding selects the batched lookup op (the paper's
	// integrated Tulloch kernel). When false, each table is a separate
	// aten::embedding_bag op whose outputs are concatenated — the
	// unfused left side of Fig. 11.
	FusedEmbedding bool
}

// DLRMDefaultConfig is the "DLRM_default" column of Table III: bottom MLP
// 512-512-64, 8 tables of 1M rows, D=64, top MLP 1024-1024-1024-1.
func DLRMDefaultConfig(batch int64) DLRMConfig {
	rows := make([]int64, 8)
	for i := range rows {
		rows[i] = 1_000_000
	}
	return DLRMConfig{
		Name:           NameDLRMDefault,
		Batch:          batch,
		BotMLP:         []int64{512, 512, 64},
		TopMLP:         []int64{1024, 1024, 1024, 1},
		EmbRows:        rows,
		EmbDim:         64,
		Lookups:        64,
		Loss:           "mse",
		FusedEmbedding: true,
	}
}

// DLRMMLPerfConfig is the "DLRM_MLPerf" column: bottom 13-512-256-128, 26
// Criteo tables up to 14M rows, D=128, top 1024-1024-512-256-1, BCE loss,
// single lookup per table (one-hot categorical features).
func DLRMMLPerfConfig(batch int64) DLRMConfig {
	// Criteo Kaggle cardinalities (order of magnitude), capped at 14M.
	rows := []int64{
		14_000_000, 39_060, 17_295, 7_424, 20_265, 3, 7_122, 1_543, 63,
		11_700_000, 3_067_956, 405_282, 10, 2_209, 11_938, 155, 4, 976,
		14, 12_900_000, 7_800_000, 11_400_000, 590_152, 12_973, 108, 36,
	}
	return DLRMConfig{
		Name:           NameDLRMMLPerf,
		Batch:          batch,
		BotMLP:         []int64{13, 512, 256, 128},
		TopMLP:         []int64{1024, 1024, 512, 256, 1},
		EmbRows:        rows,
		EmbDim:         128,
		Lookups:        1,
		Loss:           "bce",
		FusedEmbedding: true,
	}
}

// DLRMDDPConfig is the "DLRM_DDP" column: bottom 128-128-128-128, 8
// tables of 80k rows, D=128, top 512-512-512-256-1.
func DLRMDDPConfig(batch int64) DLRMConfig {
	rows := make([]int64, 8)
	for i := range rows {
		rows[i] = 80_000
	}
	return DLRMConfig{
		Name:           NameDLRMDDP,
		Batch:          batch,
		BotMLP:         []int64{128, 128, 128, 128},
		TopMLP:         []int64{512, 512, 512, 256, 1},
		EmbRows:        rows,
		EmbDim:         128,
		Lookups:        80,
		Loss:           "mse",
		FusedEmbedding: true,
	}
}

// Validate checks structural constraints of the configuration.
func (c DLRMConfig) Validate() error {
	if c.Batch <= 0 {
		return fmt.Errorf("dlrm %s: batch %d must be positive", c.Name, c.Batch)
	}
	if len(c.BotMLP) < 2 || len(c.TopMLP) < 2 {
		return fmt.Errorf("dlrm %s: MLPs need at least one layer", c.Name)
	}
	if c.BotMLP[len(c.BotMLP)-1] != c.EmbDim {
		return fmt.Errorf("dlrm %s: bottom MLP output %d must equal embedding dim %d",
			c.Name, c.BotMLP[len(c.BotMLP)-1], c.EmbDim)
	}
	if c.TopMLP[len(c.TopMLP)-1] != 1 {
		return fmt.Errorf("dlrm %s: top MLP must end in width 1", c.Name)
	}
	if len(c.EmbRows) == 0 || c.EmbDim <= 0 || c.Lookups <= 0 {
		return fmt.Errorf("dlrm %s: invalid embedding config", c.Name)
	}
	switch c.Loss {
	case "mse", "bce":
	default:
		return fmt.Errorf("dlrm %s: unknown loss %q", c.Name, c.Loss)
	}
	return nil
}

// NumTables returns the embedding table count T.
func (c DLRMConfig) NumTables() int64 { return int64(len(c.EmbRows)) }

// InteractionFeatures returns F = T + 1, the row count of the pairwise
// interaction matrix.
func (c DLRMConfig) InteractionFeatures() int64 { return c.NumTables() + 1 }

// TopInputDim returns the width of the concatenated top-MLP input:
// D + F*(F-1)/2.
func (c DLRMConfig) TopInputDim() int64 {
	f := c.InteractionFeatures()
	return c.EmbDim + f*(f-1)/2
}

// BuildDLRM constructs the execution graph of one DLRM training
// iteration: host-to-device input copies, bottom MLP, embedding lookup,
// pairwise feature interaction (bmm + tril extraction), top MLP, loss,
// the full backward pass, and the optimizer step.
func BuildDLRM(cfg DLRMConfig) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := graph.New()
	b, t, l, d := cfg.Batch, cfg.NumTables(), cfg.Lookups, cfg.EmbDim

	// -- Inputs and host->device copies (aten::to) --------------------
	// The DLRM benchmark moves the sparse inputs per table (one index
	// tensor per embedding table), which is a significant share of DLRM's
	// op count and hence of its host overhead.
	denseHost := g.Input(tensor.New(b, cfg.BotMLP[0]))
	labelHost := g.Input(tensor.New(b, 1))
	dense := g.Apply(ops.ToDevice{}, denseHost)[0]
	label := g.Apply(ops.ToDevice{}, labelHost)[0]
	perTable := make([]graph.TensorID, 0, len(cfg.EmbRows))
	for range cfg.EmbRows {
		tblHost := g.Input(tensor.NewTyped(tensor.Int64, b, 1, l))
		perTable = append(perTable, g.Apply(ops.ToDevice{}, tblHost)[0])
	}
	idx := g.Apply(ops.Concat{Dim: 1}, perTable...)[0] // (B, T, L) device indices

	// -- Bottom MLP (activation on every layer, as in the benchmark) --
	bot, botLayers := buildMLP(g, dense, cfg.BotMLP, true)

	// -- Embedding lookup ---------------------------------------------
	var elOut graph.TensorID
	if cfg.FusedEmbedding {
		elOut = g.Apply(ops.EmbeddingLookup{
			Rows: cfg.EmbRows, L: l, D: d, ZipfSkew: cfg.ZipfSkew,
		}, idx)[0]
	} else {
		// One embedding_bag per table, concatenated (Fig. 11 left).
		var outs []graph.TensorID
		for _, rows := range cfg.EmbRows {
			out := g.Apply(ops.EmbeddingBag{
				Rows: rows, L: l, D: d, ZipfSkew: cfg.ZipfSkew,
			}, idx)
			outs = append(outs, out[0])
		}
		elOut = g.Apply(ops.Concat{Dim: 1}, outs...)[0] // (B, T, D)
	}

	// -- Feature interaction -------------------------------------------
	botView := g.Apply(ops.View{NewShape: []int64{-1, 1, d}}, bot)[0] // (B,1,D)
	catIn := g.Apply(ops.Concat{Dim: 1}, botView, elOut)[0]           // (B,F,D)
	catT := g.Apply(ops.TransposeOp{}, catIn)[0]                      // (B,D,F)
	inter := g.Apply(ops.BMM{}, catIn, catT)[0]                       // (B,F,F)
	tril := g.Apply(ops.TrilIndex{}, inter)[0]                        // (B,F(F-1)/2)
	topIn := g.Apply(ops.Concat{Dim: 1}, bot, tril)[0]                // (B, D+tri)

	// -- Top MLP + prediction -------------------------------------------
	topDims := append([]int64{cfg.TopInputDim()}, cfg.TopMLP...)
	z, topLayers := buildMLP(g, topIn, topDims, false)
	pred := g.Apply(ops.Sigmoid(), z)[0]

	// -- Loss -----------------------------------------------------------
	var grad graph.TensorID
	if cfg.Loss == "bce" {
		g.Apply(ops.BCELoss(), pred, label)
		grad = g.Apply(ops.BCELossBackward(), pred, label)[0]
	} else {
		g.Apply(ops.MSELoss(), pred, label)
		grad = g.Apply(ops.MSELossBackward(), pred, label)[0]
	}

	// -- Backward: prediction and top MLP ------------------------------
	grad = g.Apply(ops.SigmoidBackward(), grad)[0]
	grad = backwardMLP(g, grad, topLayers)

	// -- Backward: split top input grad into bottom and tril parts -----
	f := cfg.InteractionFeatures()
	tri := f * (f - 1) / 2
	gradBotFromTop := g.Apply(ops.SliceBackward{Cols: d}, grad)[0]
	gradTril := g.Apply(ops.SliceBackward{Cols: tri}, grad)[0]

	// -- Backward: interaction ------------------------------------------
	gradInter := g.Apply(ops.TrilIndexBackward{F: f}, gradTril)[0] // (B,F,F)
	bmmGrads := g.Apply(ops.BMMBackward{}, gradInter, catIn, catT)
	gradCatA := bmmGrads[0]                              // (B,F,D)
	gradCatT := g.Apply(ops.TBackward{}, bmmGrads[1])[0] // (B,F,D)
	gradCat := g.Apply(ops.Add(), gradCatA, gradCatT)[0]

	// Split the interaction-cat gradient: bottom view part and EL part.
	gradBotView := g.Apply(ops.SliceBackward{Cols: d}, gradCat)[0]
	gradEL := g.Apply(ops.SliceBackward{Cols: t * d}, gradCat)[0]
	gradELView := g.Apply(ops.View{NewShape: []int64{-1, t, d}}, gradEL)[0]

	// -- Backward: embedding (fused SGD update) ------------------------
	if cfg.FusedEmbedding {
		g.Apply(ops.EmbeddingLookup{
			Rows: cfg.EmbRows, L: l, D: d, ZipfSkew: cfg.ZipfSkew, Backward: true,
		}, idx, gradELView)
	} else {
		for _, rows := range cfg.EmbRows {
			g.Apply(ops.EmbeddingBag{
				Rows: rows, L: l, D: d, ZipfSkew: cfg.ZipfSkew, Backward: true,
			}, idx, gradELView)
		}
	}

	// -- Backward: bottom MLP -------------------------------------------
	gradBot := g.Apply(ops.Add(), gradBotFromTop, gradBotView)[0]
	backwardMLP(g, gradBot, botLayers)

	// -- Optimizer -------------------------------------------------------
	params := dlrmParamSizes(cfg)
	g.Apply(ops.OptimizerZeroGrad{ParamSizes: params})
	g.Apply(ops.OptimizerStep{ParamSizes: params})

	if err := g.Validate(); err != nil {
		return nil, err
	}
	var total int64
	for _, p := range params {
		total += p
	}
	return &Model{Name: cfg.Name, Graph: g, Params: total}, nil
}

// dlrmParamSizes lists every dense parameter tensor (weights and biases
// of both MLPs), the tensors the optimizer kernels touch.
func dlrmParamSizes(cfg DLRMConfig) []int64 {
	var sizes []int64
	addMLP := func(dims []int64) {
		for i := 1; i < len(dims); i++ {
			sizes = append(sizes, dims[i-1]*dims[i], dims[i])
		}
	}
	addMLP(cfg.BotMLP)
	addMLP(append([]int64{cfg.TopInputDim()}, cfg.TopMLP...))
	return sizes
}

// EmbeddingBagNodes returns the node IDs of the unfused per-table
// embedding ops plus their concat (forward side), the fusion candidates
// of the Fig. 11 case study. It returns nil for fused models.
func EmbeddingBagNodes(m *Model) []graph.NodeID {
	var ids []graph.NodeID
	for _, n := range m.Graph.Nodes {
		if n.Op.Name() == "aten::embedding_bag" {
			ids = append(ids, n.ID)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	// The concat that merges the bag outputs immediately follows them.
	for _, n := range m.Graph.Nodes {
		if n.Op.Name() != "aten::cat" {
			continue
		}
		deps := m.Graph.Deps(n)
		if len(deps) == len(ids) {
			match := true
			set := map[graph.NodeID]bool{}
			for _, id := range ids {
				set[id] = true
			}
			for _, d := range deps {
				if !set[d] {
					match = false
					break
				}
			}
			if match {
				ids = append(ids, n.ID)
				break
			}
		}
	}
	return ids
}
