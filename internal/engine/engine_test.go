package engine

import (
	"reflect"
	"sync"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/models"
	"dlrmperf/internal/perfmodel"
)

// tinyOptions keeps engine tests fast: eighth-size sweeps, a single
// tiny network per family, two DLRM batch sizes, short measured runs.
func tinyOptions(seed uint64) Options {
	sizes := map[kernels.Kind]int{}
	for k, n := range microbench.DefaultSweepSizes() {
		sizes[k] = n / 8
	}
	return Options{
		Seed:            seed,
		SaltDeviceSeeds: true,
		Iters:           10,
		DLRMBatches:     []int64{256, 512},
		Workers:         4,
		Calib: perfmodel.CalibOptions{
			SweepSizes: sizes, Ensemble: 1,
			MLPConfig: mlp.Config{HiddenLayers: 1, Width: 16, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 10, BatchSize: 64},
		},
	}
}

// TestCalibrationSingleFlight is the cache contract: a burst of
// concurrent first uses of one device runs exactly one calibration and
// every caller shares it.
func TestCalibrationSingleFlight(t *testing.T) {
	e := New(tinyOptions(7))
	const n = 8
	cals := make([]*perfmodel.Calibration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cals[i], errs[i] = e.Calibration(hw.V100)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if cals[i] != cals[0] {
			t.Fatal("concurrent callers got different calibrations")
		}
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Fatalf("calibrations executed = %d, want 1", got)
	}
	// A later request is a pure cache hit.
	if _, err := e.Calibration(hw.V100); err != nil {
		t.Fatal(err)
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Fatalf("cache hit re-calibrated: runs = %d", got)
	}
}

func testRequests() []Request {
	var reqs []Request
	for _, w := range []string{models.NameDLRMDefault, models.NameDLRMDDP} {
		for _, b := range []int64{256, 512} {
			reqs = append(reqs, Request{Device: hw.V100, Workload: w, Batch: b})
		}
	}
	reqs = append(reqs, Request{Device: hw.V100, Workload: models.NameDLRMDefault, Batch: 512, Shared: true})
	return reqs
}

// TestPredictBatchMatchesSequential: fanning requests across the pool
// must not change a single bit of any prediction relative to serving
// them one at a time on a fresh engine.
func TestPredictBatchMatchesSequential(t *testing.T) {
	reqs := testRequests()

	batch := New(tinyOptions(7)).PredictBatch(reqs)
	seq := make([]Result, len(reqs))
	serial := New(tinyOptions(7))
	for i, r := range reqs {
		seq[i] = serial.Predict(r)
	}

	for i := range reqs {
		if batch[i].Err != nil || seq[i].Err != nil {
			t.Fatalf("request %v errored: batch=%v seq=%v", reqs[i], batch[i].Err, seq[i].Err)
		}
		if !reflect.DeepEqual(batch[i].Prediction, seq[i].Prediction) {
			t.Fatalf("request %v: batch prediction %+v != sequential %+v",
				reqs[i], batch[i].Prediction, seq[i].Prediction)
		}
	}
}

// TestPredictBatchDeterministicRepeat: repeated batches over a warm
// cache return identical results.
func TestPredictBatchDeterministicRepeat(t *testing.T) {
	e := New(tinyOptions(7))
	reqs := testRequests()
	a := e.PredictBatch(reqs)
	b := e.PredictBatch(reqs)
	for i := range reqs {
		if !reflect.DeepEqual(a[i].Prediction, b[i].Prediction) {
			t.Fatalf("request %v: repeat changed prediction", reqs[i])
		}
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Fatalf("two batches ran %d calibrations, want 1", got)
	}
}

// TestWarmStartAssets: SaveAssets from one engine warm-starts another,
// which then predicts identically without ever calibrating.
func TestWarmStartAssets(t *testing.T) {
	a := New(tinyOptions(7))
	req := Request{Device: hw.V100, Workload: models.NameDLRMDefault, Batch: 512}
	ra := a.Predict(req)
	if ra.Err != nil {
		t.Fatal(ra.Err)
	}
	data, err := a.SaveAssets(hw.V100)
	if err != nil {
		t.Fatal(err)
	}

	b := New(tinyOptions(7))
	device, err := b.LoadAssets(data)
	if err != nil {
		t.Fatal(err)
	}
	if device != hw.V100 {
		t.Fatalf("assets device = %q", device)
	}
	rb := b.Predict(req)
	if rb.Err != nil {
		t.Fatal(rb.Err)
	}
	if !reflect.DeepEqual(ra.Prediction, rb.Prediction) {
		t.Fatalf("warm-started prediction differs: %+v vs %+v", ra.Prediction, rb.Prediction)
	}
	if got := b.CalibrationRuns(hw.V100); got != 0 {
		t.Fatalf("warm-started engine calibrated %d times, want 0", got)
	}
}

// TestPredictErrorsAreLocal: a bad request reports its error in its
// slot without failing the rest of the batch.
func TestPredictErrorsAreLocal(t *testing.T) {
	e := New(tinyOptions(7))
	res := e.PredictBatch([]Request{
		{Device: "H100", Workload: models.NameDLRMDefault, Batch: 256},
		{Device: hw.V100, Workload: "no_such_model", Batch: 256},
		{Device: hw.V100, Workload: models.NameDLRMDefault, Batch: 256},
	})
	if res[0].Err == nil {
		t.Error("unknown device did not error")
	}
	if res[1].Err == nil {
		t.Error("unknown workload did not error")
	}
	if res[2].Err != nil {
		t.Errorf("valid request failed: %v", res[2].Err)
	}
}
