package engine

import (
	"reflect"
	"sync"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/kernels"
	"dlrmperf/internal/microbench"
	"dlrmperf/internal/mlp"
	"dlrmperf/internal/models"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/scenario"
)

// tinyOptions keeps engine tests fast: eighth-size sweeps, a single
// tiny network per family, two DLRM batch sizes, short measured runs.
func tinyOptions(seed uint64) Options {
	sizes := map[kernels.Kind]int{}
	for k, n := range microbench.DefaultSweepSizes() {
		sizes[k] = n / 8
	}
	return Options{
		Seed:            seed,
		SaltDeviceSeeds: true,
		Iters:           10,
		DLRMBatches:     []int64{256, 512},
		Workers:         4,
		Calib: perfmodel.CalibOptions{
			SweepSizes: sizes, Ensemble: 1,
			MLPConfig: mlp.Config{HiddenLayers: 1, Width: 16, Optimizer: mlp.Adam, LR: 3e-3, Epochs: 10, BatchSize: 64},
		},
	}
}

// TestCalibrationSingleFlight is the cache contract: a burst of
// concurrent first uses of one device runs exactly one calibration and
// every caller shares it.
func TestCalibrationSingleFlight(t *testing.T) {
	e := New(tinyOptions(7))
	const n = 8
	cals := make([]*perfmodel.Calibration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cals[i], errs[i] = e.Calibration(hw.V100)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if cals[i] != cals[0] {
			t.Fatal("concurrent callers got different calibrations")
		}
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Fatalf("calibrations executed = %d, want 1", got)
	}
	// A later request is a pure cache hit.
	if _, err := e.Calibration(hw.V100); err != nil {
		t.Fatal(err)
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Fatalf("cache hit re-calibrated: runs = %d", got)
	}
}

func testRequests() []Request {
	var reqs []Request
	for _, w := range []string{models.NameDLRMDefault, models.NameDLRMDDP} {
		for _, b := range []int64{256, 512} {
			reqs = append(reqs, NewRequest(hw.V100, w, b))
		}
	}
	shared := NewRequest(hw.V100, models.NameDLRMDefault, 512)
	shared.Shared = true
	reqs = append(reqs, shared)
	return reqs
}

// TestPredictBatchMatchesSequential: fanning requests across the pool
// must not change a single bit of any prediction relative to serving
// them one at a time on a fresh engine.
func TestPredictBatchMatchesSequential(t *testing.T) {
	reqs := testRequests()

	batch := New(tinyOptions(7)).PredictBatch(reqs)
	seq := make([]Result, len(reqs))
	serial := New(tinyOptions(7))
	for i, r := range reqs {
		seq[i] = serial.Predict(r)
	}

	for i := range reqs {
		if batch[i].Err != nil || seq[i].Err != nil {
			t.Fatalf("request %v errored: batch=%v seq=%v", reqs[i], batch[i].Err, seq[i].Err)
		}
		if !reflect.DeepEqual(batch[i].Prediction, seq[i].Prediction) {
			t.Fatalf("request %v: batch prediction %+v != sequential %+v",
				reqs[i], batch[i].Prediction, seq[i].Prediction)
		}
	}
}

// TestPredictBatchDeterministicRepeat: repeated batches over a warm
// cache return identical results.
func TestPredictBatchDeterministicRepeat(t *testing.T) {
	e := New(tinyOptions(7))
	reqs := testRequests()
	a := e.PredictBatch(reqs)
	b := e.PredictBatch(reqs)
	for i := range reqs {
		if !reflect.DeepEqual(a[i].Prediction, b[i].Prediction) {
			t.Fatalf("request %v: repeat changed prediction", reqs[i])
		}
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Fatalf("two batches ran %d calibrations, want 1", got)
	}
}

// TestWarmStartAssets: SaveAssets from one engine warm-starts another,
// which then predicts identically without ever calibrating.
func TestWarmStartAssets(t *testing.T) {
	a := New(tinyOptions(7))
	req := NewRequest(hw.V100, models.NameDLRMDefault, 512)
	ra := a.Predict(req)
	if ra.Err != nil {
		t.Fatal(ra.Err)
	}
	data, err := a.SaveAssets(hw.V100)
	if err != nil {
		t.Fatal(err)
	}

	b := New(tinyOptions(7))
	device, err := b.LoadAssets(data)
	if err != nil {
		t.Fatal(err)
	}
	if device != hw.V100 {
		t.Fatalf("assets device = %q", device)
	}
	rb := b.Predict(req)
	if rb.Err != nil {
		t.Fatal(rb.Err)
	}
	if !reflect.DeepEqual(ra.Prediction, rb.Prediction) {
		t.Fatalf("warm-started prediction differs: %+v vs %+v", ra.Prediction, rb.Prediction)
	}
	if got := b.CalibrationRuns(hw.V100); got != 0 {
		t.Fatalf("warm-started engine calibrated %d times, want 0", got)
	}
}

// TestPredictErrorsAreLocal: a bad request reports its error in its
// slot without failing the rest of the batch.
func TestPredictErrorsAreLocal(t *testing.T) {
	e := New(tinyOptions(7))
	res := e.PredictBatch([]Request{
		NewRequest("H100", models.NameDLRMDefault, 256),
		NewRequest(hw.V100, "no_such_model", 256),
		NewRequest(hw.V100, models.NameDLRMDefault, 256),
	})
	if res[0].Err == nil {
		t.Error("unknown device did not error")
	}
	if res[1].Err == nil {
		t.Error("unknown workload did not error")
	}
	if res[2].Err != nil {
		t.Errorf("valid request failed: %v", res[2].Err)
	}
}

// TestResultCacheMissThenHit is the PR's cache contract: the first
// request computes (one miss), every repeat — sequential or inside one
// PredictBatch — is served from memory with a bit-identical prediction.
func TestResultCacheMissThenHit(t *testing.T) {
	e := New(tinyOptions(7))
	req := NewRequest(hw.V100, models.NameDLRMDefault, 512)

	r1 := e.Predict(req)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	if r1.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if hits, misses := e.CacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after first request: hits=%d misses=%d, want 0/1", hits, misses)
	}

	r2 := e.Predict(req)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if !r2.CacheHit {
		t.Error("repeat request missed the cache")
	}
	if hits, misses := e.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("after repeat: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !reflect.DeepEqual(r1.Prediction, r2.Prediction) {
		t.Fatalf("cached prediction differs: %+v vs %+v", r1.Prediction, r2.Prediction)
	}

	// Duplicates inside one batch compute at most once; a distinct
	// request adds exactly one miss.
	other := NewRequest(hw.V100, models.NameDLRMDefault, 256)
	batch := e.PredictBatch([]Request{req, req, other, req})
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("batch slot %d: %v", i, r.Err)
		}
	}
	for _, i := range []int{0, 1, 3} {
		if !reflect.DeepEqual(batch[i].Prediction, r1.Prediction) {
			t.Errorf("batch slot %d prediction differs from cached", i)
		}
	}
	if hits, misses := e.CacheStats(); hits != 4 || misses != 2 {
		t.Fatalf("after batch: hits=%d misses=%d, want 4/2", hits, misses)
	}
	if n := e.CachedResults(); n != 2 {
		t.Fatalf("resident cache entries = %d, want 2", n)
	}
}

// TestScenarioMultiGPU: a multi-device scenario routes through the
// sharding planner and hybrid-parallel predictor — the plan covers
// every table exactly once, the collectives are priced, and scaling
// efficiency stays in (0, 1).
func TestScenarioMultiGPU(t *testing.T) {
	e := New(tinyOptions(7))
	spec, err := scenario.Build("dlrm-uniform-2gpu", 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Predict(Request{Device: hw.V100, Scenario: spec})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Multi == nil || res.Plan == nil {
		t.Fatalf("multi-GPU result missing breakdown: multi=%v plan=%v", res.Multi, res.Plan)
	}
	if res.Multi.Devices != 2 || len(res.Multi.PerDeviceE2E) != 2 {
		t.Errorf("device breakdown = %+v, want 2 devices", res.Multi)
	}
	if se := res.ScalingEfficiency(); se <= 0 || se >= 1 {
		t.Errorf("scaling efficiency = %v, want in (0,1)", se)
	}
	if res.Multi.AllReduceUs <= 0 || res.Multi.AllToAllUs <= 0 {
		t.Errorf("collectives not priced: %+v", res.Multi)
	}
	seen := map[int]int{}
	for _, dev := range res.Plan.Assignments {
		if len(dev) == 0 {
			t.Error("plan left a device empty")
		}
		for _, ti := range dev {
			seen[ti]++
		}
	}
	if len(seen) != 8 {
		t.Errorf("plan covers %d of 8 tables", len(seen))
	}
	for ti, n := range seen {
		if n != 1 {
			t.Errorf("table %d assigned %d times", ti, n)
		}
	}
	if res.Prediction.E2E <= res.Multi.PerDeviceE2E[0] {
		t.Errorf("E2E %v not above per-device compute %v", res.Prediction.E2E, res.Multi.PerDeviceE2E)
	}

	// A mixed single+multi batch serves through the same engine with one
	// calibration, and the repeated multi-GPU request hits the cache.
	mixed := e.PredictBatch([]Request{
		NewRequest(hw.V100, models.NameDLRMDefault, 512),
		{Device: hw.V100, Scenario: spec},
	})
	for i, r := range mixed {
		if r.Err != nil {
			t.Fatalf("mixed slot %d: %v", i, r.Err)
		}
	}
	if !mixed[1].CacheHit {
		t.Error("repeated multi-GPU scenario missed the cache")
	}
	if !reflect.DeepEqual(mixed[1].Prediction, res.Prediction) {
		t.Error("cached multi-GPU prediction differs")
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Errorf("mixed batch ran %d calibrations, want 1", got)
	}
}
