package engine

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
)

// TestAssetFormatVersionGuard pins the export format contract:
// SaveAssets stamps the current version, a round trip loads cleanly,
// and a blob from a different format version is rejected with a typed
// error naming both versions instead of being half-applied.
func TestAssetFormatVersionGuard(t *testing.T) {
	a := New(tinyOptions(7))
	if res := a.Predict(NewRequest(hw.V100, models.NameDLRMDefault, 512)); res.Err != nil {
		t.Fatal(res.Err)
	}
	data, err := a.SaveAssets(hw.V100)
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil || envelope.Version != AssetFormatVersion {
		t.Fatalf("export version = %d (%v), want %d", envelope.Version, err, AssetFormatVersion)
	}

	// Clean round trip at the current version.
	b := New(tinyOptions(7))
	if device, err := b.LoadAssets(data); err != nil || device != hw.V100 {
		t.Fatalf("round trip = %q, %v", device, err)
	}

	// A future (or past) version is refused with the typed error.
	var wire map[string]json.RawMessage
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	wire["version"] = json.RawMessage("99")
	bumped, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(tinyOptions(7)).LoadAssets(bumped)
	var fe *AssetFormatError
	if !errors.As(err, &fe) || fe.Got != 99 || fe.Want != AssetFormatVersion {
		t.Fatalf("version-mismatch err = %v, want AssetFormatError{Got:99, Want:%d}", err, AssetFormatVersion)
	}

	// Pre-versioning blobs carry no version field and decode it as 0 —
	// also a mismatch, not a silent acceptance.
	delete(wire, "version")
	legacy, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tinyOptions(7)).LoadAssets(legacy); !errors.As(err, &fe) || fe.Got != 0 {
		t.Fatalf("versionless blob err = %v, want AssetFormatError{Got:0}", err)
	}
}

// TestLoadAssetsCorruptedBlob: bytes that are not an asset export at
// all surface the typed format error (Got -1: it never parsed), and
// the engine stays usable.
func TestLoadAssetsCorruptedBlob(t *testing.T) {
	e := New(tinyOptions(7))
	for _, blob := range [][]byte{
		[]byte("not json at all"),
		[]byte(`{"version":`),
		{0xff, 0xfe, 0x00},
	} {
		_, err := e.LoadAssets(blob)
		var fe *AssetFormatError
		if !errors.As(err, &fe) || fe.Got != -1 {
			t.Fatalf("corrupted blob %q err = %v, want AssetFormatError{Got:-1}", blob, err)
		}
	}
	if res := e.Predict(NewRequest(hw.V100, models.NameDLRMDefault, 256)); res.Err != nil {
		t.Fatalf("engine unusable after rejected loads: %v", res.Err)
	}
}

// TestAssetEpochsAndCalibratedDevices pins the replication hooks the
// cluster's asset vault rides: CalibratedDevices lists exactly the
// devices holding calibration assets, and the per-device epoch moves
// on every asset mutation — calibration and asset install alike — so
// a worker's heartbeat knows when a re-push is due.
func TestAssetEpochsAndCalibratedDevices(t *testing.T) {
	e := New(tinyOptions(7))
	if devs := e.CalibratedDevices(); len(devs) != 0 {
		t.Fatalf("fresh engine lists calibrated devices: %v", devs)
	}
	if got := e.AssetsEpoch(hw.V100); got != 0 {
		t.Fatalf("fresh epoch = %d, want 0", got)
	}

	if res := e.Predict(NewRequest(hw.V100, models.NameDLRMDefault, 512)); res.Err != nil {
		t.Fatal(res.Err)
	}
	if devs := e.CalibratedDevices(); len(devs) != 1 || devs[0] != hw.V100 {
		t.Fatalf("calibrated devices = %v, want [%s]", devs, hw.V100)
	}
	afterCalib := e.AssetsEpoch(hw.V100)
	if afterCalib == 0 {
		t.Fatal("calibration did not move the asset epoch")
	}

	// Installing exported assets into another engine moves THAT
	// engine's epoch (it now holds assets worth re-exporting), and the
	// device joins its calibrated set without a calibration run.
	data, err := e.SaveAssets(hw.V100)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(tinyOptions(7))
	if _, err := warm.LoadAssets(data); err != nil {
		t.Fatal(err)
	}
	if got := warm.AssetsEpoch(hw.V100); got == 0 {
		t.Fatal("asset install did not move the epoch")
	}
	if devs := warm.CalibratedDevices(); len(devs) != 1 || devs[0] != hw.V100 {
		t.Fatalf("warm engine calibrated devices = %v, want [%s]", devs, hw.V100)
	}
	if got := warm.CalibrationRuns(hw.V100); got != 0 {
		t.Fatalf("warm engine ran %d calibrations, want 0", got)
	}
	// Epochs are per-engine counters: untouched engines don't move.
	if got := e.AssetsEpoch(hw.V100); got != afterCalib {
		t.Fatalf("exporter epoch moved from %d to %d on a foreign install", afterCalib, got)
	}
}

// TestInstallRemoteResult pins the replication ingest of the
// pass-through cache: an installed row is a hit for the same scenario
// fingerprint without any fetch, it moves no hit/miss counters at
// install time, and installs are idempotent overwrites.
func TestInstallRemoteResult(t *testing.T) {
	e := New(Options{Seed: 1})
	req := NewRequest("V100", "DLRM_default", 512)
	e.InstallRemoteResult(req, "replicated")
	e.InstallRemoteResult(req, "replicated") // idempotent

	v, hit, err := e.RemoteResult(context.Background(), req, func() (any, error) {
		t.Fatal("fetch executed for an installed result")
		return nil, nil
	})
	if err != nil || !hit || v.(string) != "replicated" {
		t.Fatalf("RemoteResult after install = (%v, hit=%v, %v), want the installed value", v, hit, err)
	}
	// Exactly one counter moved, and only at read time: the hit above.
	if hits, misses := e.CacheStats(); hits != 1 || misses != 0 {
		t.Fatalf("cache counters = %d/%d hit/miss, want 1/0 (installs are silent)", hits, misses)
	}

	// A distinct fingerprint still fetches.
	other := NewRequest("V100", "DLRM_default", 1024)
	if _, hit, _ := e.RemoteResult(context.Background(), other, func() (any, error) { return "fetched", nil }); hit {
		t.Fatal("uninstalled fingerprint reported a hit")
	}
}
