package engine

import (
	"fmt"

	"dlrmperf/internal/models"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/scenario"
	"dlrmperf/internal/workload"
)

// predictScenario computes one request that missed the result cache.
// The steady-state path resolves the request to a CompiledPlan —
// memoized in the plans class under the request key — and executes it:
// plan lookup + arithmetic, with zero graph reconstruction, zero shard
// re-planning, and zero key formatting beyond one pooled-buffer
// append. The DisableCompiledPlans ablation re-resolves everything per
// request (the historical path the bit-identity tests compare
// against); both paths end in identical predictor calls on identical
// inputs, so their results are bit-identical.
func (e *Engine) predictScenario(req Request) (cached, error) {
	if e.opts.DisableCompiledPlans {
		return e.predictUncompiled(req)
	}
	cs := e.store.class(classPlan)
	kb := keyBufPool.Get().(*[]byte)
	buf := append((*kb)[:0], "plan/"...)
	buf = req.appendKey(buf)
	if v, ok := cs.getBytes(buf); ok {
		*kb = buf
		keyBufPool.Put(kb)
		cs.hits.Add(1)
		return v.(*CompiledPlan).execute()
	}
	key := string(buf)
	*kb = buf
	keyBufPool.Put(kb)
	pl, err := memo(e, classPlan, key, func() (*CompiledPlan, error) {
		return e.compile(req)
	})
	if err != nil {
		return cached{}, err
	}
	return pl.execute()
}

// predictUncompiled is the per-request resolution path: compile the
// request from scratch (graphs still memoize in the graphs class, as
// they always did) and execute the transient plan without storing it.
func (e *Engine) predictUncompiled(req Request) (cached, error) {
	pl, err := e.compile(req)
	if err != nil {
		return cached{}, err
	}
	return pl.execute()
}

// scenarioPredictor assembles the device's predictor for a request:
// calibrated kernel models plus the requested overhead database.
func (e *Engine) scenarioPredictor(req Request) (*predict.Predictor, error) {
	cal, err := e.Calibration(req.Device)
	if err != nil {
		return nil, err
	}
	var db *overhead.DB
	if req.Shared {
		db, err = e.SharedOverheadDB(req.Device)
	} else {
		db, err = e.OverheadDB(req.Device, req.Scenario.Workload)
	}
	if err != nil {
		return nil, err
	}
	return predict.New(cal.Registry, db), nil
}

// scenarioModel returns the single-device execution graph of a spec;
// custom table populations are memoized under the scenario fingerprint.
func (e *Engine) scenarioModel(spec scenario.Spec) (*models.Model, error) {
	if len(spec.Tables) == 0 {
		return e.Model(spec.Workload, spec.Batch)
	}
	key := "graph/" + spec.Fingerprint()
	return memo(e, classGraph, key, func() (*models.Model, error) {
		cfg, err := models.DLRMConfigFor(spec.Workload, spec.Batch)
		if err != nil {
			return nil, fmt.Errorf("scenario: custom tables need a DLRM family: %w", err)
		}
		return models.BuildDLRM(specializeDLRM(cfg, spec.Batch, spec.Tables))
	})
}

// specializeDLRM overrides a family template with a table population —
// the builder models one pooling factor and skew, so heterogeneous
// populations contribute their means.
func specializeDLRM(cfg models.DLRMConfig, batch int64, tables []workload.TableSpec) models.DLRMConfig {
	cfg.Batch = batch
	cfg.EmbRows = workload.Rows(tables)
	cfg.Lookups = workload.MeanLookups(tables)
	cfg.ZipfSkew = workload.MeanSkew(tables)
	return cfg
}
