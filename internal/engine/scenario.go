package engine

import (
	"fmt"

	"dlrmperf/internal/graph"
	"dlrmperf/internal/models"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/scenario"
	"dlrmperf/internal/workload"
	"dlrmperf/internal/xrand"
)

// predictScenario computes one request cold: build the scenario's
// execution graph(s) — which rejects unknown workloads and unplannable
// shardings *before* any expensive calibration — then acquire the
// device's assets and run the single-device or hybrid-parallel
// prediction path.
func (e *Engine) predictScenario(req Request) (cached, error) {
	spec := req.Scenario
	if spec.NumDevices() == 1 {
		m, err := e.scenarioModel(spec)
		if err != nil {
			return cached{}, err
		}
		p, err := e.scenarioPredictor(req)
		if err != nil {
			return cached{}, err
		}
		pred, err := p.Predict(m.Graph)
		if err != nil {
			return cached{}, err
		}
		return cached{pred: pred}, nil
	}
	return e.predictMulti(req)
}

// scenarioPredictor assembles the device's predictor for a request:
// calibrated kernel models plus the requested overhead database.
func (e *Engine) scenarioPredictor(req Request) (*predict.Predictor, error) {
	cal, err := e.Calibration(req.Device)
	if err != nil {
		return nil, err
	}
	var db *overhead.DB
	if req.Shared {
		db, err = e.SharedOverheadDB(req.Device)
	} else {
		db, err = e.OverheadDB(req.Device, req.Scenario.Workload)
	}
	if err != nil {
		return nil, err
	}
	return predict.New(cal.Registry, db), nil
}

// scenarioModel returns the single-device execution graph of a spec;
// custom table populations are memoized under the scenario fingerprint.
func (e *Engine) scenarioModel(spec scenario.Spec) (*models.Model, error) {
	if len(spec.Tables) == 0 {
		return e.Model(spec.Workload, spec.Batch)
	}
	key := "graph/" + spec.Fingerprint()
	return memo(e, classGraph, key, func() (*models.Model, error) {
		cfg, err := models.DLRMConfigFor(spec.Workload, spec.Batch)
		if err != nil {
			return nil, fmt.Errorf("scenario: custom tables need a DLRM family: %w", err)
		}
		return models.BuildDLRM(specializeDLRM(cfg, spec.Batch, spec.Tables))
	})
}

// specializeDLRM overrides a family template with a table population —
// the builder models one pooling factor and skew, so heterogeneous
// populations contribute their means.
func specializeDLRM(cfg models.DLRMConfig, batch int64, tables []workload.TableSpec) models.DLRMConfig {
	cfg.Batch = batch
	cfg.EmbRows = workload.Rows(tables)
	cfg.Lookups = workload.MeanLookups(tables)
	cfg.ZipfSkew = workload.MeanSkew(tables)
	return cfg
}

// predictMulti prices a hybrid-parallel scenario: dense layers run
// data-parallel at the per-device batch, the embedding tables are
// sharded by the greedy planner, and collectives come from the spec's
// alpha-beta comm model. CNN families degenerate to pure data
// parallelism (identical per-device graphs, all-reduce only). Graphs
// and the plan are built before the device's assets so malformed
// scenarios never trigger a calibration.
func (e *Engine) predictMulti(req Request) (cached, error) {
	spec := req.Scenario
	n := spec.NumDevices()
	comm, err := predict.CommByName(spec.Comm)
	if err != nil {
		return cached{}, err
	}
	perDev := (spec.Batch + int64(n) - 1) / int64(n)

	var graphs []*graph.Graph
	var denseParams, embActBytes int64
	var plan *scenario.Plan
	cfg, cfgErr := models.DLRMConfigFor(spec.Workload, spec.Batch)
	if cfgErr != nil {
		// Not a DLRM family: pure data parallelism over one shared graph.
		if len(spec.Tables) > 0 {
			return cached{}, fmt.Errorf("scenario: custom tables need a DLRM family: %w", cfgErr)
		}
		m, err := e.Model(spec.Workload, perDev)
		if err != nil {
			return cached{}, err
		}
		graphs = make([]*graph.Graph, n)
		for d := range graphs {
			graphs[d] = m.Graph
		}
		denseParams = m.Params
	} else {
		tables := spec.Tables
		if len(tables) == 0 {
			tables = scenario.TablesOf(cfg)
		}
		pl, err := scenario.PlanShards(tables, cfg.EmbDim, n)
		if err != nil {
			return cached{}, err
		}
		plan = &pl
		graphs = make([]*graph.Graph, n)
		for d := 0; d < n; d++ {
			shard := pl.TablesFor(d, tables)
			// Key per-device graphs by shard *content*, so identical
			// shards (every uniform-table scenario) build one graph.
			key := fmt.Sprintf("graph/%s/b%d/%016x", spec.Workload, perDev,
				xrand.HashString(scenario.TablesKey(shard)))
			m, err := memo(e, classGraph, key, func() (*models.Model, error) {
				return models.BuildDLRM(specializeDLRM(cfg, perDev, shard))
			})
			if err != nil {
				return cached{}, err
			}
			graphs[d] = m.Graph
		}
		denseParams = cfg.DenseParams()
		// All-to-all payload per device per direction: each device's
		// share of the full (B/n, T, D) embedding activation tensor.
		embActBytes = perDev * int64(len(tables)) * cfg.EmbDim * 4
	}

	p, err := e.scenarioPredictor(req)
	if err != nil {
		return cached{}, err
	}
	mp, err := p.PredictSharded(graphs, denseParams, embActBytes, comm)
	if err != nil {
		return cached{}, err
	}
	return cached{pred: mp.Prediction, multi: &mp, plan: plan}, nil
}
