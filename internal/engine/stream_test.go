package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
)

// TestDoCtxDetachedCompletion is the no-poison contract of the
// context-aware singleflight: a caller that abandons the wait leaves
// the flight running to completion, exactly once, and the key is
// usable again afterwards.
func TestDoCtxDetachedCompletion(t *testing.T) {
	var g group
	block := make(chan struct{})
	ran := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.DoCtx(ctx, "k", func() (any, error) {
		<-block
		close(ran)
		return "v", nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned caller error = %v, want context.Canceled", err)
	}
	close(block)
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("detached flight never completed")
	}
	// The key is free again: a fresh call executes a fresh fn.
	executed := false
	v, err := g.DoCtx(context.Background(), "k", func() (any, error) {
		executed = true
		return "v2", nil
	})
	if err != nil || v != "v2" || !executed {
		t.Fatalf("post-abandon call = (%v, %v, executed %v), want (v2, nil, true)", v, err, executed)
	}
}

// TestPredictCtxCancelDoesNotPoison pins the serving-layer contract: a
// request whose context is canceled mid-computation returns ctx.Err()
// to its caller, is counted as a miss plus Canceled, and leaves the
// singleflight entry clean — the next identical request computes (or
// joins) normally, with the device still calibrating exactly once.
// The in-flight computation is made deterministic by pre-occupying the
// request's flight key with a test-controlled blocking flight.
func TestPredictCtxCancelDoesNotPoison(t *testing.T) {
	e := New(tinyOptions(11))
	req := NewRequest(hw.V100, models.NameDLRMDefault, 256)
	key := "predict/" + req.Key()

	block := make(chan struct{})
	started := make(chan struct{})
	flightDone := make(chan struct{})
	go func() {
		defer close(flightDone)
		_, _ = e.flight.Do(key, func() (any, error) {
			close(started)
			<-block
			return nil, errors.New("test flight failed")
		})
	}()
	<-started

	// Join the blocked flight with a cancelable context, then abandon.
	ctx, cancel := context.WithCancel(context.Background())
	resCh := make(chan Result, 1)
	go func() { resCh <- e.PredictCtx(ctx, req) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	res := <-resCh
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("canceled request error = %v, want context.Canceled", res.Err)
	}
	ss := e.StreamStats()
	if ss.Canceled != 1 {
		t.Fatalf("StreamStats.Canceled = %d, want 1", ss.Canceled)
	}

	// Release the blocked flight (it fails); the key must be clean: the
	// next request computes for real and succeeds.
	close(block)
	<-flightDone
	res2 := e.Predict(req)
	if res2.Err != nil {
		t.Fatalf("post-cancel request failed: %v", res2.Err)
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Fatalf("calibrations executed = %d, want 1", got)
	}
	hits, misses := e.CacheStats()
	ss = e.StreamStats()
	if hits+misses != ss.Served {
		t.Fatalf("hits+misses = %d+%d, served = %d; invariant broken", hits, misses, ss.Served)
	}
	if ss.Served != 2 {
		t.Fatalf("served = %d, want 2", ss.Served)
	}
}

// TestPredictCtxDuplicateInFlight drives N concurrent identical
// requests through PredictCtx and requires exactly one computation:
// one miss, N-1 hits (joins or cache hits), one calibration, identical
// predictions, and stream counters accounting for every caller.
func TestPredictCtxDuplicateInFlight(t *testing.T) {
	e := New(tinyOptions(13))
	req := NewRequest(hw.V100, models.NameDLRMDefault, 256)
	const n = 8
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.PredictCtx(context.Background(), req)
		}(i)
	}
	wg.Wait()

	computed := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d failed: %v", i, r.Err)
		}
		if r.Prediction.E2E != results[0].Prediction.E2E {
			t.Fatalf("request %d prediction differs", i)
		}
		if !r.CacheHit {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d requests computed, want exactly 1", computed)
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Fatalf("calibrations executed = %d, want 1", got)
	}
	hits, misses := e.CacheStats()
	if misses != 1 || hits != n-1 {
		t.Fatalf("cache = %d/%d hit/miss, want %d/1", hits, misses, n-1)
	}
	ss := e.StreamStats()
	if ss.Served != n || ss.InFlight != 0 {
		t.Fatalf("stream = %+v, want served %d, in-flight 0", ss, n)
	}
	if ss.PeakInFlight < 1 || ss.PeakInFlight > n {
		t.Fatalf("peak in-flight = %d, want within [1, %d]", ss.PeakInFlight, n)
	}
}

// TestPredictCtxExpiredAtEntry covers the cheap path: a context that is
// already done is rejected before any asset work, counted as a
// canceled miss so the accounting invariant holds.
func TestPredictCtxExpiredAtEntry(t *testing.T) {
	e := New(tinyOptions(17))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.PredictCtx(ctx, NewRequest(hw.V100, models.NameDLRMDefault, 256))
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", res.Err)
	}
	if got := e.CalibrationRuns(hw.V100); got != 0 {
		t.Fatalf("expired request calibrated the device (%d runs)", got)
	}
	hits, misses := e.CacheStats()
	ss := e.StreamStats()
	if hits != 0 || misses != 1 || ss.Canceled != 1 || ss.Served != 1 {
		t.Fatalf("counters = hits %d misses %d canceled %d served %d, want 0/1/1/1",
			hits, misses, ss.Canceled, ss.Served)
	}
}
