package engine

import (
	"context"
	"fmt"
	"sync"
)

// call is one in-flight execution of a keyed function.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// group is a minimal singleflight: concurrent Do calls with the same key
// share a single execution of fn, so N goroutines asking for the same
// device's calibration pay for exactly one calibration. Unlike
// golang.org/x/sync/singleflight (not vendored here), completed keys are
// forgotten immediately — memoization is the caller's job.
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

// Do runs fn once per key among concurrent callers and hands every
// caller the same result.
func (g *group) Do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*call{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// Clean up in a defer so a panicking fn still releases waiters and
	// frees the key instead of wedging it forever; waiters see an error
	// while the panic propagates on the executing goroutine.
	defer func() {
		r := recover()
		if r != nil {
			c.err = fmt.Errorf("engine: singleflight %q panicked: %v", key, r)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		if r != nil {
			panic(r)
		}
	}()
	c.val, c.err = fn()
	return c.val, c.err
}

// DoCtx is the async-stream variant of Do: fn executes on its own
// goroutine, detached from every caller, so a caller whose context
// expires can abandon the wait without aborting (or poisoning) the
// shared computation — the flight runs to completion, its result is
// stored by fn's own side effects, and later requests for the same key
// hit it. When ctx wins the race the returned error is ctx.Err() and
// val is nil; the flight itself is unaffected. Callers that need
// executed-vs-joined accounting observe it through a flag set inside
// fn (only the executing caller's closure runs), exactly as with Do.
//
// Unlike Do, a panicking fn cannot re-panic on a caller's goroutine
// (the caller may already be gone), so panics surface as errors to
// every waiter. Contexts that can never be canceled (ctx.Done() ==
// nil, e.g. context.Background) take Do's inline path instead — no
// detachment is possible, so the plain Predict/PredictBatch callers
// pay no goroutine spawn and keep Do's re-panic behavior.
func (g *group) DoCtx(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	if ctx.Done() == nil {
		return g.Do(key, fn)
	}
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*call{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("engine: singleflight %q panicked: %v", key, r)
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
