package engine

import (
	"fmt"
	"sync"
)

// call is one in-flight execution of a keyed function.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// group is a minimal singleflight: concurrent Do calls with the same key
// share a single execution of fn, so N goroutines asking for the same
// device's calibration pay for exactly one calibration. Unlike
// golang.org/x/sync/singleflight (not vendored here), completed keys are
// forgotten immediately — memoization is the caller's job.
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

// Do runs fn once per key among concurrent callers and hands every
// caller the same result.
func (g *group) Do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*call{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// Clean up in a defer so a panicking fn still releases waiters and
	// frees the key instead of wedging it forever; waiters see an error
	// while the panic propagates on the executing goroutine.
	defer func() {
		r := recover()
		if r != nil {
			c.err = fmt.Errorf("engine: singleflight %q panicked: %v", key, r)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		if r != nil {
			panic(r)
		}
	}()
	c.val, c.err = fn()
	return c.val, c.err
}
