package engine

import (
	"encoding/json"
	"fmt"
	"strings"

	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
)

// wireAssets is the serialized per-device asset set: the calibrated
// kernel-model registry plus whatever overhead databases were collected
// — everything the paper's prediction track needs, so a fleet of
// prediction servers can warm-start from one calibration run.
type wireAssets struct {
	Device    string                     `json:"device"`
	Registry  json.RawMessage            `json:"registry"`
	Overheads map[string]json.RawMessage `json:"overheads,omitempty"` // workload -> DB
	Shared    json.RawMessage            `json:"shared,omitempty"`
}

// SaveAssets serializes the device's portable assets, calibrating first
// if the device has not been calibrated yet. Overhead databases are
// included as collected so far; they rebuild lazily on load if absent.
func (e *Engine) SaveAssets(device string) ([]byte, error) {
	cal, err := e.Calibration(device)
	if err != nil {
		return nil, err
	}
	reg, err := perfmodel.SaveRegistry(cal.Registry)
	if err != nil {
		return nil, err
	}
	w := wireAssets{Device: device, Registry: reg, Overheads: map[string]json.RawMessage{}}

	dbs := map[string]*overhead.DB{}
	var sharedDB *overhead.DB
	prefix := "db/" + device + "/"
	for k, v := range e.store.class(classOverheads).snapshot() {
		if strings.HasPrefix(k, prefix) {
			dbs[strings.TrimPrefix(k, prefix)] = v.(*overhead.DB)
		}
		if k == "shared/"+device {
			sharedDB = v.(*overhead.DB)
		}
	}

	for name, db := range dbs {
		raw, err := db.Marshal()
		if err != nil {
			return nil, err
		}
		w.Overheads[name] = raw
	}
	if sharedDB != nil {
		if w.Shared, err = sharedDB.Marshal(); err != nil {
			return nil, err
		}
	}
	return json.MarshalIndent(w, "", " ")
}

// LoadAssets warm-starts the engine from a SaveAssets payload and
// returns the device it covers: subsequent predictions for that device
// skip calibration (and skip profiling for every included overhead DB).
func (e *Engine) LoadAssets(data []byte) (string, error) {
	var w wireAssets
	if err := json.Unmarshal(data, &w); err != nil {
		return "", fmt.Errorf("engine: parsing assets: %w", err)
	}
	if w.Device == "" {
		return "", fmt.Errorf("engine: assets missing device name")
	}
	reg, err := perfmodel.LoadRegistry(w.Registry)
	if err != nil {
		return "", fmt.Errorf("engine: loading registry: %w", err)
	}
	e.Install(w.Device, &perfmodel.Calibration{Registry: reg})
	for name, raw := range w.Overheads {
		db, err := overhead.Load(raw)
		if err != nil {
			return "", fmt.Errorf("engine: loading %s overheads: %w", name, err)
		}
		e.InstallOverheads(w.Device, name, db)
	}
	if len(w.Shared) > 0 {
		db, err := overhead.Load(w.Shared)
		if err != nil {
			return "", fmt.Errorf("engine: loading shared overheads: %w", err)
		}
		e.store.class(classOverheads).put("shared/"+w.Device, db, approxBytes(db))
	}
	return w.Device, nil
}
