package engine

import (
	"encoding/json"
	"fmt"
	"strings"

	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
)

// AssetFormatVersion is the SaveAssets wire-format version. Bump it
// whenever the serialized layout changes incompatibly; LoadAssets
// rejects any other version with *AssetFormatError, so a stale file or
// a truncated blob arriving over the wire (cluster asset migration)
// fails typed instead of installing silently-wrong calibration.
const AssetFormatVersion = 1

// AssetFormatError reports an asset payload this engine cannot load:
// either its version header names a different format (Got >= 0), or
// the bytes did not parse as an asset envelope at all (Got == -1, with
// the decode failure in Err).
type AssetFormatError struct {
	Got  int // version found in the blob; -1 when it did not parse
	Want int
	Err  error // underlying decode error, when parsing failed
}

func (e *AssetFormatError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("engine: asset blob is not a version-%d asset payload: %v", e.Want, e.Err)
	}
	return fmt.Sprintf("engine: asset format version %d, want %d (re-export with SaveAssets)", e.Got, e.Want)
}

func (e *AssetFormatError) Unwrap() error { return e.Err }

// wireAssets is the serialized per-device asset set: the calibrated
// kernel-model registry plus whatever overhead databases were collected
// — everything the paper's prediction track needs, so a fleet of
// prediction servers can warm-start from one calibration run.
type wireAssets struct {
	Version   int                        `json:"version"`
	Device    string                     `json:"device"`
	Registry  json.RawMessage            `json:"registry"`
	Overheads map[string]json.RawMessage `json:"overheads,omitempty"` // workload -> DB
	Shared    json.RawMessage            `json:"shared,omitempty"`
}

// SaveAssets serializes the device's portable assets, calibrating first
// if the device has not been calibrated yet. Overhead databases are
// included as collected so far; they rebuild lazily on load if absent.
func (e *Engine) SaveAssets(device string) ([]byte, error) {
	cal, err := e.Calibration(device)
	if err != nil {
		return nil, err
	}
	reg, err := perfmodel.SaveRegistry(cal.Registry)
	if err != nil {
		return nil, err
	}
	w := wireAssets{Version: AssetFormatVersion, Device: device, Registry: reg, Overheads: map[string]json.RawMessage{}}

	dbs := map[string]*overhead.DB{}
	var sharedDB *overhead.DB
	prefix := "db/" + device + "/"
	for k, v := range e.store.class(classOverheads).snapshot() {
		if strings.HasPrefix(k, prefix) {
			dbs[strings.TrimPrefix(k, prefix)] = v.(*overhead.DB)
		}
		if k == "shared/"+device {
			sharedDB = v.(*overhead.DB)
		}
	}

	for name, db := range dbs {
		raw, err := db.Marshal()
		if err != nil {
			return nil, err
		}
		w.Overheads[name] = raw
	}
	if sharedDB != nil {
		if w.Shared, err = sharedDB.Marshal(); err != nil {
			return nil, err
		}
	}
	return json.MarshalIndent(w, "", " ")
}

// LoadAssets warm-starts the engine from a SaveAssets payload and
// returns the device it covers: subsequent predictions for that device
// skip calibration (and skip profiling for every included overhead DB).
// A payload whose format version does not match AssetFormatVersion —
// including pre-versioned files (version 0) and bytes that do not parse
// — is rejected with *AssetFormatError before anything installs.
func (e *Engine) LoadAssets(data []byte) (string, error) {
	var w wireAssets
	if err := json.Unmarshal(data, &w); err != nil {
		return "", &AssetFormatError{Got: -1, Want: AssetFormatVersion, Err: err}
	}
	if w.Version != AssetFormatVersion {
		return "", &AssetFormatError{Got: w.Version, Want: AssetFormatVersion}
	}
	if w.Device == "" {
		return "", fmt.Errorf("engine: assets missing device name")
	}
	reg, err := perfmodel.LoadRegistry(w.Registry)
	if err != nil {
		return "", fmt.Errorf("engine: loading registry: %w", err)
	}
	e.Install(w.Device, &perfmodel.Calibration{Registry: reg})
	for name, raw := range w.Overheads {
		db, err := overhead.Load(raw)
		if err != nil {
			return "", fmt.Errorf("engine: loading %s overheads: %w", name, err)
		}
		e.InstallOverheads(w.Device, name, db)
	}
	if len(w.Shared) > 0 {
		db, err := overhead.Load(w.Shared)
		if err != nil {
			return "", fmt.Errorf("engine: loading shared overheads: %w", err)
		}
		e.store.class(classOverheads).put("shared/"+w.Device, db, approxBytes(db))
		e.bumpAssetEpoch(w.Device)
	}
	return w.Device, nil
}
