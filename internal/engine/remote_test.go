package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRemoteResultPassThrough pins the coordinator-facing cache
// contract: the first request fetches, a repeat is served resident
// without fetching, a concurrent identical burst collapses to one
// fetch, failed fetches are never stored, and the hit/miss/served
// counters stay consistent with the engine's accounting invariant —
// all on an engine that never calibrates anything.
func TestRemoteResultPassThrough(t *testing.T) {
	e := New(Options{Seed: 1})
	req := NewRequest("V100", "DLRM_default", 512)

	var fetches atomic.Uint64
	fetch := func() (any, error) {
		fetches.Add(1)
		return "payload", nil
	}

	v, hit, err := e.RemoteResult(context.Background(), req, fetch)
	if err != nil || hit || v.(string) != "payload" {
		t.Fatalf("first call = (%v, hit=%v, %v), want fetched payload miss", v, hit, err)
	}
	v, hit, err = e.RemoteResult(context.Background(), req, fetch)
	if err != nil || !hit || v.(string) != "payload" {
		t.Fatalf("repeat = (%v, hit=%v, %v), want resident hit", v, hit, err)
	}
	if fetches.Load() != 1 {
		t.Fatalf("fetches = %d, want 1", fetches.Load())
	}

	// A distinct scenario fetches again; a failing fetch is not stored.
	failing := NewRequest("V100", "DLRM_default", 1024)
	boom := errors.New("worker down")
	if _, _, err := e.RemoteResult(context.Background(), failing, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("failing fetch err = %v, want %v", err, boom)
	}
	v, hit, err = e.RemoteResult(context.Background(), failing, fetch)
	if err != nil || hit || v.(string) != "payload" {
		t.Fatalf("after failed fetch = (%v, hit=%v, %v), want a fresh miss (failure not cached)", v, hit, err)
	}

	// Concurrent identical burst: exactly one fetch, everyone answered.
	burst := NewRequest("P100", "DLRM_DDP", 512)
	var burstFetches atomic.Uint64
	const clients = 16
	var wg sync.WaitGroup
	hits := atomic.Uint64{}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := e.RemoteResult(context.Background(), burst, func() (any, error) {
				burstFetches.Add(1)
				return "burst", nil
			})
			if err != nil || v.(string) != "burst" {
				t.Errorf("burst client = (%v, %v)", v, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if burstFetches.Load() != 1 {
		t.Fatalf("burst fetches = %d, want 1 (singleflight collapse)", burstFetches.Load())
	}
	if hits.Load() != clients-1 {
		t.Fatalf("burst hits = %d, want %d", hits.Load(), clients-1)
	}

	// Accounting: hits + misses == served, and the device never
	// calibrated — remote pass-through touches no calibration assets.
	h, m := e.CacheStats()
	served := e.StreamStats().Served
	if h+m != served {
		t.Fatalf("hits %d + misses %d != served %d", h, m, served)
	}
	if got := e.CalibrationRuns("V100"); got != 0 {
		t.Fatalf("calibrations = %d, want 0", got)
	}
}

// TestRemoteResultDisabledCache pins the ablation path: with the
// result cache disabled every call fetches and is counted a miss.
func TestRemoteResultDisabledCache(t *testing.T) {
	e := New(Options{Seed: 1, ResultCacheSize: -1})
	req := NewRequest("V100", "DLRM_default", 512)
	var fetches atomic.Uint64
	for i := 0; i < 3; i++ {
		v, hit, err := e.RemoteResult(context.Background(), req, func() (any, error) {
			fetches.Add(1)
			return i, nil
		})
		if err != nil || hit || v.(int) != i {
			t.Fatalf("call %d = (%v, hit=%v, %v), want uncached fetch", i, v, hit, err)
		}
	}
	if fetches.Load() != 3 {
		t.Fatalf("fetches = %d, want 3", fetches.Load())
	}
	if h, m := e.CacheStats(); h != 0 || m != 3 {
		t.Fatalf("cache stats = %d/%d, want 0/3", h, m)
	}
}
