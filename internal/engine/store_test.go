package engine

import (
	"reflect"
	"sync"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
)

// TestClassStoreTable drives the shared LRU shard through its
// contract: insertion order eviction, recency refresh on get, byte
// accounting across updates and evictions, and pinned classes never
// evicting no matter the configured capacity.
func TestClassStoreTable(t *testing.T) {
	type op struct {
		kind  string // put, get
		key   string
		bytes int64
		found bool // expected for get
	}
	cases := []struct {
		name          string
		cap           int
		pinned        bool
		ops           []op
		wantLen       int
		wantBytes     int64
		wantEvictions uint64
	}{
		{
			name: "under capacity nothing evicts",
			cap:  3,
			ops: []op{
				{kind: "put", key: "a", bytes: 10},
				{kind: "put", key: "b", bytes: 20},
				{kind: "get", key: "a", found: true},
			},
			wantLen: 2, wantBytes: 30, wantEvictions: 0,
		},
		{
			name: "over capacity evicts LRU order",
			cap:  2,
			ops: []op{
				{kind: "put", key: "a", bytes: 1},
				{kind: "put", key: "b", bytes: 2},
				{kind: "put", key: "c", bytes: 4}, // evicts a
				{kind: "get", key: "a", found: false},
				{kind: "get", key: "b", found: true},
				{kind: "get", key: "c", found: true},
			},
			wantLen: 2, wantBytes: 6, wantEvictions: 1,
		},
		{
			name: "get refreshes recency",
			cap:  2,
			ops: []op{
				{kind: "put", key: "a", bytes: 1},
				{kind: "put", key: "b", bytes: 2},
				{kind: "get", key: "a", found: true},
				{kind: "put", key: "c", bytes: 4}, // evicts b, not a
				{kind: "get", key: "a", found: true},
				{kind: "get", key: "b", found: false},
			},
			wantLen: 2, wantBytes: 5, wantEvictions: 1,
		},
		{
			name: "update replaces bytes in place",
			cap:  2,
			ops: []op{
				{kind: "put", key: "a", bytes: 10},
				{kind: "put", key: "a", bytes: 30},
				{kind: "get", key: "a", found: true},
			},
			wantLen: 1, wantBytes: 30, wantEvictions: 0,
		},
		{
			name: "capacity one thrashes",
			cap:  1,
			ops: []op{
				{kind: "put", key: "a", bytes: 8},
				{kind: "put", key: "b", bytes: 8},
				{kind: "put", key: "a", bytes: 8},
				{kind: "get", key: "b", found: false},
				{kind: "get", key: "a", found: true},
			},
			wantLen: 1, wantBytes: 8, wantEvictions: 2,
		},
		{
			name:   "pinned never evicts",
			cap:    1,
			pinned: true,
			ops: []op{
				{kind: "put", key: "a", bytes: 8},
				{kind: "put", key: "b", bytes: 8},
				{kind: "put", key: "c", bytes: 8},
				{kind: "get", key: "a", found: true},
				{kind: "get", key: "b", found: true},
			},
			wantLen: 3, wantBytes: 24, wantEvictions: 0,
		},
		{
			name: "nonpositive capacity is unbounded",
			cap:  -1,
			ops: []op{
				{kind: "put", key: "a", bytes: 1},
				{kind: "put", key: "b", bytes: 1},
				{kind: "put", key: "c", bytes: 1},
			},
			wantLen: 3, wantBytes: 3, wantEvictions: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newClassStore(tc.cap, tc.pinned)
			for i, o := range tc.ops {
				switch o.kind {
				case "put":
					c.put(o.key, o.key, o.bytes)
				case "get":
					if _, ok := c.get(o.key); ok != o.found {
						t.Errorf("op %d: get(%q) found=%v, want %v", i, o.key, ok, o.found)
					}
				}
			}
			st := c.stats("test")
			if st.Resident != tc.wantLen {
				t.Errorf("resident = %d, want %d", st.Resident, tc.wantLen)
			}
			if st.Bytes != tc.wantBytes {
				t.Errorf("bytes = %d, want %d", st.Bytes, tc.wantBytes)
			}
			if st.Evictions != tc.wantEvictions {
				t.Errorf("evictions = %d, want %d", st.Evictions, tc.wantEvictions)
			}
			if st.Pinned != tc.pinned {
				t.Errorf("pinned = %v, want %v", st.Pinned, tc.pinned)
			}
		})
	}
}

// TestGraphClassCapacityOneThrash runs the engine's graph class at
// capacity 1 under an A/B/A access pattern: entries evict and rebuild
// transparently, counters observe the thrash, and the rebuilt graph is
// a fresh but equivalent build.
func TestGraphClassCapacityOneThrash(t *testing.T) {
	opts := tinyOptions(7)
	opts.AssetCaps = AssetCaps{Graphs: 1}
	e := New(opts)

	a1, err := e.Model(models.NameDLRMDefault, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Model(models.NameDLRMDDP, 256); err != nil {
		t.Fatal(err)
	}
	a2, err := e.Model(models.NameDLRMDefault, 256)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("evicted graph came back as the same pointer: no eviction happened")
	}
	if a1.Params != a2.Params || len(a1.Graph.Nodes) != len(a2.Graph.Nodes) {
		t.Errorf("rebuilt graph differs: params %d vs %d, nodes %d vs %d",
			a1.Params, a2.Params, len(a1.Graph.Nodes), len(a2.Graph.Nodes))
	}
	g := e.AssetStats().Class("graphs")
	if g.Resident != 1 {
		t.Errorf("resident graphs = %d, want 1", g.Resident)
	}
	if g.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2", g.Evictions)
	}
	if g.Hits != 0 || g.Misses != 3 {
		t.Errorf("graph counters = %d/%d hit/miss, want 0/3", g.Hits, g.Misses)
	}
	if g.Bytes <= 0 {
		t.Errorf("resident bytes = %d, want > 0", g.Bytes)
	}
}

// TestPinnedCalibrationSurvivesEviction: with every evictable class at
// capacity 1, arbitrary traffic thrashes runs/DBs/graphs, but the
// device's calibration is pinned and never rebuilds.
func TestPinnedCalibrationSurvivesEviction(t *testing.T) {
	opts := tinyOptions(7)
	opts.AssetCaps = AssetCaps{Runs: 1, Overheads: 1, Graphs: 1}
	opts.ResultCacheSize = -1 // every request recomputes
	e := New(opts)

	reqs := testRequests()
	for round := 0; round < 2; round++ {
		for _, r := range reqs {
			if res := e.Predict(r); res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}
	if got := e.CalibrationRuns(hw.V100); got != 1 {
		t.Fatalf("calibrations executed = %d, want 1 (pinned class must not evict)", got)
	}
	s := e.AssetStats()
	cal := s.Class("calibrations")
	if cal.Resident != 1 || cal.Evictions != 0 || !cal.Pinned {
		t.Errorf("calibration class = %+v, want 1 resident, 0 evictions, pinned", cal)
	}
	for _, name := range []string{"runs", "overheads", "graphs"} {
		c := s.Class(name)
		if c.Resident > 1 {
			t.Errorf("%s resident = %d above capacity 1", name, c.Resident)
		}
		if c.Evictions == 0 {
			t.Errorf("%s saw no evictions under capacity 1", name)
		}
	}
	if s.TotalBytes <= 0 {
		t.Errorf("total bytes = %d, want > 0", s.TotalBytes)
	}
}

// TestBoundedStoreBitIdentical is the tentpole's correctness contract:
// a concurrent PredictBatch against a store far smaller than the
// working set stays race-clean (the suite runs under -race in CI),
// keeps every class at or under its cap, evicts, and returns
// bit-identical predictions to an unbounded engine.
func TestBoundedStoreBitIdentical(t *testing.T) {
	reqs := testRequests()

	unboundedOpts := tinyOptions(7)
	unboundedOpts.AssetCaps = AssetCaps{Runs: -1, Overheads: -1, Graphs: -1}
	want := New(unboundedOpts).PredictBatch(reqs)

	boundedOpts := tinyOptions(7)
	boundedOpts.AssetCaps = AssetCaps{Runs: 2, Overheads: 1, Graphs: 2}
	boundedOpts.ResultCacheSize = 2
	bounded := New(boundedOpts)
	got := bounded.PredictBatch(reqs)

	for i := range reqs {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("request %d errored: unbounded=%v bounded=%v", i, want[i].Err, got[i].Err)
		}
		if !reflect.DeepEqual(want[i].Prediction, got[i].Prediction) {
			t.Errorf("request %d: bounded prediction %+v != unbounded %+v",
				i, got[i].Prediction, want[i].Prediction)
		}
	}

	s := bounded.AssetStats()
	caps := map[string]int{"runs": 2, "overheads": 1, "graphs": 2, "results": 2}
	evictions := uint64(0)
	for name, cap := range caps {
		c := s.Class(name)
		if c.Resident > cap {
			t.Errorf("%s resident = %d above cap %d", name, c.Resident, cap)
		}
		if c.Capacity != cap {
			t.Errorf("%s capacity = %d, want %d", name, c.Capacity, cap)
		}
		evictions += c.Evictions
	}
	if evictions == 0 {
		t.Error("tiny store saw no evictions across the batch")
	}
	if n := bounded.CachedResults(); n > 2 {
		t.Errorf("CachedResults = %d above result cap 2", n)
	}

	// The unbounded baseline never evicts.
	u := New(unboundedOpts)
	if res := u.PredictBatch(reqs); res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	for _, c := range u.AssetStats().Classes {
		if c.Evictions != 0 {
			t.Errorf("unbounded %s class evicted %d entries", c.Class, c.Evictions)
		}
	}
}

// TestAssetStatsCounters pins the memo-level accounting: first build is
// a miss, repeats are hits, and the stats survive concurrent access.
func TestAssetStatsCounters(t *testing.T) {
	e := New(tinyOptions(7))
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Model(models.NameDLRMDefault, 256); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	g := e.AssetStats().Class("graphs")
	if g.Hits+g.Misses != n {
		t.Errorf("graph hits+misses = %d+%d, want %d lookups accounted", g.Hits, g.Misses, n)
	}
	if g.Misses != 1 {
		t.Errorf("concurrent first builds = %d misses, want 1 (singleflight)", g.Misses)
	}
	// A failed build counts as a miss and stores nothing.
	if _, err := e.Model("no_such_model", 256); err == nil {
		t.Fatal("unknown model accepted")
	}
	g = e.AssetStats().Class("graphs")
	if g.Misses != 2 || g.Resident != 1 {
		t.Errorf("after failed build: misses=%d resident=%d, want 2/1", g.Misses, g.Resident)
	}
}

// TestCacheStatsInvariant is the satellite's contract: on every path —
// hits, computed misses, failures, and joins on failed in-flight
// computations — hits+misses equals the requests served, with
// validation rejects counted separately.
func TestCacheStatsInvariant(t *testing.T) {
	e := New(tinyOptions(7))
	served := uint64(0)

	// A request that validates but fails in compute (unknown device).
	bad := NewRequest("H100", models.NameDLRMDefault, 256)
	const burst = 8
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res := e.Predict(bad); res.Err == nil {
				t.Error("unknown device served")
			}
		}()
	}
	wg.Wait()
	served += burst
	hits, misses := e.CacheStats()
	if hits+misses != served {
		t.Fatalf("after failed burst: hits+misses = %d+%d, want %d served (joined failures must count)",
			hits, misses, served)
	}
	if hits != 0 {
		t.Errorf("failed requests counted as hits: %d", hits)
	}

	// Validation failures are rejected before the compute path and kept
	// out of the hit/miss counters.
	invalid := NewRequest(hw.V100, models.NameDLRMDefault, -1)
	if res := e.Predict(invalid); res.Err == nil {
		t.Fatal("invalid batch served")
	}
	if got := e.RejectedRequests(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	hits, misses = e.CacheStats()
	if hits+misses != served {
		t.Errorf("rejected request leaked into cache counters: %d+%d != %d", hits, misses, served)
	}

	// A mixed successful burst: duplicates hit or join, distinct
	// requests miss; the invariant holds regardless of interleaving.
	ok := NewRequest(hw.V100, models.NameDLRMDefault, 256)
	other := NewRequest(hw.V100, models.NameDLRMDDP, 256)
	batch := e.PredictBatch([]Request{ok, ok, other, ok, bad, other})
	for i, r := range batch {
		if i == 4 {
			if r.Err == nil {
				t.Error("bad slot served")
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
	}
	served += 6
	hits, misses = e.CacheStats()
	if hits+misses != served {
		t.Errorf("after mixed batch: hits+misses = %d+%d, want %d served", hits, misses, served)
	}

	// Sequential repeats are pure hits; the invariant keeps holding.
	for i := 0; i < 3; i++ {
		if res := e.Predict(ok); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	served += 3
	hits, misses = e.CacheStats()
	if hits+misses != served {
		t.Errorf("after repeats: hits+misses = %d+%d, want %d served", hits, misses, served)
	}

	// The cold-path engine (result cache disabled) holds it too.
	coldOpts := tinyOptions(7)
	coldOpts.ResultCacheSize = -1
	cold := New(coldOpts)
	for i := 0; i < 3; i++ {
		if res := cold.Predict(ok); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if res := cold.Predict(invalid); res.Err == nil {
		t.Fatal("invalid batch served cold")
	}
	h, m := cold.CacheStats()
	if h+m != 3 || cold.RejectedRequests() != 1 {
		t.Errorf("cold path: hits+misses = %d+%d rejected=%d, want 3 served / 1 rejected",
			h, m, cold.RejectedRequests())
	}
}

// TestResultCacheEvictionBounded: a result cache smaller than the
// distinct request set stays at its cap and evicts, while every
// prediction remains correct.
func TestResultCacheEvictionBounded(t *testing.T) {
	opts := tinyOptions(7)
	opts.ResultCacheSize = 2
	e := New(opts)
	var reqs []Request
	for _, b := range []int64{256, 512} {
		for _, w := range []string{models.NameDLRMDefault, models.NameDLRMDDP} {
			reqs = append(reqs, NewRequest(hw.V100, w, b))
		}
	}
	for _, r := range reqs {
		if res := e.Predict(r); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if n := e.CachedResults(); n != 2 {
		t.Errorf("CachedResults = %d, want cap 2", n)
	}
	rc := e.AssetStats().Class("results")
	if rc.Evictions != uint64(len(reqs)-2) {
		t.Errorf("result evictions = %d, want %d", rc.Evictions, len(reqs)-2)
	}
	// The stats' hit/miss mirror CacheStats.
	hits, misses := e.CacheStats()
	if rc.Hits != hits || rc.Misses != misses {
		t.Errorf("results class counters %d/%d diverge from CacheStats %d/%d",
			rc.Hits, rc.Misses, hits, misses)
	}
}
