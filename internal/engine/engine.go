// Package engine is the concurrent calibration and prediction core of
// the reproduction: a device-keyed cache of the paper's two portable
// asset classes — calibrated kernel-model registries and host-overhead
// databases — behind a "calibrate once per device, predict anywhere"
// API.
//
// Assets are built lazily on first use. Concurrent requests for the
// same asset are deduplicated singleflight-style, so a burst of
// predictions against an uncalibrated device triggers exactly one
// calibration; everyone else blocks on it and shares the result.
// Calibration itself fans its per-kernel-family jobs out on a bounded
// worker pool (perfmodel.CalibrateParallel), and PredictBatch fans
// independent (workload, batch, device) requests out the same way.
// Everything stays bit-deterministic in the engine seed: per-device
// streams are derived as Seed + xrand.HashString(device), so no result
// depends on arrival order or scheduling.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/scenario"
	"dlrmperf/internal/sim"
	"dlrmperf/internal/xrand"
	"dlrmperf/internal/xsync"
)

// DeviceSalt is the per-device stream salt mixed into derived seeds so
// every device calibrates and measures from its own decorrelated
// stream. It is pinned to xrand.HashString: changing it re-seeds every
// historical figure.
func DeviceSalt(device string) uint64 { return xrand.HashString(device) }

// Options configures an Engine.
type Options struct {
	// Seed is the base seed of every derived stream. Zero is a valid
	// seed and is passed through untouched — callers wanting a default
	// (the facade uses 2022) apply it themselves.
	Seed uint64
	// SaltDeviceSeeds mixes xrand.HashString(device) into each device's
	// calibration seed, giving every device its own decorrelated stream.
	// Leave false to calibrate a device with the raw Seed (the
	// single-device facade pipeline's historical behavior).
	SaltDeviceSeeds bool
	// Calib is the per-device calibration template; its Seed field is
	// overridden per device.
	Calib perfmodel.CalibOptions
	// DLRMBatches are the batch sizes pooled into DLRM overhead
	// databases (default 512..4096).
	DLRMBatches []int64
	// CNNBatches are the CNN batch sizes (default 16/32/64).
	CNNBatches []int64
	// Iters is the measured-run iteration count (default 30).
	Iters int
	// Workers bounds concurrent calibration jobs and batched
	// predictions (default runtime.GOMAXPROCS).
	Workers int
	// ResultCacheSize caps the scenario-fingerprint-keyed prediction
	// result cache (default 512 entries; negative disables the cache —
	// the cold-path ablation).
	ResultCacheSize int
}

func (o Options) withDefaults() Options {
	if len(o.DLRMBatches) == 0 {
		o.DLRMBatches = []int64{512, 1024, 2048, 4096}
	}
	if o.ResultCacheSize == 0 {
		o.ResultCacheSize = 512
	}
	if len(o.CNNBatches) == 0 {
		o.CNNBatches = []int64{16, 32, 64}
	}
	if o.Iters == 0 {
		o.Iters = 30
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Engine owns the device-keyed asset cache.
type Engine struct {
	opts   Options
	flight group
	// calGate serializes whole-device calibrations, so concurrent first
	// uses of *different* devices queue instead of stacking full worker
	// pools on top of each other: total in-flight calibration work
	// stays bounded by Workers. Per-device dedup is the singleflight's
	// job; this bounds the cross-device case.
	calGate sync.Mutex

	mu        sync.Mutex
	cals      map[string]*perfmodel.Calibration // device -> calibration
	runs      map[string]*sim.Result            // device/model/batch/profiled -> run
	dbs       map[string]*overhead.DB           // device/model -> pooled overhead DB
	shared    map[string]*overhead.DB           // device -> shared DLRM DB
	models    map[string]*models.Model          // model/batch (or scenario fingerprint) -> built graph
	calibRuns map[string]int                    // device -> calibrations actually executed

	// results caches finished predictions by request identity; hits and
	// misses are the observable counters behind CacheStats.
	results     *resultLRU
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
}

// New returns an empty engine; no calibration runs until an asset is
// first requested.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		opts:      opts,
		cals:      map[string]*perfmodel.Calibration{},
		runs:      map[string]*sim.Result{},
		dbs:       map[string]*overhead.DB{},
		shared:    map[string]*overhead.DB{},
		models:    map[string]*models.Model{},
		calibRuns: map[string]int{},
	}
	if opts.ResultCacheSize > 0 {
		e.results = newResultLRU(opts.ResultCacheSize)
	}
	return e
}

// Options returns the resolved options.
func (e *Engine) Options() Options { return e.opts }

// seedFor derives the calibration seed of one device.
func (e *Engine) seedFor(device string) uint64 {
	if e.opts.SaltDeviceSeeds {
		return e.opts.Seed + DeviceSalt(device)
	}
	return e.opts.Seed
}

// runSeed derives the measured-run seed of one (device, batch, profiled)
// combination. The formula is shared with the historical experiments
// suite so every figure reproduces unchanged.
func (e *Engine) runSeed(device string, batch int64, profiled bool) uint64 {
	s := e.opts.Seed*3 + DeviceSalt(device) + uint64(batch)
	if profiled {
		s += 17
	}
	return s
}

// memo runs the cache-then-singleflight-then-cache dance for one keyed
// asset: hit the memo map, else share one execution of build among
// concurrent callers and store its result.
func memo[T any](e *Engine, table map[string]T, key string, build func() (T, error)) (T, error) {
	e.mu.Lock()
	v, ok := table[key]
	e.mu.Unlock()
	if ok {
		return v, nil
	}
	got, err := e.flight.Do(key, func() (any, error) {
		e.mu.Lock()
		v, ok := table[key]
		e.mu.Unlock()
		if ok {
			return v, nil
		}
		v, err := build()
		if err != nil {
			var zero T
			return zero, err
		}
		e.mu.Lock()
		table[key] = v
		e.mu.Unlock()
		return v, nil
	})
	if err != nil {
		var zero T
		return zero, err
	}
	return got.(T), nil
}

// Calibration returns the device's calibrated kernel models, running
// the parallel calibration on first use. Concurrent first uses
// calibrate once.
func (e *Engine) Calibration(device string) (*perfmodel.Calibration, error) {
	return memo(e, e.cals, "cal/"+device, func() (*perfmodel.Calibration, error) {
		p, err := hw.ByName(device)
		if err != nil {
			return nil, err
		}
		opt := e.opts.Calib
		opt.Seed = e.seedFor(device)
		e.calGate.Lock()
		cal := perfmodel.CalibrateParallel(p.GPU, opt, e.opts.Workers)
		e.calGate.Unlock()
		e.mu.Lock()
		e.calibRuns[device]++
		e.mu.Unlock()
		return cal, nil
	})
}

// Install seeds the device cache with an already-calibrated (or
// deserialized) asset, so later requests skip calibration — the
// warm-start path.
func (e *Engine) Install(device string, cal *perfmodel.Calibration) {
	e.mu.Lock()
	e.cals["cal/"+device] = cal
	e.mu.Unlock()
}

// InstallOverheads seeds the (device, workload) overhead cache.
func (e *Engine) InstallOverheads(device, workload string, db *overhead.DB) {
	e.mu.Lock()
	e.dbs["db/"+device+"/"+workload] = db
	e.mu.Unlock()
}

// CalibrationRuns reports how many calibrations actually executed for a
// device — at most 1 unless the cache was dropped; 0 after a warm
// start. It exists so callers (and tests) can observe singleflight
// dedup.
func (e *Engine) CalibrationRuns(device string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calibRuns[device]
}

// Model returns the memoized built workload graph.
func (e *Engine) Model(name string, batch int64) (*models.Model, error) {
	key := fmt.Sprintf("model/%s/%d", name, batch)
	return memo(e, e.models, key, func() (*models.Model, error) {
		return models.Build(name, batch)
	})
}

// Run returns the memoized measured (or profiled) simulated run of
// model at batch on device.
func (e *Engine) Run(device, model string, batch int64, profiled bool) (*sim.Result, error) {
	key := fmt.Sprintf("run/%s/%s/%d/%v", device, model, batch, profiled)
	return memo(e, e.runs, key, func() (*sim.Result, error) {
		p, err := hw.ByName(device)
		if err != nil {
			return nil, err
		}
		m, err := e.Model(model, batch)
		if err != nil {
			return nil, err
		}
		return sim.Run(m.Graph, sim.Config{
			Platform: p, Seed: e.runSeed(device, batch, profiled),
			Warmup: 5, Iters: e.opts.Iters, Profile: profiled, Workload: model,
		}), nil
	})
}

// BatchesFor returns the evaluation batch sizes of a model family.
func (e *Engine) BatchesFor(model string) []int64 {
	switch model {
	case models.NameResNet50, models.NameInceptionV3:
		return e.opts.CNNBatches
	case models.NameTransformer:
		return []int64{64, 128, 256}
	}
	return e.opts.DLRMBatches
}

// OverheadDB returns the per-workload host-overhead database for one
// model on one device, pooled over the family's evaluation batch sizes,
// profiling lazily on first use.
func (e *Engine) OverheadDB(device, model string) (*overhead.DB, error) {
	return memo(e, e.dbs, "db/"+device+"/"+model, func() (*overhead.DB, error) {
		c := overhead.NewCollector()
		for _, b := range e.BatchesFor(model) {
			r, err := e.Run(device, model, b, true)
			if err != nil {
				return nil, err
			}
			c.Add(r.Trace)
		}
		return c.Finish(), nil
	})
}

// SharedOverheadDB pools overhead samples across all DLRM workloads on
// a device — the paper's shared database for large-scale prediction.
func (e *Engine) SharedOverheadDB(device string) (*overhead.DB, error) {
	return memo(e, e.shared, "shared/"+device, func() (*overhead.DB, error) {
		c := overhead.NewCollector()
		for _, model := range models.DLRMNames() {
			for _, b := range e.opts.DLRMBatches {
				r, err := e.Run(device, model, b, true)
				if err != nil {
					return nil, err
				}
				c.Add(r.Trace)
			}
		}
		return c.Finish(), nil
	})
}

// Predictor builds the paper's predictor for a device with the given
// overhead database, calibrating on first use.
func (e *Engine) Predictor(device string, db *overhead.DB) (*predict.Predictor, error) {
	cal, err := e.Calibration(device)
	if err != nil {
		return nil, err
	}
	return predict.New(cal.Registry, db), nil
}

// Request is one unit of batched prediction work: predict one scenario
// (workload spec + execution strategy) on one device.
type Request struct {
	Device   string        `json:"device"`
	Scenario scenario.Spec `json:"scenario"`
	// Shared selects the device's shared cross-DLRM overhead database
	// instead of the workload family's own.
	Shared bool `json:"shared,omitempty"`
}

// NewRequest wraps a built-in workload at one batch size into a
// single-device request — the pre-scenario request shape.
func NewRequest(device, workloadName string, batch int64) Request {
	return Request{Device: device, Scenario: scenario.Single(workloadName, batch)}
}

// Key is the request's cache identity: device, scenario fingerprint,
// and overhead-database mode.
func (r Request) Key() string {
	return fmt.Sprintf("%s/%s/shared=%v", r.Device, r.Scenario.Fingerprint(), r.Shared)
}

// Result pairs a request with its prediction. For multi-device
// scenarios Multi carries the communication/scaling breakdown and Plan
// the embedding-table sharding assignment; both are shared, read-only
// views when the result came from the cache.
type Result struct {
	Request    Request
	Prediction predict.Prediction
	Multi      *predict.MultiGPUPrediction
	Plan       *scenario.Plan
	// CacheHit marks results served from the prediction result cache
	// (including joins on an identical in-flight request).
	CacheHit bool
	Err      error
}

// ScalingEfficiency reports the scenario's retained fraction of linear
// scaling: 1 for single-device results.
func (r Result) ScalingEfficiency() float64 {
	if r.Multi == nil {
		return 1
	}
	return r.Multi.ScalingEfficiency
}

// CacheStats returns the prediction result cache counters. A miss is a
// request that actually computed; everything else — LRU hits and joins
// on an identical in-flight request — counts as a hit.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.cacheHits.Load(), e.cacheMisses.Load()
}

// CachedResults reports the resident result-cache entry count.
func (e *Engine) CachedResults() int {
	if e.results == nil {
		return 0
	}
	return e.results.Len()
}

// Predict serves one request, building any missing assets on the way.
// Results are cached by scenario fingerprint: repeats are served from
// memory, and identical concurrent requests share one computation.
func (e *Engine) Predict(req Request) Result {
	res := Result{Request: req}
	if err := req.Scenario.Validate(); err != nil {
		res.Err = err
		return res
	}
	if e.results == nil {
		c, err := e.predictScenario(req)
		e.cacheMisses.Add(1)
		if err != nil {
			res.Err = err
			return res
		}
		return res.fill(c, false)
	}
	key := req.Key()
	if c, ok := e.results.Get(key); ok {
		e.cacheHits.Add(1)
		return res.fill(c, true)
	}
	executed := false
	got, err := e.flight.Do("predict/"+key, func() (any, error) {
		if c, ok := e.results.Get(key); ok {
			return c, nil
		}
		executed = true
		c, err := e.predictScenario(req)
		if err != nil {
			return nil, err
		}
		e.results.Put(key, c)
		return c, nil
	})
	if err != nil {
		if executed {
			e.cacheMisses.Add(1)
		}
		res.Err = err
		return res
	}
	if executed {
		e.cacheMisses.Add(1)
	} else {
		e.cacheHits.Add(1)
	}
	return res.fill(got.(cached), !executed)
}

// fill copies a cached computation into the per-call result envelope.
func (r Result) fill(c cached, hit bool) Result {
	r.Prediction = c.pred
	r.Multi = c.multi
	r.Plan = c.plan
	r.CacheHit = hit
	return r
}

// PredictBatch fans the requests out across the worker pool and returns
// one result per request, in request order. Results are identical to
// calling Predict sequentially; each device still calibrates at most
// once, and duplicate scenarios compute at most once, no matter how
// many requests land concurrently.
func (e *Engine) PredictBatch(reqs []Request) []Result {
	out := make([]Result, len(reqs))
	xsync.ForEachN(len(reqs), e.opts.Workers, func(i int) {
		out[i] = e.Predict(reqs[i])
	})
	return out
}
