// Package engine is the concurrent calibration and prediction core of
// the reproduction: a device-keyed cache of the paper's two portable
// asset classes — calibrated kernel-model registries and host-overhead
// databases — behind a "calibrate once per device, predict anywhere"
// API.
//
// Assets are built lazily on first use. Concurrent requests for the
// same asset are deduplicated singleflight-style, so a burst of
// predictions against an uncalibrated device triggers exactly one
// calibration; everyone else blocks on it and shares the result.
// Calibration itself fans its per-kernel-family jobs out on a bounded
// worker pool (perfmodel.CalibrateParallel), and PredictBatch fans
// independent (workload, batch, device) requests out the same way.
// Everything stays bit-deterministic in the engine seed: per-device
// streams are derived as Seed + xrand.HashString(device), so no result
// depends on arrival order or scheduling.
package engine

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/models"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/scenario"
	"dlrmperf/internal/sim"
	"dlrmperf/internal/xrand"
	"dlrmperf/internal/xsync"
)

// DeviceSalt is the per-device stream salt mixed into derived seeds so
// every device calibrates and measures from its own decorrelated
// stream. It is pinned to xrand.HashString: changing it re-seeds every
// historical figure.
func DeviceSalt(device string) uint64 { return xrand.HashString(device) }

// Options configures an Engine.
type Options struct {
	// Seed is the base seed of every derived stream. Zero is a valid
	// seed and is passed through untouched — callers wanting a default
	// (the facade uses 2022) apply it themselves.
	Seed uint64
	// SaltDeviceSeeds mixes xrand.HashString(device) into each device's
	// calibration seed, giving every device its own decorrelated stream.
	// Leave false to calibrate a device with the raw Seed (the
	// single-device facade pipeline's historical behavior).
	SaltDeviceSeeds bool
	// Calib is the per-device calibration template; its Seed field is
	// overridden per device.
	Calib perfmodel.CalibOptions
	// DLRMBatches are the batch sizes pooled into DLRM overhead
	// databases (default 512..4096).
	DLRMBatches []int64
	// CNNBatches are the CNN batch sizes (default 16/32/64).
	CNNBatches []int64
	// Iters is the measured-run iteration count (default 30).
	Iters int
	// Workers bounds concurrent calibration jobs and batched
	// predictions (default runtime.GOMAXPROCS).
	Workers int
	// ResultCacheSize caps the scenario-fingerprint-keyed prediction
	// result cache (default 512 entries; negative disables the cache —
	// the cold-path ablation).
	ResultCacheSize int
	// AssetCaps bounds the evictable asset classes of the engine's
	// unified store (runs, overhead DBs, graphs, compiled plans).
	// Calibrations are pinned and never evict.
	AssetCaps AssetCaps
	// DisableCompiledPlans routes predictions through the historical
	// resolve-everything-per-request path instead of the compiled-plan
	// cache — the ablation the bit-identity tests compare against.
	DisableCompiledPlans bool
}

// AssetCaps bounds the resident entry count of each evictable asset
// class. Zero fields select the defaults; negative values leave the
// class unbounded (the pre-bounded behavior, kept for ablations and
// baselines). Calibrations take no cap: warm-start installs and the
// "calibrate once per device" contract must survive arbitrary traffic,
// so that class is pinned.
type AssetCaps struct {
	// Runs caps memoized measured/profiled simulated runs (default 512).
	Runs int
	// Overheads caps per-workload and shared host-overhead databases
	// (default 128).
	Overheads int
	// Graphs caps built workload/scenario execution graphs, including
	// per-shard multi-GPU graphs (default 512).
	Graphs int
	// Plans caps compiled scenario plans — requests resolved once into
	// executable form (default 512). An evicted plan recompiles from the
	// graph class on next use and predicts identically.
	Plans int
}

func (c AssetCaps) withDefaults() AssetCaps {
	if c.Runs == 0 {
		c.Runs = 512
	}
	if c.Overheads == 0 {
		c.Overheads = 128
	}
	if c.Graphs == 0 {
		c.Graphs = 512
	}
	if c.Plans == 0 {
		c.Plans = 512
	}
	return c
}

func (o Options) withDefaults() Options {
	if len(o.DLRMBatches) == 0 {
		o.DLRMBatches = []int64{512, 1024, 2048, 4096}
	}
	if o.ResultCacheSize == 0 {
		o.ResultCacheSize = 512
	}
	if len(o.CNNBatches) == 0 {
		o.CNNBatches = []int64{16, 32, 64}
	}
	if o.Iters == 0 {
		o.Iters = 30
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	o.AssetCaps = o.AssetCaps.withDefaults()
	return o
}

// Engine owns the device-keyed asset cache.
type Engine struct {
	opts   Options
	flight group
	// calGate serializes whole-device calibrations, so concurrent first
	// uses of *different* devices queue instead of stacking full worker
	// pools on top of each other: total in-flight calibration work
	// stays bounded by Workers. Per-device dedup is the singleflight's
	// job; this bounds the cross-device case.
	calGate sync.Mutex

	mu        sync.Mutex
	calibRuns map[string]int // device -> calibrations actually executed
	// assetEpochs counts per-device asset mutations (calibration,
	// installs, overhead-DB collection) — the change signal a cluster
	// worker's asset sync uses to decide when a device's SaveAssets
	// snapshot is stale and must be re-pushed to the coordinator.
	assetEpochs map[string]uint64

	// store is the unified metered asset store: every memoized artifact
	// — calibrations (pinned), runs, overhead DBs, graphs, and finished
	// predictions — lives in one of its size-bounded classes.
	store *assetStore
	// results points at the store's result class; nil when the result
	// cache is disabled (negative ResultCacheSize).
	results *classStore
	// cacheHits/cacheMisses are the request-level result counters behind
	// CacheStats; rejected counts requests that failed validation before
	// reaching the compute path.
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	rejected    atomic.Uint64

	// Stream counters behind StreamStats: requests concurrently inside
	// Predict (and the high-water mark), requests completed, requests
	// abandoned by context cancellation, and wall-clock latency totals.
	// They are observability only — no prediction depends on them — so
	// the wall-clock reads do not break bit-determinism.
	inFlight     atomic.Int64
	peakInFlight atomic.Int64
	served       atomic.Uint64
	canceled     atomic.Uint64
	latencyUs    atomic.Int64
	maxLatencyUs atomic.Int64
}

// StreamStats is the engine's async-stream observability block: the
// number of requests currently inside the predict path, its high-water
// mark, completed/canceled totals, and wall-clock latency aggregates.
// Served equals CacheStats' hits+misses — every validated request is
// accounted exactly once, including ones whose caller abandoned the
// wait (Canceled, a subset of misses).
type StreamStats struct {
	InFlight     int64  `json:"in_flight"`
	PeakInFlight int64  `json:"peak_in_flight"`
	Served       uint64 `json:"served"`
	Canceled     uint64 `json:"canceled"`
	TotalUs      int64  `json:"total_latency_us"`
	MaxUs        int64  `json:"max_latency_us"`
}

// AvgUs is the mean per-request wall-clock latency in microseconds.
func (s StreamStats) AvgUs() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.TotalUs) / float64(s.Served)
}

// StreamStats returns the engine's async-stream counters.
func (e *Engine) StreamStats() StreamStats {
	return StreamStats{
		InFlight:     e.inFlight.Load(),
		PeakInFlight: e.peakInFlight.Load(),
		Served:       e.served.Load(),
		Canceled:     e.canceled.Load(),
		TotalUs:      e.latencyUs.Load(),
		MaxUs:        e.maxLatencyUs.Load(),
	}
}

// New returns an empty engine; no calibration runs until an asset is
// first requested.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		opts:        opts,
		calibRuns:   map[string]int{},
		assetEpochs: map[string]uint64{},
		store:       newAssetStore(opts),
	}
	if opts.ResultCacheSize > 0 {
		e.results = e.store.class(classResult)
	}
	return e
}

// Options returns the resolved options.
func (e *Engine) Options() Options { return e.opts }

// seedFor derives the calibration seed of one device.
func (e *Engine) seedFor(device string) uint64 {
	if e.opts.SaltDeviceSeeds {
		return e.opts.Seed + DeviceSalt(device)
	}
	return e.opts.Seed
}

// runSeed derives the measured-run seed of one (device, batch, profiled)
// combination. The formula is shared with the historical experiments
// suite so every figure reproduces unchanged.
func (e *Engine) runSeed(device string, batch int64, profiled bool) uint64 {
	s := e.opts.Seed*3 + DeviceSalt(device) + uint64(batch)
	if profiled {
		s += 17
	}
	return s
}

// memo runs the cache-then-singleflight-then-cache dance for one keyed
// asset: hit the class's resident store, else share one execution of
// build among concurrent callers and store (and meter) its result.
// Eviction stays race-free because bounding lives inside the class
// store's lock while build dedup lives in the singleflight: a key
// evicted mid-burst is rebuilt exactly once, never torn.
//
// Counters follow the result-cache convention: a miss is a caller that
// actually built or joined a failed build; everything served from
// resident memory or a successful in-flight build counts as a hit.
func memo[T any](e *Engine, class assetClass, key string, build func() (T, error)) (T, error) {
	cs := e.store.class(class)
	if v, ok := cs.get(key); ok {
		cs.hits.Add(1)
		return v.(T), nil
	}
	executed := false
	got, err := e.flight.Do(key, func() (any, error) {
		if v, ok := cs.get(key); ok {
			return v, nil
		}
		executed = true
		v, err := build()
		if err != nil {
			return nil, err
		}
		cs.put(key, v, approxBytes(v))
		return v, nil
	})
	if err != nil {
		cs.misses.Add(1)
		var zero T
		return zero, err
	}
	if executed {
		cs.misses.Add(1)
	} else {
		cs.hits.Add(1)
	}
	return got.(T), nil
}

// Calibration returns the device's calibrated kernel models, running
// the parallel calibration on first use. Concurrent first uses
// calibrate once.
func (e *Engine) Calibration(device string) (*perfmodel.Calibration, error) {
	return memo(e, classCalibration, "cal/"+device, func() (*perfmodel.Calibration, error) {
		p, err := hw.ByName(device)
		if err != nil {
			return nil, err
		}
		opt := e.opts.Calib
		opt.Seed = e.seedFor(device)
		e.calGate.Lock()
		cal := perfmodel.CalibrateParallel(p.GPU, opt, e.opts.Workers)
		e.calGate.Unlock()
		e.mu.Lock()
		e.calibRuns[device]++
		e.assetEpochs[device]++
		e.mu.Unlock()
		return cal, nil
	})
}

// bumpAssetEpoch advances a device's asset-mutation counter.
func (e *Engine) bumpAssetEpoch(device string) {
	e.mu.Lock()
	e.assetEpochs[device]++
	e.mu.Unlock()
}

// AssetsEpoch reports a device's asset-mutation counter: it advances
// whenever the device calibrates, has assets installed, or collects an
// overhead database, so a SaveAssets snapshot taken at one epoch is
// current as long as the epoch has not moved.
func (e *Engine) AssetsEpoch(device string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.assetEpochs[device]
}

// CalibratedDevices lists the devices with a resident calibration
// (executed or installed), sorted — the set whose SaveAssets export is
// cheap and worth replicating.
func (e *Engine) CalibratedDevices() []string {
	snap := e.store.class(classCalibration).snapshot()
	out := make([]string, 0, len(snap))
	for k := range snap {
		out = append(out, strings.TrimPrefix(k, "cal/"))
	}
	sort.Strings(out)
	return out
}

// Install seeds the device cache with an already-calibrated (or
// deserialized) asset, so later requests skip calibration — the
// warm-start path. Calibrations are pinned: an install survives any
// amount of traffic.
func (e *Engine) Install(device string, cal *perfmodel.Calibration) {
	e.store.class(classCalibration).put("cal/"+device, cal, approxBytes(cal))
	e.bumpAssetEpoch(device)
}

// InstallOverheads seeds the (device, workload) overhead cache.
// Installed databases are subject to the overheads-class LRU like any
// collected one; if evicted they rebuild from this engine's own runs.
func (e *Engine) InstallOverheads(device, workload string, db *overhead.DB) {
	e.store.class(classOverheads).put("db/"+device+"/"+workload, db, approxBytes(db))
	e.bumpAssetEpoch(device)
}

// CalibrationRuns reports how many calibrations actually executed for a
// device — at most 1 unless the cache was dropped; 0 after a warm
// start. It exists so callers (and tests) can observe singleflight
// dedup.
func (e *Engine) CalibrationRuns(device string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calibRuns[device]
}

// Model returns the memoized built workload graph.
func (e *Engine) Model(name string, batch int64) (*models.Model, error) {
	key := "model/" + name + "/" + strconv.FormatInt(batch, 10)
	return memo(e, classGraph, key, func() (*models.Model, error) {
		return models.Build(name, batch)
	})
}

// Run returns the memoized measured (or profiled) simulated run of
// model at batch on device.
func (e *Engine) Run(device, model string, batch int64, profiled bool) (*sim.Result, error) {
	key := "run/" + device + "/" + model + "/" + strconv.FormatInt(batch, 10) + "/" + strconv.FormatBool(profiled)
	return memo(e, classRun, key, func() (*sim.Result, error) {
		p, err := hw.ByName(device)
		if err != nil {
			return nil, err
		}
		m, err := e.Model(model, batch)
		if err != nil {
			return nil, err
		}
		return sim.Run(m.Graph, sim.Config{
			Platform: p, Seed: e.runSeed(device, batch, profiled),
			Warmup: 5, Iters: e.opts.Iters, Profile: profiled, Workload: model,
		}), nil
	})
}

// BatchesFor returns the evaluation batch sizes of a model family.
func (e *Engine) BatchesFor(model string) []int64 {
	switch model {
	case models.NameResNet50, models.NameInceptionV3:
		return e.opts.CNNBatches
	case models.NameTransformer:
		return []int64{64, 128, 256}
	}
	return e.opts.DLRMBatches
}

// OverheadDB returns the per-workload host-overhead database for one
// model on one device, pooled over the family's evaluation batch sizes,
// profiling lazily on first use.
func (e *Engine) OverheadDB(device, model string) (*overhead.DB, error) {
	return memo(e, classOverheads, "db/"+device+"/"+model, func() (*overhead.DB, error) {
		c := overhead.NewCollector()
		for _, b := range e.BatchesFor(model) {
			r, err := e.Run(device, model, b, true)
			if err != nil {
				return nil, err
			}
			c.Add(r.Trace)
		}
		e.bumpAssetEpoch(device)
		return c.Finish(), nil
	})
}

// SharedOverheadDB pools overhead samples across all DLRM workloads on
// a device — the paper's shared database for large-scale prediction.
func (e *Engine) SharedOverheadDB(device string) (*overhead.DB, error) {
	return memo(e, classOverheads, "shared/"+device, func() (*overhead.DB, error) {
		c := overhead.NewCollector()
		for _, model := range models.DLRMNames() {
			for _, b := range e.opts.DLRMBatches {
				r, err := e.Run(device, model, b, true)
				if err != nil {
					return nil, err
				}
				c.Add(r.Trace)
			}
		}
		e.bumpAssetEpoch(device)
		return c.Finish(), nil
	})
}

// Predictor builds the paper's predictor for a device with the given
// overhead database, calibrating on first use.
func (e *Engine) Predictor(device string, db *overhead.DB) (*predict.Predictor, error) {
	cal, err := e.Calibration(device)
	if err != nil {
		return nil, err
	}
	return predict.New(cal.Registry, db), nil
}

// Request is one unit of batched prediction work: predict one scenario
// (workload spec + execution strategy) on one device.
type Request struct {
	Device   string        `json:"device"`
	Scenario scenario.Spec `json:"scenario"`
	// Shared selects the device's shared cross-DLRM overhead database
	// instead of the workload family's own.
	Shared bool `json:"shared,omitempty"`
}

// NewRequest wraps a built-in workload at one batch size into a
// single-device request — the pre-scenario request shape.
func NewRequest(device, workloadName string, batch int64) Request {
	return Request{Device: device, Scenario: scenario.Single(workloadName, batch)}
}

// Key is the request's cache identity: device, scenario fingerprint,
// and overhead-database mode.
func (r Request) Key() string {
	return string(r.appendKey(nil))
}

// appendKey appends the cache identity to b — the allocation-free Key
// used with pooled scratch buffers on the hot lookup path. The layout
// (device/fingerprint/shared=bool) is pinned: it keys resident results
// across engine restarts via warm-started stores.
func (r *Request) appendKey(b []byte) []byte {
	b = append(b, r.Device...)
	b = append(b, '/')
	b = r.Scenario.AppendFingerprint(b)
	if r.Shared {
		return append(b, "/shared=true"...)
	}
	return append(b, "/shared=false"...)
}

// keyBufPool recycles the scratch buffers behind appendKey so a cache
// hit builds its lookup key with zero heap allocations.
var keyBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 128); return &b },
}

// Result pairs a request with its prediction. For multi-device
// scenarios Multi carries the communication/scaling breakdown and Plan
// the embedding-table sharding assignment; both are shared, read-only
// views when the result came from the cache.
type Result struct {
	Request    Request
	Prediction predict.Prediction
	Multi      *predict.MultiGPUPrediction
	Plan       *scenario.Plan
	// CacheHit marks results served from the prediction result cache
	// (including joins on an identical in-flight request).
	CacheHit bool
	Err      error
}

// ScalingEfficiency reports the scenario's retained fraction of linear
// scaling: 1 for single-device results.
func (r Result) ScalingEfficiency() float64 {
	if r.Multi == nil {
		return 1
	}
	return r.Multi.ScalingEfficiency
}

// CacheStats returns the prediction result cache counters. A miss is a
// request that reached the compute path: one that actually computed, or
// one that joined an in-flight computation that failed. Everything
// served from memory — LRU hits and joins on an identical in-flight
// request that succeeded — counts as a hit. The invariant is
// hits + misses == requests served; requests rejected by validation are
// counted separately (RejectedRequests) and appear in neither counter.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.cacheHits.Load(), e.cacheMisses.Load()
}

// RejectedRequests counts requests that failed scenario validation
// before reaching the compute path (and therefore the cache counters).
func (e *Engine) RejectedRequests() uint64 { return e.rejected.Load() }

// RejectRequest tallies a request a front end refused before it could
// become an engine request (the facade's device-set check and scenario
// resolution). Counting those here keeps the serving-layer invariant —
// hits + misses + rejected == requests dispatched — on every path.
func (e *Engine) RejectRequest() { e.rejected.Add(1) }

// CachedResults reports the resident result-cache entry count.
func (e *Engine) CachedResults() int {
	if e.results == nil {
		return 0
	}
	return e.results.len()
}

// AssetStats reports the unified asset store's per-class counters:
// resident entries against capacity, approximate resident bytes, and
// hit/miss/eviction totals. The results class mirrors the
// request-level CacheStats counters (so joins on in-flight requests are
// included), while its resident/bytes/eviction fields come from the
// store itself.
func (e *Engine) AssetStats() AssetStats {
	s := e.store.stats()
	for i := range s.Classes {
		if s.Classes[i].Class == classNames[classResult] {
			s.Classes[i].Hits = e.cacheHits.Load()
			s.Classes[i].Misses = e.cacheMisses.Load()
		}
	}
	return s
}

// Predict serves one request, building any missing assets on the way.
// Results are cached by scenario fingerprint: repeats are served from
// memory, and identical concurrent requests share one computation.
func (e *Engine) Predict(req Request) Result {
	return e.PredictCtx(context.Background(), req)
}

// PredictCtx is Predict with a caller deadline: when ctx expires the
// caller gets ctx.Err() immediately, but the computation it initiated
// (or joined) keeps running detached and lands in the result cache, so
// a canceled request never poisons the singleflight entry or wastes
// the work for the next identical request. Canceled requests count as
// cache misses (they reached the compute path without being served
// from memory) plus the separate StreamStats.Canceled counter, keeping
// hits + misses == requests served on every path. With the result
// cache disabled (negative ResultCacheSize) there is no flight to
// detach from: ctx is only observed at entry and the computation runs
// inline on the caller — the historical cold-ablation behavior.
func (e *Engine) PredictCtx(ctx context.Context, req Request) Result {
	res := Result{Request: req}
	if err := req.Scenario.Validate(); err != nil {
		e.rejected.Add(1)
		res.Err = err
		return res
	}
	start := time.Now() //lint:allow deterministic latency observability only; never feeds keys or fingerprints
	xsync.AtomicMax(&e.peakInFlight, e.inFlight.Add(1))
	defer func() {
		e.inFlight.Add(-1)
		us := time.Since(start).Microseconds()
		e.latencyUs.Add(us)
		xsync.AtomicMax(&e.maxLatencyUs, us)
		e.served.Add(1)
	}()
	if err := ctx.Err(); err != nil {
		e.cacheMisses.Add(1)
		e.canceled.Add(1)
		res.Err = err
		return res
	}
	if e.results == nil {
		c, err := e.predictScenario(req)
		e.cacheMisses.Add(1)
		if err != nil {
			res.Err = err
			return res
		}
		return res.fill(c, false)
	}
	kb := keyBufPool.Get().(*[]byte)
	buf := req.appendKey((*kb)[:0])
	if c, ok := e.results.getBytes(buf); ok {
		*kb = buf
		keyBufPool.Put(kb)
		e.cacheHits.Add(1)
		return res.fill(c.(cached), true)
	}
	// Miss: materialize the key once for the singleflight and the store.
	key := string(buf)
	*kb = buf
	keyBufPool.Put(kb)
	executed := false
	//lint:allow hotpath miss-path only: predictFast already served cache hits alloc-free above
	got, err := e.flight.DoCtx(ctx, "predict/"+key, func() (any, error) {
		if c, ok := e.results.get(key); ok {
			return c, nil
		}
		executed = true
		c, err := e.predictScenario(req)
		if err != nil {
			return nil, err
		}
		e.results.put(key, c, approxBytes(c))
		return c, nil
	})
	if err != nil {
		// The executing caller and every joiner of the failed flight
		// reached the compute path without being served from memory:
		// count them all as misses so hits+misses keeps equaling the
		// requests served even on error and cancellation paths.
		e.cacheMisses.Add(1)
		if ctx.Err() != nil && err == ctx.Err() {
			e.canceled.Add(1)
		}
		res.Err = err
		return res
	}
	if executed {
		e.cacheMisses.Add(1)
	} else {
		e.cacheHits.Add(1)
	}
	return res.fill(got.(cached), !executed)
}

// RemoteResult serves a request whose computation happens OUTSIDE this
// engine — the cluster coordinator's pass-through: workers compute,
// but repeats of an identical scenario are answered from this engine's
// fingerprint result cache without another network round trip. The
// request's Key() addresses the same results class as local
// predictions (under a "remote/" prefix, so locally computed entries
// and opaque remote payloads never collide), identical concurrent
// requests collapse through the same singleflight, and the counters
// follow Predict's conventions exactly: a hit is anything served from
// memory or a successful in-flight join, a miss anything that ran (or
// joined a failed) fetch, so CacheStats/StreamStats invariants hold
// unchanged for a cache-only engine that never calibrates. A fetch
// error is returned to every joiner and nothing is stored, so a
// transient worker failure never poisons the cache. ctx follows
// DoCtx's detached-execution contract: an expired caller abandons the
// wait while the fetch completes into the cache.
func (e *Engine) RemoteResult(ctx context.Context, req Request, fetch func() (any, error)) (v any, hit bool, err error) {
	start := time.Now() //lint:allow deterministic latency observability only; never feeds keys or fingerprints
	xsync.AtomicMax(&e.peakInFlight, e.inFlight.Add(1))
	defer func() {
		e.inFlight.Add(-1)
		us := time.Since(start).Microseconds()
		e.latencyUs.Add(us)
		xsync.AtomicMax(&e.maxLatencyUs, us)
		e.served.Add(1)
	}()
	if e.results == nil {
		v, err = fetch()
		e.cacheMisses.Add(1)
		return v, false, err
	}
	kb := keyBufPool.Get().(*[]byte)
	buf := append((*kb)[:0], "remote/"...)
	buf = req.appendKey(buf)
	if v, ok := e.results.getBytes(buf); ok {
		*kb = buf
		keyBufPool.Put(kb)
		e.cacheHits.Add(1)
		return v, true, nil
	}
	key := string(buf)
	*kb = buf
	keyBufPool.Put(kb)
	executed := false
	got, err := e.flight.DoCtx(ctx, key, func() (any, error) {
		if v, ok := e.results.get(key); ok {
			return v, nil
		}
		executed = true
		v, err := fetch()
		if err != nil {
			return nil, err
		}
		e.results.put(key, v, approxBytes(v))
		return v, nil
	})
	if err != nil {
		e.cacheMisses.Add(1)
		if ctx.Err() != nil && err == ctx.Err() {
			e.canceled.Add(1)
		}
		return nil, false, err
	}
	if executed {
		e.cacheMisses.Add(1)
		return got, false, nil
	}
	e.cacheHits.Add(1)
	return got, true, nil
}

// InstallRemoteResult seeds the fingerprint result cache with an
// externally computed value under the same "remote/" key RemoteResult
// would use — the coordinator replication path: a peer that fetched a
// row from a worker shares it, so a repeat hitting THIS engine is a
// hit without a worker round trip. No request counters move — a
// replicated entry is an install, not a served request — which keeps
// hits + misses + rejected == requests intact on every coordinator.
func (e *Engine) InstallRemoteResult(req Request, v any) {
	if e.results == nil {
		return
	}
	e.results.put("remote/"+req.Key(), v, approxBytes(v))
}

// fill copies a cached computation into the per-call result envelope.
func (r Result) fill(c cached, hit bool) Result {
	r.Prediction = c.pred
	r.Multi = c.multi
	r.Plan = c.plan
	r.CacheHit = hit
	return r
}

// PredictBatch fans the requests out across the worker pool and returns
// one result per request, in request order. Results are identical to
// calling Predict sequentially; each device still calibrates at most
// once, and duplicate scenarios compute at most once, no matter how
// many requests land concurrently.
func (e *Engine) PredictBatch(reqs []Request) []Result {
	return e.PredictBatchCtx(context.Background(), reqs)
}

// PredictBatchCtx is PredictBatch under a shared caller deadline: every
// request observes ctx the way PredictCtx does, so canceling the
// context abandons the whole batch without poisoning any in-flight
// computation.
//
// Warm requests — result-cache hits and validation rejections — are
// served inline on the calling goroutine before any fan-out, so a
// fully-warm batch never pays the worker pool's goroutine and channel
// traffic; only the requests that need computation are fanned out.
func (e *Engine) PredictBatchCtx(ctx context.Context, reqs []Request) []Result {
	out := make([]Result, len(reqs))
	var miss []int
	for i := range reqs {
		if !e.predictFast(ctx, &reqs[i], &out[i]) {
			miss = append(miss, i)
		}
	}
	if len(miss) == 0 {
		return out
	}
	xsync.ForEachN(len(miss), e.opts.Workers, func(j int) {
		out[miss[j]] = e.PredictCtx(ctx, reqs[miss[j]])
	})
	return out
}

// predictFast serves a request into *out if — and only if — no
// computation is needed: a validation rejection, or a result-cache
// hit. Its accounting is exactly PredictCtx's for those two outcomes
// (one rejection, or one hit + one served with latency recorded);
// anything else returns false with *out untouched, for PredictCtx to
// handle in full. Validation runs before the lookup because
// single-device identity drops the comm field: an invalid spec can
// alias a valid cached one. Pointer in, pointer out: the request and
// result structs are large enough that by-value passing shows up as
// copy traffic on warm batches.
func (e *Engine) predictFast(ctx context.Context, req *Request, out *Result) bool {
	if e.results == nil {
		return false
	}
	if err := req.Scenario.Validate(); err != nil {
		e.rejected.Add(1)
		out.Request = *req
		out.Err = err
		return true
	}
	if ctx.Err() != nil {
		// Cancellation accounting (miss + canceled) belongs to the slow
		// path, which re-observes ctx at entry.
		return false
	}
	start := time.Now() //lint:allow deterministic latency observability only; never feeds keys or fingerprints
	kb := keyBufPool.Get().(*[]byte)
	buf := req.appendKey((*kb)[:0])
	c, ok := e.results.getBytes(buf)
	*kb = buf
	keyBufPool.Put(kb)
	if !ok {
		return false
	}
	xsync.AtomicMax(&e.peakInFlight, e.inFlight.Add(1))
	e.cacheHits.Add(1)
	cc := c.(cached)
	out.Request = *req
	out.Prediction = cc.pred
	out.Multi = cc.multi
	out.Plan = cc.plan
	out.CacheHit = true
	e.inFlight.Add(-1)
	us := time.Since(start).Microseconds()
	e.latencyUs.Add(us)
	xsync.AtomicMax(&e.maxLatencyUs, us)
	e.served.Add(1)
	return true
}
