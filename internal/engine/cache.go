package engine

import (
	"container/list"
	"sync"

	"dlrmperf/internal/predict"
	"dlrmperf/internal/scenario"
)

// cached is the memory-resident value of one served scenario request:
// everything Predict computes besides the per-call Request/CacheHit
// envelope. Values are shared between callers and must be treated as
// read-only.
type cached struct {
	pred  predict.Prediction
	multi *predict.MultiGPUPrediction
	plan  *scenario.Plan
}

// resultLRU is a small mutex-guarded LRU keyed by request identity
// (device + scenario fingerprint + overhead mode). It sits in front of
// the predict fan-out so repeated requests — inside one PredictBatch or
// across calls — are served from memory instead of re-walking the
// execution graph.
type resultLRU struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val cached
}

func newResultLRU(capacity int) *resultLRU {
	return &resultLRU{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached value and refreshes its recency.
func (c *resultLRU) Get(key string) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return cached{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) a value, evicting the least-recently-used
// entry when over capacity.
func (c *resultLRU) Put(key string, v cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: v})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// Len reports the resident entry count.
func (c *resultLRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
