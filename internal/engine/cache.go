package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dlrmperf/internal/models"
	"dlrmperf/internal/overhead"
	"dlrmperf/internal/perfmodel"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/scenario"
	"dlrmperf/internal/sim"
)

// cached is the memory-resident value of one served scenario request:
// everything Predict computes besides the per-call Request/CacheHit
// envelope. Values are shared between callers and must be treated as
// read-only.
type cached struct {
	pred  predict.Prediction
	multi *predict.MultiGPUPrediction
	plan  *scenario.Plan
}

// assetClass indexes one class of engine-owned assets in the store.
// Every expensive artifact the engine memoizes lives in exactly one
// class, with its own capacity, recency list, and counters.
type assetClass int

const (
	// classCalibration holds calibrated kernel-model registries. The
	// class is pinned: entries are never evicted, because warm-start
	// installs and the "calibrate once per device" contract must survive
	// arbitrary traffic.
	classCalibration assetClass = iota
	// classRun holds measured/profiled simulated runs.
	classRun
	// classOverheads holds per-workload and shared host-overhead DBs.
	classOverheads
	// classGraph holds built workload execution graphs (including
	// per-shard scenario graphs).
	classGraph
	// classPlan holds compiled scenario plans: a request resolved once
	// into its per-shard graphs, LPT shard assignment, comm model, and
	// bound predictor, so steady-state prediction is lookup + arithmetic.
	classPlan
	// classResult holds finished predictions keyed by request identity.
	classResult
	numAssetClasses
)

// ClassName renders an asset class for stats and reports.
var classNames = [numAssetClasses]string{
	"calibrations", "runs", "overheads", "graphs", "plans", "results",
}

// ClassStats is the observable state of one asset class: resident
// entries against the configured capacity, approximate resident bytes,
// and the lifetime hit/miss/eviction counters.
type ClassStats struct {
	Class    string `json:"class"`
	Resident int    `json:"resident"`
	// Capacity is the configured entry cap; 0 means unbounded (the
	// pinned calibration class, or a cap explicitly disabled).
	Capacity int `json:"capacity"`
	// Bytes is the approximate resident footprint of the class.
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Pinned classes never evict, whatever their size.
	Pinned bool `json:"pinned,omitempty"`
}

// AssetStats is the full asset-store report: one entry per class in
// declaration order plus the summed approximate resident bytes.
type AssetStats struct {
	Classes    []ClassStats `json:"classes"`
	TotalBytes int64        `json:"total_bytes"`
}

// Class returns the named class's stats (zero value when absent).
func (s AssetStats) Class(name string) ClassStats {
	for _, c := range s.Classes {
		if c.Class == name {
			return c
		}
	}
	return ClassStats{}
}

// classStore is one class's shard of the asset store: a mutex-guarded
// LRU (the generalization of the PR-2 result LRU) with approximate byte
// accounting and lock-free counters. Values are immutable once stored,
// so a reader holding an evicted value stays correct; eviction only
// bounds residency.
type classStore struct {
	mu sync.Mutex
	// cap bounds resident entries; <= 0 means unbounded.
	cap int
	// pinned disables eviction entirely (calibrations).
	pinned bool
	ll     *list.List
	items  map[string]*list.Element
	bytes  int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type storeEntry struct {
	key   string
	val   any
	bytes int64
}

func newClassStore(capacity int, pinned bool) *classStore {
	return &classStore{
		cap: capacity, pinned: pinned,
		ll: list.New(), items: map[string]*list.Element{},
	}
}

// get returns the stored value and refreshes its recency. It does not
// touch the hit/miss counters — the memo dance owns request-level
// accounting so singleflight joins are counted exactly once.
func (c *classStore) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*storeEntry).val, true
}

// getBytes is get keyed by a scratch byte buffer. The map index uses
// the string(key) conversion form the compiler recognizes, so a hit
// costs zero allocations — the hot-path lookup under pooled key
// builders.
func (c *classStore) getBytes(key []byte) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*storeEntry).val, true
}

// put inserts (or refreshes) a value with its approximate size, then
// evicts least-recently-used entries while over capacity. Pinned
// classes never evict.
func (c *classStore) put(key string, v any, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*storeEntry)
		c.bytes += bytes - e.bytes
		e.val, e.bytes = v, bytes
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&storeEntry{key: key, val: v, bytes: bytes})
	c.bytes += bytes
	if c.pinned || c.cap <= 0 {
		return
	}
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		e := last.Value.(*storeEntry)
		c.ll.Remove(last)
		delete(c.items, e.key)
		c.bytes -= e.bytes
		c.evictions.Add(1)
	}
}

// len reports the resident entry count.
func (c *classStore) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// snapshot copies the resident key->value mapping (SaveAssets walks it).
func (c *classStore) snapshot() map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]any, len(c.items))
	for k, el := range c.items {
		out[k] = el.Value.(*storeEntry).val
	}
	return out
}

// stats returns the class's observable state under one lock acquisition.
func (c *classStore) stats(name string) ClassStats {
	c.mu.Lock()
	resident, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	capacity := c.cap
	if capacity < 0 {
		capacity = 0
	}
	return ClassStats{
		Class: name, Resident: resident, Capacity: capacity, Bytes: bytes,
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Evictions: c.evictions.Load(), Pinned: c.pinned,
	}
}

// assetStore is the engine's unified metered store: one classStore per
// asset class. Bounding lives here; build dedup stays with the engine's
// singleflight, so eviction under concurrent load cannot double-build
// or tear an entry.
type assetStore struct {
	classes [numAssetClasses]*classStore
}

func newAssetStore(opts Options) *assetStore {
	s := &assetStore{}
	s.classes[classCalibration] = newClassStore(0, true)
	s.classes[classRun] = newClassStore(opts.AssetCaps.Runs, false)
	s.classes[classOverheads] = newClassStore(opts.AssetCaps.Overheads, false)
	s.classes[classGraph] = newClassStore(opts.AssetCaps.Graphs, false)
	s.classes[classPlan] = newClassStore(opts.AssetCaps.Plans, false)
	// The result class is created even when the result cache is
	// disabled (negative ResultCacheSize) so its counters still report;
	// Predict just never stores into it.
	resultCap := opts.ResultCacheSize
	if resultCap < 0 {
		resultCap = 0
	}
	s.classes[classResult] = newClassStore(resultCap, false)
	return s
}

func (s *assetStore) class(c assetClass) *classStore { return s.classes[c] }

// stats assembles the full per-class report.
func (s *assetStore) stats() AssetStats {
	out := AssetStats{Classes: make([]ClassStats, 0, len(s.classes))}
	for i, c := range s.classes {
		cs := c.stats(classNames[i])
		out.Classes = append(out.Classes, cs)
		out.TotalBytes += cs.Bytes
	}
	return out
}

// approxBytes estimates the resident footprint of one asset. The
// numbers are deliberately rough — they meter relative pressure, not
// allocator truth — but scale with the dominant payload of each type:
// trace events for runs, per-op stats for overhead DBs, nodes for
// graphs, serialized registry size for calibrations.
func approxBytes(v any) int64 {
	const (
		ptrOverhead  = 48  // map/list bookkeeping per entry
		eventBytes   = 96  // trace.Event struct
		statsBytes   = 32  // overhead.Stats + map key share
		nodeBytes    = 200 // graph.Node + op + tensor metadata share
		opTimeBytes  = 64  // predict.OpTime
		fallbackSize = 1 << 10
	)
	switch t := v.(type) {
	case *sim.Result:
		n := int64(ptrOverhead)
		if t.Trace != nil {
			n += int64(len(t.Trace.Events)) * eventBytes
			n += int64(len(t.Trace.IterSpans)) * 16
			for _, ev := range t.Trace.Events {
				n += int64(len(ev.Name) + len(ev.Op))
			}
		}
		return n
	case *overhead.DB:
		n := int64(ptrOverhead) + 5*statsBytes // T1 + defaults
		for op := range t.PerOp {
			n += int64(len(op)) + 3*statsBytes
		}
		for fn := range t.T4 {
			n += int64(len(fn)) + statsBytes
		}
		return n
	case *models.Model:
		n := int64(ptrOverhead + len(t.Name))
		if t.Graph != nil {
			n += int64(len(t.Graph.Nodes)) * nodeBytes
		}
		return n
	case *perfmodel.Calibration:
		// The registry's fitted models (MLP ensembles per kernel family)
		// dominate; serialized size is an honest proxy and is computed
		// once per calibration, whose cost dwarfs the marshal.
		if raw, err := perfmodel.SaveRegistry(t.Registry); err == nil {
			return int64(ptrOverhead + len(raw) + 64*len(t.Evals))
		}
		return fallbackSize
	case *CompiledPlan:
		// Graphs are shared with (and metered by) the graphs class;
		// charge the plan only its own references and resolved state so
		// the store never double-counts a graph.
		n := int64(ptrOverhead) + 128 + 8*int64(len(t.graphs))
		if t.plan != nil {
			n += 64 + 8*int64(len(t.plan.Loads))
			for _, a := range t.plan.Assignments {
				n += 8 * int64(len(a))
			}
		}
		return n
	case cached:
		n := int64(ptrOverhead) + 32 + int64(len(t.pred.PerOp))*opTimeBytes
		if t.multi != nil {
			n += 64 + int64(len(t.multi.PerDeviceE2E))*8
		}
		if t.plan != nil {
			n += 64 + 8*int64(len(t.plan.Loads))
			for _, a := range t.plan.Assignments {
				n += 8 * int64(len(a))
			}
		}
		return n
	}
	return fallbackSize
}
