package engine

import (
	"fmt"
	"strconv"

	"dlrmperf/internal/graph"
	"dlrmperf/internal/models"
	"dlrmperf/internal/predict"
	"dlrmperf/internal/scenario"
	"dlrmperf/internal/workload"
	"dlrmperf/internal/xrand"
)

// CompiledPlan is one request resolved into directly executable form:
// the per-shard execution graphs, the greedy-LPT shard assignment, the
// resolved alpha-beta comm model, the collective payload sizes, and
// the device's bound predictor (calibrated kernel models + overhead
// database). Compiling happens once per (device, scenario fingerprint,
// overhead mode) and is cached in the plans class of the asset store;
// executing a plan is pure arithmetic — no graph construction, no
// shard re-planning, no comm-model resolution, no key formatting.
//
// Plans are immutable once built and shared between callers, so an
// evicted plan recompiles deterministically and predicts identically
// (the graphs it references stay memoized in the graphs class).
type CompiledPlan struct {
	// graphs holds one execution graph per device (len 1 single-device).
	graphs []*graph.Graph
	// plan is the embedding shard assignment (nil for single-device and
	// pure data-parallel scenarios).
	plan *scenario.Plan
	// comm is the resolved interconnect model (multi-device only).
	comm predict.CommModel
	// denseParams sizes the data-parallel all-reduce payload;
	// embActBytes the per-device all-to-all payload per direction.
	denseParams int64
	embActBytes int64
	// pred is the device's predictor: calibrated registry + the
	// requested overhead database.
	pred *predict.Predictor
	// multi selects the hybrid-parallel execution path.
	multi bool
}

// execute prices the compiled scenario. It performs the same predictor
// calls the uncompiled path ends in, on the same inputs, so results
// are bit-identical to resolving the request from scratch.
func (p *CompiledPlan) execute() (cached, error) {
	if !p.multi {
		pred, err := p.pred.Predict(p.graphs[0])
		if err != nil {
			return cached{}, err
		}
		return cached{pred: pred}, nil
	}
	mp, err := p.pred.PredictSharded(p.graphs, p.denseParams, p.embActBytes, p.comm)
	if err != nil {
		return cached{}, err
	}
	return cached{pred: mp.Prediction, multi: &mp, plan: p.plan}, nil
}

// compile resolves a request cold. Graphs and the shard plan are built
// BEFORE the device's assets are touched — the same ordering the
// historical per-request path used — so malformed scenarios (unknown
// workloads, unplannable shardings, custom tables on non-DLRM
// families) fail fast without ever triggering a calibration.
func (e *Engine) compile(req Request) (*CompiledPlan, error) {
	spec := req.Scenario
	if spec.NumDevices() == 1 {
		m, err := e.scenarioModel(spec)
		if err != nil {
			return nil, err
		}
		p, err := e.scenarioPredictor(req)
		if err != nil {
			return nil, err
		}
		return &CompiledPlan{graphs: []*graph.Graph{m.Graph}, pred: p}, nil
	}
	return e.compileMulti(req)
}

// compileMulti resolves a hybrid-parallel scenario: dense layers run
// data-parallel at the per-device batch, the embedding tables are
// sharded by the greedy planner, and collectives come from the spec's
// alpha-beta comm model. CNN families degenerate to pure data
// parallelism (identical per-device graphs, all-reduce only).
func (e *Engine) compileMulti(req Request) (*CompiledPlan, error) {
	spec := req.Scenario
	n := spec.NumDevices()
	comm, err := predict.CommByName(spec.Comm)
	if err != nil {
		return nil, err
	}
	perDev := (spec.Batch + int64(n) - 1) / int64(n)

	cp := &CompiledPlan{comm: comm, multi: true}
	cfg, cfgErr := models.DLRMConfigFor(spec.Workload, spec.Batch)
	if cfgErr != nil {
		// Not a DLRM family: pure data parallelism over one shared graph.
		if len(spec.Tables) > 0 {
			return nil, fmt.Errorf("scenario: custom tables need a DLRM family: %w", cfgErr)
		}
		m, err := e.Model(spec.Workload, perDev)
		if err != nil {
			return nil, err
		}
		cp.graphs = make([]*graph.Graph, n)
		for d := range cp.graphs {
			cp.graphs[d] = m.Graph
		}
		cp.denseParams = m.Params
	} else {
		tables := spec.Tables
		if len(tables) == 0 {
			tables = scenario.TablesOf(cfg)
		}
		pl, err := scenario.PlanShards(tables, cfg.EmbDim, n)
		if err != nil {
			return nil, err
		}
		cp.plan = &pl
		cp.graphs = make([]*graph.Graph, n)
		var kb []byte
		for d := 0; d < n; d++ {
			shard := pl.TablesFor(d, tables)
			// Key per-device graphs by shard *content*, so identical
			// shards (every uniform-table scenario) build one graph.
			kb = shardGraphKey(kb[:0], spec.Workload, perDev, shard)
			m, err := memo(e, classGraph, string(kb), func() (*models.Model, error) {
				return models.BuildDLRM(specializeDLRM(cfg, perDev, shard))
			})
			if err != nil {
				return nil, err
			}
			cp.graphs[d] = m.Graph
		}
		cp.denseParams = cfg.DenseParams()
		// All-to-all payload per device per direction: each device's
		// share of the full (B/n, T, D) embedding activation tensor.
		cp.embActBytes = perDev * int64(len(tables)) * cfg.EmbDim * 4
	}

	p, err := e.scenarioPredictor(req)
	if err != nil {
		return nil, err
	}
	cp.pred = p
	return cp, nil
}

// shardGraphKey renders "graph/<workload>/b<perDev>/<hash16>" where
// the hash folds the shard's canonical tables key — built with append
// writers, hashing through b's spare capacity, so re-keying a shard
// costs no fmt machinery and no intermediate strings.
func shardGraphKey(b []byte, workloadName string, perDev int64, shard []workload.TableSpec) []byte {
	b = append(b, "graph/"...)
	b = append(b, workloadName...)
	b = append(b, "/b"...)
	b = strconv.AppendInt(b, perDev, 10)
	b = append(b, '/')
	mark := len(b)
	b = scenario.AppendTablesKey(b, shard)
	h := xrand.HashBytes(b[mark:])
	return xrand.AppendHex16(b[:mark], h)
}
