package engine

import (
	"reflect"
	"testing"

	"dlrmperf/internal/hw"
	"dlrmperf/internal/scenario"
)

// planOptions enables CNN calibration so the bit-identity sweep can
// serve every registered scenario family, including the conv models.
func planOptions(seed uint64) Options {
	opts := tinyOptions(seed)
	opts.Calib.IncludeCNN = true
	return opts
}

// TestCompiledPlanBitIdentical is the tentpole's correctness contract:
// for every scenario in the registry — single-device, 2- and 4-GPU
// hybrid-parallel, custom table populations, CNN data-parallel — the
// compiled-plan path must return bit-identical predictions, multi-GPU
// breakdowns, and shard plans to the historical per-request resolution
// path (the DisableCompiledPlans ablation).
func TestCompiledPlanBitIdentical(t *testing.T) {
	names := scenario.Names()
	if len(names) < 12 {
		t.Fatalf("registry too small for the sweep: %v", names)
	}

	compiled := New(planOptions(7))
	ablated := planOptions(7)
	ablated.DisableCompiledPlans = true
	uncompiled := New(ablated)

	for _, name := range names {
		spec, err := scenario.Build(name, 0, 0)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		req := Request{Device: hw.V100, Scenario: spec}
		got := compiled.Predict(req)
		want := uncompiled.Predict(req)
		if got.Err != nil || want.Err != nil {
			t.Fatalf("%s errored: compiled=%v uncompiled=%v", name, got.Err, want.Err)
		}
		if !reflect.DeepEqual(got.Prediction, want.Prediction) {
			t.Errorf("%s: compiled prediction %+v != uncompiled %+v", name, got.Prediction, want.Prediction)
		}
		if !reflect.DeepEqual(got.Multi, want.Multi) {
			t.Errorf("%s: compiled multi-GPU breakdown differs: %+v vs %+v", name, got.Multi, want.Multi)
		}
		if !reflect.DeepEqual(got.Plan, want.Plan) {
			t.Errorf("%s: compiled shard plan differs: %+v vs %+v", name, got.Plan, want.Plan)
		}
	}

	// The compiled engine actually exercised the plans class; the
	// ablated engine never touched it.
	if c := compiled.AssetStats().Class("plans"); c.Resident == 0 || c.Misses == 0 {
		t.Errorf("compiled engine's plans class unused: %+v", c)
	}
	if c := uncompiled.AssetStats().Class("plans"); c.Resident != 0 || c.Misses != 0 {
		t.Errorf("ablated engine stored plans: %+v", c)
	}
}

// TestPlanEvictionRebuildIdentical thrashes the plans class at
// capacity 1 with an A/B/A request pattern (result cache disabled so
// every request re-executes its plan): plan A evicts, recompiles on
// return, and the rebuilt plan predicts bit-identically.
func TestPlanEvictionRebuildIdentical(t *testing.T) {
	opts := tinyOptions(7)
	opts.AssetCaps = AssetCaps{Plans: 1}
	opts.ResultCacheSize = -1
	e := New(opts)

	specA, err := scenario.Build("dlrm-uniform-2gpu", 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	specB, err := scenario.Build("dlrm-default", 512, 0)
	if err != nil {
		t.Fatal(err)
	}

	first := e.Predict(Request{Device: hw.V100, Scenario: specA})
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if res := e.Predict(Request{Device: hw.V100, Scenario: specB}); res.Err != nil {
		t.Fatal(res.Err)
	}
	again := e.Predict(Request{Device: hw.V100, Scenario: specA})
	if again.Err != nil {
		t.Fatal(again.Err)
	}

	if !reflect.DeepEqual(first.Prediction, again.Prediction) {
		t.Errorf("rebuilt plan prediction %+v != original %+v", again.Prediction, first.Prediction)
	}
	if !reflect.DeepEqual(first.Multi, again.Multi) {
		t.Errorf("rebuilt plan breakdown differs: %+v vs %+v", again.Multi, first.Multi)
	}
	if !reflect.DeepEqual(first.Plan, again.Plan) {
		t.Errorf("rebuilt shard plan differs: %+v vs %+v", again.Plan, first.Plan)
	}

	c := e.AssetStats().Class("plans")
	if c.Resident != 1 {
		t.Errorf("resident plans = %d, want 1", c.Resident)
	}
	if c.Evictions < 2 {
		t.Errorf("plan evictions = %d, want >= 2 under capacity 1", c.Evictions)
	}
	if c.Hits != 0 || c.Misses != 3 {
		t.Errorf("plan counters = %d/%d hit/miss, want 0/3", c.Hits, c.Misses)
	}
}

// TestCompiledPlanHit: repeated traffic on a warm engine with the
// result cache disabled serves from the compiled plan — one miss to
// build it, hits thereafter.
func TestCompiledPlanHit(t *testing.T) {
	opts := tinyOptions(7)
	opts.ResultCacheSize = -1
	e := New(opts)
	spec, err := scenario.Build("dlrm-uniform-2gpu", 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Device: hw.V100, Scenario: spec}
	var prev Result
	for i := 0; i < 4; i++ {
		res := e.Predict(req)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if i > 0 && !reflect.DeepEqual(res.Prediction, prev.Prediction) {
			t.Fatalf("iteration %d prediction drifted", i)
		}
		prev = res
	}
	c := e.AssetStats().Class("plans")
	if c.Misses != 1 || c.Hits != 3 {
		t.Errorf("plan counters = %d/%d hit/miss, want 3/1", c.Hits, c.Misses)
	}
}

// BenchmarkCompilePlan measures the cold cost a plan-cache miss pays:
// resolving a 2-GPU hybrid-parallel request into its per-shard graphs,
// LPT assignment, comm model, and bound predictor. Graphs and
// calibration are warm (metered by their own classes), so this is the
// plan-assembly overhead the compiled path amortizes away.
func BenchmarkCompilePlan(b *testing.B) {
	e := New(tinyOptions(7))
	spec, err := scenario.Build("dlrm-uniform-2gpu", 512, 0)
	if err != nil {
		b.Fatal(err)
	}
	req := Request{Device: hw.V100, Scenario: spec}
	if res := e.Predict(req); res.Err != nil { // warm calibration, graphs, overhead DBs
		b.Fatal(res.Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.compile(req); err != nil {
			b.Fatal(err)
		}
	}
}
