GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench regenerates the paper artifacts and tracks the calibration
# speedup pair (serial vs parallel) in the perf trajectory.
bench:
	$(GO) test -run xxx -bench . -benchmem .

check: build vet test
