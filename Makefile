GO ?= go

.PHONY: build test race vet fmt bench bench-assets bench-check bench-baseline serve-demo serve-http check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench regenerates the paper artifacts and tracks the calibration
# speedup pair (serial vs parallel) in the perf trajectory.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-assets runs the asset store under eviction pressure: a
# Zipf-skewed graph request stream swept across store capacities,
# printing the hit-rate curve with eviction and resident-byte counters.
bench-assets:
	$(GO) run ./cmd/dlrmperf-bench -mode assetstore -n 2000

# bench-check is the local bench-regression gate (the CI bench job runs
# the same steps): measure the two tracked hot paths, parse them into
# BENCH_pr.json, and compare against the checked-in baseline — failing
# on >25% ns/op or >10% allocs/op regressions.
BENCH_PATTERN = PredictBatchCached$$|CalibrateParallel$$
bench-check:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count 5 . | tee BENCH_pr.txt
	$(GO) run ./cmd/benchdiff -parse -in BENCH_pr.txt -o BENCH_pr.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json

# bench-baseline regenerates BENCH_baseline.json from the current tree
# (run on the reference machine after an intentional perf change).
bench-baseline:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count 5 . | $(GO) run ./cmd/benchdiff -parse -o BENCH_baseline.json

# serve-demo serves the checked-in mixed single/multi-GPU scenario
# fixture through one engine and prints the JSON report (cache
# counters, per-request scaling efficiency).
serve-demo:
	$(GO) run ./cmd/dlrmperf-serve -in cmd/dlrmperf-serve/testdata/requests.json

# serve-http starts the async HTTP service on :8080 with low-fidelity
# calibration, for interactive poking (curl examples in the README).
serve-http:
	$(GO) run ./cmd/dlrmperf-serve -listen :8080 -fast-calib

check: build vet fmt test
