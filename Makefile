GO ?= go

.PHONY: build test race vet fmt bench bench-assets serve-demo check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench regenerates the paper artifacts and tracks the calibration
# speedup pair (serial vs parallel) in the perf trajectory.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-assets runs the asset store under eviction pressure: a
# Zipf-skewed graph request stream swept across store capacities,
# printing the hit-rate curve with eviction and resident-byte counters.
bench-assets:
	$(GO) run ./cmd/dlrmperf-bench -mode assetstore -n 2000

# serve-demo serves the checked-in mixed single/multi-GPU scenario
# fixture through one engine and prints the JSON report (cache
# counters, per-request scaling efficiency).
serve-demo:
	$(GO) run ./cmd/dlrmperf-serve -in cmd/dlrmperf-serve/testdata/requests.json

check: build vet fmt test
