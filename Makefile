GO ?= go

.PHONY: build test race vet fmt lint bench bench-assets bench-check bench-baseline bench-ratchet serve-demo serve-http explore-demo cluster-e2e loadtest cover check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint is the invariant gate: the in-repo analyzer suite
# (cmd/dlrmperf-lint: hotpath, atomicfield, deterministic, ctxflow —
# see internal/analysis and the README "Static analysis" section),
# plus staticcheck when it is installed. The analyzer suite builds
# from this module with no network; CI additionally installs and
# enforces staticcheck at a pinned version (see staticcheck.conf).
lint:
	$(GO) run ./cmd/dlrmperf-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI enforces it at a pinned version)"; \
	fi

# bench regenerates the paper artifacts and tracks the calibration
# speedup pair (serial vs parallel) in the perf trajectory.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-assets runs the asset store under eviction pressure: a
# Zipf-skewed graph request stream swept across store capacities,
# printing the hit-rate curve with eviction and resident-byte counters.
bench-assets:
	$(GO) run ./cmd/dlrmperf-bench -mode assetstore -n 2000

# bench-check is the local bench-regression gate (the CI bench job runs
# the same steps): measure the tracked hot paths, parse them into
# BENCH_pr.json, and compare against the checked-in baseline — failing
# on >25% ns/op or >10% allocs/op regressions.
BENCH_PATTERN = PredictBatchCached$$|PredictSingleCached$$|CalibrateParallel$$|CompilePlan$$|ExploreWarm$$|ExploreCold$$
BENCH_PKGS = . ./internal/engine ./internal/explore
bench-check:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count 5 $(BENCH_PKGS) | tee BENCH_pr.txt
	$(GO) run ./cmd/benchdiff -parse -in BENCH_pr.txt -o BENCH_pr.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json

# bench-baseline regenerates BENCH_baseline.json from the current tree
# (run on the reference machine after an intentional perf change).
bench-baseline:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count 5 $(BENCH_PKGS) | $(GO) run ./cmd/benchdiff -parse -o BENCH_baseline.json

# bench-ratchet tightens the checked-in baseline to the per-metric
# minimum of the baseline and a fresh run. It can only ever keep or
# shrink each bound (a slower run leaves the file untouched), so an
# intentional perf win committed through this target becomes the new
# regression floor that bench-check enforces.
bench-ratchet:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count 5 $(BENCH_PKGS) | tee BENCH_pr.txt
	$(GO) run ./cmd/benchdiff -parse -in BENCH_pr.txt -o BENCH_pr.json
	$(GO) run ./cmd/benchdiff -ratchet -baseline BENCH_baseline.json -current BENCH_pr.json -o BENCH_baseline.json

# serve-demo serves the checked-in mixed single/multi-GPU scenario
# fixture through one engine and prints the JSON report (cache
# counters, per-request scaling efficiency).
serve-demo:
	$(GO) run ./cmd/dlrmperf-serve -in cmd/dlrmperf-serve/testdata/requests.json

# serve-http starts the async HTTP service on :8080 with low-fidelity
# calibration, for interactive poking (curl examples in the README).
serve-http:
	$(GO) run ./cmd/dlrmperf-serve -listen :8080 -fast-calib

# explore-demo sweeps the checked-in design-space grid twice through
# one low-fidelity engine and self-asserts the headline claim: the
# warm repeat is served from the result cache at a >= 90% hit rate
# (the CI explore smoke runs this exact target).
explore-demo:
	$(GO) run ./cmd/dlrmperf-explore -grid internal/explore/testdata/grid.json \
		-fast-calib -repeat 2 -min-warm-hit-rate 0.9 -o /dev/null

# cluster-e2e runs the cross-process sharded-serving suite under the
# race detector: 1 coordinator + 2 self-registering workers, device-
# affine routing, a mid-run worker kill with transparent failover, and
# the aggregated /stats invariant — plus the replicated-control-plane
# scenario (2 peered coordinators + 2 workers: SIGKILL the leader
# mid-run without losing cached results, then SIGKILL a device's home
# worker and require a warm asset hand-off). Same step CI runs.
cluster-e2e:
	$(GO) test -race -count=1 -run 'TestE2ECluster' -v ./cmd/dlrmperf-serve

# loadtest is the load-harness smoke CI runs: build dlrmperf-serve and
# dlrmperf-loadgen, stand up 1 coordinator + 2 low-fidelity workers,
# replay the checked-in trace with a hot high-priority tenant and a
# background tenant through the typed client, and write
# LOADTEST_report.json (plus LOADTEST_bench.json, a
# benchdiff-compatible suite of the latency quantiles). The loadgen
# binary itself fails the run on transport errors, a shed rate above
# 0.9, or a broken cluster-wide /stats accounting invariant.
LOADTEST_PORT = 19273
loadtest:
	@set -e; \
	tmp=$$(mktemp -d); touch $$tmp/pids; \
	trap 'kill $$(cat $$tmp/pids) 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/dlrmperf-serve ./cmd/dlrmperf-serve; \
	$(GO) build -o $$tmp/dlrmperf-loadgen ./cmd/dlrmperf-loadgen; \
	$$tmp/dlrmperf-serve -coordinator -listen 127.0.0.1:$(LOADTEST_PORT) -liveness 3s & echo $$! >> $$tmp/pids; \
	$$tmp/dlrmperf-serve -listen 127.0.0.1:0 -fast-calib -queue 4 \
		-register http://127.0.0.1:$(LOADTEST_PORT) -heartbeat 200ms & echo $$! >> $$tmp/pids; \
	$$tmp/dlrmperf-serve -listen 127.0.0.1:0 -fast-calib -queue 4 \
		-register http://127.0.0.1:$(LOADTEST_PORT) -heartbeat 200ms & echo $$! >> $$tmp/pids; \
	$$tmp/dlrmperf-loadgen -target http://127.0.0.1:$(LOADTEST_PORT) -wait-workers 2 \
		-trace cmd/dlrmperf-loadgen/testdata/trace.json \
		-tenants hot:200:high,bg:20:low -n 60 -seed 11 -timeout 2m \
		-assert-invariant -o LOADTEST_report.json -bench-out LOADTEST_bench.json; \
	echo "report written to LOADTEST_report.json"

# cover is the serving/cluster coverage gate CI enforces: the
# coordinator (internal/cluster) and the admission pipeline
# (internal/serve) must each keep >= 80% statement coverage.
COVER_FLOOR = 80
cover:
	@set -e; for pkg in internal/cluster internal/serve; do \
		out="cover_$$(basename $$pkg).out"; \
		$(GO) test -coverprofile=$$out ./$$pkg; \
		pct=$$($(GO) tool cover -func=$$out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
		echo "$$pkg coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit (p+0 < f) ? 1 : 0 }' \
			|| { echo "$$pkg below the $(COVER_FLOOR)% coverage floor"; exit 1; }; \
	done

check: build vet fmt lint test cover
