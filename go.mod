module dlrmperf

go 1.24
