module dlrmperf

go 1.23
