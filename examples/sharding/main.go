// Sharding reproduces the Section V-A(c) load-balancing workflow on
// top of the scenario layer's planner: given a heterogeneous population
// of embedding tables to split across several GPUs, compare the static
// rows×dim plan against greedy LPT on the kernel model's *predicted*
// per-table lookup time — no training job ever launches.
//
// Run with:
//
//	go run ./examples/sharding
package main

import (
	"fmt"
	"log"

	"dlrmperf"
	"dlrmperf/internal/scenario"
	"dlrmperf/internal/workload"
)

func main() {
	pipe, err := dlrmperf.NewPipeline(dlrmperf.V100)
	if err != nil {
		log.Fatal(err)
	}

	const nDevices = 4
	const batch, dim = 2048, 64

	// A production-shaped population: a few enormous, hot tables and a
	// long tail of small, cold ones.
	tables := []workload.TableSpec{
		{Rows: 14_000_000, Lookups: 64}, {Rows: 11_000_000, Lookups: 32},
		{Rows: 8_000_000, Lookups: 32}, {Rows: 4_000_000, Lookups: 16},
		{Rows: 1_000_000, Lookups: 16}, {Rows: 1_000_000, Lookups: 10},
		{Rows: 500_000, Lookups: 10}, {Rows: 500_000, Lookups: 8},
		{Rows: 200_000, Lookups: 8}, {Rows: 200_000, Lookups: 4},
		{Rows: 100_000, Lookups: 4}, {Rows: 100_000, Lookups: 2},
		{Rows: 50_000, Lookups: 2}, {Rows: 50_000, Lookups: 1},
		{Rows: 20_000, Lookups: 1}, {Rows: 20_000, Lookups: 1},
	}

	// The co-design cost: the calibrated kernel model's predicted lookup
	// time per table.
	cost := func(t workload.TableSpec) float64 {
		us, err := pipe.PredictKernelUs(batch, t.Rows, t.Lookups, dim)
		if err != nil {
			log.Fatal(err)
		}
		return us
	}

	show := func(name string, p scenario.Plan) {
		fmt.Printf("%-22s", name)
		for d := range p.Assignments {
			us := 0.0
			for _, t := range p.TablesFor(d, tables) {
				us += cost(t)
			}
			fmt.Printf("  %6.1fus", us)
		}
		fmt.Printf("   imbalance %5.1f%%\n", 100*p.Imbalance())
	}

	static, err := scenario.PlanShards(tables, dim, nDevices)
	if err != nil {
		log.Fatal(err)
	}
	predicted, err := scenario.PlanShardsCost(tables, nDevices, cost)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("predicted embedding-lookup time per device (B=%d, D=%d, %d tables):\n\n",
		batch, dim, len(tables))
	show("static-rows-x-dim", static)
	show("greedy-predicted-LPT", predicted)
	fmt.Println("\nthe LPT scheme balances devices using only model predictions —")
	fmt.Println("the evaluation the paper describes for multi-GPU embedding sharding.")
	fmt.Println("the same planner shards tables inside every multi-GPU scenario",
		"(see dlrmperf.ScenarioRequest and cmd/dlrmperf-serve).")
}
