// Sharding reproduces the Section V-A(c) load-balancing workflow: given
// a heterogeneous population of embedding tables to split across several
// GPUs, use the kernel performance model to price each table's lookup
// and compare sharding schemes by their predicted per-device makespan —
// no training job ever launches.
//
// Run with:
//
//	go run ./examples/sharding
package main

import (
	"fmt"
	"log"
	"sort"

	"dlrmperf"
)

// table is one embedding table: row count and per-sample pooling factor.
type table struct {
	rows    int64
	lookups int64
}

func main() {
	pipe, err := dlrmperf.NewPipeline(dlrmperf.V100)
	if err != nil {
		log.Fatal(err)
	}

	const nDevices = 4
	const batch, dim = 2048, 64

	// A production-shaped population: a few enormous, hot tables and a
	// long tail of small, cold ones.
	tables := []table{
		{14_000_000, 64}, {11_000_000, 32}, {8_000_000, 32}, {4_000_000, 16},
		{1_000_000, 16}, {1_000_000, 10}, {500_000, 10}, {500_000, 8},
		{200_000, 8}, {200_000, 4}, {100_000, 4}, {100_000, 2},
		{50_000, 2}, {50_000, 1}, {20_000, 1}, {20_000, 1},
	}

	cost := func(t table) float64 {
		us, err := pipe.PredictKernelUs(batch, t.rows, t.lookups, dim)
		if err != nil {
			log.Fatal(err)
		}
		return us
	}

	// Scheme 1: contiguous chunks of the size-sorted list.
	chunked := make([][]table, nDevices)
	sorted := append([]table(nil), tables...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].rows > sorted[j].rows })
	per := (len(sorted) + nDevices - 1) / nDevices
	for i, t := range sorted {
		chunked[i/per] = append(chunked[i/per], t)
	}

	// Scheme 2: round-robin.
	rr := make([][]table, nDevices)
	for i, t := range tables {
		rr[i%nDevices] = append(rr[i%nDevices], t)
	}

	// Scheme 3: greedy LPT on *predicted* cost — the co-design use of the
	// kernel model.
	lpt := make([][]table, nDevices)
	load := make([]float64, nDevices)
	byCost := append([]table(nil), tables...)
	sort.Slice(byCost, func(i, j int) bool { return cost(byCost[i]) > cost(byCost[j]) })
	for _, t := range byCost {
		best := 0
		for d := 1; d < nDevices; d++ {
			if load[d] < load[best] {
				best = d
			}
		}
		lpt[best] = append(lpt[best], t)
		load[best] += cost(t)
	}

	show := func(name string, assignment [][]table) {
		makespan := 0.0
		fmt.Printf("%-22s", name)
		for _, devTables := range assignment {
			t := 0.0
			for _, tb := range devTables {
				t += cost(tb)
			}
			if t > makespan {
				makespan = t
			}
			fmt.Printf("  %6.1fus", t)
		}
		fmt.Printf("   makespan %6.1fus\n", makespan)
	}

	fmt.Printf("predicted embedding-lookup time per device (B=%d, D=%d, %d tables):\n\n",
		batch, dim, len(tables))
	show("chunked-by-size", chunked)
	show("round-robin", rr)
	show("greedy-predicted-LPT", lpt)
	fmt.Println("\nthe LPT scheme balances devices using only model predictions —")
	fmt.Println("the evaluation the paper describes for multi-GPU embedding sharding.")
}
