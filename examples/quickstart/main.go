// Quickstart: calibrate the performance model for a V100, build
// DLRM_default at batch 2048, measure it on the simulated device, then
// predict its per-batch training time with Algorithm 1 — the end-to-end
// flow of the paper's Fig. 3 pipeline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dlrmperf"
)

func main() {
	fmt.Println("calibrating kernel performance models for", dlrmperf.V100, "...")
	pipe, err := dlrmperf.NewPipeline(dlrmperf.V100)
	if err != nil {
		log.Fatal(err)
	}

	w, err := dlrmperf.NewModel(dlrmperf.DLRMDefault, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d ops, %d kernel launches per iteration\n\n",
		w.Name(), w.Ops(), w.Kernels())

	// "Run" the workload on the simulated V100 (the stand-in for real
	// hardware in this reproduction).
	meas := pipe.Measure(w, 1)
	fmt.Printf("measured:   %8.0f us/batch  (GPU active %8.0f us, utilization %4.1f%%)\n",
		meas.IterTimeUs, meas.ActiveTimeUs, 100*meas.Utilization)

	// Collect host overheads from one profiled run, then predict without
	// ever running the workload again.
	db, err := pipe.CollectOverheads(w, 2)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := pipe.Predict(w, db)
	if err != nil {
		log.Fatal(err)
	}
	ko, err := pipe.KernelOnly(w)
	if err != nil {
		log.Fatal(err)
	}

	rel := func(v float64) float64 { return 100 * (v - meas.IterTimeUs) / meas.IterTimeUs }
	fmt.Printf("Algorithm 1:%8.0f us/batch  (%+5.1f%% vs measured)\n", pred.E2EUs, rel(pred.E2EUs))
	fmt.Printf("kernel-only:%8.0f us/batch  (%+5.1f%% — misses the device idle time)\n", ko, rel(ko))

	// The kernel models themselves: Table IV-style held-out errors.
	fmt.Println("\nkernel model GMAE (held-out):")
	errs := pipe.KernelModelErrors()
	for _, row := range []string{"EL-FH", "EL-BH", "GEMM", "transpose", "tril-F", "tril-B", "concat", "memcpy"} {
		fmt.Printf("  %-10s %5.2f%%\n", row, 100*errs[row][0])
	}
}
