// Codesign reproduces the Section V-A model-system co-design workflows on
// the execution graph, without re-running any workload:
//
//  1. Op fusion (Fig. 11): a DLRM variant with one embedding_bag op per
//     table is transformed into the batched lookup form, and the
//     performance model forecasts the speedup.
//  2. Batch-size what-if: the captured graph is resized across batch
//     sizes and re-predicted, mapping the throughput curve.
//  3. Iterative model tuning: the top MLP is widened and the predictor
//     prices the change.
//
// Run with:
//
//	go run ./examples/codesign
package main

import (
	"fmt"
	"log"

	"dlrmperf"
)

func main() {
	pipe, err := dlrmperf.NewPipeline(dlrmperf.V100)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Embedding-bag fusion (Fig. 11) ---------------------------
	unfused, err := dlrmperf.NewDLRM(dlrmperf.DLRMConfig{
		Batch:          1024,
		BottomMLP:      []int64{512, 512, 64},
		TopMLP:         []int64{1024, 1024, 1024, 1},
		TableRows:      []int64{1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6, 1e6},
		EmbeddingDim:   64,
		LookupsPerItem: 32,
		Loss:           "mse",
		FuseEmbedding:  false, // one embedding_bag op per table
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := pipe.CollectOverheads(unfused, 3)
	if err != nil {
		log.Fatal(err)
	}
	before, err := pipe.Predict(unfused, db)
	if err != nil {
		log.Fatal(err)
	}

	fused := unfused.Clone()
	if err := fused.FuseEmbeddingBags(); err != nil {
		log.Fatal(err)
	}
	after, err := pipe.Predict(fused, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("op fusion what-if (per-table embedding_bag -> batched lookup):")
	fmt.Printf("  unfused: %3d ops, predicted %8.0f us/batch\n", unfused.Ops(), before.E2EUs)
	fmt.Printf("  fused:   %3d ops, predicted %8.0f us/batch\n", fused.Ops(), after.E2EUs)
	fmt.Printf("  predicted speedup: %.2fx — without running the fused model\n\n",
		before.E2EUs/after.E2EUs)

	// --- 2. Batch-size sweep on the captured graph --------------------
	w, err := dlrmperf.NewModel(dlrmperf.DLRMDDP, 512)
	if err != nil {
		log.Fatal(err)
	}
	wdb, err := pipe.CollectOverheads(w, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("batch-size what-if for DLRM_DDP (graph resized, re-predicted):")
	fmt.Println("  batch   us/batch   samples/sec")
	for _, b := range []int64{256, 512, 1024, 2048, 4096, 8192} {
		if err := w.ResizeBatch(b); err != nil {
			log.Fatal(err)
		}
		pred, err := pipe.Predict(w, wdb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5d  %9.0f   %11.0f\n", b, pred.E2EUs, float64(b)/pred.E2EUs*1e6)
	}

	// --- 3. Layer resize: widen the top MLP ---------------------------
	fmt.Println("\niterative tuning: widening DLRM_DDP's top MLP 512 -> 1024:")
	wide, err := dlrmperf.NewDLRM(dlrmperf.DLRMConfig{
		Batch:          2048,
		BottomMLP:      []int64{128, 128, 128, 128},
		TopMLP:         []int64{1024, 1024, 1024, 256, 1},
		TableRows:      repeat(80_000, 8),
		EmbeddingDim:   128,
		LookupsPerItem: 80,
		Loss:           "mse",
		FuseEmbedding:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.ResizeBatch(2048); err != nil {
		log.Fatal(err)
	}
	base, err := pipe.Predict(w, wdb)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := pipe.Predict(wide, wdb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  baseline: %8.0f us/batch\n", base.E2EUs)
	fmt.Printf("  widened:  %8.0f us/batch (%+.1f%%)\n",
		pred.E2EUs, 100*(pred.E2EUs-base.E2EUs)/base.E2EUs)
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
