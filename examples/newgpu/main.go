// Newgpu answers the paper's "how much performance can be gained with
// new GPUs?" what-if: the execution graph captured once is re-predicted
// against every calibrated device, with the host overheads taken from a
// profiled run on the current machine.
//
// Run with:
//
//	go run ./examples/newgpu
package main

import (
	"fmt"
	"log"

	"dlrmperf"
)

func main() {
	// The workload was captured (and its overheads profiled) on the P100
	// box; we ask what V100 or TITAN Xp would buy us.
	current := dlrmperf.P100
	basePipe, err := dlrmperf.NewPipeline(current)
	if err != nil {
		log.Fatal(err)
	}
	w, err := dlrmperf.NewModel(dlrmperf.DLRMMLPerf, 2048)
	if err != nil {
		log.Fatal(err)
	}
	db, err := basePipe.CollectOverheads(w, 1)
	if err != nil {
		log.Fatal(err)
	}
	baseMeas := basePipe.Measure(w, 2)
	basePred, err := basePipe.Predict(w, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: measured %0.f us/batch, predicted %0.f us/batch\n\n",
		w.Name(), current, baseMeas.IterTimeUs, basePred.E2EUs)

	fmt.Println("what-if: same workload, same host, different GPU:")
	fmt.Println("  device     predicted us/batch   speedup vs P100")
	for _, dev := range dlrmperf.Devices() {
		pipe := basePipe
		if dev != current {
			pipe, err = dlrmperf.NewPipeline(dev)
			if err != nil {
				log.Fatal(err)
			}
		}
		pred, err := pipe.Predict(w, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s  %18.0f   %14.2fx\n", dev, pred.E2EUs, basePred.E2EUs/pred.E2EUs)
	}
	fmt.Println("\n(only kernel times change: host overheads come from the captured trace,")
	fmt.Println(" so low-utilization workloads gain less from a faster GPU — the paper's point.)")
}
